//! End-to-end tracking quality: the native DET→TRA stack scored with
//! CLEAR-MOT metrics against the scripted ground truth.

use adsim::perception::metrics::{average_precision, MotAccumulator, TruthBox};
use adsim::perception::{
    BlobDetector, Detector, TemplateTracker, TrackerPool, TrackerPoolConfig,
};
use adsim::workload::{Resolution, Scenario, ScenarioKind};

#[test]
fn detector_plus_tracker_pool_track_the_scripted_world() {
    let scenario = Scenario::new(ScenarioKind::UrbanDrive, 808);
    let mut detector = BlobDetector::new();
    let mut pool = TrackerPool::new(TrackerPoolConfig::default(), |frame, bbox| {
        Box::new(TemplateTracker::new(frame, bbox))
    });
    let mut acc = MotAccumulator::new(0.2);
    let mut any_truth = false;
    for frame in scenario.stream(Resolution::Hhd).take(30) {
        let detections = detector.detect(&frame.image);
        let tracks = pool.step(&frame.image, &detections);
        let truth: Vec<TruthBox> = frame
            .truth_objects
            .iter()
            .map(|t| TruthBox { id: t.id, bbox: t.bbox })
            .collect();
        any_truth |= !truth.is_empty();
        acc.observe(&truth, &tracks);
    }
    assert!(any_truth, "scenario must contain visible objects");
    // The classical stack is not perfect (objects overlapping beacons
    // are occluded; expiring tracks linger as false positives), but it
    // must track a solid fraction of the scripted world with matched
    // boxes that overlap well.
    assert!(acc.recall() > 0.4, "recall {:.2}", acc.recall());
    assert!(acc.motp() > 0.5, "MOTP {:.2}", acc.motp());
}

#[test]
fn detector_average_precision_is_high_on_clean_frames() {
    let scenario = Scenario::new(ScenarioKind::HighwayCruise, 809);
    let mut detector = BlobDetector::new();
    let mut scored: Vec<(f32, bool)> = Vec::new();
    let mut total_truth = 0usize;
    for frame in scenario.stream(Resolution::Hd).take(20) {
        let detections = detector.detect(&frame.image);
        total_truth += frame.truth_objects.len();
        let mut used = vec![false; frame.truth_objects.len()];
        for d in detections {
            let hit = frame
                .truth_objects
                .iter()
                .enumerate()
                .find(|(i, t)| !used[*i] && t.bbox.iou(&d.bbox) >= 0.2);
            match hit {
                Some((i, _)) => {
                    used[i] = true;
                    scored.push((d.score, true));
                }
                None => scored.push((d.score, false)),
            }
        }
    }
    if total_truth == 0 {
        // Seed produced an empty highway window; nothing to score.
        return;
    }
    let ap = average_precision(&scored, total_truth);
    assert!(ap > 0.3, "AP {ap:.2} over {total_truth} truths");
}
