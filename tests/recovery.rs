//! Crash-safe execution guarantees: injected stage crashes are
//! contained at the vehicle-cell boundary, checkpoint/restore plus
//! deterministic gap replay converges to the same output digest as an
//! uninterrupted run, recovered campaigns stay byte-identical across
//! worker counts, and an exhausted restart budget parks the vehicle in
//! a terminal SafeStop instead of losing the cell.

use adsim::faults::FaultConfig;
use adsim::fleet::{CellSpec, FleetAssets, FleetConfig, FleetEngine, RecoveryPolicy};
use adsim::workload::Resolution;

const RES: Resolution = Resolution::Hhd;
const FRAMES: usize = 12;
const SEED: u64 = 0xC4A5;

/// A fault mix that actually crashes within the frame budget: with
/// five stages drawing at 8% per frame, the first crash lands in the
/// first few frames at this seed.
fn crashy() -> FaultConfig {
    FaultConfig { crash_rate: 0.08, ..FaultConfig::stress() }
}

fn crash_count(faults: &FaultConfig, frames: usize, seed: u64) -> usize {
    let mut inj = adsim::faults::FaultInjector::new(seed, faults.clone());
    (0..frames).filter(|_| inj.next_frame().crash.is_some()).count()
}

/// The uninterrupted reference: same schedule, crashes never executed.
/// `run_cell` replays post-checkpoint gaps with crashes disarmed, so a
/// recovered run must converge to exactly this digest.
fn reference(assets: &FleetAssets, spec: &CellSpec) -> adsim::fleet::CellOutcome {
    let mut spec = spec.clone();
    // An absurd interval never checkpoints past frame 0 and the budget
    // is never consumed (no crash executes below) — but keep recovery
    // off entirely to prove the plain path is the baseline.
    spec.recovery = None;
    spec.faults.crash_rate = 0.0;
    let engine = FleetEngine::new(assets.clone(), FleetConfig::with_workers(1));
    engine.run_serial(std::slice::from_ref(&spec)).outcomes.remove(0)
}

#[test]
fn crash_restore_replay_converges_to_the_uninterrupted_digest() {
    let assets = FleetAssets::urban(RES);
    let spec = CellSpec::new("crashy", crashy(), SEED, FRAMES)
        .with_recovery(RecoveryPolicy::new(4, 8));
    let scheduled = crash_count(&spec.faults, FRAMES, SEED);
    assert!(scheduled >= 1, "seed must schedule at least one crash, got {scheduled}");

    let engine = FleetEngine::new(assets.clone(), FleetConfig::with_workers(1));
    let outcome = engine.run_serial(std::slice::from_ref(&spec)).outcomes.remove(0);
    assert_eq!(outcome.crashes as usize, scheduled, "every scheduled crash contained");
    assert_eq!(outcome.restarts as usize, scheduled, "every crash restarted within budget");
    assert!(outcome.replayed_frames >= outcome.restarts, "each restart replays ≥ 1 frame");
    assert!(!outcome.quarantined);
    assert_eq!(outcome.frames, FRAMES as u64, "recovered cell completes all frames");
    assert_eq!(outcome.crash_log.len() as u64, outcome.crashes);

    // The crashed run, restored and replayed, lands on the digest of a
    // run where no crash ever fired. The crash fields differ by design
    // — compare the output digest and the deterministic logs instead
    // of whole signatures.
    let want = reference(&assets, &spec);
    assert_eq!(outcome.output_digest, want.output_digest, "recovery diverged from reference");
    assert_eq!(outcome.sup_log.len(), want.sup_log.len() + outcome.restarts as usize);
    assert_eq!(outcome.mota, want.mota);
    assert_eq!(outcome.frames, want.frames);
}

#[test]
fn checkpointing_off_run_is_byte_identical_to_checkpointing_on_when_crash_free() {
    let assets = FleetAssets::urban(RES);
    let base = CellSpec::new("stress", FaultConfig::stress(), SEED, FRAMES);
    let engine = FleetEngine::new(assets, FleetConfig::with_workers(1));
    let plain = engine.run_serial(std::slice::from_ref(&base)).outcomes.remove(0);
    // Checkpoint every frame — the most invasive schedule possible.
    let ck_spec = base.with_recovery(RecoveryPolicy::new(1, 3));
    let checked = engine.run_serial(std::slice::from_ref(&ck_spec)).outcomes.remove(0);
    assert!(checked.checkpoints >= FRAMES as u64, "K=1 must checkpoint every frame");
    assert!(checked.checkpoint_bytes > 0);
    assert_eq!(
        checked.signature(),
        plain.signature(),
        "checkpointing must be invisible to a crash-free run"
    );
}

#[test]
fn recovered_campaigns_stay_byte_identical_across_worker_counts() {
    let assets = FleetAssets::urban(RES);
    let grid = vec![
        CellSpec::new("clean", FaultConfig::off(), 0x5EED1, 8),
        CellSpec::new("crashy/k2", crashy(), SEED, FRAMES).with_recovery(RecoveryPolicy::new(2, 8)),
        CellSpec::new("crashy/k6", crashy(), SEED ^ 7, FRAMES)
            .with_recovery(RecoveryPolicy::new(6, 8)),
    ];
    let reference =
        FleetEngine::new(assets.clone(), FleetConfig::with_workers(1)).run_serial(&grid);
    assert!(
        reference.sink.crashes > 0,
        "campaign must actually crash or this parity test proves nothing"
    );
    assert_eq!(reference.sink.quarantined, 0);
    for workers in [1usize, 2, 8] {
        let run = FleetEngine::new(assets.clone(), FleetConfig::with_workers(workers)).run(&grid);
        assert_eq!(
            run.signatures(),
            reference.signatures(),
            "recovered-cell signatures diverged at {workers} workers"
        );
        for (got, want) in run.outcomes.iter().zip(&reference.outcomes) {
            assert_eq!(got.crash_log, want.crash_log, "crash ledger diverged: {}", got.label);
            assert_eq!(got.sup_log, want.sup_log, "degradation log diverged: {}", got.label);
        }
        assert_eq!(run.sink.crashes, reference.sink.crashes);
        assert_eq!(run.sink.restarts, reference.sink.restarts);
        assert_eq!(run.sink.replayed_frames, reference.sink.replayed_frames);
    }
}

#[test]
fn checkpoint_interval_edge_cases_k1_and_k_beyond_frames() {
    let assets = FleetAssets::urban(RES);
    let engine = FleetEngine::new(assets.clone(), FleetConfig::with_workers(1));
    let want = reference(&assets, &CellSpec::new("crashy", crashy(), SEED, FRAMES));

    // K=1: checkpoint before every frame; each restart replays exactly
    // the crashed frame.
    let k1 = CellSpec::new("crashy", crashy(), SEED, FRAMES)
        .with_recovery(RecoveryPolicy::new(1, 16));
    let k1 = engine.run_serial(std::slice::from_ref(&k1)).outcomes.remove(0);
    assert_eq!(k1.replayed_frames, k1.restarts, "K=1 replays exactly 1 frame per restart");
    assert_eq!(k1.output_digest, want.output_digest);

    // K far beyond the run: only the unconditional frame-0 checkpoint
    // (plus post-restart refreshes) exists, so the first crash replays
    // the whole prefix.
    let kbig = CellSpec::new("crashy", crashy(), SEED, FRAMES)
        .with_recovery(RecoveryPolicy::new(10 * FRAMES as u64, 16));
    let kbig = engine.run_serial(std::slice::from_ref(&kbig)).outcomes.remove(0);
    assert_eq!(kbig.output_digest, want.output_digest);
    assert!(
        kbig.replayed_frames >= k1.replayed_frames,
        "sparser checkpoints cannot replay less: {} < {}",
        kbig.replayed_frames,
        k1.replayed_frames
    );
    assert_eq!(kbig.frames, FRAMES as u64);
}

#[test]
fn exhausted_restart_budget_parks_in_terminal_safe_stop() {
    let assets = FleetAssets::urban(RES);
    // Crash every frame with a budget of 1: first crash restarts, the
    // second exhausts the budget and parks the vehicle.
    let spec = CellSpec::new("doomed", FaultConfig { crash_rate: 1.0, ..FaultConfig::off() }, 3, 10)
        .with_recovery(RecoveryPolicy::new(2, 1));
    let engine = FleetEngine::new(assets, FleetConfig::with_workers(1));
    let outcome = engine.run_serial(std::slice::from_ref(&spec)).outcomes.remove(0);
    assert_eq!(outcome.frames, 10, "a parked cell still completes its frame budget");
    assert_eq!(outcome.restarts, 1, "budget of 1 allows exactly one restart");
    assert_eq!(outcome.crashes, 2, "restart crash + exhausting crash");
    assert!(!outcome.quarantined, "exhaustion parks; it does not quarantine");
    assert!(outcome.safe_stops >= 1);
    assert!(
        outcome.sup_log.iter().any(|l| l.contains("restart budget exhausted")),
        "SafeStop must cite the exhausted budget: {:?}",
        outcome.sup_log
    );
    assert!(outcome.crash_log.last().expect("ledger").contains("budget exhausted"));
}

#[test]
fn crash_without_recovery_policy_quarantines_the_cell() {
    let assets = FleetAssets::urban(RES);
    let spec = CellSpec::new("bare", FaultConfig { crash_rate: 1.0, ..FaultConfig::off() }, 3, 10);
    let engine = FleetEngine::new(assets, FleetConfig::with_workers(1));
    let result = engine.run_serial(std::slice::from_ref(&spec));
    let outcome = &result.outcomes[0];
    assert!(outcome.quarantined);
    assert_eq!(outcome.crashes, 1, "the first crash froze the cell");
    assert_eq!(outcome.restarts, 0);
    assert_eq!(outcome.frames, 0, "crash on frame 0 means nothing completed");
    assert!(outcome.crash_log[0].contains("quarantined"));
    assert_eq!(result.sink.quarantined, 1);
    // The crash dumped the black box with the panic payload attached.
    assert!(
        outcome.dumps.iter().any(|d| d.records.iter().any(|r| r.crashed)),
        "quarantine must leave a flight dump with the crash record"
    );
}
