//! Cross-crate fault-injection guarantees: the supervisor is a
//! transparent wrapper when faults are off, and a seeded fault
//! campaign is bit-reproducible at any runtime thread count.

use adsim::core::{
    build_prior_map, NativePipeline, NativePipelineConfig, Supervisor, SupervisorConfig,
};
use adsim::faults::{FaultConfig, FaultInjector};
use adsim::perception::TrackedObject;
use adsim::planning::MotionPlan;
use adsim::runtime::Runtime;
use adsim::vision::Pose2;
use adsim::workload::{Resolution, Scenario, ScenarioKind};

const RES: Resolution = Resolution::Hhd;

fn pipeline(scenario: &Scenario, runtime: Runtime) -> NativePipeline {
    let camera = scenario.camera(RES);
    let poses: Vec<Pose2> = (0..96)
        .step_by(8)
        .flat_map(|i| {
            let p = scenario.pose_at(i);
            [p, Pose2::new(p.x, p.y + 25.0, p.theta), Pose2::new(p.x, p.y - 25.0, p.theta)]
        })
        .collect();
    let map = build_prior_map(scenario.world(), &camera, poses, 300, 25);
    let cfg = NativePipelineConfig { runtime, ..Default::default() };
    let mut pipe = NativePipeline::new(camera, map, cfg);
    pipe.seed_pose(scenario.pose_at(0));
    pipe
}

/// Everything deterministic about one supervised frame — poses down to
/// the bit pattern, tracks, plan, modes — excluding only the measured
/// wall-clock latencies.
fn signature(
    pose: Option<Pose2>,
    tracks: &[TrackedObject],
    plan: &MotionPlan,
    modes_any: bool,
) -> String {
    let mut s = String::new();
    match pose {
        Some(p) => s.push_str(&format!(
            "pose {:016x} {:016x} {:016x}; ",
            p.x.to_bits(),
            p.y.to_bits(),
            p.theta.to_bits()
        )),
        None => s.push_str("pose none; "),
    }
    for t in tracks {
        s.push_str(&format!(
            "trk {} {:08x} {:08x} {:08x} {:08x}; ",
            t.track_id,
            t.bbox.cx.to_bits(),
            t.bbox.cy.to_bits(),
            t.bbox.w.to_bits(),
            t.bbox.h.to_bits()
        ));
    }
    match plan {
        MotionPlan::Trajectory(t) => s.push_str(&format!("plan traj {:016x}", t.speed_mps.to_bits())),
        MotionPlan::Path(p) => {
            s.push_str(&format!("plan path {} {:016x}", p.poses.len(), p.length_m.to_bits()))
        }
        MotionPlan::EmergencyStop => s.push_str("plan stop"),
    }
    s.push_str(if modes_any { " degraded" } else { " clean" });
    s
}

/// With the injector disabled, the supervisor must be invisible: every
/// output of every frame is bit-identical to the bare pipeline's.
#[test]
fn disabled_supervisor_is_bit_identical_to_bare_pipeline() {
    let scenario = Scenario::new(ScenarioKind::UrbanDrive, 701);
    let mut bare = pipeline(&scenario, Runtime::max_parallel());
    let mut sup = Supervisor::new(
        pipeline(&scenario, Runtime::max_parallel()),
        FaultInjector::disabled(),
        SupervisorConfig::default(),
    );

    let mut localized = 0;
    for frame in scenario.stream(RES).take(8) {
        let a = bare.process(&frame.image, frame.time_s);
        let b = sup.process(&frame.image, frame.time_s);
        assert_eq!(a.pose, b.result.pose, "frame {}", frame.index);
        assert_eq!(a.tracks, b.result.tracks, "frame {}", frame.index);
        assert_eq!(a.fused, b.result.fused, "frame {}", frame.index);
        assert_eq!(a.plan, b.result.plan, "frame {}", frame.index);
        assert!(b.faults.is_clean(), "disabled injector must not fault");
        assert!(!b.modes.any(), "no degraded mode on a clean run");
        if a.pose.is_some() {
            localized += 1;
        }
    }
    // Parity on naturally-lost frames is also exact (the fallback only
    // engages on injected loss), but the comparison is only meaningful
    // if the scenario itself tracks.
    assert!(localized >= 6, "scenario must localize for the parity to matter");
    assert!(sup.events().is_empty(), "no degradation events on a clean run");
    assert_eq!(sup.recovery_stats().frames_degraded, 0);
}

/// Same seed + same fault config => identical event log and identical
/// per-frame outputs, no matter how many worker threads the pipeline
/// runs on (1, 2, 8) — the supervisor gates on injected virtual state,
/// never on wall clock.
#[test]
fn fault_campaign_is_deterministic_across_thread_counts() {
    let scenario = Scenario::new(ScenarioKind::UrbanDrive, 702);
    let cfg = FaultConfig {
        blackout_frames: (2, 5),
        lock_loss_frames: (2, 5),
        ..FaultConfig::stress()
    };
    let frames = 12;

    let mut logs: Vec<Vec<String>> = Vec::new();
    let mut outputs: Vec<Vec<String>> = Vec::new();
    for threads in [1usize, 2, 8] {
        let mut sup = Supervisor::new(
            pipeline(&scenario, Runtime::new(threads)),
            FaultInjector::new(0xC0FFEE, cfg.clone()),
            SupervisorConfig::default(),
        );
        let mut sigs = Vec::with_capacity(frames);
        for frame in scenario.stream(RES).take(frames) {
            let out = sup.process(&frame.image, frame.time_s);
            sigs.push(signature(
                out.result.pose,
                &out.result.tracks,
                &out.result.plan,
                out.modes.any(),
            ));
        }
        logs.push(sup.events().iter().map(|e| e.to_string()).collect());
        outputs.push(sigs);
    }

    assert!(
        !logs[0].is_empty(),
        "stress config over {frames} frames must produce degradation events"
    );
    assert_eq!(logs[0], logs[1], "event log must not depend on thread count (1 vs 2)");
    assert_eq!(logs[0], logs[2], "event log must not depend on thread count (1 vs 8)");
    assert_eq!(outputs[0], outputs[1], "outputs must not depend on thread count (1 vs 2)");
    assert_eq!(outputs[0], outputs[2], "outputs must not depend on thread count (1 vs 8)");
}
