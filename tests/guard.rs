//! Cross-crate safety-monitor guarantees: the guard layer is invisible
//! on clean runs (bit-identical outputs, zero trips), the checksummed
//! data plane catches essentially every injected payload fault, every
//! detection escalates the supervisor the same frame, and the whole
//! guarded campaign stays thread-count invariant.

use adsim::core::{
    build_prior_map, GuardConfig, Monitor, NativePipeline, NativePipelineConfig, Supervisor,
    SupervisorConfig,
};
use adsim::faults::{FaultConfig, FaultInjector};
use adsim::runtime::Runtime;
use adsim::vision::Pose2;
use adsim::workload::{Resolution, Scenario, ScenarioKind};

const RES: Resolution = Resolution::Hhd;

fn pipeline(scenario: &Scenario, runtime: Runtime) -> NativePipeline {
    let camera = scenario.camera(RES);
    let poses: Vec<Pose2> = (0..96)
        .step_by(8)
        .flat_map(|i| {
            let p = scenario.pose_at(i);
            [p, Pose2::new(p.x, p.y + 25.0, p.theta), Pose2::new(p.x, p.y - 25.0, p.theta)]
        })
        .collect();
    let map = build_prior_map(scenario.world(), &camera, poses, 300, 25);
    let cfg = NativePipelineConfig { runtime, ..Default::default() };
    let mut pipe = NativePipeline::new(camera, map, cfg);
    pipe.seed_pose(scenario.pose_at(0));
    pipe
}

fn supervisor(scenario: &Scenario, threads: Runtime, faults: FaultConfig, guard: GuardConfig) -> Supervisor {
    Supervisor::new(
        pipeline(scenario, threads),
        FaultInjector::new(0x6A5D, faults),
        SupervisorConfig { guard, ..SupervisorConfig::default() },
    )
}

/// With faults off, the full guard stack (digest checks, dual-execution
/// voting armed, all monitors) must be invisible: every output of every
/// frame bit-identical to the bare pipeline, zero checks tripped.
#[test]
fn armed_guard_is_bit_identical_to_bare_pipeline_on_clean_runs() {
    let scenario = Scenario::new(ScenarioKind::UrbanDrive, 701);
    let mut bare = pipeline(&scenario, Runtime::max_parallel());
    let mut sup = supervisor(
        &scenario,
        Runtime::max_parallel(),
        FaultConfig::off(),
        // Voting is the most invasive guard config; on clean frames the
        // digests match so the second execution never even runs.
        GuardConfig::voting(),
    );
    for frame in scenario.stream(RES).take(8) {
        let a = bare.process(&frame.image, frame.time_s);
        let b = sup.process(&frame.image, frame.time_s);
        assert_eq!(a.pose, b.result.pose, "frame {}", frame.index);
        assert_eq!(a.tracks, b.result.tracks, "frame {}", frame.index);
        assert_eq!(a.fused, b.result.fused, "frame {}", frame.index);
        assert_eq!(a.plan, b.result.plan, "frame {}", frame.index);
        assert!(!b.modes.any(), "no degraded mode on a clean run");
    }
    let gs = sup.guard_stats();
    assert_eq!(gs.frames, 8);
    assert_eq!(gs.digest_checks, 8, "every hand-off must be digest-checked");
    assert_eq!(gs.digest_mismatches, 0, "clean frames must never mismatch");
    assert_eq!(gs.stuck_detected, 0, "a moving scenario never looks stuck");
    assert_eq!(gs.monitor_trips(), 0, "no monitor may trip on a clean run");
    assert!(sup.guard_events().is_empty());
    assert!(sup.events().is_empty(), "no degradation events on a clean run");
}

/// Every injected data-plane fault (blackout, stuck sensor, pixel
/// corruption) is caught at the stage boundary, and every confirmed-bad
/// payload leaves the supervisor degraded the same frame.
#[test]
fn data_plane_faults_are_detected_and_escalated() {
    let scenario = Scenario::new(ScenarioKind::UrbanDrive, 703);
    let faults = FaultConfig {
        blackout_rate: 0.15,
        blackout_frames: (1, 2),
        pixel_corruption_rate: 0.35,
        corrupted_fraction: 0.02,
        stuck_rate: 0.2,
        stuck_frames: (1, 2),
        ..FaultConfig::off()
    };
    let mut sup =
        supervisor(&scenario, Runtime::max_parallel(), faults, GuardConfig::default());
    let mut injected = 0u64;
    for frame in scenario.stream(RES).take(12) {
        let before = *sup.guard_stats();
        let out = sup.process(&frame.image, frame.time_s);
        let after = *sup.guard_stats();
        let fault = out.faults.blackout
            || out.faults.stuck
            || out.faults.pixel_corruption.is_some();
        injected += fault as u64;
        let caught = (after.digest_mismatches + after.stuck_detected)
            > (before.digest_mismatches + before.stuck_detected);
        assert_eq!(caught, fault, "frame {}: detection must match injection", frame.index);
        if caught {
            assert!(
                out.modes.any(),
                "frame {}: a bad payload must escalate the same frame",
                frame.index
            );
        }
    }
    assert!(injected >= 4, "the seed must inject enough faults to make coverage meaningful");
    let gs = sup.guard_stats();
    assert_eq!(gs.digest_mismatches + gs.stuck_detected, injected, "100% detection coverage");
}

/// Divergence-scale tracker drift trips the tracker-consistency
/// monitor, and the supervisor logs the monitor as the cause.
#[test]
fn tracker_divergence_trips_the_tracker_monitor() {
    let scenario = Scenario::new(ScenarioKind::UrbanDrive, 705);
    let faults = FaultConfig {
        tracker_divergence_rate: 1.0,
        tracker_divergence_shift: 0.5,
        ..FaultConfig::off()
    };
    let mut sup =
        supervisor(&scenario, Runtime::max_parallel(), faults, GuardConfig::default());
    for frame in scenario.stream(RES).take(8) {
        sup.process(&frame.image, frame.time_s);
    }
    assert!(
        sup.guard_stats().tra_trips > 0,
        "0.5-unit track jumps must trip the tracker monitor: {:?}",
        sup.guard_stats()
    );
    assert!(
        sup.guard_events().iter().any(|e| e.monitor == Monitor::Tracker),
        "tracker trips must be logged as guard events"
    );
}

/// Timestamp skew far beyond the plausible inter-frame gap trips the
/// localization-residual monitor's timestamp check.
#[test]
fn timestamp_skew_trips_the_localization_monitor() {
    let scenario = Scenario::new(ScenarioKind::UrbanDrive, 707);
    let faults = FaultConfig {
        timestamp_skew_rate: 1.0,
        timestamp_skew_s: (0.8, 1.5),
        ..FaultConfig::off()
    };
    let mut sup =
        supervisor(&scenario, Runtime::max_parallel(), faults, GuardConfig::default());
    for frame in scenario.stream(RES).take(8) {
        sup.process(&frame.image, frame.time_s);
    }
    assert!(
        sup.guard_stats().loc_trips > 0,
        "0.8-1.5 s skews on a 0.1 s cadence must trip the LOC monitor: {:?}",
        sup.guard_stats()
    );
}

/// A guarded fault campaign is bit-reproducible at any thread count:
/// the degradation log, the guard event log and the guard counters all
/// gate on injected virtual state, never on wall clock.
#[test]
fn guarded_campaign_is_thread_count_invariant() {
    let scenario = Scenario::new(ScenarioKind::UrbanDrive, 709);
    let faults = FaultConfig {
        blackout_frames: (2, 5),
        lock_loss_frames: (2, 5),
        timestamp_skew_s: (0.6, 1.2),
        ..FaultConfig::stress()
    };
    let mut logs: Vec<Vec<String>> = Vec::new();
    for threads in [1usize, 2, 8] {
        let mut sup = supervisor(
            &scenario,
            Runtime::new(threads),
            faults.clone(),
            GuardConfig::default(),
        );
        for frame in scenario.stream(RES).take(10) {
            sup.process(&frame.image, frame.time_s);
        }
        let mut log: Vec<String> = sup.events().iter().map(|e| e.to_string()).collect();
        log.extend(sup.guard_events().iter().map(|e| e.to_string()));
        log.push(format!("{:?}", sup.guard_stats()));
        logs.push(log);
    }
    assert_eq!(logs[0], logs[1], "guarded campaign must not depend on thread count (1 vs 2)");
    assert_eq!(logs[0], logs[2], "guarded campaign must not depend on thread count (1 vs 8)");
}
