// Property-based fuzz suite: compiled only with `--features fuzz`,
// which additionally requires restoring the `proptest` dev-dependency
// (removed so offline builds never touch the registry; see DESIGN.md).
#![cfg(feature = "fuzz")]
//! Property-based tests over the core data structures and numerical
//! invariants, using proptest.

use adsim::dnn::detection::BBox;
use adsim::stats::LatencyRecorder;
use adsim::tensor::{ops, Tensor};
use adsim::vision::{geometry::normalize_angle, Descriptor, Point2, Pose2};
use proptest::prelude::*;

fn small_f32() -> impl Strategy<Value = f32> {
    (-100i32..100).prop_map(|v| v as f32 / 10.0)
}

fn pose() -> impl Strategy<Value = Pose2> {
    (-100.0f64..100.0, -100.0f64..100.0, -10.0f64..10.0)
        .prop_map(|(x, y, t)| Pose2::new(x, y, t))
}

fn point() -> impl Strategy<Value = Point2> {
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Point2::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- tensor kernels ----

    #[test]
    fn conv2d_im2col_matches_direct(
        n in 1usize..3, c_in in 1usize..4, c_out in 1usize..4,
        h in 3usize..8, w in 3usize..8,
        k in 1usize..4, stride in 1usize..3, pad in 0usize..2,
        seed in 0u64..1000,
    ) {
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as i32 % 100) as f32 / 50.0
        };
        let input = Tensor::from_fn([n, c_in, h, w], |_| next());
        let weight = Tensor::from_fn([c_out, c_in, k, k], |_| next());
        let fast = ops::conv2d(&input, &weight, None, stride, pad).unwrap();
        let slow = ops::conv2d_direct(&input, &weight, None, stride, pad).unwrap();
        prop_assert_eq!(fast.shape(), slow.shape());
        for (a, b) in fast.iter().zip(slow.iter()) {
            prop_assert!((a - b).abs() < 1e-3, "{} vs {}", a, b);
        }
    }

    #[test]
    fn tensor_add_commutes(v1 in prop::collection::vec(small_f32(), 12), v2 in prop::collection::vec(small_f32(), 12)) {
        let a = Tensor::from_vec([3, 4], v1).unwrap();
        let b = Tensor::from_vec([3, 4], v2).unwrap();
        prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
    }

    #[test]
    fn softmax_is_a_distribution(v in prop::collection::vec(small_f32(), 8)) {
        let t = Tensor::from_vec([2, 4], v).unwrap();
        let s = ops::softmax(&t);
        for row in 0..2 {
            let sum: f32 = s.as_slice()[row * 4..(row + 1) * 4].iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }
        prop_assert!(s.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn max_pool_output_bounded_by_input(v in prop::collection::vec(small_f32(), 16)) {
        let t = Tensor::from_vec([1, 1, 4, 4], v.clone()).unwrap();
        let p = ops::max_pool2d(&t, 2, 2).unwrap();
        let max_in = v.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(p.iter().all(|&x| x <= max_in));
        prop_assert!((p.max() - max_in).abs() < 1e-6, "global max survives pooling");
    }

    // ---- geometry ----

    #[test]
    fn pose_transform_round_trips(p in pose(), q in point()) {
        let r = p.inverse_transform(p.transform(q));
        prop_assert!((r.x - q.x).abs() < 1e-6 && (r.y - q.y).abs() < 1e-6);
    }

    #[test]
    fn pose_inverse_composes_to_identity(p in pose()) {
        let id = p.compose(&p.inverse());
        prop_assert!(id.x.abs() < 1e-6 && id.y.abs() < 1e-6 && id.theta.abs() < 1e-6);
    }

    #[test]
    fn pose_transform_preserves_distance(p in pose(), a in point(), b in point()) {
        let d0 = a.distance(&b);
        let d1 = p.transform(a).distance(&p.transform(b));
        prop_assert!((d0 - d1).abs() < 1e-6, "rigid transforms are isometries");
    }

    #[test]
    fn normalized_angles_stay_in_range(t in -100.0f64..100.0) {
        let n = normalize_angle(t);
        prop_assert!(n > -std::f64::consts::PI - 1e-12 && n <= std::f64::consts::PI + 1e-12);
        // Same direction: sin/cos agree.
        prop_assert!((n.sin() - t.sin()).abs() < 1e-6);
        prop_assert!((n.cos() - t.cos()).abs() < 1e-6);
    }

    // ---- bounding boxes ----

    #[test]
    fn iou_is_symmetric_and_bounded(
        ax in 0.0f32..1.0, ay in 0.0f32..1.0, aw in 0.01f32..0.5, ah in 0.01f32..0.5,
        bx in 0.0f32..1.0, by in 0.0f32..1.0, bw in 0.01f32..0.5, bh in 0.01f32..0.5,
    ) {
        let a = BBox::new(ax, ay, aw, ah);
        let b = BBox::new(bx, by, bw, bh);
        let iab = a.iou(&b);
        let iba = b.iou(&a);
        prop_assert!((iab - iba).abs() < 1e-6);
        prop_assert!((0.0..=1.0 + 1e-6).contains(&iab));
        // Self-IoU through corner round-trips suffers f32 cancellation
        // on small boxes; allow a relative slack.
        prop_assert!((a.iou(&a) - 1.0).abs() < 5e-3);
    }

    // ---- descriptors ----

    #[test]
    fn hamming_is_a_metric(
        a in prop::array::uniform32(any::<u8>()),
        b in prop::array::uniform32(any::<u8>()),
        c in prop::array::uniform32(any::<u8>()),
    ) {
        let da = Descriptor::new(a);
        let db = Descriptor::new(b);
        let dc = Descriptor::new(c);
        prop_assert_eq!(da.hamming(&db), db.hamming(&da));
        prop_assert_eq!(da.hamming(&da), 0);
        prop_assert!(da.hamming(&dc) <= da.hamming(&db) + db.hamming(&dc), "triangle inequality");
    }

    // ---- statistics ----

    #[test]
    fn quantiles_are_monotone(samples in prop::collection::vec(0.0f64..1000.0, 2..200)) {
        let mut rec: LatencyRecorder = samples.iter().copied().collect();
        let mut last = 0.0;
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let v = rec.quantile_fraction(q);
            prop_assert!(v >= last - 1e-9, "quantile({q}) = {v} < {last}");
            last = v;
        }
        let s = rec.summary();
        prop_assert!(s.mean >= rec.min() && s.mean <= rec.max());
        prop_assert!((rec.quantile_fraction(1.0) - rec.max()).abs() < 1e-9);
    }

    // ---- pose solving ----

    #[test]
    fn estimate_pose_recovers_rigid_motion(p in pose(), seed in 0u64..500) {
        use adsim::slam::{estimate_pose, Correspondence};
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as i32 % 200) as f64 / 10.0 - 10.0
        };
        let corrs: Vec<Correspondence> = (0..8)
            .map(|_| {
                let v = Point2::new(next(), next());
                Correspondence { vehicle: v, world: p.transform(v) }
            })
            .collect();
        // Degenerate point sets (all nearly collinear at one spot) are
        // excluded by construction noise above.
        if let Some(est) = estimate_pose(&corrs, 6) {
            prop_assert!(est.pose.distance(&p) < 1e-6, "{:?} vs {:?}", est.pose, p);
        } else {
            // Only acceptable when points were degenerate.
            let spread = corrs
                .iter()
                .map(|c| c.vehicle.distance(&corrs[0].vehicle))
                .fold(0.0f64, f64::max);
            prop_assert!(spread < 1e-3, "non-degenerate solve must succeed");
        }
    }
}
