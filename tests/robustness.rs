//! Robustness of the localization engine to appearance change —
//! the reason ORB-SLAM carries a map-update step ("the map is built
//! under different weather conditions", paper §3.1.3).

use adsim::core::build_prior_map;
use adsim::slam::{LocalizeOutcome, Localizer, LocalizerConfig};
use adsim::vision::{OrbExtractor, Pose2};
use adsim::workload::{Conditions, Resolution, Scenario, ScenarioKind};

fn localizer(scenario: &Scenario) -> Localizer {
    let camera = scenario.camera(Resolution::Hhd);
    let poses: Vec<Pose2> = (0..12)
        .flat_map(|i| {
            let p = scenario.pose_at(i * 10);
            [p, Pose2::new(p.x, p.y + 25.0, p.theta), Pose2::new(p.x, p.y - 25.0, p.theta)]
        })
        .collect();
    // The prior map is built in *clear* conditions.
    let map = build_prior_map(scenario.world(), &camera, poses, 300, 25);
    let mut loc = Localizer::new(
        map,
        camera,
        OrbExtractor::new(300, 25).with_levels(2),
        LocalizerConfig { map_update: false, ..Default::default() },
    );
    loc.seed_pose(scenario.pose_at(0));
    loc
}

fn run(conditions: impl Fn(u64) -> Conditions) -> (usize, f64) {
    let scenario = Scenario::new(ScenarioKind::UrbanDrive, 900);
    let camera = scenario.camera(Resolution::Hhd);
    let mut loc = localizer(&scenario);
    let mut tracked = 0;
    let mut err_sum = 0.0;
    for i in 0..10u64 {
        let truth = scenario.pose_at(i);
        let frame = scenario.world().render_with(
            &camera,
            &truth,
            i as f64 / 10.0,
            &conditions(i),
        );
        let res = loc.localize(&frame);
        if let Some(pose) = res.pose {
            if res.outcome == LocalizeOutcome::Tracked {
                tracked += 1;
            }
            err_sum += pose.distance(&truth);
        }
    }
    (tracked, err_sum / tracked.max(1) as f64)
}

#[test]
fn clear_conditions_track_every_frame() {
    let (tracked, err) = run(|_| Conditions::clear());
    assert!(tracked >= 9, "tracked {tracked}/10");
    assert!(err < 0.3, "error {err:.3} m");
}

#[test]
fn brightness_shift_is_free_for_binary_descriptors() {
    // BRIEF compares pixel pairs, so a uniform exposure change should
    // not disturb matching at all.
    let (tracked, err) = run(|_| Conditions { brightness: -35, noise: 0, seed: 0 });
    assert!(tracked >= 9, "tracked {tracked}/10 under -35 exposure");
    assert!(err < 0.5, "error {err:.3} m");
}

#[test]
fn moderate_sensor_noise_is_tolerated() {
    let (tracked, err) = run(Conditions::overcast);
    assert!(tracked >= 8, "tracked {tracked}/10 in overcast conditions");
    assert!(err < 1.0, "error {err:.3} m");
}

#[test]
fn severe_conditions_degrade_tracking() {
    let (clear_tracked, _) = run(|_| Conditions::clear());
    let (severe_tracked, _) = run(Conditions::severe);
    assert!(
        severe_tracked < clear_tracked,
        "severe weather must hurt: {severe_tracked} vs {clear_tracked}"
    );
}
