//! Fleet campaign engine guarantees: per-cell outputs are byte-identical
//! between the serial reference and work-stealing fleet runs at any
//! worker count, the streamed sink matches serial aggregation exactly
//! on its deterministic counters, and weight sharing survives a real
//! campaign (cells never detach the shared model storage).

use adsim::core::{DetectorKind, GuardConfig, NativePipelineConfig, SupervisorConfig, TrackerKind};
use adsim::dnn::models::{goturn_tiny_shared, yolo_tiny_shared};
use adsim::faults::FaultConfig;
use adsim::fleet::{CellSpec, FleetAssets, FleetConfig, FleetEngine};
use adsim::workload::Resolution;

const RES: Resolution = Resolution::Hhd;
const FRAMES: usize = 8;

/// A small but adversarial campaign: a clean cell, a data-fault cell,
/// a voting-guard cell, and a stress cell that escalates all the way to
/// SafeStop mid-campaign.
fn specs() -> Vec<CellSpec> {
    let data = FaultConfig {
        blackout_rate: 0.06,
        blackout_frames: (2, 5),
        pixel_corruption_rate: 0.25,
        corrupted_fraction: 0.05,
        stuck_rate: 0.12,
        stuck_frames: (1, 3),
        ..FaultConfig::off()
    };
    vec![
        CellSpec::new("clean", FaultConfig::off(), 0x5EED1, FRAMES),
        CellSpec::new("data", data.clone(), 0x5EED2, FRAMES),
        CellSpec::new("voting", data, 0x5EED2, FRAMES).with_guard(GuardConfig::voting()),
        CellSpec::new("stress", FaultConfig::stress(), 0x5EED3, FRAMES),
    ]
}

#[test]
fn fleet_outputs_byte_identical_across_worker_counts() {
    let assets = FleetAssets::urban(RES);
    let grid = specs();

    let reference =
        FleetEngine::new(assets.clone(), FleetConfig::with_workers(1)).run_serial(&grid);
    // The stress cell must actually exercise the escalation path, or
    // this parity test proves nothing about degraded-mode determinism.
    let stress = &reference.outcomes[3];
    assert!(stress.safe_stops > 0, "stress cell never reached SafeStop");
    assert!(stress.episodes > 0, "stress cell never degraded");
    assert_eq!(
        reference.outcomes.iter().map(|c| c.uncaught).sum::<u64>(),
        0,
        "escalations dropped in the reference run"
    );

    for workers in [1usize, 2, 8] {
        let run = FleetEngine::new(assets.clone(), FleetConfig::with_workers(workers)).run(&grid);
        assert_eq!(run.workers, workers);
        assert_eq!(
            run.signatures(),
            reference.signatures(),
            "cell signatures diverged at {workers} workers"
        );
        for (got, want) in run.outcomes.iter().zip(&reference.outcomes) {
            assert_eq!(got.label, want.label, "spec order lost at {workers} workers");
            assert_eq!(got.sup_log, want.sup_log, "degradation log diverged: {}", got.label);
            assert_eq!(got.guard_log, want.guard_log, "guard log diverged: {}", got.label);
            assert_eq!(
                got.output_digest, want.output_digest,
                "frame outputs diverged: {}",
                got.label
            );
        }
        // The streamed sink is a merge of per-cell histograms plus
        // deterministic counters; everything except wall-clock-derived
        // bucket contents must match serial aggregation exactly.
        assert_eq!(run.sink.cells, reference.sink.cells);
        assert_eq!(run.sink.frames, reference.sink.frames);
        assert_eq!(run.sink.injected_data_faults, reference.sink.injected_data_faults);
        assert_eq!(run.sink.detected_data_faults, reference.sink.detected_data_faults);
        assert_eq!(run.sink.uncaught, reference.sink.uncaught);
        assert_eq!(run.sink.safe_stops, reference.sink.safe_stops);
        assert_eq!(run.sink.episodes, reference.sink.episodes);
        // Every recorded frame landed in the merged end-to-end histogram.
        assert_eq!(run.sink.stages.end_to_end.count(), run.sink.frames);
    }
}

/// The tentpole guarantee: a campaign served by cross-vehicle batched
/// DNN inference reproduces the unbatched campaign byte for byte —
/// signatures, logs, output digests, per-cell telemetry and the fleet
/// merge — on any batch-runtime worker count, while actually sharing
/// forward passes across vehicles.
#[test]
fn batched_campaign_matches_unbatched_byte_for_byte() {
    let assets = FleetAssets::urban(RES);
    let fleet_cfg = |workers| FleetConfig {
        pipeline: NativePipelineConfig {
            detector: DetectorKind::Yolo { grid: 4, threshold: 0.5 },
            ..FleetConfig::default().pipeline
        },
        ..FleetConfig::with_workers(workers)
    };
    let grid = specs();
    let reference = FleetEngine::new(assets.clone(), fleet_cfg(1)).run_serial(&grid);

    for workers in [1usize, 2, 8] {
        let engine = FleetEngine::new(assets.clone(), fleet_cfg(workers));
        let (run, stats) = engine.run_batched(&grid);
        assert!(stats.batches > 0, "no batched forward pass ran");
        assert!(
            stats.largest_batch >= 2,
            "same-variant cells never shared a forward pass: {stats:?}"
        );
        assert_eq!(
            run.signatures(),
            reference.signatures(),
            "batched signatures diverged at {workers} workers"
        );
        for (got, want) in run.outcomes.iter().zip(&reference.outcomes) {
            assert_eq!(got.sup_log, want.sup_log, "degradation log diverged: {}", got.label);
            assert_eq!(got.guard_log, want.guard_log, "guard log diverged: {}", got.label);
            assert_eq!(got.gov_log, want.gov_log, "governor log diverged: {}", got.label);
            assert_eq!(
                got.output_digest, want.output_digest,
                "frame outputs diverged: {}",
                got.label
            );
            assert_eq!(
                got.telemetry.snapshot_json(),
                want.telemetry.snapshot_json(),
                "per-cell telemetry diverged: {}",
                got.label
            );
        }
        assert_eq!(
            run.telemetry.snapshot_json(),
            reference.telemetry.snapshot_json(),
            "fleet-merged telemetry diverged at {workers} workers"
        );
        assert_eq!(run.sink.cells, reference.sink.cells);
        assert_eq!(run.sink.frames, reference.sink.frames);
        assert_eq!(run.sink.injected_data_faults, reference.sink.injected_data_faults);
        assert_eq!(run.sink.detected_data_faults, reference.sink.detected_data_faults);
        assert_eq!(run.sink.uncaught, reference.sink.uncaught);
        assert_eq!(run.sink.safe_stops, reference.sink.safe_stops);
        assert_eq!(run.sink.episodes, reference.sink.episodes);
    }
}

#[test]
fn campaign_cells_share_prior_map_and_weights() {
    let assets = FleetAssets::urban(RES);
    // Two supervisors built from the same assets share the prior map Arc…
    let cfg = FleetConfig::default().pipeline;
    let a = assets.supervisor(1, FaultConfig::off(), SupervisorConfig::default(), &cfg);
    let b = assets.supervisor(2, FaultConfig::off(), SupervisorConfig::default(), &cfg);
    assert!(
        a.pipeline().localizer().map().shares_prior_with(b.pipeline().localizer().map()),
        "cells must share one prior map allocation"
    );
    drop((a, b));

    // …and running a real campaign on the DNN pipeline never detaches
    // the cached model weights: clones taken after the campaign still
    // share storage with clones taken before (inference is read-only on
    // params).
    let yolo_before = yolo_tiny_shared(4);
    let goturn_before = goturn_tiny_shared();
    let fleet_cfg = FleetConfig {
        pipeline: NativePipelineConfig {
            detector: DetectorKind::Yolo { grid: 4, threshold: 0.5 },
            tracker: TrackerKind::Goturn,
            ..FleetConfig::default().pipeline
        },
        ..FleetConfig::with_workers(2)
    };
    let engine = FleetEngine::new(assets, fleet_cfg);
    engine.run(&specs()[..2]);
    assert!(yolo_before.shares_weights(&yolo_tiny_shared(4)));
    assert!(goturn_before.shares_weights(&goturn_tiny_shared()));
}
