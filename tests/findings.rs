//! The paper's six findings, asserted against this reproduction.

use adsim::core::{ModeledPipeline, PlatformConfig};
use adsim::platform::{Component, LatencyModel, Platform};
use adsim::stats::LatencyRecorder;
use adsim::vehicle::power::SystemPower;
use adsim::vehicle::range::ev_range_reduction;
use adsim::workload::Resolution;
use adsim_stats::Rng64;

fn sample_summary(
    model: &LatencyModel,
    c: Component,
    p: Platform,
    n: usize,
) -> adsim::stats::LatencySummary {
    let mut rng = Rng64::new(0xF1D);
    let rec: LatencyRecorder = (0..n).map(|_| model.sample_ms(c, p, &mut rng, 1.0)).collect();
    rec.summary()
}

/// Finding 1: multicore CPUs cannot run the DNN-based DET/TRA engines
/// within the constraints, and the FPGA's limited DSP count keeps them
/// over budget there too.
#[test]
fn finding_1_cpus_and_fpgas_cannot_run_dnn_engines() {
    let model = LatencyModel::paper_calibrated();
    for c in [Component::Detection, Component::Tracking] {
        for p in [Platform::Cpu, Platform::Fpga] {
            let mean = model.mean_ms(c, p, 1.0);
            assert!(mean > 100.0, "{c} on {p}: mean {mean} ms should exceed 100 ms");
        }
        assert!(model.mean_ms(c, Platform::Gpu, 1.0) < 100.0);
    }
}

/// Finding 2: localization on the CPU meets the constraint on average
/// but not at the tail, so tail latency must be the evaluation metric.
#[test]
fn finding_2_tail_latency_is_the_right_metric() {
    let model = LatencyModel::paper_calibrated();
    let s = sample_summary(&model, Component::Localization, Platform::Cpu, 200_000);
    assert!(s.mean < 100.0, "mean {} looks fine...", s.mean);
    assert!(s.p99_99 > 100.0, "...but the tail {} violates the constraint", s.p99_99);
    // Accelerators do not show this gap.
    for p in Platform::ACCELERATORS {
        let s = sample_summary(&model, Component::Localization, p, 100_000);
        assert!(
            s.tail_to_mean_ratio() < 3.0,
            "{p} should be predictable, ratio {}",
            s.tail_to_mean_ratio()
        );
    }
}

/// Finding 3: specialized hardware is significantly more
/// energy-efficient than general-purpose platforms.
#[test]
fn finding_3_specialized_hardware_is_more_efficient() {
    let model = LatencyModel::paper_calibrated();
    let total = |p: Platform| -> f64 {
        Component::BOTTLENECKS.iter().map(|&c| model.power_w(c, p)).sum()
    };
    assert!(total(Platform::Fpga) < 0.5 * total(Platform::Cpu));
    assert!(total(Platform::Asic) < 0.2 * total(Platform::Gpu));
}

/// Finding 4: accelerator-based designs meet the constraints; the
/// 169x / 10x / 93x tail reductions of the abstract hold.
#[test]
fn finding_4_accelerators_make_the_system_viable() {
    let e2e_tail = |p: Platform| {
        let pipe = ModeledPipeline::new(PlatformConfig::uniform(p), 0xF4);
        pipe.analytic_tail_ms(1.0)
    };
    let cpu = e2e_tail(Platform::Cpu);
    for (p, factor) in [(Platform::Gpu, 169.0), (Platform::Fpga, 10.0), (Platform::Asic, 93.0)] {
        let measured = cpu / e2e_tail(p);
        assert!(
            (measured - factor).abs() / factor < 0.10,
            "{p}: reduction {measured:.0}x vs paper {factor:.0}x"
        );
    }
    // And a heterogeneous design reaches ~16 ms.
    let best = ModeledPipeline::new(
        PlatformConfig {
            detection: Platform::Gpu,
            tracking: Platform::Asic,
            localization: Platform::Asic,
        },
        1,
    )
    .analytic_tail_ms(1.0);
    assert!(best < 20.0, "best design tail {best:.1} ms (paper: 16.1 ms)");
}

/// Finding 5: GPU designs sacrifice >10 % of driving range once
/// storage and cooling are charged; FPGAs/ASICs stay under 5 %.
#[test]
fn finding_5_power_hungry_accelerators_hurt_driving_range() {
    let model = LatencyModel::paper_calibrated();
    let reduction = |cfg: PlatformConfig| {
        let sys = SystemPower::new(8, cfg.compute_power_w(&model), 41_000_000_000_000);
        ev_range_reduction(sys.total_w())
    };
    assert!(reduction(PlatformConfig::uniform(Platform::Gpu)) > 0.10);
    assert!(reduction(PlatformConfig::uniform(Platform::Asic)) < 0.05);
    assert!(reduction(PlatformConfig::uniform(Platform::Fpga)) < 0.08);
}

/// Finding 6: no configuration sustains QHD under the 100 ms tail
/// constraint, while some survive FHD.
#[test]
fn finding_6_resolution_scaling_hits_a_compute_wall() {
    let fhd = Resolution::Fhd.scale_from(Resolution::Kitti);
    let qhd = Resolution::Qhd.scale_from(Resolution::Kitti);
    let mut any_fhd = false;
    for cfg in PlatformConfig::all_combinations() {
        let pipe = ModeledPipeline::new(cfg, 1);
        if pipe.analytic_tail_ms(fhd) <= 100.0 {
            any_fhd = true;
        }
        assert!(
            pipe.analytic_tail_ms(qhd) > 100.0,
            "{} unexpectedly sustains QHD",
            cfg.label()
        );
    }
    assert!(any_fhd, "some configuration must sustain FHD");
}
