//! Cross-crate tracing guarantees: recording never perturbs pipeline
//! outputs, the disabled recorder is cheap enough to leave compiled
//! in, the Chrome export is well-formed JSON, runtime workers and
//! supervisor degradations surface in the trace.

use adsim::core::{
    build_prior_map, ModeledPipeline, ModeledSupervisor, NativePipeline, NativePipelineConfig,
    PlatformConfig, SupervisorConfig,
};
use adsim::faults::{FaultConfig, FaultInjector};
use adsim::platform::Platform;
use adsim::runtime::Runtime;
use adsim::trace::{validate_json, worker_utilization, EventKind, TraceSession};
use adsim::vision::Pose2;
use adsim::workload::{Resolution, Scenario, ScenarioKind};

const RES: Resolution = Resolution::Hhd;
const FRAMES: usize = 5;

fn pipeline(scenario: &Scenario) -> NativePipeline {
    let camera = scenario.camera(RES);
    let poses: Vec<Pose2> = (0..96)
        .step_by(8)
        .flat_map(|i| {
            let p = scenario.pose_at(i);
            [p, Pose2::new(p.x, p.y + 25.0, p.theta), Pose2::new(p.x, p.y - 25.0, p.theta)]
        })
        .collect();
    let map = build_prior_map(scenario.world(), &camera, poses, 300, 25);
    let mut pipe = NativePipeline::new(camera, map, NativePipelineConfig::default());
    pipe.seed_pose(scenario.pose_at(0));
    pipe
}

/// Everything deterministic about a run, down to the bit pattern.
fn drive(scenario: &Scenario, pipe: &mut NativePipeline) -> String {
    let mut sig = String::new();
    for frame in scenario.stream(RES).take(FRAMES) {
        let out = pipe.process(&frame.image, frame.time_s);
        match out.pose {
            Some(p) => sig.push_str(&format!(
                "pose {:016x} {:016x} {:016x}; ",
                p.x.to_bits(),
                p.y.to_bits(),
                p.theta.to_bits()
            )),
            None => sig.push_str("pose none; "),
        }
        for t in &out.tracks {
            sig.push_str(&format!(
                "trk {} {:08x} {:08x} {:08x} {:08x}; ",
                t.track_id,
                t.bbox.cx.to_bits(),
                t.bbox.cy.to_bits(),
                t.bbox.w.to_bits(),
                t.bbox.h.to_bits()
            ));
        }
        sig.push('\n');
    }
    sig
}

/// Recording a session must not change a single output bit relative to
/// the same pipeline running with the recorder disabled.
#[test]
fn traced_pipeline_outputs_are_bit_identical_to_untraced() {
    let scenario = Scenario::new(ScenarioKind::UrbanDrive, 3301);
    let mut bare = pipeline(&scenario);
    let untraced = drive(&scenario, &mut bare);

    // The map build and pipeline construction stay outside the session
    // so the trace holds exactly the per-frame span taxonomy.
    let mut instrumented = pipeline(&scenario);
    let session = TraceSession::begin();
    let traced = drive(&scenario, &mut instrumented);
    let trace = session.finish();

    assert_eq!(untraced, traced, "tracing must observe, never perturb");
    // The session actually recorded the pipeline span taxonomy.
    for name in ["pipeline.frame", "stage.det", "stage.loc", "stage.tra", "stage.fusion",
        "stage.motplan", "orb.extract", "loc.orb"]
    {
        assert_eq!(
            trace.span_count(name),
            FRAMES as u64,
            "expected one {name} span per frame"
        );
    }
    assert!(trace.histogram("stage.loc").is_some());
}

/// The Chrome export of a real pipeline trace must parse as JSON and
/// carry the trace-event envelope.
#[test]
fn chrome_export_of_pipeline_trace_is_well_formed() {
    let scenario = Scenario::new(ScenarioKind::UrbanDrive, 3302);
    let mut pipe = pipeline(&scenario);
    let session = TraceSession::begin();
    drive(&scenario, &mut pipe);
    let trace = session.finish();
    assert!(!trace.is_empty());

    let json = trace.chrome_json();
    validate_json(&json).expect("chrome export must be well-formed JSON");
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"ph\":\"X\""), "must contain complete-span events");
}

/// Runtime fork-join regions surface per-worker busy spans that the
/// utilization summary can aggregate.
#[test]
fn runtime_workers_emit_utilization_spans() {
    let session = TraceSession::begin();
    let rt = Runtime::new(2);
    let mut data = vec![0u64; 64];
    rt.par_chunks_mut(&mut data, 1, |i, slot| {
        slot[0] = (i as u64) * 3 + 1;
    });
    let trace = session.finish();

    assert!(trace.span_count("runtime.region") >= 1);
    assert!(trace.span_count("runtime.worker") >= 2, "both workers must report busy spans");
    let (workers, region_ms) = worker_utilization(&trace.events);
    assert_eq!(workers.len(), 2);
    assert!(region_ms > 0.0);
    assert!(workers.iter().all(|w| w.busy_ms > 0.0 && w.regions >= 1));
    // The parallel work itself ran to completion.
    assert!(data.iter().enumerate().all(|(i, &v)| v == (i as u64) * 3 + 1));
}

/// A worker task that builds its own inner runtime (the DET/LOC fork
/// does this for ORB and DNN fan-out) emits nested region/worker
/// spans. Utilization must bill each wall-clock interval once: no
/// worker may appear busier than the total region time.
#[test]
fn nested_runtimes_keep_utilization_within_wall_clock() {
    let session = TraceSession::begin();
    let outer = Runtime::new(2);
    outer.run(2, |_| {
        let inner = Runtime::new(2);
        let mut data = vec![0u64; 256];
        inner.par_chunks_mut(&mut data, 8, |i, chunk| {
            for (j, slot) in chunk.iter_mut().enumerate() {
                *slot = (i * 8 + j) as u64;
            }
        });
        std::hint::black_box(data);
    });
    let trace = session.finish();

    let (workers, region_ms) = worker_utilization(&trace.events);
    assert!(region_ms > 0.0);
    assert!(!workers.is_empty());
    for w in &workers {
        assert!(
            w.busy_ms <= region_ms * 1.001,
            "worker {} billed {:.4} ms busy against {:.4} ms of region wall clock \
             (nested spans double-counted)",
            w.worker,
            w.busy_ms,
            region_ms
        );
    }
}

/// Supervisor degradation transitions appear as trace instants, one
/// per logged event, so mode changes line up with stage spans on the
/// timeline.
#[test]
fn supervisor_degradations_appear_as_trace_instants() {
    let session = TraceSession::begin();
    let mut sup = ModeledSupervisor::new(
        ModeledPipeline::new(PlatformConfig::uniform(Platform::Gpu), 1),
        FaultInjector::new(7, FaultConfig::stress()),
        SupervisorConfig::default(),
    );
    sup.simulate(500, 1.0);
    let logged = sup.events().len();
    let trace = session.finish();

    assert!(logged > 0, "the stress schedule must trip the supervisor");
    let instants = trace
        .events
        .iter()
        .filter(|e| e.kind == EventKind::Instant && e.name.starts_with("degrade."))
        .count();
    assert_eq!(instants, logged, "one trace instant per degradation-log entry");
}

/// The disabled recorder must be cheap enough to leave compiled into
/// every hot loop: one relaxed atomic load per span. The bound is two
/// orders of magnitude above the expected cost, so the test guards
/// against accidental locking or allocation, not cache noise.
#[test]
fn disabled_recorder_overhead_is_bounded() {
    // Hold the session lock without recording, so a concurrently
    // running test's session cannot enable tracing mid-measurement.
    let quiet = TraceSession::quiesced();
    const CALLS: u32 = 1_000_000;
    let t = std::time::Instant::now();
    for i in 0..CALLS {
        let _sp = adsim::trace::span_at("overhead.probe", i as usize);
    }
    let per_call_ns = t.elapsed().as_nanos() as f64 / f64::from(CALLS);
    assert!(quiet.finish().is_empty());
    assert!(
        per_call_ns < 1_000.0,
        "disabled span cost {per_call_ns:.1} ns/call; expected well under 1 us"
    );
}
