//! Cross-crate anytime-governor guarantees: governor-off is
//! bit-identical to the supervised baseline, the governor preserves
//! fleet byte-identity across worker counts, it acts before the
//! reactive watchdog under sustained latency drift, and every
//! degraded-mode entry balances with an exit (or a terminal safe
//! stop) once a run is finished — early termination included.

use adsim::anytime::AnytimeConfig;
use adsim::core::{
    build_prior_map, DegradationCause, DegradationEvent, DegradationEventKind, DegradedMode,
    ModeledPipeline, ModeledSupervisor, NativePipeline, NativePipelineConfig, PlatformConfig,
    Supervisor, SupervisorConfig,
};
use adsim::faults::{FaultConfig, FaultInjector};
use adsim::fleet::{CellSpec, FleetAssets, FleetConfig, FleetEngine};
use adsim::platform::Platform;
use adsim::runtime::Runtime;
use adsim::vision::Pose2;
use adsim::workload::{Resolution, Scenario, ScenarioKind};

const RES: Resolution = Resolution::Hhd;

/// A drift mix severe enough to trip the detection watchdog with the
/// governor off (load ramps past `1 + 50/40 = 2.25` within an
/// episode).
fn heavy_drift() -> FaultConfig {
    FaultConfig {
        drift_rate: 0.05,
        drift_frames: (30, 60),
        drift_per_frame: (0.05, 0.08),
        ..FaultConfig::off()
    }
}

fn governor_on() -> SupervisorConfig {
    SupervisorConfig { anytime: AnytimeConfig::on(), ..SupervisorConfig::default() }
}

fn modeled(seed: u64, faults: FaultConfig, cfg: SupervisorConfig) -> ModeledSupervisor {
    ModeledSupervisor::new(
        ModeledPipeline::new(PlatformConfig::uniform(Platform::Gpu), 1),
        FaultInjector::new(seed, faults),
        cfg,
    )
}

fn native_pipeline(scenario: &Scenario) -> NativePipeline {
    let camera = scenario.camera(RES);
    let poses: Vec<Pose2> = (0..96)
        .step_by(8)
        .flat_map(|i| {
            let p = scenario.pose_at(i);
            [p, Pose2::new(p.x, p.y + 25.0, p.theta), Pose2::new(p.x, p.y - 25.0, p.theta)]
        })
        .collect();
    let map = build_prior_map(scenario.world(), &camera, poses, 300, 25);
    let cfg = NativePipelineConfig { runtime: Runtime::serial(), ..Default::default() };
    let mut pipe = NativePipeline::new(camera, map, cfg);
    pipe.seed_pose(scenario.pose_at(0));
    pipe
}

/// With the governor disabled (the default), a supervisor must behave
/// bit-identically to the pre-anytime baseline: no knob is touched, no
/// governor event is emitted, and the *content* of a disabled anytime
/// config is inert — two differently-shaped disabled configs produce
/// identical outputs under an identical fault campaign.
#[test]
fn governor_off_is_bit_identical_to_the_supervised_baseline() {
    let scenario = Scenario::new(ScenarioKind::UrbanDrive, 801);
    let frames = 8;

    // A disabled config whose ladder and thresholds differ from the
    // default: none of it may leak into behavior while disabled.
    let weird_off = AnytimeConfig { enter_fraction: 0.01, dwell_frames: 1, ..AnytimeConfig::on() };
    let weird_off = AnytimeConfig { enabled: false, ..weird_off };

    let run = |anytime: AnytimeConfig| {
        let mut sup = Supervisor::new(
            native_pipeline(&scenario),
            FaultInjector::new(0xD21F7, heavy_drift()),
            SupervisorConfig { anytime, ..SupervisorConfig::default() },
        );
        let mut sigs = Vec::new();
        for frame in scenario.stream(RES).take(frames) {
            let out = sup.process(&frame.image, frame.time_s);
            sigs.push(format!(
                "{:?} {:?} {:?} {:?}",
                out.result.pose, out.result.tracks, out.result.plan, out.modes
            ));
        }
        assert!(sup.governor_events().is_empty(), "disabled governor must stay silent");
        assert_eq!(sup.recovery_stats().quality_switches, 0);
        assert_eq!(sup.recovery_stats().quality_reduced_frames, 0);
        sigs
    };

    assert_eq!(run(AnytimeConfig::off()), run(weird_off));
}

/// The anytime campaign (drift × governor-on/off cells) must stay
/// byte-identical across fleet worker counts and same-seed re-runs —
/// the governor gates on virtual latency only, so stealing order and
/// wall clock cannot leak into its decisions.
#[test]
fn anytime_campaign_is_byte_identical_across_worker_counts() {
    let assets = FleetAssets::urban(RES);
    let frames = 20;
    let grid = vec![
        CellSpec::new("heavy/off", heavy_drift(), 0x5EEDA, frames),
        CellSpec::new("heavy/on", heavy_drift(), 0x5EEDA, frames).with_supervisor(governor_on()),
        CellSpec::new("clean/on", FaultConfig::off(), 0x5EEDB, frames)
            .with_supervisor(governor_on()),
    ];

    let reference =
        FleetEngine::new(assets.clone(), FleetConfig::with_workers(1)).run_serial(&grid);
    // The governed cell must actually govern, or the parity proves
    // nothing about governor determinism.
    assert!(
        reference.outcomes[1].quality_switches > 0,
        "heavy drift must engage the governor in the parity grid"
    );
    assert!(
        reference.outcomes[1].virtual_miss_rate <= reference.outcomes[0].virtual_miss_rate,
        "governor-on must not miss more than governor-off on the same schedule"
    );
    assert_eq!(reference.outcomes[2].quality_switches, 0, "no load, no governor action");

    for workers in [1usize, 2, 8] {
        let run = FleetEngine::new(assets.clone(), FleetConfig::with_workers(workers)).run(&grid);
        assert_eq!(
            run.signatures(),
            reference.signatures(),
            "campaign diverged at {workers} workers"
        );
        for (a, b) in run.outcomes.iter().zip(&reference.outcomes) {
            assert_eq!(a.gov_log, b.gov_log, "governor log diverged at {workers} workers");
            assert_eq!(a.sup_log, b.sup_log, "supervisor log diverged at {workers} workers");
        }
    }
    let rerun = FleetEngine::new(assets, FleetConfig::with_workers(2)).run(&grid);
    assert_eq!(rerun.signatures(), reference.signatures(), "same-seed re-run diverged");
}

/// Under sustained latency drift the governor's first step-down must
/// land at least one frame before the reactive watchdog would have
/// abandoned detection on the identical fault schedule, and the
/// governed run must miss strictly fewer virtual deadlines.
#[test]
fn governor_acts_before_the_reactive_watchdog_under_drift() {
    let frames = 400;
    let mut checked = 0;
    for seed in 0..200u64 {
        let mut off = modeled(seed, heavy_drift(), SupervisorConfig::default());
        off.simulate(frames, 1.0);
        let watchdog_frame = off.events().iter().find_map(|e| match e.kind {
            DegradationEventKind::Entered {
                mode: DegradedMode::TrackerOnly,
                cause: DegradationCause::DetectionOverBudget { .. },
            } => Some(e.frame),
            _ => None,
        });
        let Some(watchdog_frame) = watchdog_frame else { continue };

        let mut on = modeled(seed, heavy_drift(), governor_on());
        on.simulate(frames, 1.0);
        let governor_frame = on
            .governor_events()
            .first()
            .map(|e| e.frame)
            .expect("drift that trips the watchdog must engage the governor");
        assert!(
            governor_frame < watchdog_frame,
            "seed {seed}: governor acted at {governor_frame}, watchdog at {watchdog_frame}"
        );
        assert!(
            on.recovery_stats().virtual_deadline_misses
                < off.recovery_stats().virtual_deadline_misses,
            "seed {seed}: governed run must miss strictly fewer virtual deadlines"
        );
        checked += 1;
        if checked >= 3 {
            return;
        }
    }
    panic!("no seed in 0..200 tripped the governor-off watchdog under heavy drift");
}

/// Quality switches at the supervised level respect the dwell window:
/// two consecutive governor events are always at least `dwell_frames`
/// apart, whatever the drift schedule does.
#[test]
fn supervised_quality_switches_respect_the_dwell_window() {
    let cfg = governor_on();
    let dwell = u64::from(cfg.anytime.dwell_frames);
    let mut saw_switches = false;
    for seed in [3u64, 7, 11] {
        let mut sup = modeled(seed, heavy_drift(), cfg.clone());
        sup.simulate(600, 1.0);
        let frames: Vec<u64> = sup.governor_events().iter().map(|e| e.frame).collect();
        for w in frames.windows(2) {
            assert!(w[1] - w[0] >= dwell, "switches at {} and {} violate dwell {dwell}", w[0], w[1]);
        }
        saw_switches |= !frames.is_empty();
    }
    assert!(saw_switches, "heavy drift must produce at least one quality switch");
}

/// Replays an event log and returns the modes still open at the end
/// (panicking on double-enters or unmatched exits on the way).
fn open_modes(events: &[DegradationEvent]) -> Vec<DegradedMode> {
    let mut open: Vec<DegradedMode> = Vec::new();
    for e in events {
        match e.kind {
            DegradationEventKind::Entered { mode, .. } => {
                assert!(!open.contains(&mode), "double enter of {mode} at frame {}", e.frame);
                open.push(mode);
            }
            DegradationEventKind::Exited { mode, .. } => {
                let i = open
                    .iter()
                    .position(|m| *m == mode)
                    .unwrap_or_else(|| panic!("exit of {mode} at frame {} without enter", e.frame));
                open.remove(i);
            }
            // Retries and crash restarts are point events, not mode
            // transitions — nothing to balance.
            DegradationEventKind::Retry { .. } | DegradationEventKind::Restart { .. } => {}
        }
    }
    open
}

/// After `finish()`, every `degrade.enter.*` balances with a
/// `degrade.exit.*` — the only mode allowed to remain open is a
/// terminal safe stop. Exercised across fault mixes and run lengths,
/// including early termination mid-episode.
#[test]
fn finished_runs_balance_every_mode_transition() {
    let mixes = [
        ("stress", FaultConfig::stress()),
        ("drift", heavy_drift()),
        (
            "blackout",
            FaultConfig { blackout_rate: 0.04, blackout_frames: (5, 9), ..FaultConfig::off() },
        ),
    ];
    // 37 and 61 frames cut runs off mid-episode on most seeds — the
    // early-termination case the audit must still balance.
    let mut terminal_safe_stops = 0;
    for (name, faults) in &mixes {
        for frames in [37usize, 61, 500] {
            for seed in [1u64, 9, 42] {
                for cfg in [SupervisorConfig::default(), governor_on()] {
                    let mut sup = modeled(seed, faults.clone(), cfg);
                    sup.simulate(frames, 1.0);
                    sup.finish();
                    sup.finish(); // idempotent
                    let open = open_modes(sup.events());
                    assert!(
                        open.is_empty() || open == [DegradedMode::SafeStop],
                        "{name}/{frames}f/seed {seed}: modes still open after finish: {open:?}"
                    );
                    if open == [DegradedMode::SafeStop] {
                        terminal_safe_stops += 1;
                    }
                    assert!(
                        !sup.recovery_stats().degraded_at_end
                            || open == [DegradedMode::SafeStop],
                        "{name}/{frames}f/seed {seed}: degraded_at_end without terminal safe stop"
                    );
                }
            }
        }
    }
    // The grid must include at least one run that ends parked — the
    // terminal state the audit explicitly allows.
    assert!(terminal_safe_stops > 0, "no run ended in a terminal safe stop");
}
