//! Cross-crate integration tests: the native pipeline on full
//! scenarios, closed-loop control, and constraint auditing.

use adsim::core::{
    build_prior_map, ConstraintReport, DesignConstraints, ModeledPipeline, NativePipeline,
    NativePipelineConfig, PlatformConfig,
};
use adsim::planning::MotionPlan;
use adsim::vehicle::power::SystemPower;
use adsim::vehicle::{BicycleState, VehicleController};
use adsim::vision::{Point2, Pose2};
use adsim::workload::{Resolution, Scenario, ScenarioKind};

fn native_pipeline(scenario: &Scenario, frames: u64) -> NativePipeline {
    let camera = scenario.camera(Resolution::Hhd);
    let poses: Vec<Pose2> = (0..frames)
        .step_by(8)
        .flat_map(|i| {
            let p = scenario.pose_at(i);
            [p, Pose2::new(p.x, p.y + 25.0, p.theta), Pose2::new(p.x, p.y - 25.0, p.theta)]
        })
        .collect();
    let map = build_prior_map(scenario.world(), &camera, poses, 300, 25);
    let mut pipe = NativePipeline::new(camera, map, NativePipelineConfig::default());
    pipe.seed_pose(scenario.pose_at(0));
    pipe
}

#[test]
fn urban_scenario_localizes_to_decimeters() {
    let scenario = Scenario::new(ScenarioKind::UrbanDrive, 501);
    let mut pipe = native_pipeline(&scenario, 120);
    let mut errors = Vec::new();
    for frame in scenario.stream(Resolution::Hhd).take(12) {
        let out = pipe.process(&frame.image, frame.time_s);
        if let Some(pose) = out.pose {
            errors.push(pose.distance(&frame.truth_pose));
        }
    }
    assert!(errors.len() >= 10, "localized {}/12 frames", errors.len());
    let mean = errors.iter().sum::<f64>() / errors.len() as f64;
    assert!(mean < 0.5, "mean localization error {mean:.3} m (paper needs decimeter-level)");
}

#[test]
fn highway_scenario_runs_and_keeps_frame_latency_positive() {
    let scenario = Scenario::new(ScenarioKind::HighwayCruise, 502);
    let mut pipe = native_pipeline(&scenario, 80);
    for frame in scenario.stream(Resolution::Hhd).take(6) {
        let out = pipe.process(&frame.image, frame.time_s);
        let l = out.latency;
        for v in [l.detection, l.tracking, l.localization, l.fusion, l.motion_planning] {
            assert!(v >= 0.0 && v.is_finite());
        }
        assert!(l.end_to_end() >= l.perception());
    }
}

#[test]
fn parking_scenario_uses_free_space_planner() {
    let scenario = Scenario::new(ScenarioKind::ParkingLot, 503);
    let camera = scenario.camera(Resolution::Hhd);
    let map = build_prior_map(
        scenario.world(),
        &camera,
        (0..80).step_by(8).map(|i| scenario.pose_at(i)),
        300,
        25,
    );
    let cfg = NativePipelineConfig {
        environment: adsim::planning::Environment::Open { goal: Point2::new(30.0, 10.0) },
        cruise_mps: 2.0,
        ..Default::default()
    };
    let mut pipe = NativePipeline::new(camera, map, cfg);
    pipe.seed_pose(scenario.pose_at(0));
    let mut planned_path = false;
    for frame in scenario.stream(Resolution::Hhd).take(6) {
        let out = pipe.process(&frame.image, frame.time_s);
        if matches!(out.plan, MotionPlan::Path(_)) {
            planned_path = true;
        }
    }
    assert!(planned_path, "open-area scenario should produce lattice paths");
}

#[test]
fn closed_loop_vehicle_follows_planned_lattice_path() {
    use adsim::planning::{LatticePlanner, Obstacle};
    let planner = LatticePlanner::default();
    let obstacles = vec![Obstacle::new(Point2::new(15.0, 0.0), 2.5)];
    let goal = Point2::new(30.0, 0.0);
    let path = planner.plan(Pose2::identity(), goal, &obstacles).expect("plannable");

    // Drive the bicycle model along the path with pure pursuit.
    let mut controller = VehicleController::new();
    let mut state = BicycleState { pose: Pose2::identity(), speed_mps: 2.0 };
    let mut target_idx = 0;
    for _ in 0..1_500 {
        // Advance the carrot waypoint as the vehicle approaches it.
        while target_idx + 1 < path.poses.len()
            && state.pose.distance(&path.poses[target_idx]) < 3.0
        {
            target_idx += 1;
        }
        let wp = path.poses[target_idx].translation();
        state = controller.drive_step(&state, wp, 3.0, 0.05);
        for o in &obstacles {
            assert!(
                o.center.distance(&state.pose.translation()) > o.radius - 0.5,
                "vehicle clipped the obstacle at {:?}",
                state.pose
            );
        }
        if state.pose.translation().distance(&goal) < 2.0 {
            return; // arrived
        }
    }
    panic!("vehicle never reached the goal; stopped at {:?}", state.pose);
}

#[test]
fn modeled_and_constraint_stack_agree_end_to_end() {
    // The paper's overall conclusion: at least one accelerated design
    // passes the complete constraint audit, and the CPU baseline
    // passes none of the performance checks.
    let constraints = DesignConstraints::default();
    let mut any_pass = false;
    for cfg in PlatformConfig::paper_sweep() {
        let mut pipe = ModeledPipeline::new(cfg, 9);
        let latency = pipe.simulate(30_000, 1.0).end_to_end.summary();
        let system = SystemPower::new(8, cfg.compute_power_w(pipe.model()), 41_000_000_000_000);
        let report = ConstraintReport::evaluate(&constraints, &latency, &system);
        if report.all_passed() {
            any_pass = true;
        }
        if cfg == PlatformConfig::all_cpu() {
            assert!(!report.all_passed());
        }
    }
    assert!(any_pass, "some design must satisfy all constraints");
}

#[test]
fn resolution_sweep_preserves_ground_footprint() {
    // Higher resolution means finer sampling of the same footprint, so
    // ground-truth object boxes occupy the same normalized area.
    let scenario = Scenario::new(ScenarioKind::UrbanDrive, 504);
    let lo = scenario.stream(Resolution::Hhd).nth(3).unwrap();
    let mut hi_stream = scenario.stream(Resolution::Fhd);
    hi_stream.seek(3);
    let hi = hi_stream.next().unwrap();
    for (a, b) in lo.truth_objects.iter().zip(&hi.truth_objects) {
        assert_eq!(a.id, b.id);
        assert!((a.bbox.cx - b.bbox.cx).abs() < 0.01);
        assert!((a.bbox.w - b.bbox.w).abs() < 0.01);
    }
}
