//! Telemetry-plane guarantees: recording must be a pure observer
//! (telemetry on vs off leaves every pipeline output bit-identical),
//! the fleet-merged registry must be byte-identical across worker
//! counts and re-runs, and the black-box flight recorder must dump on
//! every trigger in the matrix (SafeStop, monitor trip, manual).

use adsim::core::SupervisorConfig;
use adsim::faults::FaultConfig;
use adsim::fleet::{run_cell, CellSpec, FleetAssets, FleetConfig, FleetEngine};
use adsim::telemetry::{prometheus_text, validate_prometheus, DumpTrigger, TelemetrySession};
use adsim::workload::Resolution;

const RES: Resolution = Resolution::Hhd;
const FRAMES: usize = 12;

fn data_mix() -> FaultConfig {
    FaultConfig {
        blackout_rate: 0.06,
        blackout_frames: (2, 5),
        pixel_corruption_rate: 0.25,
        corrupted_fraction: 0.05,
        stuck_rate: 0.12,
        stuck_frames: (1, 3),
        ..FaultConfig::off()
    }
}

fn specs() -> Vec<CellSpec> {
    vec![
        CellSpec::new("clean", FaultConfig::off(), 0x5EED1, FRAMES),
        CellSpec::new("data", data_mix(), 0x5EED2, FRAMES),
        CellSpec::new("stress", FaultConfig::stress(), 0x5EED3, FRAMES),
    ]
}

/// Telemetry must be a pure observer: the same cell run with recording
/// on and with recording off produces bit-identical outputs, logs and
/// flight dumps — the only difference is whether the registry fills.
#[test]
fn telemetry_on_vs_off_outputs_bit_identical() {
    let assets = FleetAssets::urban(RES);
    let pipeline = FleetConfig::default().pipeline;

    let session = TelemetrySession::begin();
    let on: Vec<_> = specs().iter().map(|s| run_cell(&assets, s, &pipeline).0).collect();
    drop(session.finish());

    let session = TelemetrySession::quiesced();
    let off: Vec<_> = specs().iter().map(|s| run_cell(&assets, s, &pipeline).0).collect();
    drop(session);

    for (a, b) in on.iter().zip(&off) {
        assert_eq!(a.signature(), b.signature(), "outputs diverged under recording: {}", a.label);
        assert_eq!(a.sup_log, b.sup_log, "degradation log diverged: {}", a.label);
        assert_eq!(a.guard_log, b.guard_log, "guard log diverged: {}", a.label);
        assert_eq!(a.gov_log, b.gov_log, "governor log diverged: {}", a.label);
        assert_eq!(a.output_digest, b.output_digest, "frame outputs diverged: {}", a.label);
        assert_eq!(a.dumps, b.dumps, "flight dumps diverged: {}", a.label);
        assert!(!a.telemetry.is_empty(), "recording session left no series: {}", a.label);
        assert!(b.telemetry.is_empty(), "quiesced session must record nothing: {}", b.label);
    }
    // The recorded registry carries the supervisor's frame counter.
    assert_eq!(on[0].telemetry.counter("sup_frames_total", 0, ""), FRAMES as u64);
}

/// The fleet-merged registry is a pure function of the grid: 1, 2 and 8
/// fleet workers, the serial reference, and a same-seed re-run all
/// export byte-identical Prometheus text and JSON snapshots, and every
/// cell's dumps come back identical in spec order.
#[test]
fn fleet_registry_byte_identical_across_worker_counts_and_reruns() {
    let assets = FleetAssets::urban(RES);
    let grid = specs();
    let session = TelemetrySession::begin();

    let reference =
        FleetEngine::new(assets.clone(), FleetConfig::with_workers(1)).run_serial(&grid);
    assert!(!reference.telemetry.is_empty(), "campaign under a session must record series");
    let ref_prom = prometheus_text(&reference.telemetry);
    validate_prometheus(&ref_prom).expect("reference exposition must validate");
    let ref_json = reference.telemetry.snapshot_json();

    for workers in [1usize, 2, 8, 2] {
        let run = FleetEngine::new(assets.clone(), FleetConfig::with_workers(workers)).run(&grid);
        assert_eq!(
            prometheus_text(&run.telemetry),
            ref_prom,
            "prometheus snapshot diverged at {workers} workers"
        );
        assert_eq!(
            run.telemetry.snapshot_json(),
            ref_json,
            "json snapshot diverged at {workers} workers"
        );
        for (got, want) in run.outcomes.iter().zip(&reference.outcomes) {
            assert_eq!(got.dumps, want.dumps, "flight dumps diverged: {}", got.label);
        }
    }
    drop(session.finish());
}

/// The trigger matrix: a stress cell must dump on both escalation
/// triggers, and the dump windows must be well-formed (bounded by the
/// configured ring capacity, oldest-first, ending at the trigger).
#[test]
fn stress_cell_dumps_on_safe_stop_and_monitor_trip() {
    let assets = FleetAssets::urban(RES);
    let pipeline = FleetConfig::default().pipeline;
    let spec = CellSpec::new("stress", FaultConfig::stress(), 0x5EED3, FRAMES);
    let session = TelemetrySession::quiesced();
    let (outcome, _) = run_cell(&assets, &spec, &pipeline);
    drop(session);

    let triggers: Vec<DumpTrigger> = outcome.dumps.iter().map(|d| d.trigger).collect();
    assert!(
        triggers.contains(&DumpTrigger::SafeStop),
        "stress cell never dumped on SafeStop: {triggers:?}"
    );
    assert!(
        triggers.contains(&DumpTrigger::MonitorTripped),
        "stress cell never dumped on a monitor trip: {triggers:?}"
    );
    let cap = SupervisorConfig::default().flight_frames;
    for dump in &outcome.dumps {
        assert!(!dump.records.is_empty(), "dump must carry a window");
        assert!(dump.records.len() <= cap, "window exceeds the ring capacity");
        assert!(
            dump.records.windows(2).all(|w| w[0].frame < w[1].frame),
            "window must be oldest-first"
        );
        assert_eq!(
            dump.records.last().expect("non-empty").frame,
            dump.frame,
            "window must end at the trigger frame"
        );
        adsim::trace::validate_json(&dump.to_json()).expect("dump JSON must validate");
    }
}

/// Manual dumps: `dump_flight` captures the current window on demand,
/// stamps the configured vehicle id, and lands in the dump log next to
/// the automatic triggers.
#[test]
fn manual_dump_captures_the_current_window() {
    let assets = FleetAssets::urban(RES);
    let pipeline = FleetConfig::default().pipeline;
    let cfg = SupervisorConfig { vehicle: 7, flight_frames: 4, ..SupervisorConfig::default() };
    let mut sup = assets.supervisor(0x5EED1, FaultConfig::off(), cfg, &pipeline);
    let session = TelemetrySession::quiesced();
    for frame in assets.scenario().stream(RES).take(6) {
        sup.process(&frame.image, frame.time_s);
    }
    drop(session);

    let dump = sup.dump_flight();
    assert_eq!(dump.trigger, DumpTrigger::Manual);
    assert_eq!(dump.vehicle, 7);
    assert_eq!(dump.frame, 5, "manual dump must stamp the last processed frame");
    assert_eq!(dump.records.len(), 4, "window must be the ring capacity once wrapped");
    assert_eq!(
        dump.records.iter().map(|r| r.frame).collect::<Vec<_>>(),
        vec![2, 3, 4, 5],
        "ring must retain the last four frames, oldest first"
    );
    assert_eq!(sup.flight_dumps().last(), Some(&dump), "manual dump must join the dump log");
}
