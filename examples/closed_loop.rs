//! Closed loop: the camera renders from wherever the *controlled*
//! vehicle actually is, the native pipeline perceives and plans, and
//! the controller drives the bicycle model — perception error feeds
//! back into control, closing the paper's Fig. 1 loop.
//!
//! ```sh
//! cargo run --release --example closed_loop
//! ```

use adsim::core::ClosedLoopSim;
use adsim::workload::{Resolution, Scenario, ScenarioKind};

fn main() {
    let scenario = Scenario::new(ScenarioKind::HighwayCruise, 4242);
    println!("Building closed-loop simulation (mapping the corridor) ...\n");
    let mut sim = ClosedLoopSim::new(&scenario, Resolution::Hhd);

    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "t (s)", "x (m)", "y (m)", "loc err", "speed", "latency"
    );
    for i in 0..30 {
        let s = sim.step();
        if i % 3 == 0 {
            println!(
                "{:>6.1} {:>10.1} {:>10.2} {:>9.2}m {:>8.1} {:>8.1}ms",
                s.time_s,
                s.true_pose.x,
                s.true_pose.y,
                s.localization_error_m,
                s.speed_mps,
                s.pipeline_ms
            );
        }
    }
    let mut sim = ClosedLoopSim::new(&scenario, Resolution::Hhd);
    let report = sim.run(30);
    println!(
        "\n{} steps: {:.0} m travelled, mean localization error {:.2} m, \
         {} lost frames, max cross-track {:.2} m, {} emergency stops",
        report.steps,
        report.distance_m,
        report.mean_localization_error_m,
        report.lost_frames,
        report.max_cross_track_m,
        report.emergency_stops
    );
    assert!(report.distance_m > 50.0);
    println!("The perceive-plan-act loop holds the lane from perception alone.");
}
