//! Bridging a visual-localization outage with wheel odometry.
//!
//! The vehicle drives through a patch of severe weather (heavy noise +
//! under-exposure) in which map matching fails; a dead reckoner
//! integrates wheel odometry through the outage and the localizer
//! re-anchors it when vision returns — the reason production systems
//! (paper Table 1) pair cameras with proprioceptive sensors.
//!
//! ```sh
//! cargo run --release --example odometry_bridge
//! ```

use adsim::core::build_prior_map;
use adsim::slam::odometry::{DeadReckoner, WheelOdometry};
use adsim::slam::{Localizer, LocalizerConfig};
use adsim::vision::{OrbExtractor, Pose2};
use adsim::workload::{Conditions, Resolution, Scenario, ScenarioKind};

fn main() {
    let scenario = Scenario::new(ScenarioKind::UrbanDrive, 606);
    let camera = scenario.camera(Resolution::Hhd);
    println!("Mapping in clear conditions ...");
    let poses: Vec<Pose2> = (0..40)
        .flat_map(|i| {
            let p = scenario.pose_at(i * 10);
            [p, Pose2::new(p.x, p.y + 25.0, p.theta), Pose2::new(p.x, p.y - 25.0, p.theta)]
        })
        .collect();
    let map = build_prior_map(scenario.world(), &camera, poses, 300, 25);
    let mut localizer = Localizer::new(
        map,
        camera,
        OrbExtractor::new(300, 25).with_levels(2),
        LocalizerConfig { map_update: false, ..Default::default() },
    );
    localizer.seed_pose(scenario.pose_at(0));
    let mut reckoner = DeadReckoner::new(scenario.pose_at(0), WheelOdometry::typical());

    println!(
        "\n{:>5} {:>10} {:>12} {:>12} {:>10}",
        "frame", "weather", "vision", "fused err", "since fix"
    );
    let mut prev_truth = scenario.pose_at(0);
    let mut worst_outage_err: f64 = 0.0;
    for i in 1..40u64 {
        let truth = scenario.pose_at(i);
        // Severe weather between frames 12 and 24.
        let stormy = (12..24).contains(&i);
        let cond = if stormy { Conditions::severe(i) } else { Conditions::clear() };
        let frame =
            scenario.world().render_with(&camera, &truth, i as f64 / 10.0, &cond);

        // Wheel odometry always ticks (body-frame increment from the
        // true motion).
        let delta = prev_truth.inverse().compose(&truth);
        reckoner.advance(delta.translation().norm(), delta.theta);
        prev_truth = truth;

        // Vision localizes when it can; fixes re-anchor the reckoner.
        let result = localizer.localize(&frame);
        if let Some(pose) = result.pose {
            reckoner.fuse_vision(pose);
        }
        let err = reckoner.drift_m(&truth);
        if stormy {
            worst_outage_err = worst_outage_err.max(err);
        }
        if i % 3 == 0 || (12..=24).contains(&i) {
            println!(
                "{:>5} {:>10} {:>12} {:>10.2} m {:>8.1} m",
                i,
                if stormy { "SEVERE" } else { "clear" },
                if result.pose.is_some() { "fix" } else { "lost" },
                err,
                reckoner.distance_since_fix_m()
            );
        }
    }
    println!(
        "\nWorst fused error during the 12-frame outage: {worst_outage_err:.2} m \
         (vision alone would have no estimate at all)."
    );
    assert!(
        worst_outage_err < 3.0,
        "dead reckoning must bound the outage drift, got {worst_outage_err:.2} m"
    );
}
