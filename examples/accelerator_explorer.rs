//! Accelerator-landscape explorer: sweeps all 64 platform assignments
//! for the three bottlenecks (§5's design space), checks each against
//! the 100 ms tail constraint and the driving-range budget, and prints
//! the Pareto frontier of latency vs range impact.
//!
//! ```sh
//! cargo run --release --example accelerator_explorer
//! ```

use adsim::core::{ModeledPipeline, PlatformConfig};
use adsim::vehicle::power::SystemPower;
use adsim::vehicle::range::ev_range_reduction;

fn main() {
    let mut rows: Vec<(PlatformConfig, f64, f64)> = Vec::new();
    for cfg in PlatformConfig::all_combinations() {
        let pipe = ModeledPipeline::new(cfg, 7);
        let tail = pipe.analytic_tail_ms(1.0);
        let per_cam = cfg.compute_power_w(pipe.model());
        let sys = SystemPower::new(8, per_cam, 41_000_000_000_000);
        let reduction = ev_range_reduction(sys.total_w());
        rows.push((cfg, tail, reduction));
    }

    let viable: Vec<_> = rows.iter().filter(|(_, tail, _)| *tail <= 100.0).collect();
    println!(
        "{} of {} configurations meet the 100 ms tail constraint.\n",
        viable.len(),
        rows.len()
    );

    // Pareto frontier: no other viable config is faster AND thriftier.
    let mut frontier: Vec<_> = viable
        .iter()
        .filter(|(c, t, r)| {
            !viable
                .iter()
                .any(|(c2, t2, r2)| (t2 < t && r2 <= r || t2 <= t && r2 < r) && c2 != c)
        })
        .collect();
    frontier.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));

    println!("Pareto frontier (latency vs driving-range impact):");
    println!("{:<24} {:>12} {:>14}", "Config", "tail (ms)", "range impact");
    for (cfg, tail, reduction) in &frontier {
        println!("{:<24} {:>12.1} {:>13.1}%", cfg.label(), tail, reduction * 100.0);
    }

    let fastest = viable
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("some config is viable");
    let thriftiest = viable
        .iter()
        .min_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"))
        .expect("some config is viable");
    println!(
        "\nFastest viable: {} at {:.1} ms tail ({:.1}% range impact)",
        fastest.0.label(),
        fastest.1,
        fastest.2 * 100.0
    );
    println!(
        "Thriftiest viable: {} at {:.1}% range impact ({:.1} ms tail)",
        thriftiest.0.label(),
        thriftiest.2 * 100.0,
        thriftiest.1
    );
}
