//! Urban drive: the *native* end-to-end system (real ORB localization,
//! blob detection, template tracking, fusion, conformal-lattice
//! planning) on a synthetic city scenario, with per-stage wall-clock
//! latency and ground-truth localization error.
//!
//! ```sh
//! cargo run --release --example urban_drive
//! ```

use adsim::core::{build_prior_map, NativePipeline, NativePipelineConfig};
use adsim::planning::MotionPlan;
use adsim::stats::LatencyRecorder;
use adsim::vision::Pose2;
use adsim::workload::{Resolution, Scenario, ScenarioKind};

fn main() {
    let scenario = Scenario::new(ScenarioKind::UrbanDrive, 2026);
    let resolution = Resolution::Hhd;
    let camera = scenario.camera(resolution);

    // Offline mapping pass (the prior map a deployment ships on disk).
    println!("Mapping the route ...");
    let mapping_poses: Vec<Pose2> = (0..60)
        .flat_map(|i| {
            let p = scenario.pose_at(i * 8);
            [p, Pose2::new(p.x, p.y + 25.0, p.theta), Pose2::new(p.x, p.y - 25.0, p.theta)]
        })
        .collect();
    let map = build_prior_map(scenario.world(), &camera, mapping_poses, 300, 25);
    println!("Prior map: {} landmarks\n", map.len());

    let mut pipeline = NativePipeline::new(camera, map, NativePipelineConfig::default());
    pipeline.seed_pose(scenario.pose_at(0));

    let mut e2e = LatencyRecorder::new();
    let mut pose_err = Vec::new();
    println!(
        "{:>5} {:>8} {:>8} {:>8} {:>9} {:>7} {:>10}",
        "frame", "DET(ms)", "TRA(ms)", "LOC(ms)", "pose err", "tracks", "plan"
    );
    for frame in scenario.stream(resolution).take(40) {
        let out = pipeline.process(&frame.image, frame.time_s);
        e2e.record(out.latency.end_to_end());
        let err = out
            .pose
            .map(|p| p.distance(&frame.truth_pose))
            .unwrap_or(f64::NAN);
        if err.is_finite() {
            pose_err.push(err);
        }
        let plan = match &out.plan {
            MotionPlan::Trajectory(t) => format!("lane {:+.1}m", t.target_lateral),
            MotionPlan::Path(_) => "free-space".into(),
            MotionPlan::EmergencyStop => "STOP".into(),
        };
        if frame.index % 5 == 0 {
            println!(
                "{:>5} {:>8.1} {:>8.1} {:>8.1} {:>8.2}m {:>7} {:>10}",
                frame.index,
                out.latency.detection,
                out.latency.tracking,
                out.latency.localization,
                err,
                out.tracks.len(),
                plan
            );
        }
    }
    let stats = pipeline.localizer().stats();
    println!("\nEnd-to-end wall clock: {}", e2e.summary());
    println!(
        "Localization: {} frames, {} relocalizations, {} lost, mean error {:.2} m",
        stats.frames,
        stats.relocalizations,
        stats.lost,
        pose_err.iter().sum::<f64>() / pose_err.len().max(1) as f64
    );
}
