//! Quickstart: evaluate an accelerator configuration against the
//! paper's design constraints in a few lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use adsim::core::{ConstraintReport, DesignConstraints, ModeledPipeline, PlatformConfig};
use adsim::platform::Platform;
use adsim::vehicle::power::SystemPower;

fn main() {
    // The paper's best design: detection on the GPU, tracking and
    // localization on ASICs.
    let config = PlatformConfig {
        detection: Platform::Gpu,
        tracking: Platform::Asic,
        localization: Platform::Asic,
    };
    println!("Evaluating {config} ...\n");

    // 1. Latency: simulate 100k frames through the calibrated models.
    let mut pipeline = ModeledPipeline::new(config, 42);
    let stats = pipeline.simulate(100_000, 1.0);
    let latency = stats.end_to_end.summary();
    println!("End-to-end latency: {latency}");

    // 2. Power: 8 camera replicas plus the 41 TB U.S. prior map,
    //    magnified by cabin cooling.
    let per_camera = config.compute_power_w(pipeline.model());
    let system = SystemPower::new(8, per_camera, 41_000_000_000_000);
    println!(
        "System power: {:.0} W compute + {:.0} W storage + {:.0} W cooling = {:.0} W",
        system.compute_w(),
        system.storage_w(),
        system.cooling_w(),
        system.total_w()
    );

    // 3. The full §2.4 audit. The fastest design trades range for
    //    latency (its GPU pushes past the 5 % driving-range budget) —
    //    exactly the paper's Finding 5 trade-off.
    let report = ConstraintReport::evaluate(&DesignConstraints::default(), &latency, &system);
    println!("\n{report}");

    // The all-ASIC design gives up some latency headroom to satisfy
    // every constraint at once.
    let config = PlatformConfig::uniform(Platform::Asic);
    println!("Evaluating {config} ...\n");
    let mut pipeline = ModeledPipeline::new(config, 42);
    let latency = pipeline.simulate(100_000, 1.0).end_to_end.summary();
    let system = SystemPower::new(
        8,
        config.compute_power_w(pipeline.model()),
        41_000_000_000_000,
    );
    let report = ConstraintReport::evaluate(&DesignConstraints::default(), &latency, &system);
    println!("{report}");
    assert!(report.all_passed());
    println!("All-ASIC meets every design constraint of the paper's §2.4.");
}
