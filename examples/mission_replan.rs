//! Mission planning: route a city grid, drive the route, take a wrong
//! turn, and watch the mission planner replan — the paper's step 4,
//! "only invoked when the vehicle deviates from the original routing
//! plan".
//!
//! ```sh
//! cargo run --release --example mission_replan
//! ```

use adsim::planning::{MissionPlanner, RoadGraph};
use adsim::vehicle::{BicycleState, VehicleController};
use adsim::vision::{Point2, Pose2};

fn main() {
    // A 4x4 city grid, 150 m blocks, with one fast avenue.
    let mut graph = RoadGraph::new();
    for y in 0..4 {
        for x in 0..4 {
            graph.add_node(Point2::new(x as f64 * 150.0, y as f64 * 150.0));
        }
    }
    for y in 0..4usize {
        for x in 0..4usize {
            let id = y * 4 + x;
            if x < 3 {
                graph.add_road(id, id + 1, 13.0);
            }
            if y < 3 {
                graph.add_road(id, id + 4, if x == 0 { 22.0 } else { 13.0 });
            }
        }
    }

    let (origin, destination) = (0, 15);
    let mut mission = MissionPlanner::new(graph.clone(), origin, destination);
    let route = mission.route().expect("grid is connected").clone();
    println!(
        "Initial route {:?} ({:.0} m, {:.0} s at the limits)\n",
        route.nodes, route.length_m, route.travel_time_s
    );

    // Drive the route, but at the second intersection take a wrong
    // turn (two blocks east instead of following the plan).
    let mut controller = VehicleController::new();
    let mut state = BicycleState {
        pose: Pose2::new(0.0, 0.0, std::f64::consts::FRAC_PI_2),
        speed_mps: 10.0,
    };
    let wrong_turn = [Point2::new(0.0, 150.0), Point2::new(150.0, 170.0), Point2::new(260.0, 170.0)];
    let mut leg = 0;
    let mut replanned_at = None;
    for step in 0..800 {
        let target = wrong_turn[leg.min(wrong_turn.len() - 1)];
        if state.pose.translation().distance(&target) < 8.0 && leg < wrong_turn.len() - 1 {
            leg += 1;
        }
        state = controller.drive_step(&state, target, 10.0, 0.1);
        if mission.check(&state.pose) && replanned_at.is_none() {
            replanned_at = Some((step as f64 * 0.1, state.pose));
            break;
        }
    }
    let (t, pose) = replanned_at.expect("the wrong turn must trigger a replan");
    println!(
        "Deviation detected at t={t:.1} s, position ({:.0}, {:.0}) — mission planner re-invoked.",
        pose.x, pose.y
    );
    let new_route = mission.route().expect("still connected");
    println!(
        "New route {:?} ({:.0} m), destination unchanged: {}",
        new_route.nodes,
        new_route.length_m,
        new_route.nodes.last() == Some(&destination)
    );
    println!("Total replans: {} (zero while on route)", mission.replans());
    assert_eq!(mission.replans(), 1);
}
