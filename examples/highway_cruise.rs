//! Highway cruise: closed-loop planning and control. The conformal
//! lattice plans around a slower lead vehicle while the pure-pursuit /
//! PID controller drives a kinematic bicycle along the selected
//! trajectory — steps 3 and 5 of the paper's Fig. 1.
//!
//! ```sh
//! cargo run --release --example highway_cruise
//! ```

use adsim::planning::{Centerline, ConformalPlanner, RoadObstacle};
use adsim::vehicle::{BicycleState, VehicleController};
use adsim::vision::{Point2, Pose2};

fn main() {
    let road = Centerline::straight(2_000.0);
    let planner = ConformalPlanner::default();
    let mut controller = VehicleController::new();

    // Ego starts at 28 m/s; a lead vehicle 60 m ahead drives 18 m/s in
    // the same lane.
    let mut ego = BicycleState { pose: Pose2::new(0.0, 0.0, 0.0), speed_mps: 28.0 };
    let lead_speed = 18.0;
    let lead_start = 60.0;
    let dt = 0.1;

    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>12} {:>8}",
        "t (s)", "ego x (m)", "ego y (m)", "gap (m)", "target lane", "speed"
    );
    let mut lane_changes = 0;
    let mut last_lane = 0.0;
    let mut min_gap: f64 = f64::INFINITY;
    for step in 0..400 {
        let t = step as f64 * dt;
        let lead_x = lead_start + lead_speed * t;
        let obstacle = RoadObstacle {
            station: lead_x,
            lateral: 0.0,
            velocity_mps: lead_speed,
            // Car half-width plus a safety margin.
            radius: 2.0,
        };
        let plan = planner.plan(&road, ego.pose.x, ego.pose.y, 28.0, &[obstacle]);
        let (waypoint, speed) = match &plan {
            Some(t) => {
                if t.target_lateral != last_lane {
                    lane_changes += 1;
                    last_lane = t.target_lateral;
                }
                // Steer toward the second sample of the trajectory.
                let wp = t
                    .poses
                    .get(1)
                    .or_else(|| t.poses.first())
                    .map(|p| p.translation())
                    .unwrap_or(Point2::new(ego.pose.x + 10.0, t.target_lateral));
                (wp, t.speed_mps)
            }
            // Every lane blocked: brake hard in the current lane.
            None => (Point2::new(ego.pose.x + 10.0, ego.pose.y), 0.0),
        };
        ego = controller.drive_step(&ego, waypoint, speed, dt);
        let gap = ((lead_x - ego.pose.x).powi(2) + ego.pose.y.powi(2)).sqrt();
        min_gap = min_gap.min(gap);
        if step % 40 == 0 {
            let lane = plan.as_ref().map_or(f64::NAN, |p| p.target_lateral);
            println!(
                "{:>6.1} {:>10.1} {:>10.2} {:>10.1} {:>11.2}m {:>7.1}",
                t, ego.pose.x, ego.pose.y, gap, lane, ego.speed_mps
            );
        }
    }
    println!("\nLane changes: {lane_changes}; minimum gap to lead vehicle: {min_gap:.1} m");
    assert!(min_gap > 2.0, "controller must never hit the lead vehicle");
    println!("Overtake completed without violating clearance.");
}
