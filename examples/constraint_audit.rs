//! Full §2.4 design-constraint audit: performance, predictability,
//! storage, thermal and power, for each uniform platform design.
//!
//! ```sh
//! cargo run --release --example constraint_audit
//! ```

use adsim::core::{ConstraintReport, DesignConstraints, ModeledPipeline, PlatformConfig};
use adsim::platform::Platform;
use adsim::slam::storage;
use adsim::vehicle::power::SystemPower;
use adsim::vehicle::thermal;

fn main() {
    // Storage constraint (§2.4.3): carried regardless of platform.
    let map_bytes = storage::US_MAP_BYTES;
    println!(
        "Storage constraint: a U.S.-scale prior map needs {:.0} TB on-vehicle ({:.1} MB/km^2).",
        map_bytes as f64 / 1e12,
        storage::bytes_per_km2() / 1e6
    );
    // Thermal constraint (§2.4.4).
    println!(
        "Thermal constraint: ambient outside the cabin reaches {:.0} C vs a {:.0} C chip limit,",
        thermal::AMBIENT_OUTSIDE_CABIN_C,
        thermal::CHIP_LIMIT_C
    );
    println!("so the system must live in the cabin; 1 kW of uncooled heat raises it");
    println!(
        "{:.0} C per minute — added A/C capacity is mandatory.\n",
        thermal::cabin_heating_c_per_min(1_000.0)
    );

    let constraints = DesignConstraints::default();
    for p in Platform::ALL {
        let config = PlatformConfig::uniform(p);
        let mut pipe = ModeledPipeline::new(config, 99);
        let latency = pipe.simulate(50_000, 1.0).end_to_end.summary();
        let system = SystemPower::new(8, config.compute_power_w(pipe.model()), map_bytes);
        let report = ConstraintReport::evaluate(&constraints, &latency, &system);
        println!("=== all-{p} ===");
        print!("{report}");
        println!(
            "verdict: {}\n",
            if report.all_passed() {
                "meets all design constraints"
            } else {
                "fails (see above)"
            }
        );
    }
    println!("Matching the paper: only heterogeneous / specialized designs satisfy");
    println!("both the 100 ms tail constraint and the <5% driving-range budget.");
}
