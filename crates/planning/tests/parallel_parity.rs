//! Thread-count invariance for the parallel planning kernels.
//!
//! `FusionEngine::fuse_with` and `ConformalPlanner::plan_with` fan out
//! on `adsim-runtime` but promise bit-identical results on every thread
//! count: each work item writes its own output slot and every reduction
//! runs serially in index order. These tests pin that promise with
//! enough work to clear the runtime's serial-degrade threshold, so the
//! parallel code path really executes.

use adsim_dnn::detection::{BBox, ObjectClass};
use adsim_planning::{Centerline, ConformalPlanner, FusionEngine, RoadObstacle};
use adsim_runtime::Runtime;
use adsim_vision::{OrthoCamera, Pose2};

const THREADS: [usize; 3] = [1, 2, 8];

/// Deterministic pseudo-random f64 in [0, 1) from an index.
fn unit(i: usize) -> f64 {
    ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as f64 / (1u64 << 24) as f64
}

/// A tracked-object table big enough that `tracks * PROJECT_WORK_PER_TRACK`
/// exceeds the runtime's serial-degrade threshold (16 Ki work units).
fn tracks(frame: usize) -> Vec<(u64, ObjectClass, BBox)> {
    (0..200)
        .map(|i| {
            let wobble = 0.002 * frame as f32;
            (
                i as u64,
                ObjectClass::Vehicle,
                BBox::new(
                    0.1 + 0.8 * unit(i) as f32 + wobble,
                    0.1 + 0.8 * unit(i + 1000) as f32,
                    0.02 + 0.05 * unit(i + 2000) as f32,
                    0.02 + 0.05 * unit(i + 3000) as f32,
                ),
            )
        })
        .collect()
}

#[test]
fn fusion_is_bit_identical_across_thread_counts() {
    let camera = OrthoCamera::new(640, 480, 0.25);
    // Reference: the serial entry point, fresh engine.
    let mut reference = FusionEngine::new();
    let mut expected = Vec::new();
    for frame in 0..3 {
        let ego = Pose2::new(2.0 * frame as f64, 0.5 * frame as f64, 0.01 * frame as f64);
        expected.push(reference.fuse(&camera, ego, frame as f64 * 0.1, &tracks(frame)));
    }
    for threads in THREADS {
        let rt = Runtime::new(threads);
        let mut engine = FusionEngine::new();
        for (frame, want) in expected.iter().enumerate() {
            let ego = Pose2::new(2.0 * frame as f64, 0.5 * frame as f64, 0.01 * frame as f64);
            let fused = engine.fuse_with(&rt, &camera, ego, frame as f64 * 0.1, &tracks(frame));
            assert_eq!(fused.objects.len(), want.objects.len());
            assert_eq!(fused.ego_speed_mps.to_bits(), want.ego_speed_mps.to_bits());
            for (got, want) in fused.objects.iter().zip(&want.objects) {
                assert_eq!(got.track_id, want.track_id, "{threads} threads");
                assert_eq!(got.position.x.to_bits(), want.position.x.to_bits());
                assert_eq!(got.position.y.to_bits(), want.position.y.to_bits());
                assert_eq!(got.extent.0.to_bits(), want.extent.0.to_bits());
                assert_eq!(got.extent.1.to_bits(), want.extent.1.to_bits());
                assert_eq!(got.velocity.x.to_bits(), want.velocity.x.to_bits());
                assert_eq!(got.velocity.y.to_bits(), want.velocity.y.to_bits());
            }
        }
    }
}

#[test]
fn conformal_planner_is_bit_identical_across_thread_counts() {
    let road = Centerline::straight(500.0);
    let planner = ConformalPlanner::default();
    // Enough obstacles that the estimated work clears the threshold
    // and candidate costs genuinely differ between lanes.
    let obstacles: Vec<RoadObstacle> = (0..12)
        .map(|i| RoadObstacle {
            station: 15.0 + 10.0 * i as f64,
            lateral: -3.5 + 7.0 * unit(i),
            velocity_mps: 4.0 * unit(i + 50),
            radius: 1.0 + unit(i + 100),
        })
        .collect();
    let reference = planner
        .plan(&road, 5.0, 0.4, 12.0, &obstacles)
        .expect("a clear lane exists");
    for threads in THREADS {
        let rt = Runtime::new(threads);
        let got = planner
            .plan_with(&rt, &road, 5.0, 0.4, 12.0, &obstacles)
            .expect("a clear lane exists");
        assert_eq!(got.cost.to_bits(), reference.cost.to_bits(), "{threads} threads");
        assert_eq!(got.target_lateral.to_bits(), reference.target_lateral.to_bits());
        assert_eq!(got.candidates, reference.candidates);
        assert_eq!(got.poses.len(), reference.poses.len());
        for (g, r) in got.poses.iter().zip(&reference.poses) {
            assert_eq!(g.x.to_bits(), r.x.to_bits(), "{threads} threads");
            assert_eq!(g.y.to_bits(), r.y.to_bits());
            assert_eq!(g.theta.to_bits(), r.theta.to_bits());
        }
    }
}

#[test]
fn conformal_ties_keep_the_lowest_lattice_index() {
    // With no obstacles and symmetric cost weights the ±offsets tie in
    // cost; the planner must keep the first minimum in lattice order
    // (which is the centered lane here — strictly cheapest — so probe
    // determinism by re-running on every thread count).
    let road = Centerline::straight(200.0);
    let planner = ConformalPlanner::default();
    let reference = planner.plan(&road, 0.0, 0.0, 10.0, &[]).expect("clear road");
    for threads in THREADS {
        let got = planner
            .plan_with(&Runtime::new(threads), &road, 0.0, 0.0, 10.0, &[])
            .expect("clear road");
        assert_eq!(got.target_lateral.to_bits(), reference.target_lateral.to_bits());
        assert_eq!(got.cost.to_bits(), reference.cost.to_bits());
    }
}
