//! Thread-count invariance for the parallel planning kernels.
//!
//! `FusionEngine::fuse_with`, `ConformalPlanner::plan_with` and
//! `LatticePlanner::plan_with` fan out on `adsim-runtime` but promise
//! bit-identical results on every thread count: each work item writes
//! its own output slot and every reduction runs serially in index
//! order (the lattice additionally fixes its expansion batch size
//! independent of the worker count). These tests pin that promise
//! with enough work to clear the runtime's serial-degrade threshold,
//! so the parallel code path really executes.

use adsim_dnn::detection::{BBox, ObjectClass};
use adsim_planning::{
    Centerline, ConformalPlanner, FusionEngine, LatticeConfig, LatticePlanner, Obstacle,
    RoadObstacle,
};
use adsim_runtime::Runtime;
use adsim_vision::{OrthoCamera, Point2, Pose2};

const THREADS: [usize; 3] = [1, 2, 8];

/// Deterministic pseudo-random f64 in [0, 1) from an index.
fn unit(i: usize) -> f64 {
    ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as f64 / (1u64 << 24) as f64
}

/// A tracked-object table big enough that `tracks * PROJECT_WORK_PER_TRACK`
/// exceeds the runtime's serial-degrade threshold (16 Ki work units).
fn tracks(frame: usize) -> Vec<(u64, ObjectClass, BBox)> {
    (0..200)
        .map(|i| {
            let wobble = 0.002 * frame as f32;
            (
                i as u64,
                ObjectClass::Vehicle,
                BBox::new(
                    0.1 + 0.8 * unit(i) as f32 + wobble,
                    0.1 + 0.8 * unit(i + 1000) as f32,
                    0.02 + 0.05 * unit(i + 2000) as f32,
                    0.02 + 0.05 * unit(i + 3000) as f32,
                ),
            )
        })
        .collect()
}

#[test]
fn fusion_is_bit_identical_across_thread_counts() {
    let camera = OrthoCamera::new(640, 480, 0.25);
    // Reference: the serial entry point, fresh engine.
    let mut reference = FusionEngine::new();
    let mut expected = Vec::new();
    for frame in 0..3 {
        let ego = Pose2::new(2.0 * frame as f64, 0.5 * frame as f64, 0.01 * frame as f64);
        expected.push(reference.fuse(&camera, ego, frame as f64 * 0.1, &tracks(frame)));
    }
    for threads in THREADS {
        let rt = Runtime::new(threads);
        let mut engine = FusionEngine::new();
        for (frame, want) in expected.iter().enumerate() {
            let ego = Pose2::new(2.0 * frame as f64, 0.5 * frame as f64, 0.01 * frame as f64);
            let fused = engine.fuse_with(&rt, &camera, ego, frame as f64 * 0.1, &tracks(frame));
            assert_eq!(fused.objects.len(), want.objects.len());
            assert_eq!(fused.ego_speed_mps.to_bits(), want.ego_speed_mps.to_bits());
            for (got, want) in fused.objects.iter().zip(&want.objects) {
                assert_eq!(got.track_id, want.track_id, "{threads} threads");
                assert_eq!(got.position.x.to_bits(), want.position.x.to_bits());
                assert_eq!(got.position.y.to_bits(), want.position.y.to_bits());
                assert_eq!(got.extent.0.to_bits(), want.extent.0.to_bits());
                assert_eq!(got.extent.1.to_bits(), want.extent.1.to_bits());
                assert_eq!(got.velocity.x.to_bits(), want.velocity.x.to_bits());
                assert_eq!(got.velocity.y.to_bits(), want.velocity.y.to_bits());
            }
        }
    }
}

#[test]
fn conformal_planner_is_bit_identical_across_thread_counts() {
    let road = Centerline::straight(500.0);
    let planner = ConformalPlanner::default();
    // Enough obstacles that the estimated work clears the threshold
    // and candidate costs genuinely differ between lanes.
    let obstacles: Vec<RoadObstacle> = (0..12)
        .map(|i| RoadObstacle {
            station: 15.0 + 10.0 * i as f64,
            lateral: -3.5 + 7.0 * unit(i),
            velocity_mps: 4.0 * unit(i + 50),
            radius: 1.0 + unit(i + 100),
        })
        .collect();
    let reference = planner
        .plan(&road, 5.0, 0.4, 12.0, &obstacles)
        .expect("a clear lane exists");
    for threads in THREADS {
        let rt = Runtime::new(threads);
        let got = planner
            .plan_with(&rt, &road, 5.0, 0.4, 12.0, &obstacles)
            .expect("a clear lane exists");
        assert_eq!(got.cost.to_bits(), reference.cost.to_bits(), "{threads} threads");
        assert_eq!(got.target_lateral.to_bits(), reference.target_lateral.to_bits());
        assert_eq!(got.candidates, reference.candidates);
        assert_eq!(got.poses.len(), reference.poses.len());
        for (g, r) in got.poses.iter().zip(&reference.poses) {
            assert_eq!(g.x.to_bits(), r.x.to_bits(), "{threads} threads");
            assert_eq!(g.y.to_bits(), r.y.to_bits());
            assert_eq!(g.theta.to_bits(), r.theta.to_bits());
        }
    }
}

/// A dense deterministic obstacle field: enough per-node collision
/// work that the lattice's batched expansion clears the runtime's
/// serial-degrade gate, and cluttered enough to force real detours.
fn obstacle_field() -> Vec<Obstacle> {
    (0..160)
        .filter_map(|i| {
            let x = 4.0 + 44.0 * unit(i);
            let y = -22.0 + 44.0 * unit(i + 7_000);
            // Keep the start and the goal approachable.
            if (x * x + y * y) < 16.0 || ((x - 45.0).powi(2) + y * y) < 16.0 {
                return None;
            }
            Some(Obstacle::new(Point2::new(x, y), 0.8 + 0.8 * unit(i + 14_000)))
        })
        .collect()
}

fn assert_paths_identical(
    got: &Option<adsim_planning::Path>,
    want: &Option<adsim_planning::Path>,
    label: &str,
) {
    match (got, want) {
        (None, None) => {}
        (Some(g), Some(w)) => {
            assert_eq!(g.expansions, w.expansions, "{label}: expansion count");
            assert_eq!(g.length_m.to_bits(), w.length_m.to_bits(), "{label}: length");
            assert_eq!(g.poses.len(), w.poses.len(), "{label}: pose count");
            for (a, b) in g.poses.iter().zip(&w.poses) {
                assert_eq!(a.x.to_bits(), b.x.to_bits(), "{label}");
                assert_eq!(a.y.to_bits(), b.y.to_bits(), "{label}");
                assert_eq!(a.theta.to_bits(), b.theta.to_bits(), "{label}");
            }
        }
        _ => panic!("{label}: plan feasibility differs across thread counts"),
    }
}

#[test]
fn lattice_planner_is_bit_identical_across_thread_counts() {
    let planner = LatticePlanner::default();
    let obstacles = obstacle_field();
    let goal = Point2::new(45.0, 0.0);
    let reference = planner.plan(Pose2::identity(), goal, &obstacles);
    assert!(reference.is_some(), "the cluttered field must still be traversable");
    for threads in THREADS {
        let rt = Runtime::new(threads);
        let got = planner.plan_with(&rt, Pose2::identity(), goal, &obstacles);
        assert_paths_identical(&got, &reference, &format!("{threads} threads"));
    }
}

#[test]
fn lattice_infeasibility_is_thread_count_invariant() {
    // A goal sealed inside a ring: every thread count must burn the
    // same expansion budget and agree the goal is unreachable.
    let planner =
        LatticePlanner::new(LatticeConfig { max_expansions: 4_000, ..Default::default() });
    let goal = Point2::new(18.0, 0.0);
    let ring: Vec<Obstacle> = (0..28)
        .map(|i| {
            let a = i as f64 / 28.0 * std::f64::consts::TAU;
            Obstacle::new(Point2::new(18.0 + 5.0 * a.cos(), 5.0 * a.sin()), 1.4)
        })
        .collect();
    for threads in THREADS {
        let got = planner.plan_with(&Runtime::new(threads), Pose2::identity(), goal, &ring);
        assert!(got.is_none(), "{threads} threads found a path through a sealed ring");
    }
}

#[test]
fn conformal_ties_keep_the_lowest_lattice_index() {
    // With no obstacles and symmetric cost weights the ±offsets tie in
    // cost; the planner must keep the first minimum in lattice order
    // (which is the centered lane here — strictly cheapest — so probe
    // determinism by re-running on every thread count).
    let road = Centerline::straight(200.0);
    let planner = ConformalPlanner::default();
    let reference = planner.plan(&road, 0.0, 0.0, 10.0, &[]).expect("clear road");
    for threads in THREADS {
        let got = planner
            .plan_with(&Runtime::new(threads), &road, 0.0, 0.0, 10.0, &[])
            .expect("clear road");
        assert_eq!(got.target_lateral.to_bits(), reference.target_lateral.to_bits());
        assert_eq!(got.cost.to_bits(), reference.cost.to_bits());
    }
}
