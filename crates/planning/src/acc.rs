//! Adaptive cruise control: the Intelligent Driver Model (IDM).
//!
//! The conformal lattice chooses *where* to drive; IDM chooses *how
//! fast* given the lead vehicle the fusion engine reports ahead — the
//! longitudinal half of the motion planner's "setting the vehicle's
//! velocity" responsibility (paper §2.3).

/// IDM parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdmParams {
    /// Free-road desired speed (m/s).
    pub desired_speed_mps: f64,
    /// Standstill minimum gap (m).
    pub min_gap_m: f64,
    /// Desired time headway (s).
    pub time_headway_s: f64,
    /// Maximum acceleration (m/s²).
    pub max_accel: f64,
    /// Comfortable braking deceleration (m/s², positive).
    pub comfortable_decel: f64,
    /// Free-acceleration exponent.
    pub delta: f64,
}

impl IdmParams {
    /// Comfortable passenger-car defaults at a given cruise speed.
    pub fn cruise(desired_speed_mps: f64) -> Self {
        Self {
            desired_speed_mps,
            min_gap_m: 2.0,
            time_headway_s: 1.5,
            max_accel: 1.5,
            comfortable_decel: 2.0,
            delta: 4.0,
        }
    }
}

/// Longitudinal controller implementing IDM.
///
/// # Examples
///
/// ```
/// use adsim_planning::{AdaptiveCruise, IdmParams};
///
/// let acc = AdaptiveCruise::new(IdmParams::cruise(30.0));
/// // Free road, below desired speed: accelerate.
/// assert!(acc.accel(20.0, None) > 0.0);
/// // Car stopped right ahead: brake hard.
/// assert!(acc.accel(20.0, Some((5.0, 0.0))) < -3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveCruise {
    params: IdmParams,
}

impl AdaptiveCruise {
    /// Creates a controller.
    pub fn new(params: IdmParams) -> Self {
        Self { params }
    }

    /// The parameters in use.
    pub fn params(&self) -> IdmParams {
        self.params
    }

    /// Commanded acceleration (m/s²) given the ego speed and,
    /// optionally, the gap to and speed of a lead vehicle.
    ///
    /// Gaps at or below zero (already overlapping) command an
    /// emergency deceleration.
    pub fn accel(&self, speed_mps: f64, lead: Option<(f64, f64)>) -> f64 {
        let p = &self.params;
        let free = p.max_accel
            * (1.0 - (speed_mps / p.desired_speed_mps).powf(p.delta));
        match lead {
            None => free,
            Some((gap, lead_speed)) => {
                if gap <= 0.0 {
                    return -4.0 * p.comfortable_decel;
                }
                let closing = speed_mps - lead_speed;
                let desired_gap = p.min_gap_m
                    + (speed_mps * p.time_headway_s
                        + speed_mps * closing
                            / (2.0 * (p.max_accel * p.comfortable_decel).sqrt()))
                    .max(0.0);
                free - p.max_accel * (desired_gap / gap).powi(2)
            }
        }
    }

    /// Steady-state following gap at a common speed (solves
    /// `accel = 0` for equal speeds).
    pub fn equilibrium_gap(&self, speed_mps: f64) -> f64 {
        let p = &self.params;
        let desired = p.min_gap_m + speed_mps * p.time_headway_s;
        let free_term = 1.0 - (speed_mps / p.desired_speed_mps).powf(p.delta);
        desired / free_term.max(1e-9).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc() -> AdaptiveCruise {
        AdaptiveCruise::new(IdmParams::cruise(30.0))
    }

    #[test]
    fn free_road_converges_to_desired_speed() {
        let acc = acc();
        let mut v: f64 = 0.0;
        for _ in 0..600 {
            v += acc.accel(v, None) * 0.1;
        }
        assert!((v - 30.0).abs() < 0.5, "converged to {v}");
    }

    #[test]
    fn above_desired_speed_decelerates() {
        assert!(acc().accel(35.0, None) < 0.0);
    }

    #[test]
    fn following_settles_at_the_equilibrium_gap() {
        let acc = acc();
        // Lead drives a constant 20 m/s; start 100 m behind at 20 m/s.
        let (mut gap, mut v) = (100.0f64, 20.0f64);
        let dt = 0.05;
        for _ in 0..20_000 {
            let a = acc.accel(v, Some((gap, 20.0)));
            v = (v + a * dt).max(0.0);
            gap += (20.0 - v) * dt;
        }
        let expected = acc.equilibrium_gap(20.0);
        assert!((v - 20.0).abs() < 0.3, "speed matched: {v}");
        assert!(
            (gap - expected).abs() < 0.15 * expected,
            "gap {gap:.1} vs equilibrium {expected:.1}"
        );
    }

    #[test]
    fn never_collides_with_a_braking_lead() {
        let acc = acc();
        // Lead at 25 m/s slams to a stop at 6 m/s^2; ego follows from
        // its equilibrium gap.
        let mut lead_v = 25.0f64;
        let mut v = 25.0f64;
        let mut gap = acc.equilibrium_gap(25.0);
        let dt = 0.02;
        for _ in 0..2_000 {
            lead_v = (lead_v - 6.0 * dt).max(0.0);
            let a = acc.accel(v, Some((gap, lead_v)));
            v = (v + a * dt).max(0.0);
            gap += (lead_v - v) * dt;
            assert!(gap > 0.0, "collision: gap {gap}");
        }
        assert!(v < 0.5, "ego stopped behind the stopped lead");
    }

    #[test]
    fn overlap_commands_emergency_braking() {
        assert!(acc().accel(10.0, Some((0.0, 0.0))) <= -8.0);
    }

    #[test]
    fn equilibrium_gap_grows_with_speed() {
        let acc = acc();
        assert!(acc.equilibrium_gap(20.0) > acc.equilibrium_gap(10.0));
        assert!(acc.equilibrium_gap(10.0) > IdmParams::cruise(30.0).min_gap_m);
    }
}
