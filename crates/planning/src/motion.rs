use crate::acc::{AdaptiveCruise, IdmParams};
use crate::conformal::{Centerline, ConformalPlanner, RoadObstacle, Trajectory};
use crate::fusion::FusedFrame;
use crate::lattice::{LatticePlanner, Obstacle, Path};
use adsim_runtime::Runtime;
use adsim_vision::{Point2, Pose2};

/// The driving environment, which selects the planning strategy
/// (§3.1.5): structured roads use the conformal lattice, open areas
/// the free-space state lattice.
#[derive(Debug, Clone, PartialEq)]
pub enum Environment {
    /// Structured road with a known centerline.
    Structured(Centerline),
    /// Open area (parking lot, rural ground).
    Open {
        /// Where the vehicle should end up.
        goal: Point2,
    },
}

/// The motion-planner output: either a road trajectory or a free-space
/// path, plus the braking fallback.
#[derive(Debug, Clone, PartialEq)]
pub enum MotionPlan {
    /// Follow a conformal-lattice trajectory.
    Trajectory(Trajectory),
    /// Follow a free-space path.
    Path(Path),
    /// No safe plan exists: brake to a stop.
    EmergencyStop,
}

impl MotionPlan {
    /// The next pose to steer toward, if any.
    pub fn next_waypoint(&self) -> Option<Pose2> {
        match self {
            MotionPlan::Trajectory(t) => t.poses.first().copied(),
            MotionPlan::Path(p) => p.poses.get(1).copied(),
            MotionPlan::EmergencyStop => None,
        }
    }

    /// Commanded speed (0 for emergency stop).
    pub fn speed_mps(&self) -> f64 {
        match self {
            MotionPlan::Trajectory(t) => t.speed_mps,
            MotionPlan::Path(_) => 3.0,
            MotionPlan::EmergencyStop => 0.0,
        }
    }
}

/// The motion-planning engine (paper step 3 of Fig. 1): consumes fused
/// frames and produces path trajectories such as lane changes and
/// velocity settings.
#[derive(Debug, Clone)]
pub struct MotionPlanner {
    environment: Environment,
    conformal: ConformalPlanner,
    lattice: LatticePlanner,
    acc: AdaptiveCruise,
    cruise_mps: f64,
    runtime: Runtime,
}

impl MotionPlanner {
    /// Creates a planner for an environment with a cruise speed. Runs
    /// serially; chain [`MotionPlanner::with_runtime`] to evaluate
    /// lattice candidates on a worker pool.
    pub fn new(environment: Environment, cruise_mps: f64) -> Self {
        Self {
            environment,
            conformal: ConformalPlanner::default(),
            lattice: LatticePlanner::default(),
            acc: AdaptiveCruise::new(IdmParams::cruise(cruise_mps)),
            cruise_mps,
            runtime: Runtime::serial(),
        }
    }

    /// Evaluates conformal-lattice candidates and free-space A*
    /// expansions on `rt`'s workers. Results are bit-identical to the
    /// serial planner on every thread count.
    pub fn with_runtime(mut self, rt: Runtime) -> Self {
        self.runtime = rt;
        self
    }

    /// The active environment.
    pub fn environment(&self) -> &Environment {
        &self.environment
    }

    /// Plans one step from the fused world state.
    pub fn plan(&self, fused: &FusedFrame) -> MotionPlan {
        match &self.environment {
            Environment::Structured(road) => {
                // Project ego and objects into road coordinates. The
                // straight-road projection (station = x, lateral = y)
                // is exact for the synthetic roads in this workspace;
                // curved roads would use an iterative projection.
                let station = fused.ego.x;
                let lateral = fused.ego.y;
                let obstacles: Vec<RoadObstacle> = fused
                    .objects
                    .iter()
                    .map(|o| RoadObstacle {
                        station: o.position.x,
                        lateral: o.position.y,
                        velocity_mps: o.velocity.x,
                        radius: o.extent.0.max(o.extent.1) / 2.0 + 1.0,
                    })
                    .collect();
                match self.conformal.plan_with(
                    &self.runtime,
                    road,
                    station,
                    lateral,
                    self.cruise_mps,
                    &obstacles,
                ) {
                    Some(mut t) => {
                        // Longitudinal control: follow the nearest
                        // lead vehicle in the selected lane with IDM.
                        let lead = obstacles
                            .iter()
                            .filter(|o| {
                                (o.lateral - t.target_lateral).abs() <= 1.75
                                    && o.station > station
                            })
                            .min_by(|a, b| {
                                a.station
                                    .partial_cmp(&b.station)
                                    .expect("stations are finite")
                            })
                            .map(|o| (o.station - station - o.radius, o.velocity_mps));
                        let ego_speed =
                            if fused.ego_speed_mps > 0.0 { fused.ego_speed_mps } else { t.speed_mps };
                        let accel = self.acc.accel(ego_speed, lead);
                        t.speed_mps =
                            (ego_speed + accel * 1.0).clamp(0.0, self.cruise_mps);
                        MotionPlan::Trajectory(t)
                    }
                    None => MotionPlan::EmergencyStop,
                }
            }
            Environment::Open { goal } => {
                let obstacles: Vec<Obstacle> = fused
                    .objects
                    .iter()
                    .map(|o| Obstacle::new(
                        o.position,
                        o.extent.0.max(o.extent.1) / 2.0 + 1.0,
                    ))
                    .collect();
                match self.lattice.plan_with(&self.runtime, fused.ego, *goal, &obstacles) {
                    Some(p) => MotionPlan::Path(p),
                    None => MotionPlan::EmergencyStop,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::FusedObject;
    use adsim_dnn::detection::ObjectClass;

    fn fused(ego: Pose2, objects: Vec<FusedObject>) -> FusedFrame {
        FusedFrame { ego, ego_speed_mps: 0.0, objects }
    }

    fn object(x: f64, y: f64, vx: f64) -> FusedObject {
        FusedObject {
            track_id: 0,
            class: ObjectClass::Vehicle,
            position: Point2::new(x, y),
            extent: (4.0, 2.0),
            velocity: Point2::new(vx, 0.0),
        }
    }

    #[test]
    fn structured_clear_road_produces_trajectory() {
        let planner =
            MotionPlanner::new(Environment::Structured(Centerline::straight(500.0)), 15.0);
        let plan = planner.plan(&fused(Pose2::new(10.0, 0.0, 0.0), vec![]));
        match plan {
            MotionPlan::Trajectory(t) => {
                assert_eq!(t.target_lateral, 0.0);
                assert_eq!(t.speed_mps, 15.0, "clear road holds the cruise speed");
            }
            other => panic!("expected trajectory, got {other:?}"),
        }
    }

    #[test]
    fn slow_lead_in_lane_reduces_commanded_speed() {
        let planner =
            MotionPlanner::new(Environment::Structured(Centerline::straight(500.0)), 15.0);
        // Ego moving at cruise; a slow lead 15 m ahead in-lane but far
        // enough laterally clear candidates exist — force the center
        // lane by blocking the others less: use a lead dead ahead with
        // small radius so the center lane remains collision-free.
        let mut frame = fused(
            Pose2::new(0.0, 0.0, 0.0),
            vec![FusedObject {
                track_id: 1,
                class: ObjectClass::Vehicle,
                position: Point2::new(18.0, -3.0),
                extent: (1.0, 1.0),
                velocity: Point2::new(3.0, 0.0),
            }],
        );
        frame.ego_speed_mps = 15.0;
        // Obstacle is in the -3.5 lane's reach but not ours: commanded
        // speed stays at cruise.
        let clear = planner.plan(&frame);
        match clear {
            MotionPlan::Trajectory(t) => assert!(t.speed_mps > 13.0, "{}", t.speed_mps),
            other => panic!("expected trajectory, got {other:?}"),
        }
        // Move the lead into our lane: IDM must slow us down.
        frame.objects[0].position = Point2::new(18.0, 0.0);
        let following = planner.plan(&frame);
        match following {
            MotionPlan::Trajectory(t) => {
                assert!(t.speed_mps < 13.0, "commanded {} m/s", t.speed_mps)
            }
            other => panic!("expected trajectory, got {other:?}"),
        }
    }

    #[test]
    fn structured_blocked_lane_changes_lanes() {
        let planner =
            MotionPlanner::new(Environment::Structured(Centerline::straight(500.0)), 15.0);
        let plan = planner.plan(&fused(
            Pose2::new(0.0, 0.0, 0.0),
            vec![object(30.0, 0.0, 0.0)],
        ));
        match plan {
            MotionPlan::Trajectory(t) => assert_ne!(t.target_lateral, 0.0),
            other => panic!("expected trajectory, got {other:?}"),
        }
    }

    #[test]
    fn structured_wall_forces_emergency_stop() {
        let planner =
            MotionPlanner::new(Environment::Structured(Centerline::straight(500.0)), 15.0);
        let wall: Vec<FusedObject> = (-2..=2)
            .map(|i| FusedObject {
                extent: (6.0, 6.0),
                ..object(25.0, i as f64 * 1.75, 0.0)
            })
            .collect();
        let plan = planner.plan(&fused(Pose2::new(0.0, 0.0, 0.0), wall));
        assert_eq!(plan, MotionPlan::EmergencyStop);
        assert_eq!(plan.speed_mps(), 0.0);
        assert!(plan.next_waypoint().is_none());
    }

    #[test]
    fn open_area_uses_lattice_path() {
        let planner =
            MotionPlanner::new(Environment::Open { goal: Point2::new(15.0, 5.0) }, 3.0);
        let plan = planner.plan(&fused(Pose2::identity(), vec![]));
        assert!(plan.next_waypoint().is_some());
        match plan {
            MotionPlan::Path(p) => assert!(p.poses.len() >= 2),
            other => panic!("expected path, got {other:?}"),
        }
    }

    #[test]
    fn open_area_avoids_fused_objects() {
        let planner =
            MotionPlanner::new(Environment::Open { goal: Point2::new(20.0, 0.0) }, 3.0);
        let plan = planner.plan(&fused(
            Pose2::identity(),
            vec![object(10.0, 0.0, 0.0)],
        ));
        match plan {
            MotionPlan::Path(p) => {
                for pose in &p.poses {
                    assert!(pose.translation().distance(&Point2::new(10.0, 0.0)) > 2.9);
                }
            }
            other => panic!("expected path, got {other:?}"),
        }
    }
}
