//! Sensor fusion, motion planning and mission planning (paper steps
//! 2–4 of Fig. 1).
//!
//! * [`FusionEngine`]: projects tracked objects and the ego pose onto
//!   one world coordinate space and estimates object velocities
//!   (§3.1.4),
//! * [`LatticePlanner`]: graph search over motion primitives in state
//!   lattices for open areas like parking lots (§3.1.5, after
//!   Pivtoraiko et al.),
//! * [`ConformalPlanner`]: conformal spatio-temporal lattice along a
//!   road centerline for structured areas (§3.1.5, after McNaughton
//!   et al.),
//! * [`MotionPlanner`]: the environment-dependent dispatch between the
//!   two,
//! * [`MissionPlanner`]: rule-based routing over a road graph, invoked
//!   only when the vehicle deviates from the planned route (§3.1.6).
//!
//! # Examples
//!
//! ```
//! use adsim_planning::{LatticePlanner, Obstacle};
//! use adsim_vision::{Point2, Pose2};
//!
//! let planner = LatticePlanner::default();
//! let path = planner
//!     .plan(Pose2::identity(), Point2::new(12.0, 0.0), &[])
//!     .expect("open space is reachable");
//! assert!(path.poses.len() > 2);
//! ```

mod acc;
mod conformal;
mod fusion;
mod lattice;
mod mission;
mod motion;

pub use acc::{AdaptiveCruise, IdmParams};
pub use conformal::{Centerline, ConformalConfig, ConformalPlanner, RoadObstacle, Trajectory};
pub use fusion::{FusedFrame, FusedObject, FusionEngine, TrackedLike};
pub use lattice::{LatticeConfig, LatticePlanner, Obstacle, Path};
pub use mission::{MissionPlanner, RoadEdge, RoadGraph, Route};
pub use motion::{Environment, MotionPlan, MotionPlanner};
