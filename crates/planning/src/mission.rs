//! Mission planning: rule-based routing over a road network
//! (§3.1.6). The mission planner computes the route once — following
//! navigation output like Google Maps — and is re-invoked only when
//! the vehicle deviates from the planned route.

use adsim_vision::{Point2, Pose2};
use std::collections::{BinaryHeap, HashMap};

/// A directed road segment between two intersections.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoadEdge {
    /// Destination node.
    pub to: usize,
    /// Segment length (m).
    pub length_m: f64,
    /// Speed limit (m/s) — the traffic rule the rule-based policy
    /// enforces along this segment.
    pub speed_limit_mps: f64,
}

/// A road network: intersection positions plus directed edges.
#[derive(Debug, Clone, Default)]
pub struct RoadGraph {
    nodes: Vec<Point2>,
    edges: Vec<Vec<RoadEdge>>,
}

impl RoadGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an intersection, returning its id.
    pub fn add_node(&mut self, position: Point2) -> usize {
        self.nodes.push(position);
        self.edges.push(Vec::new());
        self.nodes.len() - 1
    }

    /// Adds a bidirectional road between two intersections.
    ///
    /// # Panics
    ///
    /// Panics if either node id is unknown or the speed limit is not
    /// positive.
    pub fn add_road(&mut self, a: usize, b: usize, speed_limit_mps: f64) {
        assert!(a < self.nodes.len() && b < self.nodes.len(), "unknown node");
        assert!(speed_limit_mps > 0.0, "speed limit must be positive");
        let length_m = self.nodes[a].distance(&self.nodes[b]);
        self.edges[a].push(RoadEdge { to: b, length_m, speed_limit_mps });
        self.edges[b].push(RoadEdge { to: a, length_m, speed_limit_mps });
    }

    /// Number of intersections.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no intersections.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Position of a node.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown.
    pub fn position(&self, node: usize) -> Point2 {
        self.nodes[node]
    }

    /// Fastest route (by travel time under speed limits) between two
    /// intersections, or `None` if disconnected.
    pub fn route(&self, from: usize, to: usize) -> Option<Route> {
        #[derive(PartialEq)]
        struct Entry(f64, usize);
        impl Eq for Entry {}
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                other.0.partial_cmp(&self.0).expect("times are finite")
            }
        }

        let mut dist: HashMap<usize, f64> = HashMap::new();
        let mut prev: HashMap<usize, usize> = HashMap::new();
        let mut heap = BinaryHeap::new();
        dist.insert(from, 0.0);
        heap.push(Entry(0.0, from));
        while let Some(Entry(d, node)) = heap.pop() {
            if node == to {
                break;
            }
            if d > dist.get(&node).copied().unwrap_or(f64::INFINITY) {
                continue;
            }
            for e in &self.edges[node] {
                let nd = d + e.length_m / e.speed_limit_mps;
                if nd < dist.get(&e.to).copied().unwrap_or(f64::INFINITY) {
                    dist.insert(e.to, nd);
                    prev.insert(e.to, node);
                    heap.push(Entry(nd, e.to));
                }
            }
        }
        if !dist.contains_key(&to) {
            return None;
        }
        let mut nodes = vec![to];
        let mut cur = to;
        while cur != from {
            cur = prev[&cur];
            nodes.push(cur);
        }
        nodes.reverse();
        let length_m = nodes
            .windows(2)
            .map(|w| self.nodes[w[0]].distance(&self.nodes[w[1]]))
            .sum();
        Some(Route { nodes, travel_time_s: dist[&to], length_m })
    }
}

/// A planned route through the road graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// Intersections visited, origin first.
    pub nodes: Vec<usize>,
    /// Expected travel time at the speed limits (s).
    pub travel_time_s: f64,
    /// Total length (m).
    pub length_m: f64,
}

/// The mission planner: holds the active route and replans only on
/// deviation, matching the paper's "executed once unless the vehicle
/// deviates from planned routes".
#[derive(Debug, Clone)]
pub struct MissionPlanner {
    graph: RoadGraph,
    destination: usize,
    route: Option<Route>,
    /// How far from the route counts as a deviation (m).
    deviation_tolerance_m: f64,
    replans: u64,
}

impl MissionPlanner {
    /// Creates a planner and computes the initial route.
    pub fn new(graph: RoadGraph, origin: usize, destination: usize) -> Self {
        let route = graph.route(origin, destination);
        Self { graph, destination, route, deviation_tolerance_m: 20.0, replans: 0 }
    }

    /// The active route.
    pub fn route(&self) -> Option<&Route> {
        self.route.as_ref()
    }

    /// Times the mission planner has replanned due to deviation.
    pub fn replans(&self) -> u64 {
        self.replans
    }

    /// Checks the pose against the active route and replans from the
    /// nearest intersection when the vehicle has deviated. Returns
    /// whether a replan happened (mission planning work was done).
    pub fn check(&mut self, pose: &Pose2) -> bool {
        let Some(route) = &self.route else { return false };
        let p = pose.translation();
        // Distance to the closest route segment.
        let mut near = f64::INFINITY;
        for w in route.nodes.windows(2) {
            near = near.min(segment_distance(
                p,
                self.graph.position(w[0]),
                self.graph.position(w[1]),
            ));
        }
        if route.nodes.len() == 1 {
            near = p.distance(&self.graph.position(route.nodes[0]));
        }
        if near <= self.deviation_tolerance_m {
            return false;
        }
        // Deviated: replan from the nearest intersection.
        let nearest = (0..self.graph.len())
            .min_by(|&a, &b| {
                let da = p.distance(&self.graph.position(a));
                let db = p.distance(&self.graph.position(b));
                da.partial_cmp(&db).expect("distances are finite")
            })
            .expect("graph is nonempty if a route exists");
        self.route = self.graph.route(nearest, self.destination);
        self.replans += 1;
        true
    }
}

fn segment_distance(p: Point2, a: Point2, b: Point2) -> f64 {
    let ab = b - a;
    let len2 = ab.x * ab.x + ab.y * ab.y;
    if len2 == 0.0 {
        return p.distance(&a);
    }
    let t = (((p.x - a.x) * ab.x + (p.y - a.y) * ab.y) / len2).clamp(0.0, 1.0);
    p.distance(&(a + ab * t))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3x3 grid of intersections, 100 m apart, with a fast diagonal
    /// detour road.
    fn grid() -> RoadGraph {
        let mut g = RoadGraph::new();
        for y in 0..3 {
            for x in 0..3 {
                g.add_node(Point2::new(x as f64 * 100.0, y as f64 * 100.0));
            }
        }
        for y in 0..3 {
            for x in 0..3 {
                let id = y * 3 + x;
                if x < 2 {
                    g.add_road(id, id + 1, 13.0);
                }
                if y < 2 {
                    g.add_road(id, id + 3, 13.0);
                }
            }
        }
        g
    }

    #[test]
    fn route_connects_endpoints() {
        let g = grid();
        let r = g.route(0, 8).unwrap();
        assert_eq!(*r.nodes.first().unwrap(), 0);
        assert_eq!(*r.nodes.last().unwrap(), 8);
        assert_eq!(r.length_m, 400.0, "manhattan distance on the grid");
    }

    #[test]
    fn faster_roads_win_over_shorter_ones() {
        let mut g = grid();
        // A highway bypass 0 -> 8 via a new node, longer but faster.
        let hub = g.add_node(Point2::new(150.0, -100.0));
        g.add_road(0, hub, 40.0);
        g.add_road(hub, 8, 40.0);
        let r = g.route(0, 8).unwrap();
        assert!(r.nodes.contains(&hub), "bypass is faster: {:?}", r.nodes);
        assert!(r.length_m > 400.0, "but longer in distance");
    }

    #[test]
    fn disconnected_nodes_have_no_route() {
        let mut g = grid();
        let island = g.add_node(Point2::new(1000.0, 1000.0));
        assert!(g.route(0, island).is_none());
    }

    #[test]
    fn on_route_pose_does_not_replan() {
        let mut m = MissionPlanner::new(grid(), 0, 8);
        // On the first segment.
        assert!(!m.check(&Pose2::new(50.0, 2.0, 0.0)));
        assert_eq!(m.replans(), 0);
    }

    #[test]
    fn deviation_triggers_replan_to_destination() {
        let mut m = MissionPlanner::new(grid(), 0, 8);
        let before = m.route().unwrap().clone();
        // 50 m from every grid road (roads run along the 0/100/200
        // grid lines).
        assert!(m.check(&Pose2::new(250.0, 50.0, 0.0)));
        assert_eq!(m.replans(), 1);
        let after = m.route().unwrap();
        assert_eq!(*after.nodes.last().unwrap(), 8, "destination unchanged");
        assert_ne!(before.nodes, after.nodes, "route recomputed from new position");
    }

    #[test]
    fn route_to_self_is_trivial() {
        let g = grid();
        let r = g.route(4, 4).unwrap();
        assert_eq!(r.nodes, vec![4]);
        assert_eq!(r.length_m, 0.0);
    }
}
