use adsim_dnn::detection::ObjectClass;
use adsim_runtime::Runtime;
use adsim_vision::{OrthoCamera, Point2, Pose2};
use std::collections::HashMap;

/// Approximate scalar-operation cost of projecting one track (camera
/// transform with trig, extent scaling, velocity differencing) — the
/// `Runtime::for_work` estimate that keeps small object tables serial.
const PROJECT_WORK_PER_TRACK: usize = 200;

/// Minimal view of a tracked object the fusion engine needs. Defined
/// here (rather than importing `adsim-perception`) to keep the planning
/// crate independent of the perception implementation.
mod adsim_perception_types {
    use adsim_dnn::detection::{BBox, ObjectClass};

    /// Anything that looks like a tracked-object-table row.
    pub trait TrackedLike {
        /// Stable track identity.
        fn track_id(&self) -> u64;
        /// Object class.
        fn class(&self) -> ObjectClass;
        /// Normalized image bounding box.
        fn bbox(&self) -> BBox;
    }

    impl TrackedLike for (u64, ObjectClass, BBox) {
        fn track_id(&self) -> u64 {
            self.0
        }
        fn class(&self) -> ObjectClass {
            self.1
        }
        fn bbox(&self) -> BBox {
            self.2
        }
    }
}

pub use adsim_perception_types::TrackedLike;

/// A tracked object projected into world coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusedObject {
    /// Track identity from the tracker pool.
    pub track_id: u64,
    /// Object class.
    pub class: ObjectClass,
    /// World position (m).
    pub position: Point2,
    /// World extent (m): (along-image-x, along-image-y).
    pub extent: (f64, f64),
    /// Estimated world velocity (m/s), `(0, 0)` until the track has
    /// been seen twice.
    pub velocity: Point2,
}

impl FusedObject {
    /// Position extrapolated `dt` seconds ahead — the "predict their
    /// moving trajectories" output the motion planner consumes.
    pub fn predicted_position(&self, dt: f64) -> Point2 {
        self.position + self.velocity * dt
    }
}

/// One fused frame: the ego pose and all tracked objects on the same
/// 3-D (here: ground-plane) coordinate space (paper step 2 of Fig. 1).
#[derive(Debug, Clone, PartialEq)]
pub struct FusedFrame {
    /// Ego world pose.
    pub ego: Pose2,
    /// Ego speed estimated from consecutive poses (m/s); 0 until two
    /// frames have been fused.
    pub ego_speed_mps: f64,
    /// Objects in world coordinates.
    pub objects: Vec<FusedObject>,
}

/// The fusion engine: combines tracker output with the localizer's
/// vehicle pose and maintains per-track velocity estimates.
#[derive(Debug, Clone, Default)]
pub struct FusionEngine {
    history: HashMap<u64, (Point2, f64)>,
    ego_history: Option<(Point2, f64)>,
}

impl FusionEngine {
    /// Creates an engine with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fuses one frame serially. Equivalent to [`FusionEngine::fuse_with`]
    /// on a serial runtime.
    ///
    /// `tracks` is the tracked-object table, `ego` the localizer's
    /// pose estimate, `time_s` the frame timestamp used for velocity
    /// differencing.
    pub fn fuse<T: TrackedLike + Sync>(
        &mut self,
        camera: &OrthoCamera,
        ego: Pose2,
        time_s: f64,
        tracks: &[T],
    ) -> FusedFrame {
        self.fuse_with(&Runtime::serial(), camera, ego, time_s, tracks)
    }

    /// [`FusionEngine::fuse`] on a worker pool: the per-object
    /// projections (camera transform, extent scaling, velocity
    /// differencing) are pure reads of the pre-frame history, so they
    /// fan out across the runtime's workers with each object writing
    /// its own output slot; history mutation then runs serially in
    /// input order. Output order is the input track order and every
    /// velocity is differenced against the *previous* frame's entry,
    /// independent of the worker count — results are bit-identical on
    /// every thread count.
    pub fn fuse_with<T: TrackedLike + Sync>(
        &mut self,
        rt: &Runtime,
        camera: &OrthoCamera,
        ego: Pose2,
        time_s: f64,
        tracks: &[T],
    ) -> FusedFrame {
        let history = &self.history;
        let mut slots: Vec<Option<FusedObject>> = vec![None; tracks.len()];
        rt.for_work(tracks.len() * PROJECT_WORK_PER_TRACK)
            .par_chunks_mut(&mut slots, 1, |i, slot| {
                let t = &tracks[i];
                let b = t.bbox();
                let u = b.cx as f64 * camera.width() as f64;
                let v = b.cy as f64 * camera.height() as f64;
                let position = camera.image_to_world(&ego, u, v);
                let extent = (
                    b.w as f64 * camera.width() as f64 * camera.meters_per_pixel(),
                    b.h as f64 * camera.height() as f64 * camera.meters_per_pixel(),
                );
                let velocity = match history.get(&t.track_id()) {
                    Some(&(prev_pos, prev_t)) if time_s > prev_t => {
                        (position - prev_pos) * (1.0 / (time_s - prev_t))
                    }
                    _ => Point2::default(),
                };
                slot[0] = Some(FusedObject {
                    track_id: t.track_id(),
                    class: t.class(),
                    position,
                    extent,
                    velocity,
                });
            });
        let objects: Vec<FusedObject> =
            slots.into_iter().map(|s| s.expect("every slot projected")).collect();
        let mut seen = Vec::with_capacity(tracks.len());
        for obj in &objects {
            self.history.insert(obj.track_id, (obj.position, time_s));
            seen.push(obj.track_id);
        }
        // Forget tracks that disappeared so ids can be recycled safely.
        self.history.retain(|id, _| seen.contains(id));
        let ego_speed_mps = match self.ego_history {
            Some((prev, prev_t)) if time_s > prev_t => {
                ego.translation().distance(&prev) / (time_s - prev_t)
            }
            _ => 0.0,
        };
        self.ego_history = Some((ego.translation(), time_s));
        FusedFrame { ego, ego_speed_mps, objects }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsim_dnn::detection::BBox;

    fn camera() -> OrthoCamera {
        OrthoCamera::new(320, 240, 0.25)
    }

    #[test]
    fn image_center_maps_to_ego_position() {
        let mut fusion = FusionEngine::new();
        let ego = Pose2::new(10.0, 5.0, 0.3);
        let track = (1u64, ObjectClass::Vehicle, BBox::new(0.5, 0.5, 0.1, 0.1));
        let fused = fusion.fuse(&camera(), ego, 0.0, &[track]);
        let obj = &fused.objects[0];
        assert!((obj.position.x - 10.0).abs() < 0.2);
        assert!((obj.position.y - 5.0).abs() < 0.2);
    }

    #[test]
    fn extent_scales_with_box_size() {
        let mut fusion = FusionEngine::new();
        let track = (1u64, ObjectClass::Vehicle, BBox::new(0.5, 0.5, 0.1, 0.2));
        let fused = fusion.fuse(&camera(), Pose2::identity(), 0.0, &[track]);
        let (ex, ey) = fused.objects[0].extent;
        assert!((ex - 8.0).abs() < 1e-6, "0.1 * 320 px * 0.25 m/px");
        assert!((ey - 12.0).abs() < 1e-6);
    }

    #[test]
    fn velocity_estimated_from_consecutive_frames() {
        let mut fusion = FusionEngine::new();
        let cam = camera();
        let ego = Pose2::identity();
        let t0 = (7u64, ObjectClass::Pedestrian, BBox::new(0.5, 0.5, 0.05, 0.05));
        let f0 = fusion.fuse(&cam, ego, 0.0, &[t0]);
        assert_eq!(f0.objects[0].velocity, Point2::default());
        // Move 8 px right in image = 2 m in -y (image right is -y).
        let t1 = (7u64, ObjectClass::Pedestrian, BBox::new(0.525, 0.5, 0.05, 0.05));
        let f1 = fusion.fuse(&cam, ego, 0.5, &[t1]);
        let v = f1.objects[0].velocity;
        assert!((v.y + 4.0).abs() < 0.1, "2 m in 0.5 s -> 4 m/s, got {v:?}");
        assert!(v.x.abs() < 0.1);
    }

    #[test]
    fn velocity_accounts_for_ego_motion() {
        // Object stationary in the image while ego advances: its world
        // velocity should match the ego's.
        let mut fusion = FusionEngine::new();
        let cam = camera();
        let track = (3u64, ObjectClass::Vehicle, BBox::new(0.5, 0.3, 0.05, 0.05));
        fusion.fuse(&cam, Pose2::new(0.0, 0.0, 0.0), 0.0, &[track]);
        let fused = fusion.fuse(&cam, Pose2::new(5.0, 0.0, 0.0), 1.0, &[track]);
        let v = fused.objects[0].velocity;
        assert!((v.x - 5.0).abs() < 0.1, "{v:?}");
    }

    #[test]
    fn disappeared_tracks_are_forgotten() {
        let mut fusion = FusionEngine::new();
        let cam = camera();
        let track = (9u64, ObjectClass::Bicycle, BBox::new(0.4, 0.4, 0.05, 0.05));
        fusion.fuse(&cam, Pose2::identity(), 0.0, &[track]);
        fusion.fuse::<(u64, ObjectClass, BBox)>(&cam, Pose2::identity(), 1.0, &[]);
        // Re-appearing with the same id starts with zero velocity.
        let fused = fusion.fuse(&cam, Pose2::identity(), 2.0, &[track]);
        assert_eq!(fused.objects[0].velocity, Point2::default());
    }

    #[test]
    fn ego_speed_estimated_from_consecutive_frames() {
        let mut fusion = FusionEngine::new();
        let cam = camera();
        let f0 = fusion.fuse::<(u64, ObjectClass, BBox)>(&cam, Pose2::new(0.0, 0.0, 0.0), 0.0, &[]);
        assert_eq!(f0.ego_speed_mps, 0.0);
        let f1 =
            fusion.fuse::<(u64, ObjectClass, BBox)>(&cam, Pose2::new(3.0, 4.0, 0.0), 1.0, &[]);
        assert!((f1.ego_speed_mps - 5.0).abs() < 1e-9);
    }

    #[test]
    fn predicted_position_extrapolates() {
        let obj = FusedObject {
            track_id: 0,
            class: ObjectClass::Vehicle,
            position: Point2::new(1.0, 1.0),
            extent: (4.0, 2.0),
            velocity: Point2::new(2.0, -1.0),
        };
        let p = obj.predicted_position(2.0);
        assert_eq!(p, Point2::new(5.0, -1.0));
    }
}
