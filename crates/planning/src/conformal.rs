//! Structured-road motion planning: a conformal spatio-temporal
//! lattice along the road centerline (§3.1.5, after McNaughton
//! et al.) — candidate trajectories are laid out *conformal* to the
//! road (station × lateral offset × time) and scored for collision,
//! comfort and progress.

use adsim_runtime::Runtime;
use adsim_vision::{Point2, Pose2};

/// A road centerline as a polyline with per-vertex stations.
#[derive(Debug, Clone, PartialEq)]
pub struct Centerline {
    points: Vec<Point2>,
    stations: Vec<f64>,
}

impl Centerline {
    /// Creates a centerline from at least two polyline vertices.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are supplied or consecutive
    /// points coincide.
    pub fn new(points: Vec<Point2>) -> Self {
        assert!(points.len() >= 2, "a centerline needs at least two points");
        let mut stations = vec![0.0];
        for pair in points.windows(2) {
            let d = pair[0].distance(&pair[1]);
            assert!(d > 1e-9, "consecutive centerline points must be distinct");
            stations.push(stations.last().expect("nonempty") + d);
        }
        Self { points, stations }
    }

    /// A straight road along +x of the given length.
    pub fn straight(length_m: f64) -> Self {
        Self::new(vec![Point2::new(0.0, 0.0), Point2::new(length_m, 0.0)])
    }

    /// Total length (m).
    pub fn length(&self) -> f64 {
        *self.stations.last().expect("nonempty")
    }

    /// The pose at a station: position on the centerline plus road
    /// heading. Stations are clamped to `[0, length]`.
    pub fn pose_at(&self, station: f64) -> Pose2 {
        let s = station.clamp(0.0, self.length());
        let idx = match self
            .stations
            .binary_search_by(|v| v.partial_cmp(&s).expect("stations are finite"))
        {
            Ok(i) => i.min(self.points.len() - 2),
            Err(i) => (i - 1).min(self.points.len() - 2),
        };
        let a = self.points[idx];
        let b = self.points[idx + 1];
        let seg = self.stations[idx + 1] - self.stations[idx];
        let t = (s - self.stations[idx]) / seg;
        let p = a + (b - a) * t;
        Pose2::new(p.x, p.y, (b.y - a.y).atan2(b.x - a.x))
    }

    /// World position of a (station, lateral-offset) road coordinate;
    /// positive lateral is to the left of travel.
    pub fn frenet_to_world(&self, station: f64, lateral: f64) -> Point2 {
        let pose = self.pose_at(station);
        pose.transform(Point2::new(0.0, lateral))
    }
}

/// An obstacle in road (Frenet) coordinates with a longitudinal
/// velocity — a fused, trajectory-predicted object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoadObstacle {
    /// Station along the centerline (m).
    pub station: f64,
    /// Lateral offset (m), positive left.
    pub lateral: f64,
    /// Station velocity (m/s).
    pub velocity_mps: f64,
    /// Collision radius (m).
    pub radius: f64,
}

/// Conformal-lattice parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConformalConfig {
    /// Candidate lateral offsets (lane positions), in meters.
    pub lateral_offsets: [f64; 5],
    /// Planning horizon (s).
    pub horizon_s: f64,
    /// Time sample step (s).
    pub dt_s: f64,
    /// Weight of lateral deviation in the cost.
    pub lateral_weight: f64,
    /// Weight of lateral change (comfort) in the cost.
    pub swerve_weight: f64,
}

impl Default for ConformalConfig {
    fn default() -> Self {
        Self {
            lateral_offsets: [-3.5, -1.75, 0.0, 1.75, 3.5],
            horizon_s: 4.0,
            dt_s: 0.5,
            // Deviating from the lane center costs more than the
            // transient of changing lanes, so the planner returns to
            // center once the road is clear.
            lateral_weight: 2.0,
            swerve_weight: 1.0,
        }
    }
}

/// A selected trajectory: where the vehicle will be at each time step.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// Sampled world poses, one per time step.
    pub poses: Vec<Pose2>,
    /// The lateral offset the trajectory converges to.
    pub target_lateral: f64,
    /// Commanded speed (m/s).
    pub speed_mps: f64,
    /// Time between consecutive poses (s) — consumers that align the
    /// trajectory with predicted obstacle motion (safety monitors,
    /// controllers) need the sample period, not just the samples.
    pub dt_s: f64,
    /// Cost of the selected candidate.
    pub cost: f64,
    /// Number of candidates evaluated (work metric).
    pub candidates: usize,
}

/// The conformal spatio-temporal lattice planner.
#[derive(Debug, Clone, Default)]
pub struct ConformalPlanner {
    cfg: ConformalConfig,
}

impl ConformalPlanner {
    /// Creates a planner.
    pub fn new(cfg: ConformalConfig) -> Self {
        Self { cfg }
    }

    /// Plans along `road` from `(station, lateral)` at `speed_mps`,
    /// avoiding moving `obstacles`. Returns `None` only when every
    /// candidate collides (the caller should then brake).
    ///
    /// Runs serially; [`ConformalPlanner::plan_with`] is the multicore
    /// entry point.
    pub fn plan(
        &self,
        road: &Centerline,
        station: f64,
        lateral: f64,
        speed_mps: f64,
        obstacles: &[RoadObstacle],
    ) -> Option<Trajectory> {
        self.plan_with(&Runtime::serial(), road, station, lateral, speed_mps, obstacles)
    }

    /// [`ConformalPlanner::plan`] on a worker pool: each candidate
    /// lateral offset is evaluated (cost + fine-grid collision sweep)
    /// in its own output slot, then the winner is selected serially in
    /// lattice-index order with a strict `<` — ties keep the lowest
    /// index, exactly as the serial loop does, so the chosen
    /// trajectory is bit-identical on every thread count (no map
    /// iteration or reduction-order dependence anywhere).
    pub fn plan_with(
        &self,
        rt: &Runtime,
        road: &Centerline,
        station: f64,
        lateral: f64,
        speed_mps: f64,
        obstacles: &[RoadObstacle],
    ) -> Option<Trajectory> {
        let cfg = &self.cfg;
        let steps = (cfg.horizon_s / cfg.dt_s).round() as usize;
        let candidates = cfg.lateral_offsets.len();
        // Rough per-candidate op count: the collision sweep dominates.
        let work = candidates * steps * SUBSTEPS * (60 + 40 * obstacles.len());
        let mut slots: Vec<Option<(f64, f64, Vec<Pose2>)>> = vec![None; candidates];
        rt.for_work(work).par_chunks_mut(&mut slots, 1, |i, slot| {
            let target = cfg.lateral_offsets[i];
            slot[0] = self.eval_candidate(road, station, lateral, speed_mps, obstacles, target);
        });
        // Serial index-order reduction, strict `<`: first minimum wins.
        let mut best: Option<(f64, f64, Vec<Pose2>)> = None;
        for cand in slots.into_iter().flatten() {
            if best.as_ref().is_none_or(|(c, _, _)| cand.0 < *c) {
                best = Some(cand);
            }
        }
        best.map(|(cost, target_lateral, poses)| Trajectory {
            poses,
            target_lateral,
            speed_mps,
            dt_s: cfg.dt_s,
            cost,
            candidates,
        })
    }

    /// Scores one candidate lane: `None` when its trajectory collides,
    /// otherwise `(cost, target, poses)`.
    fn eval_candidate(
        &self,
        road: &Centerline,
        station: f64,
        lateral: f64,
        speed_mps: f64,
        obstacles: &[RoadObstacle],
        target: f64,
    ) -> Option<(f64, f64, Vec<Pose2>)> {
        let cfg = &self.cfg;
        let steps = (cfg.horizon_s / cfg.dt_s).round() as usize;
        let mut poses = Vec::with_capacity(steps);
        let cost =
            cfg.lateral_weight * target.abs() + cfg.swerve_weight * (target - lateral).abs();
        // Collision is checked on a 4x finer time grid than the
        // emitted poses: relative speeds of tens of m/s would
        // otherwise step "through" an obstacle between samples.
        for k in 1..=steps {
            for sub in 1..=SUBSTEPS {
                let t = (k - 1) as f64 * cfg.dt_s + cfg.dt_s * sub as f64 / SUBSTEPS as f64;
                let s = station + speed_mps * t;
                // Exponential convergence from the current lateral
                // offset to the candidate lane.
                let blend = 1.0 - (-t / 0.7).exp();
                let l = lateral + (target - lateral) * blend;
                let p = road.frenet_to_world(s, l);
                for o in obstacles {
                    let os = o.station + o.velocity_mps * t;
                    let op = road.frenet_to_world(os, o.lateral);
                    if op.distance(&p) <= o.radius {
                        return None;
                    }
                }
                if sub == SUBSTEPS {
                    poses.push(Pose2::new(p.x, p.y, road.pose_at(s).theta));
                }
            }
        }
        Some((cost, target, poses))
    }
}

/// Collision substeps per emitted pose (see `eval_candidate`).
const SUBSTEPS: usize = 4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centerline_stations_accumulate() {
        let c = Centerline::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(3.0, 0.0),
            Point2::new(3.0, 4.0),
        ]);
        assert_eq!(c.length(), 7.0);
        let p = c.pose_at(5.0);
        assert!((p.x - 3.0).abs() < 1e-9 && (p.y - 2.0).abs() < 1e-9);
        assert!((p.theta - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
    }

    #[test]
    fn frenet_left_is_left_of_travel() {
        let c = Centerline::straight(100.0);
        let p = c.frenet_to_world(10.0, 2.0);
        assert!((p.x - 10.0).abs() < 1e-9 && (p.y - 2.0).abs() < 1e-9);
    }

    #[test]
    fn clear_road_keeps_center() {
        let road = Centerline::straight(500.0);
        let planner = ConformalPlanner::default();
        let t = planner.plan(&road, 0.0, 0.0, 15.0, &[]).unwrap();
        assert_eq!(t.target_lateral, 0.0, "no reason to leave the lane center");
        assert_eq!(t.candidates, 5);
    }

    #[test]
    fn blocked_lane_triggers_lane_change() {
        let road = Centerline::straight(500.0);
        let planner = ConformalPlanner::default();
        // Stopped obstacle dead ahead in our lane.
        let obstacle =
            RoadObstacle { station: 30.0, lateral: 0.0, velocity_mps: 0.0, radius: 2.0 };
        let t = planner.plan(&road, 0.0, 0.0, 15.0, &[obstacle]).unwrap();
        assert_ne!(t.target_lateral, 0.0, "must move out of the blocked lane");
        // And the trajectory itself stays clear.
        for p in &t.poses {
            assert!(p.translation().distance(&Point2::new(30.0, 0.0)) > 2.0);
        }
    }

    #[test]
    fn moving_obstacle_ahead_at_same_speed_is_not_a_collision() {
        let road = Centerline::straight(500.0);
        let planner = ConformalPlanner::default();
        // Lead vehicle 20 m ahead travelling at our speed.
        let lead = RoadObstacle { station: 20.0, lateral: 0.0, velocity_mps: 15.0, radius: 2.0 };
        let t = planner.plan(&road, 0.0, 0.0, 15.0, &[lead]).unwrap();
        assert_eq!(t.target_lateral, 0.0, "constant gap -> stay in lane");
    }

    #[test]
    fn fully_blocked_road_returns_none() {
        let road = Centerline::straight(500.0);
        let planner = ConformalPlanner::default();
        let wall: Vec<RoadObstacle> = [-3.5, -1.75, 0.0, 1.75, 3.5]
            .iter()
            .map(|&l| RoadObstacle { station: 25.0, lateral: l, velocity_mps: 0.0, radius: 3.0 })
            .collect();
        assert!(planner.plan(&road, 0.0, 0.0, 15.0, &wall).is_none());
    }

    #[test]
    fn returns_toward_center_after_pass() {
        let road = Centerline::straight(500.0);
        let planner = ConformalPlanner::default();
        // Already offset left; road clear: prefer drifting back.
        let t = planner.plan(&road, 0.0, 1.75, 15.0, &[]).unwrap();
        assert_eq!(t.target_lateral, 0.0);
        let last = t.poses.last().unwrap();
        assert!(last.y.abs() < 1.0, "converging to center, got {}", last.y);
    }
}
