//! Free-space motion planning: A* over a state lattice of motion
//! primitives, the approach the paper's motion planner uses "when the
//! vehicle is in a large opening area like parking lot or rural area"
//! (§3.1.5, citing Pivtoraiko et al.).

use adsim_vision::{geometry::normalize_angle, Point2, Pose2};
use std::collections::{BinaryHeap, HashMap};

/// A disc obstacle on the ground plane (a fused object plus a safety
/// margin).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Obstacle {
    /// Center (m).
    pub center: Point2,
    /// Radius including safety margin (m).
    pub radius: f64,
}

impl Obstacle {
    /// Creates an obstacle.
    pub fn new(center: Point2, radius: f64) -> Self {
        Self { center, radius }
    }
}

/// Lattice discretization parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatticeConfig {
    /// Grid cell size (m).
    pub cell_m: f64,
    /// Number of discrete headings (evenly spaced).
    pub headings: usize,
    /// Arc length of one motion primitive (m).
    pub step_m: f64,
    /// Maximum nodes expanded before giving up.
    pub max_expansions: usize,
    /// Distance to the goal that counts as arrival (m).
    pub goal_tolerance_m: f64,
}

impl Default for LatticeConfig {
    fn default() -> Self {
        Self {
            cell_m: 1.0,
            headings: 16,
            step_m: 2.0,
            max_expansions: 20_000,
            goal_tolerance_m: 1.5,
        }
    }
}

/// A planned path through free space.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Poses along the path, start first.
    pub poses: Vec<Pose2>,
    /// Total arc length (m).
    pub length_m: f64,
    /// Nodes expanded by the search (the planner's work metric).
    pub expansions: usize,
}

/// State-lattice A* planner.
///
/// States are `(x, y, heading)` quantized to the lattice; motion
/// primitives are straight / left-arc / right-arc steps of
/// [`LatticeConfig::step_m`] that respect the heading quantization, so
/// every edge is kinematically drivable at bounded curvature.
#[derive(Debug, Clone, Default)]
pub struct LatticePlanner {
    cfg: LatticeConfig,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct NodeKey {
    gx: i64,
    gy: i64,
    heading: usize,
}

#[derive(Debug, Clone, Copy)]
struct OpenEntry {
    f: f64,
    key: NodeKey,
}

impl PartialEq for OpenEntry {
    fn eq(&self, other: &Self) -> bool {
        self.f == other.f
    }
}
impl Eq for OpenEntry {}
impl PartialOrd for OpenEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OpenEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap on f.
        other.f.partial_cmp(&self.f).expect("costs are finite")
    }
}

impl LatticePlanner {
    /// Creates a planner with the given discretization.
    pub fn new(cfg: LatticeConfig) -> Self {
        Self { cfg }
    }

    /// Plans from `start` to within the goal tolerance of `goal`,
    /// avoiding all `obstacles`. Returns `None` when no path exists
    /// within the expansion budget.
    pub fn plan(&self, start: Pose2, goal: Point2, obstacles: &[Obstacle]) -> Option<Path> {
        let cfg = &self.cfg;
        if self.hits_obstacle(start.translation(), obstacles) {
            return None;
        }
        let start_key = self.key_of(&start);
        let mut open = BinaryHeap::new();
        let mut best_g: HashMap<NodeKey, f64> = HashMap::new();
        let mut parent: HashMap<NodeKey, (NodeKey, Pose2)> = HashMap::new();
        let mut poses: HashMap<NodeKey, Pose2> = HashMap::new();

        poses.insert(start_key, start);
        best_g.insert(start_key, 0.0);
        open.push(OpenEntry { f: start.translation().distance(&goal), key: start_key });

        let mut expansions = 0;
        while let Some(OpenEntry { key, .. }) = open.pop() {
            let pose = poses[&key];
            let g = best_g[&key];
            if pose.translation().distance(&goal) <= cfg.goal_tolerance_m {
                return Some(self.reconstruct(key, &parent, &poses, g, expansions));
            }
            expansions += 1;
            if expansions > cfg.max_expansions {
                return None;
            }
            for next in self.successors(&pose) {
                if self.hits_obstacle(next.translation(), obstacles)
                    || self.segment_blocked(&pose, &next, obstacles)
                {
                    continue;
                }
                let nk = self.key_of(&next);
                let ng = g + cfg.step_m;
                if best_g.get(&nk).is_none_or(|&old| ng < old) {
                    best_g.insert(nk, ng);
                    poses.insert(nk, next);
                    parent.insert(nk, (key, next));
                    open.push(OpenEntry { f: ng + next.translation().distance(&goal), key: nk });
                }
            }
        }
        None
    }

    /// The three motion primitives from a pose: straight, arc-left and
    /// arc-right by one heading increment.
    fn successors(&self, pose: &Pose2) -> [Pose2; 3] {
        let dtheta = 2.0 * std::f64::consts::PI / self.cfg.headings as f64;
        let step = self.cfg.step_m;
        let go = |turn: f64| {
            let theta = normalize_angle(pose.theta + turn);
            // Advance along the average heading for arc-like motion.
            let mid = pose.theta + turn / 2.0;
            Pose2::new(pose.x + step * mid.cos(), pose.y + step * mid.sin(), theta)
        };
        [go(0.0), go(dtheta), go(-dtheta)]
    }

    fn key_of(&self, pose: &Pose2) -> NodeKey {
        let h = (normalize_angle(pose.theta) + std::f64::consts::PI)
            / (2.0 * std::f64::consts::PI)
            * self.cfg.headings as f64;
        NodeKey {
            gx: (pose.x / self.cfg.cell_m).round() as i64,
            gy: (pose.y / self.cfg.cell_m).round() as i64,
            heading: (h.round() as usize) % self.cfg.headings,
        }
    }

    fn hits_obstacle(&self, p: Point2, obstacles: &[Obstacle]) -> bool {
        obstacles.iter().any(|o| o.center.distance(&p) <= o.radius)
    }

    /// Checks the midpoint of a primitive as a cheap swept-collision
    /// test (primitives are short relative to obstacle radii).
    fn segment_blocked(&self, a: &Pose2, b: &Pose2, obstacles: &[Obstacle]) -> bool {
        let mid = Point2::new((a.x + b.x) / 2.0, (a.y + b.y) / 2.0);
        self.hits_obstacle(mid, obstacles)
    }

    fn reconstruct(
        &self,
        mut key: NodeKey,
        parent: &HashMap<NodeKey, (NodeKey, Pose2)>,
        poses: &HashMap<NodeKey, Pose2>,
        length: f64,
        expansions: usize,
    ) -> Path {
        let mut out = vec![poses[&key]];
        while let Some(&(prev, _)) = parent.get(&key) {
            out.push(poses[&prev]);
            key = prev;
        }
        out.reverse();
        Path { poses: out, length_m: length, expansions }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_in_open_space() {
        let p = LatticePlanner::default();
        let path = p.plan(Pose2::identity(), Point2::new(20.0, 0.0), &[]).unwrap();
        assert!(path.length_m >= 18.0 && path.length_m <= 24.0, "{}", path.length_m);
        // Path ends near the goal.
        let end = path.poses.last().unwrap();
        assert!(end.translation().distance(&Point2::new(20.0, 0.0)) <= 1.5);
    }

    #[test]
    fn avoids_a_wall_of_obstacles() {
        let p = LatticePlanner::default();
        // A wall at x = 10 with a gap at y = 12.
        let mut obstacles = Vec::new();
        for i in -10..10 {
            if (9..12).contains(&i) {
                continue;
            }
            obstacles.push(Obstacle::new(Point2::new(10.0, i as f64), 1.2));
        }
        let goal = Point2::new(20.0, 0.0);
        let path = p.plan(Pose2::identity(), goal, &obstacles).unwrap();
        // Must detour: longer than the straight-line distance.
        assert!(path.length_m > 24.0, "detour length {}", path.length_m);
        // And never touch an obstacle.
        for pose in &path.poses {
            for o in &obstacles {
                assert!(o.center.distance(&pose.translation()) > o.radius);
            }
        }
    }

    #[test]
    fn enclosed_goal_is_unreachable() {
        let p = LatticePlanner::new(LatticeConfig { max_expansions: 5_000, ..Default::default() });
        let goal = Point2::new(15.0, 0.0);
        // Ring of obstacles around the goal.
        let obstacles: Vec<Obstacle> = (0..24)
            .map(|i| {
                let a = i as f64 / 24.0 * std::f64::consts::TAU;
                Obstacle::new(Point2::new(15.0 + 5.0 * a.cos(), 5.0 * a.sin()), 1.5)
            })
            .collect();
        assert!(p.plan(Pose2::identity(), goal, &obstacles).is_none());
    }

    #[test]
    fn start_inside_obstacle_fails_fast() {
        let p = LatticePlanner::default();
        let obstacles = [Obstacle::new(Point2::new(0.0, 0.0), 2.0)];
        assert!(p.plan(Pose2::identity(), Point2::new(10.0, 0.0), &obstacles).is_none());
    }

    #[test]
    fn paths_are_kinematically_smooth() {
        let p = LatticePlanner::default();
        let path = p.plan(Pose2::identity(), Point2::new(10.0, 10.0), &[]).unwrap();
        let dtheta_max = 2.0 * std::f64::consts::PI / 16.0 + 1e-9;
        for pair in path.poses.windows(2) {
            let turn = normalize_angle(pair[1].theta - pair[0].theta).abs();
            assert!(turn <= dtheta_max, "turn {turn} exceeds one heading increment");
        }
    }

    #[test]
    fn goal_behind_requires_turning_around() {
        let p = LatticePlanner::default();
        let goal = Point2::new(-10.0, 0.0);
        let path = p.plan(Pose2::identity(), goal, &[]).unwrap();
        // Forward-only primitives: must loop around, well over 10 m.
        assert!(path.length_m > 15.0, "{}", path.length_m);
    }
}
