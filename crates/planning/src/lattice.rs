//! Free-space motion planning: A* over a state lattice of motion
//! primitives, the approach the paper's motion planner uses "when the
//! vehicle is in a large opening area like parking lot or rural area"
//! (§3.1.5, citing Pivtoraiko et al.).
//!
//! The search expands nodes in fixed-size batches: each round pops up
//! to [`BATCH`] entries from the frontier serially, evaluates their
//! successor primitives and collision tests in parallel (each item
//! writes its own slot), then merges results back into the frontier
//! serially in batch-index order. Because the batch size is a
//! constant — never derived from the worker count — and the merge
//! order is fixed, the planner visits an identical node sequence and
//! returns a bit-identical path on every thread count (pinned by
//! `tests/parallel_parity.rs`).

use adsim_runtime::Runtime;
use adsim_vision::{geometry::normalize_angle, Point2, Pose2};
use std::collections::{BinaryHeap, HashMap};

/// Nodes expanded per parallel round. Fixed — independent of the
/// runtime's thread count — so the visited-node sequence (and thus
/// the returned path) does not depend on available parallelism.
const BATCH: usize = 8;

/// A disc obstacle on the ground plane (a fused object plus a safety
/// margin).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Obstacle {
    /// Center (m).
    pub center: Point2,
    /// Radius including safety margin (m).
    pub radius: f64,
}

impl Obstacle {
    /// Creates an obstacle.
    pub fn new(center: Point2, radius: f64) -> Self {
        Self { center, radius }
    }
}

/// Lattice discretization parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatticeConfig {
    /// Grid cell size (m).
    pub cell_m: f64,
    /// Number of discrete headings (evenly spaced).
    pub headings: usize,
    /// Arc length of one motion primitive (m).
    pub step_m: f64,
    /// Maximum nodes expanded before giving up.
    pub max_expansions: usize,
    /// Distance to the goal that counts as arrival (m).
    pub goal_tolerance_m: f64,
}

impl Default for LatticeConfig {
    fn default() -> Self {
        Self {
            cell_m: 1.0,
            headings: 16,
            step_m: 2.0,
            max_expansions: 20_000,
            goal_tolerance_m: 1.5,
        }
    }
}

/// A planned path through free space.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Poses along the path, start first.
    pub poses: Vec<Pose2>,
    /// Total arc length (m).
    pub length_m: f64,
    /// Nodes expanded by the search (the planner's work metric).
    pub expansions: usize,
}

/// State-lattice A* planner.
///
/// States are `(x, y, heading)` quantized to the lattice; motion
/// primitives are straight / left-arc / right-arc steps of
/// [`LatticeConfig::step_m`] that respect the heading quantization, so
/// every edge is kinematically drivable at bounded curvature.
#[derive(Debug, Clone, Default)]
pub struct LatticePlanner {
    cfg: LatticeConfig,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct NodeKey {
    gx: i64,
    gy: i64,
    heading: usize,
}

#[derive(Debug, Clone, Copy)]
struct OpenEntry {
    f: f64,
    /// Cost-to-come at push time; an entry whose `g` exceeds the
    /// node's current best is stale (lazy deletion).
    g: f64,
    key: NodeKey,
}

impl PartialEq for OpenEntry {
    fn eq(&self, other: &Self) -> bool {
        self.f == other.f
    }
}
impl Eq for OpenEntry {}
impl PartialOrd for OpenEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OpenEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap on f.
        other.f.partial_cmp(&self.f).expect("costs are finite")
    }
}

impl LatticePlanner {
    /// Creates a planner with the given discretization.
    pub fn new(cfg: LatticeConfig) -> Self {
        Self { cfg }
    }

    /// Plans from `start` to within the goal tolerance of `goal`,
    /// avoiding all `obstacles`. Returns `None` when no path exists
    /// within the expansion budget. Runs the search serially; see
    /// [`LatticePlanner::plan_with`] for the parallel entry point.
    pub fn plan(&self, start: Pose2, goal: Point2, obstacles: &[Obstacle]) -> Option<Path> {
        self.plan_with(&Runtime::serial(), start, goal, obstacles)
    }

    /// [`LatticePlanner::plan`] with successor evaluation on `runtime`
    /// workers. The result is bit-identical to the serial search on
    /// any thread count: the frontier is popped and merged serially in
    /// a fixed order; only the pure per-node work (primitive
    /// generation, collision tests) fans out.
    pub fn plan_with(
        &self,
        runtime: &Runtime,
        start: Pose2,
        goal: Point2,
        obstacles: &[Obstacle],
    ) -> Option<Path> {
        let cfg = &self.cfg;
        if self.hits_obstacle(start.translation(), obstacles) {
            return None;
        }
        let start_key = self.key_of(&start);
        let mut open = BinaryHeap::new();
        let mut best_g: HashMap<NodeKey, f64> = HashMap::new();
        let mut parent: HashMap<NodeKey, (NodeKey, Pose2)> = HashMap::new();
        let mut poses: HashMap<NodeKey, Pose2> = HashMap::new();

        poses.insert(start_key, start);
        best_g.insert(start_key, 0.0);
        open.push(OpenEntry { f: start.translation().distance(&goal), g: 0.0, key: start_key });

        // Round scratch, reused: each batch item expands into its own
        // slot (three primitives, `None` where blocked).
        let mut batch: Vec<(NodeKey, Pose2, f64)> = Vec::with_capacity(BATCH);
        let mut slots: Vec<[Option<Pose2>; 3]> = vec![[None; 3]; BATCH];
        // Per-item op estimate for the parallel gate: three successor
        // poses (trig) plus two disc tests per successor per obstacle.
        let work_per_item = 3 * (30 + 16 * obstacles.len());

        let mut expansions = 0;
        loop {
            // Serial phase: pop up to BATCH live entries in heap order.
            batch.clear();
            while batch.len() < BATCH {
                let Some(OpenEntry { g, key, .. }) = open.pop() else { break };
                // Lazy deletion: a cheaper path to `key` was merged
                // after this entry was pushed.
                if best_g.get(&key).is_none_or(|&best| g > best) {
                    continue;
                }
                if batch.iter().any(|(k, _, _)| *k == key) {
                    continue;
                }
                batch.push((key, poses[&key], g));
            }
            if batch.is_empty() {
                return None;
            }
            // Goal test at pop time, first in heap order — as in the
            // serial formulation.
            for &(key, pose, g) in &batch {
                if pose.translation().distance(&goal) <= cfg.goal_tolerance_m {
                    return Some(self.reconstruct(key, &parent, &poses, g, expansions));
                }
            }
            expansions += batch.len();
            if expansions > cfg.max_expansions {
                return None;
            }
            // Parallel phase: successor generation and collision
            // checks are pure; every item writes only its own slot.
            let n = batch.len();
            let batch_ref = &batch;
            runtime.for_work(n * work_per_item).par_chunks_mut(
                &mut slots[..n],
                1,
                |i, slot| {
                    let (_, pose, _) = batch_ref[i];
                    let mut out = [None; 3];
                    for (j, next) in self.successors(&pose).into_iter().enumerate() {
                        let free = !self.hits_obstacle(next.translation(), obstacles)
                            && !self.segment_blocked(&pose, &next, obstacles);
                        if free {
                            out[j] = Some(next);
                        }
                    }
                    slot[0] = out;
                },
            );
            // Serial merge in batch-index then primitive order; strict
            // `<` keeps the first writer on ties, so the heap sees one
            // fixed push sequence regardless of thread count.
            for (i, &(key, _, g)) in batch.iter().enumerate() {
                for next in slots[i].into_iter().flatten() {
                    let nk = self.key_of(&next);
                    let ng = g + cfg.step_m;
                    if best_g.get(&nk).is_none_or(|&old| ng < old) {
                        best_g.insert(nk, ng);
                        poses.insert(nk, next);
                        parent.insert(nk, (key, next));
                        open.push(OpenEntry {
                            f: ng + next.translation().distance(&goal),
                            g: ng,
                            key: nk,
                        });
                    }
                }
            }
        }
    }

    /// The three motion primitives from a pose: straight, arc-left and
    /// arc-right by one heading increment.
    fn successors(&self, pose: &Pose2) -> [Pose2; 3] {
        let dtheta = 2.0 * std::f64::consts::PI / self.cfg.headings as f64;
        let step = self.cfg.step_m;
        let go = |turn: f64| {
            let theta = normalize_angle(pose.theta + turn);
            // Advance along the average heading for arc-like motion.
            let mid = pose.theta + turn / 2.0;
            Pose2::new(pose.x + step * mid.cos(), pose.y + step * mid.sin(), theta)
        };
        [go(0.0), go(dtheta), go(-dtheta)]
    }

    fn key_of(&self, pose: &Pose2) -> NodeKey {
        let h = (normalize_angle(pose.theta) + std::f64::consts::PI)
            / (2.0 * std::f64::consts::PI)
            * self.cfg.headings as f64;
        NodeKey {
            gx: (pose.x / self.cfg.cell_m).round() as i64,
            gy: (pose.y / self.cfg.cell_m).round() as i64,
            heading: (h.round() as usize) % self.cfg.headings,
        }
    }

    fn hits_obstacle(&self, p: Point2, obstacles: &[Obstacle]) -> bool {
        obstacles.iter().any(|o| o.center.distance(&p) <= o.radius)
    }

    /// Checks the midpoint of a primitive as a cheap swept-collision
    /// test (primitives are short relative to obstacle radii).
    fn segment_blocked(&self, a: &Pose2, b: &Pose2, obstacles: &[Obstacle]) -> bool {
        let mid = Point2::new((a.x + b.x) / 2.0, (a.y + b.y) / 2.0);
        self.hits_obstacle(mid, obstacles)
    }

    fn reconstruct(
        &self,
        mut key: NodeKey,
        parent: &HashMap<NodeKey, (NodeKey, Pose2)>,
        poses: &HashMap<NodeKey, Pose2>,
        length: f64,
        expansions: usize,
    ) -> Path {
        let mut out = vec![poses[&key]];
        while let Some(&(prev, _)) = parent.get(&key) {
            out.push(poses[&prev]);
            key = prev;
        }
        out.reverse();
        Path { poses: out, length_m: length, expansions }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_in_open_space() {
        let p = LatticePlanner::default();
        let path = p.plan(Pose2::identity(), Point2::new(20.0, 0.0), &[]).unwrap();
        assert!(path.length_m >= 18.0 && path.length_m <= 24.0, "{}", path.length_m);
        // Path ends near the goal.
        let end = path.poses.last().unwrap();
        assert!(end.translation().distance(&Point2::new(20.0, 0.0)) <= 1.5);
    }

    #[test]
    fn avoids_a_wall_of_obstacles() {
        let p = LatticePlanner::default();
        // A wall at x = 10 with a gap at y = 12.
        let mut obstacles = Vec::new();
        for i in -10..10 {
            if (9..12).contains(&i) {
                continue;
            }
            obstacles.push(Obstacle::new(Point2::new(10.0, i as f64), 1.2));
        }
        let goal = Point2::new(20.0, 0.0);
        let path = p.plan(Pose2::identity(), goal, &obstacles).unwrap();
        // Must detour: longer than the straight-line distance.
        assert!(path.length_m > 24.0, "detour length {}", path.length_m);
        // And never touch an obstacle.
        for pose in &path.poses {
            for o in &obstacles {
                assert!(o.center.distance(&pose.translation()) > o.radius);
            }
        }
    }

    #[test]
    fn enclosed_goal_is_unreachable() {
        let p = LatticePlanner::new(LatticeConfig { max_expansions: 5_000, ..Default::default() });
        let goal = Point2::new(15.0, 0.0);
        // Ring of obstacles around the goal.
        let obstacles: Vec<Obstacle> = (0..24)
            .map(|i| {
                let a = i as f64 / 24.0 * std::f64::consts::TAU;
                Obstacle::new(Point2::new(15.0 + 5.0 * a.cos(), 5.0 * a.sin()), 1.5)
            })
            .collect();
        assert!(p.plan(Pose2::identity(), goal, &obstacles).is_none());
    }

    #[test]
    fn start_inside_obstacle_fails_fast() {
        let p = LatticePlanner::default();
        let obstacles = [Obstacle::new(Point2::new(0.0, 0.0), 2.0)];
        assert!(p.plan(Pose2::identity(), Point2::new(10.0, 0.0), &obstacles).is_none());
    }

    #[test]
    fn paths_are_kinematically_smooth() {
        let p = LatticePlanner::default();
        let path = p.plan(Pose2::identity(), Point2::new(10.0, 10.0), &[]).unwrap();
        let dtheta_max = 2.0 * std::f64::consts::PI / 16.0 + 1e-9;
        for pair in path.poses.windows(2) {
            let turn = normalize_angle(pair[1].theta - pair[0].theta).abs();
            assert!(turn <= dtheta_max, "turn {turn} exceeds one heading increment");
        }
    }

    #[test]
    fn goal_behind_requires_turning_around() {
        let p = LatticePlanner::default();
        let goal = Point2::new(-10.0, 0.0);
        let path = p.plan(Pose2::identity(), goal, &[]).unwrap();
        // Forward-only primitives: must loop around, well over 10 m.
        assert!(path.length_m > 15.0, "{}", path.length_m);
    }
}
