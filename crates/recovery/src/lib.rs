//! Crash-safe execution: deterministic checkpoint/restore and
//! restart-replay recovery for the supervised pipeline.
//!
//! The paper's tail-latency argument (§2.4) treats the pipeline as an
//! always-on service: a computational-engine crash must not take the
//! vehicle down with it. This crate supplies the *process-restart*
//! model over the in-memory pipeline:
//!
//! * a [`PipelineCheckpoint`] snapshots every piece of mutable
//!   per-frame state — tracker pool, localizer pose + SLAM map
//!   overlay, fusion history, planner, degradation state machine,
//!   governor forecaster, fault-injector schedule position — at frame
//!   boundaries;
//! * a [`RecoveryCoordinator`] decides when to checkpoint (every
//!   `checkpoint_interval` frames), remembers the newest checkpoint,
//!   and converts each caught crash into a [`CrashAction`]: restore
//!   and replay while the restart budget lasts, park the vehicle
//!   (SafeStop) once it is exhausted;
//! * [`describe_panic`] renders a caught panic payload — typed
//!   [`InjectedCrash`] or a plain `&str`/`String` — into the audit
//!   ledger line.
//!
//! Determinism contract: frames are pure functions of their index and
//! the checkpointed state, so *restore + replay of the gap frames*
//! converges to the same output digest as the uninterrupted run. The
//! fleet engine's byte-parity tests pin this at 1/2/8 workers with
//! crashes injected.

use adsim_faults::{FaultStage, InjectedCrash};
use std::any::Any;

/// When to checkpoint and how many crash restarts to tolerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Take a checkpoint every this many frames (the first checkpoint
    /// is taken before frame 0). `0` is treated as `1` — checkpoint
    /// every frame.
    pub checkpoint_interval: u64,
    /// Crash restarts tolerated before the vehicle parks for good
    /// (terminal SafeStop).
    pub max_restarts: u32,
}

impl RecoveryPolicy {
    /// Checkpoint every `interval` frames with a restart budget.
    pub fn new(checkpoint_interval: u64, max_restarts: u32) -> Self {
        Self { checkpoint_interval, max_restarts }
    }

    /// The effective interval (never 0).
    pub fn interval(&self) -> u64 {
        self.checkpoint_interval.max(1)
    }

    /// Whether a checkpoint is due before processing frame `index`.
    /// Frame 0's checkpoint is taken unconditionally by the driver, so
    /// this fires only on later interval boundaries.
    pub fn due(&self, index: u64) -> bool {
        index > 0 && index.is_multiple_of(self.interval())
    }
}

impl Default for RecoveryPolicy {
    /// Checkpoint every 8 frames, tolerate 3 restarts — the bench
    /// sweep's center point.
    fn default() -> Self {
        Self { checkpoint_interval: 8, max_restarts: 3 }
    }
}

/// What the recovery coordinator decided to do about a caught crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashAction {
    /// Budget left: restore the newest checkpoint (taken after
    /// `checkpoint_frame` frames had settled) and replay the gap.
    Restart {
        /// Frames settled when the checkpoint was taken — execution
        /// resumes from this frame index.
        checkpoint_frame: u64,
    },
    /// Budget exhausted: restore once more so the audit trail lands in
    /// consistent state, then park the vehicle in a terminal SafeStop
    /// for every remaining frame.
    Exhausted {
        /// Frames settled when the checkpoint was taken.
        checkpoint_frame: u64,
    },
}

/// One contained crash, for the cell's audit ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashRecord {
    /// Frame that crashed.
    pub frame: u64,
    /// Stage whose panic took the frame down.
    pub stage: FaultStage,
    /// Rendered panic payload (already truncated by the flight
    /// recorder's limit when it gets there; stored whole here).
    pub message: String,
    /// Checkpoint frame execution resumed from.
    pub resumed_from: u64,
    /// Frames deterministically replayed to catch back up.
    pub replayed: u64,
    /// Whether this crash exhausted the restart budget.
    pub exhausted: bool,
}

impl std::fmt::Display for CrashRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "frame {}: {} crashed ({}); resumed from {} replaying {} frame(s){}",
            self.frame,
            self.stage,
            self.message,
            self.resumed_from,
            self.replayed,
            if self.exhausted { " — budget exhausted, parking" } else { "" },
        )
    }
}

/// Checkpoint scheduler and restart-budget accountant, generic over
/// the checkpoint payload `C` (the fleet layer stores its whole cell
/// snapshot — supervisor checkpoint plus fold state — in here).
///
/// The coordinator deliberately holds only the *newest* checkpoint:
/// recovery always resumes from the most recent consistent state, and
/// keeping one bounds memory at one pipeline snapshot per vehicle.
#[derive(Debug, Clone)]
pub struct RecoveryCoordinator<C> {
    policy: RecoveryPolicy,
    newest: Option<(u64, C)>,
    checkpoints: u64,
    checkpoint_bytes: u64,
    restarts_used: u32,
    log: Vec<CrashRecord>,
}

impl<C> RecoveryCoordinator<C> {
    /// A coordinator with an empty ledger and full restart budget.
    pub fn new(policy: RecoveryPolicy) -> Self {
        Self {
            policy,
            newest: None,
            checkpoints: 0,
            checkpoint_bytes: 0,
            restarts_used: 0,
            log: Vec::new(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> RecoveryPolicy {
        self.policy
    }

    /// Whether a checkpoint is due before processing frame `index`.
    pub fn due(&self, index: u64) -> bool {
        self.policy.due(index)
    }

    /// Stores a checkpoint taken after `frames_done` frames settled,
    /// replacing any older one, and accounts its footprint.
    pub fn store(&mut self, frames_done: u64, checkpoint: C, approx_bytes: usize) {
        self.newest = Some((frames_done, checkpoint));
        self.checkpoints += 1;
        self.checkpoint_bytes = self.checkpoint_bytes.max(approx_bytes as u64);
    }

    /// The newest stored checkpoint, if any.
    pub fn last(&self) -> Option<(u64, &C)> {
        self.newest.as_ref().map(|(f, c)| (*f, c))
    }

    /// Converts a caught crash into the action to take. `None` means
    /// no checkpoint was ever stored — the caller must quarantine the
    /// cell instead (nothing to restore).
    pub fn on_crash(&mut self) -> Option<CrashAction> {
        let (checkpoint_frame, _) = self.newest.as_ref()?;
        let checkpoint_frame = *checkpoint_frame;
        if self.restarts_used < self.policy.max_restarts {
            self.restarts_used += 1;
            Some(CrashAction::Restart { checkpoint_frame })
        } else {
            Some(CrashAction::Exhausted { checkpoint_frame })
        }
    }

    /// Appends a contained crash to the audit ledger.
    pub fn record(&mut self, record: CrashRecord) {
        self.log.push(record);
    }

    /// Checkpoints taken so far.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints
    }

    /// Peak approximate checkpoint footprint seen (bytes).
    pub fn checkpoint_bytes(&self) -> u64 {
        self.checkpoint_bytes
    }

    /// Restarts consumed from the budget.
    pub fn restarts_used(&self) -> u32 {
        self.restarts_used
    }

    /// The contained-crash ledger, in crash order.
    pub fn log(&self) -> &[CrashRecord] {
        &self.log
    }

    /// Renders the ledger for the cell outcome (one line per crash).
    pub fn render_log(&self) -> Vec<String> {
        self.log.iter().map(|r| r.to_string()).collect()
    }
}

/// A supervisor checkpoint paired with its frame position — the unit
/// the [`RecoveryCoordinator`] stores for a plain (non-fleet) pipeline.
///
/// The fleet layer wraps more (latency histograms, output digest, MOT
/// accumulator) around the supervisor checkpoint in its own cell
/// checkpoint; this type is the single-vehicle equivalent.
#[derive(Debug, Clone)]
pub struct PipelineCheckpoint {
    frames_done: u64,
    supervisor: adsim_core::SupervisorCheckpoint,
}

impl PipelineCheckpoint {
    /// Snapshots `sup` after `frames_done` frames have settled.
    pub fn capture(sup: &adsim_core::Supervisor, frames_done: u64) -> Self {
        Self { frames_done, supervisor: sup.checkpoint() }
    }

    /// Rewinds `sup` to this checkpoint.
    pub fn restore_into(&self, sup: &mut adsim_core::Supervisor) {
        sup.restore(&self.supervisor);
    }

    /// Frames settled when the checkpoint was taken — the frame index
    /// execution resumes from.
    pub fn frames_done(&self) -> u64 {
        self.frames_done
    }

    /// Rough in-memory footprint (bytes), deterministic.
    pub fn approx_bytes(&self) -> usize {
        self.supervisor.approx_bytes()
    }
}

/// Renders a caught panic payload for the audit trail, and extracts
/// the typed [`InjectedCrash`] when the panic was an injected fault.
/// Returns `(description, injected)`; `injected = None` means the
/// panic was a genuine bug (callers should re-raise it rather than
/// mask it as a contained fault).
pub fn describe_panic(payload: &(dyn Any + Send)) -> (String, Option<InjectedCrash>) {
    if let Some(crash) = payload.downcast_ref::<InjectedCrash>() {
        return (crash.to_string(), Some(*crash));
    }
    if let Some(s) = payload.downcast_ref::<&str>() {
        return ((*s).to_string(), None);
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return (s.clone(), None);
    }
    ("non-string panic payload".to_string(), None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_schedule_skips_frame_zero() {
        let p = RecoveryPolicy::new(4, 3);
        let due: Vec<u64> = (0..13).filter(|&i| p.due(i)).collect();
        assert_eq!(due, vec![4, 8, 12]);
    }

    #[test]
    fn zero_interval_checkpoints_every_frame() {
        let p = RecoveryPolicy::new(0, 1);
        assert_eq!(p.interval(), 1);
        assert!(p.due(1) && p.due(2));
        assert!(!p.due(0), "frame 0's checkpoint is unconditional, not scheduled");
    }

    #[test]
    fn budget_counts_down_to_exhausted() {
        let mut c: RecoveryCoordinator<u8> = RecoveryCoordinator::new(RecoveryPolicy::new(4, 2));
        assert_eq!(c.on_crash(), None, "no checkpoint stored yet");
        c.store(0, 0, 100);
        assert_eq!(c.on_crash(), Some(CrashAction::Restart { checkpoint_frame: 0 }));
        c.store(8, 1, 250);
        assert_eq!(c.on_crash(), Some(CrashAction::Restart { checkpoint_frame: 8 }));
        assert_eq!(c.on_crash(), Some(CrashAction::Exhausted { checkpoint_frame: 8 }));
        assert_eq!(c.restarts_used(), 2);
        assert_eq!(c.checkpoints(), 2);
        assert_eq!(c.checkpoint_bytes(), 250, "peak footprint");
    }

    #[test]
    fn coordinator_keeps_only_the_newest_checkpoint() {
        let mut c: RecoveryCoordinator<&str> = RecoveryCoordinator::new(RecoveryPolicy::default());
        c.store(0, "first", 10);
        c.store(16, "second", 10);
        assert_eq!(c.last(), Some((16, &"second")));
    }

    #[test]
    fn crash_records_render_for_the_ledger() {
        let r = CrashRecord {
            frame: 42,
            stage: FaultStage::Detection,
            message: "injected crash: DET stage panicked at frame 42".into(),
            resumed_from: 40,
            replayed: 2,
            exhausted: false,
        };
        assert_eq!(
            r.to_string(),
            "frame 42: DET crashed (injected crash: DET stage panicked at frame 42); \
             resumed from 40 replaying 2 frame(s)"
        );
        let terminal = CrashRecord { exhausted: true, ..r };
        assert!(terminal.to_string().ends_with("— budget exhausted, parking"));
    }

    #[test]
    fn describe_panic_extracts_typed_and_string_payloads() {
        let typed: Box<dyn Any + Send> =
            Box::new(InjectedCrash { frame: 3, stage: FaultStage::Fusion });
        let (msg, injected) = describe_panic(typed.as_ref());
        assert_eq!(injected, Some(InjectedCrash { frame: 3, stage: FaultStage::Fusion }));
        assert!(msg.contains("FUSION"));

        let plain: Box<dyn Any + Send> = Box::new("index out of bounds");
        let (msg, injected) = describe_panic(plain.as_ref());
        assert_eq!(injected, None);
        assert_eq!(msg, "index out of bounds");

        let owned: Box<dyn Any + Send> = Box::new(String::from("assertion failed"));
        assert_eq!(describe_panic(owned.as_ref()).0, "assertion failed");

        let odd: Box<dyn Any + Send> = Box::new(7u32);
        assert_eq!(describe_panic(odd.as_ref()).0, "non-string panic payload");
    }
}
