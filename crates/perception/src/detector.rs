use adsim_dnn::detection::{decode_grid, nms, BBox, Detection, ObjectClass};
use adsim_dnn::models::{yolo_tiny_shared, yolo_v2_tiny_shared};
use adsim_dnn::Network;
use adsim_runtime::Runtime;
use adsim_tensor::Tensor;
use adsim_vision::GrayImage;

/// A detector's prepared DNN input, handed to a cross-vehicle batching
/// service instead of being run inline.
///
/// Produced by [`Detector::batch_request`]: the detector does its
/// pre-processing (resize, tensor conversion) and packages everything a
/// batch runner needs to reproduce [`Detector::detect`] bit-exactly —
/// the input tensor plus the decode parameters. The runner stacks
/// same-shaped requests into one `[n, c, h, w]` batch, executes a
/// single forward pass, and decodes each image's output slice with the
/// recorded `threshold`/`iou` exactly as the inline path would.
#[derive(Debug, Clone)]
pub struct BatchRequest {
    /// The pre-processed network input, shape `[1, c, side, side]`.
    pub input: Tensor,
    /// Which model family the forward pass must use.
    pub variant: DetectorVariant,
    /// The model's output grid (identifies the shared-cache network
    /// together with `variant`).
    pub grid: usize,
    /// Confidence threshold for grid decoding.
    pub threshold: f32,
    /// IoU threshold for non-maximum suppression.
    pub iou: f32,
}

/// Which detection model family a [`Detector`] should run — the
/// anytime governor's model-variant knob, kept independent of the
/// policy crate so perception has no upward dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorVariant {
    /// The richer, costlier model (`yolo_v2_tiny` on the DNN path).
    Full,
    /// The cheap fallback model (`yolo_tiny`).
    Reduced,
}

/// Work performed by one detection pass, for the platform cost models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DetCost {
    /// FLOPs executed by the DNN (0 for classical detectors).
    pub dnn_flops: u64,
    /// Pixels of the input frame.
    pub pixels: usize,
    /// Detections produced before NMS.
    pub raw_detections: usize,
}

/// A multi-object detector over camera frames (the paper's DET engine).
pub trait Detector {
    /// Detects objects, returning boxes in normalized image
    /// coordinates.
    fn detect(&mut self, frame: &GrayImage) -> Vec<Detection>;

    /// Work performed by the most recent [`Detector::detect`] call.
    fn last_cost(&self) -> DetCost;

    /// Human-readable engine name.
    fn name(&self) -> &'static str;

    /// Applies an anytime quality setting: input-resolution scale in
    /// `(0, 1]` (the paper's Fig. 13 axis) and model variant. Must be
    /// O(1) — detectors switch models through the process-wide shared
    /// caches, never by rebuilding weights. The default implementation
    /// ignores the request (a detector without quality knobs).
    fn set_quality(&mut self, _scale: f32, _variant: DetectorVariant) {}

    /// Prepares this frame for cross-vehicle batched execution instead
    /// of running [`Detector::detect`] inline.
    ///
    /// Returns `None` when the detector has no batchable DNN stage
    /// (the default); the caller must then fall back to `detect`. A
    /// `Some` request carries everything needed to reproduce `detect`'s
    /// output bit-exactly from a batched forward pass.
    fn batch_request(&mut self, _frame: &GrayImage) -> Option<BatchRequest> {
        None
    }
}

/// The DNN path: a YOLO-style grid detector (paper §3.1.1).
///
/// The frame is resized to the network input, run through the
/// convolutional trunk, and the grid output is decoded and filtered by
/// confidence threshold and NMS — exactly Fig. 3's flow. Weights are
/// deterministic pseudo-random (untrained), so outputs exercise the
/// full compute/decode path but carry no semantic accuracy; use
/// [`BlobDetector`] when ground-truth-faithful detections are needed.
#[derive(Debug)]
pub struct YoloDetector {
    net: Network,
    base_grid: usize,
    grid: usize,
    variant: DetectorVariant,
    side: usize,
    threshold: f32,
    iou_threshold: f32,
    runtime: Runtime,
    last_cost: DetCost,
}

impl YoloDetector {
    /// Creates a detector with a `grid`×`grid` output and the given
    /// confidence threshold. The forward pass runs serially; use
    /// [`YoloDetector::with_runtime`] to parallelize it.
    ///
    /// Weights come from the process-wide shared model instance
    /// ([`yolo_tiny_shared`]), so every detector in a fleet campaign
    /// reads the same `Arc`-backed parameter buffers.
    ///
    /// # Panics
    ///
    /// Panics if `grid == 0`.
    pub fn new(grid: usize, threshold: f32) -> Self {
        let net = yolo_tiny_shared(grid);
        Self {
            net,
            base_grid: grid,
            grid,
            variant: DetectorVariant::Reduced,
            side: 8 * grid,
            threshold,
            iou_threshold: 0.5,
            runtime: Runtime::serial(),
            last_cost: DetCost::default(),
        }
    }

    /// The active output grid (scales with the resolution knob).
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// The active model variant.
    pub fn variant(&self) -> DetectorVariant {
        self.variant
    }

    /// Runs the detection network's kernels on the given worker pool.
    /// Detections are identical on any thread count.
    pub fn with_runtime(mut self, rt: Runtime) -> Self {
        self.runtime = rt;
        self
    }

    /// The underlying network (for cost analysis).
    pub fn network(&self) -> &Network {
        &self.net
    }
}

impl Detector for YoloDetector {
    fn detect(&mut self, frame: &GrayImage) -> Vec<Detection> {
        let resized = frame.resize(self.side, self.side);
        let input = resized.to_tensor();
        let output = self
            .net
            .forward_with(&self.runtime, &input)
            .expect("yolo_tiny accepts its own input shape");
        let raw = decode_grid(&output, self.threshold);
        self.last_cost = DetCost {
            dnn_flops: self.net.cost().expect("built network").total.flops,
            pixels: frame.pixels(),
            raw_detections: raw.len(),
        };
        nms(raw, self.iou_threshold)
    }

    fn last_cost(&self) -> DetCost {
        self.last_cost
    }

    fn name(&self) -> &'static str {
        "yolo-dnn"
    }

    /// O(1): both variants come from process-wide shared caches, so a
    /// switch is a pointer-bump clone — no weight copies, mid-run.
    fn set_quality(&mut self, scale: f32, variant: DetectorVariant) {
        let scale = scale.clamp(0.25, 1.0);
        let grid = ((self.base_grid as f32 * scale).round() as usize).max(1);
        if grid == self.grid && variant == self.variant {
            return;
        }
        self.net = match variant {
            DetectorVariant::Full => yolo_v2_tiny_shared(grid),
            DetectorVariant::Reduced => yolo_tiny_shared(grid),
        };
        self.grid = grid;
        self.side = 8 * grid;
        self.variant = variant;
    }

    /// The batched hand-off: same resize + tensor conversion as
    /// [`YoloDetector::detect`], but the forward pass is deferred to
    /// the batch runner. `raw_detections` is not yet known (decode
    /// happens in the runner), so the cost record reports zero.
    fn batch_request(&mut self, frame: &GrayImage) -> Option<BatchRequest> {
        let resized = frame.resize(self.side, self.side);
        let input = resized.to_tensor();
        self.last_cost = DetCost {
            dnn_flops: self.net.cost().expect("built network").total.flops,
            pixels: frame.pixels(),
            raw_detections: 0,
        };
        Some(BatchRequest {
            input,
            variant: self.variant,
            grid: self.grid,
            threshold: self.threshold,
            iou: self.iou_threshold,
        })
    }
}

/// The classical path: connected-component blob detection with
/// intensity-band classification.
///
/// The synthetic worlds render each object class in a disjoint
/// intensity band (see [`ObjectClass::render_intensity`]); this
/// detector thresholds the frame, extracts connected components, and
/// classifies each by mean intensity. It is functionally accurate on
/// those worlds, which lets the tracker pool, fusion and planning be
/// validated end-to-end against ground truth.
#[derive(Debug)]
pub struct BlobDetector {
    /// Pixels above this value are candidate object pixels.
    min_intensity: u8,
    /// Components smaller than this many pixels are noise.
    min_area: usize,
    /// Input-resolution scale in `(0, 1]`; below 1.0 the frame is
    /// downsampled before component extraction, trading recall on
    /// small objects for proportionally less work (Fig. 13).
    scale: f32,
    /// Components whose intensity standard deviation exceeds this are
    /// rejected: objects are painted in a tight band around their
    /// class intensity, whereas map landmarks are high-contrast
    /// textures.
    max_stddev: f64,
    /// Components whose sub-threshold border pixels average brighter
    /// than this are rejected: objects stand on dark road, while
    /// bright cells inside a landmark are bordered by mid-intensity
    /// texture.
    max_border_mean: f64,
    last_cost: DetCost,
}

impl BlobDetector {
    /// Creates a detector with defaults tuned to the synthetic worlds.
    pub fn new() -> Self {
        Self {
            min_intensity: 120,
            min_area: 6,
            scale: 1.0,
            max_stddev: 20.0,
            max_border_mean: 60.0,
            last_cost: DetCost::default(),
        }
    }

    /// Sets the minimum component area in pixels. Real classifiers
    /// need a minimum *apparent* size to identify an object (the
    /// resolution/accuracy trade-off of the paper's §5.4); raising
    /// this models that requirement.
    ///
    /// # Panics
    ///
    /// Panics if `min_area` is zero.
    pub fn with_min_area(mut self, min_area: usize) -> Self {
        assert!(min_area > 0, "minimum area must be positive");
        self.min_area = min_area;
        self
    }
}

impl Default for BlobDetector {
    fn default() -> Self {
        Self::new()
    }
}

impl BlobDetector {
    /// Component extraction at the frame's native resolution. Boxes
    /// are normalized, so detections from a downsampled frame need no
    /// coordinate correction.
    fn detect_at_native(&mut self, frame: &GrayImage) -> Vec<Detection> {
        let (w, h) = (frame.width(), frame.height());
        let mut visited = vec![false; w * h];
        let mut detections = Vec::new();
        let mut stack = Vec::new();
        for sy in 0..h {
            for sx in 0..w {
                let idx = sy * w + sx;
                if visited[idx] || frame.get(sx, sy) < self.min_intensity {
                    continue;
                }
                // Flood-fill one component.
                let (mut x0, mut y0, mut x1, mut y1) = (sx, sy, sx, sy);
                let mut sum = 0u64;
                let mut sum_sq = 0u64;
                let mut count = 0usize;
                let mut border_sum = 0u64;
                let mut border_count = 0usize;
                stack.push((sx, sy));
                visited[idx] = true;
                while let Some((x, y)) = stack.pop() {
                    let v = frame.get(x, y);
                    sum += v as u64;
                    sum_sq += v as u64 * v as u64;
                    count += 1;
                    x0 = x0.min(x);
                    y0 = y0.min(y);
                    x1 = x1.max(x);
                    y1 = y1.max(y);
                    let neighbours = [
                        (x.wrapping_sub(1), y),
                        (x + 1, y),
                        (x, y.wrapping_sub(1)),
                        (x, y + 1),
                    ];
                    for (nx, ny) in neighbours {
                        if nx < w && ny < h {
                            let nidx = ny * w + nx;
                            let nv = frame.get(nx, ny);
                            if nv >= self.min_intensity {
                                if !visited[nidx] {
                                    visited[nidx] = true;
                                    stack.push((nx, ny));
                                }
                            } else {
                                border_sum += nv as u64;
                                border_count += 1;
                            }
                        }
                    }
                }
                if count < self.min_area {
                    continue;
                }
                // Components clipped by the frame boundary are slivers
                // of partially visible content; their intensity
                // statistics are unreliable, so skip them (they are
                // re-detected once fully in frame).
                if x0 == 0 || y0 == 0 || x1 == w - 1 || y1 == h - 1 {
                    continue;
                }
                let mean = sum as f64 / count as f64;
                let var = (sum_sq as f64 / count as f64 - mean * mean).max(0.0);
                if var.sqrt() > self.max_stddev {
                    // High-contrast texture: a map landmark, not an
                    // object.
                    continue;
                }
                // Objects stand on dark road; bright cells inside a
                // textured landmark are bordered by mid-intensity
                // texture instead.
                if border_count > 0
                    && border_sum as f64 / border_count as f64 > self.max_border_mean
                {
                    continue;
                }
                // Clutter whose mean falls outside every class band is
                // also ignored.
                let Some(class) = ObjectClass::from_intensity(mean) else { continue };
                detections.push(Detection {
                    bbox: BBox::from_corners(
                        x0 as f32 / w as f32,
                        y0 as f32 / h as f32,
                        (x1 + 1) as f32 / w as f32,
                        (y1 + 1) as f32 / h as f32,
                    ),
                    class,
                    score: 0.9,
                });
            }
        }
        self.last_cost = DetCost {
            dnn_flops: 0,
            pixels: frame.pixels(),
            raw_detections: detections.len(),
        };
        detections
    }
}

impl Detector for BlobDetector {
    fn detect(&mut self, frame: &GrayImage) -> Vec<Detection> {
        if self.scale < 1.0 {
            let rw = ((frame.width() as f32 * self.scale).round() as usize).max(8);
            let rh = ((frame.height() as f32 * self.scale).round() as usize).max(8);
            let resized = frame.resize(rw, rh);
            return self.detect_at_native(&resized);
        }
        self.detect_at_native(frame)
    }

    fn last_cost(&self) -> DetCost {
        self.last_cost
    }

    fn name(&self) -> &'static str {
        "blob-classical"
    }

    /// The classical path has no model variant; only the resolution
    /// knob applies.
    fn set_quality(&mut self, scale: f32, _variant: DetectorVariant) {
        self.scale = scale.clamp(0.25, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blob_detector_finds_and_classifies_objects() {
        let mut img = GrayImage::new(200, 150);
        img.fill_rect(20, 20, 18, 9, ObjectClass::Vehicle.render_intensity());
        img.fill_rect(100, 80, 4, 4, ObjectClass::Pedestrian.render_intensity());
        let mut det = BlobDetector::new();
        let found = det.detect(&img);
        assert_eq!(found.len(), 2);
        let classes: Vec<_> = found.iter().map(|d| d.class).collect();
        assert!(classes.contains(&ObjectClass::Vehicle));
        assert!(classes.contains(&ObjectClass::Pedestrian));
    }

    #[test]
    fn blob_detector_bbox_is_tight() {
        let mut img = GrayImage::new(100, 100);
        img.fill_rect(10, 20, 30, 10, ObjectClass::Vehicle.render_intensity());
        let mut det = BlobDetector::new();
        let d = det.detect(&img)[0];
        assert!((d.bbox.cx - 0.25).abs() < 0.02, "cx {}", d.bbox.cx);
        assert!((d.bbox.w - 0.30).abs() < 0.02, "w {}", d.bbox.w);
        assert!((d.bbox.h - 0.10).abs() < 0.02, "h {}", d.bbox.h);
    }

    #[test]
    fn blob_detector_ignores_small_noise_and_landmarks() {
        let mut img = GrayImage::new(100, 100);
        img.fill_rect(5, 5, 2, 2, 235); // too small
        img.fill_rect(50, 50, 10, 10, 90); // landmark-band intensity
        let mut det = BlobDetector::new();
        assert!(det.detect(&img).is_empty());
    }

    #[test]
    fn blob_detector_rejects_frame_edge_slivers() {
        let mut img = GrayImage::new(100, 100);
        // Clipped at the left edge.
        img.fill_rect(0, 40, 8, 8, ObjectClass::Vehicle.render_intensity());
        // Fully visible.
        img.fill_rect(50, 40, 8, 8, ObjectClass::Vehicle.render_intensity());
        let mut det = BlobDetector::new();
        let found = det.detect(&img);
        assert_eq!(found.len(), 1);
        assert!((found[0].bbox.cx - 0.54).abs() < 0.01);
    }

    #[test]
    fn blob_detector_rejects_high_variance_textures() {
        // A beacon-like patch whose *mean* lands in the traffic-sign
        // band but whose per-pixel texture is high contrast.
        let mut img = GrayImage::new(100, 100);
        for dy in 0..12isize {
            for dx in 0..12isize {
                let v = if (dx + dy) % 2 == 0 { 250 } else { 90 };
                img.put(40 + dx, 40 + dy, v);
            }
        }
        let mut det = BlobDetector::new();
        assert!(det.detect(&img).is_empty(), "textured landmark must not be an object");
        // The same patch painted flat at the band center *is* one.
        img.fill_rect(40, 40, 12, 12, ObjectClass::TrafficSign.render_intensity());
        assert_eq!(det.detect(&img).len(), 1);
    }

    #[test]
    fn blob_detector_separates_disjoint_objects() {
        let mut img = GrayImage::new(100, 100);
        let v = ObjectClass::Vehicle.render_intensity();
        img.fill_rect(10, 10, 10, 10, v);
        img.fill_rect(40, 10, 10, 10, v);
        img.fill_rect(10, 40, 10, 10, v);
        let mut det = BlobDetector::new();
        assert_eq!(det.detect(&img).len(), 3);
    }

    #[test]
    fn yolo_detector_runs_and_reports_cost() {
        let mut det = YoloDetector::new(4, 0.5);
        let img = GrayImage::from_fn(100, 80, |x, y| ((x * y) % 255) as u8);
        let dets = det.detect(&img);
        // Untrained network: only structural guarantees.
        for d in &dets {
            assert!(d.score >= 0.5);
        }
        let cost = det.last_cost();
        assert!(cost.dnn_flops > 1_000_000);
        assert_eq!(cost.pixels, 8000);
    }

    #[test]
    fn yolo_detector_is_deterministic() {
        let img = GrayImage::from_fn(64, 64, |x, y| ((x + 2 * y) % 255) as u8);
        let mut a = YoloDetector::new(4, 0.0);
        // The parallel runtime must not perturb the detections.
        let mut b = YoloDetector::new(4, 0.0).with_runtime(Runtime::new(4));
        assert_eq!(a.detect(&img), b.detect(&img));
    }

    #[test]
    fn batch_request_reproduces_detect_bitwise() {
        let img = GrayImage::from_fn(90, 70, |x, y| ((3 * x + y) % 255) as u8);
        let mut inline = YoloDetector::new(4, 0.0);
        let mut staged = YoloDetector::new(4, 0.0);
        let want = inline.detect(&img);
        let req = staged.batch_request(&img).expect("yolo is batchable");
        assert_eq!(req.grid, 4);
        assert_eq!(req.variant, DetectorVariant::Reduced);
        assert_eq!(req.input.shape().dims(), &[1, 1, 32, 32]);
        // Replay the deferred stages exactly as a batch runner would.
        let net = yolo_tiny_shared(req.grid);
        let out = net.forward_with(&Runtime::serial(), &req.input).unwrap();
        let got = nms(decode_grid(&out, req.threshold), req.iou);
        assert_eq!(got, want);
        // Staged cost matches inline except the not-yet-known raw count.
        assert_eq!(staged.last_cost().dnn_flops, inline.last_cost().dnn_flops);
        assert_eq!(staged.last_cost().pixels, inline.last_cost().pixels);
    }

    #[test]
    fn blob_detector_declines_batch_requests() {
        let img = GrayImage::new(32, 32);
        assert!(BlobDetector::new().batch_request(&img).is_none());
    }

    #[test]
    fn detector_names_differ() {
        assert_ne!(BlobDetector::new().name(), YoloDetector::new(2, 0.5).name());
    }

    #[test]
    fn yolo_quality_switch_is_shared_cache_backed() {
        use adsim_dnn::models::{yolo_tiny_shared, yolo_v2_tiny_shared};
        let mut det = YoloDetector::new(4, 0.5);
        assert_eq!(det.variant(), DetectorVariant::Reduced);
        assert!(det.network().shares_weights(&yolo_tiny_shared(4)), "default is the tiny cache");
        det.set_quality(1.0, DetectorVariant::Full);
        assert_eq!(det.variant(), DetectorVariant::Full);
        assert_eq!(det.grid(), 4);
        assert!(
            det.network().shares_weights(&yolo_v2_tiny_shared(4)),
            "variant switch clones from the v2 cache — no weight copy"
        );
        det.set_quality(0.5, DetectorVariant::Reduced);
        assert_eq!(det.grid(), 2, "resolution knob halves the grid");
        assert!(det.network().shares_weights(&yolo_tiny_shared(2)));
    }

    #[test]
    fn yolo_resolution_knob_cuts_flops() {
        let img = GrayImage::from_fn(100, 80, |x, y| ((x * y) % 255) as u8);
        let mut det = YoloDetector::new(4, 0.5);
        det.detect(&img);
        let full = det.last_cost().dnn_flops;
        det.set_quality(0.5, DetectorVariant::Reduced);
        det.detect(&img);
        let half = det.last_cost().dnn_flops;
        assert!(half * 3 < full, "half resolution must cut FLOPs ~4x: {half} vs {full}");
    }

    #[test]
    fn blob_resolution_knob_cuts_pixels_and_keeps_big_objects() {
        let mut img = GrayImage::new(200, 150);
        img.fill_rect(40, 40, 30, 20, ObjectClass::Vehicle.render_intensity());
        let mut det = BlobDetector::new();
        let native = det.detect(&img);
        assert_eq!(native.len(), 1);
        let native_pixels = det.last_cost().pixels;
        det.set_quality(0.5, DetectorVariant::Reduced);
        let scaled = det.detect(&img);
        assert_eq!(scaled.len(), 1, "a 30x20 vehicle survives half resolution");
        assert!(
            det.last_cost().pixels * 3 < native_pixels,
            "half resolution must process ~1/4 the pixels"
        );
        // Normalized coordinates need no correction after downsampling.
        assert!((scaled[0].bbox.cx - native[0].bbox.cx).abs() < 0.03);
        assert!((scaled[0].bbox.w - native[0].bbox.w).abs() < 0.03);
    }
}
