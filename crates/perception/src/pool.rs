use crate::tracker::Tracker;
use adsim_dnn::detection::{BBox, Detection, ObjectClass};
use adsim_runtime::Runtime;
use adsim_vision::GrayImage;
use std::collections::HashMap;

/// One row of the tracked-object table (paper §3.1.2: "we implement a
/// tracked object table to store the objects that are being tracked
/// currently").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackedObject {
    /// Stable track identity.
    pub track_id: u64,
    /// Object class from the associating detections.
    pub class: ObjectClass,
    /// Current box estimate in normalized image coordinates.
    pub bbox: BBox,
    /// Frames since this track was associated with a detection.
    pub frames_missing: u32,
    /// Total frames this track has existed.
    pub age: u64,
}

/// Tracker-pool tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackerPoolConfig {
    /// Maximum simultaneous trackers (the pre-launched pool size).
    pub capacity: usize,
    /// A track is dropped after this many consecutive frames without a
    /// supporting detection (paper: ten consecutive images).
    pub miss_limit: u32,
    /// Minimum detection/track IoU for association.
    pub min_iou: f32,
}

impl Default for TrackerPoolConfig {
    fn default() -> Self {
        Self { capacity: 32, miss_limit: 10, min_iou: 0.25 }
    }
}

/// Factory building a tracker anchored on a detection.
type TrackerFactory = Box<dyn FnMut(&GrayImage, BBox) -> Box<dyn Tracker> + Send>;

/// A deep copy of a [`TrackerPool`]'s mutable state, captured by
/// [`TrackerPool::snapshot`] for the crash-recovery checkpoint layer.
/// Rows are held sorted by track id so snapshot contents are a pure
/// function of the table, never of hash-map iteration order.
#[derive(Clone)]
pub struct TrackerPoolSnapshot {
    cfg: TrackerPoolConfig,
    tracks: Vec<(u64, Box<dyn Tracker>, TrackedObject)>,
    next_id: u64,
}

impl TrackerPoolSnapshot {
    /// Live tracks captured in the snapshot.
    pub fn len(&self) -> usize {
        self.tracks.len()
    }

    /// True when no tracks were live at capture time.
    pub fn is_empty(&self) -> bool {
        self.tracks.is_empty()
    }
}

impl std::fmt::Debug for TrackerPoolSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrackerPoolSnapshot")
            .field("tracks", &self.tracks.len())
            .field("next_id", &self.next_id)
            .finish()
    }
}

/// The paper's TRA engine: a pool of single-object trackers fed by the
/// detector, with a tracked-object table and ten-frame expiry.
///
/// Each frame: every active tracker advances; detections are greedily
/// associated to tracks by IoU; associated tracks are corrected and
/// refreshed; unassociated detections claim idle trackers; tracks
/// missing for [`TrackerPoolConfig::miss_limit`] consecutive frames
/// are removed and their tracker returned to the idle pool.
pub struct TrackerPool {
    factory: TrackerFactory,
    cfg: TrackerPoolConfig,
    tracks: HashMap<u64, (Box<dyn Tracker>, TrackedObject)>,
    next_id: u64,
    runtime: Runtime,
}

impl std::fmt::Debug for TrackerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrackerPool")
            .field("active", &self.tracks.len())
            .field("cfg", &self.cfg)
            .finish()
    }
}

impl TrackerPool {
    /// Creates a pool that builds trackers with `factory`.
    pub fn new(
        cfg: TrackerPoolConfig,
        factory: impl FnMut(&GrayImage, BBox) -> Box<dyn Tracker> + Send + 'static,
    ) -> Self {
        Self {
            factory: Box::new(factory),
            cfg,
            tracks: HashMap::new(),
            next_id: 0,
            runtime: Runtime::serial(),
        }
    }

    /// Advances per-track updates on the given worker pool. Track
    /// updates are independent (each tracker reads the shared frame and
    /// writes only its own state), and association runs afterwards on
    /// the deterministically sorted pair list, so the table is
    /// identical on any thread count.
    #[must_use]
    pub fn with_runtime(mut self, runtime: Runtime) -> Self {
        self.runtime = runtime;
        self
    }

    /// Number of active tracks.
    pub fn active(&self) -> usize {
        self.tracks.len()
    }

    /// The current pool capacity.
    pub fn capacity(&self) -> usize {
        self.cfg.capacity
    }

    /// Resizes the pool mid-run (the anytime governor's tracker knob),
    /// clamped to at least one slot. Shrinking below the active track
    /// count deterministically evicts the newest tracks (highest ids)
    /// — the oldest, longest-confirmed tracks survive — so the table
    /// after a shrink is a pure function of the table before it.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.cfg.capacity = capacity.max(1);
        if self.tracks.len() > self.cfg.capacity {
            let mut ids: Vec<u64> = self.tracks.keys().copied().collect();
            ids.sort_unstable();
            for id in ids.into_iter().skip(self.cfg.capacity) {
                self.tracks.remove(&id);
            }
        }
    }

    /// The tracked-object table, sorted by track id.
    pub fn table(&self) -> Vec<TrackedObject> {
        let mut rows: Vec<TrackedObject> = self.tracks.values().map(|(_, t)| *t).collect();
        rows.sort_by_key(|t| t.track_id);
        rows
    }

    /// A deep snapshot of the pool's mutable state: every live tracker
    /// (via [`Tracker::boxed_clone`]), its table row, the id counter
    /// and the active capacity. The factory and runtime are
    /// construction-time state and stay with the pool.
    pub fn snapshot(&self) -> TrackerPoolSnapshot {
        let mut tracks: Vec<(u64, Box<dyn Tracker>, TrackedObject)> = self
            .tracks
            .iter()
            .map(|(id, (tracker, obj))| (*id, tracker.boxed_clone(), *obj))
            .collect();
        tracks.sort_by_key(|(id, _, _)| *id);
        TrackerPoolSnapshot { cfg: self.cfg, tracks, next_id: self.next_id }
    }

    /// Restores a [`TrackerPool::snapshot`]: the pool resumes
    /// bit-identically from the snapshot's state. The snapshot is
    /// reusable (restoring clones out of it).
    pub fn restore(&mut self, snap: &TrackerPoolSnapshot) {
        self.cfg = snap.cfg;
        self.next_id = snap.next_id;
        self.tracks = snap
            .tracks
            .iter()
            .map(|(id, tracker, obj)| (*id, (tracker.boxed_clone(), *obj)))
            .collect();
    }

    /// Advances the pool by one frame.
    ///
    /// `detections` are this frame's detector outputs; the returned
    /// table reflects all updates, associations and expiries.
    pub fn step(&mut self, frame: &GrayImage, detections: &[Detection]) -> Vec<TrackedObject> {
        // 1. Advance every tracker ("predict the trajectories of
        //    moving objects"). Updates are independent, so they fan
        //    out one-per-worker-task over the pool's runtime; the
        //    track-id sort pins the task order so scheduling is a pure
        //    function of the table contents.
        {
            let _sp = adsim_trace::span("tra.update");
            let mut entries: Vec<&mut (Box<dyn Tracker>, TrackedObject)> =
                self.tracks.values_mut().collect();
            entries.sort_by_key(|(_, obj)| obj.track_id);
            let rt = if entries.len() >= 2 { self.runtime } else { Runtime::serial() };
            rt.par_chunks_mut(&mut entries, 1, |_, slot| {
                let (tracker, obj) = &mut *slot[0];
                obj.bbox = tracker.update(frame);
                obj.age += 1;
                obj.frames_missing += 1;
            });
        }
        let _sp = adsim_trace::span("tra.associate");

        // 2. Greedy association, best pairs first. Primary criterion
        //    is IoU; when a tracker has drifted enough that the boxes
        //    no longer overlap, a center-distance fallback (within one
        //    box diameter) still re-associates rather than spawning a
        //    duplicate track.
        let mut pairs: Vec<(usize, u64, f32)> = Vec::new();
        for (di, d) in detections.iter().enumerate() {
            for (id, (_, obj)) in &self.tracks {
                if d.class != obj.class {
                    continue;
                }
                let iou = d.bbox.iou(&obj.bbox);
                let dist = d.bbox.center_distance(&obj.bbox);
                let limit = d.bbox.w.max(d.bbox.h);
                let score = if iou >= self.cfg.min_iou {
                    iou
                } else if dist <= limit {
                    // Ranks below every true IoU match, above zero.
                    0.5 * self.cfg.min_iou * (1.0 - dist / limit)
                } else {
                    continue;
                };
                pairs.push((di, *id, score));
            }
        }
        // Score-tied pairs are ordered by (detection, track) index so
        // association never depends on hash-map iteration order — the
        // pipeline output is a pure function of its inputs.
        pairs.sort_by(|a, b| {
            b.2.total_cmp(&a.2).then_with(|| a.0.cmp(&b.0)).then_with(|| a.1.cmp(&b.1))
        });
        let mut det_used = vec![false; detections.len()];
        let mut track_used: Vec<u64> = Vec::new();
        for (di, id, _) in pairs {
            if det_used[di] || track_used.contains(&id) {
                continue;
            }
            det_used[di] = true;
            track_used.push(id);
            let (tracker, obj) = self.tracks.get_mut(&id).expect("id from iteration");
            tracker.correct(frame, detections[di].bbox);
            obj.bbox = detections[di].bbox;
            obj.frames_missing = 0;
        }

        // 3. New tracks for unmatched detections, pool capacity
        //    permitting.
        for (di, d) in detections.iter().enumerate() {
            if det_used[di] || self.tracks.len() >= self.cfg.capacity {
                continue;
            }
            let id = self.next_id;
            self.next_id += 1;
            let tracker = (self.factory)(frame, d.bbox);
            self.tracks.insert(
                id,
                (
                    tracker,
                    TrackedObject {
                        track_id: id,
                        class: d.class,
                        bbox: d.bbox,
                        frames_missing: 0,
                        age: 0,
                    },
                ),
            );
        }

        // 4. Expire stale tracks (ten consecutive missing frames).
        let limit = self.cfg.miss_limit;
        self.tracks.retain(|_, (_, obj)| obj.frames_missing < limit);

        self.table()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::TemplateTracker;

    fn pool(cfg: TrackerPoolConfig) -> TrackerPool {
        TrackerPool::new(cfg, |frame, bbox| Box::new(TemplateTracker::new(frame, bbox)))
    }

    fn det(cx: f32, cy: f32, class: ObjectClass) -> Detection {
        Detection { bbox: BBox::new(cx, cy, 0.1, 0.1), class, score: 0.9 }
    }

    fn frame() -> GrayImage {
        // Locally unique texture so template tracking has an
        // unambiguous optimum at zero displacement.
        GrayImage::from_fn(160, 120, |x, y| {
            let mut h = (x as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (y as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h ^= h >> 31;
            h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
            h ^= h >> 29;
            (h % 60) as u8
        })
    }

    #[test]
    fn detections_create_tracks_up_to_capacity() {
        let mut p = pool(TrackerPoolConfig { capacity: 2, ..Default::default() });
        let dets = vec![
            det(0.2, 0.2, ObjectClass::Vehicle),
            det(0.5, 0.5, ObjectClass::Pedestrian),
            det(0.8, 0.8, ObjectClass::Bicycle),
        ];
        let table = p.step(&frame(), &dets);
        assert_eq!(table.len(), 2, "capacity caps the pool");
    }

    #[test]
    fn association_keeps_track_identity() {
        let mut p = pool(TrackerPoolConfig::default());
        let t0 = p.step(&frame(), &[det(0.3, 0.3, ObjectClass::Vehicle)]);
        let id = t0[0].track_id;
        // Slightly moved detection: must associate, not spawn.
        let t1 = p.step(&frame(), &[det(0.32, 0.3, ObjectClass::Vehicle)]);
        assert_eq!(t1.len(), 1);
        assert_eq!(t1[0].track_id, id);
        assert_eq!(t1[0].frames_missing, 0);
    }

    #[test]
    fn class_mismatch_prevents_association() {
        let mut p = pool(TrackerPoolConfig::default());
        p.step(&frame(), &[det(0.3, 0.3, ObjectClass::Vehicle)]);
        let t = p.step(&frame(), &[det(0.3, 0.3, ObjectClass::Pedestrian)]);
        assert_eq!(t.len(), 2, "same place, different class -> two tracks");
    }

    #[test]
    fn tracks_expire_after_miss_limit() {
        let mut p = pool(TrackerPoolConfig { miss_limit: 3, ..Default::default() });
        p.step(&frame(), &[det(0.3, 0.3, ObjectClass::Vehicle)]);
        assert_eq!(p.active(), 1);
        // 2 frames missing: still alive; 3rd: expired.
        p.step(&frame(), &[]);
        p.step(&frame(), &[]);
        assert_eq!(p.active(), 1);
        p.step(&frame(), &[]);
        assert_eq!(p.active(), 0);
    }

    #[test]
    fn paper_default_is_ten_frame_expiry() {
        assert_eq!(TrackerPoolConfig::default().miss_limit, 10);
    }

    #[test]
    fn redetection_resets_missing_counter() {
        let mut p = pool(TrackerPoolConfig { miss_limit: 3, ..Default::default() });
        p.step(&frame(), &[det(0.3, 0.3, ObjectClass::Vehicle)]);
        p.step(&frame(), &[]);
        p.step(&frame(), &[]);
        // Re-detected just in time.
        let t = p.step(&frame(), &[det(0.3, 0.3, ObjectClass::Vehicle)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].frames_missing, 0);
        p.step(&frame(), &[]);
        assert_eq!(p.active(), 1, "counter was reset");
    }

    #[test]
    fn freed_capacity_is_reused() {
        let mut p = pool(TrackerPoolConfig { capacity: 1, miss_limit: 1, ..Default::default() });
        p.step(&frame(), &[det(0.2, 0.2, ObjectClass::Vehicle)]);
        // Expire it, then a new object claims the slot.
        p.step(&frame(), &[]);
        let t = p.step(&frame(), &[det(0.8, 0.8, ObjectClass::Bicycle)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].class, ObjectClass::Bicycle);
    }

    #[test]
    fn parallel_updates_are_bit_identical_across_thread_counts() {
        let signature = |p: &mut TrackerPool| -> Vec<(u64, [u32; 4], u32, u64)> {
            // A multi-frame scenario with association churn: objects
            // drift, one disappears, a new one appears.
            let mut out = Vec::new();
            let f = frame();
            for step in 0..6u32 {
                let s = step as f32 * 0.02;
                let mut dets = vec![
                    det(0.2 + s, 0.2, ObjectClass::Vehicle),
                    det(0.6, 0.6 - s, ObjectClass::Pedestrian),
                ];
                if step < 3 {
                    dets.push(det(0.8, 0.3 + s, ObjectClass::Bicycle));
                }
                if step >= 4 {
                    dets.push(det(0.4, 0.8, ObjectClass::Vehicle));
                }
                for t in p.step(&f, &dets) {
                    out.push((
                        t.track_id,
                        [
                            t.bbox.cx.to_bits(),
                            t.bbox.cy.to_bits(),
                            t.bbox.w.to_bits(),
                            t.bbox.h.to_bits(),
                        ],
                        t.frames_missing,
                        t.age,
                    ));
                }
            }
            out
        };
        let mut serial = pool(TrackerPoolConfig::default());
        let expect = signature(&mut serial);
        for threads in [1usize, 2, 8] {
            let mut par = pool(TrackerPoolConfig::default())
                .with_runtime(adsim_runtime::Runtime::new(threads));
            assert_eq!(signature(&mut par), expect, "threads={threads}");
        }
    }

    #[test]
    fn shrinking_capacity_evicts_newest_tracks_first() {
        let mut p = pool(TrackerPoolConfig::default());
        let f = frame();
        p.step(&f, &[det(0.2, 0.2, ObjectClass::Vehicle)]);
        p.step(
            &f,
            &[
                det(0.2, 0.2, ObjectClass::Vehicle),
                det(0.5, 0.5, ObjectClass::Pedestrian),
                det(0.8, 0.8, ObjectClass::Bicycle),
            ],
        );
        assert_eq!(p.active(), 3);
        p.set_capacity(2);
        let ids: Vec<u64> = p.table().iter().map(|t| t.track_id).collect();
        assert_eq!(ids, vec![0, 1], "oldest tracks survive the shrink");
        assert_eq!(p.capacity(), 2);
        // Growing back re-opens slots for new detections.
        p.set_capacity(32);
        let t = p.step(&f, &[det(0.8, 0.8, ObjectClass::Bicycle)]);
        assert_eq!(t.len(), 3);
        // Zero clamps to one slot rather than an unusable pool.
        p.set_capacity(0);
        assert_eq!(p.capacity(), 1);
        assert_eq!(p.active(), 1);
    }

    #[test]
    fn ages_accumulate() {
        let mut p = pool(TrackerPoolConfig::default());
        p.step(&frame(), &[det(0.3, 0.3, ObjectClass::Vehicle)]);
        for _ in 0..5 {
            p.step(&frame(), &[det(0.3, 0.3, ObjectClass::Vehicle)]);
        }
        assert_eq!(p.table()[0].age, 5);
    }
}

