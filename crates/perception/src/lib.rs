//! Object detection (DET) and object tracking (TRA) engines.
//!
//! These are two of the paper's three computational bottlenecks
//! (§3.2): a YOLO-style multi-object detector (Fig. 3) and a
//! GOTURN-style single-object tracker driven from a tracker pool with a
//! tracked-object table and a ten-frame expiry rule (§3.1.2, Fig. 4).
//!
//! Each engine has two interchangeable implementations behind a trait:
//!
//! * a **DNN** implementation ([`YoloDetector`], [`GoturnTracker`])
//!   that runs the reduced-scale networks from `adsim-dnn`, exercising
//!   the exact compute structure the paper accelerates — but with
//!   deterministic pseudo-random weights, since trained vision models
//!   are outside this reproduction's scope (see DESIGN.md);
//! * a **classical** implementation ([`BlobDetector`],
//!   [`TemplateTracker`]) that is functionally accurate on the
//!   synthetic worlds, so the end-to-end pipeline, fusion and planning
//!   can be validated against ground truth.
//!
//! # Examples
//!
//! ```
//! use adsim_perception::{BlobDetector, Detector};
//! use adsim_vision::GrayImage;
//!
//! let mut img = GrayImage::new(160, 120);
//! img.fill_rect(40, 40, 20, 12, 235); // a vehicle-band blob
//! let mut det = BlobDetector::new();
//! let found = det.detect(&img);
//! assert_eq!(found.len(), 1);
//! ```

mod detector;
pub mod metrics;
mod pool;
mod tracker;

pub use detector::{BatchRequest, BlobDetector, DetCost, Detector, DetectorVariant, YoloDetector};
pub use pool::{TrackedObject, TrackerPool, TrackerPoolConfig, TrackerPoolSnapshot};
pub use tracker::{GoturnTracker, TemplateTracker, Tracker};
