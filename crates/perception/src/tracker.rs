use adsim_dnn::detection::BBox;
use adsim_dnn::models::goturn_tiny_shared;
use adsim_dnn::Network;
use adsim_runtime::Runtime;
use adsim_tensor::Tensor;
use adsim_vision::GrayImage;

/// A single-object tracker (one member of the paper's tracker pool).
///
/// Following GOTURN's design (Fig. 4), a tracker is given the target's
/// bounding box once and then, for each new frame, predicts the
/// target's new box from the previous target crop and a search region
/// crop of the current frame.
///
/// `Send` is a supertrait so the tracker pool can advance its members
/// on `adsim-runtime` workers; trackers are owned by one pool and never
/// shared, so no `Sync` bound is needed.
pub trait Tracker: Send {
    /// Advances the tracker by one frame, returning the predicted box
    /// in normalized image coordinates.
    fn update(&mut self, frame: &GrayImage) -> BBox;

    /// Current box estimate.
    fn bbox(&self) -> BBox;

    /// Re-anchors the tracker on a detector-confirmed box (the tracker
    /// pool does this whenever a detection is associated).
    fn correct(&mut self, frame: &GrayImage, bbox: BBox);

    /// Human-readable engine name.
    fn name(&self) -> &'static str;

    /// A deep copy of this tracker's full state, boxed. The recovery
    /// layer snapshots the tracker pool through this (trait objects
    /// cannot derive `Clone`); the copy must resume bit-identically.
    fn boxed_clone(&self) -> Box<dyn Tracker>;
}

impl Clone for Box<dyn Tracker> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

/// Side of the square crops fed to the GOTURN-style network.
const CROP_SIDE: usize = 32;

/// The DNN path: a GOTURN-style regression tracker.
///
/// Crops the previous frame to the target and the current frame to a
/// 2× search region, stacks them as two channels, and regresses the
/// target's box within the search region — the exact dataflow of the
/// paper's Fig. 4, with deterministic pseudo-random weights (see
/// DESIGN.md; use [`TemplateTracker`] for functionally accurate
/// tracking on the synthetic worlds).
#[derive(Clone)]
pub struct GoturnTracker {
    net: Network,
    bbox: BBox,
    prev_crop: GrayImage,
    runtime: Runtime,
}

impl std::fmt::Debug for GoturnTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GoturnTracker").field("bbox", &self.bbox).finish()
    }
}

impl GoturnTracker {
    /// Creates a tracker anchored on `bbox` in `frame`. The regression
    /// network runs serially; use [`GoturnTracker::with_runtime`] to
    /// parallelize it.
    ///
    /// Every tracker clones the process-wide shared model
    /// ([`goturn_tiny_shared`]), so a pool of N trackers holds one copy
    /// of the weights, not N — the pool is rebuilt per track, which
    /// previously made it the pipeline's largest repeated allocation.
    pub fn new(frame: &GrayImage, bbox: BBox) -> Self {
        let prev_crop = crop_box(frame, &bbox, 1.0);
        Self { net: goturn_tiny_shared(), bbox, prev_crop, runtime: Runtime::serial() }
    }

    /// Runs the tracker's network kernels on the given worker pool.
    /// Predicted boxes are identical on any thread count.
    pub fn with_runtime(mut self, rt: Runtime) -> Self {
        self.runtime = rt;
        self
    }

    /// FLOPs of one update (the DNN forward pass).
    pub fn flops_per_update(&self) -> u64 {
        self.net.cost().expect("built network").total.flops
    }
}

impl Tracker for GoturnTracker {
    fn update(&mut self, frame: &GrayImage) -> BBox {
        // Search region: the previous box inflated 2x.
        let search = search_region(&self.bbox);
        let cur_crop = crop_box(frame, &search, 1.0);
        let input = stack_crops(&self.prev_crop, &cur_crop);
        let out = self
            .net
            .forward_with(&self.runtime, &input)
            .expect("goturn_tiny accepts its input");
        let o = out.as_slice();
        // Outputs are sigmoid-normalized within the search region.
        let new_bbox = BBox::new(
            search.cx - search.w / 2.0 + o[0] * search.w,
            search.cy - search.h / 2.0 + o[1] * search.h,
            (o[2] * search.w).max(1e-3),
            (o[3] * search.h).max(1e-3),
        );
        self.prev_crop = crop_box(frame, &new_bbox, 1.0);
        self.bbox = new_bbox;
        new_bbox
    }

    fn bbox(&self) -> BBox {
        self.bbox
    }

    fn correct(&mut self, frame: &GrayImage, bbox: BBox) {
        self.bbox = bbox;
        self.prev_crop = crop_box(frame, &bbox, 1.0);
    }

    fn name(&self) -> &'static str {
        "goturn-dnn"
    }

    fn boxed_clone(&self) -> Box<dyn Tracker> {
        // Network clones share the `Arc`-backed weights — a snapshot of
        // a GOTURN pool costs crops and boxes, never weight copies.
        Box::new(self.clone())
    }
}

/// The classical path: sum-of-absolute-differences template matching.
///
/// Remembers the target's appearance and scans a search window around
/// the previous position for the best-matching placement. Functionally
/// accurate on the synthetic worlds (rigid textured objects), so the
/// tracker pool's association and expiry logic can be validated
/// against scripted ground truth.
#[derive(Debug, Clone)]
pub struct TemplateTracker {
    template: GrayImage,
    bbox: BBox,
    /// Search radius around the previous position, in pixels.
    search_px: isize,
}

impl TemplateTracker {
    /// Creates a tracker anchored on `bbox` in `frame`.
    pub fn new(frame: &GrayImage, bbox: BBox) -> Self {
        let template = crop_pixels(frame, &bbox);
        Self { template, bbox, search_px: 12 }
    }
}

impl Tracker for TemplateTracker {
    fn update(&mut self, frame: &GrayImage) -> BBox {
        let (w, h) = (frame.width() as f32, frame.height() as f32);
        let tw = self.template.width();
        let th = self.template.height();
        let cx0 = (self.bbox.cx * w) as isize - tw as isize / 2;
        let cy0 = (self.bbox.cy * h) as isize - th as isize / 2;
        let mut best = (i64::MAX, cx0, cy0);
        for dy in -self.search_px..=self.search_px {
            for dx in -self.search_px..=self.search_px {
                let (ox, oy) = (cx0 + dx, cy0 + dy);
                let mut sad = 0i64;
                // Subsampled SAD: every 2nd pixel is plenty for rigid
                // targets and quarters the cost.
                for ty in (0..th).step_by(2) {
                    for tx in (0..tw).step_by(2) {
                        let f = frame.get_clamped(ox + tx as isize, oy + ty as isize) as i64;
                        let t = self.template.get(tx, ty) as i64;
                        sad += (f - t).abs();
                    }
                }
                if sad < best.0 {
                    best = (sad, ox, oy);
                }
            }
        }
        let (_, bx, by) = best;
        self.bbox = BBox::new(
            (bx as f32 + tw as f32 / 2.0) / w,
            (by as f32 + th as f32 / 2.0) / h,
            self.bbox.w,
            self.bbox.h,
        );
        self.bbox
    }

    fn bbox(&self) -> BBox {
        self.bbox
    }

    fn correct(&mut self, frame: &GrayImage, bbox: BBox) {
        self.bbox = bbox;
        self.template = crop_pixels(frame, &bbox);
    }

    fn name(&self) -> &'static str {
        "template-classical"
    }

    fn boxed_clone(&self) -> Box<dyn Tracker> {
        Box::new(self.clone())
    }
}

/// The previous box inflated 2× (clamped to the frame), GOTURN's
/// search region.
fn search_region(bbox: &BBox) -> BBox {
    BBox::new(
        bbox.cx.clamp(0.0, 1.0),
        bbox.cy.clamp(0.0, 1.0),
        (bbox.w * 2.0).min(1.0),
        (bbox.h * 2.0).min(1.0),
    )
}

/// Crops a normalized box (inflated by `scale`) and resizes to the
/// network crop size.
fn crop_box(frame: &GrayImage, bbox: &BBox, scale: f32) -> GrayImage {
    let (w, h) = (frame.width() as f32, frame.height() as f32);
    let cw = (bbox.w * scale * w).max(2.0) as usize;
    let ch = (bbox.h * scale * h).max(2.0) as usize;
    let x = (bbox.cx * w - cw as f32 / 2.0) as isize;
    let y = (bbox.cy * h - ch as f32 / 2.0) as isize;
    frame.crop(x, y, cw, ch).resize(CROP_SIDE, CROP_SIDE)
}

/// Crops a normalized box at native resolution (template tracking).
fn crop_pixels(frame: &GrayImage, bbox: &BBox) -> GrayImage {
    let (w, h) = (frame.width() as f32, frame.height() as f32);
    let cw = (bbox.w * w).max(2.0) as usize;
    let ch = (bbox.h * h).max(2.0) as usize;
    let x = (bbox.cx * w - cw as f32 / 2.0) as isize;
    let y = (bbox.cy * h - ch as f32 / 2.0) as isize;
    frame.crop(x, y, cw, ch)
}

/// Stacks two crops as a `[1, 2, S, S]` tensor.
fn stack_crops(prev: &GrayImage, cur: &GrayImage) -> Tensor {
    let mut data = Vec::with_capacity(2 * CROP_SIDE * CROP_SIDE);
    data.extend(prev.as_slice().iter().map(|&p| p as f32 / 255.0));
    data.extend(cur.as_slice().iter().map(|&p| p as f32 / 255.0));
    Tensor::from_vec([1, 2, CROP_SIDE, CROP_SIDE], data)
        .expect("crops are CROP_SIDE x CROP_SIDE by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A textured square at a given position.
    fn frame_with_target(cx: f32, cy: f32) -> GrayImage {
        let mut img = GrayImage::from_fn(160, 120, |x, y| ((x * 3 + y * 7) % 23) as u8);
        let px = (cx * 160.0) as isize - 8;
        let py = (cy * 120.0) as isize - 8;
        for dy in 0..16 {
            for dx in 0..16 {
                let v = 150 + ((dx * 5 + dy * 11) % 100) as u8;
                img.put(px + dx, py + dy, v);
            }
        }
        img
    }

    fn target_box(cx: f32, cy: f32) -> BBox {
        BBox::new(cx, cy, 16.0 / 160.0, 16.0 / 120.0)
    }

    #[test]
    fn template_tracker_follows_moving_target() {
        let f0 = frame_with_target(0.3, 0.5);
        let mut tracker = TemplateTracker::new(&f0, target_box(0.3, 0.5));
        for step in 1..=8 {
            let cx = 0.3 + step as f32 * 0.02;
            let f = frame_with_target(cx, 0.5);
            let b = tracker.update(&f);
            assert!(
                (b.cx - cx).abs() < 0.02,
                "step {step}: predicted {} truth {cx}",
                b.cx
            );
            assert!((b.cy - 0.5).abs() < 0.02);
        }
    }

    #[test]
    fn template_tracker_is_stationary_for_static_target() {
        let f = frame_with_target(0.5, 0.5);
        let mut tracker = TemplateTracker::new(&f, target_box(0.5, 0.5));
        let b = tracker.update(&f);
        assert!((b.cx - 0.5).abs() < 0.01);
        assert!((b.cy - 0.5).abs() < 0.01);
    }

    #[test]
    fn template_tracker_correct_reanchors() {
        let f0 = frame_with_target(0.3, 0.5);
        let mut tracker = TemplateTracker::new(&f0, target_box(0.3, 0.5));
        let f1 = frame_with_target(0.7, 0.4);
        tracker.correct(&f1, target_box(0.7, 0.4));
        let b = tracker.update(&f1);
        assert!((b.cx - 0.7).abs() < 0.01);
    }

    #[test]
    fn goturn_tracker_stays_in_search_region_and_is_deterministic() {
        let f0 = frame_with_target(0.5, 0.5);
        let bbox = target_box(0.5, 0.5);
        let mut a = GoturnTracker::new(&f0, bbox);
        // The parallel runtime must not perturb the regression.
        let mut b = GoturnTracker::new(&f0, bbox).with_runtime(Runtime::new(4));
        let f1 = frame_with_target(0.52, 0.5);
        let ba = a.update(&f1);
        let bb = b.update(&f1);
        assert_eq!(ba, bb, "deterministic weights -> deterministic output");
        // The regressed box lies within the (inflated) search region.
        let search = search_region(&bbox);
        assert!(ba.cx >= search.cx - search.w / 2.0 && ba.cx <= search.cx + search.w / 2.0);
        assert!(ba.w <= search.w && ba.h <= search.h);
    }

    #[test]
    fn goturn_flops_are_substantial() {
        let f = frame_with_target(0.5, 0.5);
        let t = GoturnTracker::new(&f, target_box(0.5, 0.5));
        assert!(t.flops_per_update() > 100_000);
    }

    #[test]
    fn crop_box_clamps_at_borders() {
        let f = frame_with_target(0.0, 0.0);
        let c = crop_box(&f, &BBox::new(0.0, 0.0, 0.1, 0.1), 1.0);
        assert_eq!((c.width(), c.height()), (CROP_SIDE, CROP_SIDE));
    }
}
