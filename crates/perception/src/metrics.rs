//! Multi-object-tracking quality metrics (CLEAR-MOT style).
//!
//! The paper selects its DET/TRA algorithms for benchmark accuracy
//! (VOC for detection, VOT for tracking — §3.1); this module provides
//! the matching machinery to score this workspace's engines against
//! the synthetic worlds' scripted ground truth.

use crate::pool::TrackedObject;
use adsim_dnn::detection::BBox;
use std::collections::HashMap;

/// A ground-truth object in one frame (identity + box).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruthBox {
    /// Scripted object identity.
    pub id: u64,
    /// Normalized image box.
    pub bbox: BBox,
}

/// Accumulates CLEAR-MOT statistics over a sequence.
///
/// Per frame, tracks are greedily matched to ground truth by IoU
/// (threshold 0.3); matches, misses, false positives and identity
/// switches are accumulated into the MOTA score
/// `1 − (FN + FP + IDSW) / GT`.
///
/// # Examples
///
/// ```
/// use adsim_perception::metrics::{MotAccumulator, TruthBox};
/// use adsim_dnn::detection::BBox;
///
/// let mut acc = MotAccumulator::new(0.3);
/// // Perfect single-frame tracking of one object:
/// // (reusing the truth box as the track box).
/// let truth = [TruthBox { id: 1, bbox: BBox::new(0.5, 0.5, 0.1, 0.1) }];
/// acc.observe_boxes(&truth, &[(7, BBox::new(0.5, 0.5, 0.1, 0.1))]);
/// assert_eq!(acc.mota(), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct MotAccumulator {
    iou_threshold: f32,
    truth_total: usize,
    matches: usize,
    misses: usize,
    false_positives: usize,
    id_switches: usize,
    iou_sum: f64,
    // truth id -> last associated track id
    assignments: HashMap<u64, u64>,
}

impl MotAccumulator {
    /// Creates an accumulator with the given association IoU threshold.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is outside `(0, 1]`.
    pub fn new(iou_threshold: f32) -> Self {
        assert!(
            iou_threshold > 0.0 && iou_threshold <= 1.0,
            "IoU threshold must be in (0, 1]"
        );
        Self {
            iou_threshold,
            truth_total: 0,
            matches: 0,
            misses: 0,
            false_positives: 0,
            id_switches: 0,
            iou_sum: 0.0,
            assignments: HashMap::new(),
        }
    }

    /// Scores one frame from the tracked-object table.
    pub fn observe(&mut self, truth: &[TruthBox], tracks: &[TrackedObject]) {
        let boxes: Vec<(u64, BBox)> = tracks.iter().map(|t| (t.track_id, t.bbox)).collect();
        self.observe_boxes(truth, &boxes);
    }

    /// Scores one frame from raw `(track_id, bbox)` pairs.
    pub fn observe_boxes(&mut self, truth: &[TruthBox], tracks: &[(u64, BBox)]) {
        self.truth_total += truth.len();
        // Greedy IoU matching, best pairs first.
        let mut pairs: Vec<(usize, usize, f32)> = Vec::new();
        for (ti, t) in truth.iter().enumerate() {
            for (ki, (_, b)) in tracks.iter().enumerate() {
                let iou = t.bbox.iou(b);
                if iou >= self.iou_threshold {
                    pairs.push((ti, ki, iou));
                }
            }
        }
        pairs.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("IoU is finite"));
        let mut truth_used = vec![false; truth.len()];
        let mut track_used = vec![false; tracks.len()];
        for (ti, ki, iou) in pairs {
            if truth_used[ti] || track_used[ki] {
                continue;
            }
            truth_used[ti] = true;
            track_used[ki] = true;
            self.matches += 1;
            self.iou_sum += iou as f64;
            let truth_id = truth[ti].id;
            let track_id = tracks[ki].0;
            if let Some(&prev) = self.assignments.get(&truth_id) {
                if prev != track_id {
                    self.id_switches += 1;
                }
            }
            self.assignments.insert(truth_id, track_id);
        }
        self.misses += truth_used.iter().filter(|&&u| !u).count();
        self.false_positives += track_used.iter().filter(|&&u| !u).count();
    }

    /// Multi-object tracking accuracy: `1 − (FN + FP + IDSW) / GT`.
    /// Can be negative for very bad trackers; 1.0 is perfect.
    /// Returns 1.0 when no ground truth has been observed.
    pub fn mota(&self) -> f64 {
        if self.truth_total == 0 {
            return 1.0;
        }
        1.0 - (self.misses + self.false_positives + self.id_switches) as f64
            / self.truth_total as f64
    }

    /// Multi-object tracking precision: mean IoU of matched pairs.
    pub fn motp(&self) -> f64 {
        if self.matches == 0 {
            0.0
        } else {
            self.iou_sum / self.matches as f64
        }
    }

    /// Fraction of ground-truth boxes that were tracked.
    pub fn recall(&self) -> f64 {
        if self.truth_total == 0 {
            1.0
        } else {
            self.matches as f64 / self.truth_total as f64
        }
    }

    /// Identity switches observed.
    pub fn id_switches(&self) -> usize {
        self.id_switches
    }

    /// False positives observed.
    pub fn false_positives(&self) -> usize {
        self.false_positives
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tb(id: u64, cx: f32) -> TruthBox {
        TruthBox { id, bbox: BBox::new(cx, 0.5, 0.1, 0.1) }
    }

    #[test]
    fn perfect_tracking_scores_one() {
        let mut acc = MotAccumulator::new(0.3);
        for _ in 0..10 {
            acc.observe_boxes(
                &[tb(1, 0.3), tb(2, 0.7)],
                &[(10, BBox::new(0.3, 0.5, 0.1, 0.1)), (20, BBox::new(0.7, 0.5, 0.1, 0.1))],
            );
        }
        assert_eq!(acc.mota(), 1.0);
        assert!(acc.motp() > 0.99);
        assert_eq!(acc.recall(), 1.0);
        assert_eq!(acc.id_switches(), 0);
    }

    #[test]
    fn misses_and_false_positives_penalize() {
        let mut acc = MotAccumulator::new(0.3);
        // One truth, zero tracks: miss.
        acc.observe_boxes(&[tb(1, 0.5)], &[]);
        // Zero truth, one track: false positive.
        acc.observe_boxes(&[], &[(9, BBox::new(0.2, 0.2, 0.1, 0.1))]);
        // MOTA = 1 - (1 + 1 + 0) / 1 = -1.
        assert_eq!(acc.mota(), -1.0);
        assert_eq!(acc.false_positives(), 1);
    }

    #[test]
    fn identity_switches_are_counted_once_per_change() {
        let mut acc = MotAccumulator::new(0.3);
        let b = BBox::new(0.5, 0.5, 0.1, 0.1);
        acc.observe_boxes(&[tb(1, 0.5)], &[(100, b)]);
        acc.observe_boxes(&[tb(1, 0.5)], &[(100, b)]);
        acc.observe_boxes(&[tb(1, 0.5)], &[(200, b)]); // switch
        acc.observe_boxes(&[tb(1, 0.5)], &[(200, b)]); // stable again
        assert_eq!(acc.id_switches(), 1);
        // MOTA = 1 - 1/4.
        assert!((acc.mota() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn greedy_matching_prefers_higher_iou() {
        let mut acc = MotAccumulator::new(0.1);
        // Two tracks overlap one truth; the tighter one must match.
        let truth = [tb(1, 0.5)];
        let tracks = [
            (1u64, BBox::new(0.53, 0.5, 0.1, 0.1)),
            (2u64, BBox::new(0.5, 0.5, 0.1, 0.1)),
        ];
        acc.observe_boxes(&truth, &tracks);
        assert_eq!(acc.assignments[&1], 2);
        assert_eq!(acc.false_positives(), 1);
    }

    #[test]
    fn empty_sequence_is_perfect() {
        let acc = MotAccumulator::new(0.5);
        assert_eq!(acc.mota(), 1.0);
        assert_eq!(acc.recall(), 1.0);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn zero_threshold_rejected() {
        MotAccumulator::new(0.0);
    }
}

/// Average precision of a scored detection set (the VOC-style metric
/// the paper's detector was selected on, §3.1.1).
///
/// `scored` holds `(confidence, is_true_positive)` per detection;
/// `total_truth` is the number of ground-truth objects. Uses
/// all-point interpolation over the precision-recall curve.
///
/// # Examples
///
/// ```
/// use adsim_perception::metrics::average_precision;
///
/// // Two truths, both found with the highest scores: AP = 1.
/// let ap = average_precision(&[(0.9, true), (0.8, true), (0.3, false)], 2);
/// assert!((ap - 1.0).abs() < 1e-9);
/// ```
pub fn average_precision(scored: &[(f32, bool)], total_truth: usize) -> f64 {
    if total_truth == 0 {
        return if scored.iter().any(|(_, tp)| *tp) { 0.0 } else { 1.0 };
    }
    let mut sorted: Vec<(f32, bool)> = scored.to_vec();
    sorted.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("scores are finite"));
    // Precision at each true-positive rank, then interpolate so the
    // precision envelope is non-increasing.
    let mut precisions = Vec::new();
    let mut recalls = Vec::new();
    let (mut tp, mut fp) = (0usize, 0usize);
    for (_, is_tp) in sorted {
        if is_tp {
            tp += 1;
        } else {
            fp += 1;
        }
        precisions.push(tp as f64 / (tp + fp) as f64);
        recalls.push(tp as f64 / total_truth as f64);
    }
    // Non-increasing precision envelope from the right.
    for i in (0..precisions.len().saturating_sub(1)).rev() {
        precisions[i] = precisions[i].max(precisions[i + 1]);
    }
    // Integrate precision over recall increments.
    let mut ap = 0.0;
    let mut prev_recall = 0.0;
    for (p, r) in precisions.iter().zip(&recalls) {
        ap += p * (r - prev_recall);
        prev_recall = *r;
    }
    ap
}

#[cfg(test)]
mod ap_tests {
    use super::average_precision;

    #[test]
    fn perfect_ranking_scores_one() {
        let ap = average_precision(&[(0.9, true), (0.8, true), (0.1, false)], 2);
        assert!((ap - 1.0).abs() < 1e-9);
    }

    #[test]
    fn missed_truths_cap_the_recall() {
        // One of two truths found: AP = 0.5 with perfect precision.
        let ap = average_precision(&[(0.9, true)], 2);
        assert!((ap - 0.5).abs() < 1e-9);
    }

    #[test]
    fn false_positives_above_true_ones_hurt() {
        let good = average_precision(&[(0.9, true), (0.5, false)], 1);
        let bad = average_precision(&[(0.9, false), (0.5, true)], 1);
        assert_eq!(good, 1.0);
        assert!((bad - 0.5).abs() < 1e-9, "precision at the hit is 1/2");
        assert!(bad < good);
    }

    #[test]
    fn interpolation_makes_precision_non_increasing() {
        // TP, FP, TP over 2 truths: raw precision dips then recovers;
        // interpolation uses the best precision to the right.
        let ap = average_precision(&[(0.9, true), (0.8, false), (0.7, true)], 2);
        // Envelope: r=0.5 at p=max(1, 2/3)=1 ... second segment p=2/3.
        assert!((ap - (0.5 * 1.0 + 0.5 * (2.0 / 3.0))).abs() < 1e-9);
    }

    #[test]
    fn empty_cases() {
        assert_eq!(average_precision(&[], 0), 1.0);
        assert_eq!(average_precision(&[], 3), 0.0);
        assert_eq!(average_precision(&[(0.5, false)], 0), 1.0);
    }
}
