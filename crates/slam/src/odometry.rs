//! Wheel-odometry dead reckoning and vision fusion.
//!
//! Production systems (the paper's Table 1 vehicles all carry wheel
//! encoders and IMUs) bridge visual-localization outages — tunnels,
//! severe weather, relocalization frames — by dead-reckoning on
//! odometry and re-anchoring whenever a vision fix returns. This
//! module provides that bridge for the LOC engine.

use adsim_vision::{Point2, Pose2};

/// A simulated wheel-odometry sensor: body-frame increments with
/// multiplicative systematic error (tire wear, track-width error).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WheelOdometry {
    /// Multiplicative distance error (1.0 = perfect; 1.01 = reads 1 %
    /// long).
    pub distance_scale: f64,
    /// Multiplicative yaw error.
    pub yaw_scale: f64,
}

impl WheelOdometry {
    /// A perfect sensor.
    pub fn ideal() -> Self {
        Self { distance_scale: 1.0, yaw_scale: 1.0 }
    }

    /// A typical calibrated automotive sensor (~0.5 % distance error,
    /// ~1 % yaw error).
    pub fn typical() -> Self {
        Self { distance_scale: 1.005, yaw_scale: 1.01 }
    }

    /// The measured body-frame increment for a true motion of
    /// `(ds, dtheta)`.
    pub fn measure(&self, ds: f64, dtheta: f64) -> (f64, f64) {
        (ds * self.distance_scale, dtheta * self.yaw_scale)
    }
}

/// Dead-reckoning pose tracker with vision re-anchoring.
///
/// # Examples
///
/// ```
/// use adsim_slam::odometry::{DeadReckoner, WheelOdometry};
/// use adsim_vision::Pose2;
///
/// let mut dr = DeadReckoner::new(Pose2::identity(), WheelOdometry::ideal());
/// dr.advance(10.0, 0.0);
/// assert!((dr.pose().x - 10.0).abs() < 1e-9);
/// // A vision fix snaps the estimate back.
/// dr.fuse_vision(Pose2::new(9.5, 0.1, 0.0));
/// assert_eq!(dr.pose(), Pose2::new(9.5, 0.1, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadReckoner {
    pose: Pose2,
    sensor: WheelOdometry,
    /// Distance dead-reckoned since the last vision fix (m).
    since_fix_m: f64,
}

impl DeadReckoner {
    /// Starts reckoning from a known pose.
    pub fn new(start: Pose2, sensor: WheelOdometry) -> Self {
        Self { pose: start, sensor, since_fix_m: 0.0 }
    }

    /// Current pose estimate.
    pub fn pose(&self) -> Pose2 {
        self.pose
    }

    /// Distance travelled since the last vision fix — a proxy for the
    /// accumulated drift bound.
    pub fn distance_since_fix_m(&self) -> f64 {
        self.since_fix_m
    }

    /// Integrates one body-frame motion increment (`ds` meters of
    /// forward travel, `dtheta` radians of yaw) through the sensor
    /// model.
    pub fn advance(&mut self, ds: f64, dtheta: f64) {
        let (m_ds, m_dth) = self.sensor.measure(ds, dtheta);
        // Mid-heading integration, like the lattice primitives.
        let mid = self.pose.theta + m_dth / 2.0;
        self.pose = Pose2::new(
            self.pose.x + m_ds * mid.cos(),
            self.pose.y + m_ds * mid.sin(),
            self.pose.theta + m_dth,
        );
        self.since_fix_m += ds.abs();
    }

    /// Re-anchors on a visual-localization fix.
    pub fn fuse_vision(&mut self, pose: Pose2) {
        self.pose = pose;
        self.since_fix_m = 0.0;
    }

    /// Drift against a ground-truth pose (m).
    pub fn drift_m(&self, truth: &Pose2) -> f64 {
        self.pose.translation().distance(&Point2::new(truth.x, truth.y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a circle of the given radius, returning (reckoner, truth)
    /// after `steps`.
    fn drive_circle(
        sensor: WheelOdometry,
        fix_every: Option<usize>,
        steps: usize,
    ) -> (DeadReckoner, Pose2) {
        let radius = 30.0;
        let ds = 1.0;
        let dtheta = ds / radius;
        let mut dr = DeadReckoner::new(Pose2::identity(), sensor);
        let mut truth = Pose2::identity();
        for k in 0..steps {
            let mid = truth.theta + dtheta / 2.0;
            truth = Pose2::new(
                truth.x + ds * mid.cos(),
                truth.y + ds * mid.sin(),
                truth.theta + dtheta,
            );
            dr.advance(ds, dtheta);
            if let Some(n) = fix_every {
                if (k + 1) % n == 0 {
                    dr.fuse_vision(truth);
                }
            }
        }
        (dr, truth)
    }

    #[test]
    fn ideal_sensor_tracks_exactly() {
        let (dr, truth) = drive_circle(WheelOdometry::ideal(), None, 200);
        assert!(dr.drift_m(&truth) < 1e-6);
    }

    #[test]
    fn systematic_error_accumulates_without_fixes() {
        let (dr, truth) = drive_circle(WheelOdometry::typical(), None, 200);
        assert!(dr.drift_m(&truth) > 1.0, "drift {:.2} m", dr.drift_m(&truth));
        assert_eq!(dr.distance_since_fix_m(), 200.0);
    }

    #[test]
    fn periodic_vision_fixes_bound_the_drift() {
        let (free, truth) = drive_circle(WheelOdometry::typical(), None, 200);
        let (fixed, truth2) = drive_circle(WheelOdometry::typical(), Some(10), 200);
        assert!(fixed.drift_m(&truth2) < free.drift_m(&truth) / 5.0);
        assert!(fixed.drift_m(&truth2) < 0.3, "drift {:.3}", fixed.drift_m(&truth2));
    }

    #[test]
    fn drift_grows_with_outage_length() {
        let (short, t1) = drive_circle(WheelOdometry::typical(), None, 50);
        let (long, t2) = drive_circle(WheelOdometry::typical(), None, 400);
        assert!(long.drift_m(&t2) > short.drift_m(&t1));
    }

    #[test]
    fn fuse_vision_resets_the_fix_distance() {
        let mut dr = DeadReckoner::new(Pose2::identity(), WheelOdometry::typical());
        dr.advance(5.0, 0.0);
        assert_eq!(dr.distance_since_fix_m(), 5.0);
        dr.fuse_vision(Pose2::new(5.0, 0.0, 0.0));
        assert_eq!(dr.distance_since_fix_m(), 0.0);
    }
}
