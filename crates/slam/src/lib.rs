//! ORB-SLAM-style prior-map localization (the paper's LOC engine).
//!
//! The paper's localization engine (§3.1.3, Fig. 5) extracts ORB
//! features from the camera stream, matches their descriptors against a
//! prior map stored on the vehicle (§2.4.3), predicts the pose with a
//! constant motion model, relocalizes with a widened search when
//! tracking fails, updates the map when the surroundings changed, and
//! periodically closes loops to cancel drift. This crate implements
//! that pipeline:
//!
//! * [`Landmark`] / [`PriorMap`]: descriptor-indexed landmark database
//!   with spatial queries and the paper's storage-size model (41 TB for
//!   a U.S.-scale map),
//! * [`MotionModel`]: constant-velocity pose prediction,
//! * [`estimate_pose`]: trimmed least-squares SE(2) registration of
//!   feature correspondences,
//! * [`Localizer`]: the full tracking / relocalization / map-update /
//!   loop-closing state machine, reporting per-frame work so the
//!   platform models can reproduce LOC's heavy-tailed latency
//!   (Finding 2).
//!
//! # Examples
//!
//! ```
//! use adsim_slam::{Landmark, PriorMap};
//! use adsim_vision::{Descriptor, Point2};
//!
//! let map = PriorMap::new(vec![Landmark::new(
//!     0,
//!     Point2::new(5.0, 5.0),
//!     Descriptor::new([0xAB; 32]),
//! )]);
//! assert_eq!(map.near(Point2::new(0.0, 0.0), 10.0).len(), 1);
//! assert!(map.near(Point2::new(100.0, 0.0), 10.0).is_empty());
//! ```

pub mod io;
mod localizer;
mod map;
mod motion;
pub mod odometry;
mod solve;
pub mod storage;

pub use io::MapDecodeError;
pub use localizer::{LocCost, LocalizeOutcome, LocalizeResult, Localizer, LocalizerConfig};
pub use map::{Landmark, PriorMap, SharedMap};
pub use motion::MotionModel;
pub use solve::{estimate_pose, estimate_pose_with, Correspondence, PoseEstimate};
