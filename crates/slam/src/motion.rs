use adsim_vision::{geometry::normalize_angle, Pose2};

/// Constant-velocity motion model (paper Fig. 5: "Pose Prediction
/// (Motion Model)").
///
/// ORB-SLAM predicts the next camera pose by replaying the last
/// inter-frame motion; matching then searches only around the
/// prediction. When the prediction is wrong (erratic motion, matching
/// failure) the localizer falls back to relocalization with a wider
/// search — the mechanism behind LOC's long latency tail.
///
/// # Examples
///
/// ```
/// use adsim_slam::MotionModel;
/// use adsim_vision::Pose2;
///
/// let mut mm = MotionModel::new();
/// mm.observe(Pose2::new(0.0, 0.0, 0.0));
/// mm.observe(Pose2::new(1.0, 0.0, 0.0));
/// let predicted = mm.predict();
/// assert!((predicted.x - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct MotionModel {
    last: Option<Pose2>,
    // Last inter-frame delta expressed in the previous pose's frame.
    delta: Option<Pose2>,
}

impl MotionModel {
    /// Creates a model with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a confirmed pose, updating the velocity estimate.
    pub fn observe(&mut self, pose: Pose2) {
        if let Some(last) = self.last {
            self.delta = Some(last.inverse().compose(&pose));
        }
        self.last = Some(pose);
    }

    /// Predicts the next pose. With fewer than two observations the
    /// prediction degrades gracefully: last pose, or identity.
    pub fn predict(&self) -> Pose2 {
        match (self.last, self.delta) {
            (Some(last), Some(delta)) => last.compose(&delta),
            (Some(last), None) => last,
            _ => Pose2::identity(),
        }
    }

    /// Last confirmed pose, if any.
    pub fn last_pose(&self) -> Option<Pose2> {
        self.last
    }

    /// Resets all history (after relocalization from scratch).
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Estimated speed in meters per frame (0 with insufficient history).
    pub fn speed(&self) -> f64 {
        self.delta.map_or(0.0, |d| d.translation().norm())
    }

    /// Estimated yaw rate in radians per frame.
    pub fn yaw_rate(&self) -> f64 {
        self.delta.map_or(0.0, |d| normalize_angle(d.theta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_history_predicts_identity() {
        assert_eq!(MotionModel::new().predict(), Pose2::identity());
    }

    #[test]
    fn one_observation_predicts_itself() {
        let mut mm = MotionModel::new();
        mm.observe(Pose2::new(3.0, 4.0, 0.5));
        assert_eq!(mm.predict(), Pose2::new(3.0, 4.0, 0.5));
    }

    #[test]
    fn straight_motion_extrapolates() {
        let mut mm = MotionModel::new();
        mm.observe(Pose2::new(0.0, 0.0, 0.0));
        mm.observe(Pose2::new(2.0, 0.0, 0.0));
        let p = mm.predict();
        assert!((p.x - 4.0).abs() < 1e-9 && p.y.abs() < 1e-9);
        assert!((mm.speed() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn turning_motion_extrapolates_in_body_frame() {
        use std::f64::consts::FRAC_PI_2;
        let mut mm = MotionModel::new();
        // Drive 1 m forward then turn 90° left while moving 1 m.
        mm.observe(Pose2::new(0.0, 0.0, 0.0));
        mm.observe(Pose2::new(1.0, 0.0, FRAC_PI_2));
        let p = mm.predict();
        // The same body-frame delta applied again: forward is now +y.
        assert!((p.x - 1.0).abs() < 1e-9, "{p:?}");
        assert!((p.y - 1.0).abs() < 1e-9, "{p:?}");
        assert!((mm.yaw_rate() - FRAC_PI_2).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_history() {
        let mut mm = MotionModel::new();
        mm.observe(Pose2::new(1.0, 1.0, 0.0));
        mm.reset();
        assert_eq!(mm.predict(), Pose2::identity());
        assert!(mm.last_pose().is_none());
    }
}
