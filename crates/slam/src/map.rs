use adsim_vision::{Descriptor, Point2};
use std::collections::HashMap;
use std::sync::Arc;

/// One mapped feature: a world position with its rBRIEF descriptor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Landmark {
    /// Stable identifier.
    pub id: u64,
    /// World position in meters.
    pub position: Point2,
    /// Appearance descriptor used for matching.
    pub descriptor: Descriptor,
}

impl Landmark {
    /// Creates a landmark.
    pub fn new(id: u64, position: Point2, descriptor: Descriptor) -> Self {
        Self { id, position, descriptor }
    }
}

/// The prior map the vehicle carries on board (paper §2.4.3): a
/// spatially indexed landmark database supporting the radius queries
/// the localizer issues around its predicted pose.
///
/// The index is a uniform grid of `CELL`-meter buckets, so `near` costs
/// O(landmarks in the queried disc) rather than O(map size) — on-board
/// maps are tens of terabytes (41 TB for the U.S.), so full scans are
/// never an option.
#[derive(Debug, Clone, Default)]
pub struct PriorMap {
    landmarks: Vec<Landmark>,
    grid: HashMap<(i64, i64), Vec<usize>>,
    next_id: u64,
}

/// Spatial-hash cell size in meters.
const CELL: f64 = 25.0;

impl PriorMap {
    /// Builds a map from landmarks.
    pub fn new(landmarks: Vec<Landmark>) -> Self {
        let mut map = Self::default();
        for lm in landmarks {
            map.insert(lm);
        }
        map
    }

    /// Creates an empty map.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Number of landmarks.
    pub fn len(&self) -> usize {
        self.landmarks.len()
    }

    /// Whether the map has no landmarks.
    pub fn is_empty(&self) -> bool {
        self.landmarks.is_empty()
    }

    /// All landmarks in insertion order.
    pub fn landmarks(&self) -> &[Landmark] {
        &self.landmarks
    }

    /// Inserts a landmark (used by the map-update step when current
    /// surroundings differ from the prior map).
    pub fn insert(&mut self, lm: Landmark) {
        let idx = self.landmarks.len();
        self.grid.entry(Self::cell(lm.position)).or_default().push(idx);
        self.next_id = self.next_id.max(lm.id + 1);
        self.landmarks.push(lm);
    }

    /// Inserts a new landmark with a freshly allocated id, returning it.
    pub fn insert_new(&mut self, position: Point2, descriptor: Descriptor) -> u64 {
        let id = self.next_id;
        self.insert(Landmark::new(id, position, descriptor));
        id
    }

    /// Landmarks within `radius` meters of `center`.
    pub fn near(&self, center: Point2, radius: f64) -> Vec<&Landmark> {
        let mut out = Vec::new();
        let r_cells = (radius / CELL).ceil() as i64;
        let (cx, cy) = Self::cell(center);
        for gx in cx - r_cells..=cx + r_cells {
            for gy in cy - r_cells..=cy + r_cells {
                if let Some(bucket) = self.grid.get(&(gx, gy)) {
                    for &i in bucket {
                        let lm = &self.landmarks[i];
                        if lm.position.distance(&center) <= radius {
                            out.push(lm);
                        }
                    }
                }
            }
        }
        out
    }

    fn cell(p: Point2) -> (i64, i64) {
        ((p.x / CELL).floor() as i64, (p.y / CELL).floor() as i64)
    }
}

/// A prior map shared read-only across vehicles, with a private
/// per-vehicle overlay for map updates.
///
/// The paper sizes on-board maps at tens of terabytes (41 TB for the
/// U.S.) — at fleet scale the prior is the one asset that must never be
/// duplicated per vehicle. `SharedMap` keeps the immutable prior behind
/// an [`Arc`] (cloning a `SharedMap` or building many from the same
/// `Arc` shares one copy) while each vehicle's map-update insertions
/// land in its own small [`PriorMap`] overlay, preserving the
/// shared-nothing mutation model the fleet engine requires.
///
/// Queries ([`near`](SharedMap::near)) see prior landmarks first, then
/// overlay landmarks; overlay ids continue where the prior's allocation
/// left off, so ids stay unique across both layers.
///
/// # Examples
///
/// ```
/// use adsim_slam::{PriorMap, SharedMap};
/// use std::sync::Arc;
///
/// let prior = Arc::new(PriorMap::empty());
/// let a = SharedMap::new(Arc::clone(&prior));
/// let b = SharedMap::new(prior);
/// assert!(a.shares_prior_with(&b));
/// ```
#[derive(Debug, Clone)]
pub struct SharedMap {
    prior: Arc<PriorMap>,
    overlay: PriorMap,
}

impl SharedMap {
    /// Wraps a shared prior with an empty private overlay. Overlay id
    /// allocation starts where the prior's left off.
    pub fn new(prior: Arc<PriorMap>) -> Self {
        let overlay = PriorMap { next_id: prior.next_id, ..PriorMap::default() };
        Self { prior, overlay }
    }

    /// The shared read-only prior.
    pub fn prior(&self) -> &Arc<PriorMap> {
        &self.prior
    }

    /// This vehicle's private overlay (landmarks added by map update).
    pub fn overlay(&self) -> &PriorMap {
        &self.overlay
    }

    /// Total landmarks visible to queries (prior + overlay).
    pub fn len(&self) -> usize {
        self.prior.len() + self.overlay.len()
    }

    /// Whether neither layer holds any landmarks.
    pub fn is_empty(&self) -> bool {
        self.prior.is_empty() && self.overlay.is_empty()
    }

    /// Landmarks within `radius` meters of `center`: prior hits first,
    /// then overlay hits.
    pub fn near(&self, center: Point2, radius: f64) -> Vec<&Landmark> {
        let mut out = self.prior.near(center, radius);
        out.extend(self.overlay.near(center, radius));
        out
    }

    /// Inserts a new landmark into the private overlay with a freshly
    /// allocated id (unique across prior and overlay), returning it.
    pub fn insert_new(&mut self, position: Point2, descriptor: Descriptor) -> u64 {
        self.overlay.insert_new(position, descriptor)
    }

    /// Whether two shared maps point at the same prior allocation —
    /// the observable form of the fleet's map-sharing guarantee.
    pub fn shares_prior_with(&self, other: &SharedMap) -> bool {
        Arc::ptr_eq(&self.prior, &other.prior)
    }
}

impl From<PriorMap> for SharedMap {
    /// Takes sole ownership of a prior (no sharing with anyone else) —
    /// the single-vehicle construction path.
    fn from(map: PriorMap) -> Self {
        Self::new(Arc::new(map))
    }
}

impl From<Arc<PriorMap>> for SharedMap {
    fn from(prior: Arc<PriorMap>) -> Self {
        Self::new(prior)
    }
}

impl From<&Arc<PriorMap>> for SharedMap {
    fn from(prior: &Arc<PriorMap>) -> Self {
        Self::new(Arc::clone(prior))
    }
}

impl Extend<Landmark> for PriorMap {
    fn extend<T: IntoIterator<Item = Landmark>>(&mut self, iter: T) {
        for lm in iter {
            self.insert(lm);
        }
    }
}

impl FromIterator<Landmark> for PriorMap {
    fn from_iter<T: IntoIterator<Item = Landmark>>(iter: T) -> Self {
        let mut map = PriorMap::empty();
        map.extend(iter);
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lm(id: u64, x: f64, y: f64) -> Landmark {
        Landmark::new(id, Point2::new(x, y), Descriptor::new([id as u8; 32]))
    }

    #[test]
    fn near_returns_only_in_radius() {
        let map = PriorMap::new(vec![lm(0, 0.0, 0.0), lm(1, 30.0, 0.0), lm(2, 300.0, 0.0)]);
        let hits = map.near(Point2::new(0.0, 0.0), 50.0);
        let ids: Vec<u64> = hits.iter().map(|l| l.id).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn near_spans_cell_boundaries() {
        // Two landmarks straddling a 25 m cell boundary.
        let map = PriorMap::new(vec![lm(0, 24.9, 0.0), lm(1, 25.1, 0.0)]);
        let hits = map.near(Point2::new(25.0, 0.0), 1.0);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn near_handles_negative_coordinates() {
        let map = PriorMap::new(vec![lm(0, -100.0, -100.0)]);
        assert_eq!(map.near(Point2::new(-99.0, -99.0), 5.0).len(), 1);
    }

    #[test]
    fn insert_new_allocates_fresh_ids() {
        let mut map = PriorMap::new(vec![lm(7, 0.0, 0.0)]);
        let id = map.insert_new(Point2::new(1.0, 1.0), Descriptor::new([0; 32]));
        assert_eq!(id, 8);
        assert_eq!(map.len(), 2);
        let id2 = map.insert_new(Point2::new(2.0, 2.0), Descriptor::new([1; 32]));
        assert_eq!(id2, 9);
    }

    #[test]
    fn from_iterator_collects() {
        let map: PriorMap = (0..10).map(|i| lm(i, i as f64 * 10.0, 0.0)).collect();
        assert_eq!(map.len(), 10);
        assert_eq!(map.near(Point2::new(0.0, 0.0), 1000.0).len(), 10);
    }

    #[test]
    fn empty_map_queries_are_empty() {
        assert!(PriorMap::empty().near(Point2::new(0.0, 0.0), 100.0).is_empty());
    }

    #[test]
    fn shared_map_queries_both_layers() {
        let prior = Arc::new(PriorMap::new(vec![lm(0, 0.0, 0.0)]));
        let mut shared = SharedMap::new(prior);
        shared.insert_new(Point2::new(1.0, 0.0), Descriptor::new([9; 32]));
        let hits = shared.near(Point2::new(0.0, 0.0), 5.0);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id, 0, "prior hits come first");
        assert_eq!(shared.len(), 2);
        assert!(!shared.is_empty());
    }

    #[test]
    fn shared_map_ids_continue_past_prior() {
        let prior = Arc::new(PriorMap::new(vec![lm(7, 0.0, 0.0)]));
        let mut a = SharedMap::new(Arc::clone(&prior));
        let mut b = SharedMap::new(prior);
        // Both vehicles allocate from the prior's watermark into their
        // own overlays; ids are unique within each vehicle's view.
        assert_eq!(a.insert_new(Point2::new(1.0, 1.0), Descriptor::new([0; 32])), 8);
        assert_eq!(b.insert_new(Point2::new(2.0, 2.0), Descriptor::new([1; 32])), 8);
        assert_eq!(a.insert_new(Point2::new(3.0, 3.0), Descriptor::new([2; 32])), 9);
    }

    #[test]
    fn shared_map_overlay_is_private() {
        let prior = Arc::new(PriorMap::new(vec![lm(0, 0.0, 0.0)]));
        let mut a = SharedMap::new(Arc::clone(&prior));
        let b = SharedMap::new(Arc::clone(&prior));
        a.insert_new(Point2::new(1.0, 0.0), Descriptor::new([5; 32]));
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 1, "b never sees a's insertions");
        assert!(a.shares_prior_with(&b), "but both share one prior allocation");
        assert_eq!(prior.len(), 1, "the prior itself is untouched");
    }

    #[test]
    fn shared_map_from_owned_prior_does_not_share() {
        let a: SharedMap = PriorMap::new(vec![lm(0, 0.0, 0.0)]).into();
        let b: SharedMap = PriorMap::new(vec![lm(0, 0.0, 0.0)]).into();
        assert!(!a.shares_prior_with(&b));
    }
}
