use crate::map::SharedMap;
use crate::motion::MotionModel;
use crate::solve::{estimate_pose_with, Correspondence};
use adsim_runtime::Runtime;
use adsim_vision::{match_descriptors, Feature, GrayImage, OrbExtractor, OrthoCamera, Pose2};

/// Tuning parameters of the [`Localizer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalizerConfig {
    /// Map-query radius (m) beyond the camera footprint while tracking.
    pub search_radius: f64,
    /// Widened map-query radius (m) used by relocalization — the
    /// "wider search in the map around the location identified last
    /// time" of §3.1.3.
    pub reloc_radius: f64,
    /// Maximum descriptor Hamming distance for a match.
    pub max_match_distance: u32,
    /// Lowe ratio-test threshold.
    pub match_ratio: f32,
    /// Minimum pose-solve inliers to accept tracking.
    pub min_inliers: usize,
    /// Run loop closing every this many frames (paper: "executed
    /// periodically").
    pub loop_close_interval: u64,
    /// Whether unmatched features are added to the map (map update).
    pub map_update: bool,
    /// Cap on landmarks added per frame by map update.
    pub max_map_additions: usize,
}

impl Default for LocalizerConfig {
    fn default() -> Self {
        Self {
            search_radius: 20.0,
            reloc_radius: 150.0,
            max_match_distance: 64,
            match_ratio: 0.85,
            min_inliers: 6,
            loop_close_interval: 100,
            map_update: true,
            max_map_additions: 10,
        }
    }
}

/// How a frame was localized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalizeOutcome {
    /// Motion-model prediction + narrow search succeeded.
    Tracked,
    /// Narrow search failed; the widened relocalization search
    /// recovered the pose.
    Relocalized,
    /// Both searches failed; no pose this frame.
    Lost,
}

/// Work performed while localizing one frame, consumed by the platform
/// latency models. Relocalized frames do several times the matching
/// work of tracked frames — the mechanism behind LOC's heavy latency
/// tail (Finding 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LocCost {
    /// Pixels scanned by feature extraction (all pyramid levels).
    pub pixels_scanned: usize,
    /// Features extracted and described.
    pub features: usize,
    /// Prior-map candidates fetched and matched against.
    pub map_candidates: usize,
    /// Descriptor matches found.
    pub matches: usize,
    /// Whether the relocalization path ran.
    pub relocalized: bool,
    /// Whether loop closing ran this frame.
    pub loop_closed: bool,
}

/// Result of localizing one frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalizeResult {
    /// Estimated pose (`None` when lost).
    pub pose: Option<Pose2>,
    /// Which path produced the result.
    pub outcome: LocalizeOutcome,
    /// Work performed.
    pub cost: LocCost,
}

/// Running counters over a localizer's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LocalizerStats {
    /// Frames processed.
    pub frames: u64,
    /// Frames that needed relocalization.
    pub relocalizations: u64,
    /// Frames lost entirely.
    pub lost: u64,
    /// Landmarks added by map update.
    pub map_additions: u64,
    /// Loop-closing passes executed.
    pub loop_closures: u64,
}

/// The ORB-SLAM-style localization engine (paper Fig. 5).
///
/// Per frame: extract ORB features → predict pose with the constant
/// motion model → match descriptors against prior-map landmarks near
/// the prediction → solve the SE(2) pose by trimmed least squares →
/// on failure, relocalize with a widened search → update the map with
/// newly seen features → periodically run loop closing.
///
/// `Clone` deep-copies the mutable state (private map overlay, motion
/// model, stats) while sharing the read-only prior map `Arc` — the
/// recovery layer's checkpoint mechanism.
#[derive(Clone)]
pub struct Localizer {
    map: SharedMap,
    camera: OrthoCamera,
    orb: OrbExtractor,
    motion: MotionModel,
    cfg: LocalizerConfig,
    stats: LocalizerStats,
    runtime: Runtime,
}

impl std::fmt::Debug for Localizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Localizer")
            .field("map_len", &self.map.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Localizer {
    /// Creates a localizer over a prior map.
    ///
    /// Accepts an owned [`PriorMap`](crate::map::PriorMap) (sole
    /// ownership, the single-vehicle path), an
    /// `Arc<PriorMap>` (read-only prior shared across a fleet of
    /// localizers), or a pre-built [`SharedMap`]. Map updates always go
    /// to this localizer's private overlay, never the shared prior.
    pub fn new(
        map: impl Into<SharedMap>,
        camera: OrthoCamera,
        orb: OrbExtractor,
        cfg: LocalizerConfig,
    ) -> Self {
        Self {
            map: map.into(),
            camera,
            orb,
            motion: MotionModel::new(),
            cfg,
            stats: LocalizerStats::default(),
            runtime: Runtime::serial(),
        }
    }

    /// Runs the RANSAC pose-solve scoring on the given worker pool.
    /// Results are bit-identical on any thread count (see
    /// [`estimate_pose_with`]).
    #[must_use]
    pub fn with_runtime(mut self, runtime: Runtime) -> Self {
        self.runtime = runtime;
        self
    }

    /// The map this localizer queries: the shared prior plus this
    /// vehicle's private overlay (which grows when map update is
    /// enabled).
    pub fn map(&self) -> &SharedMap {
        &self.map
    }

    /// Lifetime counters.
    pub fn stats(&self) -> LocalizerStats {
        self.stats
    }

    /// Last confirmed pose.
    pub fn pose(&self) -> Option<Pose2> {
        self.motion.last_pose()
    }

    /// Seeds the pose estimate (e.g. from GPS at startup, which the
    /// paper notes is not precise enough for driving but suffices to
    /// bootstrap map matching).
    pub fn seed_pose(&mut self, pose: Pose2) {
        self.motion.observe(pose);
    }

    /// Localizes one camera frame.
    pub fn localize(&mut self, frame: &GrayImage) -> LocalizeResult {
        self.stats.frames += 1;
        let (features, orb_cost) = {
            let _sp = adsim_trace::span("loc.orb");
            self.orb.extract_with_cost(frame)
        };
        let mut cost = LocCost {
            pixels_scanned: orb_cost.pixels_scanned,
            features: features.len(),
            ..Default::default()
        };
        let predicted = self.motion.predict();

        // Tracking: narrow search around the motion-model prediction.
        let narrow = self.camera.view_radius() + self.cfg.search_radius;
        let tracked = {
            let _sp = adsim_trace::span("loc.track");
            self.attempt(&features, predicted, narrow, &mut cost)
        };

        let (estimate, outcome) = match tracked {
            Some(pose) => (Some(pose), LocalizeOutcome::Tracked),
            None => {
                // Relocalization: widened search around the last known
                // location.
                cost.relocalized = true;
                self.stats.relocalizations += 1;
                let _sp = adsim_trace::span("loc.reloc");
                let wide = self.camera.view_radius() + self.cfg.reloc_radius;
                match self.attempt(&features, predicted, wide, &mut cost) {
                    Some(pose) => (Some(pose), LocalizeOutcome::Relocalized),
                    None => (None, LocalizeOutcome::Lost),
                }
            }
        };

        if let Some(pose) = estimate {
            self.motion.observe(pose);
            if self.cfg.map_update {
                let _sp = adsim_trace::span("loc.map_update");
                self.update_map(&features, &pose, &mut cost);
            }
            if self.cfg.loop_close_interval > 0
                && self.stats.frames.is_multiple_of(self.cfg.loop_close_interval)
            {
                // Loop closing: re-match at double radius to confirm the
                // trajectory against the map and cancel drift.
                cost.loop_closed = true;
                self.stats.loop_closures += 1;
                let _sp = adsim_trace::span("loc.loop_close");
                let radius = self.camera.view_radius() + 2.0 * self.cfg.search_radius;
                let _ = self.attempt(&features, pose, radius, &mut cost);
            }
        } else {
            self.stats.lost += 1;
            self.motion.reset();
        }
        LocalizeResult { pose: estimate, outcome, cost }
    }

    /// One match-and-solve attempt at the given search radius.
    ///
    /// Matching strategy follows ORB-SLAM: while *tracking* (narrow
    /// radius), each feature is matched only against landmarks near
    /// its pose-predicted world position (guided search); during
    /// *relocalization* (wide radius) the prediction is untrusted, so
    /// matching degrades to a global scan over every candidate — the
    /// reason relocalized frames cost several times a tracked frame
    /// and the source of LOC's latency tail.
    fn attempt(
        &self,
        features: &[Feature],
        around: Pose2,
        radius: f64,
        cost: &mut LocCost,
    ) -> Option<Pose2> {
        if features.is_empty() {
            return None;
        }
        let candidates = self.map.near(around.translation(), radius);
        cost.map_candidates += candidates.len();
        if candidates.is_empty() {
            return None;
        }
        let guided = radius <= self.camera.view_radius() + self.cfg.search_radius + 1e-9;
        let corrs: Vec<Correspondence> = if guided {
            self.match_guided(features, &around, &candidates, cost)
        } else {
            self.match_global(features, &candidates, cost)
        };
        let est = estimate_pose_with(&self.runtime, &corrs, self.cfg.min_inliers)?;
        // Reject solves that disagree wildly with where we searched —
        // a pathological association, not a pose.
        if est.pose.translation().distance(&around.translation()) > radius {
            return None;
        }
        Some(est.pose)
    }

    /// Guided matching: each feature is compared only to landmarks
    /// within a few meters of where the predicted pose projects it.
    fn match_guided(
        &self,
        features: &[Feature],
        around: &Pose2,
        candidates: &[&crate::map::Landmark],
        cost: &mut LocCost,
    ) -> Vec<Correspondence> {
        // Bucket the candidate set once (5 m cells).
        const CELL: f64 = 5.0;
        const SEARCH_M: f64 = 6.0;
        let mut grid: std::collections::HashMap<(i64, i64), Vec<usize>> =
            std::collections::HashMap::new();
        for (i, lm) in candidates.iter().enumerate() {
            let key = ((lm.position.x / CELL).floor() as i64, (lm.position.y / CELL).floor() as i64);
            grid.entry(key).or_default().push(i);
        }
        let mut corrs = Vec::new();
        let r_cells = (SEARCH_M / CELL).ceil() as i64;
        for f in features {
            let kp = f.keypoint;
            let predicted =
                self.camera.image_to_world(around, kp.x as f64, kp.y as f64);
            let (cx, cy) =
                ((predicted.x / CELL).floor() as i64, (predicted.y / CELL).floor() as i64);
            let mut best = (usize::MAX, u32::MAX);
            let mut second = u32::MAX;
            for gx in cx - r_cells..=cx + r_cells {
                for gy in cy - r_cells..=cy + r_cells {
                    let Some(bucket) = grid.get(&(gx, gy)) else { continue };
                    for &i in bucket {
                        if candidates[i].position.distance(&predicted) > SEARCH_M {
                            continue;
                        }
                        let d = f.descriptor.hamming(&candidates[i].descriptor);
                        if d < best.1 {
                            second = best.1;
                            best = (i, d);
                        } else if d < second {
                            second = d;
                        }
                    }
                }
            }
            if best.1 > self.cfg.max_match_distance {
                continue;
            }
            if second != u32::MAX && best.1 as f32 > self.cfg.match_ratio * second as f32 {
                continue;
            }
            cost.matches += 1;
            corrs.push(Correspondence {
                vehicle: self.camera.image_to_vehicle(kp.x as f64, kp.y as f64),
                world: candidates[best.0].position,
            });
        }
        corrs
    }

    /// Global matching: brute force over every candidate (the widened
    /// relocalization search of §3.1.3).
    fn match_global(
        &self,
        features: &[Feature],
        candidates: &[&crate::map::Landmark],
        cost: &mut LocCost,
    ) -> Vec<Correspondence> {
        let query: Vec<_> = features.iter().map(|f| f.descriptor).collect();
        let train: Vec<_> = candidates.iter().map(|l| l.descriptor).collect();
        let matches = match_descriptors(
            &query,
            &train,
            self.cfg.max_match_distance,
            self.cfg.match_ratio,
        );
        cost.matches += matches.len();
        matches
            .iter()
            .map(|m| {
                let kp = features[m.query].keypoint;
                Correspondence {
                    vehicle: self.camera.image_to_vehicle(kp.x as f64, kp.y as f64),
                    world: candidates[m.train].position,
                }
            })
            .collect()
    }

    /// Adds strong unmatched features as new landmarks (map update).
    fn update_map(&mut self, features: &[Feature], pose: &Pose2, cost: &mut LocCost) {
        let mut added = 0;
        for f in features {
            if added >= self.cfg.max_map_additions {
                break;
            }
            let world = self.camera.image_to_world(
                pose,
                f.keypoint.x as f64,
                f.keypoint.y as f64,
            );
            // Skip if a similar landmark already exists nearby.
            let exists = self.map.near(world, 1.0).iter().any(|lm| {
                lm.descriptor.hamming(&f.descriptor) <= self.cfg.max_match_distance
            });
            if !exists {
                self.map.insert_new(world, f.descriptor);
                self.stats.map_additions += 1;
                added += 1;
            }
        }
        let _ = cost;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::PriorMap;
    use adsim_vision::Point2;

    /// A synthetic world of textured square beacons. Mapping and
    /// rendering share the exact drawing code, so extracted
    /// descriptors in the map match those seen at localization time.
    struct Beacon {
        position: Point2,
        seed: u64,
    }

    fn beacons() -> Vec<Beacon> {
        let mut out = Vec::new();
        let mut id = 0;
        for gx in -12..=12i64 {
            for gy in -6..=6i64 {
                // Jitter positions deterministically off-grid.
                let jx = ((gx * 7 + gy * 3).rem_euclid(5)) as f64 * 0.9;
                let jy = ((gx * 5 + gy * 11).rem_euclid(7)) as f64 * 0.6;
                out.push(Beacon {
                    position: Point2::new(gx as f64 * 14.0 + jx, gy as f64 * 14.0 + jy),
                    seed: id,
                });
                id += 1;
            }
        }
        out
    }

    fn render(camera: &OrthoCamera, pose: &Pose2, world: &[Beacon]) -> GrayImage {
        let mut img = GrayImage::from_fn(camera.width(), camera.height(), |x, y| {
            // Dim deterministic ground texture.
            (((x * 3 + y * 5) % 13) + 20) as u8
        });
        for b in world {
            let (u, v) = camera.world_to_image(pose, b.position);
            if !camera.in_frame(u, v) {
                continue;
            }
            // 28x28 texture of 4x4 random cells, unique per beacon.
            // The patch exceeds the 27x27 BRIEF sampling window, so
            // descriptors of interior corners see only this beacon's
            // texture and matches are unambiguous.
            for dy in -14isize..14 {
                for dx in -14isize..14 {
                    let (cx, cy) = ((dx + 14) / 4, (dy + 14) / 4);
                    let mut h = b.seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(cx as u64 * 131)
                        .wrapping_add(cy as u64 * 31013);
                    h ^= h >> 29;
                    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    h ^= h >> 32;
                    img.put(
                        u.round() as isize + dx,
                        v.round() as isize + dy,
                        80 + (h % 176) as u8,
                    );
                }
            }
        }
        img
    }

    fn camera() -> OrthoCamera {
        OrthoCamera::new(320, 240, 0.25)
    }

    fn orb() -> OrbExtractor {
        OrbExtractor::new(300, 25).with_levels(2)
    }

    /// Builds a prior map by driving a mapping pass over the world at
    /// known poses and back-projecting extracted features.
    fn build_map(camera: &OrthoCamera, world: &[Beacon]) -> PriorMap {
        let mut map = PriorMap::empty();
        let orb = orb();
        for gx in -5..=5 {
            for gy in -2..=2 {
                let pose = Pose2::new(gx as f64 * 32.0, gy as f64 * 30.0, 0.0);
                let frame = render(camera, &pose, world);
                for f in orb.extract(&frame) {
                    let w =
                        camera.image_to_world(&pose, f.keypoint.x as f64, f.keypoint.y as f64);
                    let dup = map
                        .near(w, 0.5)
                        .iter()
                        .any(|lm| lm.descriptor.hamming(&f.descriptor) < 32);
                    if !dup {
                        map.insert_new(w, f.descriptor);
                    }
                }
            }
        }
        map
    }

    fn localizer(map: PriorMap) -> Localizer {
        Localizer::new(
            map,
            camera(),
            orb(),
            LocalizerConfig { map_update: false, ..LocalizerConfig::default() },
        )
    }

    #[test]
    fn tracks_along_a_straight_drive() {
        let world = beacons();
        let cam = camera();
        let map = build_map(&cam, &world);
        assert!(map.len() > 50, "mapping found {} landmarks", map.len());
        let mut loc = localizer(map);
        loc.seed_pose(Pose2::new(-20.0, 0.0, 0.0));
        let mut tracked = 0;
        for i in 0..20 {
            let truth = Pose2::new(-20.0 + i as f64 * 1.5, 0.0, 0.0);
            let frame = render(&cam, &truth, &world);
            let res = loc.localize(&frame);
            if let Some(pose) = res.pose {
                let err = pose.distance(&truth);
                assert!(err < 1.0, "frame {i}: error {err:.3} m, outcome {:?}", res.outcome);
                tracked += 1;
            }
        }
        assert!(tracked >= 18, "tracked {tracked}/20 frames");
    }

    #[test]
    fn localization_is_decimeter_accurate_when_tracking() {
        let world = beacons();
        let cam = camera();
        let map = build_map(&cam, &world);
        let mut loc = localizer(map);
        let truth = Pose2::new(3.0, 2.0, 0.0);
        loc.seed_pose(Pose2::new(2.0, 2.0, 0.0));
        let res = loc.localize(&render(&cam, &truth, &world));
        let pose = res.pose.expect("should localize");
        assert!(pose.distance(&truth) < 0.3, "error {}", pose.distance(&truth));
    }

    #[test]
    fn relocalizes_after_teleport() {
        let world = beacons();
        let cam = camera();
        let map = build_map(&cam, &world);
        let mut loc = localizer(map);
        loc.seed_pose(Pose2::new(0.0, 0.0, 0.0));
        let _ = loc.localize(&render(&cam, &Pose2::new(0.0, 0.0, 0.0), &world));
        // Teleport 130 m away: far outside the narrow search (view
        // radius 50 m + 20 m), so tracking fails and the widened
        // relocalization search recovers.
        let truth = Pose2::new(120.0, 50.0, 0.0);
        let res = loc.localize(&render(&cam, &truth, &world));
        assert_eq!(res.outcome, LocalizeOutcome::Relocalized);
        assert!(res.cost.relocalized);
        let pose = res.pose.expect("relocalization should succeed");
        assert!(pose.distance(&truth) < 1.0);
    }

    #[test]
    fn relocalization_does_more_matching_work() {
        let world = beacons();
        let cam = camera();
        let map = build_map(&cam, &world);
        let mut loc = localizer(map);
        loc.seed_pose(Pose2::new(0.0, 0.0, 0.0));
        let near = loc.localize(&render(&cam, &Pose2::new(0.5, 0.0, 0.0), &world));
        let mut loc2 = localizer(build_map(&cam, &world));
        loc2.seed_pose(Pose2::new(0.0, 0.0, 0.0));
        let _ = loc2.localize(&render(&cam, &Pose2::new(0.0, 0.0, 0.0), &world));
        let far = loc2.localize(&render(&cam, &Pose2::new(120.0, 50.0, 0.0), &world));
        assert!(
            far.cost.map_candidates > near.cost.map_candidates,
            "reloc candidates {} <= tracked candidates {}",
            far.cost.map_candidates,
            near.cost.map_candidates
        );
    }

    #[test]
    fn lost_when_world_is_unknown() {
        let world = beacons();
        let cam = camera();
        let map = build_map(&cam, &world);
        let mut loc = localizer(map);
        loc.seed_pose(Pose2::new(0.0, 0.0, 0.0));
        // Render a region far outside the mapped area.
        let frame = render(&cam, &Pose2::new(5000.0, 5000.0, 0.0), &world);
        let res = loc.localize(&frame);
        assert_eq!(res.outcome, LocalizeOutcome::Lost);
        assert!(res.pose.is_none());
        assert_eq!(loc.stats().lost, 1);
    }

    #[test]
    fn map_update_adds_landmarks() {
        let world = beacons();
        let cam = camera();
        let map = build_map(&cam, &world);
        let before = map.len();
        let mut loc = Localizer::new(map, cam, orb(), LocalizerConfig::default());
        loc.seed_pose(Pose2::new(0.0, 0.0, 0.0));
        // New beacons appear that were never mapped.
        let mut extended = beacons();
        extended.push(Beacon { position: Point2::new(2.0, -3.0), seed: 999 });
        let _ = loc.localize(&render(&cam, &Pose2::new(0.0, 0.0, 0.0), &extended));
        assert!(loc.map().len() > before, "map update should add landmarks");
        assert!(loc.stats().map_additions > 0);
    }

    #[test]
    fn loop_closing_runs_periodically() {
        let world = beacons();
        let cam = camera();
        let map = build_map(&cam, &world);
        let mut loc = Localizer::new(
            map,
            cam,
            orb(),
            LocalizerConfig { loop_close_interval: 3, map_update: false, ..Default::default() },
        );
        loc.seed_pose(Pose2::new(0.0, 0.0, 0.0));
        let mut closed = 0;
        for i in 0..6 {
            let truth = Pose2::new(i as f64 * 0.5, 0.0, 0.0);
            let res = loc.localize(&render(&cam, &truth, &world));
            if res.cost.loop_closed {
                closed += 1;
            }
        }
        assert_eq!(closed, 2, "interval 3 over 6 frames -> 2 closures");
        assert_eq!(loc.stats().loop_closures, 2);
    }
}
