use adsim_runtime::Runtime;
use adsim_vision::{Point2, Pose2};

/// One feature correspondence: where the landmark appears relative to
/// the vehicle, and where the prior map says it is in the world.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Correspondence {
    /// Landmark position in the vehicle frame (from the camera).
    pub vehicle: Point2,
    /// Landmark position in the world frame (from the prior map).
    pub world: Point2,
}

/// Result of a pose solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoseEstimate {
    /// Estimated world pose of the vehicle.
    pub pose: Pose2,
    /// Correspondences classified as inliers.
    pub inliers: usize,
    /// Mean residual of the inliers in meters.
    pub mean_residual: f64,
}

/// Residual below which a correspondence counts as an inlier (meters).
/// Camera quantization in this workspace is 0.25 m/px, so a 1 m gate
/// admits legitimate matches while rejecting wrong associations.
const INLIER_THRESHOLD: f64 = 1.0;

/// Maximum RANSAC hypotheses evaluated per solve.
const MAX_HYPOTHESES: usize = 64;

/// Estimates the vehicle's SE(2) world pose from correspondences.
///
/// Descriptor matching against a large prior map inevitably produces
/// wrong associations, so the solve is robust: deterministic RANSAC
/// over 2-point minimal hypotheses selects the largest consensus set,
/// which is then refined by closed-form least squares (2-D Umeyama
/// without scale). Returns `None` when fewer than `min_inliers`
/// correspondences agree — the signal the localizer uses to fall back
/// to relocalization (paper §3.1.3).
///
/// # Examples
///
/// ```
/// use adsim_slam::{estimate_pose, Correspondence};
/// use adsim_vision::{Point2, Pose2};
///
/// let truth = Pose2::new(3.0, -2.0, 0.4);
/// let corrs: Vec<Correspondence> = [(1.0, 0.0), (0.0, 2.0), (-1.0, 1.0)]
///     .iter()
///     .map(|&(x, y)| {
///         let v = Point2::new(x, y);
///         Correspondence { vehicle: v, world: truth.transform(v) }
///     })
///     .collect();
/// let est = estimate_pose(&corrs, 3).unwrap();
/// assert!(est.pose.distance(&truth) < 1e-9);
/// ```
pub fn estimate_pose(corrs: &[Correspondence], min_inliers: usize) -> Option<PoseEstimate> {
    estimate_pose_with(&Runtime::serial(), corrs, min_inliers)
}

/// [`estimate_pose`] with hypothesis scoring spread over a worker pool.
///
/// Hypothesis poses still enumerate serially in the pinned `(gap, i)`
/// pair order — enumeration is cheap — but scoring each hypothesis
/// against every correspondence, the `O(hypotheses × n)` bulk of the
/// solve, fans out over `rt`'s workers into per-hypothesis slots. The
/// winner is then selected by replaying the serial first-wins argmax
/// over those slots, so the result is bit-identical on any thread
/// count (pinned by the `ransac` parity tests).
pub fn estimate_pose_with(
    rt: &Runtime,
    corrs: &[Correspondence],
    min_inliers: usize,
) -> Option<PoseEstimate> {
    let needed = min_inliers.max(2);
    if corrs.len() < needed {
        return None;
    }
    let n = corrs.len();

    // Deterministic hypothesis enumeration: pairs (i, i + gap) with
    // varying gaps, spread over the correspondence set.
    let mut hypotheses: Vec<Pose2> = Vec::new();
    'outer: for gap in 1..n {
        for i in 0..n - gap {
            if hypotheses.len() >= MAX_HYPOTHESES {
                break 'outer;
            }
            let (a, b) = (&corrs[i], &corrs[i + gap]);
            if let Some(pose) = pose_from_pair(a, b) {
                hypotheses.push(pose);
            }
        }
    }
    let mut counts = vec![0usize; hypotheses.len()];
    // ~16 scalar ops per residual gate; small solves stay serial.
    rt.for_work(hypotheses.len() * n * 16).par_chunks_mut(&mut counts, 1, |h, slot| {
        slot[0] = count_inliers(corrs, &hypotheses[h]);
    });
    let mut best: Option<(Pose2, usize)> = None;
    for (pose, &inliers) in hypotheses.iter().zip(&counts) {
        if best.is_none_or(|(_, best_n)| inliers > best_n) {
            best = Some((*pose, inliers));
        }
    }

    // Fall back to a global least-squares fit (handles degenerate
    // inputs like coincident points where no pair hypothesis exists).
    let candidate = match best {
        Some((pose, _)) => pose,
        None => solve_rigid(corrs)?,
    };

    // Refine on the consensus set, then re-classify.
    let consensus: Vec<Correspondence> =
        corrs.iter().copied().filter(|c| residual(c, &candidate) <= INLIER_THRESHOLD).collect();
    let refined = if consensus.len() >= 2 {
        solve_rigid(&consensus).unwrap_or(candidate)
    } else {
        candidate
    };
    let inlier_set: Vec<&Correspondence> =
        corrs.iter().filter(|c| residual(c, &refined) <= INLIER_THRESHOLD).collect();
    if inlier_set.len() < min_inliers {
        return None;
    }
    let mean_residual =
        inlier_set.iter().map(|c| residual(c, &refined)).sum::<f64>() / inlier_set.len() as f64;
    Some(PoseEstimate { pose: refined, inliers: inlier_set.len(), mean_residual })
}

fn residual(c: &Correspondence, pose: &Pose2) -> f64 {
    pose.transform(c.vehicle).distance(&c.world)
}

fn count_inliers(corrs: &[Correspondence], pose: &Pose2) -> usize {
    corrs.iter().filter(|c| residual(c, pose) <= INLIER_THRESHOLD).count()
}

/// Exact SE(2) from two correspondences: rotation aligns the segment
/// directions, translation aligns the first point. `None` when either
/// segment is too short to define a direction.
fn pose_from_pair(a: &Correspondence, b: &Correspondence) -> Option<Pose2> {
    let dv = b.vehicle - a.vehicle;
    let dw = b.world - a.world;
    if dv.norm() < 1e-6 || dw.norm() < 1e-6 {
        return None;
    }
    let theta = dw.y.atan2(dw.x) - dv.y.atan2(dv.x);
    let (s, c) = theta.sin_cos();
    let rx = c * a.vehicle.x - s * a.vehicle.y;
    let ry = s * a.vehicle.x + c * a.vehicle.y;
    Some(Pose2::new(a.world.x - rx, a.world.y - ry, theta))
}

/// Closed-form 2-D rigid registration minimizing `Σ |R·v + t − w|²`.
fn solve_rigid(corrs: &[Correspondence]) -> Option<Pose2> {
    let n = corrs.len() as f64;
    if corrs.len() < 2 {
        return None;
    }
    let mut vc = Point2::default();
    let mut wc = Point2::default();
    for c in corrs {
        vc = vc + c.vehicle;
        wc = wc + c.world;
    }
    vc = vc * (1.0 / n);
    wc = wc * (1.0 / n);
    let (mut sxx, mut sxy) = (0.0f64, 0.0f64);
    for c in corrs {
        let v = c.vehicle - vc;
        let w = c.world - wc;
        sxx += v.x * w.x + v.y * w.y;
        sxy += v.x * w.y - v.y * w.x;
    }
    if sxx == 0.0 && sxy == 0.0 {
        // Degenerate: no rotational information; translation-only.
        return Some(Pose2::new(wc.x - vc.x, wc.y - vc.y, 0.0));
    }
    let theta = sxy.atan2(sxx);
    let (s, c) = theta.sin_cos();
    let tx = wc.x - (c * vc.x - s * vc.y);
    let ty = wc.y - (s * vc.x + c * vc.y);
    Some(Pose2::new(tx, ty, theta))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(truth: &Pose2, pts: &[(f64, f64)]) -> Vec<Correspondence> {
        pts.iter()
            .map(|&(x, y)| {
                let v = Point2::new(x, y);
                Correspondence { vehicle: v, world: truth.transform(v) }
            })
            .collect()
    }

    #[test]
    fn exact_recovery() {
        let truth = Pose2::new(10.0, -4.0, 1.2);
        let corrs = make(&truth, &[(0.0, 0.0), (5.0, 0.0), (0.0, 5.0), (3.0, 2.0)]);
        let est = estimate_pose(&corrs, 3).unwrap();
        assert!(est.pose.distance(&truth) < 1e-9);
        assert!(est.pose.heading_error(&truth) < 1e-9);
        assert_eq!(est.inliers, 4);
        assert!(est.mean_residual < 1e-9);
    }

    #[test]
    fn outliers_are_rejected() {
        let truth = Pose2::new(2.0, 3.0, -0.6);
        let mut corrs = make(
            &truth,
            &[(1.0, 1.0), (4.0, -2.0), (-3.0, 2.0), (0.0, 5.0), (6.0, 0.0), (2.0, -4.0)],
        );
        // Several wildly wrong associations.
        for k in 0..3 {
            corrs.push(Correspondence {
                vehicle: Point2::new(k as f64, 0.0),
                world: Point2::new(500.0 + k as f64 * 7.0, 500.0 - k as f64 * 13.0),
            });
        }
        let est = estimate_pose(&corrs, 4).unwrap();
        assert!(est.pose.distance(&truth) < 1e-6, "pose {:?}", est.pose);
        assert_eq!(est.inliers, 6);
    }

    #[test]
    fn noise_is_averaged_out() {
        let truth = Pose2::new(-1.0, 7.0, 0.3);
        let mut corrs = make(
            &truth,
            &[(1.0, 2.0), (-2.0, 4.0), (5.0, -1.0), (3.0, 3.0), (-4.0, -2.0), (0.0, 6.0)],
        );
        for (i, c) in corrs.iter_mut().enumerate() {
            let n = if i % 2 == 0 { 0.05 } else { -0.05 };
            c.world = c.world + Point2::new(n, -n);
        }
        let est = estimate_pose(&corrs, 4).unwrap();
        assert!(est.pose.distance(&truth) < 0.1);
        assert!(est.mean_residual < 0.1);
    }

    #[test]
    fn too_few_correspondences_fail() {
        let truth = Pose2::identity();
        let corrs = make(&truth, &[(1.0, 0.0)]);
        assert!(estimate_pose(&corrs, 2).is_none());
        assert!(estimate_pose(&[], 1).is_none());
    }

    #[test]
    fn min_inliers_is_enforced() {
        let truth = Pose2::new(0.0, 0.0, 0.0);
        let mut corrs = make(&truth, &[(1.0, 0.0), (0.0, 1.0), (1.0, 1.0)]);
        corrs.push(Correspondence {
            vehicle: Point2::new(2.0, 2.0),
            world: Point2::new(99.0, 99.0),
        });
        // Only 3 correspondences are consistent, so 4 must fail.
        assert!(estimate_pose(&corrs, 4).is_none());
        let est = estimate_pose(&corrs, 3).unwrap();
        assert_eq!(est.inliers, 3);
        assert!(est.pose.distance(&truth) < 1e-9);
    }

    #[test]
    fn coincident_points_fall_back_to_translation() {
        let corrs = vec![
            Correspondence { vehicle: Point2::new(0.0, 0.0), world: Point2::new(5.0, 5.0) },
            Correspondence { vehicle: Point2::new(0.0, 0.0), world: Point2::new(5.0, 5.0) },
        ];
        let est = estimate_pose(&corrs, 2).unwrap();
        assert!((est.pose.x - 5.0).abs() < 1e-9);
        assert_eq!(est.pose.theta, 0.0);
    }

    #[test]
    fn parallel_scoring_is_bit_identical_across_thread_counts() {
        // A solve large enough to exceed the for_work threshold and
        // hit MAX_HYPOTHESES, with outliers so the argmax has real
        // competition between consensus sets.
        let truth = Pose2::new(7.5, -3.25, 0.625);
        let mut corrs = Vec::new();
        for k in 0..40u32 {
            let k = k as f64;
            let v = Point2::new((k * 0.7).sin() * 9.0, (k * 1.3).cos() * 9.0);
            corrs.push(Correspondence { vehicle: v, world: truth.transform(v) });
        }
        for k in 0..24u32 {
            let k = k as f64;
            corrs.push(Correspondence {
                vehicle: Point2::new(k * 0.9 - 10.0, k * 0.4),
                world: Point2::new(200.0 + (k * 37.0) % 29.0, -150.0 - (k * 53.0) % 31.0),
            });
        }
        let serial = estimate_pose(&corrs, 8).unwrap();
        for threads in [1usize, 2, 8] {
            let par = estimate_pose_with(&Runtime::new(threads), &corrs, 8).unwrap();
            assert_eq!(par.pose.x.to_bits(), serial.pose.x.to_bits(), "threads={threads}");
            assert_eq!(par.pose.y.to_bits(), serial.pose.y.to_bits(), "threads={threads}");
            assert_eq!(
                par.pose.theta.to_bits(),
                serial.pose.theta.to_bits(),
                "threads={threads}"
            );
            assert_eq!(par.inliers, serial.inliers, "threads={threads}");
            assert_eq!(
                par.mean_residual.to_bits(),
                serial.mean_residual.to_bits(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn majority_outliers_still_recoverable() {
        // 5 inliers, 7 consistent-looking outliers scattered randomly.
        let truth = Pose2::new(4.0, -1.0, 0.8);
        let mut corrs = make(
            &truth,
            &[(0.0, 0.0), (3.0, 1.0), (-2.0, 2.0), (1.0, -3.0), (4.0, 4.0)],
        );
        for k in 0..7u32 {
            let k = k as f64;
            corrs.push(Correspondence {
                vehicle: Point2::new(k * 1.3 - 4.0, k * 0.7),
                world: Point2::new(100.0 + 31.0 * k % 17.0, -50.0 + 23.0 * k % 13.0),
            });
        }
        let est = estimate_pose(&corrs, 5).unwrap();
        assert!(est.pose.distance(&truth) < 1e-6);
        assert_eq!(est.inliers, 5);
    }
}
