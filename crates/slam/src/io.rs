//! On-disk prior-map format.
//!
//! The storage constraint (§2.4.3) is about carrying tens of terabytes
//! of prior map on the vehicle; this module defines the compact binary
//! record format used to size that storage and to persist maps between
//! the offline mapping pass and deployment.
//!
//! Layout (little-endian): an 8-byte magic, a u32 version, a u64
//! landmark count, then per landmark: `id: u64`, `x: f64`, `y: f64`,
//! 32 descriptor bytes — 56 bytes per landmark.

use crate::map::{Landmark, PriorMap};
use adsim_vision::{Descriptor, Point2};

/// File magic: "ADSIMMAP".
const MAGIC: &[u8; 8] = b"ADSIMMAP";
/// Current format version.
const VERSION: u32 = 1;
/// Bytes per serialized landmark.
pub const LANDMARK_RECORD_BYTES: usize = 8 + 8 + 8 + 32;

/// Errors decoding a serialized prior map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapDecodeError {
    /// Input shorter than the header.
    TooShort,
    /// Magic bytes do not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Landmark records are truncated.
    Truncated {
        /// Landmarks the header promised.
        expected: u64,
        /// Landmarks actually present.
        found: u64,
    },
    /// A landmark record decodes to a non-finite coordinate —
    /// corrupted or bit-flipped payload bytes.
    InvalidLandmark {
        /// Index of the bad record.
        index: u64,
    },
}

impl std::fmt::Display for MapDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapDecodeError::TooShort => write!(f, "input shorter than the map header"),
            MapDecodeError::BadMagic => write!(f, "not a prior-map file (bad magic)"),
            MapDecodeError::BadVersion(v) => write!(f, "unsupported map format version {v}"),
            MapDecodeError::Truncated { expected, found } => {
                write!(f, "map truncated: header promised {expected} landmarks, found {found}")
            }
            MapDecodeError::InvalidLandmark { index } => {
                write!(f, "landmark record {index} has non-finite coordinates")
            }
        }
    }
}

impl std::error::Error for MapDecodeError {}

impl PriorMap {
    /// Serializes the map to the on-disk format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20 + self.len() * LANDMARK_RECORD_BYTES);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.len() as u64).to_le_bytes());
        for lm in self.landmarks() {
            out.extend_from_slice(&lm.id.to_le_bytes());
            out.extend_from_slice(&lm.position.x.to_le_bytes());
            out.extend_from_slice(&lm.position.y.to_le_bytes());
            out.extend_from_slice(lm.descriptor.as_bytes());
        }
        out
    }

    /// Decodes a map from the on-disk format.
    ///
    /// # Errors
    ///
    /// Returns a [`MapDecodeError`] for short, foreign, versioned,
    /// truncated or corrupted inputs. Every malformed byte stream maps
    /// to a typed error — decoding never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<PriorMap, MapDecodeError> {
        // Infallible on in-range slices, but routed through the error
        // type anyway: the decoder must not carry a panic path.
        fn field<const N: usize>(r: &[u8], lo: usize) -> Result<[u8; N], MapDecodeError> {
            r.get(lo..lo + N)
                .and_then(|s| s.try_into().ok())
                .ok_or(MapDecodeError::TooShort)
        }
        if bytes.len() < 20 {
            return Err(MapDecodeError::TooShort);
        }
        if &bytes[..8] != MAGIC {
            return Err(MapDecodeError::BadMagic);
        }
        let version = u32::from_le_bytes(field(bytes, 8)?);
        if version != VERSION {
            return Err(MapDecodeError::BadVersion(version));
        }
        let count = u64::from_le_bytes(field(bytes, 12)?);
        let body = &bytes[20..];
        let available = (body.len() / LANDMARK_RECORD_BYTES) as u64;
        if available < count {
            return Err(MapDecodeError::Truncated { expected: count, found: available });
        }
        let mut landmarks = Vec::with_capacity(count as usize);
        for i in 0..count as usize {
            let r = body
                .get(i * LANDMARK_RECORD_BYTES..(i + 1) * LANDMARK_RECORD_BYTES)
                .ok_or(MapDecodeError::Truncated { expected: count, found: i as u64 })?;
            let id = u64::from_le_bytes(field(r, 0)?);
            let x = f64::from_le_bytes(field(r, 8)?);
            let y = f64::from_le_bytes(field(r, 16)?);
            if !x.is_finite() || !y.is_finite() {
                return Err(MapDecodeError::InvalidLandmark { index: i as u64 });
            }
            let desc: [u8; 32] = field(r, 24)?;
            landmarks.push(Landmark::new(id, Point2::new(x, y), Descriptor::new(desc)));
        }
        Ok(PriorMap::new(landmarks))
    }

    /// Exact serialized size in bytes.
    pub fn serialized_bytes(&self) -> usize {
        20 + self.len() * LANDMARK_RECORD_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage;

    fn sample_map(n: u64) -> PriorMap {
        (0..n)
            .map(|i| {
                Landmark::new(
                    i,
                    Point2::new(i as f64 * 3.5, -(i as f64) * 1.25),
                    Descriptor::new([(i % 251) as u8; 32]),
                )
            })
            .collect()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let map = sample_map(100);
        let bytes = map.to_bytes();
        assert_eq!(bytes.len(), map.serialized_bytes());
        let back = PriorMap::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), map.len());
        assert_eq!(back.landmarks(), map.landmarks());
        // Spatial queries still work.
        assert_eq!(back.near(Point2::new(0.0, 0.0), 5.0).len(), map.near(Point2::new(0.0, 0.0), 5.0).len());
    }

    #[test]
    fn empty_map_round_trips() {
        let map = PriorMap::empty();
        let back = PriorMap::from_bytes(&map.to_bytes()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(PriorMap::from_bytes(&[]).unwrap_err(), MapDecodeError::TooShort);
        let mut bytes = sample_map(3).to_bytes();
        bytes[0] = b'X';
        assert_eq!(PriorMap::from_bytes(&bytes).unwrap_err(), MapDecodeError::BadMagic);
    }

    #[test]
    fn decode_rejects_future_versions() {
        let mut bytes = sample_map(1).to_bytes();
        bytes[8] = 99;
        assert!(matches!(
            PriorMap::from_bytes(&bytes).unwrap_err(),
            MapDecodeError::BadVersion(99)
        ));
    }

    #[test]
    fn decode_detects_truncation() {
        let bytes = sample_map(10).to_bytes();
        let cut = &bytes[..bytes.len() - 30];
        assert!(matches!(
            PriorMap::from_bytes(cut).unwrap_err(),
            MapDecodeError::Truncated { expected: 10, found: 9 }
        ));
    }

    #[test]
    fn decode_rejects_non_finite_coordinates() {
        // Overwrite landmark 1's x coordinate with a NaN bit pattern —
        // the shape a bit-flipped map file takes.
        let mut bytes = sample_map(3).to_bytes();
        let off = 20 + LANDMARK_RECORD_BYTES + 8;
        bytes[off..off + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(
            PriorMap::from_bytes(&bytes).unwrap_err(),
            MapDecodeError::InvalidLandmark { index: 1 }
        );
    }

    #[test]
    fn size_tracks_the_storage_model_estimate() {
        // The §2.4.3 storage estimator (64 B/landmark incl. index
        // overhead) should bracket the raw record size (56 B).
        let map = sample_map(1_000);
        let on_disk = map.serialized_bytes() as f64;
        let estimate = storage::landmark_db_bytes(1_000) as f64;
        assert!(on_disk < estimate, "raw records fit inside the estimate");
        assert!(on_disk > 0.8 * estimate, "estimate is not wildly oversized");
    }
}
