//! The paper's storage constraint model (§2.4.3).
//!
//! Prior maps must live on the vehicle — connectivity cannot be
//! assumed — and maps of large environments are enormous: 41 TB for the
//! entire United States. This module scales that datapoint to arbitrary
//! coverage areas and landmark databases.

/// Storage for a prior map of the entire United States, from the
/// paper: 41 TB.
pub const US_MAP_BYTES: u64 = 41_000_000_000_000;

/// Land area of the United States in km², used to derive map density.
pub const US_AREA_KM2: f64 = 9_830_000.0;

/// Bytes of prior map per km² of coverage, derived from the paper's
/// U.S.-scale figure (≈ 4.2 MB/km²).
pub fn bytes_per_km2() -> f64 {
    US_MAP_BYTES as f64 / US_AREA_KM2
}

/// Prior-map size for a coverage area.
///
/// # Examples
///
/// ```
/// use adsim_slam::storage::map_bytes_for_area;
///
/// // A metro area of 10,000 km² needs tens of GB.
/// let bytes = map_bytes_for_area(10_000.0);
/// assert!(bytes > 10e9);
/// assert!(bytes < 100e9);
/// ```
pub fn map_bytes_for_area(area_km2: f64) -> f64 {
    assert!(area_km2 >= 0.0, "area cannot be negative");
    area_km2 * bytes_per_km2()
}

/// On-disk size of a landmark database: position (16 B), descriptor
/// (32 B) and index overhead (16 B) per landmark.
pub fn landmark_db_bytes(landmarks: usize) -> u64 {
    landmarks as u64 * 64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn us_scale_matches_paper() {
        let b = map_bytes_for_area(US_AREA_KM2);
        let rel = (b - US_MAP_BYTES as f64).abs() / US_MAP_BYTES as f64;
        assert!(rel < 1e-9);
    }

    #[test]
    fn density_is_megabytes_per_km2() {
        let d = bytes_per_km2();
        assert!(d > 3e6 && d < 6e6, "{d}");
    }

    #[test]
    fn landmark_db_scales_linearly() {
        assert_eq!(landmark_db_bytes(0), 0);
        assert_eq!(landmark_db_bytes(1000), 64_000);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_area_rejected() {
        map_bytes_for_area(-1.0);
    }
}
