// Property-based fuzz suite: compiled only with `--features fuzz`,
// which additionally requires restoring the `proptest` dev-dependency
// (removed so offline builds never touch the registry; see DESIGN.md).
#![cfg(feature = "fuzz")]
//! Property-based tests of the robust pose solver.

use adsim_slam::{estimate_pose, Correspondence};
use adsim_vision::{Point2, Pose2};
use proptest::prelude::*;

fn pose() -> impl Strategy<Value = Pose2> {
    (-50.0f64..50.0, -50.0f64..50.0, -3.0f64..3.0).prop_map(|(x, y, t)| Pose2::new(x, y, t))
}

fn spread_points() -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec((-20.0f64..20.0, -20.0f64..20.0).prop_map(|(x, y)| Point2::new(x, y)), 6..15)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exact_correspondences_recover_the_pose(p in pose(), pts in spread_points()) {
        // Skip degenerate clusters (all points within ~1 cm).
        let spread = pts.iter().map(|q| q.distance(&pts[0])).fold(0.0f64, f64::max);
        prop_assume!(spread > 0.5);
        let corrs: Vec<Correspondence> = pts
            .iter()
            .map(|&v| Correspondence { vehicle: v, world: p.transform(v) })
            .collect();
        let est = estimate_pose(&corrs, corrs.len().min(6)).expect("solvable");
        prop_assert!(est.pose.distance(&p) < 1e-6, "{:?} vs {:?}", est.pose, p);
        prop_assert!(est.pose.heading_error(&p) < 1e-6);
    }

    #[test]
    fn minority_outliers_do_not_move_the_solution(
        p in pose(), pts in spread_points(), ox in 100.0f64..500.0, oy in 100.0f64..500.0,
    ) {
        let spread = pts.iter().map(|q| q.distance(&pts[0])).fold(0.0f64, f64::max);
        prop_assume!(spread > 0.5);
        let mut corrs: Vec<Correspondence> = pts
            .iter()
            .map(|&v| Correspondence { vehicle: v, world: p.transform(v) })
            .collect();
        let n_inliers = corrs.len();
        // Up to 1/3 outliers.
        for k in 0..n_inliers / 3 {
            corrs.push(Correspondence {
                vehicle: Point2::new(k as f64, -(k as f64)),
                world: Point2::new(ox + 13.0 * k as f64, oy - 7.0 * k as f64),
            });
        }
        let est = estimate_pose(&corrs, n_inliers.min(6)).expect("solvable");
        prop_assert!(est.pose.distance(&p) < 1e-6);
        prop_assert!(est.inliers >= n_inliers - 1);
    }
}
