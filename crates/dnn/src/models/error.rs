use adsim_tensor::TensorError;

/// Errors constructing a model from caller-supplied parameters.
///
/// The `try_*` constructors return these instead of panicking, so a
/// configuration loaded from a file or CLI flag can be validated
/// without a process abort.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// The input resolution is incompatible with the network's total
    /// downsampling factor.
    UnalignedResolution {
        /// Model name.
        model: &'static str,
        /// Requested input height.
        height: usize,
        /// Requested input width.
        width: usize,
        /// Each spatial extent must be a positive multiple of this.
        multiple: usize,
    },
    /// A size parameter that must be positive was zero.
    ZeroSize {
        /// Model name.
        model: &'static str,
        /// The offending parameter.
        parameter: &'static str,
    },
    /// The layer stack failed shape propagation while materializing.
    Build(TensorError),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::UnalignedResolution { model, height, width, multiple } => write!(
                f,
                "{model}: input must be a positive multiple of {multiple}, got {height}x{width}"
            ),
            ModelError::ZeroSize { model, parameter } => {
                write!(f, "{model}: {parameter} must be positive")
            }
            ModelError::Build(e) => write!(f, "model failed to build: {e}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for ModelError {
    fn from(e: TensorError) -> Self {
        ModelError::Build(e)
    }
}
