use crate::cost::{LayerCost, NetworkCost};
use crate::layer::Activation;
use crate::network::{Network, NetworkBuilder};
use crate::Result;
use adsim_tensor::{ops, Shape, TensorError};

/// A weight-free description of one layer, sufficient for shape
/// propagation and cost analysis.
///
/// Materialize into a runnable [`Network`] with [`ArchSpec::build`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LayerSpec {
    /// Convolution: `out` filters of `k`×`k`, stride, padding, fused
    /// activation.
    Conv {
        /// Output channels.
        out: usize,
        /// Kernel extent.
        k: usize,
        /// Stride.
        stride: usize,
        /// Symmetric zero padding.
        pad: usize,
        /// Fused activation.
        act: Activation,
    },
    /// Max pooling with a square window.
    MaxPool {
        /// Window extent.
        window: usize,
        /// Stride.
        stride: usize,
    },
    /// Inference-time batch normalization.
    BatchNorm,
    /// Collapse to `[batch, features]`.
    Flatten,
    /// Fully-connected layer.
    Linear {
        /// Output features.
        out: usize,
        /// Fused activation.
        act: Activation,
    },
}

/// A named architecture: input shape plus layer specs.
///
/// # Examples
///
/// ```
/// use adsim_dnn::models::{ArchSpec, LayerSpec};
/// use adsim_dnn::Activation;
///
/// let spec = ArchSpec::new(
///     "toy",
///     [1, 1, 8, 8],
///     vec![
///         LayerSpec::Conv { out: 4, k: 3, stride: 1, pad: 1, act: Activation::Relu },
///         LayerSpec::Flatten,
///         LayerSpec::Linear { out: 2, act: Activation::None },
///     ],
/// );
/// assert!(spec.cost().unwrap().total.flops > 0);
/// let net = spec.build(7).unwrap();
/// assert_eq!(net.output_shape().unwrap().dims(), &[1, 2]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ArchSpec {
    name: String,
    input_shape: Shape,
    layers: Vec<LayerSpec>,
}

impl ArchSpec {
    /// Creates a spec from its parts.
    pub fn new(
        name: impl Into<String>,
        input_shape: impl Into<Shape>,
        layers: Vec<LayerSpec>,
    ) -> Self {
        Self { name: name.into(), input_shape: input_shape.into(), layers }
    }

    /// Architecture name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared input shape.
    pub fn input_shape(&self) -> &Shape {
        &self.input_shape
    }

    /// The layer specs in execution order.
    pub fn layers(&self) -> &[LayerSpec] {
        &self.layers
    }

    /// Output shape after all layers.
    ///
    /// # Errors
    ///
    /// Returns an error if any layer is incompatible with its input.
    pub fn output_shape(&self) -> Result<Shape> {
        let mut shape = self.input_shape.clone();
        for l in &self.layers {
            shape = spec_output_shape(l, &shape)?;
        }
        Ok(shape)
    }

    /// Exact cost of a forward pass, computed analytically (no weight
    /// allocation — usable for the full-size paper networks at any
    /// resolution).
    ///
    /// # Errors
    ///
    /// Returns an error if any layer is incompatible with its input.
    pub fn cost(&self) -> Result<NetworkCost> {
        let mut shape = self.input_shape.clone();
        let mut layers = Vec::with_capacity(self.layers.len());
        for l in &self.layers {
            layers.push(spec_cost(l, &shape)?);
            shape = spec_output_shape(l, &shape)?;
        }
        Ok(NetworkCost::from_layers(layers))
    }

    /// Materializes a runnable network with deterministically
    /// initialized weights.
    ///
    /// # Errors
    ///
    /// Returns an error if any layer is incompatible with its input.
    pub fn build(&self, seed: u64) -> Result<Network> {
        let mut b = NetworkBuilder::new(self.name.clone(), self.input_shape.clone(), seed);
        for l in &self.layers {
            b = match *l {
                LayerSpec::Conv { out, k, stride, pad, act } => b.conv(out, k, stride, pad, act),
                LayerSpec::MaxPool { window, stride } => b.max_pool(window, stride),
                LayerSpec::BatchNorm => b.batch_norm(),
                LayerSpec::Flatten => b.flatten(),
                LayerSpec::Linear { out, act } => b.linear(out, act),
            };
        }
        b.build()
    }

    /// Rescales the spatial input resolution, keeping channels and
    /// layer structure; used for the Fig. 13 resolution sweep.
    pub fn with_resolution(&self, height: usize, width: usize) -> ArchSpec {
        let dims = self.input_shape.dims();
        ArchSpec {
            name: self.name.clone(),
            input_shape: Shape::from([dims[0], dims[1], height, width]),
            layers: self.layers.clone(),
        }
    }
}

fn act_flops(act: Activation) -> u64 {
    match act {
        Activation::None => 0,
        Activation::Relu | Activation::LeakyRelu(_) => 1,
        Activation::Sigmoid | Activation::Tanh => 4,
    }
}

fn spec_output_shape(l: &LayerSpec, input: &Shape) -> Result<Shape> {
    match *l {
        LayerSpec::Conv { out, k, stride, pad, .. } => {
            let (n, _, h, w) = input.as_nchw()?;
            match (ops::out_extent(h, k, stride, pad), ops::out_extent(w, k, stride, pad)) {
                (Some(a), Some(b)) => Ok(Shape::from([n, out, a, b])),
                _ => Err(TensorError::InvalidParameter {
                    op: "conv2d",
                    reason: format!("kernel {k} does not fit {h}x{w}"),
                }),
            }
        }
        LayerSpec::MaxPool { window, stride } => {
            let (n, c, h, w) = input.as_nchw()?;
            match (
                ops::out_extent(h, window, stride, 0),
                ops::out_extent(w, window, stride, 0),
            ) {
                (Some(a), Some(b)) => Ok(Shape::from([n, c, a, b])),
                _ => Err(TensorError::InvalidParameter {
                    op: "maxpool2d",
                    reason: format!("window {window} does not fit {h}x{w}"),
                }),
            }
        }
        LayerSpec::BatchNorm => {
            input.as_nchw()?;
            Ok(input.clone())
        }
        LayerSpec::Flatten => {
            let n = input.dim(0);
            Ok(Shape::from([n, input.len() / n]))
        }
        LayerSpec::Linear { out, .. } => {
            if input.rank() != 2 {
                return Err(TensorError::RankMismatch {
                    op: "linear",
                    expected: 2,
                    actual: input.rank(),
                });
            }
            Ok(Shape::from([input.dim(0), out]))
        }
    }
}

fn spec_cost(l: &LayerSpec, input: &Shape) -> Result<LayerCost> {
    let out_shape = spec_output_shape(l, input)?;
    let out_elems = out_shape.len() as u64;
    let in_elems = input.len() as u64;
    let cost = match *l {
        LayerSpec::Conv { out, k, act, .. } => {
            let (_, c_in, _, _) = input.as_nchw()?;
            let macs = out_elems * (c_in * k * k) as u64;
            LayerCost {
                kind: "conv2d",
                flops: 2 * macs + out_elems + act_flops(act) * out_elems,
                params: (out * (c_in * k * k + 1)) as u64,
                output_elems: out_elems,
                input_elems: in_elems,
            }
        }
        LayerSpec::MaxPool { window, .. } => LayerCost {
            kind: "maxpool2d",
            flops: out_elems * (window * window) as u64,
            params: 0,
            output_elems: out_elems,
            input_elems: in_elems,
        },
        LayerSpec::BatchNorm => {
            let (_, c, _, _) = input.as_nchw()?;
            LayerCost {
                kind: "batchnorm",
                flops: 2 * out_elems,
                params: 4 * c as u64,
                output_elems: out_elems,
                input_elems: in_elems,
            }
        }
        LayerSpec::Flatten => LayerCost {
            kind: "flatten",
            flops: 0,
            params: 0,
            output_elems: out_elems,
            input_elems: in_elems,
        },
        LayerSpec::Linear { out, act } => {
            let in_f = input.dim(1) as u64;
            let batch = input.dim(0) as u64;
            LayerCost {
                kind: "linear",
                flops: batch * (2 * out as u64 * in_f + out as u64 + act_flops(act) * out as u64),
                params: out as u64 * (in_f + 1),
                output_elems: out_elems,
                input_elems: in_elems,
            }
        }
    };
    Ok(cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> ArchSpec {
        ArchSpec::new(
            "toy",
            [1, 2, 8, 8],
            vec![
                LayerSpec::Conv { out: 4, k: 3, stride: 1, pad: 1, act: Activation::Relu },
                LayerSpec::BatchNorm,
                LayerSpec::MaxPool { window: 2, stride: 2 },
                LayerSpec::Flatten,
                LayerSpec::Linear { out: 3, act: Activation::None },
            ],
        )
    }

    #[test]
    fn spec_cost_matches_built_network_cost() {
        let spec = toy();
        let analytic = spec.cost().unwrap();
        let built = spec.build(11).unwrap().cost().unwrap();
        assert_eq!(analytic.total.flops, built.total.flops);
        assert_eq!(analytic.total.params, built.total.params);
        assert_eq!(analytic.layers.len(), built.layers.len());
        for (a, b) in analytic.layers.iter().zip(&built.layers) {
            assert_eq!(a.flops, b.flops, "layer {}", a.kind);
            assert_eq!(a.params, b.params, "layer {}", a.kind);
        }
    }

    #[test]
    fn spec_output_shape_matches_built_network() {
        let spec = toy();
        assert_eq!(spec.output_shape().unwrap(), spec.build(1).unwrap().output_shape().unwrap());
    }

    #[test]
    fn with_resolution_scales_flops_linearly_for_conv() {
        let spec = ArchSpec::new(
            "conv-only",
            [1, 1, 32, 32],
            vec![LayerSpec::Conv { out: 4, k: 3, stride: 1, pad: 1, act: Activation::None }],
        );
        let base = spec.cost().unwrap().total.flops;
        let double = spec.with_resolution(64, 64).cost().unwrap().total.flops;
        assert_eq!(double, base * 4, "4x pixels -> 4x conv FLOPs");
    }

    #[test]
    fn invalid_spec_errors_at_analysis_time() {
        let spec = ArchSpec::new(
            "bad",
            [1, 1, 4, 4],
            vec![LayerSpec::MaxPool { window: 8, stride: 8 }],
        );
        assert!(spec.cost().is_err());
        assert!(spec.build(1).is_err());
    }
}
