use super::error::ModelError;
use super::spec::{ArchSpec, LayerSpec};
use crate::detection::ObjectClass;
use crate::layer::Activation;
use crate::network::{Network, NetworkBuilder};

/// Validates that a spatial extent pair is a positive multiple of the
/// network's total downsampling factor.
fn check_alignment(
    model: &'static str,
    height: usize,
    width: usize,
    multiple: usize,
) -> Result<(), ModelError> {
    if height > 0 && width > 0 && height.is_multiple_of(multiple) && width.is_multiple_of(multiple)
    {
        Ok(())
    } else {
        Err(ModelError::UnalignedResolution { model, height, width, multiple })
    }
}

const LEAKY: Activation = Activation::LeakyRelu(0.1);

fn conv(out: usize, k: usize, pad: usize) -> LayerSpec {
    LayerSpec::Conv { out, k, stride: 1, pad, act: LEAKY }
}

fn pool() -> LayerSpec {
    LayerSpec::MaxPool { window: 2, stride: 2 }
}

/// Full-scale YOLOv2-style detection architecture (Darknet-19 trunk +
/// detection head), the multi-object detector the paper selects for its
/// DET engine because it "outperforms all the other multiple object
/// detection algorithms in both accuracy and speed" (§3.1.1).
///
/// `height` and `width` are the input resolution and must be multiples
/// of 32 (five 2× poolings). The returned spec is used for cost
/// analysis; it is far too large to execute natively in tests — use
/// [`yolo_tiny`] for that.
///
/// # Panics
///
/// Panics if `height` or `width` is not a positive multiple of 32.
///
/// # Examples
///
/// ```
/// use adsim_dnn::models::yolo_v2_spec;
///
/// let spec = yolo_v2_spec(416, 416);
/// // Tens of GFLOPs, like the published network.
/// assert!(spec.cost().unwrap().gflops() > 10.0);
/// ```
pub fn yolo_v2_spec(height: usize, width: usize) -> ArchSpec {
    try_yolo_v2_spec(height, width)
        .unwrap_or_else(|e| panic!("YOLO input must be a positive multiple of 32: {e}"))
}

/// Fallible form of [`yolo_v2_spec`] for resolutions that come from
/// configuration rather than code.
///
/// # Errors
///
/// Returns [`ModelError::UnalignedResolution`] unless `height` and
/// `width` are positive multiples of 32.
pub fn try_yolo_v2_spec(height: usize, width: usize) -> Result<ArchSpec, ModelError> {
    check_alignment("yolo-v2", height, width, 32)?;
    let mut layers = vec![
        conv(32, 3, 1),
        LayerSpec::BatchNorm,
        pool(),
        conv(64, 3, 1),
        LayerSpec::BatchNorm,
        pool(),
        conv(128, 3, 1),
        conv(64, 1, 0),
        conv(128, 3, 1),
        LayerSpec::BatchNorm,
        pool(),
        conv(256, 3, 1),
        conv(128, 1, 0),
        conv(256, 3, 1),
        LayerSpec::BatchNorm,
        pool(),
        conv(512, 3, 1),
        conv(256, 1, 0),
        conv(512, 3, 1),
        conv(256, 1, 0),
        conv(512, 3, 1),
        LayerSpec::BatchNorm,
        pool(),
        conv(1024, 3, 1),
        conv(512, 1, 0),
        conv(1024, 3, 1),
        conv(512, 1, 0),
        conv(1024, 3, 1),
        LayerSpec::BatchNorm,
    ];
    // Detection head: two 3x3 convs and a 1x1 projection to the grid
    // channels (tx, ty, tw, th, objectness, per-class scores).
    layers.push(conv(1024, 3, 1));
    layers.push(conv(1024, 3, 1));
    layers.push(LayerSpec::Conv {
        out: 5 + ObjectClass::COUNT,
        k: 1,
        stride: 1,
        pad: 0,
        act: Activation::None,
    });
    Ok(ArchSpec::new("yolo-v2", [1, 3, height, width], layers))
}

/// VGG16 (Simonyan & Zisserman), the reference network of the paper's
/// §5.4 accuracy discussion: "doubling the input resolution can
/// improve the accuracy of VGG16 ... from 80.3% to 87.4%". Provided
/// for cost analysis at arbitrary input resolutions.
///
/// # Panics
///
/// Panics if `height` or `width` is not a positive multiple of 32.
///
/// # Examples
///
/// ```
/// use adsim_dnn::models::vgg16_spec;
///
/// let cost = vgg16_spec(224, 224).cost().unwrap();
/// // The canonical ~31 GFLOPs (15.5 GMACs) at 224x224.
/// assert!(cost.gflops() > 25.0 && cost.gflops() < 40.0);
/// ```
pub fn vgg16_spec(height: usize, width: usize) -> ArchSpec {
    try_vgg16_spec(height, width)
        .unwrap_or_else(|e| panic!("VGG16 input must be a positive multiple of 32: {e}"))
}

/// Fallible form of [`vgg16_spec`] for resolutions that come from
/// configuration rather than code.
///
/// # Errors
///
/// Returns [`ModelError::UnalignedResolution`] unless `height` and
/// `width` are positive multiples of 32.
pub fn try_vgg16_spec(height: usize, width: usize) -> Result<ArchSpec, ModelError> {
    check_alignment("vgg16", height, width, 32)?;
    let relu = Activation::Relu;
    let c = |out: usize| LayerSpec::Conv { out, k: 3, stride: 1, pad: 1, act: relu };
    let mut layers = Vec::new();
    for &(reps, ch) in &[(2usize, 64usize), (2, 128), (3, 256), (3, 512), (3, 512)] {
        for _ in 0..reps {
            layers.push(c(ch));
        }
        layers.push(pool());
    }
    layers.push(LayerSpec::Flatten);
    layers.push(LayerSpec::Linear { out: 4096, act: relu });
    layers.push(LayerSpec::Linear { out: 4096, act: relu });
    layers.push(LayerSpec::Linear { out: 1000, act: Activation::None });
    Ok(ArchSpec::new("vgg16", [1, 3, height, width], layers))
}

/// Reduced-scale YOLO-like detector that runs natively: a three-stage
/// conv/pool trunk on a single-channel image followed by the same grid
/// detection head as the full model.
///
/// The input is `[1, 1, 8·grid, 8·grid]` and the output grid is
/// `grid`×`grid`, decodable with
/// [`decode_grid`](crate::detection::decode_grid).
///
/// # Panics
///
/// Panics if `grid == 0`.
///
/// # Examples
///
/// ```
/// use adsim_dnn::models::yolo_tiny;
///
/// let net = yolo_tiny(4);
/// assert_eq!(net.input_shape().dims(), &[1, 1, 32, 32]);
/// assert_eq!(net.output_shape().unwrap().dims(), &[1, 9, 4, 4]);
/// ```
pub fn yolo_tiny(grid: usize) -> Network {
    try_yolo_tiny(grid).unwrap_or_else(|e| panic!("grid must be positive: {e}"))
}

/// Fallible form of [`yolo_tiny`].
///
/// # Errors
///
/// Returns [`ModelError::ZeroSize`] when `grid == 0`, or
/// [`ModelError::Build`] if the layer stack fails shape propagation.
pub fn try_yolo_tiny(grid: usize) -> Result<Network, ModelError> {
    if grid == 0 {
        return Err(ModelError::ZeroSize { model: "yolo-tiny", parameter: "grid" });
    }
    let side = 8 * grid;
    let net = NetworkBuilder::new("yolo-tiny", [1, 1, side, side], 0xDE7)
        .conv(8, 3, 1, 1, LEAKY)
        .max_pool(2, 2)
        .conv(16, 3, 1, 1, LEAKY)
        .max_pool(2, 2)
        .conv(32, 3, 1, 1, LEAKY)
        .max_pool(2, 2)
        .conv(5 + ObjectClass::COUNT, 1, 1, 0, Activation::None)
        .build()?;
    Ok(net)
}

/// Reduced-scale YOLOv2-style detector that runs natively: the same
/// input/output geometry as [`yolo_tiny`] (`[1, 1, 8·grid, 8·grid]` in,
/// `grid`×`grid` head out) but with a richer trunk — wider stages with
/// the 1×1 bottleneck convs characteristic of the full
/// [`yolo_v2_spec`] architecture. Roughly an order of magnitude more
/// FLOPs than `yolo_tiny` at the same grid: the executable stand-in
/// for the "full model" end of the anytime quality ladder, with
/// `yolo_tiny` as the degraded variant.
///
/// # Panics
///
/// Panics if `grid == 0`.
///
/// # Examples
///
/// ```
/// use adsim_dnn::models::{yolo_tiny, yolo_v2_tiny};
///
/// let full = yolo_v2_tiny(4);
/// let tiny = yolo_tiny(4);
/// assert_eq!(full.input_shape(), tiny.input_shape());
/// assert_eq!(full.output_shape().unwrap(), tiny.output_shape().unwrap());
/// let (f, t) = (full.cost().unwrap().total.flops, tiny.cost().unwrap().total.flops);
/// assert!(f > 5 * t, "v2 trunk must cost several times the tiny trunk");
/// ```
pub fn yolo_v2_tiny(grid: usize) -> Network {
    try_yolo_v2_tiny(grid).unwrap_or_else(|e| panic!("grid must be positive: {e}"))
}

/// Fallible form of [`yolo_v2_tiny`].
///
/// # Errors
///
/// Returns [`ModelError::ZeroSize`] when `grid == 0`, or
/// [`ModelError::Build`] if the layer stack fails shape propagation.
pub fn try_yolo_v2_tiny(grid: usize) -> Result<Network, ModelError> {
    if grid == 0 {
        return Err(ModelError::ZeroSize { model: "yolo-v2-tiny", parameter: "grid" });
    }
    let side = 8 * grid;
    let net = NetworkBuilder::new("yolo-v2-tiny", [1, 1, side, side], 0xDE72)
        .conv(16, 3, 1, 1, LEAKY)
        .max_pool(2, 2)
        .conv(32, 3, 1, 1, LEAKY)
        .conv(16, 1, 1, 0, LEAKY)
        .conv(32, 3, 1, 1, LEAKY)
        .max_pool(2, 2)
        .conv(64, 3, 1, 1, LEAKY)
        .conv(32, 1, 1, 0, LEAKY)
        .conv(64, 3, 1, 1, LEAKY)
        .max_pool(2, 2)
        .conv(5 + ObjectClass::COUNT, 1, 1, 0, Activation::None)
        .build()?;
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detection::decode_grid;
    use adsim_tensor::Tensor;

    #[test]
    fn full_spec_output_is_32x_downsampled_grid() {
        let spec = yolo_v2_spec(416, 416);
        let out = spec.output_shape().unwrap();
        assert_eq!(out.dims(), &[1, 9, 13, 13]);
    }

    #[test]
    fn full_spec_flops_scale_with_resolution() {
        let a = yolo_v2_spec(416, 416).cost().unwrap().total.flops;
        let b = yolo_v2_spec(416, 832).cost().unwrap().total.flops;
        let ratio = b as f64 / a as f64;
        assert!((ratio - 2.0).abs() < 0.05, "conv FLOPs ~linear in pixels: {ratio}");
    }

    #[test]
    fn full_spec_dnn_flops_dominate() {
        let cost = yolo_v2_spec(448, 448).cost().unwrap();
        let dnn = cost.flop_fraction(|l| l.kind == "conv2d" || l.kind == "linear");
        assert!(dnn > 0.99, "DNN fraction {dnn} should exceed 99% (paper Fig. 7)");
    }

    #[test]
    #[should_panic(expected = "multiple of 32")]
    fn rejects_unaligned_resolution() {
        yolo_v2_spec(100, 100);
    }

    #[test]
    fn try_constructors_return_typed_errors() {
        assert_eq!(
            try_yolo_v2_spec(100, 100).unwrap_err(),
            ModelError::UnalignedResolution { model: "yolo-v2", height: 100, width: 100, multiple: 32 }
        );
        assert_eq!(
            try_vgg16_spec(0, 224).unwrap_err(),
            ModelError::UnalignedResolution { model: "vgg16", height: 0, width: 224, multiple: 32 }
        );
        assert_eq!(
            try_yolo_tiny(0).unwrap_err(),
            ModelError::ZeroSize { model: "yolo-tiny", parameter: "grid" }
        );
    }

    #[test]
    fn try_constructors_agree_with_panicking_forms() {
        assert_eq!(try_yolo_v2_spec(416, 416).unwrap(), yolo_v2_spec(416, 416));
        assert_eq!(try_vgg16_spec(224, 224).unwrap(), vgg16_spec(224, 224));
        let a = try_yolo_tiny(4).unwrap();
        let b = yolo_tiny(4);
        assert_eq!(a.output_shape().unwrap(), b.output_shape().unwrap());
    }

    #[test]
    fn vgg16_cost_matches_published_flops() {
        let cost = vgg16_spec(224, 224).cost().unwrap();
        // Published: ~15.5 GMACs = ~31 GFLOPs for the conv+fc stack.
        assert!(
            (cost.gflops() - 31.0).abs() < 4.0,
            "VGG16 GFLOPs {:.1}",
            cost.gflops()
        );
        assert_eq!(vgg16_spec(224, 224).output_shape().unwrap().dims(), &[1, 1000]);
    }

    #[test]
    fn vgg16_flops_scale_linearly_in_conv_resolution() {
        // The 5.4 accuracy-for-compute trade: doubling the input
        // resolution roughly quadruples the conv FLOPs (FC is fixed
        // at... actually FC input grows too; conv dominates).
        let a = vgg16_spec(224, 224).cost().unwrap().total.flops as f64;
        let b = vgg16_spec(448, 448).cost().unwrap().total.flops as f64;
        assert!(b / a > 3.5, "ratio {}", b / a);
    }

    #[test]
    fn v2_tiny_matches_tiny_geometry_and_decodes() {
        let net = yolo_v2_tiny(4);
        assert_eq!(net.input_shape().dims(), &[1, 1, 32, 32]);
        assert_eq!(net.output_shape().unwrap().dims(), yolo_tiny(4).output_shape().unwrap().dims());
        let input = Tensor::from_fn([1, 1, 32, 32], |i| ((i[2] ^ i[3]) & 1) as f32);
        let dets = decode_grid(&net.forward(&input).unwrap(), 0.0);
        assert_eq!(dets.len(), 16);
        assert_eq!(
            try_yolo_v2_tiny(0).unwrap_err(),
            ModelError::ZeroSize { model: "yolo-v2-tiny", parameter: "grid" }
        );
    }

    #[test]
    fn v2_tiny_weights_differ_from_tiny() {
        // Different seed and architecture: the variants must not alias.
        let a = yolo_v2_tiny(2);
        let b = yolo_tiny(2);
        assert_ne!(a.params().len(), b.params().len());
    }

    #[test]
    fn tiny_net_runs_and_decodes() {
        let net = yolo_tiny(4);
        let input = Tensor::from_fn([1, 1, 32, 32], |i| ((i[2] ^ i[3]) & 1) as f32);
        let out = net.forward(&input).unwrap();
        // With random weights we only require structural validity:
        // decodable output and scores in range.
        let dets = decode_grid(&out, 0.0);
        assert_eq!(dets.len(), 16, "threshold 0 keeps every cell");
        for d in dets {
            assert!(d.score >= 0.0 && d.score <= 1.0);
            assert!(d.bbox.cx >= 0.0 && d.bbox.cx <= 1.0);
        }
    }
}
