//! Network definitions for the paper's two DNN bottlenecks.
//!
//! Each model exists in two forms:
//!
//! * a *full-scale* [`ArchSpec`] matching the published architecture's
//!   layer structure, used for exact cost analysis (FLOPs/bytes) that
//!   drives the accelerator latency models — analyzable at any input
//!   resolution without allocating weights;
//! * a *reduced-scale* [`Network`](crate::Network) that is small enough
//!   to actually execute in tests, examples and the native pipeline,
//!   while exercising the identical layer kinds and decode paths.

mod error;
mod goturn;
mod shared;
mod spec;
mod yolo;

pub use error::ModelError;
pub use goturn::{goturn_spec, goturn_tiny, try_goturn_tiny};
pub use shared::{
    goturn_tiny_shared, try_yolo_tiny_shared, try_yolo_v2_tiny_shared, yolo_tiny_shared,
    yolo_v2_tiny_shared,
};
pub use spec::{ArchSpec, LayerSpec};
pub use yolo::{
    try_vgg16_spec, try_yolo_tiny, try_yolo_v2_spec, try_yolo_v2_tiny, vgg16_spec, yolo_tiny,
    yolo_v2_spec, yolo_v2_tiny,
};
