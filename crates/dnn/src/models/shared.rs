//! Process-wide shared instances of the reduced-scale models.
//!
//! Every [`yolo_tiny`](super::yolo_tiny) / [`goturn_tiny`](super::goturn_tiny)
//! call allocates a fresh copy of the weights. That is correct but
//! wasteful at fleet scale: a campaign running hundreds of vehicle
//! cells would hold hundreds of identical weight copies — the largest
//! allocation in the pipeline, duplicated per vehicle. The paper's
//! fleet framing ("heavy traffic from millions of users") makes model
//! weights the canonical read-only shared asset.
//!
//! The constructors here build each model **once** per process and
//! hand out clones. Because tensor storage is `Arc`-backed
//! copy-on-write, a [`Network`] clone is a few pointer bumps and the
//! clones share every parameter buffer — observable through
//! [`Network::shares_weights`]. Inference never writes to weights, so
//! the copy-on-write detach never triggers.
//!
//! # Examples
//!
//! ```
//! use adsim_dnn::models::{goturn_tiny_shared, yolo_tiny_shared};
//!
//! let a = yolo_tiny_shared(4);
//! let b = yolo_tiny_shared(4);
//! assert!(a.shares_weights(&b));
//! assert!(goturn_tiny_shared().shares_weights(&goturn_tiny_shared()));
//! ```

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use super::error::ModelError;
use super::goturn::try_goturn_tiny;
use super::yolo::{try_yolo_tiny, try_yolo_v2_tiny};
use crate::network::Network;

/// One cached network per YOLO grid size (the native pipeline uses a
/// single size, but tests exercise several).
static YOLO_CACHE: OnceLock<Mutex<HashMap<usize, Network>>> = OnceLock::new();

/// One cached `yolo-v2-tiny` per grid size, separate from the tiny
/// cache. The anytime governor's model-variant knob flips a detector
/// between the two caches, so a switch is a pointer-bump clone of an
/// already-built network — never a weight copy.
static YOLO_V2_CACHE: OnceLock<Mutex<HashMap<usize, Network>>> = OnceLock::new();

/// The GOTURN input shape is fixed, so a single slot suffices.
static GOTURN_CACHE: OnceLock<Network> = OnceLock::new();

/// A clone of the process-wide `yolo-tiny` instance for `grid`,
/// sharing all weight storage with every other clone for the same
/// grid. Identical weights to [`super::yolo_tiny`] (same seed).
///
/// # Panics
///
/// Panics if `grid == 0`.
pub fn yolo_tiny_shared(grid: usize) -> Network {
    try_yolo_tiny_shared(grid).unwrap_or_else(|e| panic!("grid must be positive: {e}"))
}

/// Fallible form of [`yolo_tiny_shared`].
///
/// # Errors
///
/// Returns [`ModelError::ZeroSize`] when `grid == 0`.
pub fn try_yolo_tiny_shared(grid: usize) -> Result<Network, ModelError> {
    let cache = YOLO_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("yolo cache poisoned");
    if let Some(net) = map.get(&grid) {
        return Ok(net.clone());
    }
    let net = try_yolo_tiny(grid)?;
    map.insert(grid, net.clone());
    Ok(net)
}

/// A clone of the process-wide `yolo-v2-tiny` instance for `grid`,
/// sharing all weight storage with every other clone for the same
/// grid. Identical weights to [`super::yolo_v2_tiny`] (same seed).
///
/// # Panics
///
/// Panics if `grid == 0`.
pub fn yolo_v2_tiny_shared(grid: usize) -> Network {
    try_yolo_v2_tiny_shared(grid).unwrap_or_else(|e| panic!("grid must be positive: {e}"))
}

/// Fallible form of [`yolo_v2_tiny_shared`].
///
/// # Errors
///
/// Returns [`ModelError::ZeroSize`] when `grid == 0`.
pub fn try_yolo_v2_tiny_shared(grid: usize) -> Result<Network, ModelError> {
    let cache = YOLO_V2_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("yolo-v2 cache poisoned");
    if let Some(net) = map.get(&grid) {
        return Ok(net.clone());
    }
    let net = try_yolo_v2_tiny(grid)?;
    map.insert(grid, net.clone());
    Ok(net)
}

/// A clone of the process-wide `goturn-tiny` instance, sharing all
/// weight storage with every other clone. Identical weights to
/// [`super::goturn_tiny`] (same seed).
pub fn goturn_tiny_shared() -> Network {
    GOTURN_CACHE
        .get_or_init(|| try_goturn_tiny().expect("goturn_tiny layer stack is shape-consistent"))
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsim_tensor::Tensor;

    #[test]
    fn two_networks_from_same_spec_share_storage() {
        let a = yolo_tiny_shared(4);
        let b = yolo_tiny_shared(4);
        assert!(a.shares_weights(&b), "same-grid clones share every parameter buffer");
        // Pointer equality, not just value equality.
        for (x, y) in a.params().iter().zip(b.params()) {
            assert_eq!(x.storage_ptr(), y.storage_ptr());
        }
        let g1 = goturn_tiny_shared();
        let g2 = goturn_tiny_shared();
        assert!(g1.shares_weights(&g2));
    }

    #[test]
    fn different_grids_do_not_share() {
        let a = yolo_tiny_shared(2);
        let b = yolo_tiny_shared(4);
        assert!(!a.shares_weights(&b));
    }

    #[test]
    fn v2_cache_is_shared_and_disjoint_from_tiny() {
        let a = yolo_v2_tiny_shared(4);
        let b = yolo_v2_tiny_shared(4);
        assert!(a.shares_weights(&b), "same-grid v2 clones share storage");
        let t = yolo_tiny_shared(4);
        assert!(!a.shares_weights(&t), "variant caches must not alias");
    }

    #[test]
    fn shared_weights_match_fresh_construction() {
        let shared = yolo_tiny_shared(4);
        let fresh = super::super::yolo_tiny(4);
        assert!(!shared.shares_weights(&fresh), "fresh build allocates its own copy");
        for (s, f) in shared.params().iter().zip(fresh.params()) {
            assert_eq!(s.as_slice(), f.as_slice(), "same seed, same values");
        }
        let input = Tensor::from_fn([1, 1, 32, 32], |i| ((i[2] ^ i[3]) & 1) as f32);
        assert_eq!(
            shared.forward(&input).unwrap(),
            fresh.forward(&input).unwrap(),
            "inference is bit-identical through shared weights"
        );
    }

    #[test]
    fn inference_does_not_detach_shared_storage() {
        let net = goturn_tiny_shared();
        let before: Vec<_> = net.params().iter().map(|t| t.storage_ptr()).collect();
        net.forward(&Tensor::zeros([1, 2, 32, 32])).unwrap();
        let after: Vec<_> = net.params().iter().map(|t| t.storage_ptr()).collect();
        assert_eq!(before, after, "forward never writes weights, so CoW never fires");
    }
}
