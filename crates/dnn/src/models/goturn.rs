use super::error::ModelError;
use super::spec::{ArchSpec, LayerSpec};
use crate::layer::Activation;
use crate::network::{Network, NetworkBuilder};

/// Full-scale GOTURN-style tracking architecture: an AlexNet-like
/// convolutional trunk over the stacked (previous-crop, current-crop)
/// pair, followed by three 4096-wide fully-connected layers regressing
/// the target bounding box (paper §3.1.2, Fig. 4).
///
/// The published GOTURN runs two weight-shared CaffeNet trunks and
/// concatenates their features; this spec stacks both RGB crops into a
/// six-channel input processed by one trunk of the same depth, which
/// preserves the layer structure and total arithmetic within a few
/// percent while remaining a sequential graph.
///
/// # Examples
///
/// ```
/// use adsim_dnn::models::goturn_spec;
///
/// let cost = goturn_spec().cost().unwrap();
/// assert!(cost.gflops() > 1.0);
/// ```
pub fn goturn_spec() -> ArchSpec {
    let relu = Activation::Relu;
    ArchSpec::new(
        "goturn",
        // Two 227x227 RGB crops stacked channel-wise.
        [1, 6, 227, 227],
        vec![
            LayerSpec::Conv { out: 96, k: 11, stride: 4, pad: 0, act: relu },
            LayerSpec::MaxPool { window: 3, stride: 2 },
            LayerSpec::Conv { out: 256, k: 5, stride: 1, pad: 2, act: relu },
            LayerSpec::MaxPool { window: 3, stride: 2 },
            LayerSpec::Conv { out: 384, k: 3, stride: 1, pad: 1, act: relu },
            LayerSpec::Conv { out: 384, k: 3, stride: 1, pad: 1, act: relu },
            LayerSpec::Conv { out: 256, k: 3, stride: 1, pad: 1, act: relu },
            LayerSpec::MaxPool { window: 3, stride: 2 },
            LayerSpec::Flatten,
            LayerSpec::Linear { out: 4096, act: relu },
            LayerSpec::Linear { out: 4096, act: relu },
            LayerSpec::Linear { out: 4096, act: relu },
            // Bounding-box regression: (cx, cy, w, h).
            LayerSpec::Linear { out: 4, act: Activation::None },
        ],
    )
}

/// Reduced-scale GOTURN-like tracker that runs natively.
///
/// Input `[1, 2, 32, 32]`: the previous frame's target crop and the
/// current frame's search-region crop, stacked as two grayscale
/// channels. Output `[1, 4]`: sigmoid-squashed `(cx, cy, w, h)` of the
/// target inside the search region.
///
/// # Examples
///
/// ```
/// use adsim_dnn::models::goturn_tiny;
/// use adsim_tensor::Tensor;
///
/// let net = goturn_tiny();
/// let out = net.forward(&Tensor::zeros([1, 2, 32, 32])).unwrap();
/// assert_eq!(out.shape().dims(), &[1, 4]);
/// ```
pub fn goturn_tiny() -> Network {
    try_goturn_tiny().expect("goturn_tiny layer stack is shape-consistent")
}

/// Fallible form of [`goturn_tiny`].
///
/// # Errors
///
/// Returns [`ModelError::Build`] if the layer stack fails shape
/// propagation (it cannot with the fixed stack below, but the decode
/// path is typed rather than panicking).
pub fn try_goturn_tiny() -> Result<Network, ModelError> {
    let net = NetworkBuilder::new("goturn-tiny", [1, 2, 32, 32], 0x607)
        .conv(8, 5, 2, 2, Activation::Relu)
        .max_pool(2, 2)
        .conv(16, 3, 1, 1, Activation::Relu)
        .flatten()
        .linear(64, Activation::Relu)
        .linear(4, Activation::Sigmoid)
        .build()?;
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsim_tensor::Tensor;

    #[test]
    fn full_spec_regresses_four_outputs() {
        assert_eq!(goturn_spec().output_shape().unwrap().dims(), &[1, 4]);
    }

    #[test]
    fn full_spec_dnn_dominates_cycles() {
        let cost = goturn_spec().cost().unwrap();
        let dnn = cost.flop_fraction(|l| l.kind == "conv2d" || l.kind == "linear");
        assert!(dnn > 0.98, "DNN fraction {dnn} (paper Fig. 7: 99.0%)");
    }

    #[test]
    fn tiny_output_is_normalized_bbox() {
        let net = goturn_tiny();
        let out = net
            .forward(&Tensor::from_fn([1, 2, 32, 32], |i| (i[2] + i[3]) as f32 / 64.0))
            .unwrap();
        for &v in out.iter() {
            assert!((0.0..=1.0).contains(&v), "sigmoid output in range, got {v}");
        }
    }

    #[test]
    fn tiny_is_sensitive_to_input() {
        let net = goturn_tiny();
        let a = net.forward(&Tensor::filled([1, 2, 32, 32], 0.0)).unwrap();
        let b = net.forward(&Tensor::filled([1, 2, 32, 32], 1.0)).unwrap();
        assert_ne!(a, b, "different crops must regress different boxes");
    }
}
