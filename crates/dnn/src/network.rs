use crate::cost::NetworkCost;
use crate::layer::{Activation, Layer};
use crate::{Result, WeightInit};
use adsim_runtime::Runtime;
use adsim_tensor::{Shape, Tensor, TensorError};

/// A sequential feed-forward network.
///
/// Built with [`NetworkBuilder`], which validates layer compatibility
/// as layers are appended so that a constructed `Network` can always
/// run any input matching its declared input shape.
///
/// # Examples
///
/// ```
/// use adsim_dnn::{Activation, NetworkBuilder};
/// use adsim_tensor::Tensor;
///
/// let net = NetworkBuilder::new("demo", [1, 1, 8, 8], 42)
///     .conv(4, 3, 1, 1, Activation::LeakyRelu(0.1))
///     .max_pool(2, 2)
///     .flatten()
///     .linear(10, Activation::None)
///     .build()
///     .unwrap();
/// let out = net.forward(&Tensor::zeros([1, 1, 8, 8])).unwrap();
/// assert_eq!(out.shape().dims(), &[1, 10]);
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    name: String,
    input_shape: Shape,
    layers: Vec<Layer>,
}

impl Network {
    /// Assembles a network from pre-validated parts (used by the
    /// optimization passes in [`crate::fuse`]).
    pub(crate) fn from_parts(name: String, input_shape: Shape, layers: Vec<Layer>) -> Self {
        Self { name, input_shape, layers }
    }

    /// The network's descriptive name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared input shape (batch dimension included).
    pub fn input_shape(&self) -> &Shape {
        &self.input_shape
    }

    /// The layers in execution order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Every parameter tensor in the network, in layer order.
    pub fn params(&self) -> Vec<&Tensor> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// Total number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.params().iter().map(|t| t.len()).sum()
    }

    /// Whether every parameter tensor of `self` shares its underlying
    /// storage with the corresponding tensor of `other` — the pointer-
    /// equality form of the fleet's "weights allocated once" guarantee.
    /// Networks with different layer structure trivially return false.
    pub fn shares_weights(&self, other: &Network) -> bool {
        let (a, b) = (self.params(), other.params());
        a.len() == b.len() && a.iter().zip(&b).all(|(x, y)| x.ptr_eq(y))
    }

    /// Output shape obtained by propagating the input shape through
    /// every layer.
    ///
    /// # Errors
    ///
    /// Returns an error if any layer rejects its input shape; cannot
    /// happen for networks produced by [`NetworkBuilder::build`].
    pub fn output_shape(&self) -> Result<Shape> {
        let mut shape = self.input_shape.clone();
        for layer in &self.layers {
            shape = layer.output_shape(&shape)?;
        }
        Ok(shape)
    }

    /// Runs the network on `input`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `input` does not match
    /// the declared input shape, or propagates kernel errors.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        self.forward_with(&Runtime::serial(), input)
    }

    /// Runs the network on `input` with every layer's kernels
    /// distributed over `rt`'s worker pool.
    ///
    /// Layers still execute in sequence — inference is a dependency
    /// chain — but each convolution/linear/pool/activation partitions
    /// its own work across threads. Results are bit-identical to
    /// [`Network::forward`] on any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `input` does not match
    /// the declared input shape, or propagates kernel errors.
    pub fn forward_with(&self, rt: &Runtime, input: &Tensor) -> Result<Tensor> {
        if input.shape() != &self.input_shape {
            return Err(TensorError::ShapeMismatch {
                op: "network_forward",
                lhs: input.shape().clone(),
                rhs: self.input_shape.clone(),
            });
        }
        self.run_layers(rt, input)
    }

    /// Runs the network on a `[n, ...]` batch whose per-image dims
    /// match the declared input shape, with any `n ≥ 1`.
    ///
    /// Every layer kind is batch-agnostic, so the whole batch flows
    /// through each kernel as one call — a batch of `n` detector
    /// frames shares one GEMM per conv layer instead of re-streaming
    /// the weights `n` times. Thanks to the tensor crate's
    /// column-position-invariant GEMM tails, the output for image `b`
    /// is **bit-identical** to running that image alone through
    /// [`Network::forward_with`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `input`'s rank or
    /// per-image dims differ from the declared input shape, or
    /// propagates kernel errors.
    pub fn forward_batched(&self, rt: &Runtime, input: &Tensor) -> Result<Tensor> {
        let want = self.input_shape.dims();
        let got = input.shape().dims();
        if got.len() != want.len() || got[1..] != want[1..] {
            return Err(TensorError::ShapeMismatch {
                op: "network_forward_batched",
                lhs: input.shape().clone(),
                rhs: self.input_shape.clone(),
            });
        }
        self.run_layers(rt, input)
    }

    /// Shared layer loop for [`Network::forward_with`] and
    /// [`Network::forward_batched`]; assumes `input` already validated.
    fn run_layers(&self, rt: &Runtime, input: &Tensor) -> Result<Tensor> {
        let mut x = input.clone();
        if adsim_trace::enabled() {
            // The traced path propagates the shape alongside the data so
            // each layer span carries its exact FLOP/byte cost from
            // `Layer::cost` (DESIGN.md §8). Compute is unchanged.
            let _net = adsim_trace::span("dnn.forward");
            let mut shape = input.shape().clone();
            for (i, layer) in self.layers.iter().enumerate() {
                let cost = layer.cost(&shape)?;
                shape = layer.output_shape(&shape)?;
                let sp = adsim_trace::span_at(span_name(layer.kind()), i)
                    .with_cost(cost.flops, cost.total_bytes());
                x = layer.forward_with(rt, &x)?;
                drop(sp);
            }
        } else {
            for layer in &self.layers {
                x = layer.forward_with(rt, &x)?;
            }
        }
        Ok(x)
    }

    /// Exact cost of one forward pass at the declared input shape.
    ///
    /// # Errors
    ///
    /// Propagates shape errors (impossible for built networks).
    pub fn cost(&self) -> Result<NetworkCost> {
        let mut shape = self.input_shape.clone();
        let mut layers = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            layers.push(layer.cost(&shape)?);
            shape = layer.output_shape(&shape)?;
        }
        Ok(NetworkCost::from_layers(layers))
    }
}

/// Trace span name for a layer kind. Spans need `&'static str` names,
/// so the mapping is a closed match over [`Layer::kind`] values.
fn span_name(kind: &'static str) -> &'static str {
    match kind {
        "conv2d" => "dnn.conv2d",
        "maxpool2d" => "dnn.maxpool2d",
        "batchnorm" => "dnn.batchnorm",
        "flatten" => "dnn.flatten",
        "linear" => "dnn.linear",
        "activation" => "dnn.activation",
        _ => "dnn.layer",
    }
}

/// Incrementally constructs a [`Network`], validating shapes as layers
/// are appended and initializing parameters deterministically from the
/// seed.
#[derive(Debug)]
pub struct NetworkBuilder {
    name: String,
    input_shape: Shape,
    current: Result<Shape>,
    layers: Vec<Layer>,
    init: WeightInit,
}

impl NetworkBuilder {
    /// Starts a network with the given name, input shape (NCHW for
    /// convolutional fronts) and weight seed.
    pub fn new(name: impl Into<String>, input_shape: impl Into<Shape>, seed: u64) -> Self {
        let input_shape = input_shape.into();
        Self {
            name: name.into(),
            current: Ok(input_shape.clone()),
            input_shape,
            layers: Vec::new(),
            init: WeightInit::new(seed),
        }
    }

    /// Appends a convolution with `out_channels` filters of size
    /// `k`×`k`, given stride/padding and a fused activation.
    pub fn conv(
        mut self,
        out_channels: usize,
        k: usize,
        stride: usize,
        pad: usize,
        activation: Activation,
    ) -> Self {
        let Ok(shape) = self.current.clone() else { return self };
        let Ok((_, c_in, _, _)) = shape.as_nchw() else {
            self.current = Err(TensorError::RankMismatch {
                op: "conv2d",
                expected: 4,
                actual: shape.rank(),
            });
            return self;
        };
        let fan_in = c_in * k * k;
        let weight = Tensor::from_vec(
            [out_channels, c_in, k, k],
            self.init.uniform(out_channels * fan_in, fan_in),
        )
        .expect("weight length matches by construction");
        let bias = Tensor::from_vec([out_channels], self.init.bias(out_channels))
            .expect("bias length matches by construction");
        self.push(Layer::Conv2d { weight, bias: Some(bias), stride, pad, activation })
    }

    /// Appends a max-pooling layer.
    pub fn max_pool(self, window: usize, stride: usize) -> Self {
        self.push(Layer::MaxPool2d { window, stride })
    }

    /// Appends an inference-time batch-norm layer with identity-ish
    /// folded statistics (deterministic small perturbations).
    pub fn batch_norm(mut self) -> Self {
        let Ok(shape) = self.current.clone() else { return self };
        let Ok((_, c, _, _)) = shape.as_nchw() else {
            self.current = Err(TensorError::RankMismatch {
                op: "batch_norm",
                expected: 4,
                actual: shape.rank(),
            });
            return self;
        };
        let gamma = Tensor::from_vec([c], self.init.uniform(c, 1).iter().map(|v| 1.0 + 0.01 * v).collect())
            .expect("length matches");
        let beta = Tensor::from_vec([c], self.init.bias(c)).expect("length matches");
        let mean = Tensor::from_vec([c], self.init.bias(c)).expect("length matches");
        let var = Tensor::filled([c], 1.0);
        self.push(Layer::BatchNorm { gamma, beta, mean, var, eps: 1e-5 })
    }

    /// Appends a flatten layer.
    pub fn flatten(self) -> Self {
        self.push(Layer::Flatten)
    }

    /// Appends a fully-connected layer with `out_features` outputs.
    pub fn linear(mut self, out_features: usize, activation: Activation) -> Self {
        let Ok(shape) = self.current.clone() else { return self };
        if shape.rank() != 2 {
            self.current = Err(TensorError::RankMismatch {
                op: "linear",
                expected: 2,
                actual: shape.rank(),
            });
            return self;
        }
        let in_f = shape.dim(1);
        let weight =
            Tensor::from_vec([out_features, in_f], self.init.uniform(out_features * in_f, in_f))
                .expect("weight length matches by construction");
        let bias = Tensor::from_vec([out_features], self.init.bias(out_features))
            .expect("bias length matches by construction");
        self.push(Layer::Linear { weight, bias: Some(bias), activation })
    }

    /// Appends a standalone activation.
    pub fn activate(self, activation: Activation) -> Self {
        self.push(Layer::Activate(activation))
    }

    /// Finishes construction.
    ///
    /// # Errors
    ///
    /// Returns the first shape error encountered while appending
    /// layers, so misconfigured architectures fail loudly at build time
    /// rather than at inference time.
    pub fn build(self) -> Result<Network> {
        self.current?;
        Ok(Network { name: self.name, input_shape: self.input_shape, layers: self.layers })
    }

    fn push(mut self, layer: Layer) -> Self {
        if let Ok(shape) = self.current.clone() {
            match layer.output_shape(&shape) {
                Ok(next) => {
                    self.current = Ok(next);
                    self.layers.push(layer);
                }
                Err(e) => self.current = Err(e),
            }
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_shapes() {
        let net = NetworkBuilder::new("t", [1, 3, 16, 16], 1)
            .conv(8, 3, 1, 1, Activation::Relu)
            .max_pool(2, 2)
            .conv(16, 3, 1, 1, Activation::Relu)
            .max_pool(2, 2)
            .flatten()
            .linear(5, Activation::None)
            .build()
            .unwrap();
        assert_eq!(net.output_shape().unwrap().dims(), &[1, 5]);
        assert_eq!(net.layers().len(), 6);
    }

    #[test]
    fn builder_rejects_incompatible_layers() {
        let err = NetworkBuilder::new("bad", [1, 1, 4, 4], 1)
            .max_pool(8, 8)
            .build();
        assert!(err.is_err());
        // Linear before flatten on a 4-D tensor is also a build error.
        let err = NetworkBuilder::new("bad2", [1, 1, 4, 4], 1)
            .linear(3, Activation::None)
            .build();
        assert!(err.is_err());
    }

    #[test]
    fn forward_validates_input_shape() {
        let net = NetworkBuilder::new("t", [1, 1, 4, 4], 1)
            .flatten()
            .linear(2, Activation::None)
            .build()
            .unwrap();
        assert!(net.forward(&Tensor::zeros([1, 1, 4, 4])).is_ok());
        assert!(net.forward(&Tensor::zeros([1, 1, 5, 5])).is_err());
    }

    #[test]
    fn forward_is_deterministic_across_equal_seeds() {
        let make = || {
            NetworkBuilder::new("t", [1, 1, 6, 6], 99)
                .conv(2, 3, 1, 0, Activation::Tanh)
                .flatten()
                .linear(3, Activation::Sigmoid)
                .build()
                .unwrap()
        };
        let input = Tensor::from_fn([1, 1, 6, 6], |i| (i[2] * 6 + i[3]) as f32 / 36.0);
        let a = make().forward(&input).unwrap();
        let b = make().forward(&input).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn forward_with_matches_forward_on_any_thread_count() {
        let net = NetworkBuilder::new("t", [2, 2, 12, 12], 7)
            .conv(6, 3, 1, 1, Activation::LeakyRelu(0.1))
            .max_pool(2, 2)
            .conv(8, 3, 1, 1, Activation::Relu)
            .flatten()
            .linear(10, Activation::Sigmoid)
            .build()
            .unwrap();
        let input = Tensor::from_fn([2, 2, 12, 12], |i| {
            ((i[0] * 31 + i[1] * 17 + i[2] * 5 + i[3]) % 19) as f32 / 19.0 - 0.4
        });
        let serial = net.forward(&input).unwrap();
        for threads in [1, 2, 8] {
            let par = net.forward_with(&Runtime::new(threads), &input).unwrap();
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn forward_batched_matches_per_image_forward_bitwise() {
        let net = NetworkBuilder::new("t", [1, 2, 12, 12], 7)
            .conv(6, 3, 1, 1, Activation::LeakyRelu(0.1))
            .max_pool(2, 2)
            .conv(8, 3, 1, 1, Activation::Relu)
            .flatten()
            .linear(10, Activation::Sigmoid)
            .build()
            .unwrap();
        let batch = Tensor::from_fn([5, 2, 12, 12], |i| {
            ((i[0] * 31 + i[1] * 17 + i[2] * 5 + i[3]) % 19) as f32 / 19.0 - 0.4
        });
        let per_img = 2 * 12 * 12;
        for threads in [1, 2, 8] {
            let rt = Runtime::new(threads);
            let batched = net.forward_batched(&rt, &batch).unwrap();
            assert_eq!(batched.shape().dims(), &[5, 10]);
            for img in 0..5 {
                let single = Tensor::from_vec(
                    [1, 2, 12, 12],
                    batch.as_slice()[img * per_img..(img + 1) * per_img].to_vec(),
                )
                .unwrap();
                let one = net.forward_with(&rt, &single).unwrap();
                for (j, (x, y)) in
                    batched.as_slice()[img * 10..(img + 1) * 10].iter().zip(one.iter()).enumerate()
                {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "img={img} out={j} t={threads}: {x} vs {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn forward_batched_validates_per_image_dims() {
        let net = NetworkBuilder::new("t", [1, 1, 4, 4], 1)
            .flatten()
            .linear(2, Activation::None)
            .build()
            .unwrap();
        let rt = Runtime::serial();
        assert!(net.forward_batched(&rt, &Tensor::zeros([3, 1, 4, 4])).is_ok());
        assert!(net.forward_batched(&rt, &Tensor::zeros([3, 1, 5, 5])).is_err());
        assert!(net.forward_batched(&rt, &Tensor::zeros([1, 4, 4])).is_err());
    }

    #[test]
    fn cost_matches_layer_count() {
        let net = NetworkBuilder::new("t", [1, 1, 8, 8], 1)
            .conv(4, 3, 1, 1, Activation::Relu)
            .batch_norm()
            .max_pool(2, 2)
            .flatten()
            .linear(2, Activation::None)
            .build()
            .unwrap();
        let cost = net.cost().unwrap();
        assert_eq!(cost.layers.len(), 5);
        assert!(cost.total.flops > 0);
        let conv_share = cost.flop_fraction(|l| l.kind == "conv2d" || l.kind == "linear");
        assert!(conv_share > 0.8, "affine layers dominate: {conv_share}");
    }

    #[test]
    fn batch_norm_keeps_values_finite() {
        let net = NetworkBuilder::new("t", [1, 2, 4, 4], 5)
            .conv(2, 3, 1, 1, Activation::None)
            .batch_norm()
            .build()
            .unwrap();
        let out = net.forward(&Tensor::filled([1, 2, 4, 4], 0.5)).unwrap();
        assert!(out.iter().all(|v| v.is_finite()));
    }
}
