//! Int8 quantization for DNN inference.
//!
//! The ASIC accelerators the paper builds on (EIE, Eyeriss — §4.2.3)
//! run fixed-point arithmetic: weights and activations are quantized
//! to 8 bits and accumulated in wide integers. This module provides
//! symmetric per-tensor int8 quantization with i32 accumulation, the
//! matching matmul/convolution kernels, and quantization of whole
//! [`Network`](crate::Network)s — enabling the precision-vs-cost
//! ablation in `adsim-bench`.
//!
//! # Examples
//!
//! ```
//! use adsim_dnn::quant::QuantTensor;
//! use adsim_tensor::Tensor;
//!
//! let t = Tensor::from_vec([4], vec![-1.0, -0.5, 0.5, 1.0]).unwrap();
//! let q = QuantTensor::quantize(&t);
//! let back = q.dequantize();
//! for (a, b) in t.iter().zip(back.iter()) {
//!     assert!((a - b).abs() < 0.01);
//! }
//! ```

use crate::Result;
use adsim_tensor::{ops, Shape, Tensor, TensorError};

/// A symmetric per-tensor int8 quantized tensor: `value ≈ data × scale`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantTensor {
    shape: Shape,
    data: Vec<i8>,
    scale: f32,
}

impl QuantTensor {
    /// Quantizes a float tensor: the scale maps the largest magnitude
    /// to ±127.
    pub fn quantize(t: &Tensor) -> QuantTensor {
        let max = t.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let scale = if max == 0.0 { 1.0 } else { max / 127.0 };
        let data = t
            .iter()
            .map(|&x| (x / scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
        QuantTensor { shape: t.shape().clone(), data, scale }
    }

    /// The quantization scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The tensor shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The raw int8 values.
    pub fn as_i8(&self) -> &[i8] {
        &self.data
    }

    /// Reconstructs the float tensor.
    pub fn dequantize(&self) -> Tensor {
        let data = self.data.iter().map(|&q| q as f32 * self.scale).collect();
        Tensor::from_vec(self.shape.clone(), data).expect("length preserved")
    }

    /// Worst-case absolute quantization error for this tensor.
    pub fn max_abs_error(&self, original: &Tensor) -> f32 {
        self.dequantize()
            .iter()
            .zip(original.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Bytes occupied by the quantized representation (4× smaller than
    /// f32 — the memory-footprint win the paper's on-chip buffers rely
    /// on).
    pub fn bytes(&self) -> usize {
        self.data.len()
    }
}

/// Int8 matrix multiply with i32 accumulation:
/// `[m, k] × [k, n] → [m, n]` floats (dequantized through the product
/// of the input scales).
///
/// # Errors
///
/// Returns an error on rank or inner-dimension mismatch.
pub fn quant_matmul(a: &QuantTensor, b: &QuantTensor) -> Result<Tensor> {
    if a.shape.rank() != 2 || b.shape.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "quant_matmul",
            expected: 2,
            actual: if a.shape.rank() != 2 { a.shape.rank() } else { b.shape.rank() },
        });
    }
    let (m, k) = (a.shape.dim(0), a.shape.dim(1));
    let (k2, n) = (b.shape.dim(0), b.shape.dim(1));
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "quant_matmul",
            lhs: a.shape.clone(),
            rhs: b.shape.clone(),
        });
    }
    let mut out = vec![0f32; m * n];
    let rescale = a.scale * b.scale;
    for i in 0..m {
        let arow = &a.data[i * k..(i + 1) * k];
        for j in 0..n {
            let mut acc = 0i32;
            for (kk, &av) in arow.iter().enumerate() {
                acc += av as i32 * b.data[kk * n + j] as i32;
            }
            out[i * n + j] = acc as f32 * rescale;
        }
    }
    Tensor::from_vec([m, n], out)
}

/// Int8 2-D convolution (im2col lowering onto [`quant_matmul`]),
/// matching [`ops::conv2d`]'s contract with quantized input and
/// weights.
///
/// # Errors
///
/// Same conditions as [`ops::conv2d`].
pub fn quant_conv2d(
    input: &Tensor,
    weight: &QuantTensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
) -> Result<Tensor> {
    let (n, _, _, _) = input.shape().as_nchw()?;
    if n != 1 {
        return Err(TensorError::InvalidParameter {
            op: "quant_conv2d",
            reason: "quantized path supports batch 1 (inference)".into(),
        });
    }
    let (c_out, c_in, kh, kw) = weight.shape.as_nchw()?;
    // Quantize the unrolled input once.
    let cols = ops::im2col(input, kh, kw, stride, pad)?;
    let qcols = QuantTensor::quantize(&cols);
    let wmat = QuantTensor {
        shape: Shape::from([c_out, c_in * kh * kw]),
        data: weight.data.clone(),
        scale: weight.scale,
    };
    let prod = quant_matmul(&wmat, &qcols)?;
    // prod is [c_out, h_out*w_out]; reshape to NCHW and add bias.
    let positions = prod.shape().dim(1);
    let (h_out, w_out) = infer_out_hw(input, kh, kw, stride, pad, positions)?;
    let mut out = prod.reshape([1, c_out, h_out, w_out])?;
    if let Some(bias) = bias {
        let data = out.as_mut_slice();
        for ch in 0..c_out {
            let b = bias.as_slice()[ch];
            for v in &mut data[ch * h_out * w_out..(ch + 1) * h_out * w_out] {
                *v += b;
            }
        }
    }
    Ok(out)
}

fn infer_out_hw(
    input: &Tensor,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    positions: usize,
) -> Result<(usize, usize)> {
    let (_, _, h, w) = input.shape().as_nchw()?;
    let h_out = ops::out_extent(h, kh, stride, pad).ok_or(TensorError::InvalidParameter {
        op: "quant_conv2d",
        reason: format!("kernel {kh}x{kw} does not fit"),
    })?;
    let w_out = ops::out_extent(w, kw, stride, pad).ok_or(TensorError::InvalidParameter {
        op: "quant_conv2d",
        reason: format!("kernel {kh}x{kw} does not fit"),
    })?;
    debug_assert_eq!(h_out * w_out, positions);
    Ok((h_out, w_out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy(shape: impl Into<Shape>, seed: u64) -> Tensor {
        let mut s = seed;
        Tensor::from_fn(shape, |_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as i32 % 256) as f32 / 128.0 - 1.0
        })
    }

    #[test]
    fn quantize_round_trip_error_is_bounded() {
        let t = noisy([64], 1);
        let q = QuantTensor::quantize(&t);
        // Half an LSB of the scale.
        assert!(q.max_abs_error(&t) <= q.scale() * 0.5 + 1e-6);
        assert_eq!(q.bytes(), 64);
    }

    #[test]
    fn zero_tensor_quantizes_cleanly() {
        let t = Tensor::zeros([8]);
        let q = QuantTensor::quantize(&t);
        assert_eq!(q.dequantize(), t);
    }

    #[test]
    fn quant_matmul_tracks_float_matmul() {
        let a = noisy([8, 16], 2);
        let b = noisy([16, 4], 3);
        let exact = ops::matmul(&a, &b).unwrap();
        let approx = quant_matmul(&QuantTensor::quantize(&a), &QuantTensor::quantize(&b)).unwrap();
        let scale = exact.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        for (x, y) in exact.iter().zip(approx.iter()) {
            assert!((x - y).abs() < 0.05 * scale.max(1.0), "{x} vs {y}");
        }
    }

    #[test]
    fn quant_conv_tracks_float_conv() {
        let input = noisy([1, 3, 10, 10], 4);
        let weight = noisy([4, 3, 3, 3], 5);
        let bias = noisy([4], 6);
        let exact = ops::conv2d(&input, &weight, Some(&bias), 1, 1).unwrap();
        let approx =
            quant_conv2d(&input, &QuantTensor::quantize(&weight), Some(&bias), 1, 1).unwrap();
        assert_eq!(exact.shape(), approx.shape());
        let scale = exact.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let mut worst = 0.0f32;
        for (x, y) in exact.iter().zip(approx.iter()) {
            worst = worst.max((x - y).abs());
        }
        assert!(worst < 0.05 * scale.max(1.0), "worst error {worst} at output scale {scale}");
    }

    #[test]
    fn quant_matmul_validates_shapes() {
        let a = QuantTensor::quantize(&Tensor::zeros([2, 3]));
        let b = QuantTensor::quantize(&Tensor::zeros([4, 2]));
        assert!(quant_matmul(&a, &b).is_err());
        let v = QuantTensor::quantize(&Tensor::zeros([3]));
        assert!(quant_matmul(&v, &a).is_err());
    }

    #[test]
    fn quant_conv_rejects_batches() {
        let input = Tensor::zeros([2, 1, 4, 4]);
        let w = QuantTensor::quantize(&Tensor::zeros([1, 1, 3, 3]));
        assert!(quant_conv2d(&input, &w, None, 1, 1).is_err());
    }

    #[test]
    fn memory_footprint_is_quarter_of_f32() {
        let t = noisy([1, 8, 16, 16], 9);
        let q = QuantTensor::quantize(&t);
        assert_eq!(q.bytes() * 4, t.len() * 4);
    }
}
