//! Int8 quantization for DNN inference.
//!
//! The ASIC accelerators the paper builds on (EIE, Eyeriss — §4.2.3)
//! run fixed-point arithmetic: weights and activations are quantized
//! to 8 bits and accumulated in wide integers. This module provides
//! symmetric int8 quantization — per-tensor or per-output-row — with
//! i32 accumulation on the SIMD int8 GEMM
//! ([`ops::matmul_i8_into`]), batched quantized convolution/linear
//! kernels, and [`QuantNetwork`]: per-layer-selectable int8 inference
//! over a float [`Network`] with measured per-layer accuracy deltas.
//!
//! # Determinism
//!
//! The int8 GEMM accumulates exactly in `i32` (no rounding), and every
//! dequantization multiply is written as the same expression on every
//! path, so quantized outputs are **bit-identical** across SIMD
//! backends, thread counts, and — because activations are quantized
//! with a *per-image* scale — across batch sizes: running a batch of
//! `n` images produces byte-for-byte the same values as `n` batch-1
//! runs.
//!
//! # Examples
//!
//! ```
//! use adsim_dnn::quant::QuantTensor;
//! use adsim_tensor::Tensor;
//!
//! let t = Tensor::from_vec([4], vec![-1.0, -0.5, 0.5, 1.0]).unwrap();
//! let q = QuantTensor::quantize(&t);
//! let back = q.dequantize();
//! for (a, b) in t.iter().zip(back.iter()) {
//!     assert!((a - b).abs() < 0.01);
//! }
//! ```

use crate::layer::Layer;
use crate::{Network, Result};
use adsim_runtime::Runtime;
use adsim_tensor::{ops, simd, Shape, Tensor, TensorError};

/// A symmetric int8 quantized tensor: `value ≈ data × scale`.
///
/// Scales are either **per-tensor** (one scale for every element, from
/// [`QuantTensor::quantize`]) or **per-row** (one scale per slice of
/// the leading dimension, from [`QuantTensor::quantize_per_row`]).
/// Per-row scales matter for weights: one saturated output channel no
/// longer forces a coarse grid onto every other channel.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantTensor {
    shape: Shape,
    data: Vec<i8>,
    /// Length 1 (per-tensor) or `shape.dim(0)` (per-row).
    scales: Vec<f32>,
}

/// Symmetric scale for a slice: maps the largest magnitude to ±127.
fn slice_scale(values: &[f32]) -> f32 {
    let max = values.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    if max == 0.0 {
        1.0
    } else {
        max / 127.0
    }
}

/// Quantizes `src` onto `dst` with the given scale.
fn quantize_slice(src: &[f32], scale: f32, dst: &mut [i8]) {
    for (d, &x) in dst.iter_mut().zip(src) {
        *d = (x / scale).round().clamp(-127.0, 127.0) as i8;
    }
}

impl QuantTensor {
    /// Quantizes a float tensor with one per-tensor scale.
    pub fn quantize(t: &Tensor) -> QuantTensor {
        let scale = slice_scale(t.as_slice());
        let mut data = vec![0i8; t.len()];
        quantize_slice(t.as_slice(), scale, &mut data);
        QuantTensor { shape: t.shape().clone(), data, scales: vec![scale] }
    }

    /// Quantizes a float tensor with one scale per leading-dimension
    /// row — for an OIHW conv filter bank or an `[out, in]` linear
    /// weight this is per-output-channel quantization.
    pub fn quantize_per_row(t: &Tensor) -> QuantTensor {
        let rows = t.shape().dim(0);
        let cols = t.len() / rows;
        let src = t.as_slice();
        let mut data = vec![0i8; t.len()];
        let mut scales = Vec::with_capacity(rows);
        for r in 0..rows {
            let scale = slice_scale(&src[r * cols..(r + 1) * cols]);
            quantize_slice(&src[r * cols..(r + 1) * cols], scale, &mut data[r * cols..(r + 1) * cols]);
            scales.push(scale);
        }
        QuantTensor { shape: t.shape().clone(), data, scales }
    }

    /// The per-tensor quantization scale (for per-row tensors, the
    /// first row's scale).
    pub fn scale(&self) -> f32 {
        self.scales[0]
    }

    /// All scales: length 1 for per-tensor, `dim(0)` for per-row.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// The scale that applies to leading-dimension row `r`.
    pub fn row_scale(&self, r: usize) -> f32 {
        if self.scales.len() == 1 {
            self.scales[0]
        } else {
            self.scales[r]
        }
    }

    /// Whether this tensor carries per-row scales.
    pub fn is_per_row(&self) -> bool {
        self.scales.len() > 1
    }

    /// The tensor shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The raw int8 values.
    pub fn as_i8(&self) -> &[i8] {
        &self.data
    }

    /// Reconstructs the float tensor.
    pub fn dequantize(&self) -> Tensor {
        let rows = self.shape.dim(0);
        let cols = self.data.len() / rows;
        let data = self
            .data
            .iter()
            .enumerate()
            .map(|(i, &q)| q as f32 * self.row_scale(i / cols))
            .collect();
        Tensor::from_vec(self.shape.clone(), data).expect("length preserved")
    }

    /// Worst-case absolute quantization error for this tensor.
    pub fn max_abs_error(&self, original: &Tensor) -> f32 {
        self.dequantize()
            .iter()
            .zip(original.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Bytes occupied by the quantized representation (4× smaller than
    /// f32 — the memory-footprint win the paper's on-chip buffers rely
    /// on).
    pub fn bytes(&self) -> usize {
        self.data.len()
    }
}

/// Int8 matrix multiply with i32 accumulation on the SIMD int8 GEMM:
/// `[m, k] × [k, n] → [m, n]` floats. `a` may carry per-row scales
/// (each output row dequantizes through its own scale); `b` must be
/// per-tensor, since a per-row scale on `b` would vary along the
/// contraction axis and cannot be factored out of the integer sum.
///
/// # Errors
///
/// Returns an error on rank or inner-dimension mismatch, or if `b` is
/// per-row quantized.
pub fn quant_matmul(a: &QuantTensor, b: &QuantTensor) -> Result<Tensor> {
    quant_matmul_with(&Runtime::serial(), a, b)
}

/// [`quant_matmul`] with the GEMM distributed over `rt`'s workers.
/// Integer accumulation is exact, so the result is bit-identical on
/// any thread count.
///
/// # Errors
///
/// Same conditions as [`quant_matmul`].
pub fn quant_matmul_with(rt: &Runtime, a: &QuantTensor, b: &QuantTensor) -> Result<Tensor> {
    if a.shape.rank() != 2 || b.shape.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "quant_matmul",
            expected: 2,
            actual: if a.shape.rank() != 2 { a.shape.rank() } else { b.shape.rank() },
        });
    }
    let (m, k) = (a.shape.dim(0), a.shape.dim(1));
    let (k2, n) = (b.shape.dim(0), b.shape.dim(1));
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "quant_matmul",
            lhs: a.shape.clone(),
            rhs: b.shape.clone(),
        });
    }
    if b.is_per_row() {
        return Err(TensorError::InvalidParameter {
            op: "quant_matmul",
            reason: "rhs must be per-tensor quantized (per-row scales vary along k)".into(),
        });
    }
    let mut acc = vec![0i32; m * n];
    ops::matmul_i8_into(rt, simd::active(), &a.data, &b.data, &mut acc, m, k, n);
    let bscale = b.scales[0];
    let mut out = vec![0f32; m * n];
    for i in 0..m {
        let rescale = a.row_scale(i) * bscale;
        for (o, &s) in out[i * n..(i + 1) * n].iter_mut().zip(&acc[i * n..(i + 1) * n]) {
            *o = s as f32 * rescale;
        }
    }
    Tensor::from_vec([m, n], out)
}

/// Int8 2-D convolution over a full `[n, c, h, w]` batch: im2col
/// lowering onto one int8 GEMM, matching [`ops::conv2d`]'s contract
/// with quantized weights.
///
/// Activations are quantized with a **per-image** scale (each image's
/// own max magnitude), so a batch of `n` produces bit-identical values
/// to `n` single-image calls; weights may be per-tensor or per-row
/// (per-output-channel) quantized.
///
/// # Errors
///
/// Same conditions as [`ops::conv2d`].
pub fn quant_conv2d(
    input: &Tensor,
    weight: &QuantTensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
) -> Result<Tensor> {
    quant_conv2d_with(&Runtime::serial(), input, weight, bias, stride, pad)
}

/// [`quant_conv2d`] with the GEMM distributed over `rt`'s workers;
/// bit-identical on any thread count.
///
/// # Errors
///
/// Same conditions as [`ops::conv2d`].
pub fn quant_conv2d_with(
    rt: &Runtime,
    input: &Tensor,
    weight: &QuantTensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
) -> Result<Tensor> {
    let (n, c_in, _, _) = input.shape().as_nchw()?;
    let (c_out, wc_in, kh, kw) = weight.shape.as_nchw()?;
    if c_in != wc_in {
        return Err(TensorError::InvalidParameter {
            op: "quant_conv2d",
            reason: format!("input has {c_in} channels, weight expects {wc_in}"),
        });
    }
    let k = c_in * kh * kw;
    // Unroll the whole batch into appended column bands: image `b`
    // owns columns `b·cols_n..(b+1)·cols_n`.
    let cols = ops::im2col_batched(input, kh, kw, stride, pad)?;
    let total = cols.shape().dim(1);
    let cols_n = total / n;
    let cs = cols.as_slice();
    // Per-image activation quantization: image `b`'s scale comes from
    // its own column band only, which is exactly the band a batch-1
    // call would quantize — the root of batch-size invariance.
    let mut qcols = vec![0i8; k * total];
    let mut act_scales = vec![0f32; n];
    for b in 0..n {
        let mut max = 0.0f32;
        for row in 0..k {
            let band = &cs[row * total + b * cols_n..row * total + (b + 1) * cols_n];
            max = band.iter().fold(max, |m, &x| m.max(x.abs()));
        }
        let scale = if max == 0.0 { 1.0 } else { max / 127.0 };
        act_scales[b] = scale;
        for row in 0..k {
            let off = row * total + b * cols_n;
            quantize_slice(&cs[off..off + cols_n], scale, &mut qcols[off..off + cols_n]);
        }
    }
    // One GEMM for the whole batch: [c_out, k] × [k, n·cols_n].
    let mut acc = vec![0i32; c_out * total];
    ops::matmul_i8_into(rt, simd::active(), &weight.data, &qcols, &mut acc, c_out, k, total);
    let (h_out, w_out) = infer_out_hw(input, kh, kw, stride, pad, cols_n)?;
    // Dequantize + bias, scattering column bands back to NCHW.
    let mut out = Tensor::zeros([n, c_out, h_out, w_out]);
    let od = out.as_mut_slice();
    for b in 0..n {
        for oc in 0..c_out {
            let rescale = weight.row_scale(oc) * act_scales[b];
            let bias_v = bias.map_or(0.0, |t| t.as_slice()[oc]);
            let src = &acc[oc * total + b * cols_n..oc * total + (b + 1) * cols_n];
            let dst = &mut od[(b * c_out + oc) * cols_n..(b * c_out + oc + 1) * cols_n];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = s as f32 * rescale + bias_v;
            }
        }
    }
    Ok(out)
}

/// Int8 fully-connected layer over a `[n, in]` batch: each input row
/// is quantized with its own scale (batch-size invariance, as in
/// [`quant_conv2d`]) and the contraction runs on the int8 GEMM as
/// `weight × inputᵀ`.
///
/// # Errors
///
/// Returns an error on rank or inner-dimension mismatch.
pub fn quant_linear_with(
    rt: &Runtime,
    input: &Tensor,
    weight: &QuantTensor,
    bias: Option<&Tensor>,
) -> Result<Tensor> {
    if input.shape().rank() != 2 || weight.shape.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "quant_linear",
            expected: 2,
            actual: if input.shape().rank() != 2 { input.shape().rank() } else { weight.shape.rank() },
        });
    }
    let (n, in_f) = (input.shape().dim(0), input.shape().dim(1));
    let (out_f, w_in) = (weight.shape.dim(0), weight.shape.dim(1));
    if in_f != w_in {
        return Err(TensorError::ShapeMismatch {
            op: "quant_linear",
            lhs: input.shape().clone(),
            rhs: weight.shape.clone(),
        });
    }
    let xs = input.as_slice();
    // Quantize each input row with its own scale, transposed to
    // `[in_f, n]` so rows of the GEMM's B operand are contraction
    // steps.
    let mut xt = vec![0i8; in_f * n];
    let mut x_scales = vec![0f32; n];
    for i in 0..n {
        let row = &xs[i * in_f..(i + 1) * in_f];
        let scale = slice_scale(row);
        x_scales[i] = scale;
        for (kk, &x) in row.iter().enumerate() {
            xt[kk * n + i] = (x / scale).round().clamp(-127.0, 127.0) as i8;
        }
    }
    let mut acc = vec![0i32; out_f * n];
    ops::matmul_i8_into(rt, simd::active(), &weight.data, &xt, &mut acc, out_f, in_f, n);
    let mut out = vec![0f32; n * out_f];
    for o in 0..out_f {
        let bias_v = bias.map_or(0.0, |t| t.as_slice()[o]);
        let wscale = weight.row_scale(o);
        for i in 0..n {
            out[i * out_f + o] = acc[o * n + i] as f32 * (wscale * x_scales[i]) + bias_v;
        }
    }
    Tensor::from_vec([n, out_f], out)
}

fn infer_out_hw(
    input: &Tensor,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    positions: usize,
) -> Result<(usize, usize)> {
    let (_, _, h, w) = input.shape().as_nchw()?;
    let h_out = ops::out_extent(h, kh, stride, pad).ok_or(TensorError::InvalidParameter {
        op: "quant_conv2d",
        reason: format!("kernel {kh}x{kw} does not fit"),
    })?;
    let w_out = ops::out_extent(w, kw, stride, pad).ok_or(TensorError::InvalidParameter {
        op: "quant_conv2d",
        reason: format!("kernel {kh}x{kw} does not fit"),
    })?;
    debug_assert_eq!(h_out * w_out, positions);
    Ok((h_out, w_out))
}

/// Numeric precision of one layer in a [`QuantNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerPrecision {
    /// Run the original float kernels.
    F32,
    /// Run the int8 lane path (conv/linear layers only).
    Int8,
}

/// Per-layer accuracy delta of int8 vs f32, from
/// [`QuantNetwork::layer_errors`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerError {
    /// Layer index in the network.
    pub index: usize,
    /// Layer kind name (`"conv2d"`, `"linear"`).
    pub kind: &'static str,
    /// Worst absolute difference between the int8 and f32 outputs of
    /// this layer **on the same (f32) input** — local error, not
    /// accumulated drift.
    pub max_abs_error: f32,
    /// Largest f32 output magnitude, for normalizing the error.
    pub output_scale: f32,
}

/// A float [`Network`] with per-output-channel int8 weights for every
/// conv/linear layer and a per-layer precision policy: each eligible
/// layer runs either the f32 kernels or the int8 lane path. Ineligible
/// layers (pooling, batch-norm, reshape, activations) always run f32 —
/// they are memory-bound and gain nothing from int8 here.
///
/// The wrapped network is cloned cheaply: parameter tensors share
/// storage (`Arc` copy-on-write), so a `QuantNetwork` adds only the
/// int8 weight copies (~¼ of the f32 parameter bytes).
#[derive(Debug, Clone)]
pub struct QuantNetwork {
    net: Network,
    qweights: Vec<Option<QuantTensor>>,
    precision: Vec<LayerPrecision>,
}

impl QuantNetwork {
    /// Quantizes every conv/linear weight of `net` per output channel;
    /// eligible layers default to [`LayerPrecision::Int8`].
    pub fn from_network(net: &Network) -> QuantNetwork {
        let qweights: Vec<Option<QuantTensor>> = net
            .layers()
            .iter()
            .map(|l| match l {
                Layer::Conv2d { weight, .. } | Layer::Linear { weight, .. } => {
                    Some(QuantTensor::quantize_per_row(weight))
                }
                _ => None,
            })
            .collect();
        let precision = qweights
            .iter()
            .map(|q| if q.is_some() { LayerPrecision::Int8 } else { LayerPrecision::F32 })
            .collect();
        QuantNetwork { net: net.clone(), qweights, precision }
    }

    /// The wrapped float network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The per-layer precision policy, indexed like
    /// [`Network::layers`].
    pub fn precision(&self) -> &[LayerPrecision] {
        &self.precision
    }

    /// Sets the precision of layer `index`. Requesting `Int8` on an
    /// ineligible layer is a no-op at inference time (the layer has no
    /// quantized weights and falls back to f32).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_precision(&mut self, index: usize, precision: LayerPrecision) {
        self.precision[index] = precision;
    }

    /// Number of layers that will actually run int8.
    pub fn int8_layers(&self) -> usize {
        self.qweights
            .iter()
            .zip(&self.precision)
            .filter(|(q, p)| q.is_some() && **p == LayerPrecision::Int8)
            .count()
    }

    /// Int8 weight bytes held alongside the float weights.
    pub fn quant_bytes(&self) -> usize {
        self.qweights.iter().flatten().map(QuantTensor::bytes).sum()
    }

    /// Runs the network on `input` (any batch size whose per-image
    /// dims match the declared input shape), serially.
    ///
    /// # Errors
    ///
    /// Same conditions as [`QuantNetwork::forward_with`].
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        self.forward_with(&Runtime::serial(), input)
    }

    /// Runs the network on `input` with kernels distributed over `rt`.
    /// Layers flagged [`LayerPrecision::Int8`] run the int8 lane path;
    /// everything else runs the float kernels. Accepts any batch size
    /// (the per-image dims must match the declared input shape), and
    /// is bit-identical across batch sizes and thread counts.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if per-image dims differ
    /// from the declared input shape, or propagates kernel errors.
    pub fn forward_with(&self, rt: &Runtime, input: &Tensor) -> Result<Tensor> {
        let want = self.net.input_shape().dims();
        let got = input.shape().dims();
        if got.len() != want.len() || got[1..] != want[1..] {
            return Err(TensorError::ShapeMismatch {
                op: "quant_network_forward",
                lhs: input.shape().clone(),
                rhs: self.net.input_shape().clone(),
            });
        }
        let mut x = input.clone();
        for i in 0..self.net.layers().len() {
            x = self.layer_forward(rt, i, &x)?;
        }
        Ok(x)
    }

    /// Runs layer `i` on `x`, honoring the precision policy.
    fn layer_forward(&self, rt: &Runtime, i: usize, x: &Tensor) -> Result<Tensor> {
        let layer = &self.net.layers()[i];
        let int8 = self.precision[i] == LayerPrecision::Int8;
        match (layer, &self.qweights[i]) {
            (Layer::Conv2d { bias, stride, pad, activation, .. }, Some(qw)) if int8 => {
                let out = quant_conv2d_with(rt, x, qw, bias.as_ref(), *stride, *pad)?;
                Ok(activation.apply_with(rt, &out))
            }
            (Layer::Linear { bias, activation, .. }, Some(qw)) if int8 => {
                let out = quant_linear_with(rt, x, qw, bias.as_ref())?;
                Ok(activation.apply_with(rt, &out))
            }
            _ => layer.forward_with(rt, x),
        }
    }

    /// Measures each eligible layer's int8-vs-f32 accuracy on `input`:
    /// both kernels run on the **same f32 layer input** (produced by
    /// the float network), so each entry isolates one layer's
    /// quantization error rather than accumulated drift.
    ///
    /// # Errors
    ///
    /// Propagates shape/kernel errors.
    pub fn layer_errors(&self, rt: &Runtime, input: &Tensor) -> Result<Vec<LayerError>> {
        let mut x = input.clone();
        let mut report = Vec::new();
        for (i, layer) in self.net.layers().iter().enumerate() {
            let f32_out = layer.forward_with(rt, &x)?;
            if self.qweights[i].is_some() {
                let q_out = self.layer_forward(rt, i, &x)?;
                let mut worst = 0.0f32;
                let mut scale = 0.0f32;
                for (a, b) in q_out.iter().zip(f32_out.iter()) {
                    worst = worst.max((a - b).abs());
                    scale = scale.max(b.abs());
                }
                report.push(LayerError {
                    index: i,
                    kind: layer.kind(),
                    max_abs_error: worst,
                    output_scale: scale,
                });
            }
            x = f32_out;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, NetworkBuilder};

    fn noisy(shape: impl Into<Shape>, seed: u64) -> Tensor {
        let mut s = seed;
        Tensor::from_fn(shape, |_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as i32 % 256) as f32 / 128.0 - 1.0
        })
    }

    #[test]
    fn quantize_round_trip_error_is_bounded() {
        let t = noisy([64], 1);
        let q = QuantTensor::quantize(&t);
        // Half an LSB of the scale.
        assert!(q.max_abs_error(&t) <= q.scale() * 0.5 + 1e-6);
        assert_eq!(q.bytes(), 64);
    }

    #[test]
    fn zero_tensor_quantizes_cleanly() {
        let t = Tensor::zeros([8]);
        let q = QuantTensor::quantize(&t);
        assert_eq!(q.dequantize(), t);
    }

    #[test]
    fn per_row_scales_beat_per_tensor_on_skewed_rows() {
        // Row 0 is 100× larger than row 1: a per-tensor scale wastes
        // almost the whole grid on row 0 and butchers row 1.
        let t = Tensor::from_vec(
            [2, 4],
            vec![100.0, -50.0, 25.0, 75.0, 0.9, -0.4, 0.7, -0.2],
        )
        .unwrap();
        let per_tensor = QuantTensor::quantize(&t);
        let per_row = QuantTensor::quantize_per_row(&t);
        assert!(per_row.is_per_row());
        assert_eq!(per_row.scales().len(), 2);
        let row1 = Tensor::from_vec([4], vec![0.9, -0.4, 0.7, -0.2]).unwrap();
        let pt_row1 = Tensor::from_vec([4], per_tensor.dequantize().as_slice()[4..].to_vec()).unwrap();
        let pr_row1 = Tensor::from_vec([4], per_row.dequantize().as_slice()[4..].to_vec()).unwrap();
        let pt_err: f32 = pt_row1.iter().zip(row1.iter()).map(|(a, b)| (a - b).abs()).fold(0.0, f32::max);
        let pr_err: f32 = pr_row1.iter().zip(row1.iter()).map(|(a, b)| (a - b).abs()).fold(0.0, f32::max);
        assert!(pr_err < pt_err / 10.0, "per-row {pr_err} vs per-tensor {pt_err}");
    }

    #[test]
    fn quant_matmul_tracks_float_matmul() {
        let a = noisy([8, 16], 2);
        let b = noisy([16, 4], 3);
        let exact = ops::matmul(&a, &b).unwrap();
        let approx = quant_matmul(&QuantTensor::quantize(&a), &QuantTensor::quantize(&b)).unwrap();
        let scale = exact.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        for (x, y) in exact.iter().zip(approx.iter()) {
            assert!((x - y).abs() < 0.05 * scale.max(1.0), "{x} vs {y}");
        }
    }

    #[test]
    fn quant_matmul_accepts_per_row_lhs_rejects_per_row_rhs() {
        let a = noisy([6, 16], 7);
        let b = noisy([16, 5], 8);
        let out = quant_matmul(&QuantTensor::quantize_per_row(&a), &QuantTensor::quantize(&b))
            .unwrap();
        assert_eq!(out.shape().dims(), &[6, 5]);
        assert!(
            quant_matmul(&QuantTensor::quantize(&a), &QuantTensor::quantize_per_row(&b)).is_err()
        );
    }

    #[test]
    fn quant_matmul_is_thread_invariant() {
        let a = QuantTensor::quantize_per_row(&noisy([9, 40], 11));
        let b = QuantTensor::quantize(&noisy([40, 17], 12));
        let serial = quant_matmul(&a, &b).unwrap();
        for t in [2, 8] {
            let par = quant_matmul_with(&Runtime::new(t), &a, &b).unwrap();
            assert_eq!(par, serial, "threads={t}");
        }
    }

    #[test]
    fn quant_conv_tracks_float_conv() {
        let input = noisy([1, 3, 10, 10], 4);
        let weight = noisy([4, 3, 3, 3], 5);
        let bias = noisy([4], 6);
        let exact = ops::conv2d(&input, &weight, Some(&bias), 1, 1).unwrap();
        let approx =
            quant_conv2d(&input, &QuantTensor::quantize(&weight), Some(&bias), 1, 1).unwrap();
        assert_eq!(exact.shape(), approx.shape());
        let scale = exact.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let mut worst = 0.0f32;
        for (x, y) in exact.iter().zip(approx.iter()) {
            worst = worst.max((x - y).abs());
        }
        assert!(worst < 0.05 * scale.max(1.0), "worst error {worst} at output scale {scale}");
    }

    #[test]
    fn quant_conv_batch_matches_per_image_bitwise() {
        // Per-image activation scales make the batched int8 conv
        // byte-identical to single-image calls — the quantized twin of
        // the f32 batched-conv parity contract.
        let input = noisy([3, 2, 9, 9], 13);
        let weight = QuantTensor::quantize_per_row(&noisy([4, 2, 3, 3], 14));
        let bias = noisy([4], 15);
        let per_img = 2 * 9 * 9;
        let batched = quant_conv2d(&input, &weight, Some(&bias), 1, 1).unwrap();
        let out_len = batched.len() / 3;
        for img in 0..3 {
            let single = Tensor::from_vec(
                [1, 2, 9, 9],
                input.as_slice()[img * per_img..(img + 1) * per_img].to_vec(),
            )
            .unwrap();
            let one = quant_conv2d(&single, &weight, Some(&bias), 1, 1).unwrap();
            let got = &batched.as_slice()[img * out_len..(img + 1) * out_len];
            for (i, (x, y)) in got.iter().zip(one.iter()).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "img={img} elem={i}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn quant_linear_batch_matches_per_row_bitwise() {
        let input = noisy([4, 24], 21);
        let weight = QuantTensor::quantize_per_row(&noisy([7, 24], 22));
        let bias = noisy([7], 23);
        let rt = Runtime::serial();
        let batched = quant_linear_with(&rt, &input, &weight, Some(&bias)).unwrap();
        for i in 0..4 {
            let row =
                Tensor::from_vec([1, 24], input.as_slice()[i * 24..(i + 1) * 24].to_vec()).unwrap();
            let one = quant_linear_with(&rt, &row, &weight, Some(&bias)).unwrap();
            for (j, (x, y)) in
                batched.as_slice()[i * 7..(i + 1) * 7].iter().zip(one.iter()).enumerate()
            {
                assert_eq!(x.to_bits(), y.to_bits(), "row={i} col={j}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn quant_matmul_validates_shapes() {
        let a = QuantTensor::quantize(&Tensor::zeros([2, 3]));
        let b = QuantTensor::quantize(&Tensor::zeros([4, 2]));
        assert!(quant_matmul(&a, &b).is_err());
        let v = QuantTensor::quantize(&Tensor::zeros([3]));
        assert!(quant_matmul(&v, &a).is_err());
    }

    #[test]
    fn memory_footprint_is_quarter_of_f32() {
        let t = noisy([1, 8, 16, 16], 9);
        let q = QuantTensor::quantize(&t);
        assert_eq!(q.bytes() * 4, t.len() * 4);
    }

    fn tiny_net() -> Network {
        NetworkBuilder::new("q", [1, 2, 12, 12], 31)
            .conv(4, 3, 1, 1, Activation::LeakyRelu(0.1))
            .max_pool(2, 2)
            .conv(6, 3, 1, 1, Activation::Relu)
            .flatten()
            .linear(5, Activation::None)
            .build()
            .unwrap()
    }

    #[test]
    fn quant_network_tracks_float_network() {
        let net = tiny_net();
        let qnet = QuantNetwork::from_network(&net);
        assert_eq!(qnet.int8_layers(), 3);
        assert!(qnet.quant_bytes() > 0);
        let input = noisy([1, 2, 12, 12], 41);
        let exact = net.forward(&input).unwrap();
        let approx = qnet.forward(&input).unwrap();
        let scale = exact.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        for (x, y) in exact.iter().zip(approx.iter()) {
            assert!((x - y).abs() < 0.1 * scale.max(1.0), "{x} vs {y}");
        }
    }

    #[test]
    fn all_f32_policy_is_bit_identical_to_float_network() {
        let net = tiny_net();
        let mut qnet = QuantNetwork::from_network(&net);
        for i in 0..net.layers().len() {
            qnet.set_precision(i, LayerPrecision::F32);
        }
        assert_eq!(qnet.int8_layers(), 0);
        let input = noisy([1, 2, 12, 12], 42);
        let exact = net.forward(&input).unwrap();
        let same = qnet.forward(&input).unwrap();
        for (x, y) in exact.iter().zip(same.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn quant_network_batch_matches_per_image_bitwise() {
        let net = tiny_net();
        let qnet = QuantNetwork::from_network(&net);
        let input = noisy([3, 2, 12, 12], 43);
        let per_img = 2 * 12 * 12;
        let batched = qnet.forward(&input).unwrap();
        let out_len = batched.len() / 3;
        for img in 0..3 {
            let single = Tensor::from_vec(
                [1, 2, 12, 12],
                input.as_slice()[img * per_img..(img + 1) * per_img].to_vec(),
            )
            .unwrap();
            let one = qnet.forward(&single).unwrap();
            for (i, (x, y)) in
                batched.as_slice()[img * out_len..(img + 1) * out_len].iter().zip(one.iter()).enumerate()
            {
                assert_eq!(x.to_bits(), y.to_bits(), "img={img} elem={i}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn layer_errors_reports_each_eligible_layer() {
        let net = tiny_net();
        let qnet = QuantNetwork::from_network(&net);
        let input = noisy([1, 2, 12, 12], 44);
        let errs = qnet.layer_errors(&Runtime::serial(), &input).unwrap();
        assert_eq!(errs.len(), 3);
        assert_eq!(errs[0].kind, "conv2d");
        assert_eq!(errs[2].kind, "linear");
        for e in &errs {
            assert!(e.max_abs_error.is_finite());
            assert!(e.max_abs_error < 0.05 * e.output_scale.max(1.0), "{e:?}");
        }
    }
}
