//! A layer-graph deep-neural-network inference engine with exact
//! per-layer cost accounting.
//!
//! The paper identifies the DNN portions of object detection (YOLO) and
//! object tracking (GOTURN) as two of the three computational
//! bottlenecks of an autonomous driving system, consuming 99.4 % and
//! 99.0 % of those engines' cycles respectively (Fig. 7). This crate
//! provides:
//!
//! * [`Layer`] / [`Network`]: a sequential layer graph with a forward
//!   pass built on [`adsim_tensor`]'s kernels,
//! * [`cost`]: exact FLOP / parameter / byte accounting per layer,
//!   which drives the accelerator latency models in `adsim-platform`,
//! * [`models`]: YOLO-like detection and GOTURN-like tracking network
//!   definitions at full paper scale (for cost analysis) and reduced
//!   scale (for functional execution in tests and examples),
//! * [`detection`]: bounding boxes, grid decoding, IoU and
//!   non-maximum suppression.
//!
//! # Examples
//!
//! ```
//! use adsim_dnn::models;
//! use adsim_tensor::Tensor;
//!
//! let net = models::yolo_tiny(8);
//! let input = Tensor::zeros(net.input_shape().clone());
//! let out = net.forward(&input).unwrap();
//! assert_eq!(out.shape(), &net.output_shape().unwrap());
//! assert!(net.cost().unwrap().total.flops > 0);
//! ```

pub mod cost;
pub mod detection;
pub mod fuse;
mod init;
mod layer;
pub mod models;
mod network;
pub mod quant;

pub use cost::{LayerCost, NetworkCost};
pub use init::WeightInit;
pub use layer::{Activation, Layer};
pub use network::{Network, NetworkBuilder};

/// Result alias re-using the tensor error type, since every failure a
/// network can hit is ultimately a tensor shape/parameter failure.
pub type Result<T> = adsim_tensor::Result<T>;
