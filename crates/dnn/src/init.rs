use adsim_stats::Rng64;

/// Deterministic pseudo-random weight initializer.
///
/// The paper's characterization results depend on the *structure* of the
/// networks (shapes → FLOPs and bytes), not on trained weight values, so
/// the workspace initializes weights reproducibly from a seed. He-style
/// fan-in scaling keeps activations in a numerically sane range so the
/// functional pipeline (decode, NMS, regression) behaves like a real
/// network's plumbing.
///
/// # Examples
///
/// ```
/// use adsim_dnn::WeightInit;
///
/// let mut a = WeightInit::new(42);
/// let mut b = WeightInit::new(42);
/// assert_eq!(a.uniform(16, 4), b.uniform(16, 4));
/// ```
#[derive(Debug)]
pub struct WeightInit {
    rng: Rng64,
}

impl WeightInit {
    /// Creates an initializer from a seed; equal seeds yield equal
    /// weight streams.
    pub fn new(seed: u64) -> Self {
        Self { rng: Rng64::new(seed) }
    }

    /// Draws `n` weights uniformly from `±sqrt(2 / fan_in)`.
    ///
    /// # Panics
    ///
    /// Panics if `fan_in` is zero.
    pub fn uniform(&mut self, n: usize, fan_in: usize) -> Vec<f32> {
        assert!(fan_in > 0, "fan_in must be positive");
        let bound = (2.0 / fan_in as f32).sqrt();
        (0..n).map(|_| self.rng.range_f32(-bound, bound)).collect()
    }

    /// Draws `n` small bias values uniformly from `±0.01`.
    pub fn bias(&mut self, n: usize) -> Vec<f32> {
        (0..n).map(|_| self.rng.range_f32(-0.01, 0.01)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = WeightInit::new(7);
        let mut b = WeightInit::new(7);
        assert_eq!(a.uniform(100, 9), b.uniform(100, 9));
        assert_eq!(a.bias(10), b.bias(10));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = WeightInit::new(1);
        let mut b = WeightInit::new(2);
        assert_ne!(a.uniform(100, 9), b.uniform(100, 9));
    }

    #[test]
    fn he_bound_scales_with_fan_in() {
        let mut w = WeightInit::new(3);
        let wide = w.uniform(1000, 4);
        let narrow = w.uniform(1000, 400);
        let max_wide = wide.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let max_narrow = narrow.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        assert!(max_wide > max_narrow);
        assert!(max_wide <= (2.0f32 / 4.0).sqrt());
    }

    #[test]
    #[should_panic(expected = "fan_in")]
    fn zero_fan_in_panics() {
        WeightInit::new(0).uniform(1, 0);
    }
}
