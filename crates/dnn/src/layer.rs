use crate::cost::LayerCost;
use crate::Result;
use adsim_runtime::Runtime;
use adsim_tensor::{ops, Shape, Tensor, TensorError};

/// Element-wise non-linearity applied after a layer's affine part.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Activation {
    /// No activation (identity).
    #[default]
    None,
    /// Rectified linear unit.
    Relu,
    /// Leaky ReLU with the given negative slope (YOLO uses 0.1).
    LeakyRelu(f32),
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    pub(crate) fn apply_with(self, rt: &Runtime, t: &Tensor) -> Tensor {
        match self {
            Activation::None => t.clone(),
            Activation::Relu => ops::relu_with(rt, t),
            Activation::LeakyRelu(a) => ops::leaky_relu_with(rt, t, a),
            Activation::Sigmoid => ops::sigmoid_with(rt, t),
            Activation::Tanh => ops::tanh_with(rt, t),
        }
    }

    fn flops_per_elem(self) -> u64 {
        match self {
            Activation::None => 0,
            Activation::Relu | Activation::LeakyRelu(_) => 1,
            // exp + div dominate; count a representative 4 ops.
            Activation::Sigmoid | Activation::Tanh => 4,
        }
    }
}

/// One layer of a sequential [`Network`](crate::Network).
///
/// Layers own their parameters; construction validates nothing beyond
/// tensor invariants — shape compatibility is checked when the layer is
/// appended to a network (see
/// [`NetworkBuilder`](crate::NetworkBuilder)).
#[derive(Debug, Clone, PartialEq)]
pub enum Layer {
    /// 2-D convolution with optional bias and fused activation.
    Conv2d {
        /// OIHW filter bank.
        weight: Tensor,
        /// Optional per-output-channel bias.
        bias: Option<Tensor>,
        /// Spatial stride.
        stride: usize,
        /// Symmetric zero padding.
        pad: usize,
        /// Fused activation applied to the output.
        activation: Activation,
    },
    /// 2-D max pooling.
    MaxPool2d {
        /// Square window extent.
        window: usize,
        /// Spatial stride.
        stride: usize,
    },
    /// Inference-time batch normalization (folded statistics).
    BatchNorm {
        /// Per-channel scale.
        gamma: Tensor,
        /// Per-channel shift.
        beta: Tensor,
        /// Per-channel running mean.
        mean: Tensor,
        /// Per-channel running variance.
        var: Tensor,
        /// Variance epsilon.
        eps: f32,
    },
    /// Collapses `[n, ...]` to `[n, features]`.
    Flatten,
    /// Fully-connected layer with optional bias and fused activation.
    Linear {
        /// `[out_features, in_features]` weight matrix.
        weight: Tensor,
        /// Optional `[out_features]` bias.
        bias: Option<Tensor>,
        /// Fused activation applied to the output.
        activation: Activation,
    },
    /// Standalone activation layer.
    Activate(Activation),
}

impl Layer {
    /// Short human-readable kind name, used in cost tables.
    pub fn kind(&self) -> &'static str {
        match self {
            Layer::Conv2d { .. } => "conv2d",
            Layer::MaxPool2d { .. } => "maxpool2d",
            Layer::BatchNorm { .. } => "batchnorm",
            Layer::Flatten => "flatten",
            Layer::Linear { .. } => "linear",
            Layer::Activate(_) => "activation",
        }
    }

    /// The layer's parameter tensors (weights, biases, folded batch-norm
    /// statistics) in a fixed order. Parameterless layers return an
    /// empty list. Used for weight-sharing checks and byte accounting.
    pub fn params(&self) -> Vec<&Tensor> {
        match self {
            Layer::Conv2d { weight, bias, .. } | Layer::Linear { weight, bias, .. } => {
                let mut p = vec![weight];
                p.extend(bias.as_ref());
                p
            }
            Layer::BatchNorm { gamma, beta, mean, var, .. } => vec![gamma, beta, mean, var],
            Layer::MaxPool2d { .. } | Layer::Flatten | Layer::Activate(_) => Vec::new(),
        }
    }

    /// Runs the layer forward.
    ///
    /// # Errors
    ///
    /// Propagates any shape/parameter error from the underlying kernel.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        self.forward_with(&Runtime::serial(), input)
    }

    /// Runs the layer forward on a worker pool: the compute-heavy
    /// kernels (convolution, linear, pooling, activations) distribute
    /// across `rt`'s threads, while cheap reshapes stay serial.
    ///
    /// # Errors
    ///
    /// Propagates any shape/parameter error from the underlying kernel.
    pub fn forward_with(&self, rt: &Runtime, input: &Tensor) -> Result<Tensor> {
        match self {
            Layer::Conv2d { weight, bias, stride, pad, activation } => {
                let out = ops::conv2d_with(rt, input, weight, bias.as_ref(), *stride, *pad)?;
                Ok(activation.apply_with(rt, &out))
            }
            Layer::MaxPool2d { window, stride } => {
                ops::max_pool2d_with(rt, input, *window, *stride)
            }
            Layer::BatchNorm { gamma, beta, mean, var, eps } => {
                ops::batch_norm_with(rt, input, gamma, beta, mean, var, *eps)
            }
            Layer::Flatten => {
                let n = input.shape().dim(0);
                let features = input.len() / n;
                input.reshape([n, features])
            }
            Layer::Linear { weight, bias, activation } => {
                let out = ops::linear_with(rt, input, weight, bias.as_ref())?;
                Ok(activation.apply_with(rt, &out))
            }
            Layer::Activate(a) => Ok(a.apply_with(rt, input)),
        }
    }

    /// Computes the output shape for a given input shape without
    /// running the layer.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible with the
    /// layer (wrong rank, channel mismatch, window does not fit).
    pub fn output_shape(&self, input: &Shape) -> Result<Shape> {
        match self {
            Layer::Conv2d { weight, stride, pad, .. } => {
                let (n, c_in, h, w) = input.as_nchw()?;
                let (c_out, wc_in, kh, kw) = weight.shape().as_nchw()?;
                if c_in != wc_in {
                    return Err(TensorError::InvalidParameter {
                        op: "conv2d",
                        reason: format!("input has {c_in} channels, weight expects {wc_in}"),
                    });
                }
                let h_out = ops::out_extent(h, kh, *stride, *pad);
                let w_out = ops::out_extent(w, kw, *stride, *pad);
                match (h_out, w_out) {
                    (Some(a), Some(b)) => Ok(Shape::from([n, c_out, a, b])),
                    _ => Err(TensorError::InvalidParameter {
                        op: "conv2d",
                        reason: format!("kernel {kh}x{kw} does not fit {h}x{w}"),
                    }),
                }
            }
            Layer::MaxPool2d { window, stride } => {
                let (n, c, h, w) = input.as_nchw()?;
                let h_out = ops::out_extent(h, *window, *stride, 0);
                let w_out = ops::out_extent(w, *window, *stride, 0);
                match (h_out, w_out) {
                    (Some(a), Some(b)) => Ok(Shape::from([n, c, a, b])),
                    _ => Err(TensorError::InvalidParameter {
                        op: "maxpool2d",
                        reason: format!("window {window} does not fit {h}x{w}"),
                    }),
                }
            }
            Layer::BatchNorm { gamma, .. } => {
                let (_, c, _, _) = input.as_nchw()?;
                if gamma.shape().dim(0) != c {
                    return Err(TensorError::InvalidParameter {
                        op: "batch_norm",
                        reason: format!(
                            "input has {c} channels, parameters expect {}",
                            gamma.shape().dim(0)
                        ),
                    });
                }
                Ok(input.clone())
            }
            Layer::Flatten => {
                let n = input.dim(0);
                Ok(Shape::from([n, input.len() / n]))
            }
            Layer::Linear { weight, .. } => {
                if input.rank() != 2 {
                    return Err(TensorError::RankMismatch {
                        op: "linear",
                        expected: 2,
                        actual: input.rank(),
                    });
                }
                let (out_f, in_f) = (weight.shape().dim(0), weight.shape().dim(1));
                if input.dim(1) != in_f {
                    return Err(TensorError::ShapeMismatch {
                        op: "linear",
                        lhs: input.clone(),
                        rhs: weight.shape().clone(),
                    });
                }
                Ok(Shape::from([input.dim(0), out_f]))
            }
            Layer::Activate(_) => Ok(input.clone()),
        }
    }

    /// Exact compute/memory cost of running this layer on the given
    /// input shape. A multiply-accumulate counts as 2 FLOPs, matching
    /// how the paper's accelerator literature reports throughput.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible.
    pub fn cost(&self, input: &Shape) -> Result<LayerCost> {
        let out = self.output_shape(input)?;
        let out_elems = out.len() as u64;
        let cost = match self {
            Layer::Conv2d { weight, bias, activation, .. } => {
                let (_, c_in, kh, kw) = weight.shape().as_nchw()?;
                let macs = out_elems * (c_in * kh * kw) as u64;
                let params =
                    weight.len() as u64 + bias.as_ref().map_or(0, |b| b.len() as u64);
                LayerCost {
                    kind: self.kind(),
                    flops: 2 * macs
                        + bias.as_ref().map_or(0, |_| out_elems)
                        + activation.flops_per_elem() * out_elems,
                    params,
                    output_elems: out_elems,
                    input_elems: input.len() as u64,
                }
            }
            Layer::MaxPool2d { window, .. } => LayerCost {
                kind: self.kind(),
                flops: out_elems * (window * window) as u64,
                params: 0,
                output_elems: out_elems,
                input_elems: input.len() as u64,
            },
            Layer::BatchNorm { gamma, .. } => LayerCost {
                kind: self.kind(),
                flops: 2 * out_elems,
                params: 4 * gamma.len() as u64,
                output_elems: out_elems,
                input_elems: input.len() as u64,
            },
            Layer::Flatten => LayerCost {
                kind: self.kind(),
                flops: 0,
                params: 0,
                output_elems: out_elems,
                input_elems: input.len() as u64,
            },
            Layer::Linear { weight, bias, activation } => {
                let (out_f, in_f) = (weight.shape().dim(0), weight.shape().dim(1));
                let batch = input.dim(0) as u64;
                LayerCost {
                    kind: self.kind(),
                    flops: batch
                        * (2 * (out_f * in_f) as u64
                            + bias.as_ref().map_or(0, |_| out_f as u64)
                            + activation.flops_per_elem() * out_f as u64),
                    params: weight.len() as u64
                        + bias.as_ref().map_or(0, |b| b.len() as u64),
                    output_elems: out_elems,
                    input_elems: input.len() as u64,
                }
            }
            Layer::Activate(a) => LayerCost {
                kind: self.kind(),
                flops: a.flops_per_elem() * out_elems,
                params: 0,
                output_elems: out_elems,
                input_elems: input.len() as u64,
            },
        };
        Ok(cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv_layer() -> Layer {
        Layer::Conv2d {
            weight: Tensor::filled([2, 1, 3, 3], 0.1),
            bias: Some(Tensor::zeros([2])),
            stride: 1,
            pad: 1,
            activation: Activation::Relu,
        }
    }

    #[test]
    fn conv_output_shape_matches_forward() {
        let layer = conv_layer();
        let input = Tensor::zeros([1, 1, 8, 8]);
        let predicted = layer.output_shape(input.shape()).unwrap();
        let actual = layer.forward(&input).unwrap();
        assert_eq!(&predicted, actual.shape());
        assert_eq!(predicted.dims(), &[1, 2, 8, 8]);
    }

    #[test]
    fn conv_cost_counts_macs() {
        let layer = conv_layer();
        let input = Shape::from([1, 1, 8, 8]);
        let c = layer.cost(&input).unwrap();
        // 2 out channels * 8*8 positions * 1*3*3 taps * 2 + bias + relu
        let out_elems = 2 * 8 * 8;
        assert_eq!(c.flops, 2 * out_elems * 9 + out_elems + out_elems);
        assert_eq!(c.params, 2 * 9 + 2);
    }

    #[test]
    fn flatten_collapses_trailing_dims() {
        let input = Tensor::zeros([2, 3, 4, 4]);
        let out = Layer::Flatten.forward(&input).unwrap();
        assert_eq!(out.shape().dims(), &[2, 48]);
    }

    #[test]
    fn linear_shape_validation() {
        let layer = Layer::Linear {
            weight: Tensor::zeros([10, 48]),
            bias: None,
            activation: Activation::None,
        };
        assert!(layer.output_shape(&Shape::from([1, 48])).is_ok());
        assert!(layer.output_shape(&Shape::from([1, 47])).is_err());
        assert!(layer.output_shape(&Shape::from([48])).is_err());
    }

    #[test]
    fn activation_layers_preserve_shape_and_apply() {
        let input = Tensor::from_vec([1, 2], vec![-1.0, 1.0]).unwrap();
        let out = Layer::Activate(Activation::Relu).forward(&input).unwrap();
        assert_eq!(out.as_slice(), &[0.0, 1.0]);
        let out = Layer::Activate(Activation::LeakyRelu(0.5)).forward(&input).unwrap();
        assert_eq!(out.as_slice(), &[-0.5, 1.0]);
    }

    #[test]
    fn pool_cost_scales_with_window() {
        let small = Layer::MaxPool2d { window: 2, stride: 2 };
        let input = Shape::from([1, 1, 8, 8]);
        let c = small.cost(&input).unwrap();
        assert_eq!(c.flops, 16 * 4);
        assert_eq!(c.output_elems, 16);
    }

    #[test]
    fn batchnorm_channel_mismatch_rejected() {
        let layer = Layer::BatchNorm {
            gamma: Tensor::zeros([3]),
            beta: Tensor::zeros([3]),
            mean: Tensor::zeros([3]),
            var: Tensor::filled([3], 1.0),
            eps: 1e-5,
        };
        assert!(layer.output_shape(&Shape::from([1, 2, 4, 4])).is_err());
        assert!(layer.output_shape(&Shape::from([1, 3, 4, 4])).is_ok());
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(conv_layer().kind(), "conv2d");
        assert_eq!(Layer::Flatten.kind(), "flatten");
    }
}
