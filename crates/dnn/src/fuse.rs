//! Inference-graph optimization: batch-norm folding.
//!
//! Deployed inference engines (cuDNN graphs, FPGA bitstreams, ASIC
//! datapaths — everything the paper accelerates with) never execute
//! batch normalization as a separate layer: its folded statistics are
//! algebraically merged into the preceding convolution's weights and
//! bias. This pass performs that fold, shrinking both layer count and
//! per-frame FLOPs with bit-identical semantics up to floating-point
//! rounding.

use crate::layer::Layer;
use crate::network::Network;
use adsim_tensor::Tensor;

/// Result of a fusion pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuseReport {
    /// Batch-norm layers folded away.
    pub folded: usize,
    /// Layers remaining.
    pub layers: usize,
}

/// Folds every `Conv2d → BatchNorm` pair of `net` into a single
/// convolution with adjusted weights and bias. Batch-norm layers not
/// preceded by a convolution are left in place.
///
/// For `y = γ·(conv(x, W) + b − μ)/√(σ²+ε) + β`, the folded layer is
/// `conv(x, W·s) + (b − μ)·s + β` with `s = γ/√(σ²+ε)` per output
/// channel.
pub fn fold_batch_norm(net: &Network) -> (Network, FuseReport) {
    let mut layers: Vec<Layer> = Vec::with_capacity(net.layers().len());
    let mut folded = 0;
    for layer in net.layers() {
        match layer {
            Layer::BatchNorm { gamma, beta, mean, var, eps } => {
                // Folding through a nonlinearity would change results:
                // the original computes BN(act(conv(x))), the fold
                // act(BN-scaled conv). Only identity activations fold.
                let fused = match layers.last() {
                    Some(Layer::Conv2d { weight, bias, stride, pad, activation })
                        if *activation == crate::layer::Activation::None =>
                    {
                        let (c_out, c_in, kh, kw) =
                            weight.shape().as_nchw().expect("conv weight is OIHW");
                        let mut new_weight = weight.clone();
                        let mut new_bias = match bias {
                            Some(b) => b.clone(),
                            None => Tensor::zeros([c_out]),
                        };
                        let g = gamma.as_slice();
                        let be = beta.as_slice();
                        let m = mean.as_slice();
                        let v = var.as_slice();
                        let taps = c_in * kh * kw;
                        let wdata = new_weight.as_mut_slice();
                        for oc in 0..c_out {
                            let scale = g[oc] / (v[oc] + eps).sqrt();
                            for w in &mut wdata[oc * taps..(oc + 1) * taps] {
                                *w *= scale;
                            }
                            let b = &mut new_bias.as_mut_slice()[oc];
                            *b = (*b - m[oc]) * scale + be[oc];
                        }
                        Some(Layer::Conv2d {
                            weight: new_weight,
                            bias: Some(new_bias),
                            stride: *stride,
                            pad: *pad,
                            activation: *activation,
                        })
                    }
                    _ => None,
                };
                match fused {
                    Some(conv) => {
                        *layers.last_mut().expect("checked above") = conv;
                        folded += 1;
                    }
                    None => layers.push(layer.clone()),
                }
            }
            other => layers.push(other.clone()),
        }
    }
    let report = FuseReport { folded, layers: layers.len() };
    (Network::from_parts(net.name().to_string(), net.input_shape().clone(), layers), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Activation;
    use crate::network::NetworkBuilder;

    fn bn_network() -> Network {
        NetworkBuilder::new("bn-test", [1, 2, 8, 8], 42)
            .conv(4, 3, 1, 1, Activation::None)
            .batch_norm()
            .conv(4, 3, 1, 1, Activation::LeakyRelu(0.1))
            .batch_norm()
            .max_pool(2, 2)
            .flatten()
            .linear(3, Activation::None)
            .build()
            .unwrap()
    }

    #[test]
    fn folding_preserves_outputs() {
        let net = bn_network();
        let (fused, report) = fold_batch_norm(&net);
        // Only the BN behind the identity-activation conv folds; the
        // one behind the LeakyRelu conv must stay.
        assert_eq!(report.folded, 1);
        assert_eq!(fused.layers().len(), net.layers().len() - 1);
        let input = Tensor::from_fn([1, 2, 8, 8], |i| ((i[2] * 3 + i[3]) % 7) as f32 / 7.0 - 0.4);
        let a = net.forward(&input).unwrap();
        let b = fused.forward(&input).unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn folding_reduces_flops() {
        let net = bn_network();
        let (fused, _) = fold_batch_norm(&net);
        assert!(fused.cost().unwrap().total.flops < net.cost().unwrap().total.flops);
    }

    #[test]
    fn identity_activation_conv_folds_exactly() {
        let net = NetworkBuilder::new("t", [1, 1, 6, 6], 7)
            .conv(2, 3, 1, 1, Activation::None)
            .batch_norm()
            .build()
            .unwrap();
        let (fused, report) = fold_batch_norm(&net);
        assert_eq!(report.folded, 1);
        let input = Tensor::from_fn([1, 1, 6, 6], |i| i[3] as f32 / 6.0);
        let a = net.forward(&input).unwrap();
        let b = fused.forward(&input).unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn orphan_batch_norm_is_kept() {
        // BN as the very first layer has no conv to fold into.
        let net = NetworkBuilder::new("t", [1, 2, 4, 4], 1)
            .batch_norm()
            .conv(2, 3, 1, 1, Activation::None)
            .build()
            .unwrap();
        let (fused, report) = fold_batch_norm(&net);
        assert_eq!(report.folded, 0);
        assert_eq!(fused.layers().len(), net.layers().len());
    }
}
