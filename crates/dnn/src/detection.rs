//! Bounding boxes, grid decoding and non-maximum suppression for the
//! YOLO-style detection head (paper Fig. 3).

use adsim_tensor::Tensor;

/// The four object categories the paper's detection engine keeps
/// (§3.1.1): vehicles, bicycles, traffic signs and pedestrians.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectClass {
    /// Cars, trucks, buses.
    Vehicle,
    /// Bicycles and motorcycles.
    Bicycle,
    /// Traffic signs and signals.
    TrafficSign,
    /// Pedestrians.
    Pedestrian,
}

impl ObjectClass {
    /// All classes, index-aligned with the detection head's channels.
    pub const ALL: [ObjectClass; 4] = [
        ObjectClass::Vehicle,
        ObjectClass::Bicycle,
        ObjectClass::TrafficSign,
        ObjectClass::Pedestrian,
    ];

    /// Number of classes.
    pub const COUNT: usize = 4;

    /// The class at channel `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 4`.
    pub fn from_index(index: usize) -> ObjectClass {
        Self::ALL[index]
    }

    /// The channel index of this class.
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&c| c == self).expect("class is in ALL")
    }

    /// Canonical rendering intensity of this class in the synthetic
    /// workloads. Classes live in disjoint intensity bands so the
    /// classical (non-DNN) detector can recover them and ground truth
    /// stays consistent with rendering.
    pub fn render_intensity(self) -> u8 {
        match self {
            ObjectClass::Vehicle => 235,
            ObjectClass::Bicycle => 200,
            ObjectClass::TrafficSign => 170,
            ObjectClass::Pedestrian => 140,
        }
    }

    /// Recovers the class from a mean patch intensity (inverse of
    /// [`ObjectClass::render_intensity`], ±15 tolerance).
    pub fn from_intensity(mean: f64) -> Option<ObjectClass> {
        Self::ALL.into_iter().find(|c| (mean - c.render_intensity() as f64).abs() <= 15.0)
    }
}

impl std::fmt::Display for ObjectClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ObjectClass::Vehicle => "vehicle",
            ObjectClass::Bicycle => "bicycle",
            ObjectClass::TrafficSign => "traffic-sign",
            ObjectClass::Pedestrian => "pedestrian",
        };
        f.write_str(s)
    }
}

/// An axis-aligned bounding box in normalized image coordinates
/// (`0.0..=1.0`), stored as center + extent.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BBox {
    /// Center x in `[0, 1]`.
    pub cx: f32,
    /// Center y in `[0, 1]`.
    pub cy: f32,
    /// Width in `[0, 1]`.
    pub w: f32,
    /// Height in `[0, 1]`.
    pub h: f32,
}

impl BBox {
    /// Creates a box from center and extent.
    pub fn new(cx: f32, cy: f32, w: f32, h: f32) -> Self {
        Self { cx, cy, w, h }
    }

    /// Creates a box from corner coordinates `(x0, y0)-(x1, y1)`.
    pub fn from_corners(x0: f32, y0: f32, x1: f32, y1: f32) -> Self {
        Self {
            cx: (x0 + x1) / 2.0,
            cy: (y0 + y1) / 2.0,
            w: (x1 - x0).abs(),
            h: (y1 - y0).abs(),
        }
    }

    /// Box area.
    pub fn area(&self) -> f32 {
        self.w * self.h
    }

    /// Corner coordinates `(x0, y0, x1, y1)`.
    pub fn corners(&self) -> (f32, f32, f32, f32) {
        (
            self.cx - self.w / 2.0,
            self.cy - self.h / 2.0,
            self.cx + self.w / 2.0,
            self.cy + self.h / 2.0,
        )
    }

    /// Intersection-over-union with another box, in `[0, 1]`.
    pub fn iou(&self, other: &BBox) -> f32 {
        let (ax0, ay0, ax1, ay1) = self.corners();
        let (bx0, by0, bx1, by1) = other.corners();
        let ix = (ax1.min(bx1) - ax0.max(bx0)).max(0.0);
        let iy = (ay1.min(by1) - ay0.max(by0)).max(0.0);
        let inter = ix * iy;
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// Euclidean distance between box centers.
    pub fn center_distance(&self, other: &BBox) -> f32 {
        ((self.cx - other.cx).powi(2) + (self.cy - other.cy).powi(2)).sqrt()
    }
}

/// One detected object: a box, a class and a confidence score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Where the object is.
    pub bbox: BBox,
    /// What the object is.
    pub class: ObjectClass,
    /// Detector confidence in `[0, 1]`.
    pub score: f32,
}

/// Decodes a YOLO-style grid output tensor of shape
/// `[1, 5 + ObjectClass::COUNT, s, s]` into detections.
///
/// Channel layout per cell: `tx, ty, tw, th, objectness` followed by
/// one score per class. `tx`/`ty` are sigmoid offsets within the cell,
/// `tw`/`th` sigmoid fractions of the image, matching the paper's
/// "predicts the coordinates of detected objects and the confidence for
/// each sub-region" description (Fig. 3). Cells whose
/// `objectness × class` score falls below `threshold` are filtered out,
/// as in §3.1.1.
///
/// # Panics
///
/// Panics if the tensor rank is not 4 or the channel count is not
/// `5 + ObjectClass::COUNT`.
pub fn decode_grid(output: &Tensor, threshold: f32) -> Vec<Detection> {
    let (n, c, gh, gw) = output.shape().as_nchw().expect("grid output is NCHW");
    assert_eq!(n, 1, "decode_grid expects a single image");
    assert_eq!(
        c,
        5 + ObjectClass::COUNT,
        "expected {} channels, got {c}",
        5 + ObjectClass::COUNT
    );
    let sigmoid = |x: f32| 1.0 / (1.0 + (-x).exp());
    let mut out = Vec::new();
    for gy in 0..gh {
        for gx in 0..gw {
            let at = |ch: usize| output.at(&[0, ch, gy, gx]);
            let objectness = sigmoid(at(4));
            // Per-class score = objectness * softmax-ish class confidence.
            let mut best_class = 0;
            let mut best_score = f32::NEG_INFINITY;
            for k in 0..ObjectClass::COUNT {
                let s = at(5 + k);
                if s > best_score {
                    best_score = s;
                    best_class = k;
                }
            }
            let score = objectness * sigmoid(best_score);
            if score < threshold {
                continue;
            }
            let cx = (gx as f32 + sigmoid(at(0))) / gw as f32;
            let cy = (gy as f32 + sigmoid(at(1))) / gh as f32;
            let w = sigmoid(at(2));
            let h = sigmoid(at(3));
            out.push(Detection {
                bbox: BBox::new(cx, cy, w, h),
                class: ObjectClass::from_index(best_class),
                score,
            });
        }
    }
    out
}

/// Greedy non-maximum suppression: keeps the highest-scoring detection
/// and drops same-class detections overlapping it by more than
/// `iou_threshold`, repeating until no detections remain.
pub fn nms(mut detections: Vec<Detection>, iou_threshold: f32) -> Vec<Detection> {
    detections.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("scores are finite"));
    let mut kept: Vec<Detection> = Vec::new();
    for d in detections {
        let suppressed = kept
            .iter()
            .any(|k| k.class == d.class && k.bbox.iou(&d.bbox) > iou_threshold);
        if !suppressed {
            kept.push(d);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iou_of_identical_boxes_is_one() {
        let b = BBox::new(0.5, 0.5, 0.2, 0.2);
        assert!((b.iou(&b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn iou_of_disjoint_boxes_is_zero() {
        let a = BBox::new(0.2, 0.2, 0.1, 0.1);
        let b = BBox::new(0.8, 0.8, 0.1, 0.1);
        assert_eq!(a.iou(&b), 0.0);
    }

    #[test]
    fn iou_of_half_overlap() {
        let a = BBox::from_corners(0.0, 0.0, 0.2, 0.2);
        let b = BBox::from_corners(0.1, 0.0, 0.3, 0.2);
        // intersection 0.1x0.2, union 0.04+0.04-0.02
        assert!((a.iou(&b) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn corners_round_trip() {
        let b = BBox::new(0.5, 0.4, 0.2, 0.1);
        let (x0, y0, x1, y1) = b.corners();
        let r = BBox::from_corners(x0, y0, x1, y1);
        assert!((r.cx - b.cx).abs() < 1e-6 && (r.h - b.h).abs() < 1e-6);
    }

    #[test]
    fn nms_keeps_highest_and_drops_overlaps() {
        let mk = |cx: f32, score: f32| Detection {
            bbox: BBox::new(cx, 0.5, 0.2, 0.2),
            class: ObjectClass::Vehicle,
            score,
        };
        let dets = vec![mk(0.50, 0.8), mk(0.52, 0.9), mk(0.9, 0.5)];
        let kept = nms(dets, 0.5);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].score, 0.9);
        assert!((kept[1].bbox.cx - 0.9).abs() < 1e-6);
    }

    #[test]
    fn nms_does_not_suppress_across_classes() {
        let a = Detection {
            bbox: BBox::new(0.5, 0.5, 0.2, 0.2),
            class: ObjectClass::Vehicle,
            score: 0.9,
        };
        let b = Detection { class: ObjectClass::Pedestrian, ..a };
        assert_eq!(nms(vec![a, b], 0.5).len(), 2);
    }

    #[test]
    fn decode_grid_thresholds_and_positions() {
        // 2x2 grid, all logits strongly negative except cell (1, 0).
        let c = 5 + ObjectClass::COUNT;
        let mut t = Tensor::filled([1, c, 2, 2], -10.0);
        *t.at_mut(&[0, 4, 0, 1]) = 10.0; // objectness at gy=0, gx=1
        *t.at_mut(&[0, 5 + ObjectClass::Pedestrian.index(), 0, 1]) = 10.0;
        *t.at_mut(&[0, 0, 0, 1]) = 0.0; // tx -> 0.5 within cell
        *t.at_mut(&[0, 1, 0, 1]) = 0.0; // ty
        let dets = decode_grid(&t, 0.5);
        assert_eq!(dets.len(), 1);
        let d = dets[0];
        assert_eq!(d.class, ObjectClass::Pedestrian);
        assert!((d.bbox.cx - 0.75).abs() < 1e-5, "cell gx=1 of 2 -> cx 0.75");
        assert!((d.bbox.cy - 0.25).abs() < 1e-5);
        assert!(d.score > 0.9);
    }

    #[test]
    fn decode_grid_empty_below_threshold() {
        let t = Tensor::filled([1, 5 + ObjectClass::COUNT, 3, 3], -10.0);
        assert!(decode_grid(&t, 0.3).is_empty());
    }

    #[test]
    fn class_index_round_trip() {
        for (i, c) in ObjectClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(ObjectClass::from_index(i), *c);
            assert!(!c.to_string().is_empty());
        }
    }
}
