//! Compute and memory cost accounting.
//!
//! The accelerator latency models in `adsim-platform` are driven by the
//! exact FLOP and byte counts produced here, mirroring how the paper
//! sizes its FPGA processing-element arrays and extrapolates its ASIC
//! results "based on the amount of processing units needed" (§5.1).

/// Cost of one layer evaluated at a concrete input shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LayerCost {
    /// Layer kind name (e.g. `"conv2d"`).
    pub kind: &'static str,
    /// Floating-point operations (1 MAC = 2 FLOPs).
    pub flops: u64,
    /// Learnable parameter count.
    pub params: u64,
    /// Elements produced.
    pub output_elems: u64,
    /// Elements consumed.
    pub input_elems: u64,
}

impl LayerCost {
    /// Bytes of weight traffic, assuming 4-byte (f32) parameters.
    pub fn weight_bytes(&self) -> u64 {
        self.params * 4
    }

    /// Bytes of activation traffic (read input + write output, f32).
    pub fn activation_bytes(&self) -> u64 {
        (self.input_elems + self.output_elems) * 4
    }

    /// Total memory traffic in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.weight_bytes() + self.activation_bytes()
    }

    /// Arithmetic intensity in FLOPs per byte; the roofline coordinate
    /// that determines whether a platform is compute- or memory-bound.
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.total_bytes();
        if bytes == 0 {
            0.0
        } else {
            self.flops as f64 / bytes as f64
        }
    }
}

/// Aggregate cost of a whole network, with the per-layer breakdown.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetworkCost {
    /// Per-layer costs in execution order.
    pub layers: Vec<LayerCost>,
    /// Sum over all layers (`kind` is `"total"`).
    pub total: LayerCost,
}

impl NetworkCost {
    /// Builds the aggregate from per-layer costs.
    pub fn from_layers(layers: Vec<LayerCost>) -> Self {
        let mut total = LayerCost { kind: "total", ..Default::default() };
        for l in &layers {
            total.flops += l.flops;
            total.params += l.params;
            total.output_elems += l.output_elems;
            total.input_elems += l.input_elems;
        }
        Self { layers, total }
    }

    /// Fraction of FLOPs spent in layers for which `pred` holds; used
    /// to regenerate the paper's Fig. 7 cycle breakdown (DNN vs other).
    pub fn flop_fraction(&self, pred: impl Fn(&LayerCost) -> bool) -> f64 {
        if self.total.flops == 0 {
            return 0.0;
        }
        let matched: u64 = self.layers.iter().filter(|l| pred(l)).map(|l| l.flops).sum();
        matched as f64 / self.total.flops as f64
    }

    /// Giga-FLOPs of the whole network.
    pub fn gflops(&self) -> f64 {
        self.total.flops as f64 / 1e9
    }
}

impl std::fmt::Display for NetworkCost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{:<12} {:>14} {:>12} {:>12}", "layer", "flops", "params", "out elems")?;
        for l in &self.layers {
            writeln!(
                f,
                "{:<12} {:>14} {:>12} {:>12}",
                l.kind, l.flops, l.params, l.output_elems
            )?;
        }
        write!(
            f,
            "{:<12} {:>14} {:>12} {:>12}",
            "total", self.total.flops, self.total.params, self.total.output_elems
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LayerCost {
        LayerCost { kind: "conv2d", flops: 1000, params: 25, output_elems: 50, input_elems: 100 }
    }

    #[test]
    fn byte_accounting() {
        let c = sample();
        assert_eq!(c.weight_bytes(), 100);
        assert_eq!(c.activation_bytes(), 600);
        assert_eq!(c.total_bytes(), 700);
    }

    #[test]
    fn arithmetic_intensity_is_flops_per_byte() {
        let c = sample();
        assert!((c.arithmetic_intensity() - 1000.0 / 700.0).abs() < 1e-9);
        assert_eq!(LayerCost::default().arithmetic_intensity(), 0.0);
    }

    #[test]
    fn network_cost_sums_layers() {
        let net = NetworkCost::from_layers(vec![sample(), sample()]);
        assert_eq!(net.total.flops, 2000);
        assert_eq!(net.total.params, 50);
        assert_eq!(net.gflops(), 2e-6);
    }

    #[test]
    fn flop_fraction_partitions() {
        let mut other = sample();
        other.kind = "maxpool2d";
        other.flops = 3000;
        let net = NetworkCost::from_layers(vec![sample(), other]);
        let conv = net.flop_fraction(|l| l.kind == "conv2d");
        let pool = net.flop_fraction(|l| l.kind == "maxpool2d");
        assert!((conv - 0.25).abs() < 1e-9);
        assert!((conv + pool - 1.0).abs() < 1e-9);
    }

    #[test]
    fn display_lists_each_layer() {
        let net = NetworkCost::from_layers(vec![sample()]);
        let text = net.to_string();
        assert!(text.contains("conv2d"));
        assert!(text.contains("total"));
    }
}
