use adsim_stats::Rng64;

/// The shape of a latency distribution around its mean.
///
/// Latency bodies are log-normal (multiplicative noise from cache,
/// DVFS and scheduler effects), optionally mixed with a rare *spike*
/// mode: the localization engine's relocalization fallback does several
/// times the matching work of a tracked frame (paper §3.1.3), and
/// conventional CPUs add scheduling interference. Accelerators with
/// predictable dataflow (FPGAs, ASICs) have near-zero sigma — exactly
/// the property Finding 4 prizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailShape {
    /// Log-normal shape parameter of the body.
    pub sigma: f64,
    /// Probability a sample is a spike.
    pub spike_prob: f64,
    /// Multiplier applied to spiked samples.
    pub spike_mult: f64,
}

impl TailShape {
    /// A deterministic (mean ≈ tail) shape with residual jitter.
    pub fn deterministic() -> Self {
        Self { sigma: 0.002, spike_prob: 0.0, spike_mult: 1.0 }
    }

    /// A body-only log-normal shape whose p99.99/mean ratio is
    /// approximately `ratio`.
    ///
    /// For a log-normal with median `m`, `p99.99 = m·exp(3.719σ)` and
    /// `mean = m·exp(σ²/2)`, so `ratio = exp(3.719σ − σ²/2)`.
    ///
    /// # Panics
    ///
    /// Panics if `ratio < 1`.
    pub fn body(ratio: f64) -> Self {
        assert!(ratio >= 1.0, "tail cannot be below the mean");
        // Solve 3.719σ − σ²/2 = ln(ratio) by one Newton step from the
        // linear estimate; σ is small for all ratios the paper shows.
        let target = ratio.ln();
        let mut sigma = target / 3.719;
        for _ in 0..8 {
            let f = 3.719 * sigma - sigma * sigma / 2.0 - target;
            let df = 3.719 - sigma;
            sigma -= f / df;
        }
        Self { sigma: sigma.max(0.0), spike_prob: 0.0, spike_mult: 1.0 }
    }

    /// A spike-mode shape: the body is tight, but with probability
    /// `spike_prob` the sample is multiplied by roughly
    /// `ratio` (so that p99.99 lands near `ratio × mean` as long as
    /// `spike_prob > 0.0001`).
    ///
    /// # Panics
    ///
    /// Panics if `ratio < 1` or the probability is out of range.
    pub fn spiky(ratio: f64, spike_prob: f64) -> Self {
        assert!(ratio >= 1.0, "tail cannot be below the mean");
        assert!((0.0..=0.05).contains(&spike_prob), "spikes must be rare");
        Self { sigma: 0.05, spike_prob, spike_mult: ratio }
    }

    /// Expected value of the multiplier this shape applies (used to
    /// re-normalize so the configured mean is preserved).
    pub fn mean_multiplier(&self) -> f64 {
        // Body is normalized to mean 1; spikes add (mult − 1)·p.
        1.0 + self.spike_prob * (self.spike_mult - 1.0)
    }

    /// Draws one latency sample with the given mean.
    pub fn sample(&self, rng: &mut Rng64, mean_ms: f64) -> f64 {
        let z = rng.normal();
        // Log-normal with mean 1.
        let mut mult = (self.sigma * z - self.sigma * self.sigma / 2.0).exp();
        if self.spike_prob > 0.0 && rng.chance(self.spike_prob) {
            // Spikes spread a little so the tail is not a point mass.
            mult *= self.spike_mult * rng.range_f64(0.9, 1.05);
        }
        mean_ms * mult / self.mean_multiplier()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(shape: TailShape, mean: f64, n: usize) -> (f64, f64) {
        let mut rng = Rng64::new(42);
        let mut v: Vec<f64> = (0..n).map(|_| shape.sample(&mut rng, mean)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let m = v.iter().sum::<f64>() / n as f64;
        let p9999 = v[(n as f64 * 0.9999) as usize];
        (m, p9999)
    }

    #[test]
    fn deterministic_shape_has_tight_tail() {
        let (m, p) = stats(TailShape::deterministic(), 10.0, 100_000);
        assert!((m - 10.0).abs() < 0.05);
        assert!(p / m < 1.01);
    }

    #[test]
    fn body_shape_hits_target_ratio() {
        for ratio in [1.08, 1.3, 1.7] {
            let (m, p) = stats(TailShape::body(ratio), 100.0, 200_000);
            assert!((m - 100.0).abs() < 1.0, "mean {m}");
            let measured = p / m;
            assert!(
                (measured - ratio).abs() / ratio < 0.08,
                "ratio {ratio}: measured {measured}"
            );
        }
    }

    #[test]
    fn spiky_shape_hits_target_ratio_and_mean() {
        let (m, p) = stats(TailShape::spiky(7.2, 0.004), 40.0, 200_000);
        assert!((m - 40.0).abs() < 0.8, "mean {m}");
        let measured = p / m;
        assert!((measured - 7.2).abs() / 7.2 < 0.12, "measured {measured}");
    }

    #[test]
    fn samples_are_positive() {
        let shape = TailShape::spiky(5.0, 0.01);
        let mut rng = Rng64::new(7);
        for _ in 0..10_000 {
            assert!(shape.sample(&mut rng, 1.0) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "tail cannot be below the mean")]
    fn sub_unity_ratio_rejected() {
        TailShape::body(0.9);
    }
}
