//! Accelerator platform models: specs, latency distributions and
//! power (paper §4–§5).
//!
//! The paper ports the three computational bottlenecks (DET, TRA,
//! LOC) to GPUs, FPGAs and ASICs and measures latency distributions
//! and power on real hardware (Table 2, Table 3, Fig. 10). That
//! hardware is not available here, so this crate provides a
//! *calibrated analytical model*:
//!
//! * the per-(component, platform) mean latencies and power draws are
//!   calibrated once against the paper's Fig. 10 measurements,
//! * latency *distributions* are generated from per-platform
//!   variability shapes (log-normal bodies, spike mixtures for the
//!   localization relocalization path), reproducing the mean-vs-tail
//!   behaviour of Finding 2,
//! * *scaling* with camera resolution is computed from the measured
//!   compute structure of the actual `adsim-dnn` / `adsim-vision`
//!   implementations (conv FLOPs scale linearly in pixels; feature
//!   description is capped), which is what regenerates Fig. 13.
//!
//! See DESIGN.md ("Substitutions") for why this preserves the paper's
//! conclusions.
//!
//! # Examples
//!
//! ```
//! use adsim_platform::{Component, LatencyModel, Platform};
//! use adsim_stats::Rng64;
//!
//! let model = LatencyModel::paper_calibrated();
//! let mut rng = Rng64::new(1);
//! let ms = model.sample_ms(Component::Detection, Platform::Gpu, &mut rng, 1.0);
//! assert!(ms > 5.0 && ms < 30.0);
//! ```

pub mod asic;
pub mod contention;
mod model;
pub mod roofline;
mod spec;
mod variability;

pub use asic::FeAsicSpec;
pub use model::{resolution_scale, Component, ComponentModel, LatencyModel, Platform};
pub use roofline::Roofline;
pub use spec::{table2, PlatformSpec};
pub use variability::TailShape;
