use crate::model::Platform;

/// One row of the paper's Table 2 (computing platform specifications).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformSpec {
    /// Which platform family the row belongs to.
    pub platform: Platform,
    /// Device model string.
    pub model: &'static str,
    /// Clock frequency (GHz).
    pub frequency_ghz: f64,
    /// Core / DSP count, where meaningful.
    pub cores: Option<u32>,
    /// On-board / on-chip memory (GB).
    pub memory_gb: Option<f64>,
    /// Memory bandwidth (GB/s).
    pub memory_bw_gbps: Option<f64>,
}

/// The paper's Table 2, verbatim.
///
/// # Examples
///
/// ```
/// use adsim_platform::{table2, Platform};
///
/// let rows = table2();
/// assert_eq!(rows.len(), 6);
/// assert!(rows.iter().any(|r| r.platform == Platform::Gpu && r.cores == Some(3584)));
/// ```
pub fn table2() -> Vec<PlatformSpec> {
    vec![
        PlatformSpec {
            platform: Platform::Cpu,
            model: "Intel Xeon E5-2630 v3",
            frequency_ghz: 3.2,
            cores: Some(16),
            memory_gb: Some(128.0),
            memory_bw_gbps: Some(59.0),
        },
        PlatformSpec {
            platform: Platform::Gpu,
            model: "NVIDIA TitanX (Pascal)",
            frequency_ghz: 1.4,
            cores: Some(3584),
            memory_gb: Some(12.0),
            memory_bw_gbps: Some(480.0),
        },
        PlatformSpec {
            platform: Platform::Fpga,
            model: "Altera Stratix V",
            frequency_ghz: 0.8,
            // 256 DSPs.
            cores: Some(256),
            memory_gb: Some(2.0),
            memory_bw_gbps: Some(6.4),
        },
        PlatformSpec {
            platform: Platform::Asic,
            model: "ASIC (CNN), TSMC 65 nm",
            frequency_ghz: 0.2,
            cores: None,
            // 181.5 KB on-chip.
            memory_gb: Some(181.5e3 / 1e9),
            memory_bw_gbps: None,
        },
        PlatformSpec {
            platform: Platform::Asic,
            model: "ASIC (FC), TSMC 45 nm",
            frequency_ghz: 0.8,
            cores: None,
            memory_gb: None,
            memory_bw_gbps: None,
        },
        PlatformSpec {
            platform: Platform::Asic,
            model: "ASIC (LOC), ARM 45 nm",
            frequency_ghz: 4.0,
            cores: None,
            memory_gb: None,
            memory_bw_gbps: None,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_all_four_families() {
        let rows = table2();
        for p in [Platform::Cpu, Platform::Gpu, Platform::Fpga, Platform::Asic] {
            assert!(rows.iter().any(|r| r.platform == p), "{p:?} missing");
        }
    }

    #[test]
    fn cpu_row_matches_paper() {
        let cpu = table2().into_iter().find(|r| r.platform == Platform::Cpu).unwrap();
        assert_eq!(cpu.frequency_ghz, 3.2);
        assert_eq!(cpu.cores, Some(16));
        assert_eq!(cpu.memory_bw_gbps, Some(59.0));
    }

    #[test]
    fn gpu_memory_bandwidth_dwarfs_fpga() {
        let rows = table2();
        let gpu = rows.iter().find(|r| r.platform == Platform::Gpu).unwrap();
        let fpga = rows.iter().find(|r| r.platform == Platform::Fpga).unwrap();
        assert!(gpu.memory_bw_gbps.unwrap() > 50.0 * fpga.memory_bw_gbps.unwrap());
    }

    #[test]
    fn loc_asic_clocks_at_4ghz() {
        let loc = table2().into_iter().find(|r| r.model.contains("LOC")).unwrap();
        assert_eq!(loc.frequency_ghz, 4.0);
    }
}
