//! Roofline analysis: compute- vs memory-bound classification.
//!
//! Table 2 gives each platform's core count / frequency and memory
//! bandwidth; the DNN cost analyzer gives each workload's arithmetic
//! intensity (FLOPs per byte). The roofline model combines them to
//! explain *why* the platforms behave as Fig. 10 measures: the DNN
//! engines are strongly compute-bound, so the FPGA's 256 DSPs (not its
//! 6.4 GB/s of bandwidth) are its bottleneck — exactly Finding 1's
//! "limited number of DSPs" diagnosis.

use crate::model::Platform;

/// Peak compute and memory bandwidth of one platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    /// Peak arithmetic throughput (GFLOP/s).
    pub peak_gflops: f64,
    /// Peak memory bandwidth (GB/s).
    pub bandwidth_gbps: f64,
}

impl Roofline {
    /// First-order peaks derived from Table 2.
    ///
    /// * CPU: 16 cores × 3.2 GHz × 8 FLOPs/cycle (AVX2 FMA) ≈ 410.
    /// * GPU: 3584 cores × 1.4 GHz × 2 (FMA) ≈ 10 000.
    /// * FPGA: 256 DSPs × 0.8 GHz × 2 ≈ 410.
    /// * ASIC: representative CNN-accelerator array at 200 MHz
    ///   (the Table 2 CNN ASIC extrapolated to the needed PE count).
    pub fn for_platform(p: Platform) -> Roofline {
        match p {
            Platform::Cpu => Roofline { peak_gflops: 410.0, bandwidth_gbps: 59.0 },
            Platform::Gpu => Roofline { peak_gflops: 10_000.0, bandwidth_gbps: 480.0 },
            Platform::Fpga => Roofline { peak_gflops: 410.0, bandwidth_gbps: 6.4 },
            Platform::Asic => Roofline { peak_gflops: 2_000.0, bandwidth_gbps: 100.0 },
        }
    }

    /// Attainable throughput at a given arithmetic intensity
    /// (FLOPs/byte): `min(peak, bandwidth × intensity)`.
    pub fn attainable_gflops(&self, intensity: f64) -> f64 {
        assert!(intensity >= 0.0, "intensity cannot be negative");
        self.peak_gflops.min(self.bandwidth_gbps * intensity)
    }

    /// The ridge point: the intensity above which the platform is
    /// compute-bound.
    pub fn ridge_intensity(&self) -> f64 {
        self.peak_gflops / self.bandwidth_gbps
    }

    /// Whether a workload of the given intensity is compute-bound on
    /// this platform.
    pub fn is_compute_bound(&self, intensity: f64) -> bool {
        intensity >= self.ridge_intensity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsim_dnn::models::{goturn_spec, yolo_v2_spec};

    fn intensity_of_yolo() -> f64 {
        let cost = yolo_v2_spec(384, 1248).cost().unwrap();
        cost.total.flops as f64
            / cost.layers.iter().map(|l| l.total_bytes()).sum::<u64>() as f64
    }

    #[test]
    fn attainable_is_capped_by_both_roofs() {
        let r = Roofline { peak_gflops: 100.0, bandwidth_gbps: 10.0 };
        assert_eq!(r.attainable_gflops(1.0), 10.0, "memory-bound below the ridge");
        assert_eq!(r.attainable_gflops(100.0), 100.0, "compute-bound above it");
        assert_eq!(r.ridge_intensity(), 10.0);
    }

    #[test]
    fn yolo_is_compute_bound_on_the_fpga() {
        // Finding 1's diagnosis: the FPGA's DSP count, not bandwidth,
        // limits DET/TRA.
        let intensity = intensity_of_yolo();
        assert!(intensity > 10.0, "conv nets are high intensity: {intensity}");
        assert!(Roofline::for_platform(Platform::Fpga).is_compute_bound(intensity));
        assert!(Roofline::for_platform(Platform::Cpu).is_compute_bound(intensity));
    }

    #[test]
    fn fpga_attainable_matches_observed_order_of_magnitude() {
        // Fig. 10a: DET on FPGA takes 369.6 ms for the ~95 GFLOP
        // workload -> ~257 GFLOP/s effective, which must sit under the
        // 410 GFLOP/s DSP roof.
        let gflops = yolo_v2_spec(384, 1248).cost().unwrap().gflops();
        let effective = gflops / 0.3696;
        let roof = Roofline::for_platform(Platform::Fpga).peak_gflops;
        assert!(effective < roof, "effective {effective:.0} vs roof {roof:.0}");
        assert!(effective > roof * 0.3, "and within 3x of it (well-utilized fabric)");
    }

    #[test]
    fn goturn_fc_layers_lower_its_intensity() {
        // Fully-connected layers stream their weights once, so GOTURN's
        // overall intensity is below YOLO's conv-only trunk.
        let yolo = intensity_of_yolo();
        let cost = goturn_spec().cost().unwrap();
        let goturn = cost.total.flops as f64
            / cost.layers.iter().map(|l| l.total_bytes()).sum::<u64>() as f64;
        assert!(goturn < yolo, "GOTURN {goturn:.1} vs YOLO {yolo:.1} FLOPs/byte");
    }

    #[test]
    fn gpu_has_the_highest_roofs() {
        let gpu = Roofline::for_platform(Platform::Gpu);
        for p in [Platform::Cpu, Platform::Fpga] {
            let other = Roofline::for_platform(p);
            assert!(gpu.peak_gflops > other.peak_gflops);
            assert!(gpu.bandwidth_gbps > other.bandwidth_gbps);
        }
    }
}
