use crate::variability::TailShape;
use adsim_stats::Rng64;
use std::collections::HashMap;

/// The pipeline components of Fig. 1. The first three are the
/// computational bottlenecks (§3.2, >94 % of execution); fusion and
/// motion planning are cheap and always run on the host CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// Object detection (DET, YOLO-style).
    Detection,
    /// Object tracking (TRA, GOTURN-style).
    Tracking,
    /// Localization (LOC, ORB-SLAM-style).
    Localization,
    /// Sensor fusion (FUSION).
    Fusion,
    /// Motion planning (MOTPLAN).
    MotionPlanning,
}

impl Component {
    /// The three accelerable bottlenecks.
    pub const BOTTLENECKS: [Component; 3] =
        [Component::Detection, Component::Tracking, Component::Localization];

    /// Every modeled component.
    pub const ALL: [Component; 5] = [
        Component::Detection,
        Component::Tracking,
        Component::Localization,
        Component::Fusion,
        Component::MotionPlanning,
    ];

    /// The paper's abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            Component::Detection => "DET",
            Component::Tracking => "TRA",
            Component::Localization => "LOC",
            Component::Fusion => "FUSION",
            Component::MotionPlanning => "MOTPLAN",
        }
    }
}

impl std::fmt::Display for Component {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// The four computing platform families of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// Multicore server CPU (the baseline).
    Cpu,
    /// Discrete GPU.
    Gpu,
    /// FPGA fabric.
    Fpga,
    /// Application-specific IC.
    Asic,
}

impl Platform {
    /// All platforms, CPU first.
    pub const ALL: [Platform; 4] =
        [Platform::Cpu, Platform::Gpu, Platform::Fpga, Platform::Asic];

    /// Accelerators only.
    pub const ACCELERATORS: [Platform; 3] = [Platform::Gpu, Platform::Fpga, Platform::Asic];
}

impl std::fmt::Display for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Platform::Cpu => "CPU",
            Platform::Gpu => "GPU",
            Platform::Fpga => "FPGA",
            Platform::Asic => "ASIC",
        };
        f.write_str(s)
    }
}

/// Calibrated behaviour of one component on one platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentModel {
    /// Mean latency at the reference (KITTI) resolution (ms).
    pub mean_ms: f64,
    /// p99.99 / mean ratio the distribution is shaped to.
    pub tail_ratio: f64,
    /// Latency distribution shape.
    pub tail: TailShape,
    /// Measured power draw (W) while running this component
    /// (Fig. 10c).
    pub power_w: f64,
}

impl ComponentModel {
    /// Analytic p99.99 latency at the reference resolution (ms).
    pub fn p99_99_ms(&self) -> f64 {
        self.mean_ms * self.tail_ratio
    }
}

/// The calibrated latency/power model over all
/// (component × platform) pairs the paper evaluates.
///
/// Calibration anchors are the paper's Fig. 10a (mean), Fig. 10b
/// (p99.99) and Fig. 10c (power); everything else — end-to-end
/// latency, system power, driving range, resolution scalability — is
/// *derived* from these anchors plus the measured compute structure of
/// the real implementations in this workspace.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    table: HashMap<(Component, Platform), ComponentModel>,
}

impl LatencyModel {
    /// Builds the paper-calibrated model.
    pub fn paper_calibrated() -> Self {
        use Component::*;
        use Platform::*;
        let mut table = HashMap::new();
        // (component, platform, mean ms, p99.99 ms, power W)
        // Mean/tail: Fig. 10a / Fig. 10b. Power: Fig. 10c.
        let rows: [(Component, Platform, f64, f64, f64); 12] = [
            (Detection, Cpu, 7_150.0, 7_734.4, 51.2),
            (Tracking, Cpu, 799.0, 1_334.0, 106.9),
            (Localization, Cpu, 40.8, 294.2, 53.8),
            (Detection, Gpu, 11.2, 14.3, 54.0),
            (Tracking, Gpu, 5.5, 6.4, 55.0),
            (Localization, Gpu, 20.3, 54.0, 53.0),
            (Detection, Fpga, 369.6, 369.6, 21.5),
            (Tracking, Fpga, 536.0, 536.0, 22.7),
            (Localization, Fpga, 27.1, 27.1, 19.0),
            (Detection, Asic, 95.9, 95.9, 7.9),
            (Tracking, Asic, 1.8, 1.8, 9.3),
            (Localization, Asic, 10.1, 10.1, 0.1),
        ];
        for (c, p, mean, p9999, power) in rows {
            let ratio = p9999 / mean;
            let tail = if ratio < 1.001 {
                TailShape::deterministic()
            } else if c == Localization {
                // LOC's tail is a *mode switch* (relocalization with a
                // widened map search, §3.1.3), not body noise.
                TailShape::spiky(ratio, 0.004)
            } else {
                TailShape::body(ratio)
            };
            table.insert(
                (c, p),
                ComponentModel { mean_ms: mean, tail_ratio: ratio, tail, power_w: power },
            );
        }
        // FUSION and MOTPLAN always run on the CPU and are negligible
        // (Fig. 6: 0.1 ms and 0.5 ms at the 99.99th percentile); their
        // power is part of the host CPU baseline.
        table.insert(
            (Fusion, Cpu),
            ComponentModel {
                mean_ms: 0.08,
                tail_ratio: 1.25,
                tail: TailShape::body(1.25),
                power_w: 0.0,
            },
        );
        table.insert(
            (MotionPlanning, Cpu),
            ComponentModel {
                mean_ms: 0.4,
                tail_ratio: 1.25,
                tail: TailShape::body(1.25),
                power_w: 0.0,
            },
        );
        Self { table }
    }

    /// The model for one (component, platform) pair, or `None` when
    /// the paper does not evaluate the pair (fusion and motion
    /// planning exist only on the CPU).
    pub fn component(&self, c: Component, p: Platform) -> Option<&ComponentModel> {
        self.table.get(&(c, p))
    }

    /// Analytic mean latency, scaled by a workload factor (see
    /// [`resolution_scale`]).
    ///
    /// # Panics
    ///
    /// Panics if the pair is unsupported.
    pub fn mean_ms(&self, c: Component, p: Platform, workload_scale: f64) -> f64 {
        self.table[&(c, p)].mean_ms * workload_scale
    }

    /// Analytic p99.99 latency, scaled by a workload factor.
    ///
    /// # Panics
    ///
    /// Panics if the pair is unsupported.
    pub fn p99_99_ms(&self, c: Component, p: Platform, workload_scale: f64) -> f64 {
        self.table[&(c, p)].p99_99_ms() * workload_scale
    }

    /// Draws one latency sample (ms).
    ///
    /// # Panics
    ///
    /// Panics if the pair is unsupported.
    pub fn sample_ms(
        &self,
        c: Component,
        p: Platform,
        rng: &mut Rng64,
        workload_scale: f64,
    ) -> f64 {
        let m = &self.table[&(c, p)];
        m.tail.sample(rng, m.mean_ms * workload_scale)
    }

    /// Power draw (W) of one component on one platform (Fig. 10c).
    ///
    /// # Panics
    ///
    /// Panics if the pair is unsupported.
    pub fn power_w(&self, c: Component, p: Platform) -> f64 {
        self.table[&(c, p)].power_w
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

/// Workload scale factor for a component at a camera resolution with
/// `pixel_ratio` = pixels / reference pixels.
///
/// The DNN engines scale linearly in pixels (convolution FLOPs are
/// proportional to H·W — verified against `adsim_dnn`'s cost analyzer
/// in this module's tests). Localization's FAST scan scales with
/// pixels but its description/matching stage is capped at the
/// extractor's `max_features`, so only the scan share (≈ 45 % of FE
/// work measured on `adsim_vision`) scales. Fusion and planning do not
/// depend on resolution.
pub fn resolution_scale(c: Component, pixel_ratio: f64) -> f64 {
    assert!(pixel_ratio > 0.0, "pixel ratio must be positive");
    match c {
        Component::Detection | Component::Tracking => pixel_ratio,
        Component::Localization => 0.45 * pixel_ratio + 0.55,
        Component::Fusion | Component::MotionPlanning => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsim_stats::LatencyRecorder;

    #[test]
    fn calibration_matches_fig10_anchors() {
        let m = LatencyModel::paper_calibrated();
        assert_eq!(m.mean_ms(Component::Detection, Platform::Cpu, 1.0), 7150.0);
        assert_eq!(m.p99_99_ms(Component::Tracking, Platform::Cpu, 1.0), 1334.0);
        assert_eq!(m.power_w(Component::Localization, Platform::Asic), 0.1);
        assert!(m.component(Component::Fusion, Platform::Gpu).is_none());
    }

    #[test]
    fn sampled_distributions_match_anchors() {
        let m = LatencyModel::paper_calibrated();
        let mut rng = Rng64::new(99);
        for (c, p) in [
            (Component::Detection, Platform::Cpu),
            (Component::Localization, Platform::Cpu),
            (Component::Localization, Platform::Gpu),
            (Component::Tracking, Platform::Asic),
        ] {
            let rec: LatencyRecorder =
                (0..100_000).map(|_| m.sample_ms(c, p, &mut rng, 1.0)).collect();
            let s = rec.summary();
            let mean_target = m.mean_ms(c, p, 1.0);
            let tail_target = m.p99_99_ms(c, p, 1.0);
            assert!(
                (s.mean - mean_target).abs() / mean_target < 0.03,
                "{c} on {p}: mean {} vs {mean_target}",
                s.mean
            );
            assert!(
                (s.p99_99 - tail_target).abs() / tail_target < 0.15,
                "{c} on {p}: tail {} vs {tail_target}",
                s.p99_99
            );
        }
    }

    #[test]
    fn tail_reduction_factors_match_abstract() {
        // The abstract: GPU/FPGA/ASIC reduce tail latency by 169x,
        // 10x, 93x. End-to-end tail = max(LOC, DET+TRA).
        let m = LatencyModel::paper_calibrated();
        let e2e = |p: Platform| {
            let det = m.p99_99_ms(Component::Detection, p, 1.0);
            let tra = m.p99_99_ms(Component::Tracking, p, 1.0);
            let loc = m.p99_99_ms(Component::Localization, p, 1.0);
            (det + tra).max(loc)
        };
        let cpu = e2e(Platform::Cpu);
        assert!((cpu / e2e(Platform::Gpu) - 169.0).abs() < 5.0, "{}", cpu / e2e(Platform::Gpu));
        assert!((cpu / e2e(Platform::Fpga) - 10.0).abs() < 0.5);
        assert!((cpu / e2e(Platform::Asic) - 93.0).abs() < 3.0);
    }

    #[test]
    fn dnn_resolution_scaling_matches_cost_analyzer() {
        // The model's linear pixel scaling for DNN engines must agree
        // with the actual conv cost of the full YOLO network.
        let base = adsim_dnn::models::yolo_v2_spec(384, 1248).cost().unwrap().total.flops;
        let fhd = adsim_dnn::models::yolo_v2_spec(1088, 1920).cost().unwrap().total.flops;
        let flop_ratio = fhd as f64 / base as f64;
        let pixel_ratio = (1088.0 * 1920.0) / (384.0 * 1248.0);
        let model_ratio = resolution_scale(Component::Detection, pixel_ratio);
        assert!(
            (flop_ratio - model_ratio).abs() / model_ratio < 0.05,
            "cost analyzer {flop_ratio:.3} vs model {model_ratio:.3}"
        );
    }

    #[test]
    fn implied_gpu_throughput_is_physically_plausible() {
        // Bridge the calibrated latency to the measured workload: the
        // implied GPU throughput for YOLO must sit below Titan X peak
        // (11 TFLOP/s) and far above the CPU's.
        let m = LatencyModel::paper_calibrated();
        let gflops =
            adsim_dnn::models::yolo_v2_spec(384, 1248).cost().unwrap().gflops();
        let gpu = gflops / (m.mean_ms(Component::Detection, Platform::Gpu, 1.0) / 1e3);
        let cpu = gflops / (m.mean_ms(Component::Detection, Platform::Cpu, 1.0) / 1e3);
        assert!(gpu < 11_000.0, "implied GPU throughput {gpu} GFLOP/s exceeds peak");
        assert!(gpu > 20.0 * cpu, "GPU {gpu} vs CPU {cpu} GFLOP/s");
    }

    #[test]
    fn loc_scales_sublinearly() {
        let det = resolution_scale(Component::Detection, 4.0);
        let loc = resolution_scale(Component::Localization, 4.0);
        assert!(loc < det);
        assert!((resolution_scale(Component::Localization, 1.0) - 1.0).abs() < 1e-12);
        assert_eq!(resolution_scale(Component::Fusion, 4.0), 1.0);
    }

    #[test]
    fn displays_match_paper_abbreviations() {
        assert_eq!(Component::Detection.to_string(), "DET");
        assert_eq!(Platform::Fpga.to_string(), "FPGA");
    }
}
