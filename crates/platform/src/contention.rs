//! Accelerator sharing and contention.
//!
//! The paper's configurations implicitly give each bottleneck its own
//! device ("each camera is paired with a replica of the computing
//! engine", §5.1.3). A cost-reduced design might instead time-share
//! one accelerator among DET, TRA and LOC; this module models the
//! feasibility and queueing inflation of that choice with an M/D/1-style
//! first-order model over per-engine utilizations.

use crate::model::{Component, LatencyModel, Platform};

/// Utilization of one device by one engine at a frame rate:
/// `mean_service_time × arrival_rate`.
pub fn utilization(model: &LatencyModel, c: Component, p: Platform, fps: f64) -> f64 {
    assert!(fps > 0.0, "frame rate must be positive");
    model.mean_ms(c, p, 1.0) / 1_000.0 * fps
}

/// Result of analyzing a shared device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharingAnalysis {
    /// Total utilization of the shared device.
    pub total_utilization: f64,
    /// Whether the device can sustain the offered load at all.
    pub feasible: bool,
    /// Latency inflation factor from queueing behind the co-runners
    /// (`1 / (1 − U_others)` per engine, averaged; 1.0 when dedicated).
    pub mean_inflation: f64,
}

/// Analyzes running a set of engines on one shared instance of a
/// platform at a camera frame rate.
///
/// Each engine sees its own service time inflated by waiting behind
/// the *other* engines' utilization: `T_shared = T / (1 − U_others)` —
/// the standard server-sharing first-order approximation.
///
/// # Examples
///
/// ```
/// use adsim_platform::{contention, Component, LatencyModel, Platform};
///
/// let model = LatencyModel::paper_calibrated();
/// // One GPU shared by all three bottlenecks at 10 FPS.
/// let a = contention::analyze_sharing(
///     &model,
///     &Component::BOTTLENECKS,
///     Platform::Gpu,
///     10.0,
/// );
/// assert!(a.feasible);
/// assert!(a.mean_inflation > 1.0);
/// ```
pub fn analyze_sharing(
    model: &LatencyModel,
    engines: &[Component],
    p: Platform,
    fps: f64,
) -> SharingAnalysis {
    let utils: Vec<f64> = engines.iter().map(|&c| utilization(model, c, p, fps)).collect();
    let total: f64 = utils.iter().sum();
    if total >= 1.0 {
        return SharingAnalysis {
            total_utilization: total,
            feasible: false,
            mean_inflation: f64::INFINITY,
        };
    }
    let mean_inflation = utils
        .iter()
        .map(|u| 1.0 / (1.0 - (total - u)))
        .sum::<f64>()
        / utils.len().max(1) as f64;
    SharingAnalysis { total_utilization: total, feasible: true, mean_inflation }
}

/// Inflated mean latency (ms) of one engine when sharing a device with
/// `others` at the given frame rate.
///
/// Returns `None` when the combined load saturates the device.
pub fn shared_mean_ms(
    model: &LatencyModel,
    c: Component,
    others: &[Component],
    p: Platform,
    fps: f64,
) -> Option<f64> {
    let own = model.mean_ms(c, p, 1.0);
    let others_util: f64 = others
        .iter()
        .filter(|&&o| o != c)
        .map(|&o| utilization(model, o, p, fps))
        .sum();
    let total = others_util + utilization(model, c, p, fps);
    if total >= 1.0 {
        return None;
    }
    Some(own / (1.0 - others_util))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LatencyModel {
        LatencyModel::paper_calibrated()
    }

    #[test]
    fn utilization_matches_fig10_means() {
        let m = model();
        // DET on GPU: 11.2 ms at 10 FPS -> 11.2% busy.
        let u = utilization(&m, Component::Detection, Platform::Gpu, 10.0);
        assert!((u - 0.112).abs() < 1e-9);
    }

    #[test]
    fn shared_gpu_is_feasible_at_10fps() {
        let m = model();
        let a = analyze_sharing(&m, &Component::BOTTLENECKS, Platform::Gpu, 10.0);
        // 11.2 + 5.5 + 20.3 ms per 100 ms = 37% busy.
        assert!(a.feasible);
        assert!((a.total_utilization - 0.37).abs() < 0.01);
        assert!(a.mean_inflation > 1.1 && a.mean_inflation < 1.6, "{}", a.mean_inflation);
    }

    #[test]
    fn cpu_cannot_share_anything_at_10fps() {
        let m = model();
        let a = analyze_sharing(&m, &Component::BOTTLENECKS, Platform::Cpu, 10.0);
        assert!(!a.feasible, "7.99 s of work per 100 ms frame");
        assert!(a.mean_inflation.is_infinite());
    }

    #[test]
    fn dedicated_engine_sees_no_inflation() {
        let m = model();
        let solo = shared_mean_ms(&m, Component::Detection, &[], Platform::Gpu, 10.0).unwrap();
        assert_eq!(solo, m.mean_ms(Component::Detection, Platform::Gpu, 1.0));
    }

    #[test]
    fn co_runners_inflate_latency() {
        let m = model();
        let shared = shared_mean_ms(
            &m,
            Component::Detection,
            &Component::BOTTLENECKS,
            Platform::Gpu,
            10.0,
        )
        .unwrap();
        let solo = m.mean_ms(Component::Detection, Platform::Gpu, 1.0);
        assert!(shared > solo * 1.2, "shared {shared} vs solo {solo}");
    }

    #[test]
    fn saturated_sharing_returns_none() {
        let m = model();
        assert!(shared_mean_ms(
            &m,
            Component::Detection,
            &Component::BOTTLENECKS,
            Platform::Fpga,
            10.0,
        )
        .is_none());
    }

    #[test]
    fn higher_fps_raises_utilization() {
        let m = model();
        let u10 = utilization(&m, Component::Localization, Platform::Gpu, 10.0);
        let u30 = utilization(&m, Component::Localization, Platform::Gpu, 30.0);
        assert!((u30 - 3.0 * u10).abs() < 1e-12);
    }
}
