//! The feature-extraction ASIC (paper §4.2.3, Table 3).
//!
//! The paper implements the FE pipeline of Fig. 9 in Verilog and
//! synthesizes it with an ARM Artisan IBM SOI 45 nm library, reaching
//! 4 GHz thanks to a deliberately simple, re-timed pipeline and
//! LUT-based trigonometry.

/// Table 3: Feature Extraction (FE) ASIC specifications.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeAsicSpec {
    /// Process technology.
    pub technology: &'static str,
    /// Die area (µm²).
    pub area_um2: f64,
    /// Clock rate (GHz).
    pub clock_ghz: f64,
    /// Power (mW).
    pub power_mw: f64,
}

impl FeAsicSpec {
    /// The paper's synthesized design.
    pub fn paper() -> Self {
        Self {
            technology: "ARM Artisan IBM SOI 45 nm",
            area_um2: 6539.9,
            clock_ghz: 4.0,
            power_mw: 21.97,
        }
    }

    /// Cycle time in nanoseconds.
    pub fn cycle_ns(&self) -> f64 {
        1.0 / self.clock_ghz
    }

    /// Latency speedup from replacing trigonometric computation with
    /// lookup tables (§4.2.3: "a 4× reduction in latency").
    pub const LUT_TRIG_SPEEDUP: f64 = 4.0;

    /// rBRIEF iterations per feature descriptor (one binary test per
    /// cycle, Fig. 9).
    pub const BRIEF_ITERATIONS: u32 = 256;

    /// Time to describe `features` keypoints, assuming the pipelined
    /// one-test-per-cycle design.
    pub fn describe_time_us(&self, features: u32) -> f64 {
        features as f64 * Self::BRIEF_ITERATIONS as f64 * self.cycle_ns() / 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec_values() {
        let s = FeAsicSpec::paper();
        assert_eq!(s.clock_ghz, 4.0);
        assert!((s.cycle_ns() - 0.25).abs() < 1e-12);
        assert!((s.power_mw - 21.97).abs() < 1e-9);
    }

    #[test]
    fn describe_time_scales_with_features() {
        let s = FeAsicSpec::paper();
        // 2000 features x 256 cycles x 0.25 ns = 128 us.
        assert!((s.describe_time_us(2000) - 128.0).abs() < 1e-9);
        assert_eq!(s.describe_time_us(0), 0.0);
    }

    #[test]
    fn sub_milliwatt_of_fig10c_is_for_fe_only() {
        // Fig. 10c reports ~0.1 W for LOC on ASICs; Table 3's 21.97 mW
        // is the FE block alone — consistent (FE is 85.9% of cycles
        // but a small block).
        assert!(FeAsicSpec::paper().power_mw / 1000.0 < 0.1);
    }
}
