//! Vehicle control plus the paper's physical constraint models:
//! power, thermal and driving range (§2.4.4–§2.4.5, Fig. 2, Fig. 12).
//!
//! * [`control`]: pure-pursuit steering and PID speed control over a
//!   kinematic bicycle model (step 5 of Fig. 1 — "the vehicle control
//!   engine simply follows the planned paths and trajectories"),
//! * [`power`]: storage power (8 W per 3 TB) and the cooling
//!   magnification from the automotive air conditioner's coefficient
//!   of performance of 1.3 (a 100 W system imposes 77 W of cooling),
//! * [`range`]: the Chevy Bolt EV driving-range model and the
//!   gasoline 1-MPG-per-400-W rule,
//! * [`thermal`]: cabin heating rates and operating-temperature
//!   envelopes.
//!
//! # Examples
//!
//! ```
//! use adsim_vehicle::power::SystemPower;
//!
//! // 8 cameras × 162 W of GPUs + the U.S. prior map.
//! let sys = SystemPower::new(8, 162.0, 41_000_000_000_000);
//! assert!(sys.total_w() > 2_000.0, "cooling magnifies the load");
//! ```

pub mod battery;
pub mod control;
pub mod power;
pub mod range;
pub mod thermal;

pub use control::{BicycleState, ControlCommand, VehicleController};
pub use power::SystemPower;
pub use range::{ev_range_reduction, gas_mpg_reduction, ChevyBolt};
