//! Vehicle control: pure-pursuit steering plus PID speed control over
//! a kinematic bicycle model (paper Fig. 1, step 5: "the vehicle
//! control engine simply follows the planned paths and trajectories by
//! operating the vehicle").

use adsim_vision::{Point2, Pose2};

/// The vehicle's kinematic state.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BicycleState {
    /// World pose.
    pub pose: Pose2,
    /// Longitudinal speed (m/s).
    pub speed_mps: f64,
}

impl BicycleState {
    /// Advances the kinematic bicycle model by `dt` seconds under a
    /// steering angle (rad) and longitudinal acceleration (m/s²).
    pub fn step(&self, wheelbase_m: f64, steer_rad: f64, accel_mps2: f64, dt: f64) -> Self {
        let speed = (self.speed_mps + accel_mps2 * dt).max(0.0);
        let theta = self.pose.theta + self.speed_mps / wheelbase_m * steer_rad.tan() * dt;
        BicycleState {
            pose: Pose2::new(
                self.pose.x + self.speed_mps * self.pose.theta.cos() * dt,
                self.pose.y + self.speed_mps * self.pose.theta.sin() * dt,
                theta,
            ),
            speed_mps: speed,
        }
    }
}

/// One actuation command (paper Fig. 1: "Accelerate? Steering?").
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ControlCommand {
    /// Steering angle (rad), positive left.
    pub steer_rad: f64,
    /// Longitudinal acceleration (m/s²).
    pub accel_mps2: f64,
}

/// Pure-pursuit steering + PID speed controller.
#[derive(Debug, Clone)]
pub struct VehicleController {
    wheelbase_m: f64,
    lookahead_m: f64,
    max_steer_rad: f64,
    kp: f64,
    ki: f64,
    integral: f64,
}

impl VehicleController {
    /// Creates a controller with passenger-car geometry.
    pub fn new() -> Self {
        Self {
            wheelbase_m: 2.7,
            lookahead_m: 6.0,
            max_steer_rad: 0.6,
            kp: 0.8,
            ki: 0.05,
            integral: 0.0,
        }
    }

    /// The wheelbase used by the companion bicycle model.
    pub fn wheelbase_m(&self) -> f64 {
        self.wheelbase_m
    }

    /// Computes the actuation toward a waypoint at a target speed.
    pub fn control(
        &mut self,
        state: &BicycleState,
        waypoint: Point2,
        target_speed_mps: f64,
        dt: f64,
    ) -> ControlCommand {
        // Pure pursuit: steer along the circle through the lookahead
        // point.
        let local = state.pose.inverse_transform(waypoint);
        let ld = local.norm().max(self.lookahead_m * 0.5);
        let curvature = 2.0 * local.y / (ld * ld);
        let steer = (self.wheelbase_m * curvature)
            .atan()
            .clamp(-self.max_steer_rad, self.max_steer_rad);

        // PI speed control.
        let err = target_speed_mps - state.speed_mps;
        self.integral = (self.integral + err * dt).clamp(-10.0, 10.0);
        let accel = (self.kp * err + self.ki * self.integral).clamp(-5.0, 3.0);
        ControlCommand { steer_rad: steer, accel_mps2: accel }
    }

    /// Convenience: controls and integrates one step.
    pub fn drive_step(
        &mut self,
        state: &BicycleState,
        waypoint: Point2,
        target_speed_mps: f64,
        dt: f64,
    ) -> BicycleState {
        let cmd = self.control(state, waypoint, target_speed_mps, dt);
        state.step(self.wheelbase_m, cmd.steer_rad, cmd.accel_mps2, dt)
    }
}

impl Default for VehicleController {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bicycle_goes_straight_with_zero_steer() {
        let s0 = BicycleState { pose: Pose2::identity(), speed_mps: 10.0 };
        let s1 = s0.step(2.7, 0.0, 0.0, 1.0);
        assert!((s1.pose.x - 10.0).abs() < 1e-9);
        assert_eq!(s1.pose.y, 0.0);
        assert_eq!(s1.pose.theta, 0.0);
    }

    #[test]
    fn bicycle_turns_left_with_positive_steer() {
        let s0 = BicycleState { pose: Pose2::identity(), speed_mps: 5.0 };
        let s1 = s0.step(2.7, 0.3, 0.0, 0.5);
        assert!(s1.pose.theta > 0.0);
    }

    #[test]
    fn speed_never_goes_negative() {
        let s0 = BicycleState { pose: Pose2::identity(), speed_mps: 1.0 };
        let s1 = s0.step(2.7, 0.0, -5.0, 1.0);
        assert_eq!(s1.speed_mps, 0.0);
    }

    #[test]
    fn controller_reaches_target_speed() {
        let mut ctl = VehicleController::new();
        let mut state = BicycleState::default();
        for _ in 0..200 {
            state = ctl.drive_step(&state, Point2::new(state.pose.x + 10.0, 0.0), 15.0, 0.1);
        }
        assert!((state.speed_mps - 15.0).abs() < 0.5, "speed {}", state.speed_mps);
    }

    #[test]
    fn controller_converges_to_offset_line() {
        // Start 5 m off a straight path along y = 0; follow waypoints
        // on the path.
        let mut ctl = VehicleController::new();
        let mut state = BicycleState {
            pose: Pose2::new(0.0, 5.0, 0.0),
            speed_mps: 8.0,
        };
        for _ in 0..300 {
            let wp = Point2::new(state.pose.x + 8.0, 0.0);
            state = ctl.drive_step(&state, wp, 8.0, 0.05);
        }
        assert!(state.pose.y.abs() < 0.5, "lateral error {}", state.pose.y);
        assert!(state.pose.theta.abs() < 0.1);
    }

    #[test]
    fn steering_saturates() {
        let mut ctl = VehicleController::new();
        let state = BicycleState { pose: Pose2::identity(), speed_mps: 5.0 };
        // Waypoint directly to the left demands infinite curvature.
        let cmd = ctl.control(&state, Point2::new(0.0, 3.0), 5.0, 0.1);
        assert!(cmd.steer_rad <= 0.6 + 1e-12);
        assert!(cmd.steer_rad > 0.5);
    }
}
