//! Battery state-of-charge simulation over a drive.
//!
//! The analytic range model (`crate::range`) answers "how much range
//! does the system cost"; this integrator answers "what does the
//! battery gauge do over an actual trip" — traction power plus the
//! autonomous system's total load, integrated over time.

use crate::range::ChevyBolt;

/// A simple EV battery: capacity, state of charge, and an energy
/// integrator.
///
/// # Examples
///
/// ```
/// use adsim_vehicle::battery::Battery;
///
/// let mut b = Battery::full(60.0);
/// b.draw_w(6_000.0, 3600.0); // 6 kW for an hour
/// assert!((b.state_of_charge() - 0.9).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Battery {
    capacity_wh: f64,
    remaining_wh: f64,
}

impl Battery {
    /// A full battery of the given capacity (kWh).
    ///
    /// # Panics
    ///
    /// Panics if `capacity_kwh` is not positive.
    pub fn full(capacity_kwh: f64) -> Self {
        assert!(capacity_kwh > 0.0, "battery capacity must be positive");
        Self { capacity_wh: capacity_kwh * 1_000.0, remaining_wh: capacity_kwh * 1_000.0 }
    }

    /// Remaining fraction in `[0, 1]`.
    pub fn state_of_charge(&self) -> f64 {
        self.remaining_wh / self.capacity_wh
    }

    /// Remaining energy (Wh).
    pub fn remaining_wh(&self) -> f64 {
        self.remaining_wh
    }

    /// Whether the battery is empty.
    pub fn is_empty(&self) -> bool {
        self.remaining_wh <= 0.0
    }

    /// Draws `power_w` for `seconds`; clamps at empty.
    ///
    /// # Panics
    ///
    /// Panics if power or duration is negative.
    pub fn draw_w(&mut self, power_w: f64, seconds: f64) {
        assert!(power_w >= 0.0 && seconds >= 0.0, "power and time must be non-negative");
        self.remaining_wh = (self.remaining_wh - power_w * seconds / 3_600.0).max(0.0);
    }
}

/// Result of a simulated trip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TripReport {
    /// Distance covered before the battery emptied (miles).
    pub distance_miles: f64,
    /// Trip duration (hours).
    pub duration_h: f64,
    /// Energy consumed by traction (Wh).
    pub traction_wh: f64,
    /// Energy consumed by the autonomous system (Wh).
    pub system_wh: f64,
}

/// Drives a [`ChevyBolt`] at constant speed until the battery empties,
/// with the autonomous system drawing `system_w` continuously.
///
/// Traction power is derived from the vehicle's rated range: consuming
/// the full battery over `range_miles` at `speed_mph` defines the
/// baseline W per mile.
pub fn simulate_trip(bolt: &ChevyBolt, speed_mph: f64, system_w: f64) -> TripReport {
    assert!(speed_mph > 0.0, "speed must be positive");
    let battery_wh = bolt.battery_kwh * 1_000.0;
    let traction_wh_per_mile = battery_wh / bolt.range_miles;
    let traction_w = traction_wh_per_mile * speed_mph;
    let mut battery = Battery::full(bolt.battery_kwh);
    let dt_s = 60.0;
    let mut t_s = 0.0;
    let (mut traction_wh, mut system_wh) = (0.0, 0.0);
    while !battery.is_empty() {
        let step_total = (traction_w + system_w) * dt_s / 3_600.0;
        if step_total >= battery.remaining_wh() {
            // Final partial step.
            let frac = battery.remaining_wh() / step_total;
            t_s += dt_s * frac;
            traction_wh += traction_w * dt_s * frac / 3_600.0;
            system_wh += system_w * dt_s * frac / 3_600.0;
            battery.draw_w(traction_w + system_w, dt_s * frac);
            break;
        }
        battery.draw_w(traction_w + system_w, dt_s);
        traction_wh += traction_w * dt_s / 3_600.0;
        system_wh += system_w * dt_s / 3_600.0;
        t_s += dt_s;
    }
    TripReport {
        distance_miles: speed_mph * t_s / 3_600.0,
        duration_h: t_s / 3_600.0,
        traction_wh,
        system_wh,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range::ev_range_reduction;

    #[test]
    fn no_system_load_achieves_rated_range() {
        let bolt = ChevyBolt::default();
        let trip = simulate_trip(&bolt, 60.0, 0.0);
        assert!(
            (trip.distance_miles - bolt.range_miles).abs() < 2.0,
            "distance {:.1} vs rated {:.0}",
            trip.distance_miles,
            bolt.range_miles
        );
        assert!(trip.system_wh < 1e-9);
    }

    #[test]
    fn integrated_range_matches_the_analytic_model() {
        // The analytic model (`ev_range_reduction`) and the integrator
        // must agree when the integrator is run at the speed implied by
        // the analytic drive power: 15.7 kW at the Bolt's Wh/mile is
        // ~62 mph.
        let bolt = ChevyBolt::default();
        let wh_per_mile = bolt.battery_kwh * 1_000.0 / bolt.range_miles;
        let speed = crate::range::DRIVE_POWER_W / wh_per_mile;
        let system_w = 1_000.0;
        let trip = simulate_trip(&bolt, speed, system_w);
        let analytic = bolt.range_miles * (1.0 - ev_range_reduction(system_w));
        let err = (trip.distance_miles - analytic).abs() / analytic;
        assert!(err < 0.02, "integrated {:.1} vs analytic {analytic:.1}", trip.distance_miles);
    }

    #[test]
    fn heavier_systems_shorten_trips() {
        let bolt = ChevyBolt::default();
        let light = simulate_trip(&bolt, 60.0, 438.0); // all-ASIC system
        let heavy = simulate_trip(&bolt, 60.0, 2_489.0); // all-GPU system
        assert!(heavy.distance_miles < light.distance_miles - 10.0);
        assert!(heavy.system_wh > light.system_wh);
    }

    #[test]
    fn energy_accounting_conserves_the_battery() {
        let bolt = ChevyBolt::default();
        let trip = simulate_trip(&bolt, 45.0, 800.0);
        let total = trip.traction_wh + trip.system_wh;
        assert!(
            (total - bolt.battery_kwh * 1_000.0).abs() < 20.0,
            "total {total:.0} Wh vs 60 kWh battery"
        );
    }

    #[test]
    fn battery_clamps_at_empty() {
        let mut b = Battery::full(1.0);
        b.draw_w(10_000.0, 3_600.0);
        assert!(b.is_empty());
        assert_eq!(b.state_of_charge(), 0.0);
    }
}
