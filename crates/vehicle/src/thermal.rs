//! Thermal constraint model (paper §2.4.4).
//!
//! The computing system must live inside the climate-controlled
//! passenger cabin: outside it, ambient reaches +105 °C while typical
//! processors are only rated to 75 °C. Inside, the system's heat must
//! be removed by added air-conditioning capacity or the cabin heats at
//! ~10 °C per minute per kW.

/// Maximum ambient temperature outside the passenger cabin (°C).
pub const AMBIENT_OUTSIDE_CABIN_C: f64 = 105.0;

/// Safe operating ceiling of a typical server-class processor (°C).
pub const CHIP_LIMIT_C: f64 = 75.0;

/// Cabin heating rate from dissipated heat with no added cooling:
/// "a computing system that consumes 1 kW power will raise the
/// temperature by 10 °C in a minute" (§2.4.4).
pub fn cabin_heating_c_per_min(heat_w: f64) -> f64 {
    assert!(heat_w >= 0.0, "heat cannot be negative");
    10.0 * heat_w / 1_000.0
}

/// Whether electronics can operate outside the cabin unaided.
pub fn can_operate_outside_cabin() -> bool {
    AMBIENT_OUTSIDE_CABIN_C <= CHIP_LIMIT_C
}

/// Time (minutes) for the cabin to rise from `start_c` to an
/// uncomfortable `limit_c` under `heat_w` of uncooled dissipation;
/// `None` if the heat is zero.
pub fn minutes_to_uncomfortable(heat_w: f64, start_c: f64, limit_c: f64) -> Option<f64> {
    let rate = cabin_heating_c_per_min(heat_w);
    if rate <= 0.0 || limit_c <= start_c {
        return if limit_c <= start_c { Some(0.0) } else { None };
    }
    Some((limit_c - start_c) / rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_heating_anchor() {
        assert_eq!(cabin_heating_c_per_min(1_000.0), 10.0);
    }

    #[test]
    fn electronics_cannot_live_outside_cabin() {
        assert!(!can_operate_outside_cabin(), "105 C ambient > 75 C chip limit");
    }

    #[test]
    fn time_to_uncomfortable_scales_inversely_with_heat() {
        let slow = minutes_to_uncomfortable(500.0, 22.0, 27.0).unwrap();
        let fast = minutes_to_uncomfortable(2_000.0, 22.0, 27.0).unwrap();
        assert!((slow - 1.0).abs() < 1e-9);
        assert!((fast - 0.25).abs() < 1e-9);
    }

    #[test]
    fn zero_heat_never_overheats() {
        assert_eq!(minutes_to_uncomfortable(0.0, 22.0, 27.0), None);
    }

    #[test]
    fn already_over_limit_is_immediate() {
        assert_eq!(minutes_to_uncomfortable(100.0, 30.0, 27.0), Some(0.0));
    }
}
