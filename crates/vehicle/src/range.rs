//! Driving-range and fuel-economy impact models (paper §2.4.5,
//! Fig. 2, Fig. 12).

/// The paper's reference electric vehicle (its Fig. 2/Fig. 12 analyses
/// are "evaluated based on a Chevy Bolt").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChevyBolt {
    /// Battery capacity (kWh).
    pub battery_kwh: f64,
    /// EPA driving range (miles).
    pub range_miles: f64,
}

impl Default for ChevyBolt {
    fn default() -> Self {
        Self { battery_kwh: 60.0, range_miles: 238.0 }
    }
}

/// Average traction power while driving, derived from the paper's own
/// anchor point: a 1 kW computing engine alone reduces the Bolt's
/// range by 6 % (Fig. 2), which implies
/// `P_drive = P · (1 − r) / r ≈ 15.7 kW`.
pub const DRIVE_POWER_W: f64 = 15_667.0;

/// Fractional driving-range reduction caused by `added_w` of
/// electrical load: the battery now feeds both traction and the added
/// system, so range scales by `P_drive / (P_drive + P_added)`.
///
/// # Examples
///
/// ```
/// use adsim_vehicle::ev_range_reduction;
///
/// // The paper's anchor: 1 kW -> 6 %.
/// let r = ev_range_reduction(1_000.0);
/// assert!((r - 0.06).abs() < 0.001);
/// ```
pub fn ev_range_reduction(added_w: f64) -> f64 {
    assert!(added_w >= 0.0, "added power cannot be negative");
    added_w / (added_w + DRIVE_POWER_W)
}

/// Gasoline rule of thumb (§2.4.5): every additional 400 W of
/// electrical load costs one MPG. Returns the *fractional* MPG
/// reduction for a car with the given base fuel economy.
///
/// # Examples
///
/// ```
/// use adsim_vehicle::gas_mpg_reduction;
///
/// // The paper's example: 400 W on a 31-MPG 2017 Audi A4 -> 3.23 %.
/// let r = gas_mpg_reduction(400.0, 31.0);
/// assert!((r - 0.0323).abs() < 0.001);
/// ```
pub fn gas_mpg_reduction(added_w: f64, base_mpg: f64) -> f64 {
    assert!(added_w >= 0.0, "added power cannot be negative");
    assert!(base_mpg > 0.0, "base MPG must be positive");
    (added_w / 400.0) / base_mpg
}

impl ChevyBolt {
    /// Remaining range (miles) with an added electrical load.
    pub fn range_with_load(&self, added_w: f64) -> f64 {
        self.range_miles * (1.0 - ev_range_reduction(added_w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_point_holds() {
        assert!((ev_range_reduction(1_000.0) - 0.06).abs() < 0.001);
    }

    #[test]
    fn full_system_reduction_matches_paper_scale() {
        // CPU + 3 GPUs (~1 kW) plus storage, magnified by cooling:
        // the paper reports ~11.5 % (Fig. 2); the analytic model gives
        // ~11.1 %.
        let system_w = (1_000.0 + 110.0) * (1.0 + 1.0 / 1.3);
        let r = ev_range_reduction(system_w);
        assert!(r > 0.10 && r < 0.125, "reduction {r}");
    }

    #[test]
    fn reduction_is_monotonic_and_bounded() {
        let mut last = 0.0;
        for w in [0.0, 100.0, 500.0, 1_000.0, 5_000.0] {
            let r = ev_range_reduction(w);
            assert!(r >= last);
            assert!(r < 1.0);
            last = r;
        }
        assert_eq!(ev_range_reduction(0.0), 0.0);
    }

    #[test]
    fn gas_rule_of_thumb() {
        // 800 W on a 20-MPG truck: 2 MPG of 20 -> 10 %.
        assert!((gas_mpg_reduction(800.0, 20.0) - 0.10).abs() < 1e-9);
    }

    #[test]
    fn bolt_range_shrinks_with_load() {
        let bolt = ChevyBolt::default();
        assert_eq!(bolt.range_with_load(0.0), 238.0);
        assert!(bolt.range_with_load(2_000.0) < 215.0);
    }
}
