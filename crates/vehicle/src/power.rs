//! System power accounting (paper §2.4.5).
//!
//! Total system power = computing engines (one replica per camera)
//! plus the storage engine, all magnified by the cooling load required
//! to remove the generated heat from the passenger cabin.

/// Storage power: "a typical storage system consumes around 8 W to
/// store every 3 TB data" (§2.4.5).
pub const STORAGE_W_PER_3TB: f64 = 8.0;

/// Coefficient of performance of an automotive air conditioner
/// (§2.4.5): cooling 1 W of heat costs 1/1.3 ≈ 0.77 W.
pub const COOLING_COP: f64 = 1.3;

/// Number of cameras on the paper's reference end-to-end system
/// ("the same as Tesla", §5.3); each camera gets a replica of the
/// computing engine.
pub const REFERENCE_CAMERAS: usize = 8;

/// Power draw of a storage system holding `bytes`.
pub fn storage_power_w(bytes: u64) -> f64 {
    bytes as f64 / 3e12 * STORAGE_W_PER_3TB
}

/// Cooling power required to remove `heat_w` of heat (the 77 %
/// overhead).
pub fn cooling_power_w(heat_w: f64) -> f64 {
    cooling_power_w_with_cop(heat_w, COOLING_COP)
}

/// Cooling power at an arbitrary coefficient of performance, for
/// ablations over air-conditioner efficiency.
///
/// # Panics
///
/// Panics if `cop` is not positive.
pub fn cooling_power_w_with_cop(heat_w: f64, cop: f64) -> f64 {
    assert!(cop > 0.0, "coefficient of performance must be positive");
    heat_w / cop
}

/// End-to-end system power: per-camera compute replicas, storage, and
/// the cooling overhead on top of both.
///
/// # Examples
///
/// ```
/// use adsim_vehicle::power::SystemPower;
///
/// let sys = SystemPower::new(8, 100.0, 3_000_000_000_000);
/// assert_eq!(sys.compute_w(), 800.0);
/// assert_eq!(sys.storage_w(), 8.0);
/// let expect = 808.0 * (1.0 + 1.0 / 1.3);
/// assert!((sys.total_w() - expect).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemPower {
    cameras: usize,
    compute_per_camera_w: f64,
    storage_bytes: u64,
}

impl SystemPower {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if `cameras` is zero or the per-camera power is negative.
    pub fn new(cameras: usize, compute_per_camera_w: f64, storage_bytes: u64) -> Self {
        assert!(cameras > 0, "a vision-based system needs at least one camera");
        assert!(compute_per_camera_w >= 0.0, "power cannot be negative");
        Self { cameras, compute_per_camera_w, storage_bytes }
    }

    /// Total computing power across all camera replicas.
    pub fn compute_w(&self) -> f64 {
        self.cameras as f64 * self.compute_per_camera_w
    }

    /// Storage engine power.
    pub fn storage_w(&self) -> f64 {
        storage_power_w(self.storage_bytes)
    }

    /// Electrical power before cooling.
    pub fn electrical_w(&self) -> f64 {
        self.compute_w() + self.storage_w()
    }

    /// Cooling power needed to remove the generated heat.
    pub fn cooling_w(&self) -> f64 {
        cooling_power_w(self.electrical_w())
    }

    /// Total system power including cooling — the light-blue bars of
    /// the paper's Fig. 12.
    pub fn total_w(&self) -> f64 {
        self.electrical_w() + self.cooling_w()
    }

    /// The magnification factor from electrical power to total power
    /// (≈ 1.77 at COP 1.3 — "almost doubles", Finding 5).
    pub fn magnification(&self) -> f64 {
        1.0 + 1.0 / COOLING_COP
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_matches_paper_us_map() {
        // 41 TB -> ~110 W (paper §5.3).
        let w = storage_power_w(41_000_000_000_000);
        assert!((w - 109.33).abs() < 0.5, "{w}");
    }

    #[test]
    fn hundred_watts_impose_77w_cooling() {
        assert!((cooling_power_w(100.0) - 76.9).abs() < 0.1);
    }

    #[test]
    fn better_cop_means_less_cooling_power() {
        assert!(cooling_power_w_with_cop(100.0, 4.0) < cooling_power_w_with_cop(100.0, 1.3));
        assert_eq!(cooling_power_w_with_cop(100.0, 2.0), 50.0);
    }

    #[test]
    fn total_nearly_doubles_electrical() {
        let sys = SystemPower::new(1, 100.0, 0);
        assert!((sys.magnification() - 1.769).abs() < 0.01);
        assert!((sys.total_w() - 176.9).abs() < 0.1);
    }

    #[test]
    fn cameras_replicate_compute() {
        let one = SystemPower::new(1, 50.0, 0);
        let eight = SystemPower::new(8, 50.0, 0);
        assert_eq!(eight.compute_w(), 8.0 * one.compute_w());
    }

    #[test]
    fn zero_storage_system_is_compute_only() {
        let sys = SystemPower::new(2, 10.0, 0);
        assert_eq!(sys.electrical_w(), 20.0);
    }

    #[test]
    #[should_panic(expected = "at least one camera")]
    fn zero_cameras_rejected() {
        SystemPower::new(0, 10.0, 0);
    }
}
