use crate::{Result, Shape, TensorError};

/// A dense, owned, row-major `f32` tensor.
///
/// # Examples
///
/// ```
/// use adsim_tensor::Tensor;
///
/// let t = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(t.at(&[1, 0]), 3.0);
/// assert_eq!(t.iter().sum::<f32>(), 10.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let data = vec![0.0; shape.len()];
        Self { shape, data }
    }

    /// Creates a tensor where every element is `value`.
    pub fn filled(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let data = vec![value; shape.len()];
        Self { shape, data }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs
    /// from the element count of `shape`.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self> {
        let shape = shape.into();
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch { shape, len: data.len() });
        }
        Ok(Self { shape, data })
    }

    /// Creates a tensor by evaluating `f` at every index.
    pub fn from_fn(shape: impl Into<Shape>, mut f: impl FnMut(&[usize]) -> f32) -> Self {
        let shape = shape.into();
        let mut data = Vec::with_capacity(shape.len());
        let mut index = vec![0usize; shape.rank()];
        loop {
            data.push(f(&index));
            // Odometer-style increment over the index space.
            let mut axis = shape.rank();
            loop {
                if axis == 0 {
                    return Self { shape, data };
                }
                axis -= 1;
                index[axis] += 1;
                if index[axis] < shape.dim(axis) {
                    break;
                }
                index[axis] = 0;
            }
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements (never true by
    /// construction; shapes have positive dimensions).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-bounds coordinates.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-bounds coordinates.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// The underlying data in row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data in row-major order.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its data in row-major order.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Iterator over elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.data.iter()
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts
    /// differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Result<Tensor> {
        let shape = shape.into();
        if shape.len() != self.data.len() {
            return Err(TensorError::LengthMismatch { shape, len: self.data.len() });
        }
        Ok(Tensor { shape, data: self.data.clone() })
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// [`Tensor::map`] on a worker pool: contiguous spans of elements
    /// go to separate workers. `f` must be pure — spans run in
    /// unspecified order.
    pub fn map_with(&self, rt: &adsim_runtime::Runtime, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let mut out = self.clone();
        let rt = rt.for_work(out.data.len());
        let span = out.data.len().div_ceil(4 * rt.threads()).max(1);
        rt.par_chunks_mut(&mut out.data, span, |_, chunk| {
            for x in chunk {
                *x = f(*x);
            }
        });
        out
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn mul(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_with(rhs, "mul", |a, b| a * b)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, factor: f32) -> Tensor {
        self.map(|x| x * factor)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Largest element (−∞ only if the tensor were empty, which cannot
    /// happen by construction).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Index of the largest element in row-major order.
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    fn zip_with(
        &self,
        rhs: &Tensor,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor> {
        if self.shape != rhs.shape {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape.clone(),
                rhs: rhs.shape.clone(),
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }
}

impl<'a> IntoIterator for &'a Tensor {
    type Item = &'a f32;
    type IntoIter = std::slice::Iter<'a, f32>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_filled() {
        let z = Tensor::zeros([2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.iter().all(|&x| x == 0.0));
        let f = Tensor::filled([2, 3], 7.0);
        assert_eq!(f.sum(), 42.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec([2, 2], vec![1.0; 4]).is_ok());
        let err = Tensor::from_vec([2, 2], vec![1.0; 5]).unwrap_err();
        assert!(matches!(err, TensorError::LengthMismatch { len: 5, .. }));
    }

    #[test]
    fn from_fn_visits_indices_in_row_major_order() {
        let t = Tensor::from_fn([2, 3], |idx| (idx[0] * 3 + idx[1]) as f32);
        assert_eq!(t.as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn indexing_round_trip() {
        let mut t = Tensor::zeros([2, 2, 2]);
        *t.at_mut(&[1, 0, 1]) = 9.0;
        assert_eq!(t.at(&[1, 0, 1]), 9.0);
        assert_eq!(t.at(&[0, 0, 0]), 0.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec([2, 3], (0..6).map(|i| i as f32).collect()).unwrap();
        let r = t.reshape([3, 2]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape([4, 2]).is_err());
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = Tensor::from_vec([3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec([3], vec![4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn mismatched_shapes_error() {
        let a = Tensor::zeros([2]);
        let b = Tensor::zeros([3]);
        assert!(matches!(
            a.add(&b).unwrap_err(),
            TensorError::ShapeMismatch { op: "add", .. }
        ));
    }

    #[test]
    fn max_and_argmax() {
        let t = Tensor::from_vec([4], vec![1.0, 9.0, 3.0, 9.0]).unwrap();
        assert_eq!(t.max(), 9.0);
        assert_eq!(t.argmax(), 1, "argmax returns the first maximum");
    }

    #[test]
    fn map_inplace_matches_map() {
        let t = Tensor::from_vec([3], vec![-1.0, 0.0, 2.0]).unwrap();
        let mapped = t.map(|x| x.abs());
        let mut inplace = t.clone();
        inplace.map_inplace(|x| x.abs());
        assert_eq!(mapped, inplace);
    }
}
