use crate::{Result, Shape, TensorError};
use std::sync::Arc;

/// A dense, row-major `f32` tensor with copy-on-write shared storage.
///
/// The element buffer lives behind an [`Arc`], so `clone()` is O(1) and
/// the clone *shares* storage with the original — the mechanism that
/// lets a fleet of vehicle pipelines hold one copy of each DNN weight
/// bank (the workspace's largest allocations) instead of one per
/// vehicle. Mutation goes through [`Tensor::as_mut_slice`] /
/// [`Tensor::at_mut`] / [`Tensor::map_inplace`], which copy-on-write:
/// a uniquely-owned buffer is mutated in place (the common case for
/// freshly computed kernel outputs), a shared one is detached first,
/// so sharing is never observable through the API.
///
/// # Examples
///
/// ```
/// use adsim_tensor::Tensor;
///
/// let t = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(t.at(&[1, 0]), 3.0);
/// assert_eq!(t.iter().sum::<f32>(), 10.0);
///
/// let shared = t.clone();
/// assert!(shared.ptr_eq(&t), "clones share storage");
/// let mut detached = t.clone();
/// detached.as_mut_slice()[0] = 9.0;
/// assert!(!detached.ptr_eq(&t), "mutation detaches");
/// assert_eq!(t.at(&[0, 0]), 1.0, "original unchanged");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Arc<Vec<f32>>,
}

impl Tensor {
    /// Creates a tensor of zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let data = Arc::new(vec![0.0; shape.len()]);
        Self { shape, data }
    }

    /// Creates a tensor where every element is `value`.
    pub fn filled(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let data = Arc::new(vec![value; shape.len()]);
        Self { shape, data }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs
    /// from the element count of `shape`.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self> {
        let shape = shape.into();
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch { shape, len: data.len() });
        }
        Ok(Self { shape, data: Arc::new(data) })
    }

    /// Creates a tensor by evaluating `f` at every index.
    pub fn from_fn(shape: impl Into<Shape>, mut f: impl FnMut(&[usize]) -> f32) -> Self {
        let shape = shape.into();
        let mut data = Vec::with_capacity(shape.len());
        let mut index = vec![0usize; shape.rank()];
        loop {
            data.push(f(&index));
            // Odometer-style increment over the index space.
            let mut axis = shape.rank();
            loop {
                if axis == 0 {
                    return Self { shape, data: Arc::new(data) };
                }
                axis -= 1;
                index[axis] += 1;
                if index[axis] < shape.dim(axis) {
                    break;
                }
                index[axis] = 0;
            }
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements (never true by
    /// construction; shapes have positive dimensions).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-bounds coordinates.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element at a multi-dimensional index. Detaches shared
    /// storage first (copy-on-write).
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-bounds coordinates.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut Arc::make_mut(&mut self.data)[off]
    }

    /// The underlying data in row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data in row-major order.
    /// Detaches shared storage first (copy-on-write).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Consumes the tensor, returning its data in row-major order
    /// (clones only if the storage is still shared).
    pub fn into_vec(self) -> Vec<f32> {
        Arc::try_unwrap(self.data).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Whether `self` and `other` share the same underlying storage —
    /// the observable form of the fleet's weight-sharing guarantee.
    pub fn ptr_eq(&self, other: &Tensor) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Address of the shared storage, for counting distinct weight
    /// allocations across a fleet of pipelines.
    pub fn storage_ptr(&self) -> *const f32 {
        self.data.as_ptr()
    }

    /// Iterator over elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.data.iter()
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts
    /// differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Result<Tensor> {
        let shape = shape.into();
        if shape.len() != self.data.len() {
            return Err(TensorError::LengthMismatch { shape, len: self.data.len() });
        }
        // Reshape shares storage: same data, new shape.
        Ok(Tensor { shape, data: Arc::clone(&self.data) })
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: Arc::new(self.data.iter().map(|&x| f(x)).collect()),
        }
    }

    /// Applies `f` to every element in place (copy-on-write when the
    /// storage is shared).
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in Arc::make_mut(&mut self.data) {
            *x = f(*x);
        }
    }

    /// [`Tensor::map`] on a worker pool: contiguous spans of elements
    /// go to separate workers. `f` must be pure — spans run in
    /// unspecified order.
    pub fn map_with(&self, rt: &adsim_runtime::Runtime, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let mut out = self.clone();
        let rt = rt.for_work(out.len());
        let span = out.len().div_ceil(4 * rt.threads()).max(1);
        rt.par_chunks_mut(out.as_mut_slice(), span, |_, chunk| {
            for x in chunk {
                *x = f(*x);
            }
        });
        out
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn mul(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_with(rhs, "mul", |a, b| a * b)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, factor: f32) -> Tensor {
        self.map(|x| x * factor)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Largest element (−∞ only if the tensor were empty, which cannot
    /// happen by construction).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Index of the largest element in row-major order.
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    fn zip_with(
        &self,
        rhs: &Tensor,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor> {
        if self.shape != rhs.shape {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape.clone(),
                rhs: rhs.shape.clone(),
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: Arc::new(
                self.data
                    .iter()
                    .zip(rhs.data.iter())
                    .map(|(&a, &b)| f(a, b))
                    .collect(),
            ),
        })
    }
}

impl<'a> IntoIterator for &'a Tensor {
    type Item = &'a f32;
    type IntoIter = std::slice::Iter<'a, f32>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_filled() {
        let z = Tensor::zeros([2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.iter().all(|&x| x == 0.0));
        let f = Tensor::filled([2, 3], 7.0);
        assert_eq!(f.sum(), 42.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec([2, 2], vec![1.0; 4]).is_ok());
        let err = Tensor::from_vec([2, 2], vec![1.0; 5]).unwrap_err();
        assert!(matches!(err, TensorError::LengthMismatch { len: 5, .. }));
    }

    #[test]
    fn from_fn_visits_indices_in_row_major_order() {
        let t = Tensor::from_fn([2, 3], |idx| (idx[0] * 3 + idx[1]) as f32);
        assert_eq!(t.as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn indexing_round_trip() {
        let mut t = Tensor::zeros([2, 2, 2]);
        *t.at_mut(&[1, 0, 1]) = 9.0;
        assert_eq!(t.at(&[1, 0, 1]), 9.0);
        assert_eq!(t.at(&[0, 0, 0]), 0.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec([2, 3], (0..6).map(|i| i as f32).collect()).unwrap();
        let r = t.reshape([3, 2]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape([4, 2]).is_err());
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = Tensor::from_vec([3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec([3], vec![4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn mismatched_shapes_error() {
        let a = Tensor::zeros([2]);
        let b = Tensor::zeros([3]);
        assert!(matches!(
            a.add(&b).unwrap_err(),
            TensorError::ShapeMismatch { op: "add", .. }
        ));
    }

    #[test]
    fn max_and_argmax() {
        let t = Tensor::from_vec([4], vec![1.0, 9.0, 3.0, 9.0]).unwrap();
        assert_eq!(t.max(), 9.0);
        assert_eq!(t.argmax(), 1, "argmax returns the first maximum");
    }

    #[test]
    fn clones_share_storage_until_mutated() {
        let a = Tensor::from_vec([4], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = a.clone();
        assert!(a.ptr_eq(&b));
        assert_eq!(a.storage_ptr(), b.storage_ptr());
        // Reshape also shares.
        let r = a.reshape([2, 2]).unwrap();
        assert!(r.ptr_eq(&a));
        // Any mutation path detaches without touching the original.
        let mut c = a.clone();
        *c.at_mut(&[2]) = 9.0;
        assert!(!c.ptr_eq(&a));
        assert_eq!(a.at(&[2]), 3.0);
        let mut d = a.clone();
        d.map_inplace(|x| x + 1.0);
        assert!(!d.ptr_eq(&a));
        assert_eq!(a.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn into_vec_round_trips_shared_and_unique() {
        let a = Tensor::from_vec([3], vec![5.0, 6.0, 7.0]).unwrap();
        let b = a.clone();
        // Shared: into_vec clones out.
        assert_eq!(b.into_vec(), vec![5.0, 6.0, 7.0]);
        // Unique: into_vec moves the buffer.
        assert_eq!(a.into_vec(), vec![5.0, 6.0, 7.0]);
    }

    #[test]
    fn map_inplace_matches_map() {
        let t = Tensor::from_vec([3], vec![-1.0, 0.0, 2.0]).unwrap();
        let mapped = t.map(|x| x.abs());
        let mut inplace = t.clone();
        inplace.map_inplace(|x| x.abs());
        assert_eq!(mapped, inplace);
    }
}
