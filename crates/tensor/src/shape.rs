/// The dimensions of a [`Tensor`](crate::Tensor), stored outermost-first.
///
/// Convolutional tensors in this workspace use the NCHW convention:
/// `[batch, channels, height, width]`.
///
/// # Examples
///
/// ```
/// use adsim_tensor::Shape;
///
/// let s = Shape::new(vec![1, 3, 8, 8]);
/// assert_eq!(s.len(), 192);
/// assert_eq!(s.rank(), 4);
/// assert_eq!(s.dim(1), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from its dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero; zero-sized tensors are never
    /// meaningful in this workspace and always indicate a bug.
    pub fn new(dims: Vec<usize>) -> Self {
        assert!(
            dims.iter().all(|&d| d > 0),
            "all dimensions must be positive, got {dims:?}"
        );
        Self { dims }
    }

    /// The dimensions, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape holds zero elements (never true; see [`Shape::new`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides: the element distance between successive
    /// indices along each axis.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat offset.
    ///
    /// # Panics
    ///
    /// Panics if the index rank differs from the shape rank or any
    /// coordinate is out of bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.dims.len(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.dims.len()
        );
        let mut off = 0;
        let strides = self.strides();
        for (axis, (&i, &d)) in index.iter().zip(&self.dims).enumerate() {
            assert!(i < d, "index {i} out of bounds for axis {axis} with size {d}");
            off += i * strides[axis];
        }
        off
    }

    /// Interprets this shape as NCHW, returning `(n, c, h, w)`.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError::RankMismatch`](crate::TensorError) if the
    /// rank is not 4.
    pub fn as_nchw(&self) -> crate::Result<(usize, usize, usize, usize)> {
        if self.rank() != 4 {
            return Err(crate::TensorError::RankMismatch {
                op: "as_nchw",
                expected: 4,
                actual: self.rank(),
            });
        }
        Ok((self.dims[0], self.dims[1], self.dims[2], self.dims[3]))
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_round_trip() {
        let s = Shape::new(vec![2, 3, 4]);
        let mut seen = std::collections::HashSet::new();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    assert!(seen.insert(s.offset(&[i, j, k])));
                }
            }
        }
        assert_eq!(seen.len(), s.len());
        assert_eq!(*seen.iter().max().unwrap(), s.len() - 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_checks_bounds() {
        Shape::new(vec![2, 2]).offset(&[0, 2]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_rejected() {
        Shape::new(vec![1, 0]);
    }

    #[test]
    fn nchw_accessor() {
        let s = Shape::new(vec![1, 3, 10, 20]);
        assert_eq!(s.as_nchw().unwrap(), (1, 3, 10, 20));
        assert!(Shape::new(vec![3]).as_nchw().is_err());
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::new(vec![1, 2, 3]).to_string(), "[1x2x3]");
    }

    #[test]
    fn from_array_and_vec() {
        assert_eq!(Shape::from([2, 2]), Shape::from(vec![2, 2]));
    }
}
