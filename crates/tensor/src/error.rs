use crate::Shape;

/// Errors produced by tensor construction and kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// The data length does not match the product of the dimensions.
    LengthMismatch {
        /// Shape the caller requested.
        shape: Shape,
        /// Number of elements actually supplied.
        len: usize,
    },
    /// Two operands have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human-readable name of the operation.
        op: &'static str,
        /// Shape of the left/first operand.
        lhs: Shape,
        /// Shape of the right/second operand.
        rhs: Shape,
    },
    /// The operation requires a tensor of a different rank.
    RankMismatch {
        /// Human-readable name of the operation.
        op: &'static str,
        /// Rank the operation expects.
        expected: usize,
        /// Rank of the supplied tensor.
        actual: usize,
    },
    /// A kernel parameter (stride, window, …) is invalid.
    InvalidParameter {
        /// Human-readable name of the operation.
        op: &'static str,
        /// Description of what was wrong.
        reason: String,
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::LengthMismatch { shape, len } => write!(
                f,
                "data length {len} does not match shape {shape} ({} elements)",
                shape.len()
            ),
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: incompatible shapes {lhs} and {rhs}")
            }
            TensorError::RankMismatch { op, expected, actual } => {
                write!(f, "{op}: expected rank {expected}, got rank {actual}")
            }
            TensorError::InvalidParameter { op, reason } => {
                write!(f, "{op}: invalid parameter: {reason}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_nonempty() {
        let errs = [
            TensorError::LengthMismatch { shape: Shape::new(vec![2, 2]), len: 3 },
            TensorError::ShapeMismatch {
                op: "add",
                lhs: Shape::new(vec![1]),
                rhs: Shape::new(vec![2]),
            },
            TensorError::RankMismatch { op: "conv2d", expected: 4, actual: 2 },
            TensorError::InvalidParameter { op: "pool", reason: "window 0".into() },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
