//! Dense `f32` tensors and the neural-network primitive kernels needed
//! by the autonomous-driving perception stack.
//!
//! The paper's two DNN-based bottlenecks — object detection (YOLO) and
//! object tracking (GOTURN) — are built from convolution, pooling,
//! activation and fully-connected layers (§4.2.2). This crate provides
//! those kernels over a simple owned NCHW tensor, along with exact
//! shape/stride machinery and typed errors. The layer-graph engine that
//! composes them lives in `adsim-dnn`.
//!
//! # Examples
//!
//! ```
//! use adsim_tensor::{Tensor, ops};
//!
//! // A 1x1x4x4 input convolved with a single 3x3 kernel.
//! let input = Tensor::from_fn([1, 1, 4, 4], |idx| idx[2] as f32 + idx[3] as f32);
//! let kernel = Tensor::filled([1, 1, 3, 3], 1.0 / 9.0);
//! let out = ops::conv2d(&input, &kernel, None, 1, 1).unwrap();
//! assert_eq!(out.shape().dims(), &[1, 1, 4, 4]);
//! ```

mod error;
pub mod ops;
mod shape;
pub mod simd;
mod tensor;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;

/// Result alias for fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;
