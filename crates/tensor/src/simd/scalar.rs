//! Portable scalar backend: the 8-wide `Lanes` API over `[f32; 8]`.
//!
//! This backend defines the reference semantics for every kernel —
//! `mul_add` is a separate multiply and add (never `f32::mul_add`),
//! matching what the pre-SIMD tensor ops computed element by element.
//! It compiles with whatever baseline auto-vectorization the target
//! allows (e.g. SSE2 on `x86_64`), which is exactly the "scalar
//! microkernel" the benchmark harness compares against.

#[derive(Clone, Copy)]
pub(super) struct Lanes([f32; 8]);

impl Lanes {
    #[inline(always)]
    fn splat(v: f32) -> Self {
        Lanes([v; 8])
    }

    #[inline(always)]
    fn load(src: &[f32], i: usize) -> Self {
        Lanes(src[i..i + 8].try_into().expect("8 lanes"))
    }

    #[inline(always)]
    fn store(self, dst: &mut [f32], i: usize) {
        dst[i..i + 8].copy_from_slice(&self.0);
    }

    /// `acc + self·b` with two roundings (multiply, then add).
    #[inline(always)]
    fn mul_add(self, b: Self, acc: Self) -> Self {
        Lanes(std::array::from_fn(|l| acc.0[l] + self.0[l] * b.0[l]))
    }

    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        Lanes(std::array::from_fn(|l| self.0[l] * o.0[l]))
    }

    #[inline(always)]
    fn add(self, o: Self) -> Self {
        Lanes(std::array::from_fn(|l| self.0[l] + o.0[l]))
    }

    #[inline(always)]
    fn max(self, o: Self) -> Self {
        Lanes(std::array::from_fn(|l| self.0[l].max(o.0[l])))
    }

    /// Per-lane `if self ≥ 0 { self } else { neg }`.
    #[inline(always)]
    fn select_ge_zero(self, neg: Self) -> Self {
        Lanes(std::array::from_fn(|l| {
            if self.0[l] >= 0.0 {
                self.0[l]
            } else {
                neg.0[l]
            }
        }))
    }
}

lane_kernels!();

/// Strictly sequential dot product — bit-identical to the historical
/// `linear` inner loop.
pub(super) fn dot(x: &[f32], y: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (a, b) in x.iter().zip(y) {
        acc += a * b;
    }
    acc
}
