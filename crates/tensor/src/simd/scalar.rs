//! Portable scalar backend: the 8-wide `Lanes` API over `[f32; 8]`.
//!
//! This backend defines the reference semantics for every kernel —
//! `mul_add` is a separate multiply and add (never `f32::mul_add`),
//! matching what the pre-SIMD tensor ops computed element by element.
//! It compiles with whatever baseline auto-vectorization the target
//! allows (e.g. SSE2 on `x86_64`), which is exactly the "scalar
//! microkernel" the benchmark harness compares against.

#[derive(Clone, Copy)]
pub(super) struct Lanes([f32; 8]);

impl Lanes {
    #[inline(always)]
    fn splat(v: f32) -> Self {
        Lanes([v; 8])
    }

    #[inline(always)]
    fn load(src: &[f32], i: usize) -> Self {
        Lanes(src[i..i + 8].try_into().expect("8 lanes"))
    }

    #[inline(always)]
    fn store(self, dst: &mut [f32], i: usize) {
        dst[i..i + 8].copy_from_slice(&self.0);
    }

    /// `acc + self·b` with two roundings (multiply, then add).
    #[inline(always)]
    fn mul_add(self, b: Self, acc: Self) -> Self {
        Lanes(std::array::from_fn(|l| acc.0[l] + self.0[l] * b.0[l]))
    }

    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        Lanes(std::array::from_fn(|l| self.0[l] * o.0[l]))
    }

    #[inline(always)]
    fn add(self, o: Self) -> Self {
        Lanes(std::array::from_fn(|l| self.0[l] + o.0[l]))
    }

    #[inline(always)]
    fn max(self, o: Self) -> Self {
        Lanes(std::array::from_fn(|l| self.0[l].max(o.0[l])))
    }

    /// Per-lane `if self ≥ 0 { self } else { neg }`.
    #[inline(always)]
    fn select_ge_zero(self, neg: Self) -> Self {
        Lanes(std::array::from_fn(|l| {
            if self.0[l] >= 0.0 {
                self.0[l]
            } else {
                neg.0[l]
            }
        }))
    }
}

/// Scalar-tail contraction used by the GEMM kernels: plain multiply
/// then add (two roundings), matching [`Lanes::mul_add`] on this
/// backend — so a column's result never depends on whether it fell in
/// a vector tile or the tail.
#[inline(always)]
pub(super) fn mul_add_s(a: f32, b: f32, acc: f32) -> f32 {
    acc + a * b
}

lane_kernels!();
lane_kernels_i8!();

#[derive(Clone, Copy)]
pub(super) struct I8Acc([i32; 8]);

impl I8Acc {
    #[inline(always)]
    fn load(src: &[i32], i: usize) -> Self {
        I8Acc(src[i..i + 8].try_into().expect("8 lanes"))
    }

    #[inline(always)]
    fn store(self, dst: &mut [i32], i: usize) {
        dst[i..i + 8].copy_from_slice(&self.0);
    }

    /// `acc[l] += a0·b0[l] + a1·b1[l]` — exact integer arithmetic, so
    /// grouping is irrelevant and every backend agrees bit-for-bit.
    #[inline(always)]
    fn madd(self, a: I8PairA, b: I8PairB) -> Self {
        I8Acc(std::array::from_fn(|l| self.0[l] + a.0 * b.0[l] + a.1 * b.1[l]))
    }
}

/// A widened `(a_k, a_{k+1})` coefficient pair.
#[derive(Clone, Copy)]
pub(super) struct I8PairA(i32, i32);

impl I8PairA {
    #[inline(always)]
    fn load(pa: &[i16], i: usize) -> Self {
        I8PairA(pa[i] as i32, pa[i + 1] as i32)
    }
}

/// Eight columns of a widened pair-packed B row (even elements are
/// the first source row, odd elements the second).
#[derive(Clone, Copy)]
pub(super) struct I8PairB([i32; 8], [i32; 8]);

impl I8PairB {
    #[inline(always)]
    fn load_packed(prow: &[i16], j: usize) -> Self {
        I8PairB(
            std::array::from_fn(|l| prow[2 * (j + l)] as i32),
            std::array::from_fn(|l| prow[2 * (j + l) + 1] as i32),
        )
    }
}

/// Strictly sequential dot product — bit-identical to the historical
/// `linear` inner loop.
pub(super) fn dot(x: &[f32], y: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (a, b) in x.iter().zip(y) {
        acc += a * b;
    }
    acc
}
