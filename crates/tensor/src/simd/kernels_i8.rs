//! Shared int8 lane-kernel bodies, instantiated once per backend —
//! the fixed-point GEMM the paper's ASIC/FPGA exploration (§4.2.3)
//! rests on, brought up as a CPU lane path.
//!
//! Each backend defines three types with the same API and then invokes
//! [`lane_kernels_i8!`]:
//!
//! * `I8Acc` — eight `i32` accumulators (`load`, `store`, `madd`);
//! * `I8PairA` — a broadcast `(a_k, a_{k+1})` coefficient pair, loaded
//!   as one 32-bit broadcast from the pre-widened i16 A row;
//! * `I8PairB` — eight columns of one **pair-packed** B row.
//!
//! `k` is consumed **in pairs** so AVX2 can use `vpmaddwd` (i16×i16
//! pairwise multiply-add into i32) and NEON its widening `vmlal`. The
//! B operand arrives **pair-packed and pre-widened** (`ops::pack_i8_b`):
//! rows `2p` and `2p+1` interleaved as i16 elements
//! `[b₂ₚ[0], b₂ₚ₊₁[0], b₂ₚ[1], …]`, an odd trailing row padded with
//! zeros — exactly the lane order the multiply instructions consume.
//! Packing happens once per operand — for weights, once per *network*
//! — so the inner loop is a single full-width vector load per eight
//! columns with no shuffle or sign-extension, at half the f32 path's
//! memory traffic. The A operand is likewise pre-widened to i16 rows
//! with an even zero-padded stride by the ops layer, making each
//! coefficient pair a single 32-bit broadcast. An odd trailing `k`
//! runs with the coefficient pair `(a_k, 0)` (the A pad), which
//! contributes exactly `a_k·b_k[j]` regardless of the B pad. Every
//! product is
//! |x| ≤ 127², far inside `i32`, so the arithmetic is *exact*: unlike
//! the f32 kernels there is no rounding anywhere, and the result is
//! bit-identical across backends, tilings, thread counts and batch
//! layouts by construction. Callers must keep `k ≤ i32::MAX / (2·127²)`
//! (≈ 66 million) so accumulators cannot wrap; the ops layer asserts
//! this.

macro_rules! lane_kernels_i8 {
    ($(#[$attr:meta])*) => {
        /// 4-row int8 GEMM panel over pair-packed B:
        /// `o_r[j] += Σ_{kk∈k0..k1} a[r·lda+kk]·b[kk·n+j]` in i32.
        ///
        /// `bp` is the packed operand (pair-row element stride `2·n`,
        /// possibly offset to a column panel's first column); the
        /// column count is `o0.len()`. `k0` must be even (the ops
        /// layer steps panels by an even `KC`). Tiles 16 columns (two
        /// accumulator vectors per row) with an 8-column then scalar
        /// tail, mirroring the f32 `gemm4`.
        $(#[$attr])*
        #[allow(clippy::too_many_arguments)]
        pub(super) fn gemm4_i8(
            pa: &[i16],
            lda: usize,
            k0: usize,
            k1: usize,
            bp: &[i16],
            n: usize,
            o0: &mut [i32],
            o1: &mut [i32],
            o2: &mut [i32],
            o3: &mut [i32],
        ) {
            debug_assert_eq!(k0 % 2, 0, "k-panels must start on a row pair");
            let w = o0.len();
            let mut j = 0;
            while j + 16 <= w {
                let mut c00 = I8Acc::load(o0, j);
                let mut c01 = I8Acc::load(o0, j + 8);
                let mut c10 = I8Acc::load(o1, j);
                let mut c11 = I8Acc::load(o1, j + 8);
                let mut c20 = I8Acc::load(o2, j);
                let mut c21 = I8Acc::load(o2, j + 8);
                let mut c30 = I8Acc::load(o3, j);
                let mut c31 = I8Acc::load(o3, j + 8);
                let mut kk = k0;
                while kk < k1 {
                    let prow = &bp[kk * n..kk * n + 2 * w];
                    let bp0 = I8PairB::load_packed(prow, j);
                    let bp1 = I8PairB::load_packed(prow, j + 8);
                    let a0 = I8PairA::load(pa, kk);
                    c00 = c00.madd(a0, bp0);
                    c01 = c01.madd(a0, bp1);
                    let a1 = I8PairA::load(pa, lda + kk);
                    c10 = c10.madd(a1, bp0);
                    c11 = c11.madd(a1, bp1);
                    let a2 = I8PairA::load(pa, 2 * lda + kk);
                    c20 = c20.madd(a2, bp0);
                    c21 = c21.madd(a2, bp1);
                    let a3 = I8PairA::load(pa, 3 * lda + kk);
                    c30 = c30.madd(a3, bp0);
                    c31 = c31.madd(a3, bp1);
                    kk += 2;
                }
                c00.store(o0, j);
                c01.store(o0, j + 8);
                c10.store(o1, j);
                c11.store(o1, j + 8);
                c20.store(o2, j);
                c21.store(o2, j + 8);
                c30.store(o3, j);
                c31.store(o3, j + 8);
                j += 16;
            }
            while j + 8 <= w {
                let mut c0 = I8Acc::load(o0, j);
                let mut c1 = I8Acc::load(o1, j);
                let mut c2 = I8Acc::load(o2, j);
                let mut c3 = I8Acc::load(o3, j);
                let mut kk = k0;
                while kk < k1 {
                    let prow = &bp[kk * n..kk * n + 2 * w];
                    let b = I8PairB::load_packed(prow, j);
                    c0 = c0.madd(I8PairA::load(pa, kk), b);
                    c1 = c1.madd(I8PairA::load(pa, lda + kk), b);
                    c2 = c2.madd(I8PairA::load(pa, 2 * lda + kk), b);
                    c3 = c3.madd(I8PairA::load(pa, 3 * lda + kk), b);
                    kk += 2;
                }
                c0.store(o0, j);
                c1.store(o1, j);
                c2.store(o2, j);
                c3.store(o3, j);
                j += 8;
            }
            if j < w {
                for kk in k0..k1 {
                    let a0 = pa[kk] as i32;
                    let a1 = pa[lda + kk] as i32;
                    let a2 = pa[2 * lda + kk] as i32;
                    let a3 = pa[3 * lda + kk] as i32;
                    // Row kk of the unpacked operand lives at the
                    // element parity `kk & 1` of packed pair-row `kk/2`.
                    let brow = &bp[(kk / 2) * 2 * n + (kk & 1)..];
                    for jj in j..w {
                        let bj = brow[2 * jj] as i32;
                        o0[jj] += a0 * bj;
                        o1[jj] += a1 * bj;
                        o2[jj] += a2 * bj;
                        o3[jj] += a3 * bj;
                    }
                }
            }
        }

        /// Single-row int8 GEMM panel (remainder rows of the blocked
        /// matmul) over pair-packed B: `o[j] += Σ_k a[kk]·b[kk·n+j]`
        /// in i32. Same operand contract as [`gemm4_i8`].
        $(#[$attr])*
        pub(super) fn gemm1_i8(
            pa: &[i16],
            k0: usize,
            k1: usize,
            bp: &[i16],
            n: usize,
            o: &mut [i32],
        ) {
            debug_assert_eq!(k0 % 2, 0, "k-panels must start on a row pair");
            let w = o.len();
            let mut j = 0;
            while j + 16 <= w {
                let mut c0 = I8Acc::load(o, j);
                let mut c1 = I8Acc::load(o, j + 8);
                let mut kk = k0;
                while kk < k1 {
                    let prow = &bp[kk * n..kk * n + 2 * w];
                    let ap = I8PairA::load(pa, kk);
                    c0 = c0.madd(ap, I8PairB::load_packed(prow, j));
                    c1 = c1.madd(ap, I8PairB::load_packed(prow, j + 8));
                    kk += 2;
                }
                c0.store(o, j);
                c1.store(o, j + 8);
                j += 16;
            }
            while j + 8 <= w {
                let mut c0 = I8Acc::load(o, j);
                let mut kk = k0;
                while kk < k1 {
                    let prow = &bp[kk * n..kk * n + 2 * w];
                    let ap = I8PairA::load(pa, kk);
                    c0 = c0.madd(ap, I8PairB::load_packed(prow, j));
                    kk += 2;
                }
                c0.store(o, j);
                j += 8;
            }
            if j < w {
                for kk in k0..k1 {
                    let aik = pa[kk] as i32;
                    let brow = &bp[(kk / 2) * 2 * n + (kk & 1)..];
                    for jj in j..w {
                        o[jj] += aik * brow[2 * jj] as i32;
                    }
                }
            }
        }
    };
}
