//! AVX2 + FMA backend: 256-bit lanes, FMA-contracted GEMM.
//!
//! Every function here carries `#[target_feature(enable = "avx2,fma")]`;
//! within that context the arithmetic intrinsics are safe calls, and
//! only the unaligned load/store intrinsics (raw-pointer access) need
//! `unsafe` blocks. Callers reach these kernels exclusively through
//! the `dispatch!` match in `super`, whose `unsafe` arm is justified
//! by one-time runtime feature detection.

use core::arch::x86_64::*;

#[derive(Clone, Copy)]
pub(super) struct Lanes(__m256);

impl Lanes {
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    fn splat(v: f32) -> Self {
        Lanes(_mm256_set1_ps(v))
    }

    #[inline]
    #[target_feature(enable = "avx2,fma")]
    fn load(src: &[f32], i: usize) -> Self {
        let s = &src[i..i + 8];
        // SAFETY: the bounds check above proves `s` spans 8 readable
        // f32s; `loadu` has no alignment requirement.
        Lanes(unsafe { _mm256_loadu_ps(s.as_ptr()) })
    }

    #[inline]
    #[target_feature(enable = "avx2,fma")]
    fn store(self, dst: &mut [f32], i: usize) {
        let d = &mut dst[i..i + 8];
        // SAFETY: the bounds check above proves `d` spans 8 writable
        // f32s; `storeu` has no alignment requirement.
        unsafe { _mm256_storeu_ps(d.as_mut_ptr(), self.0) }
    }

    /// `acc + self·b` as one fused multiply-add (single rounding) —
    /// the only op where this backend's rounding differs from scalar.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    fn mul_add(self, b: Self, acc: Self) -> Self {
        Lanes(_mm256_fmadd_ps(self.0, b.0, acc.0))
    }

    #[inline]
    #[target_feature(enable = "avx2,fma")]
    fn mul(self, o: Self) -> Self {
        Lanes(_mm256_mul_ps(self.0, o.0))
    }

    #[inline]
    #[target_feature(enable = "avx2,fma")]
    fn add(self, o: Self) -> Self {
        Lanes(_mm256_add_ps(self.0, o.0))
    }

    /// `maxps` returns the second operand when a lane compares
    /// unordered, so `x.max(splat(0.0))` maps NaN to 0 exactly like
    /// scalar `f32::max(x, 0.0)` in the ReLU kernel.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    fn max(self, o: Self) -> Self {
        Lanes(_mm256_max_ps(self.0, o.0))
    }

    /// Per-lane `if self ≥ 0 { self } else { neg }`; NaN lanes
    /// compare unordered and take `neg`, matching the scalar branch.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    fn select_ge_zero(self, neg: Self) -> Self {
        let mask = _mm256_cmp_ps::<_CMP_GE_OQ>(self.0, _mm256_setzero_ps());
        Lanes(_mm256_blendv_ps(neg.0, self.0, mask))
    }
}

lane_kernels!(#[target_feature(enable = "avx2,fma")]);

/// Two 8-lane FMA accumulators, horizontally summed once, then a
/// sequential scalar tail.
#[target_feature(enable = "avx2,fma")]
pub(super) fn dot(x: &[f32], y: &[f32]) -> f32 {
    let n = x.len().min(y.len());
    let mut acc0 = Lanes::splat(0.0);
    let mut acc1 = Lanes::splat(0.0);
    let mut i = 0;
    while i + 16 <= n {
        acc0 = Lanes::load(x, i).mul_add(Lanes::load(y, i), acc0);
        acc1 = Lanes::load(x, i + 8).mul_add(Lanes::load(y, i + 8), acc1);
        i += 16;
    }
    while i + 8 <= n {
        acc0 = Lanes::load(x, i).mul_add(Lanes::load(y, i), acc0);
        i += 8;
    }
    let mut acc = hsum(acc0.add(acc1));
    for (a, b) in x[i..n].iter().zip(&y[i..n]) {
        acc += a * b;
    }
    acc
}

/// Horizontal sum of 8 lanes: fold 256→128, then pairwise shuffles.
#[target_feature(enable = "avx2,fma")]
fn hsum(v: Lanes) -> f32 {
    let lo = _mm256_castps256_ps128(v.0);
    let hi = _mm256_extractf128_ps::<1>(v.0);
    let quad = _mm_add_ps(lo, hi);
    let dual = _mm_add_ps(quad, _mm_movehl_ps(quad, quad));
    let single = _mm_add_ss(dual, _mm_shuffle_ps::<0b01>(dual, dual));
    _mm_cvtss_f32(single)
}
