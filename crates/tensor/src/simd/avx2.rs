//! AVX2 + FMA backend: 256-bit lanes, FMA-contracted GEMM.
//!
//! Every function here carries `#[target_feature(enable = "avx2,fma")]`;
//! within that context the arithmetic intrinsics are safe calls, and
//! only the unaligned load/store intrinsics (raw-pointer access) need
//! `unsafe` blocks. Callers reach these kernels exclusively through
//! the `dispatch!` match in `super`, whose `unsafe` arm is justified
//! by one-time runtime feature detection.

use core::arch::x86_64::*;

#[derive(Clone, Copy)]
pub(super) struct Lanes(__m256);

impl Lanes {
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    fn splat(v: f32) -> Self {
        Lanes(_mm256_set1_ps(v))
    }

    #[inline]
    #[target_feature(enable = "avx2,fma")]
    fn load(src: &[f32], i: usize) -> Self {
        let s = &src[i..i + 8];
        // SAFETY: the bounds check above proves `s` spans 8 readable
        // f32s; `loadu` has no alignment requirement.
        Lanes(unsafe { _mm256_loadu_ps(s.as_ptr()) })
    }

    #[inline]
    #[target_feature(enable = "avx2,fma")]
    fn store(self, dst: &mut [f32], i: usize) {
        let d = &mut dst[i..i + 8];
        // SAFETY: the bounds check above proves `d` spans 8 writable
        // f32s; `storeu` has no alignment requirement.
        unsafe { _mm256_storeu_ps(d.as_mut_ptr(), self.0) }
    }

    /// `acc + self·b` as one fused multiply-add (single rounding) —
    /// the only op where this backend's rounding differs from scalar.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    fn mul_add(self, b: Self, acc: Self) -> Self {
        Lanes(_mm256_fmadd_ps(self.0, b.0, acc.0))
    }

    #[inline]
    #[target_feature(enable = "avx2,fma")]
    fn mul(self, o: Self) -> Self {
        Lanes(_mm256_mul_ps(self.0, o.0))
    }

    #[inline]
    #[target_feature(enable = "avx2,fma")]
    fn add(self, o: Self) -> Self {
        Lanes(_mm256_add_ps(self.0, o.0))
    }

    /// `maxps` returns the second operand when a lane compares
    /// unordered, so `x.max(splat(0.0))` maps NaN to 0 exactly like
    /// scalar `f32::max(x, 0.0)` in the ReLU kernel.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    fn max(self, o: Self) -> Self {
        Lanes(_mm256_max_ps(self.0, o.0))
    }

    /// Per-lane `if self ≥ 0 { self } else { neg }`; NaN lanes
    /// compare unordered and take `neg`, matching the scalar branch.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    fn select_ge_zero(self, neg: Self) -> Self {
        let mask = _mm256_cmp_ps::<_CMP_GE_OQ>(self.0, _mm256_setzero_ps());
        Lanes(_mm256_blendv_ps(neg.0, self.0, mask))
    }
}

/// Scalar-tail contraction used by the GEMM kernels: fused like
/// [`Lanes::mul_add`] (single rounding), so a column's result never
/// depends on whether it fell in a vector tile or the tail.
#[inline]
#[target_feature(enable = "avx2,fma")]
pub(super) fn mul_add_s(a: f32, b: f32, acc: f32) -> f32 {
    a.mul_add(b, acc)
}

lane_kernels!(#[target_feature(enable = "avx2,fma")]);
lane_kernels_i8!(#[target_feature(enable = "avx2")]);

/// Eight 32-bit integer accumulators (one 256-bit register).
#[derive(Clone, Copy)]
pub(super) struct I8Acc(__m256i);

impl I8Acc {
    #[inline]
    #[target_feature(enable = "avx2")]
    fn load(src: &[i32], i: usize) -> Self {
        let s = &src[i..i + 8];
        // SAFETY: the bounds check above proves `s` spans 8 readable
        // i32s; `loadu` has no alignment requirement.
        I8Acc(unsafe { _mm256_loadu_si256(s.as_ptr() as *const __m256i) })
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    fn store(self, dst: &mut [i32], i: usize) {
        let d = &mut dst[i..i + 8];
        // SAFETY: the bounds check above proves `d` spans 8 writable
        // i32s; `storeu` has no alignment requirement.
        unsafe { _mm256_storeu_si256(d.as_mut_ptr() as *mut __m256i, self.0) }
    }

    /// `acc[l] += a0·b0[l] + a1·b1[l]` via `vpmaddwd`: each i16×i16
    /// product pair sums exactly into one i32 lane (|a·b| ≤ 127², no
    /// saturation possible), so the result is bit-identical to scalar.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn madd(self, a: I8PairA, b: I8PairB) -> Self {
        I8Acc(_mm256_add_epi32(self.0, _mm256_madd_epi16(a.0, b.0)))
    }
}

/// `(a_k, a_{k+1})` widened to i16 and broadcast as interleaved pairs:
/// `[a0, a1, a0, a1, …]` across 16 lanes.
#[derive(Clone, Copy)]
pub(super) struct I8PairA(__m256i);

impl I8PairA {
    #[inline]
    #[target_feature(enable = "avx2")]
    fn load(pa: &[i16], i: usize) -> Self {
        let s = &pa[i..i + 2];
        // The pre-widened A row already stores adjacent i16
        // coefficients, so the whole pair is one 32-bit broadcast —
        // low i16 of each i32 lane is a_k, high i16 is a_{k+1}, the
        // layout `vpmaddwd` pairs with the packed B load below.
        // SAFETY: the bounds check above proves 4 readable bytes;
        // `read_unaligned` has no alignment requirement.
        let packed = unsafe { (s.as_ptr() as *const i32).read_unaligned() };
        I8PairA(_mm256_set1_epi32(packed))
    }
}

/// Eight columns of a widened pair-packed B row. The packed layout
/// already interleaves the two source rows as i16 —
/// `[b0[j], b1[j], b0[j+1], b1[j+1], …]` — which is exactly the lane
/// order `vpmaddwd` pairs with [`I8PairA`], so the load is a single
/// full-width read with no shuffle or sign-extension in the hot loop.
#[derive(Clone, Copy)]
pub(super) struct I8PairB(__m256i);

impl I8PairB {
    #[inline]
    #[target_feature(enable = "avx2")]
    fn load_packed(prow: &[i16], j: usize) -> Self {
        let s = &prow[2 * j..2 * j + 16];
        // SAFETY: the bounds check above proves 16 readable i16s;
        // `loadu` has no alignment requirement.
        I8PairB(unsafe { _mm256_loadu_si256(s.as_ptr() as *const __m256i) })
    }
}

/// Two 8-lane FMA accumulators, horizontally summed once, then a
/// sequential scalar tail.
#[target_feature(enable = "avx2,fma")]
pub(super) fn dot(x: &[f32], y: &[f32]) -> f32 {
    let n = x.len().min(y.len());
    let mut acc0 = Lanes::splat(0.0);
    let mut acc1 = Lanes::splat(0.0);
    let mut i = 0;
    while i + 16 <= n {
        acc0 = Lanes::load(x, i).mul_add(Lanes::load(y, i), acc0);
        acc1 = Lanes::load(x, i + 8).mul_add(Lanes::load(y, i + 8), acc1);
        i += 16;
    }
    while i + 8 <= n {
        acc0 = Lanes::load(x, i).mul_add(Lanes::load(y, i), acc0);
        i += 8;
    }
    let mut acc = hsum(acc0.add(acc1));
    for (a, b) in x[i..n].iter().zip(&y[i..n]) {
        acc += a * b;
    }
    acc
}

/// Horizontal sum of 8 lanes: fold 256→128, then pairwise shuffles.
#[target_feature(enable = "avx2,fma")]
fn hsum(v: Lanes) -> f32 {
    let lo = _mm256_castps256_ps128(v.0);
    let hi = _mm256_extractf128_ps::<1>(v.0);
    let quad = _mm_add_ps(lo, hi);
    let dual = _mm_add_ps(quad, _mm_movehl_ps(quad, quad));
    let single = _mm_add_ss(dual, _mm_shuffle_ps::<0b01>(dual, dual));
    _mm_cvtss_f32(single)
}
