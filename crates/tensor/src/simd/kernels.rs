//! Shared lane-kernel bodies, instantiated once per backend.
//!
//! Each backend module defines a `Lanes` type with the same 8-wide
//! API (`splat`, `load`, `store`, `mul_add`, `mul`, `add`, `max`,
//! `select_ge_zero`) and then invokes [`lane_kernels!`], optionally
//! passing a `#[target_feature]` attribute that is applied to every
//! generated kernel so the backend's lane methods inline into straight
//! vector code.
//!
//! The bodies fix the *semantics* shared by all backends: per-element
//! accumulation order, the scalar tails, and which operations may be
//! FMA-contracted (`mul_add` in the GEMM kernels only — everything
//! else is plain multiply/add and therefore bit-identical across
//! backends for finite inputs). The GEMM scalar tails contract through
//! the backend's own `mul_add_s` (fused where `mul_add` fuses), so an
//! output element's rounding depends only on its k-order — never on
//! which column tile it happened to land in. That position-invariance
//! is what pins the batched conv path (which appends images as extra
//! columns of one GEMM) bit-identical to the per-image path.

macro_rules! lane_kernels {
    ($(#[$attr:meta])*) => {
        /// 4-row GEMM panel: `o_r[j] += Σ_k a[r·lda+k]·b[k·n+j]`.
        ///
        /// `n` is B's row stride; the column count is `o0.len()`, which
        /// may be narrower than `n` when the caller works a column
        /// panel of a wider matrix (B then points at the panel's first
        /// column). Tiles 16 columns (two vectors) so the eight
        /// accumulators live in registers across the whole k-panel; an
        /// 8-column then scalar tail covers the remainder in the same
        /// k-order.
        $(#[$attr])*
        #[allow(clippy::too_many_arguments)]
        pub(super) fn gemm4(
            a: &[f32],
            lda: usize,
            k0: usize,
            k1: usize,
            b: &[f32],
            n: usize,
            o0: &mut [f32],
            o1: &mut [f32],
            o2: &mut [f32],
            o3: &mut [f32],
        ) {
            let w = o0.len();
            let mut j = 0;
            while j + 16 <= w {
                let mut c00 = Lanes::load(o0, j);
                let mut c01 = Lanes::load(o0, j + 8);
                let mut c10 = Lanes::load(o1, j);
                let mut c11 = Lanes::load(o1, j + 8);
                let mut c20 = Lanes::load(o2, j);
                let mut c21 = Lanes::load(o2, j + 8);
                let mut c30 = Lanes::load(o3, j);
                let mut c31 = Lanes::load(o3, j + 8);
                for kk in k0..k1 {
                    let brow = kk * n + j;
                    let b0 = Lanes::load(b, brow);
                    let b1 = Lanes::load(b, brow + 8);
                    let a0 = Lanes::splat(a[kk]);
                    c00 = a0.mul_add(b0, c00);
                    c01 = a0.mul_add(b1, c01);
                    let a1 = Lanes::splat(a[lda + kk]);
                    c10 = a1.mul_add(b0, c10);
                    c11 = a1.mul_add(b1, c11);
                    let a2 = Lanes::splat(a[2 * lda + kk]);
                    c20 = a2.mul_add(b0, c20);
                    c21 = a2.mul_add(b1, c21);
                    let a3 = Lanes::splat(a[3 * lda + kk]);
                    c30 = a3.mul_add(b0, c30);
                    c31 = a3.mul_add(b1, c31);
                }
                c00.store(o0, j);
                c01.store(o0, j + 8);
                c10.store(o1, j);
                c11.store(o1, j + 8);
                c20.store(o2, j);
                c21.store(o2, j + 8);
                c30.store(o3, j);
                c31.store(o3, j + 8);
                j += 16;
            }
            while j + 8 <= w {
                let mut c0 = Lanes::load(o0, j);
                let mut c1 = Lanes::load(o1, j);
                let mut c2 = Lanes::load(o2, j);
                let mut c3 = Lanes::load(o3, j);
                for kk in k0..k1 {
                    let bv = Lanes::load(b, kk * n + j);
                    c0 = Lanes::splat(a[kk]).mul_add(bv, c0);
                    c1 = Lanes::splat(a[lda + kk]).mul_add(bv, c1);
                    c2 = Lanes::splat(a[2 * lda + kk]).mul_add(bv, c2);
                    c3 = Lanes::splat(a[3 * lda + kk]).mul_add(bv, c3);
                }
                c0.store(o0, j);
                c1.store(o1, j);
                c2.store(o2, j);
                c3.store(o3, j);
                j += 8;
            }
            if j < w {
                for kk in k0..k1 {
                    let a0 = a[kk];
                    let a1 = a[lda + kk];
                    let a2 = a[2 * lda + kk];
                    let a3 = a[3 * lda + kk];
                    let brow = &b[kk * n..kk * n + w];
                    for jj in j..w {
                        let bj = brow[jj];
                        o0[jj] = mul_add_s(a0, bj, o0[jj]);
                        o1[jj] = mul_add_s(a1, bj, o1[jj]);
                        o2[jj] = mul_add_s(a2, bj, o2[jj]);
                        o3[jj] = mul_add_s(a3, bj, o3[jj]);
                    }
                }
            }
        }

        /// Single-row GEMM panel (remainder rows of the blocked
        /// matmul): `o[j] += Σ_k a[k]·b[k·n+j]`. As in [`gemm4`], `n`
        /// is B's row stride and `o.len()` the column count.
        $(#[$attr])*
        pub(super) fn gemm1(
            a: &[f32],
            k0: usize,
            k1: usize,
            b: &[f32],
            n: usize,
            o: &mut [f32],
        ) {
            let w = o.len();
            let mut j = 0;
            while j + 16 <= w {
                let mut c0 = Lanes::load(o, j);
                let mut c1 = Lanes::load(o, j + 8);
                for kk in k0..k1 {
                    let av = Lanes::splat(a[kk]);
                    let brow = kk * n + j;
                    c0 = av.mul_add(Lanes::load(b, brow), c0);
                    c1 = av.mul_add(Lanes::load(b, brow + 8), c1);
                }
                c0.store(o, j);
                c1.store(o, j + 8);
                j += 16;
            }
            while j + 8 <= w {
                let mut c0 = Lanes::load(o, j);
                for kk in k0..k1 {
                    c0 = Lanes::splat(a[kk]).mul_add(Lanes::load(b, kk * n + j), c0);
                }
                c0.store(o, j);
                j += 8;
            }
            if j < w {
                for kk in k0..k1 {
                    let aik = a[kk];
                    let brow = &b[kk * n..kk * n + w];
                    for jj in j..w {
                        o[jj] = mul_add_s(aik, brow[jj], o[jj]);
                    }
                }
            }
        }

        /// In-place `x = max(x, 0)`.
        $(#[$attr])*
        pub(super) fn relu(xs: &mut [f32]) {
            let zero = Lanes::splat(0.0);
            let mut i = 0;
            while i + 8 <= xs.len() {
                Lanes::load(xs, i).max(zero).store(xs, i);
                i += 8;
            }
            for x in &mut xs[i..] {
                *x = x.max(0.0);
            }
        }

        /// In-place `x = if x ≥ 0 { x } else { alpha·x }`.
        $(#[$attr])*
        pub(super) fn leaky_relu(xs: &mut [f32], alpha: f32) {
            let av = Lanes::splat(alpha);
            let mut i = 0;
            while i + 8 <= xs.len() {
                let x = Lanes::load(xs, i);
                x.select_ge_zero(x.mul(av)).store(xs, i);
                i += 8;
            }
            for x in &mut xs[i..] {
                if *x < 0.0 {
                    *x *= alpha;
                }
            }
        }

        /// In-place `x = x·scale + shift` (separate multiply and add
        /// — never FMA — so every backend rounds identically).
        $(#[$attr])*
        pub(super) fn scale_shift(xs: &mut [f32], scale: f32, shift: f32) {
            let sv = Lanes::splat(scale);
            let hv = Lanes::splat(shift);
            let mut i = 0;
            while i + 8 <= xs.len() {
                Lanes::load(xs, i).mul(sv).add(hv).store(xs, i);
                i += 8;
            }
            for x in &mut xs[i..] {
                *x = *x * scale + shift;
            }
        }

        /// In-place `x = x + c`.
        $(#[$attr])*
        pub(super) fn add_scalar(xs: &mut [f32], c: f32) {
            let cv = Lanes::splat(c);
            let mut i = 0;
            while i + 8 <= xs.len() {
                Lanes::load(xs, i).add(cv).store(xs, i);
                i += 8;
            }
            for x in &mut xs[i..] {
                *x += c;
            }
        }

        /// `acc[i] = max(acc[i], src[i])` over equal-length slices.
        $(#[$attr])*
        pub(super) fn max_assign(acc: &mut [f32], src: &[f32]) {
            let n = acc.len();
            let mut i = 0;
            while i + 8 <= n {
                Lanes::load(acc, i).max(Lanes::load(src, i)).store(acc, i);
                i += 8;
            }
            for (a, s) in acc[i..].iter_mut().zip(&src[i..n]) {
                *a = a.max(*s);
            }
        }

        /// `acc[i] += src[i]` over equal-length slices.
        $(#[$attr])*
        pub(super) fn add_assign(acc: &mut [f32], src: &[f32]) {
            let n = acc.len();
            let mut i = 0;
            while i + 8 <= n {
                Lanes::load(acc, i).add(Lanes::load(src, i)).store(acc, i);
                i += 8;
            }
            for (a, s) in acc[i..].iter_mut().zip(&src[i..n]) {
                *a += *s;
            }
        }
    };
}
