//! NEON backend: the 8-wide `Lanes` API over a pair of 128-bit
//! registers.
//!
//! NEON is part of the `aarch64` baseline (the enclosing `cfg` proves
//! `target_feature = "neon"` statically), so these are plain safe
//! functions — no runtime probe or `unsafe` dispatch is needed; only
//! the raw-pointer load/store intrinsics carry `unsafe` blocks.

use core::arch::aarch64::*;

#[derive(Clone, Copy)]
pub(super) struct Lanes(float32x4_t, float32x4_t);

impl Lanes {
    #[inline(always)]
    fn splat(v: f32) -> Self {
        Lanes(vdupq_n_f32(v), vdupq_n_f32(v))
    }

    #[inline(always)]
    fn load(src: &[f32], i: usize) -> Self {
        let s = &src[i..i + 8];
        // SAFETY: the bounds check above proves `s` spans 8 readable
        // f32s; vld1q has no alignment requirement.
        unsafe { Lanes(vld1q_f32(s.as_ptr()), vld1q_f32(s.as_ptr().add(4))) }
    }

    #[inline(always)]
    fn store(self, dst: &mut [f32], i: usize) {
        let d = &mut dst[i..i + 8];
        // SAFETY: the bounds check above proves `d` spans 8 writable
        // f32s; vst1q has no alignment requirement.
        unsafe {
            vst1q_f32(d.as_mut_ptr(), self.0);
            vst1q_f32(d.as_mut_ptr().add(4), self.1);
        }
    }

    /// `acc + self·b` as fused multiply-adds (single rounding) — the
    /// only op where this backend's rounding differs from scalar.
    #[inline(always)]
    fn mul_add(self, b: Self, acc: Self) -> Self {
        Lanes(vfmaq_f32(acc.0, self.0, b.0), vfmaq_f32(acc.1, self.1, b.1))
    }

    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        Lanes(vmulq_f32(self.0, o.0), vmulq_f32(self.1, o.1))
    }

    #[inline(always)]
    fn add(self, o: Self) -> Self {
        Lanes(vaddq_f32(self.0, o.0), vaddq_f32(self.1, o.1))
    }

    #[inline(always)]
    fn max(self, o: Self) -> Self {
        Lanes(vmaxq_f32(self.0, o.0), vmaxq_f32(self.1, o.1))
    }

    /// Per-lane `if self ≥ 0 { self } else { neg }`; NaN lanes
    /// compare false and take `neg`, matching the scalar branch.
    #[inline(always)]
    fn select_ge_zero(self, neg: Self) -> Self {
        let zero = vdupq_n_f32(0.0);
        Lanes(
            vbslq_f32(vcgeq_f32(self.0, zero), self.0, neg.0),
            vbslq_f32(vcgeq_f32(self.1, zero), self.1, neg.1),
        )
    }
}

/// Scalar-tail contraction used by the GEMM kernels: fused like
/// [`Lanes::mul_add`] (single rounding), so a column's result never
/// depends on whether it fell in a vector tile or the tail.
#[inline(always)]
pub(super) fn mul_add_s(a: f32, b: f32, acc: f32) -> f32 {
    a.mul_add(b, acc)
}

lane_kernels!();
lane_kernels_i8!();

/// Eight 32-bit integer accumulators (a 128-bit register pair).
#[derive(Clone, Copy)]
pub(super) struct I8Acc(int32x4_t, int32x4_t);

impl I8Acc {
    #[inline(always)]
    fn load(src: &[i32], i: usize) -> Self {
        let s = &src[i..i + 8];
        // SAFETY: the bounds check above proves `s` spans 8 readable
        // i32s; vld1q has no alignment requirement.
        unsafe { I8Acc(vld1q_s32(s.as_ptr()), vld1q_s32(s.as_ptr().add(4))) }
    }

    #[inline(always)]
    fn store(self, dst: &mut [i32], i: usize) {
        let d = &mut dst[i..i + 8];
        // SAFETY: the bounds check above proves `d` spans 8 writable
        // i32s; vst1q has no alignment requirement.
        unsafe {
            vst1q_s32(d.as_mut_ptr(), self.0);
            vst1q_s32(d.as_mut_ptr().add(4), self.1);
        }
    }

    /// `acc[l] += a0·b0[l] + a1·b1[l]` via widening multiply-accumulate
    /// (`vmlal`) — exact integer arithmetic, bit-identical to scalar.
    #[inline(always)]
    fn madd(self, a: I8PairA, b: I8PairB) -> Self {
        let mut lo = vmlal_s16(self.0, vget_low_s16(b.0), a.0);
        lo = vmlal_s16(lo, vget_low_s16(b.1), a.1);
        let mut hi = vmlal_s16(self.1, vget_high_s16(b.0), a.0);
        hi = vmlal_s16(hi, vget_high_s16(b.1), a.1);
        I8Acc(lo, hi)
    }
}

/// `(a_k, a_{k+1})` widened to i16 and broadcast (4 lanes each, reused
/// for both register halves).
#[derive(Clone, Copy)]
pub(super) struct I8PairA(int16x4_t, int16x4_t);

impl I8PairA {
    #[inline(always)]
    fn load(pa: &[i16], i: usize) -> Self {
        I8PairA(vdup_n_s16(pa[i]), vdup_n_s16(pa[i + 1]))
    }
}

/// Eight columns of a widened pair-packed B row: `vld2q`
/// de-interleaves the packed even/odd i16 elements back into the two
/// source rows in one structured load, with no widening in the hot
/// loop.
#[derive(Clone, Copy)]
pub(super) struct I8PairB(int16x8_t, int16x8_t);

impl I8PairB {
    #[inline(always)]
    fn load_packed(prow: &[i16], j: usize) -> Self {
        let s = &prow[2 * j..2 * j + 16];
        // SAFETY: the bounds check above proves 16 readable i16s;
        // vld2q has no alignment requirement.
        unsafe {
            let rows = vld2q_s16(s.as_ptr());
            I8PairB(rows.0, rows.1)
        }
    }
}

/// One 8-lane FMA accumulator chain, horizontally summed once, then a
/// sequential scalar tail.
pub(super) fn dot(x: &[f32], y: &[f32]) -> f32 {
    let n = x.len().min(y.len());
    let mut acc = Lanes::splat(0.0);
    let mut i = 0;
    while i + 8 <= n {
        acc = Lanes::load(x, i).mul_add(Lanes::load(y, i), acc);
        i += 8;
    }
    let mut s = vaddvq_f32(vaddq_f32(acc.0, acc.1));
    for (a, b) in x[i..n].iter().zip(&y[i..n]) {
        s += a * b;
    }
    s
}
