//! Explicit SIMD lanes with one-time runtime dispatch.
//!
//! The paper's latency budget collapses onto the GEMM/conv microkernel
//! (§6): wide-vector execution is the first rung of the acceleration
//! ladder below full GPU/FPGA offload. This module is that rung for the
//! CPU baseline — a small portable 8-wide `f32` lane abstraction
//! ([`scalar`], `avx2`, `neon` backends share one kernel body via the
//! `lane_kernels!` macro) plus slice-level kernels the tensor ops
//! dispatch through an [`Isa`] tag.
//!
//! # Dispatch
//!
//! [`active`] probes the host once (cached in a `OnceLock`):
//! `x86_64` with AVX2 + FMA + POPCNT selects the 256-bit path,
//! `aarch64` with NEON selects the 128-bit-pair path, anything else —
//! or the `force-scalar` cargo feature — selects the scalar backend.
//! Kernels also accept an explicit [`Isa`], so parity tests and the
//! benchmark harness can pin the scalar path on any host without
//! rebuilding (`Isa::SCALAR`).
//!
//! # Numerics policy
//!
//! * FMA-free kernels (`relu`, `leaky_relu`, `scale_shift`,
//!   `add_scalar`, `max_assign`, `add_assign`, Hamming distance) are
//!   **bit-identical** across backends for finite inputs: every lane
//!   performs the same operation in the same per-element order.
//! * The GEMM kernels contract multiply-add pairs into FMAs on the
//!   vector backends — including the scalar tails, which go through
//!   the backend's own `mul_add_s`, so an element's rounding depends
//!   only on its position in the `k` accumulation order and never on
//!   which column tile it fell in. Per-element accumulation order over
//!   `k` is unchanged, so results agree with the scalar backend to
//!   ≤1e-5 relative error (pinned by `tests/simd_dispatch.rs`), and a
//!   given backend produces bit-identical values for an output element
//!   regardless of its column position — the property the batched conv
//!   path (images appended as extra GEMM columns) relies on.
//! * The int8 GEMM kernels ([`gemm4_i8`] / [`gemm1_i8`]) accumulate
//!   i8×i8 products exactly in `i32`: **bit-identical** across
//!   backends, tilings and batch layouts by construction.
//! * [`dot`] splits the accumulation across lanes on vector backends
//!   (scalar stays strictly sequential), also within ≤1e-5 relative.
//!
//! For a fixed `Isa`, every kernel is deterministic and independent of
//! the worker count — the runtime decides *where* work runs, never
//! *what* is computed.

use std::sync::OnceLock;

#[macro_use]
mod kernels;

#[macro_use]
mod kernels_i8;

mod scalar;

#[cfg(target_arch = "x86_64")]
mod avx2;

#[cfg(all(target_arch = "aarch64", target_feature = "neon"))]
mod neon;

/// Lane width of the portable `f32` abstraction (elements per vector).
pub const LANES: usize = 8;

/// The instruction-set backend a kernel call runs on.
///
/// Only [`Isa::SCALAR`] and the value returned by [`active`] can be
/// constructed; the vector variants are private so holding an `Isa`
/// proves the corresponding CPU features were detected (the soundness
/// boundary for the `unsafe` dispatch into `#[target_feature]` code).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Isa(Kind);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Scalar,
    #[cfg(target_arch = "x86_64")]
    Avx2Fma,
    #[cfg(all(target_arch = "aarch64", target_feature = "neon"))]
    Neon,
}

impl Isa {
    /// The portable scalar backend, available everywhere.
    pub const SCALAR: Isa = Isa(Kind::Scalar);

    /// Human-readable backend name (for benchmark reports).
    pub fn name(self) -> &'static str {
        match self.0 {
            Kind::Scalar => "scalar",
            #[cfg(target_arch = "x86_64")]
            Kind::Avx2Fma => "avx2+fma",
            #[cfg(all(target_arch = "aarch64", target_feature = "neon"))]
            Kind::Neon => "neon",
        }
    }

    /// Whether this is the scalar fallback.
    pub fn is_scalar(self) -> bool {
        self.0 == Kind::Scalar
    }
}

/// The best backend the host supports, probed once per process.
///
/// With the `force-scalar` cargo feature enabled this is always
/// [`Isa::SCALAR`], which pins the portable path for A/B benchmarking
/// and for CI hosts whose vector units should be ignored.
pub fn active() -> Isa {
    static ACTIVE: OnceLock<Isa> = OnceLock::new();
    *ACTIVE.get_or_init(detect)
}

fn detect() -> Isa {
    if cfg!(feature = "force-scalar") {
        return Isa::SCALAR;
    }
    #[cfg(target_arch = "x86_64")]
    {
        // POPCNT ships on every AVX2 part, but probe it explicitly:
        // the Hamming kernel's dispatch relies on it.
        if std::is_x86_feature_detected!("avx2")
            && std::is_x86_feature_detected!("fma")
            && std::is_x86_feature_detected!("popcnt")
        {
            return Isa(Kind::Avx2Fma);
        }
    }
    #[cfg(all(target_arch = "aarch64", target_feature = "neon"))]
    {
        // NEON is part of the aarch64 baseline; the cfg above already
        // proved it statically.
        return Isa(Kind::Neon);
    }
    #[allow(unreachable_code)]
    Isa::SCALAR
}

/// Expands to one `match` dispatching a kernel call to the backend
/// module named by `isa`. The AVX2 arm is `unsafe`: constructing
/// `Kind::Avx2Fma` is only possible through [`detect`], which proved
/// the features at runtime.
macro_rules! dispatch {
    ($isa:expr, $func:ident ( $($arg:expr),* $(,)? )) => {
        match $isa.0 {
            Kind::Scalar => scalar::$func($($arg),*),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `Kind::Avx2Fma` is private and only constructed
            // by `detect()` after `is_x86_feature_detected!` confirmed
            // avx2, fma and popcnt on this CPU.
            Kind::Avx2Fma => unsafe { avx2::$func($($arg),*) },
            #[cfg(all(target_arch = "aarch64", target_feature = "neon"))]
            // NEON is statically enabled for this target, so the call
            // is a plain safe call.
            Kind::Neon => neon::$func($($arg),*),
        }
    };
}

/// 4-row GEMM register microkernel over one k-panel:
/// `o_r[j] += Σ_{kk∈k0..k1} a[r·lda + kk] · b[kk·n + j]` for `r∈0..4`.
///
/// `a` holds four row slices of stride `lda`; `b` is the `[k, n]`
/// operand; the four output rows are disjoint `&mut` views of length
/// `n`. Accumulation over `kk` is in increasing order for every
/// element on every backend.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm4(
    isa: Isa,
    a: &[f32],
    lda: usize,
    k0: usize,
    k1: usize,
    b: &[f32],
    n: usize,
    o0: &mut [f32],
    o1: &mut [f32],
    o2: &mut [f32],
    o3: &mut [f32],
) {
    dispatch!(isa, gemm4(a, lda, k0, k1, b, n, o0, o1, o2, o3))
}

/// Single-row GEMM microkernel (the remainder path of [`gemm4`]):
/// `o[j] += Σ_{kk∈k0..k1} a[kk] · b[kk·n + j]`.
pub(crate) fn gemm1(
    isa: Isa,
    a: &[f32],
    k0: usize,
    k1: usize,
    b: &[f32],
    n: usize,
    o: &mut [f32],
) {
    dispatch!(isa, gemm1(a, k0, k1, b, n, o))
}

/// 4-row **int8** GEMM register microkernel over one k-panel:
/// `o_r[j] += Σ_{kk∈k0..k1} a[r·lda + kk] · b[kk·n + j]` with
/// i8×i8→i32 widening arithmetic. `pa` is A pre-widened to i16 with an
/// even (zero-padded) row stride `lda`, so a coefficient pair is one
/// 32-bit broadcast; `bp` is the **widened pair-packed** form of B
/// (`ops::pack_i8_b`: pair rows of `2·n` i16 elements, even element =
/// row `2p`, odd element = row `2p+1`). `k0` must be even so panels
/// start on a pair row. Exact (no rounding), so the result is
/// bit-identical
/// on every backend. Callers bound `k1` so `k` accumulations cannot
/// wrap `i32` (see `ops::matmul_i8_packed_into`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm4_i8(
    isa: Isa,
    pa: &[i16],
    lda: usize,
    k0: usize,
    k1: usize,
    bp: &[i16],
    n: usize,
    o0: &mut [i32],
    o1: &mut [i32],
    o2: &mut [i32],
    o3: &mut [i32],
) {
    dispatch!(isa, gemm4_i8(pa, lda, k0, k1, bp, n, o0, o1, o2, o3))
}

/// Single-row **int8** GEMM microkernel (the remainder path of
/// [`gemm4_i8`]): `o[j] += Σ_{kk∈k0..k1} a[kk] · b[kk·n + j]` in i32,
/// over the same pair-packed B operand.
pub(crate) fn gemm1_i8(
    isa: Isa,
    pa: &[i16],
    k0: usize,
    k1: usize,
    bp: &[i16],
    n: usize,
    o: &mut [i32],
) {
    dispatch!(isa, gemm1_i8(pa, k0, k1, bp, n, o))
}

/// Dot product `Σ x[i]·y[i]` over equal-length slices. The scalar
/// backend accumulates strictly sequentially; vector backends split
/// the sum across lanes (≤1e-5 relative difference).
pub(crate) fn dot(isa: Isa, x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len());
    dispatch!(isa, dot(x, y))
}

/// In-place `x = max(x, 0)`. Bit-identical across backends.
pub(crate) fn relu(isa: Isa, xs: &mut [f32]) {
    dispatch!(isa, relu(xs))
}

/// In-place leaky ReLU: `x = if x ≥ 0 { x } else { alpha·x }`.
/// Bit-identical across backends.
pub(crate) fn leaky_relu(isa: Isa, xs: &mut [f32], alpha: f32) {
    dispatch!(isa, leaky_relu(xs, alpha))
}

/// In-place affine map `x = x·scale + shift` (multiply then add — not
/// FMA-contracted, so it is bit-identical across backends). This is
/// the inference-time batch-norm inner loop.
pub(crate) fn scale_shift(isa: Isa, xs: &mut [f32], scale: f32, shift: f32) {
    dispatch!(isa, scale_shift(xs, scale, shift))
}

/// In-place `x = x + c` (per-channel conv bias). Bit-identical.
pub(crate) fn add_scalar(isa: Isa, xs: &mut [f32], c: f32) {
    dispatch!(isa, add_scalar(xs, c))
}

/// Element-wise `acc[i] = max(acc[i], src[i])` over equal-length
/// slices — the stride-1 max-pool inner step. Bit-identical for
/// finite inputs.
pub(crate) fn max_assign(isa: Isa, acc: &mut [f32], src: &[f32]) {
    debug_assert_eq!(acc.len(), src.len());
    dispatch!(isa, max_assign(acc, src))
}

/// Element-wise `acc[i] += src[i]` — the stride-1 avg-pool inner
/// step. Bit-identical.
pub(crate) fn add_assign(isa: Isa, acc: &mut [f32], src: &[f32]) {
    debug_assert_eq!(acc.len(), src.len());
    dispatch!(isa, add_assign(acc, src))
}

/// Hamming distance between two 256-bit descriptors as four `u64`
/// XOR + popcount words — the portable widening of the old per-byte
/// loop. Exact on every backend.
pub fn hamming256(a: &[u8; 32], b: &[u8; 32]) -> u32 {
    hamming256_words(a, b)
}

/// [`hamming256`] with a pinned backend: on `x86_64` with a detected
/// vector ISA the words go through the hardware `popcnt` unit, which
/// is the inner loop of brute-force rBRIEF matching (paper §3.1.3).
pub fn hamming256_isa(isa: Isa, a: &[u8; 32], b: &[u8; 32]) -> u32 {
    match isa.0 {
        Kind::Scalar => hamming256_words(a, b),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Kind::Avx2Fma` is only constructed by `detect()`
        // after `is_x86_feature_detected!("popcnt")` succeeded.
        Kind::Avx2Fma => unsafe { hamming256_popcnt(a, b) },
        #[cfg(all(target_arch = "aarch64", target_feature = "neon"))]
        Kind::Neon => hamming256_words(a, b),
    }
}

#[inline]
fn hamming256_words(a: &[u8; 32], b: &[u8; 32]) -> u32 {
    let mut n = 0u32;
    for w in 0..4 {
        let x = u64::from_ne_bytes(a[w * 8..w * 8 + 8].try_into().expect("8-byte word"));
        let y = u64::from_ne_bytes(b[w * 8..w * 8 + 8].try_into().expect("8-byte word"));
        n += (x ^ y).count_ones();
    }
    n
}

/// Same word loop compiled against the hardware popcount unit.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "popcnt")]
fn hamming256_popcnt(a: &[u8; 32], b: &[u8; 32]) -> u32 {
    hamming256_words(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn descriptor(seed: u64) -> [u8; 32] {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut d = [0u8; 32];
        for byte in &mut d {
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            *byte = (s.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8;
        }
        d
    }

    /// Bit-by-bit reference count.
    fn hamming_ref(a: &[u8; 32], b: &[u8; 32]) -> u32 {
        let mut n = 0;
        for i in 0..256 {
            let (byte, bit) = (i / 8, i % 8);
            if (a[byte] >> bit) & 1 != (b[byte] >> bit) & 1 {
                n += 1;
            }
        }
        n
    }

    #[test]
    fn active_is_stable_and_scalar_under_force_scalar() {
        let first = active();
        assert_eq!(first, active(), "detection is cached");
        if cfg!(feature = "force-scalar") {
            assert!(first.is_scalar());
        }
        assert!(Isa::SCALAR.is_scalar());
        assert_eq!(Isa::SCALAR.name(), "scalar");
    }

    #[test]
    fn hamming_matches_bit_reference_on_all_backends() {
        for seed in 0..32u64 {
            let a = descriptor(seed);
            let b = descriptor(seed + 100);
            let expect = hamming_ref(&a, &b);
            assert_eq!(hamming256(&a, &b), expect, "portable, seed {seed}");
            assert_eq!(hamming256_isa(Isa::SCALAR, &a, &b), expect);
            assert_eq!(hamming256_isa(active(), &a, &b), expect);
            assert_eq!(hamming256(&a, &a), 0);
        }
    }

    #[test]
    fn dot_backends_agree() {
        let x: Vec<f32> = (0..259).map(|i| ((i * 37) % 97) as f32 * 0.03 - 1.4).collect();
        let y: Vec<f32> = (0..259).map(|i| ((i * 61) % 89) as f32 * 0.02 - 0.9).collect();
        let s = dot(Isa::SCALAR, &x, &y);
        let v = dot(active(), &x, &y);
        assert!((s - v).abs() <= 1e-5 * s.abs().max(1.0), "{s} vs {v}");
    }
}
