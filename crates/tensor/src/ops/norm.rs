use adsim_runtime::Runtime;

use crate::simd::{self, Isa};
use crate::{Result, Tensor, TensorError};

/// Inference-time batch normalization over an NCHW tensor.
///
/// Applies `gamma[c] * (x - mean[c]) / sqrt(var[c] + eps) + beta[c]`
/// per channel, using the folded statistics a trained network would
/// carry. YOLOv2 batch-normalizes every convolutional layer.
///
/// Runs serially; [`batch_norm_with`] is the multicore entry point.
///
/// # Errors
///
/// Returns an error if the input is not rank 4 or any parameter vector
/// length differs from the channel count.
///
/// # Examples
///
/// ```
/// use adsim_tensor::{ops, Tensor};
///
/// let x = Tensor::filled([1, 1, 2, 2], 3.0);
/// let gamma = Tensor::filled([1], 2.0);
/// let beta = Tensor::filled([1], 1.0);
/// let mean = Tensor::filled([1], 3.0);
/// let var = Tensor::filled([1], 1.0);
/// let y = ops::batch_norm(&x, &gamma, &beta, &mean, &var, 0.0).unwrap();
/// assert!(y.iter().all(|&v| (v - 1.0).abs() < 1e-6));
/// ```
pub fn batch_norm(
    input: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    mean: &Tensor,
    var: &Tensor,
    eps: f32,
) -> Result<Tensor> {
    batch_norm_with(&Runtime::serial(), input, gamma, beta, mean, var, eps)
}

/// [`batch_norm`] on a worker pool with the host's detected SIMD
/// backend. Equivalent to [`batch_norm_isa`] with [`simd::active`].
///
/// # Errors
///
/// Same conditions as [`batch_norm`].
pub fn batch_norm_with(
    rt: &Runtime,
    input: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    mean: &Tensor,
    var: &Tensor,
    eps: f32,
) -> Result<Tensor> {
    batch_norm_isa(rt, input, gamma, beta, mean, var, eps, simd::active())
}

/// [`batch_norm`] on a worker pool and an explicit SIMD backend: each
/// `n × c` plane is one task, folded to `x·scale + shift` with the
/// channel's statistics. The plane kernel keeps multiply and add as
/// separate roundings (no FMA), so every backend is bit-identical.
///
/// # Errors
///
/// Same conditions as [`batch_norm`].
#[allow(clippy::too_many_arguments)]
pub fn batch_norm_isa(
    rt: &Runtime,
    input: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    mean: &Tensor,
    var: &Tensor,
    eps: f32,
    isa: Isa,
) -> Result<Tensor> {
    let (_, c, h, w) = input.shape().as_nchw()?;
    for (name, t) in [("gamma", gamma), ("beta", beta), ("mean", mean), ("var", var)] {
        if t.shape().rank() != 1 || t.shape().dim(0) != c {
            return Err(TensorError::InvalidParameter {
                op: "batch_norm",
                reason: format!("{name} shape {} does not match {c} channels", t.shape()),
            });
        }
    }
    let mut out = input.clone();
    let (g, b, m, v) = (gamma.as_slice(), beta.as_slice(), mean.as_slice(), var.as_slice());
    let plane = h * w;
    if plane > 0 && c > 0 {
        let rt = rt.for_work(3 * out.len());
        rt.par_chunks_mut(out.as_mut_slice(), plane, |idx, chunk| {
            let ch = idx % c;
            let scale = g[ch] / (v[ch] + eps).sqrt();
            let shift = b[ch] - m[ch] * scale;
            simd::scale_shift(isa, chunk, scale, shift);
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_to_zero_mean_unit_variance() {
        // Channel with mean 10, var 4 -> values +-1 after normalization.
        let x = Tensor::from_vec([1, 1, 1, 2], vec![8.0, 12.0]).unwrap();
        let gamma = Tensor::filled([1], 1.0);
        let beta = Tensor::filled([1], 0.0);
        let mean = Tensor::filled([1], 10.0);
        let var = Tensor::filled([1], 4.0);
        let y = batch_norm(&x, &gamma, &beta, &mean, &var, 0.0).unwrap();
        assert!((y.as_slice()[0] + 1.0).abs() < 1e-6);
        assert!((y.as_slice()[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn per_channel_parameters_are_independent() {
        let x = Tensor::filled([1, 2, 1, 1], 1.0);
        let gamma = Tensor::from_vec([2], vec![1.0, 10.0]).unwrap();
        let beta = Tensor::from_vec([2], vec![0.0, 5.0]).unwrap();
        let mean = Tensor::zeros([2]);
        let var = Tensor::filled([2], 1.0);
        let y = batch_norm(&x, &gamma, &beta, &mean, &var, 0.0).unwrap();
        assert!((y.as_slice()[0] - 1.0).abs() < 1e-6);
        assert!((y.as_slice()[1] - 15.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_mismatched_parameters() {
        let x = Tensor::zeros([1, 3, 2, 2]);
        let ok = Tensor::zeros([3]);
        let bad = Tensor::zeros([2]);
        assert!(batch_norm(&x, &bad, &ok, &ok, &ok, 1e-5).is_err());
        assert!(batch_norm(&x, &ok, &ok, &ok, &bad, 1e-5).is_err());
    }

    #[test]
    fn eps_guards_zero_variance() {
        let x = Tensor::filled([1, 1, 1, 1], 5.0);
        let ones = Tensor::filled([1], 1.0);
        let zeros = Tensor::zeros([1]);
        let y = batch_norm(&x, &ones, &zeros, &zeros, &zeros, 1e-5).unwrap();
        assert!(y.as_slice()[0].is_finite());
    }
}
