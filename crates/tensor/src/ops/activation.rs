use adsim_runtime::Runtime;

use crate::simd::{self, Isa};
use crate::Tensor;

/// Contiguous spans of elements for the worker pool: a few chunks per
/// worker so an uneven finisher cannot straggle the join.
fn elementwise_span(len: usize, threads: usize) -> usize {
    len.div_ceil(4 * threads).max(1)
}

/// Rectified linear unit: `max(0, x)` element-wise.
///
/// # Examples
///
/// ```
/// use adsim_tensor::{ops, Tensor};
///
/// let t = Tensor::from_vec([3], vec![-1.0, 0.0, 2.0]).unwrap();
/// assert_eq!(ops::relu(&t).as_slice(), &[0.0, 0.0, 2.0]);
/// ```
pub fn relu(t: &Tensor) -> Tensor {
    relu_with(&Runtime::serial(), t)
}

/// [`relu`] on a worker pool with the host's detected SIMD backend.
pub fn relu_with(rt: &Runtime, t: &Tensor) -> Tensor {
    relu_isa(rt, t, simd::active())
}

/// [`relu`] on a worker pool and an explicit SIMD backend. The kernel
/// is FMA-free, so every backend is bit-identical.
pub fn relu_isa(rt: &Runtime, t: &Tensor, isa: Isa) -> Tensor {
    let mut out = t.clone();
    let rt = rt.for_work(out.len());
    let span = elementwise_span(out.len(), rt.threads());
    rt.par_chunks_mut(out.as_mut_slice(), span, |_, chunk| simd::relu(isa, chunk));
    out
}

/// Leaky ReLU with negative slope `alpha`, the activation YOLO uses
/// throughout its convolutional trunk.
pub fn leaky_relu(t: &Tensor, alpha: f32) -> Tensor {
    leaky_relu_with(&Runtime::serial(), t, alpha)
}

/// [`leaky_relu`] on a worker pool with the host's detected SIMD
/// backend.
pub fn leaky_relu_with(rt: &Runtime, t: &Tensor, alpha: f32) -> Tensor {
    leaky_relu_isa(rt, t, alpha, simd::active())
}

/// [`leaky_relu`] on a worker pool and an explicit SIMD backend. The
/// kernel is FMA-free, so every backend is bit-identical.
pub fn leaky_relu_isa(rt: &Runtime, t: &Tensor, alpha: f32, isa: Isa) -> Tensor {
    let mut out = t.clone();
    let rt = rt.for_work(out.len());
    let span = elementwise_span(out.len(), rt.threads());
    rt.par_chunks_mut(out.as_mut_slice(), span, |_, chunk| {
        simd::leaky_relu(isa, chunk, alpha);
    });
    out
}

/// Logistic sigmoid, used by the detection head to squash objectness
/// confidences into `[0, 1]`.
pub fn sigmoid(t: &Tensor) -> Tensor {
    t.map(|x| 1.0 / (1.0 + (-x).exp()))
}

/// [`sigmoid`] on a worker pool.
pub fn sigmoid_with(rt: &Runtime, t: &Tensor) -> Tensor {
    t.map_with(rt, |x| 1.0 / (1.0 + (-x).exp()))
}

/// Hyperbolic tangent.
pub fn tanh(t: &Tensor) -> Tensor {
    t.map(f32::tanh)
}

/// [`tanh`] on a worker pool.
pub fn tanh_with(rt: &Runtime, t: &Tensor) -> Tensor {
    t.map_with(rt, f32::tanh)
}

/// Softmax along the final axis, used to turn class scores into a
/// distribution over the four object categories the paper cares about.
///
/// Numerically stabilized by subtracting the row maximum.
pub fn softmax(t: &Tensor) -> Tensor {
    softmax_with(&Runtime::serial(), t)
}

/// [`softmax`] on a worker pool: rows normalize independently.
pub fn softmax_with(rt: &Runtime, t: &Tensor) -> Tensor {
    let rank = t.shape().rank();
    let last = t.shape().dim(rank - 1);
    let mut out = t.clone();
    if last == 0 {
        return out;
    }
    let rt = rt.for_work(3 * t.len());
    rt.par_chunks_mut(out.as_mut_slice(), last, |_, row| {
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - m).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives_only() {
        let t = Tensor::from_vec([4], vec![-5.0, -0.1, 0.1, 5.0]).unwrap();
        assert_eq!(relu(&t).as_slice(), &[0.0, 0.0, 0.1, 5.0]);
    }

    #[test]
    fn leaky_relu_scales_negatives() {
        let t = Tensor::from_vec([2], vec![-10.0, 10.0]).unwrap();
        assert_eq!(leaky_relu(&t, 0.1).as_slice(), &[-1.0, 10.0]);
    }

    #[test]
    fn sigmoid_range_and_symmetry() {
        let t = Tensor::from_vec([3], vec![-100.0, 0.0, 100.0]).unwrap();
        let s = sigmoid(&t);
        assert!(s.as_slice()[0] < 1e-6);
        assert!((s.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!(s.as_slice()[2] > 1.0 - 1e-6);
    }

    #[test]
    fn tanh_is_odd() {
        let t = Tensor::from_vec([2], vec![-1.0, 1.0]).unwrap();
        let y = tanh(&t);
        assert!((y.as_slice()[0] + y.as_slice()[1]).abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]).unwrap();
        let s = softmax(&t);
        for r in 0..2 {
            let sum: f32 = s.as_slice()[r * 3..(r + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Largest logit keeps the largest probability.
        assert_eq!(
            s.as_slice()[..3]
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0,
            2
        );
    }

    #[test]
    fn parallel_activations_match_serial() {
        let t = Tensor::from_vec(
            [3, 7],
            (0..21).map(|i| (i as f32 - 10.0) * 0.3).collect(),
        )
        .unwrap();
        let rt = Runtime::new(4);
        assert_eq!(relu_with(&rt, &t), relu(&t));
        assert_eq!(leaky_relu_with(&rt, &t, 0.1), leaky_relu(&t, 0.1));
        assert_eq!(sigmoid_with(&rt, &t), sigmoid(&t));
        assert_eq!(tanh_with(&rt, &t), tanh(&t));
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let t = Tensor::from_vec([1, 2], vec![1000.0, 1000.0]).unwrap();
        let s = softmax(&t);
        assert!((s.as_slice()[0] - 0.5).abs() < 1e-6);
    }
}
