//! Neural-network primitive kernels over [`Tensor`](crate::Tensor).
//!
//! These are the building blocks of the YOLO-like detection network and
//! GOTURN-like tracking network (paper §3.1.1–3.1.2, §4.2.2): 2-D
//! convolution, max-pooling, activations, fully-connected layers,
//! softmax and inference-time batch normalization.

mod activation;
mod conv;
mod linear;
mod norm;
mod pool;

pub use activation::{
    leaky_relu, leaky_relu_isa, leaky_relu_with, relu, relu_isa, relu_with, sigmoid, sigmoid_with,
    softmax, softmax_with, tanh, tanh_with,
};
pub use conv::{conv2d, conv2d_direct, conv2d_isa, conv2d_with, im2col, im2col_batched};
pub use linear::{
    linear, linear_isa, linear_with, matmul, matmul_i8_into, matmul_i8_packed_into, matmul_isa,
    matmul_with, pack_i8_b, packed_i8_len, MATMUL_I8_MAX_K,
};
pub use norm::{batch_norm, batch_norm_isa, batch_norm_with};
pub use pool::{
    avg_pool2d, avg_pool2d_isa, avg_pool2d_with, max_pool2d, max_pool2d_isa, max_pool2d_with,
};

/// Output spatial size of a convolution/pooling window sweep.
///
/// `size` is the input extent, `k` the kernel extent, `stride` the step
/// and `pad` the symmetric zero padding. Returns `None` when the window
/// does not fit even once.
pub fn out_extent(size: usize, k: usize, stride: usize, pad: usize) -> Option<usize> {
    let padded = size + 2 * pad;
    if k == 0 || stride == 0 || padded < k {
        return None;
    }
    Some((padded - k) / stride + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_extent_matches_formula() {
        assert_eq!(out_extent(4, 3, 1, 1), Some(4));
        assert_eq!(out_extent(8, 2, 2, 0), Some(4));
        assert_eq!(out_extent(5, 3, 2, 0), Some(2));
    }

    #[test]
    fn out_extent_rejects_impossible_windows() {
        assert_eq!(out_extent(2, 3, 1, 0), None);
        assert_eq!(out_extent(4, 0, 1, 0), None);
        assert_eq!(out_extent(4, 2, 0, 0), None);
    }
}
