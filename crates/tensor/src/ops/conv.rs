use super::linear::matmul_into;
use super::out_extent;
use adsim_runtime::Runtime;
use std::cell::RefCell;

use crate::simd::{self, Isa};
use crate::{Result, Tensor, TensorError};

thread_local! {
    /// Reusable im2col / GEMM-output scratch for [`conv2d_isa`].
    ///
    /// Batched convolutions need `k·n·cols_n`-sized staging buffers that
    /// exceed the allocator's mmap threshold, so allocating them fresh
    /// per layer costs a page-fault sweep over tens of megabytes —
    /// which is what used to make per-image latency *rise* with batch
    /// size. Keeping one warm buffer pair per thread turns that into a
    /// plain memset over already-mapped pages. Contents never survive a
    /// call (both buffers are re-zeroed), so results are unaffected.
    static CONV_SCRATCH: RefCell<(Vec<f32>, Vec<f32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Zeroes and returns the first `len` elements of `buf`.
fn zeroed(buf: &mut Vec<f32>, len: usize) -> &mut [f32] {
    buf.clear();
    buf.resize(len, 0.0);
    &mut buf[..]
}

/// 2-D convolution (really cross-correlation, as in every DNN framework)
/// of an NCHW `input` with an OIHW `weight`, implemented as im2col
/// followed by a matrix multiply — the same lowering cuDNN and the
/// paper's FPGA processing elements use.
///
/// * `input`: `[n, c_in, h, w]`
/// * `weight`: `[c_out, c_in, kh, kw]`
/// * `bias`: optional `[c_out]`
/// * output: `[n, c_out, h_out, w_out]`
///
/// # Errors
///
/// Returns an error if ranks differ from 4/1, the channel counts
/// disagree, the bias length differs from `c_out`, the stride is zero,
/// or the kernel does not fit the padded input.
///
/// # Examples
///
/// ```
/// use adsim_tensor::{ops, Tensor};
///
/// let input = Tensor::filled([1, 1, 3, 3], 1.0);
/// let weight = Tensor::filled([1, 1, 3, 3], 1.0);
/// let out = ops::conv2d(&input, &weight, None, 1, 0).unwrap();
/// assert_eq!(out.as_slice(), &[9.0]);
/// ```
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
) -> Result<Tensor> {
    conv2d_with(&Runtime::serial(), input, weight, bias, stride, pad)
}

/// [`conv2d`] on a worker pool with the host's detected SIMD backend.
/// Equivalent to [`conv2d_isa`] with [`simd::active`].
///
/// # Errors
///
/// Same conditions as [`conv2d`].
pub fn conv2d_with(
    rt: &Runtime,
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
) -> Result<Tensor> {
    conv2d_isa(rt, input, weight, bias, stride, pad, simd::active())
}

/// [`conv2d`] on a worker pool and an explicit SIMD backend.
///
/// Batches are **column-appended**: every image's im2col columns land
/// in one `[k, n·h_out·w_out]` matrix (image `b` owning the column
/// band `b·cols_n..(b+1)·cols_n`) and a single
/// `[c_out, k] × [k, n·cols_n]` GEMM covers the whole batch, so the
/// weight matrix streams through the cache **once per batch** instead
/// of once per image — the weight-traffic amortization the fleet's
/// cross-vehicle batched inference is built on. The GEMM runs on the
/// `simd` lane microkernels (im2col itself stays scalar — it is a pure
/// memory permutation) and parallelizes over output-row blocks of the
/// combined matrix, so wider batches also mean better core utilization
/// at small `c_out`.
///
/// Because an output element's k-accumulation order is fixed and the
/// lane kernels are column-position-invariant (see `simd`), the result
/// for image `b` in a batch of any size is **bit-identical** to
/// running that image alone — and identical on every thread count.
///
/// # Errors
///
/// Same conditions as [`conv2d`].
#[allow(clippy::too_many_arguments)]
pub fn conv2d_isa(
    rt: &Runtime,
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
    isa: Isa,
) -> Result<Tensor> {
    let (n, c_in, h, w) = input.shape().as_nchw()?;
    let (c_out, wc_in, kh, kw) = weight.shape().as_nchw()?;
    validate_conv_args(c_in, wc_in, bias, c_out, stride)?;
    let (h_out, w_out) = conv_output_hw(h, w, kh, kw, stride, pad)?;

    // OIHW weight data is already laid out as [c_out, c_in*kh*kw].
    let k = c_in * kh * kw;
    let cols_n = h_out * w_out;
    let plane = c_out * cols_n;
    let _sp = adsim_trace::span("tensor.conv2d").with_cost(
        2 * (n * c_out * k * cols_n) as u64,
        4 * (input.len() + weight.len() + n * plane) as u64,
    );
    let mut out = Tensor::zeros([n, c_out, h_out, w_out]);
    let rt = rt.for_work(2 * n * c_out * k * cols_n);
    let total_cols = n * cols_n;
    CONV_SCRATCH.with_borrow_mut(|(cols_buf, gemm_buf)| {
        let cols = zeroed(cols_buf, k * total_cols);
        for b in 0..n {
            im2col_into(
                input, b, kh, kw, stride, pad, h_out, w_out, b * cols_n, total_cols, cols,
            );
        }
        if n == 1 {
            // Single image: the GEMM output layout already is the NCHW
            // plane, so no scatter pass is needed.
            matmul_into(rt, isa, weight.as_slice(), cols, out.as_mut_slice(), c_out, k, cols_n);
        } else {
            // One GEMM over the appended columns, then scatter the
            // [c_out, n·cols_n] product into [n, c_out, cols_n] planes (a
            // pure copy — the arithmetic all happened in the GEMM).
            let gemm_out = zeroed(gemm_buf, c_out * total_cols);
            matmul_into(rt, isa, weight.as_slice(), cols, gemm_out, c_out, k, total_cols);
            let dst = out.as_mut_slice();
            for b in 0..n {
                for oc in 0..c_out {
                    let src = &gemm_out[oc * total_cols + b * cols_n..][..cols_n];
                    dst[(b * c_out + oc) * cols_n..][..cols_n].copy_from_slice(src);
                }
            }
        }
    });
    if let Some(bias) = bias {
        add_channel_bias(&mut out, bias, isa);
    }
    Ok(out)
}

/// Reference direct (sextuple-loop) convolution, used to validate the
/// im2col path in tests. Same contract as [`conv2d`].
///
/// # Errors
///
/// See [`conv2d`].
pub fn conv2d_direct(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
) -> Result<Tensor> {
    let (n, c_in, h, w) = input.shape().as_nchw()?;
    let (c_out, wc_in, kh, kw) = weight.shape().as_nchw()?;
    validate_conv_args(c_in, wc_in, bias, c_out, stride)?;
    let (h_out, w_out) = conv_output_hw(h, w, kh, kw, stride, pad)?;

    let mut out = Tensor::zeros([n, c_out, h_out, w_out]);
    for b in 0..n {
        for oc in 0..c_out {
            for oy in 0..h_out {
                for ox in 0..w_out {
                    let mut acc = 0.0f32;
                    for ic in 0..c_in {
                        for ky in 0..kh {
                            for kx in 0..kw {
                                let iy = (oy * stride + ky) as isize - pad as isize;
                                let ix = (ox * stride + kx) as isize - pad as isize;
                                if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                    continue;
                                }
                                acc += input.at(&[b, ic, iy as usize, ix as usize])
                                    * weight.at(&[oc, ic, ky, kx]);
                            }
                        }
                    }
                    *out.at_mut(&[b, oc, oy, ox]) = acc;
                }
            }
        }
    }
    if let Some(bias) = bias {
        add_channel_bias(&mut out, bias, Isa::SCALAR);
    }
    Ok(out)
}

/// Unrolls one image into convolution columns: the result is a
/// `[c_in*kh*kw, h_out*w_out]` matrix whose columns are flattened
/// receptive fields.
///
/// # Errors
///
/// Returns an error if `input` is not rank 4 or the kernel does not fit.
pub fn im2col(
    input: &Tensor,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> Result<Tensor> {
    let (_, c_in, h, w) = input.shape().as_nchw()?;
    let (h_out, w_out) = conv_output_hw(h, w, kh, kw, stride, pad)?;
    let cols_n = h_out * w_out;
    let mut cols = Tensor::zeros([c_in * kh * kw, cols_n]);
    im2col_into(input, 0, kh, kw, stride, pad, h_out, w_out, 0, cols_n, cols.as_mut_slice());
    Ok(cols)
}

/// [`im2col`] over a whole `[n, c, h, w]` batch with column appending:
/// the result is `[c·kh·kw, n·h_out·w_out]` where image `b` owns the
/// column band `b·h_out·w_out..(b+1)·h_out·w_out` — the layout the
/// batched conv GEMM consumes, exposed for the quantized conv path.
///
/// # Errors
///
/// Returns an error if `input` is not rank 4 or the kernel does not fit.
pub fn im2col_batched(
    input: &Tensor,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> Result<Tensor> {
    let (n, c_in, h, w) = input.shape().as_nchw()?;
    let (h_out, w_out) = conv_output_hw(h, w, kh, kw, stride, pad)?;
    let cols_n = h_out * w_out;
    let total_cols = n * cols_n;
    let mut cols = Tensor::zeros([c_in * kh * kw, total_cols]);
    let dst = cols.as_mut_slice();
    for b in 0..n {
        im2col_into(input, b, kh, kw, stride, pad, h_out, w_out, b * cols_n, total_cols, dst);
    }
    Ok(cols)
}

/// Unrolls image `batch` of `input` into the column band starting at
/// `col_base` of `out`, a zeroed `[c_in*kh*kw, row_stride]` matrix —
/// the allocation-free core of [`im2col`]. With `col_base = b·cols_n`
/// and `row_stride = n·cols_n` the bands of a whole batch append into
/// one matrix for the batched GEMM; a single image passes `0, cols_n`.
#[allow(clippy::too_many_arguments)]
fn im2col_into(
    input: &Tensor,
    batch: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    h_out: usize,
    w_out: usize,
    col_base: usize,
    row_stride: usize,
    out: &mut [f32],
) {
    let (_, c_in, h, w) = input
        .shape()
        .as_nchw()
        .expect("caller validated rank");
    let cols_n = h_out * w_out;
    debug_assert!(col_base + cols_n <= row_stride);
    debug_assert_eq!(out.len(), c_in * kh * kw * row_stride);
    let data = input.as_slice();
    let in_plane = h * w;
    let in_base = batch * c_in * in_plane;
    for ic in 0..c_in {
        for ky in 0..kh {
            for kx in 0..kw {
                let row = (ic * kh + ky) * kw + kx;
                let row_base = row * row_stride + col_base;
                for oy in 0..h_out {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let src_row = in_base + ic * in_plane + iy as usize * w;
                    let dst_row = row_base + oy * w_out;
                    for ox in 0..w_out {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        out[dst_row + ox] = data[src_row + ix as usize];
                    }
                }
            }
        }
    }
}

fn validate_conv_args(
    c_in: usize,
    wc_in: usize,
    bias: Option<&Tensor>,
    c_out: usize,
    stride: usize,
) -> Result<()> {
    if c_in != wc_in {
        return Err(TensorError::InvalidParameter {
            op: "conv2d",
            reason: format!("input has {c_in} channels but weight expects {wc_in}"),
        });
    }
    if stride == 0 {
        return Err(TensorError::InvalidParameter {
            op: "conv2d",
            reason: "stride must be positive".into(),
        });
    }
    if let Some(b) = bias {
        if b.shape().rank() != 1 || b.shape().dim(0) != c_out {
            return Err(TensorError::InvalidParameter {
                op: "conv2d",
                reason: format!(
                    "bias shape {} does not match {c_out} output channels",
                    b.shape()
                ),
            });
        }
    }
    Ok(())
}

fn conv_output_hw(
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> Result<(usize, usize)> {
    match (out_extent(h, kh, stride, pad), out_extent(w, kw, stride, pad)) {
        (Some(h_out), Some(w_out)) => Ok((h_out, w_out)),
        _ => Err(TensorError::InvalidParameter {
            op: "conv2d",
            reason: format!("kernel {kh}x{kw} does not fit input {h}x{w} with pad {pad}"),
        }),
    }
}

fn add_channel_bias(out: &mut Tensor, bias: &Tensor, isa: Isa) {
    let (n, c, h, w) = out.shape().as_nchw().expect("conv output is rank 4");
    let b = bias.as_slice();
    let data = out.as_mut_slice();
    for batch in 0..n {
        for (ch, &bias_ch) in b.iter().enumerate().take(c) {
            let base = (batch * c + ch) * h * w;
            simd::add_scalar(isa, &mut data[base..base + h * w], bias_ch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_tensor(shape: impl Into<crate::Shape>) -> Tensor {
        let shape = shape.into();
        let n = shape.len();
        Tensor::from_vec(shape, (0..n).map(|i| i as f32 * 0.1 - 1.0).collect()).unwrap()
    }

    #[test]
    fn identity_kernel_preserves_input() {
        let input = seq_tensor([1, 1, 5, 5]);
        let mut weight = Tensor::zeros([1, 1, 3, 3]);
        *weight.at_mut(&[0, 0, 1, 1]) = 1.0;
        let out = conv2d(&input, &weight, None, 1, 1).unwrap();
        assert_eq!(out.shape(), input.shape());
        for y in 0..5 {
            for x in 0..5 {
                assert!((out.at(&[0, 0, y, x]) - input.at(&[0, 0, y, x])).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn im2col_matches_direct_convolution() {
        let input = seq_tensor([2, 3, 7, 6]);
        let weight = seq_tensor([4, 3, 3, 3]);
        let bias = Tensor::from_vec([4], vec![0.1, -0.2, 0.3, 0.0]).unwrap();
        for (stride, pad) in [(1, 0), (1, 1), (2, 1), (2, 0)] {
            let fast = conv2d(&input, &weight, Some(&bias), stride, pad).unwrap();
            let slow = conv2d_direct(&input, &weight, Some(&bias), stride, pad).unwrap();
            assert_eq!(fast.shape(), slow.shape());
            // Relative tolerance: the im2col GEMM may use FMA while
            // the direct reference accumulates with separate roundings.
            for (a, b) in fast.iter().zip(slow.iter()) {
                assert!(
                    (a - b).abs() <= 1e-5 * b.abs().max(1.0),
                    "stride={stride} pad={pad}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn stride_two_halves_output() {
        let input = Tensor::filled([1, 1, 8, 8], 1.0);
        let weight = Tensor::filled([1, 1, 2, 2], 1.0);
        let out = conv2d(&input, &weight, None, 2, 0).unwrap();
        assert_eq!(out.shape().dims(), &[1, 1, 4, 4]);
        assert!(out.iter().all(|&v| (v - 4.0).abs() < 1e-6));
    }

    #[test]
    fn bias_adds_per_channel() {
        let input = Tensor::filled([1, 1, 2, 2], 0.0);
        let weight = Tensor::zeros([2, 1, 1, 1]);
        let bias = Tensor::from_vec([2], vec![1.5, -2.5]).unwrap();
        let out = conv2d(&input, &weight, Some(&bias), 1, 0).unwrap();
        assert!(out.as_slice()[..4].iter().all(|&v| v == 1.5));
        assert!(out.as_slice()[4..].iter().all(|&v| v == -2.5));
    }

    #[test]
    fn channel_mismatch_is_rejected() {
        let input = Tensor::zeros([1, 2, 4, 4]);
        let weight = Tensor::zeros([1, 3, 3, 3]);
        assert!(conv2d(&input, &weight, None, 1, 0).is_err());
    }

    #[test]
    fn oversized_kernel_is_rejected() {
        let input = Tensor::zeros([1, 1, 2, 2]);
        let weight = Tensor::zeros([1, 1, 3, 3]);
        assert!(conv2d(&input, &weight, None, 1, 0).is_err());
    }

    #[test]
    fn bad_bias_is_rejected() {
        let input = Tensor::zeros([1, 1, 4, 4]);
        let weight = Tensor::zeros([2, 1, 1, 1]);
        let bias = Tensor::zeros([3]);
        assert!(conv2d(&input, &weight, Some(&bias), 1, 0).is_err());
    }

    #[test]
    fn im2col_shape_is_receptive_fields_by_positions() {
        let input = Tensor::zeros([1, 3, 5, 5]);
        let cols = im2col(&input, 3, 3, 1, 1).unwrap();
        assert_eq!(cols.shape().dims(), &[3 * 3 * 3, 5 * 5]);
    }
}
