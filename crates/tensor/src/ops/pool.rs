use super::out_extent;
use adsim_runtime::Runtime;

use crate::simd::{self, Isa};
use crate::{Result, Tensor, TensorError};

/// 2-D max pooling over an NCHW tensor.
///
/// YOLO's trunk interleaves these with convolutions to halve spatial
/// resolution (Fig. 3 of the paper).
///
/// # Errors
///
/// Returns an error if the input is not rank 4, the window or stride is
/// zero, or the window does not fit.
///
/// # Examples
///
/// ```
/// use adsim_tensor::{ops, Tensor};
///
/// let t = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
/// let out = ops::max_pool2d(&t, 2, 2).unwrap();
/// assert_eq!(out.as_slice(), &[4.0]);
/// ```
pub fn max_pool2d(input: &Tensor, window: usize, stride: usize) -> Result<Tensor> {
    max_pool2d_isa(&Runtime::serial(), input, window, stride, simd::active())
}

/// [`max_pool2d`] on a worker pool: each `n × c` plane is one task.
///
/// # Errors
///
/// Same conditions as [`max_pool2d`].
pub fn max_pool2d_with(
    rt: &Runtime,
    input: &Tensor,
    window: usize,
    stride: usize,
) -> Result<Tensor> {
    max_pool2d_isa(rt, input, window, stride, simd::active())
}

/// [`max_pool2d`] on a worker pool and an explicit SIMD backend. The
/// kernel is FMA-free, so every backend is bit-identical.
///
/// # Errors
///
/// Same conditions as [`max_pool2d`].
pub fn max_pool2d_isa(
    rt: &Runtime,
    input: &Tensor,
    window: usize,
    stride: usize,
    isa: Isa,
) -> Result<Tensor> {
    pool2d(rt, input, window, stride, PoolKind::Max, isa)
}

/// 2-D average pooling over an NCHW tensor.
///
/// # Errors
///
/// Same conditions as [`max_pool2d`].
pub fn avg_pool2d(input: &Tensor, window: usize, stride: usize) -> Result<Tensor> {
    avg_pool2d_isa(&Runtime::serial(), input, window, stride, simd::active())
}

/// [`avg_pool2d`] on a worker pool.
///
/// # Errors
///
/// Same conditions as [`avg_pool2d`].
pub fn avg_pool2d_with(
    rt: &Runtime,
    input: &Tensor,
    window: usize,
    stride: usize,
) -> Result<Tensor> {
    avg_pool2d_isa(rt, input, window, stride, simd::active())
}

/// [`avg_pool2d`] on a worker pool and an explicit SIMD backend. The
/// kernel is FMA-free, so every backend is bit-identical.
///
/// # Errors
///
/// Same conditions as [`avg_pool2d`].
pub fn avg_pool2d_isa(
    rt: &Runtime,
    input: &Tensor,
    window: usize,
    stride: usize,
    isa: Isa,
) -> Result<Tensor> {
    pool2d(rt, input, window, stride, PoolKind::Avg, isa)
}

#[derive(Clone, Copy)]
enum PoolKind {
    Max,
    Avg,
}

fn pool2d(
    rt: &Runtime,
    input: &Tensor,
    window: usize,
    stride: usize,
    kind: PoolKind,
    isa: Isa,
) -> Result<Tensor> {
    let (n, c, h, w) = input.shape().as_nchw()?;
    let (h_out, w_out) = match (
        out_extent(h, window, stride, 0),
        out_extent(w, window, stride, 0),
    ) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(TensorError::InvalidParameter {
                op: "pool2d",
                reason: format!("window {window} stride {stride} does not fit {h}x{w}"),
            })
        }
    };
    let mut out = Tensor::zeros([n, c, h_out, w_out]);
    let src = input.as_slice();
    let in_plane = h * w;
    let out_plane = h_out * w_out;
    let rt = rt.for_work(n * c * out_plane * window * window);
    if out_plane > 0 {
        rt.par_chunks_mut(out.as_mut_slice(), out_plane, |img, dplane| {
            let sbase = img * in_plane;
            if stride == 1 {
                // Stride-1 windows overlap: accumulate whole output
                // rows with the lane kernels — each (ky, kx) tap is
                // one shifted input-row segment, visited in the same
                // order as the per-element loop, so every backend is
                // bit-identical.
                for oy in 0..h_out {
                    let drow = &mut dplane[oy * w_out..(oy + 1) * w_out];
                    drow.fill(match kind {
                        PoolKind::Max => f32::NEG_INFINITY,
                        PoolKind::Avg => 0.0,
                    });
                    for ky in 0..window {
                        let row = sbase + (oy + ky) * w;
                        for kx in 0..window {
                            let srow = &src[row + kx..row + kx + w_out];
                            match kind {
                                PoolKind::Max => simd::max_assign(isa, drow, srow),
                                PoolKind::Avg => simd::add_assign(isa, drow, srow),
                            }
                        }
                    }
                    if let PoolKind::Avg = kind {
                        // Multiply by the reciprocal (not divide) so
                        // the vector and scalar backends round
                        // identically; exact for power-of-two windows.
                        simd::scale_shift(isa, drow, 1.0 / (window * window) as f32, 0.0);
                    }
                }
            } else {
                for oy in 0..h_out {
                    for ox in 0..w_out {
                        let mut acc = match kind {
                            PoolKind::Max => f32::NEG_INFINITY,
                            PoolKind::Avg => 0.0,
                        };
                        for ky in 0..window {
                            let row = sbase + (oy * stride + ky) * w + ox * stride;
                            for kx in 0..window {
                                let v = src[row + kx];
                                match kind {
                                    PoolKind::Max => acc = acc.max(v),
                                    PoolKind::Avg => acc += v,
                                }
                            }
                        }
                        if let PoolKind::Avg = kind {
                            acc /= (window * window) as f32;
                        }
                        dplane[oy * w_out + ox] = acc;
                    }
                }
            }
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_picks_window_maxima() {
        let t = Tensor::from_vec(
            [1, 1, 4, 4],
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                -1.0, -2.0, 0.0, 0.0, //
                -3.0, -4.0, 0.0, 9.0,
            ],
        )
        .unwrap();
        let out = max_pool2d(&t, 2, 2).unwrap();
        assert_eq!(out.as_slice(), &[4.0, 8.0, -1.0, 9.0]);
    }

    #[test]
    fn avg_pool_averages() {
        let t = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let out = avg_pool2d(&t, 2, 2).unwrap();
        assert_eq!(out.as_slice(), &[2.5]);
    }

    #[test]
    fn overlapping_windows_with_stride_one() {
        let t = Tensor::from_vec([1, 1, 3, 3], (1..=9).map(|i| i as f32).collect()).unwrap();
        let out = max_pool2d(&t, 2, 1).unwrap();
        assert_eq!(out.shape().dims(), &[1, 1, 2, 2]);
        assert_eq!(out.as_slice(), &[5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn pooling_preserves_batch_and_channels() {
        let t = Tensor::filled([2, 3, 4, 4], 1.0);
        let out = max_pool2d(&t, 2, 2).unwrap();
        assert_eq!(out.shape().dims(), &[2, 3, 2, 2]);
    }

    #[test]
    fn parallel_pooling_matches_serial() {
        let t = Tensor::from_vec(
            [2, 3, 6, 6],
            (0..2 * 3 * 36).map(|i| ((i * 7) % 23) as f32 - 11.0).collect(),
        )
        .unwrap();
        let rt = Runtime::new(4);
        assert_eq!(max_pool2d_with(&rt, &t, 2, 2).unwrap(), max_pool2d(&t, 2, 2).unwrap());
        assert_eq!(avg_pool2d_with(&rt, &t, 3, 1).unwrap(), avg_pool2d(&t, 3, 1).unwrap());
    }

    #[test]
    fn too_large_window_is_rejected() {
        let t = Tensor::zeros([1, 1, 2, 2]);
        assert!(max_pool2d(&t, 3, 1).is_err());
        assert!(max_pool2d(&t, 2, 0).is_err());
    }
}
