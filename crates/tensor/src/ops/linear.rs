use crate::{Result, Tensor, TensorError};

/// Matrix multiply of a `[m, k]` tensor by a `[k, n]` tensor.
///
/// This is the compute core of both the fully-connected layers and the
/// im2col convolution lowering — the operation the paper notes consumes
/// most machine-learning execution time and parallelizes onto GPUs (§6).
///
/// # Errors
///
/// Returns an error if either operand is not rank 2 or the inner
/// dimensions disagree.
///
/// # Examples
///
/// ```
/// use adsim_tensor::{ops, Tensor};
///
/// let a = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// let b = Tensor::from_vec([2, 1], vec![1.0, 1.0])?;
/// assert_eq!(ops::matmul(&a, &b)?.as_slice(), &[3.0, 7.0]);
/// # Ok::<(), adsim_tensor::TensorError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "matmul",
            expected: 2,
            actual: a.shape().rank(),
        });
    }
    if b.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "matmul",
            expected: 2,
            actual: b.shape().rank(),
        });
    }
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let (k2, n) = (b.shape().dim(0), b.shape().dim(1));
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
        });
    }
    let mut out = Tensor::zeros([m, n]);
    let av = a.as_slice();
    let bv = b.as_slice();
    let ov = out.as_mut_slice();
    // ikj loop order: streams through B and the output row contiguously.
    for i in 0..m {
        let arow = &av[i * k..(i + 1) * k];
        let orow = &mut ov[i * n..(i + 1) * n];
        for (kk, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = &bv[kk * n..(kk + 1) * n];
            for (o, &bv_) in orow.iter_mut().zip(brow) {
                *o += aik * bv_;
            }
        }
    }
    Ok(out)
}

/// Fully-connected layer: `input [batch, features] × weightᵀ + bias`.
///
/// * `input`: `[batch, in_features]`
/// * `weight`: `[out_features, in_features]` (row per output neuron)
/// * `bias`: optional `[out_features]`
///
/// # Errors
///
/// Returns an error on rank or dimension mismatches.
///
/// # Examples
///
/// ```
/// use adsim_tensor::{ops, Tensor};
///
/// let x = Tensor::from_vec([1, 3], vec![1.0, 2.0, 3.0])?;
/// let w = Tensor::from_vec([2, 3], vec![1.0, 0.0, 0.0, 0.0, 0.0, 1.0])?;
/// let y = ops::linear(&x, &w, None)?;
/// assert_eq!(y.as_slice(), &[1.0, 3.0]);
/// # Ok::<(), adsim_tensor::TensorError>(())
/// ```
pub fn linear(input: &Tensor, weight: &Tensor, bias: Option<&Tensor>) -> Result<Tensor> {
    if input.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "linear",
            expected: 2,
            actual: input.shape().rank(),
        });
    }
    if weight.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "linear",
            expected: 2,
            actual: weight.shape().rank(),
        });
    }
    let (batch, in_f) = (input.shape().dim(0), input.shape().dim(1));
    let (out_f, w_in) = (weight.shape().dim(0), weight.shape().dim(1));
    if in_f != w_in {
        return Err(TensorError::ShapeMismatch {
            op: "linear",
            lhs: input.shape().clone(),
            rhs: weight.shape().clone(),
        });
    }
    if let Some(b) = bias {
        if b.shape().rank() != 1 || b.shape().dim(0) != out_f {
            return Err(TensorError::InvalidParameter {
                op: "linear",
                reason: format!(
                    "bias shape {} does not match {out_f} output features",
                    b.shape()
                ),
            });
        }
    }
    let mut out = Tensor::zeros([batch, out_f]);
    let xv = input.as_slice();
    let wv = weight.as_slice();
    let ov = out.as_mut_slice();
    for bi in 0..batch {
        let xrow = &xv[bi * in_f..(bi + 1) * in_f];
        for of in 0..out_f {
            let wrow = &wv[of * in_f..(of + 1) * in_f];
            let mut acc = 0.0f32;
            for (x, w) in xrow.iter().zip(wrow) {
                acc += x * w;
            }
            ov[bi * out_f + of] = acc;
        }
    }
    if let Some(b) = bias {
        let bv = b.as_slice();
        for bi in 0..batch {
            for of in 0..out_f {
                ov[bi * out_f + of] += bv[of];
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let id = Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        assert_eq!(matmul(&a, &id).unwrap(), a);
        assert_eq!(matmul(&id, &a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Tensor::from_vec([3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([2, 3]);
        assert!(matmul(&a, &b).is_err());
        let v = Tensor::zeros([3]);
        assert!(matmul(&v, &b).is_err());
    }

    #[test]
    fn linear_matches_matmul_with_transpose() {
        let x = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let w = Tensor::from_vec([2, 3], vec![0.5, -1.0, 2.0, 1.0, 1.0, 1.0]).unwrap();
        let y = linear(&x, &w, None).unwrap();
        // Manual transpose of w for comparison via matmul.
        let wt = Tensor::from_vec([3, 2], vec![0.5, 1.0, -1.0, 1.0, 2.0, 1.0]).unwrap();
        let expect = matmul(&x, &wt).unwrap();
        assert_eq!(y, expect);
    }

    #[test]
    fn linear_applies_bias() {
        let x = Tensor::zeros([1, 4]);
        let w = Tensor::zeros([2, 4]);
        let b = Tensor::from_vec([2], vec![3.0, -3.0]).unwrap();
        let y = linear(&x, &w, Some(&b)).unwrap();
        assert_eq!(y.as_slice(), &[3.0, -3.0]);
    }

    #[test]
    fn linear_rejects_mismatched_bias() {
        let x = Tensor::zeros([1, 4]);
        let w = Tensor::zeros([2, 4]);
        let b = Tensor::zeros([3]);
        assert!(linear(&x, &w, Some(&b)).is_err());
    }
}
