use adsim_runtime::Runtime;

use crate::simd::{self, Isa};
use crate::{Result, Tensor, TensorError};

/// A-rows per register block of the matmul microkernel: four output
/// rows share every loaded element of a B row.
const MR: usize = 4;
/// k-panel extent: one panel of B rows (`KC × n` values) is streamed
/// per output block while it is still cache-resident.
const KC: usize = 256;

/// Matrix multiply of a `[m, k]` tensor by a `[k, n]` tensor.
///
/// This is the compute core of both the fully-connected layers and the
/// im2col convolution lowering — the operation the paper notes consumes
/// most machine-learning execution time and parallelizes onto GPUs (§6).
/// Runs serially; [`matmul_with`] is the multicore entry point.
///
/// # Errors
///
/// Returns an error if either operand is not rank 2 or the inner
/// dimensions disagree.
///
/// # Examples
///
/// ```
/// use adsim_tensor::{ops, Tensor};
///
/// let a = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// let b = Tensor::from_vec([2, 1], vec![1.0, 1.0])?;
/// assert_eq!(ops::matmul(&a, &b)?.as_slice(), &[3.0, 7.0]);
/// # Ok::<(), adsim_tensor::TensorError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    matmul_with(&Runtime::serial(), a, b)
}

/// [`matmul`] on a worker pool with the host's detected SIMD backend.
/// Equivalent to [`matmul_isa`] with [`simd::active`].
///
/// # Errors
///
/// Same conditions as [`matmul`].
pub fn matmul_with(rt: &Runtime, a: &Tensor, b: &Tensor) -> Result<Tensor> {
    matmul_isa(rt, a, b, simd::active())
}

/// [`matmul`] on a worker pool and an explicit SIMD backend: output
/// row blocks are partitioned across the runtime's workers, and each
/// block runs a register-blocked `MR = 4` lane microkernel over
/// `KC`-row panels of B. Per output element the k-accumulation order
/// is identical on every thread count, so results do not depend on the
/// runtime; vector backends contract multiply-add pairs into FMAs, so
/// results agree with [`Isa::SCALAR`] to ≤1e-5 relative error.
///
/// # Errors
///
/// Same conditions as [`matmul`].
pub fn matmul_isa(rt: &Runtime, a: &Tensor, b: &Tensor, isa: Isa) -> Result<Tensor> {
    if a.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "matmul",
            expected: 2,
            actual: a.shape().rank(),
        });
    }
    if b.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "matmul",
            expected: 2,
            actual: b.shape().rank(),
        });
    }
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let (k2, n) = (b.shape().dim(0), b.shape().dim(1));
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
        });
    }
    let _sp = adsim_trace::span("tensor.matmul")
        .with_cost(2 * (m * n * k) as u64, 4 * (m * k + k * n + m * n) as u64);
    let mut out = Tensor::zeros([m, n]);
    matmul_into(
        rt.for_work(2 * m * n * k),
        isa,
        a.as_slice(),
        b.as_slice(),
        out.as_mut_slice(),
        m,
        k,
        n,
    );
    Ok(out)
}

/// The raw-slice matmul core shared with the conv2d lowering:
/// `ov[m × n] += av[m × k] · bv[k × n]` (callers pass zeroed output).
/// Row blocks of `MR` rows go to the pool's workers; within a block
/// the `simd` lane microkernels accumulate one `KC`-row panel of B at
/// a time while it is cache-resident.
#[allow(clippy::too_many_arguments)]
pub(crate) fn matmul_into(
    rt: Runtime,
    isa: Isa,
    av: &[f32],
    bv: &[f32],
    ov: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(av.len(), m * k);
    debug_assert_eq!(bv.len(), k * n);
    debug_assert_eq!(ov.len(), m * n);
    if n == 0 {
        return;
    }
    rt.par_chunks_mut(ov, MR * n, |blk, orows| {
        let i0 = blk * MR;
        let rows = orows.len() / n;
        // Panel over k so the streamed slab of B stays cache-resident
        // while all `rows` output rows accumulate it.
        for k0 in (0..k).step_by(KC) {
            let k1 = (k0 + KC).min(k);
            if rows == MR {
                let (o0, rest) = orows.split_at_mut(n);
                let (o1, rest) = rest.split_at_mut(n);
                let (o2, o3) = rest.split_at_mut(n);
                simd::gemm4(
                    isa,
                    &av[i0 * k..],
                    k,
                    k0,
                    k1,
                    bv,
                    n,
                    o0,
                    o1,
                    o2,
                    o3,
                );
            } else {
                for (r, orow) in orows.chunks_mut(n).enumerate() {
                    simd::gemm1(isa, &av[(i0 + r) * k..], k0, k1, bv, n, orow);
                }
            }
        }
    });
}

/// Fully-connected layer: `input [batch, features] × weightᵀ + bias`.
///
/// * `input`: `[batch, in_features]`
/// * `weight`: `[out_features, in_features]` (row per output neuron)
/// * `bias`: optional `[out_features]`
///
/// Runs serially; [`linear_with`] is the multicore entry point.
///
/// # Errors
///
/// Returns an error on rank or dimension mismatches.
///
/// # Examples
///
/// ```
/// use adsim_tensor::{ops, Tensor};
///
/// let x = Tensor::from_vec([1, 3], vec![1.0, 2.0, 3.0])?;
/// let w = Tensor::from_vec([2, 3], vec![1.0, 0.0, 0.0, 0.0, 0.0, 1.0])?;
/// let y = ops::linear(&x, &w, None)?;
/// assert_eq!(y.as_slice(), &[1.0, 3.0]);
/// # Ok::<(), adsim_tensor::TensorError>(())
/// ```
pub fn linear(input: &Tensor, weight: &Tensor, bias: Option<&Tensor>) -> Result<Tensor> {
    linear_with(&Runtime::serial(), input, weight, bias)
}

/// [`linear`] on a worker pool with the host's detected SIMD backend.
/// Equivalent to [`linear_isa`] with [`simd::active`].
///
/// # Errors
///
/// Same conditions as [`linear`].
pub fn linear_with(
    rt: &Runtime,
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
) -> Result<Tensor> {
    linear_isa(rt, input, weight, bias, simd::active())
}

/// [`linear`] on a worker pool and an explicit SIMD backend. Large
/// batches partition across batch rows; the inference-common
/// `batch = 1` case partitions across contiguous spans of output
/// features, so the GOTURN-style regression head still uses every
/// core. Each output is one [`simd::dot`] over the input row and a
/// weight row (scalar backend: strictly sequential accumulation).
///
/// # Errors
///
/// Same conditions as [`linear`].
pub fn linear_isa(
    rt: &Runtime,
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    isa: Isa,
) -> Result<Tensor> {
    if input.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "linear",
            expected: 2,
            actual: input.shape().rank(),
        });
    }
    if weight.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "linear",
            expected: 2,
            actual: weight.shape().rank(),
        });
    }
    let (batch, in_f) = (input.shape().dim(0), input.shape().dim(1));
    let (out_f, w_in) = (weight.shape().dim(0), weight.shape().dim(1));
    if in_f != w_in {
        return Err(TensorError::ShapeMismatch {
            op: "linear",
            lhs: input.shape().clone(),
            rhs: weight.shape().clone(),
        });
    }
    if let Some(b) = bias {
        if b.shape().rank() != 1 || b.shape().dim(0) != out_f {
            return Err(TensorError::InvalidParameter {
                op: "linear",
                reason: format!(
                    "bias shape {} does not match {out_f} output features",
                    b.shape()
                ),
            });
        }
    }
    let _sp = adsim_trace::span("tensor.linear").with_cost(
        2 * (batch * out_f * in_f) as u64,
        4 * (batch * in_f + out_f * in_f + batch * out_f) as u64,
    );
    let mut out = Tensor::zeros([batch, out_f]);
    let rt = rt.for_work(2 * batch * out_f * in_f);
    let xv = input.as_slice();
    let wv = weight.as_slice();
    let bv = bias.map(Tensor::as_slice);
    let ov = out.as_mut_slice();
    let dot_row = |bi: usize, of0: usize, orow: &mut [f32]| {
        let xrow = &xv[bi * in_f..(bi + 1) * in_f];
        for (o, of) in orow.iter_mut().zip(of0..) {
            let wrow = &wv[of * in_f..(of + 1) * in_f];
            let acc = simd::dot(isa, xrow, wrow);
            *o = acc + bv.map_or(0.0, |b| b[of]);
        }
    };
    if batch >= rt.threads() || batch == 0 || out_f == 0 {
        // One task per batch row.
        rt.par_chunks_mut(ov, out_f.max(1), |bi, orow| dot_row(bi, 0, orow));
    } else {
        // Few batch rows: split each row's output features instead.
        let span = out_f.div_ceil(4 * rt.threads()).max(1);
        for bi in 0..batch {
            let orow = &mut ov[bi * out_f..(bi + 1) * out_f];
            rt.par_chunks_mut(orow, span, |ci, ochunk| dot_row(bi, ci * span, ochunk));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let id = Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        assert_eq!(matmul(&a, &id).unwrap(), a);
        assert_eq!(matmul(&id, &a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Tensor::from_vec([3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([2, 3]);
        assert!(matmul(&a, &b).is_err());
        let v = Tensor::zeros([3]);
        assert!(matmul(&v, &b).is_err());
    }

    #[test]
    fn linear_matches_matmul_with_transpose() {
        let x = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let w = Tensor::from_vec([2, 3], vec![0.5, -1.0, 2.0, 1.0, 1.0, 1.0]).unwrap();
        let y = linear(&x, &w, None).unwrap();
        // Manual transpose of w for comparison via matmul. The two
        // paths use different microkernels (dot vs GEMM), which may
        // round differently under FMA backends — compare to tolerance.
        let wt = Tensor::from_vec([3, 2], vec![0.5, 1.0, -1.0, 1.0, 2.0, 1.0]).unwrap();
        let expect = matmul(&x, &wt).unwrap();
        for (a, b) in y.iter().zip(expect.iter()) {
            assert!((a - b).abs() <= 1e-5 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn linear_applies_bias() {
        let x = Tensor::zeros([1, 4]);
        let w = Tensor::zeros([2, 4]);
        let b = Tensor::from_vec([2], vec![3.0, -3.0]).unwrap();
        let y = linear(&x, &w, Some(&b)).unwrap();
        assert_eq!(y.as_slice(), &[3.0, -3.0]);
    }

    #[test]
    fn linear_rejects_mismatched_bias() {
        let x = Tensor::zeros([1, 4]);
        let w = Tensor::zeros([2, 4]);
        let b = Tensor::zeros([3]);
        assert!(linear(&x, &w, Some(&b)).is_err());
    }

    #[test]
    fn parallel_matmul_matches_serial() {
        // Non-multiple-of-MR row count exercises the remainder kernel.
        let a = Tensor::from_vec(
            [7, 9],
            (0..63).map(|i| (i as f32 * 0.37).sin()).collect(),
        )
        .unwrap();
        let b = Tensor::from_vec(
            [9, 5],
            (0..45).map(|i| (i as f32 * 0.61).cos()).collect(),
        )
        .unwrap();
        let serial = matmul(&a, &b).unwrap();
        for threads in [2, 3, 8] {
            let par = matmul_with(&Runtime::new(threads), &a, &b).unwrap();
            for (x, y) in par.iter().zip(serial.iter()) {
                assert!((x - y).abs() < 1e-5, "threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_linear_matches_serial_for_single_batch() {
        let x = Tensor::from_vec([1, 33], (0..33).map(|i| i as f32 * 0.1).collect()).unwrap();
        let w = Tensor::from_vec(
            [17, 33],
            (0..17 * 33).map(|i| ((i % 13) as f32 - 6.0) * 0.05).collect(),
        )
        .unwrap();
        let b = Tensor::from_vec([17], (0..17).map(|i| i as f32).collect()).unwrap();
        let serial = linear(&x, &w, Some(&b)).unwrap();
        let par = linear_with(&Runtime::new(4), &x, &w, Some(&b)).unwrap();
        for (p, s) in par.iter().zip(serial.iter()) {
            assert!((p - s).abs() < 1e-5);
        }
    }
}
