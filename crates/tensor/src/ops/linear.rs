use std::cell::RefCell;

use adsim_runtime::Runtime;

use crate::simd::{self, Isa};
use crate::{Result, Tensor, TensorError};

/// A-rows per register block of the matmul microkernel: four output
/// rows share every loaded element of a B row.
const MR: usize = 4;
/// k-panel extent: one panel of B rows (`KC × n` values) is streamed
/// per output block while it is still cache-resident.
const KC: usize = 256;
/// Target byte size of one single-thread B column panel (`KC`-rows ×
/// `NC`-columns): comfortably inside a per-core L2 so the panel stays
/// resident while *every* output-row block consumes it.
const COL_PANEL_BYTES: usize = 768 * 1024;

/// Column-panel width for a `[k, n]` B operand with `elem`-byte
/// elements: the widest multiple of 16 columns (so vector tiles align
/// exactly as in an unpanelled run) whose `k × nc` panel fits the
/// [`COL_PANEL_BYTES`] budget, floored at 64.
fn col_panel(k: usize, elem: usize) -> usize {
    (COL_PANEL_BYTES / (k * elem).max(1) / 16).max(4) * 16
}

/// Matrix multiply of a `[m, k]` tensor by a `[k, n]` tensor.
///
/// This is the compute core of both the fully-connected layers and the
/// im2col convolution lowering — the operation the paper notes consumes
/// most machine-learning execution time and parallelizes onto GPUs (§6).
/// Runs serially; [`matmul_with`] is the multicore entry point.
///
/// # Errors
///
/// Returns an error if either operand is not rank 2 or the inner
/// dimensions disagree.
///
/// # Examples
///
/// ```
/// use adsim_tensor::{ops, Tensor};
///
/// let a = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// let b = Tensor::from_vec([2, 1], vec![1.0, 1.0])?;
/// assert_eq!(ops::matmul(&a, &b)?.as_slice(), &[3.0, 7.0]);
/// # Ok::<(), adsim_tensor::TensorError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    matmul_with(&Runtime::serial(), a, b)
}

/// [`matmul`] on a worker pool with the host's detected SIMD backend.
/// Equivalent to [`matmul_isa`] with [`simd::active`].
///
/// # Errors
///
/// Same conditions as [`matmul`].
pub fn matmul_with(rt: &Runtime, a: &Tensor, b: &Tensor) -> Result<Tensor> {
    matmul_isa(rt, a, b, simd::active())
}

/// [`matmul`] on a worker pool and an explicit SIMD backend: output
/// row blocks are partitioned across the runtime's workers, and each
/// block runs a register-blocked `MR = 4` lane microkernel over
/// `KC`-row panels of B. Per output element the k-accumulation order
/// is identical on every thread count, so results do not depend on the
/// runtime; vector backends contract multiply-add pairs into FMAs, so
/// results agree with [`Isa::SCALAR`] to ≤1e-5 relative error.
///
/// # Errors
///
/// Same conditions as [`matmul`].
pub fn matmul_isa(rt: &Runtime, a: &Tensor, b: &Tensor, isa: Isa) -> Result<Tensor> {
    if a.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "matmul",
            expected: 2,
            actual: a.shape().rank(),
        });
    }
    if b.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "matmul",
            expected: 2,
            actual: b.shape().rank(),
        });
    }
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let (k2, n) = (b.shape().dim(0), b.shape().dim(1));
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
        });
    }
    let _sp = adsim_trace::span("tensor.matmul")
        .with_cost(2 * (m * n * k) as u64, 4 * (m * k + k * n + m * n) as u64);
    let mut out = Tensor::zeros([m, n]);
    matmul_into(
        rt.for_work(2 * m * n * k),
        isa,
        a.as_slice(),
        b.as_slice(),
        out.as_mut_slice(),
        m,
        k,
        n,
    );
    Ok(out)
}

/// The raw-slice matmul core shared with the conv2d lowering:
/// `ov[m × n] += av[m × k] · bv[k × n]` (callers pass zeroed output).
/// Row blocks of `MR` rows go to the pool's workers; within a block
/// the `simd` lane microkernels accumulate one `KC`-row panel of B at
/// a time while it is cache-resident.
#[allow(clippy::too_many_arguments)]
pub(crate) fn matmul_into(
    rt: Runtime,
    isa: Isa,
    av: &[f32],
    bv: &[f32],
    ov: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(av.len(), m * k);
    debug_assert_eq!(bv.len(), k * n);
    debug_assert_eq!(ov.len(), m * n);
    if n == 0 {
        return;
    }
    let nc = col_panel(k, 4);
    if rt.threads() == 1 && n > nc {
        // Single-thread wide GEMM — the batched-inference shape, where
        // B is an appended-columns im2col matrix much larger than L2.
        // Walk column panels outermost so one `KC × NC` slab of B is
        // fetched once and stays cache-resident while *every* row
        // block consumes it, instead of re-streaming all of B per row
        // block. Per output element the k-panel order and lane
        // position are unchanged (`NC` is a multiple of the 16-column
        // tile), so results are bit-identical to the unpanelled
        // schedule.
        for c0 in (0..n).step_by(nc) {
            let c1 = (c0 + nc).min(n);
            for k0 in (0..k).step_by(KC) {
                let k1 = (k0 + KC).min(k);
                let mut i0 = 0;
                while i0 + MR <= m {
                    let (o0, rest) = ov[i0 * n..].split_at_mut(n);
                    let (o1, rest) = rest.split_at_mut(n);
                    let (o2, rest) = rest.split_at_mut(n);
                    simd::gemm4(
                        isa,
                        &av[i0 * k..],
                        k,
                        k0,
                        k1,
                        &bv[c0..],
                        n,
                        &mut o0[c0..c1],
                        &mut o1[c0..c1],
                        &mut o2[c0..c1],
                        &mut rest[c0..c1],
                    );
                    i0 += MR;
                }
                for r in i0..m {
                    let orow = &mut ov[r * n + c0..r * n + c1];
                    simd::gemm1(isa, &av[r * k..], k0, k1, &bv[c0..], n, orow);
                }
            }
        }
        return;
    }
    rt.par_chunks_mut(ov, MR * n, |blk, orows| {
        let i0 = blk * MR;
        let rows = orows.len() / n;
        // Panel over k so the streamed slab of B stays cache-resident
        // while all `rows` output rows accumulate it.
        for k0 in (0..k).step_by(KC) {
            let k1 = (k0 + KC).min(k);
            if rows == MR {
                let (o0, rest) = orows.split_at_mut(n);
                let (o1, rest) = rest.split_at_mut(n);
                let (o2, o3) = rest.split_at_mut(n);
                simd::gemm4(
                    isa,
                    &av[i0 * k..],
                    k,
                    k0,
                    k1,
                    bv,
                    n,
                    o0,
                    o1,
                    o2,
                    o3,
                );
            } else {
                for (r, orow) in orows.chunks_mut(n).enumerate() {
                    simd::gemm1(isa, &av[(i0 + r) * k..], k0, k1, bv, n, orow);
                }
            }
        }
    });
}

/// Upper bound on the shared dimension of [`matmul_i8_into`]: with
/// |a|,|b| ≤ 128 every per-element product is ≤ 2¹⁴, so any `k` up to
/// `i32::MAX / 2¹⁴` accumulates without wrapping. Real networks sit
/// orders of magnitude below this (YOLO's largest im2col `k` is 9·512).
pub const MATMUL_I8_MAX_K: usize = (i32::MAX / (128 * 128)) as usize;

/// Element length of the pair-packed form of a `[k, n]` int8 B
/// operand: `⌈k/2⌉` pair rows of `2·n` i16s (an odd trailing row is
/// zero-padded to a full pair).
pub fn packed_i8_len(k: usize, n: usize) -> usize {
    k.div_ceil(2) * 2 * n
}

/// Pack a row-major `[k, n]` int8 matrix into the widened
/// pair-interleaved layout the i8 lane kernels consume: source rows
/// `2p` and `2p+1` merge into one `2·n`-element i16 pair row
/// `[b₂ₚ[0], b₂ₚ₊₁[0], b₂ₚ[1], b₂ₚ₊₁[1], …]`; when `k` is odd the
/// last pair row carries zeros in its odd elements. This is exactly
/// the lane order `vpmaddwd`/`vmlal` consume, and the i8→i16 widening
/// happens *here*, once per operand — the kernels' inner loop is then
/// a single full-width vector load per eight columns with no shuffle
/// or sign-extension at all, at half the memory traffic of the f32
/// path. Because integer accumulation is exact, the packed and
/// unpacked operand orders produce bit-identical results by
/// construction.
///
/// `out` is cleared and resized to [`packed_i8_len`]; quantized layer
/// caches pack their weights once and reuse the buffer across every
/// forward pass, which is why this is exposed rather than kept inside
/// [`matmul_i8_into`].
///
/// # Panics
///
/// Panics if `bv.len() != k * n`.
pub fn pack_i8_b(bv: &[i8], k: usize, n: usize, out: &mut Vec<i16>) {
    assert_eq!(bv.len(), k * n, "pack_i8_b: B length");
    out.clear();
    out.resize(packed_i8_len(k, n), 0);
    for p in 0..k / 2 {
        let (r0, r1) = bv[2 * p * n..].split_at(n);
        for (d, (&x0, &x1)) in out[p * 2 * n..(p + 1) * 2 * n]
            .chunks_exact_mut(2)
            .zip(r0.iter().zip(&r1[..n]))
        {
            d[0] = x0 as i16;
            d[1] = x1 as i16;
        }
    }
    if k % 2 == 1 {
        for (d, &x0) in out[(k / 2) * 2 * n..]
            .chunks_exact_mut(2)
            .zip(&bv[(k - 1) * n..])
        {
            d[0] = x0 as i16;
        }
    }
}

thread_local! {
    /// Reused pair-packing buffer for [`matmul_i8_into`] — activations
    /// repack every call and fresh multi-hundred-KB allocations would
    /// hit the allocator's mmap path per GEMM.
    static PACK_SCRATCH: RefCell<Vec<i16>> = const { RefCell::new(Vec::new()) };
    /// Reused A-widening buffer for [`matmul_i8_packed_into`].
    static A_SCRATCH: RefCell<Vec<i16>> = const { RefCell::new(Vec::new()) };
}

/// Raw-slice **int8** matmul: `ov[m × n] += av[m × k] · bv[k × n]`
/// with i8×i8→i32 widening arithmetic (callers pass zeroed output).
/// Pair-packs `bv` into thread-local scratch and runs
/// [`matmul_i8_packed_into`]; callers that reuse one B across many
/// GEMMs (cached quantized weights) should pack once with
/// [`pack_i8_b`] and call the packed entry point directly.
///
/// # Panics
///
/// Panics if the slice lengths disagree with `m`/`k`/`n` or if
/// `k > MATMUL_I8_MAX_K` (the no-overflow bound).
#[allow(clippy::too_many_arguments)]
pub fn matmul_i8_into(
    rt: &Runtime,
    isa: Isa,
    av: &[i8],
    bv: &[i8],
    ov: &mut [i32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(bv.len(), k * n, "matmul_i8: B length");
    PACK_SCRATCH.with_borrow_mut(|buf| {
        pack_i8_b(bv, k, n, buf);
        matmul_i8_packed_into(rt, isa, av, buf, ov, m, k, n);
    });
}

/// [`matmul_i8_into`] over a B operand already pair-packed by
/// [`pack_i8_b`].
///
/// Same blocking as the f32 path (`MR = 4` row blocks over the pool's
/// workers, `KC`-row cache panels of B, serial column panels for wide
/// single-thread GEMMs), but exact: integer accumulation has no
/// rounding, so the result is bit-identical across SIMD backends,
/// thread counts, column layouts and packing by construction — the
/// property the quantized batched-inference path leans on. This is
/// the fixed-point GEMM of the paper's ASIC exploration (§4.2.3) as a
/// CPU lane kernel.
///
/// # Panics
///
/// Panics if the slice lengths disagree with `m`/`k`/`n`
/// (`bp.len()` must equal [`packed_i8_len`]) or if
/// `k > MATMUL_I8_MAX_K` (the no-overflow bound).
#[allow(clippy::too_many_arguments)]
pub fn matmul_i8_packed_into(
    rt: &Runtime,
    isa: Isa,
    av: &[i8],
    bp: &[i16],
    ov: &mut [i32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(av.len(), m * k, "matmul_i8: A length");
    assert_eq!(bp.len(), packed_i8_len(k, n), "matmul_i8: packed B length");
    assert_eq!(ov.len(), m * n, "matmul_i8: output length");
    assert!(
        k <= MATMUL_I8_MAX_K,
        "matmul_i8: k = {k} exceeds the i32 accumulation bound {MATMUL_I8_MAX_K}"
    );
    if n == 0 {
        return;
    }
    let _sp = adsim_trace::span("tensor.matmul_i8")
        .with_cost(2 * (m * n * k) as u64, (m * k + k * n + 4 * m * n) as u64);
    let rt = rt.for_work(2 * m * n * k);
    A_SCRATCH.with_borrow_mut(|pa_buf| {
        // Widen A to i16 rows with an even padded stride, so the
        // kernels broadcast each `(a_k, a_{k+1})` coefficient pair as
        // one 32-bit load instead of assembling it from i8 scalars —
        // the assembly work dominated the frontend-bound inner loop.
        // O(m·k), negligible against the 2·m·n·k multiply work.
        let kp = k.div_ceil(2) * 2;
        pa_buf.clear();
        pa_buf.resize(m * kp, 0);
        for (row, arow) in pa_buf.chunks_exact_mut(kp).zip(av.chunks_exact(k)) {
            for (d, &x) in row.iter_mut().zip(arow) {
                *d = x as i16;
            }
        }
        let pa = &pa_buf[..];
        // A column panel spans `⌈k/2⌉` pair rows × `2·nc` i16s ≈
        // `2·k·nc` bytes — half the f32 panel footprint.
        let nc = col_panel(k, 2);
        if rt.threads() == 1 && n > nc {
            // Same column-panel schedule as the f32 path (see
            // `matmul_into`); for int8 the result is exact, so any
            // schedule is bitwise-equivalent by construction. Column
            // `c0` starts `2·c0` elements into each pair row, hence
            // the doubled base offset.
            for c0 in (0..n).step_by(nc) {
                let c1 = (c0 + nc).min(n);
                for k0 in (0..k).step_by(KC) {
                    let k1 = (k0 + KC).min(k);
                    let mut i0 = 0;
                    while i0 + MR <= m {
                        let (o0, rest) = ov[i0 * n..].split_at_mut(n);
                        let (o1, rest) = rest.split_at_mut(n);
                        let (o2, rest) = rest.split_at_mut(n);
                        simd::gemm4_i8(
                            isa,
                            &pa[i0 * kp..],
                            kp,
                            k0,
                            k1,
                            &bp[2 * c0..],
                            n,
                            &mut o0[c0..c1],
                            &mut o1[c0..c1],
                            &mut o2[c0..c1],
                            &mut rest[c0..c1],
                        );
                        i0 += MR;
                    }
                    for r in i0..m {
                        let orow = &mut ov[r * n + c0..r * n + c1];
                        simd::gemm1_i8(isa, &pa[r * kp..], k0, k1, &bp[2 * c0..], n, orow);
                    }
                }
            }
            return;
        }
        rt.par_chunks_mut(ov, MR * n, |blk, orows| {
            let i0 = blk * MR;
            let rows = orows.len() / n;
            for k0 in (0..k).step_by(KC) {
                let k1 = (k0 + KC).min(k);
                if rows == MR {
                    let (o0, rest) = orows.split_at_mut(n);
                    let (o1, rest) = rest.split_at_mut(n);
                    let (o2, o3) = rest.split_at_mut(n);
                    simd::gemm4_i8(
                        isa,
                        &pa[i0 * kp..],
                        kp,
                        k0,
                        k1,
                        bp,
                        n,
                        o0,
                        o1,
                        o2,
                        o3,
                    );
                } else {
                    for (r, orow) in orows.chunks_mut(n).enumerate() {
                        simd::gemm1_i8(isa, &pa[(i0 + r) * kp..], k0, k1, bp, n, orow);
                    }
                }
            }
        });
    });
}

/// Fully-connected layer: `input [batch, features] × weightᵀ + bias`.
///
/// * `input`: `[batch, in_features]`
/// * `weight`: `[out_features, in_features]` (row per output neuron)
/// * `bias`: optional `[out_features]`
///
/// Runs serially; [`linear_with`] is the multicore entry point.
///
/// # Errors
///
/// Returns an error on rank or dimension mismatches.
///
/// # Examples
///
/// ```
/// use adsim_tensor::{ops, Tensor};
///
/// let x = Tensor::from_vec([1, 3], vec![1.0, 2.0, 3.0])?;
/// let w = Tensor::from_vec([2, 3], vec![1.0, 0.0, 0.0, 0.0, 0.0, 1.0])?;
/// let y = ops::linear(&x, &w, None)?;
/// assert_eq!(y.as_slice(), &[1.0, 3.0]);
/// # Ok::<(), adsim_tensor::TensorError>(())
/// ```
pub fn linear(input: &Tensor, weight: &Tensor, bias: Option<&Tensor>) -> Result<Tensor> {
    linear_with(&Runtime::serial(), input, weight, bias)
}

/// [`linear`] on a worker pool with the host's detected SIMD backend.
/// Equivalent to [`linear_isa`] with [`simd::active`].
///
/// # Errors
///
/// Same conditions as [`linear`].
pub fn linear_with(
    rt: &Runtime,
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
) -> Result<Tensor> {
    linear_isa(rt, input, weight, bias, simd::active())
}

/// [`linear`] on a worker pool and an explicit SIMD backend. Large
/// batches partition across batch rows; the inference-common
/// `batch = 1` case partitions across contiguous spans of output
/// features, so the GOTURN-style regression head still uses every
/// core. Each output is one [`simd::dot`] over the input row and a
/// weight row (scalar backend: strictly sequential accumulation).
///
/// # Errors
///
/// Same conditions as [`linear`].
pub fn linear_isa(
    rt: &Runtime,
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    isa: Isa,
) -> Result<Tensor> {
    if input.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "linear",
            expected: 2,
            actual: input.shape().rank(),
        });
    }
    if weight.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "linear",
            expected: 2,
            actual: weight.shape().rank(),
        });
    }
    let (batch, in_f) = (input.shape().dim(0), input.shape().dim(1));
    let (out_f, w_in) = (weight.shape().dim(0), weight.shape().dim(1));
    if in_f != w_in {
        return Err(TensorError::ShapeMismatch {
            op: "linear",
            lhs: input.shape().clone(),
            rhs: weight.shape().clone(),
        });
    }
    if let Some(b) = bias {
        if b.shape().rank() != 1 || b.shape().dim(0) != out_f {
            return Err(TensorError::InvalidParameter {
                op: "linear",
                reason: format!(
                    "bias shape {} does not match {out_f} output features",
                    b.shape()
                ),
            });
        }
    }
    let _sp = adsim_trace::span("tensor.linear").with_cost(
        2 * (batch * out_f * in_f) as u64,
        4 * (batch * in_f + out_f * in_f + batch * out_f) as u64,
    );
    let mut out = Tensor::zeros([batch, out_f]);
    let rt = rt.for_work(2 * batch * out_f * in_f);
    let xv = input.as_slice();
    let wv = weight.as_slice();
    let bv = bias.map(Tensor::as_slice);
    let ov = out.as_mut_slice();
    let dot_row = |bi: usize, of0: usize, orow: &mut [f32]| {
        let xrow = &xv[bi * in_f..(bi + 1) * in_f];
        for (o, of) in orow.iter_mut().zip(of0..) {
            let wrow = &wv[of * in_f..(of + 1) * in_f];
            let acc = simd::dot(isa, xrow, wrow);
            *o = acc + bv.map_or(0.0, |b| b[of]);
        }
    };
    if batch >= rt.threads() || batch == 0 || out_f == 0 {
        // One task per batch row.
        rt.par_chunks_mut(ov, out_f.max(1), |bi, orow| dot_row(bi, 0, orow));
    } else {
        // Few batch rows: split each row's output features instead.
        let span = out_f.div_ceil(4 * rt.threads()).max(1);
        for bi in 0..batch {
            let orow = &mut ov[bi * out_f..(bi + 1) * out_f];
            rt.par_chunks_mut(orow, span, |ci, ochunk| dot_row(bi, ci * span, ochunk));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let id = Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        assert_eq!(matmul(&a, &id).unwrap(), a);
        assert_eq!(matmul(&id, &a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Tensor::from_vec([3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([2, 3]);
        assert!(matmul(&a, &b).is_err());
        let v = Tensor::zeros([3]);
        assert!(matmul(&v, &b).is_err());
    }

    #[test]
    fn linear_matches_matmul_with_transpose() {
        let x = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let w = Tensor::from_vec([2, 3], vec![0.5, -1.0, 2.0, 1.0, 1.0, 1.0]).unwrap();
        let y = linear(&x, &w, None).unwrap();
        // Manual transpose of w for comparison via matmul. The two
        // paths use different microkernels (dot vs GEMM), which may
        // round differently under FMA backends — compare to tolerance.
        let wt = Tensor::from_vec([3, 2], vec![0.5, 1.0, -1.0, 1.0, 2.0, 1.0]).unwrap();
        let expect = matmul(&x, &wt).unwrap();
        for (a, b) in y.iter().zip(expect.iter()) {
            assert!((a - b).abs() <= 1e-5 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn linear_applies_bias() {
        let x = Tensor::zeros([1, 4]);
        let w = Tensor::zeros([2, 4]);
        let b = Tensor::from_vec([2], vec![3.0, -3.0]).unwrap();
        let y = linear(&x, &w, Some(&b)).unwrap();
        assert_eq!(y.as_slice(), &[3.0, -3.0]);
    }

    #[test]
    fn linear_rejects_mismatched_bias() {
        let x = Tensor::zeros([1, 4]);
        let w = Tensor::zeros([2, 4]);
        let b = Tensor::zeros([3]);
        assert!(linear(&x, &w, Some(&b)).is_err());
    }

    #[test]
    fn parallel_matmul_matches_serial() {
        // Non-multiple-of-MR row count exercises the remainder kernel.
        let a = Tensor::from_vec(
            [7, 9],
            (0..63).map(|i| (i as f32 * 0.37).sin()).collect(),
        )
        .unwrap();
        let b = Tensor::from_vec(
            [9, 5],
            (0..45).map(|i| (i as f32 * 0.61).cos()).collect(),
        )
        .unwrap();
        let serial = matmul(&a, &b).unwrap();
        for threads in [2, 3, 8] {
            let par = matmul_with(&Runtime::new(threads), &a, &b).unwrap();
            for (x, y) in par.iter().zip(serial.iter()) {
                assert!((x - y).abs() < 1e-5, "threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_linear_matches_serial_for_single_batch() {
        let x = Tensor::from_vec([1, 33], (0..33).map(|i| i as f32 * 0.1).collect()).unwrap();
        let w = Tensor::from_vec(
            [17, 33],
            (0..17 * 33).map(|i| ((i % 13) as f32 - 6.0) * 0.05).collect(),
        )
        .unwrap();
        let b = Tensor::from_vec([17], (0..17).map(|i| i as f32).collect()).unwrap();
        let serial = linear(&x, &w, Some(&b)).unwrap();
        let par = linear_with(&Runtime::new(4), &x, &w, Some(&b)).unwrap();
        for (p, s) in par.iter().zip(serial.iter()) {
            assert!((p - s).abs() < 1e-5);
        }
    }
}
