// Property-based fuzz suite: compiled only with `--features fuzz`,
// which additionally requires restoring the `proptest` dev-dependency
// (removed so offline builds never touch the registry; see DESIGN.md).
#![cfg(feature = "fuzz")]
//! Property-based tests of kernel algebraic identities.

use adsim_tensor::{ops, Tensor};
use proptest::prelude::*;

fn vec_f32(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec((-1000i32..1000).prop_map(|v| v as f32 / 100.0), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn linear_equals_matmul_against_transpose(
        x in vec_f32(2 * 5),
        w in vec_f32(3 * 5),
    ) {
        let input = Tensor::from_vec([2, 5], x).unwrap();
        let weight = Tensor::from_vec([3, 5], w.clone()).unwrap();
        let lin = ops::linear(&input, &weight, None).unwrap();
        // Build the transpose manually.
        let mut wt = vec![0.0; 15];
        for r in 0..3 {
            for c in 0..5 {
                wt[c * 3 + r] = w[r * 5 + c];
            }
        }
        let mm = ops::matmul(&input, &Tensor::from_vec([5, 3], wt).unwrap()).unwrap();
        for (a, b) in lin.iter().zip(mm.iter()) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in vec_f32(6), b in vec_f32(6), c in vec_f32(6),
    ) {
        let a = Tensor::from_vec([2, 3], a).unwrap();
        let b = Tensor::from_vec([3, 2], b).unwrap();
        let c = Tensor::from_vec([3, 2], c).unwrap();
        let lhs = ops::matmul(&a, &b.add(&c).unwrap()).unwrap();
        let rhs = ops::matmul(&a, &b).unwrap().add(&ops::matmul(&a, &c).unwrap()).unwrap();
        for (x, y) in lhs.iter().zip(rhs.iter()) {
            prop_assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    #[test]
    fn relu_is_idempotent(v in vec_f32(16)) {
        let t = Tensor::from_vec([16], v).unwrap();
        let once = ops::relu(&t);
        let twice = ops::relu(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn avg_pool_preserves_mean_on_exact_tiling(v in vec_f32(16)) {
        let t = Tensor::from_vec([1, 1, 4, 4], v).unwrap();
        let p = ops::avg_pool2d(&t, 2, 2).unwrap();
        let mean_in = t.sum() / 16.0;
        let mean_out = p.sum() / 4.0;
        prop_assert!((mean_in - mean_out).abs() < 1e-4);
    }

    #[test]
    fn batch_norm_with_identity_params_is_noop(v in vec_f32(12)) {
        let t = Tensor::from_vec([1, 3, 2, 2], v).unwrap();
        let gamma = Tensor::filled([3], 1.0);
        let beta = Tensor::zeros([3]);
        let mean = Tensor::zeros([3]);
        let var = Tensor::filled([3], 1.0);
        let out = ops::batch_norm(&t, &gamma, &beta, &mean, &var, 0.0).unwrap();
        for (a, b) in t.iter().zip(out.iter()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn conv_is_linear_in_the_input(
        v1 in vec_f32(25), v2 in vec_f32(25), w in vec_f32(9),
    ) {
        let a = Tensor::from_vec([1, 1, 5, 5], v1).unwrap();
        let b = Tensor::from_vec([1, 1, 5, 5], v2).unwrap();
        let k = Tensor::from_vec([1, 1, 3, 3], w).unwrap();
        let sum_then_conv = ops::conv2d(&a.add(&b).unwrap(), &k, None, 1, 1).unwrap();
        let conv_then_sum = ops::conv2d(&a, &k, None, 1, 1)
            .unwrap()
            .add(&ops::conv2d(&b, &k, None, 1, 1).unwrap())
            .unwrap();
        for (x, y) in sum_then_conv.iter().zip(conv_then_sum.iter()) {
            prop_assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }
}
