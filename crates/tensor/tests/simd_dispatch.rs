//! SIMD-vs-scalar parity and dispatch coverage.
//!
//! Every kernel is exercised on **both** the detected backend
//! (`simd::active()`) and the portable scalar backend (`Isa::SCALAR`,
//! invoked directly through the `_isa` entry points — not via the
//! `force-scalar` feature) in one run, so CI on any host covers both
//! paths. The contract under test is the crate's numerics policy:
//!
//! * FMA-free kernels (relu, leaky-relu, pooling, batch-norm, conv
//!   bias) are **bit-identical** across backends;
//! * the FMA-contracted GEMM kernels (matmul, conv2d, linear) agree
//!   with scalar to ≤1e-5 **relative** error;
//! * for a fixed backend, every kernel is bit-identical across
//!   1/2/8-thread runtimes.

use adsim_runtime::Runtime;
use adsim_tensor::simd::{self, Isa};
use adsim_tensor::{ops, Tensor};

const THREADS: [usize; 3] = [1, 2, 8];

/// Deterministic non-trivial fill: varied signs and magnitudes.
fn fill(shape: impl Into<adsim_tensor::Shape>) -> Tensor {
    let shape = shape.into();
    let n = shape.len();
    Tensor::from_vec(
        shape,
        (0..n)
            .map(|i| ((i * 2_654_435_761 % 1_000) as f32 / 500.0 - 1.0) * 0.7)
            .collect(),
    )
    .unwrap()
}

fn assert_rel_close(a: &Tensor, b: &Tensor, ctx: &str) {
    assert_eq!(a.shape(), b.shape(), "{ctx}: shapes differ");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert!(
            (x - y).abs() <= 1e-5 * y.abs().max(1.0),
            "{ctx}: element {i} differs: {x} vs {y}"
        );
    }
}

fn assert_bits_equal(a: &Tensor, b: &Tensor, ctx: &str) {
    assert_eq!(a.shape(), b.shape(), "{ctx}: shapes differ");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: element {i}: {x} vs {y}");
    }
}

#[test]
fn dispatch_reports_both_paths() {
    let active = simd::active();
    // With force-scalar the probe must be pinned to the fallback;
    // without it the probe may be either, but SCALAR is constructible
    // and callable everywhere.
    if cfg!(feature = "force-scalar") {
        assert!(active.is_scalar(), "force-scalar must pin the fallback");
    }
    assert!(Isa::SCALAR.is_scalar());
    assert_ne!(Isa::SCALAR.name(), "");
    assert_ne!(active.name(), "");
}

#[test]
fn matmul_simd_matches_scalar_within_fma_tolerance() {
    // Non-multiple-of-4 rows, non-multiple-of-16 columns, and a
    // k larger than one 256-row panel.
    for (m, k, n) in [(1, 1, 1), (4, 8, 16), (7, 300, 23), (33, 65, 40)] {
        let a = fill([m, k]);
        let b = fill([k, n]);
        let scalar = ops::matmul_isa(&Runtime::serial(), &a, &b, Isa::SCALAR).unwrap();
        for t in THREADS {
            let rt = Runtime::new(t);
            let vec = ops::matmul_isa(&rt, &a, &b, simd::active()).unwrap();
            assert_rel_close(&vec, &scalar, &format!("matmul {m}x{k}x{n} t={t}"));
            let sc = ops::matmul_isa(&rt, &a, &b, Isa::SCALAR).unwrap();
            assert_bits_equal(&sc, &scalar, &format!("scalar matmul {m}x{k}x{n} t={t}"));
        }
    }
}

#[test]
fn linear_simd_matches_scalar_within_fma_tolerance() {
    let x = fill([3, 70]);
    let w = fill([19, 70]);
    let bias = fill([19]);
    let scalar = ops::linear_isa(&Runtime::serial(), &x, &w, Some(&bias), Isa::SCALAR).unwrap();
    for t in THREADS {
        let rt = Runtime::new(t);
        let vec = ops::linear_isa(&rt, &x, &w, Some(&bias), simd::active()).unwrap();
        assert_rel_close(&vec, &scalar, &format!("linear t={t}"));
        let sc = ops::linear_isa(&rt, &x, &w, Some(&bias), Isa::SCALAR).unwrap();
        assert_bits_equal(&sc, &scalar, &format!("scalar linear t={t}"));
    }
}

#[test]
fn conv2d_simd_matches_scalar_within_fma_tolerance() {
    let input = fill([2, 3, 13, 17]);
    let weight = fill([5, 3, 3, 3]);
    let bias = fill([5]);
    for (stride, pad) in [(1, 1), (2, 0)] {
        let scalar = ops::conv2d_isa(
            &Runtime::serial(),
            &input,
            &weight,
            Some(&bias),
            stride,
            pad,
            Isa::SCALAR,
        )
        .unwrap();
        for t in THREADS {
            let rt = Runtime::new(t);
            let vec =
                ops::conv2d_isa(&rt, &input, &weight, Some(&bias), stride, pad, simd::active())
                    .unwrap();
            assert_rel_close(&vec, &scalar, &format!("conv s={stride} p={pad} t={t}"));
            let sc = ops::conv2d_isa(&rt, &input, &weight, Some(&bias), stride, pad, Isa::SCALAR)
                .unwrap();
            assert_bits_equal(&sc, &scalar, &format!("scalar conv s={stride} p={pad} t={t}"));
        }
    }
}

#[test]
fn activations_are_bit_identical_across_backends() {
    // Length not a multiple of 8 exercises the scalar tails.
    let t = fill([3, 7, 11]);
    let scalar_relu = ops::relu_isa(&Runtime::serial(), &t, Isa::SCALAR);
    let scalar_leaky = ops::leaky_relu_isa(&Runtime::serial(), &t, 0.1, Isa::SCALAR);
    for threads in THREADS {
        let rt = Runtime::new(threads);
        assert_bits_equal(
            &ops::relu_isa(&rt, &t, simd::active()),
            &scalar_relu,
            &format!("relu t={threads}"),
        );
        assert_bits_equal(
            &ops::leaky_relu_isa(&rt, &t, 0.1, simd::active()),
            &scalar_leaky,
            &format!("leaky_relu t={threads}"),
        );
    }
}

#[test]
fn pooling_is_bit_identical_across_backends() {
    let t = fill([2, 3, 19, 21]);
    for (window, stride) in [(2, 1), (3, 1), (2, 2), (3, 2)] {
        let max_s =
            ops::max_pool2d_isa(&Runtime::serial(), &t, window, stride, Isa::SCALAR).unwrap();
        let avg_s =
            ops::avg_pool2d_isa(&Runtime::serial(), &t, window, stride, Isa::SCALAR).unwrap();
        for threads in THREADS {
            let rt = Runtime::new(threads);
            assert_bits_equal(
                &ops::max_pool2d_isa(&rt, &t, window, stride, simd::active()).unwrap(),
                &max_s,
                &format!("max_pool w={window} s={stride} t={threads}"),
            );
            assert_bits_equal(
                &ops::avg_pool2d_isa(&rt, &t, window, stride, simd::active()).unwrap(),
                &avg_s,
                &format!("avg_pool w={window} s={stride} t={threads}"),
            );
        }
    }
}

#[test]
fn batch_norm_is_bit_identical_across_backends() {
    let x = fill([2, 5, 9, 13]);
    let gamma = fill([5]);
    let beta = fill([5]);
    let mean = fill([5]);
    let var = Tensor::from_vec([5], vec![0.5, 1.0, 2.0, 0.25, 4.0]).unwrap();
    let scalar = ops::batch_norm_isa(
        &Runtime::serial(),
        &x,
        &gamma,
        &beta,
        &mean,
        &var,
        1e-5,
        Isa::SCALAR,
    )
    .unwrap();
    // The _with entry must match the serial entry exactly too.
    let plain = ops::batch_norm(&x, &gamma, &beta, &mean, &var, 1e-5).unwrap();
    for threads in THREADS {
        let rt = Runtime::new(threads);
        let vec = ops::batch_norm_isa(&rt, &x, &gamma, &beta, &mean, &var, 1e-5, simd::active())
            .unwrap();
        assert_bits_equal(&vec, &scalar, &format!("batch_norm t={threads}"));
        assert_bits_equal(&vec, &plain, &format!("batch_norm vs plain t={threads}"));
    }
}

/// Deterministic int8 fill covering the full quantized range.
fn fill_i8(n: usize) -> Vec<i8> {
    (0..n)
        .map(|i| ((i * 2_654_435_761 % 255) as i32 - 127) as i8)
        .collect()
}

#[test]
fn matmul_i8_is_bit_identical_across_backends_and_threads() {
    // Integer accumulation is exact, so unlike the f32 GEMM the
    // contract here is bit-identity — across backends, thread counts
    // and tilings alike. Shapes cover the 16/8/scalar column tails,
    // odd k (the (a_k, 0) trailing pair), and k > one 256-row panel.
    for (m, k, n) in [(1, 1, 1), (4, 8, 16), (7, 301, 23), (33, 65, 40)] {
        let a = fill_i8(m * k);
        let b = fill_i8(k * n);
        let mut scalar = vec![0i32; m * n];
        ops::matmul_i8_into(&Runtime::serial(), Isa::SCALAR, &a, &b, &mut scalar, m, k, n);
        for t in THREADS {
            let rt = Runtime::new(t);
            let mut vec_out = vec![0i32; m * n];
            ops::matmul_i8_into(&rt, simd::active(), &a, &b, &mut vec_out, m, k, n);
            assert_eq!(vec_out, scalar, "matmul_i8 {m}x{k}x{n} t={t}");
            let mut sc = vec![0i32; m * n];
            ops::matmul_i8_into(&rt, Isa::SCALAR, &a, &b, &mut sc, m, k, n);
            assert_eq!(sc, scalar, "scalar matmul_i8 {m}x{k}x{n} t={t}");
        }
    }
}

#[test]
fn conv2d_batch_of_n_matches_n_single_image_convs_bitwise() {
    // The batched conv appends each image's im2col columns to one GEMM;
    // with the mul_add_s tail policy an output element's value depends
    // only on its k-order, never its column position, so batch-N must
    // be bit-identical to N separate batch-1 calls — on every backend
    // and thread count.
    let n_imgs = 3;
    let input = fill([n_imgs, 3, 13, 17]);
    let weight = fill([5, 3, 3, 3]);
    let bias = fill([5]);
    let per_image_len = 3 * 13 * 17;
    for isa in [simd::active(), Isa::SCALAR] {
        for (stride, pad) in [(1, 1), (2, 0)] {
            for t in THREADS {
                let rt = Runtime::new(t);
                let batched =
                    ops::conv2d_isa(&rt, &input, &weight, Some(&bias), stride, pad, isa).unwrap();
                let (_, c_out, h_out, w_out) = batched.shape().as_nchw().unwrap();
                let out_len = c_out * h_out * w_out;
                for img in 0..n_imgs {
                    let single = Tensor::from_vec(
                        [1, 3, 13, 17],
                        input.as_slice()[img * per_image_len..][..per_image_len].to_vec(),
                    )
                    .unwrap();
                    let one =
                        ops::conv2d_isa(&rt, &single, &weight, Some(&bias), stride, pad, isa)
                            .unwrap();
                    let got = &batched.as_slice()[img * out_len..][..out_len];
                    for (i, (x, y)) in got.iter().zip(one.iter()).enumerate() {
                        assert_eq!(
                            x.to_bits(),
                            y.to_bits(),
                            "conv batch-parity img={img} elem={i} s={stride} p={pad} t={t} \
                             isa={}: {x} vs {y}",
                            isa.name()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn im2col_batched_stacks_per_image_columns() {
    let input = fill([2, 2, 6, 7]);
    let cols = ops::im2col_batched(&input, 3, 3, 1, 1).unwrap();
    let per_image_len = 2 * 6 * 7;
    let (h_out, w_out) = (6, 7);
    let cols_n = h_out * w_out;
    let k = 2 * 3 * 3;
    assert_eq!(cols.shape().dims(), &[k, 2 * cols_n]);
    for img in 0..2 {
        let single = Tensor::from_vec(
            [1, 2, 6, 7],
            input.as_slice()[img * per_image_len..][..per_image_len].to_vec(),
        )
        .unwrap();
        let one = ops::im2col(&single, 3, 3, 1, 1).unwrap();
        for row in 0..k {
            let got = &cols.as_slice()[row * 2 * cols_n + img * cols_n..][..cols_n];
            let want = &one.as_slice()[row * cols_n..][..cols_n];
            assert_eq!(got, want, "im2col_batched img={img} row={row}");
        }
    }
}

#[test]
fn hamming_is_exact_on_both_backends() {
    let mut a = [0u8; 32];
    let mut b = [0u8; 32];
    for (i, (x, y)) in a.iter_mut().zip(b.iter_mut()).enumerate() {
        *x = (i as u8).wrapping_mul(37);
        *y = (i as u8).wrapping_mul(37) ^ (1 << (i % 8));
    }
    // Exactly one flipped bit per byte.
    assert_eq!(simd::hamming256_isa(Isa::SCALAR, &a, &b), 32);
    assert_eq!(simd::hamming256_isa(simd::active(), &a, &b), 32);
    assert_eq!(simd::hamming256(&a, &b), 32);
}
