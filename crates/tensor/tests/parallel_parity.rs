//! Parity of the parallel kernels with their serial references.
//!
//! The worker-pool kernels (`matmul_with`, `conv2d_with`, …) must
//! produce the same numbers on every thread count — the runtime decides
//! *where* work runs, never *what* is computed. Each case here compares
//! 1-, 2- and many-thread runs against the serial kernel and, for
//! convolution, against the direct sextuple-loop reference.

use adsim_runtime::Runtime;
use adsim_tensor::{ops, Tensor};

const TOL: f32 = 1e-5;
const THREADS: [usize; 3] = [1, 2, 8];

/// Deterministic non-trivial fill: varied signs and magnitudes.
fn fill(shape: impl Into<adsim_tensor::Shape>) -> Tensor {
    let shape = shape.into();
    let n = shape.len();
    Tensor::from_vec(
        shape,
        (0..n)
            .map(|i| ((i * 2_654_435_761 % 1_000) as f32 / 500.0 - 1.0) * 0.7)
            .collect(),
    )
    .unwrap()
}

fn assert_close(a: &Tensor, b: &Tensor, ctx: &str) {
    assert_eq!(a.shape(), b.shape(), "{ctx}: shapes differ");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert!(
            (x - y).abs() <= TOL,
            "{ctx}: element {i} differs: {x} vs {y}"
        );
    }
}

#[test]
fn matmul_parity_over_shapes_and_threads() {
    // Mixes of tiny, non-multiple-of-4, skinny and square shapes.
    let shapes = [
        (1usize, 1usize, 1usize),
        (4, 4, 4),
        (7, 5, 3),
        (13, 1, 9),
        (1, 17, 6),
        (32, 24, 16),
        (65, 33, 29),
    ];
    for (m, k, n) in shapes {
        let a = fill([m, k]);
        let b = fill([k, n]);
        let serial = ops::matmul(&a, &b).unwrap();
        for t in THREADS {
            let par = ops::matmul_with(&Runtime::new(t), &a, &b).unwrap();
            assert_close(&par, &serial, &format!("matmul {m}x{k}x{n} threads={t}"));
        }
    }
}

#[test]
fn matmul_parity_on_degenerate_shapes() {
    // `Shape` rejects zero extents, so the smallest legal operands are
    // single-element; every dimension takes a turn at 1.
    for (m, k, n) in [(1usize, 3usize, 4usize), (3, 1, 4), (3, 4, 1), (1, 1, 1)] {
        let a = fill([m, k]);
        let b = fill([k, n]);
        let serial = ops::matmul(&a, &b).unwrap();
        for t in THREADS {
            let par = ops::matmul_with(&Runtime::new(t), &a, &b).unwrap();
            assert_eq!(par, serial, "degenerate matmul {m}x{k}x{n} threads={t}");
        }
    }
}

#[test]
fn conv2d_parity_over_geometry_grid() {
    // (n, c_in, h, w, c_out, kernel, stride, pad) — covers batch
    // parallelism, channel-tile parallelism, strides and padding.
    let cases = [
        (1usize, 1usize, 5usize, 5usize, 1usize, 3usize, 1usize, 0usize),
        (1, 3, 8, 6, 4, 3, 1, 1),
        (2, 2, 7, 7, 3, 3, 2, 1),
        (4, 3, 9, 9, 5, 3, 1, 1),
        (8, 1, 6, 6, 2, 2, 2, 0),
        (3, 4, 10, 8, 6, 5, 2, 2),
        (1, 8, 12, 12, 8, 1, 1, 0),
    ];
    for (n, c_in, h, w, c_out, kk, stride, pad) in cases {
        let input = fill([n, c_in, h, w]);
        let weight = fill([c_out, c_in, kk, kk]);
        let bias = fill([c_out]);
        let ctx = format!("conv {n}x{c_in}x{h}x{w} k{kk} s{stride} p{pad}");
        let direct = ops::conv2d_direct(&input, &weight, Some(&bias), stride, pad).unwrap();
        let serial = ops::conv2d(&input, &weight, Some(&bias), stride, pad).unwrap();
        assert_close(&serial, &direct, &format!("{ctx} serial-vs-direct"));
        for t in THREADS {
            let par =
                ops::conv2d_with(&Runtime::new(t), &input, &weight, Some(&bias), stride, pad)
                    .unwrap();
            assert_close(&par, &serial, &format!("{ctx} threads={t}"));
            assert_close(&par, &direct, &format!("{ctx} threads={t} vs direct"));
        }
    }
}

#[test]
fn conv2d_parity_without_bias_and_degenerate_batch() {
    let input = fill([1, 2, 4, 4]);
    let weight = fill([3, 2, 2, 2]);
    let serial = ops::conv2d(&input, &weight, None, 1, 0).unwrap();
    for t in THREADS {
        let par = ops::conv2d_with(&Runtime::new(t), &input, &weight, None, 1, 0).unwrap();
        assert_close(&par, &serial, &format!("no-bias conv threads={t}"));
    }
    // Minimal geometry: 1x1 kernel over a 1x1 image, single channel.
    let tiny_in = fill([1, 1, 1, 1]);
    let tiny_w = fill([1, 1, 1, 1]);
    let tiny = ops::conv2d(&tiny_in, &tiny_w, None, 1, 0).unwrap();
    for t in THREADS {
        assert_eq!(
            ops::conv2d_with(&Runtime::new(t), &tiny_in, &tiny_w, None, 1, 0).unwrap(),
            tiny
        );
    }
}

#[test]
fn linear_parity_over_batch_shapes() {
    for (batch, in_f, out_f) in [(1usize, 40usize, 30usize), (6, 11, 17), (16, 8, 4), (1, 1, 1)] {
        let x = fill([batch, in_f]);
        let w = fill([out_f, in_f]);
        let b = fill([out_f]);
        let serial = ops::linear(&x, &w, Some(&b)).unwrap();
        for t in THREADS {
            let par = ops::linear_with(&Runtime::new(t), &x, &w, Some(&b)).unwrap();
            assert_close(&par, &serial, &format!("linear {batch}x{in_f}x{out_f} threads={t}"));
        }
    }
}

#[test]
fn pool_and_activation_parity() {
    let t = fill([2, 4, 8, 8]);
    let serial_max = ops::max_pool2d(&t, 2, 2).unwrap();
    let serial_avg = ops::avg_pool2d(&t, 3, 1).unwrap();
    let serial_soft = ops::softmax(&t.reshape([8, 64]).unwrap());
    for threads in THREADS {
        let rt = Runtime::new(threads);
        assert_eq!(ops::max_pool2d_with(&rt, &t, 2, 2).unwrap(), serial_max);
        assert_eq!(ops::avg_pool2d_with(&rt, &t, 3, 1).unwrap(), serial_avg);
        assert_eq!(ops::relu_with(&rt, &t), ops::relu(&t));
        assert_eq!(ops::leaky_relu_with(&rt, &t, 0.1), ops::leaky_relu(&t, 0.1));
        assert_close(
            &ops::softmax_with(&rt, &t.reshape([8, 64]).unwrap()),
            &serial_soft,
            &format!("softmax threads={threads}"),
        );
    }
}
