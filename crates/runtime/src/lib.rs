//! A dependency-free parallel runtime for the workspace's compute
//! kernels.
//!
//! The paper's central result (§6, Fig. 10–11) is that the three
//! computational bottlenecks — detection, tracking, localization — meet
//! the 100 ms end-to-end latency constraint only when their dense
//! linear-algebra cores are parallelized onto multicore or accelerator
//! hardware. This crate is the workspace's native counterpart to that
//! observation: a small fork-join worker pool built entirely on
//! [`std::thread::scope`], with no external dependencies, that the
//! tensor kernels (`adsim-tensor`), the DNN engines (`adsim-dnn`) and
//! the native pipeline (`adsim-core`) use to spread work across cores.
//!
//! # Design
//!
//! A [`Runtime`] is a lightweight, copyable handle holding a worker
//! count. Each parallel region opens a fresh [`std::thread::scope`],
//! spawns `threads - 1` workers and participates with the calling
//! thread; tasks are handed out dynamically through an atomic cursor so
//! uneven task costs still balance. Scoped threads may borrow from the
//! caller's stack, which is what lets the kernels partition borrowed
//! tensor buffers without `unsafe` or reference counting.
//!
//! Opening a scope costs a few tens of microseconds per region — noise
//! against the multi-millisecond matmul/conv2d calls this crate exists
//! for. Callers guard genuinely tiny workloads with
//! [`Runtime::for_work`], which degrades to serial execution below a
//! work threshold.
//!
//! # Examples
//!
//! ```
//! use adsim_runtime::Runtime;
//!
//! let rt = Runtime::new(4);
//! let mut data = vec![0u64; 1024];
//! rt.par_chunks_mut(&mut data, 128, |chunk_idx, chunk| {
//!     for (i, v) in chunk.iter_mut().enumerate() {
//!         *v = (chunk_idx * 128 + i) as u64;
//!     }
//! });
//! assert_eq!(data[517], 517);
//! ```

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A panic payload carried from a worker thread back to the caller.
type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// First-panic capture shared by a parallel region's workers.
///
/// A panic inside a spawned scoped thread would otherwise surface at
/// the caller as `std::thread::scope`'s own opaque join panic, losing
/// the payload. Workers instead catch their panic here; the region
/// rethrows the *original* payload (first panic wins) on the calling
/// thread after the scope closes, so a typed payload — e.g.
/// `adsim_faults::InjectedCrash` raised through a pool worker — stays
/// downcastable at the cell boundary. Once a panic is captured the
/// region stops handing out new tasks; remaining tasks are skipped
/// (the region is about to unwind — partial output must not look
/// complete).
struct PanicSlot {
    poisoned: AtomicBool,
    payload: Mutex<Option<PanicPayload>>,
}

impl PanicSlot {
    fn new() -> Self {
        Self { poisoned: AtomicBool::new(false), payload: Mutex::new(None) }
    }

    fn poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Relaxed)
    }

    fn capture(&self, p: PanicPayload) {
        let mut slot = self.payload.lock().expect("panic slot lock");
        if slot.is_none() {
            *slot = Some(p);
        }
        self.poisoned.store(true, Ordering::Release);
    }

    /// Rethrows the captured payload on the calling thread, if any.
    fn rethrow(self) {
        if let Some(p) = self.payload.into_inner().expect("panic slot lock") {
            resume_unwind(p);
        }
    }
}

/// Minimum number of scalar operations below which parallel dispatch is
/// not worth a scope spawn (see [`Runtime::for_work`]).
pub const PAR_WORK_THRESHOLD: usize = 16 * 1024;

/// A copyable fork-join worker-pool handle.
///
/// See the [crate docs](crate) for the execution model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Runtime {
    threads: usize,
}

impl Runtime {
    /// Creates a runtime that runs parallel regions on `threads`
    /// workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self { threads: threads.max(1) }
    }

    /// A single-threaded runtime: every operation runs inline on the
    /// calling thread. This is the drop-in replacement for the old
    /// serial kernels.
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// A runtime sized to the machine (`std::thread::available_parallelism`,
    /// falling back to 1 when the count cannot be determined).
    pub fn max_parallel() -> Self {
        Self::new(available_parallelism())
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// This runtime, degraded to serial when `work` (an approximate
    /// scalar-operation count) is too small to amortize a scope spawn.
    pub fn for_work(&self, work: usize) -> Runtime {
        if work < PAR_WORK_THRESHOLD {
            Runtime::serial()
        } else {
            *self
        }
    }

    /// Runs `f(task)` for every `task` in `0..n_tasks`, distributing
    /// tasks dynamically over the workers. Tasks are handed out in
    /// contiguous grains to keep cursor contention low; every index is
    /// executed exactly once. Returns after all tasks complete.
    ///
    /// # Panics
    ///
    /// If a task panics, the region stops handing out tasks and
    /// re-raises the **first** panic's original payload on the calling
    /// thread (never `thread::scope`'s opaque join panic), so typed
    /// payloads stay downcastable at the boundary. Tasks not yet
    /// claimed when the panic hit are skipped.
    pub fn run(&self, n_tasks: usize, f: impl Fn(usize) + Sync) {
        self.run_with_state(n_tasks, || (), |(), task| f(task));
    }

    /// Like [`Runtime::run`], but each worker first builds a private
    /// state with `init` and threads it through every task it executes
    /// — the hook the conv2d kernel uses to reuse one im2col scratch
    /// buffer per worker instead of allocating per batch image.
    pub fn run_with_state<S>(
        &self,
        n_tasks: usize,
        init: impl Fn() -> S + Sync,
        f: impl Fn(&mut S, usize) + Sync,
    ) {
        if n_tasks == 0 {
            return;
        }
        let workers = self.threads.min(n_tasks);
        // Grain size: enough grains per worker for dynamic balance,
        // few enough that the atomic cursor stays cold.
        let grain = (n_tasks / (4 * workers)).max(1);
        if workers <= 1 {
            let mut state = init();
            for task in 0..n_tasks {
                f(&mut state, task);
            }
            return;
        }
        // Region/worker spans cost one relaxed atomic load each when
        // tracing is off; enabled they make per-worker busy time and
        // fork-join wall time visible (DESIGN.md §8).
        let _region = adsim_trace::span(adsim_trace::REGION_SPAN);
        let cursor = AtomicUsize::new(0);
        let panics = PanicSlot::new();
        let worker_loop = |worker: usize| {
            let _busy = adsim_trace::span_at(adsim_trace::WORKER_SPAN, worker);
            let mut state = init();
            loop {
                if panics.poisoned() {
                    break;
                }
                let start = cursor.fetch_add(grain, Ordering::Relaxed);
                if start >= n_tasks {
                    break;
                }
                let grain_run = catch_unwind(AssertUnwindSafe(|| {
                    for task in start..(start + grain).min(n_tasks) {
                        f(&mut state, task);
                    }
                }));
                if let Err(p) = grain_run {
                    panics.capture(p);
                    break;
                }
            }
        };
        std::thread::scope(|s| {
            let wl = &worker_loop;
            for worker in 1..workers {
                // Flush after the busy span drops: the scope unblocks
                // when the closure returns, which may precede the
                // thread's TLS destructors — an unflushed buffer could
                // otherwise miss the session that is about to finish.
                s.spawn(move || {
                    wl(worker);
                    adsim_trace::flush_thread();
                });
            }
            worker_loop(0);
        });
        panics.rethrow();
    }

    /// Splits `data` into consecutive chunks of `chunk_len` elements
    /// (the final chunk may be shorter) and runs
    /// `f(chunk_index, chunk)` over them in parallel. Chunks are
    /// disjoint `&mut` views, so workers can write without
    /// synchronization.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero and `data` is non-empty.
    pub fn par_chunks_mut<T: Send>(
        &self,
        data: &mut [T],
        chunk_len: usize,
        f: impl Fn(usize, &mut [T]) + Sync,
    ) {
        if data.is_empty() {
            return;
        }
        assert!(chunk_len > 0, "chunk_len must be positive");
        let n_chunks = data.len().div_ceil(chunk_len);
        let workers = self.threads.min(n_chunks);
        if workers <= 1 {
            for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
                f(i, chunk);
            }
            return;
        }
        // Disjoint &mut chunks are handed out through a mutex-guarded
        // iterator; the lock is held only to pop the next chunk, and
        // chunk counts are small relative to per-chunk work.
        let _region = adsim_trace::span(adsim_trace::REGION_SPAN);
        let queue = Mutex::new(data.chunks_mut(chunk_len).enumerate());
        let panics = PanicSlot::new();
        let worker_loop = |worker: usize| {
            let _busy = adsim_trace::span_at(adsim_trace::WORKER_SPAN, worker);
            loop {
                if panics.poisoned() {
                    break;
                }
                let next = queue.lock().expect("chunk queue lock").next();
                match next {
                    Some((i, chunk)) => {
                        if let Err(p) = catch_unwind(AssertUnwindSafe(|| f(i, chunk))) {
                            panics.capture(p);
                            break;
                        }
                    }
                    None => break,
                }
            }
        };
        std::thread::scope(|s| {
            let wl = &worker_loop;
            for worker in 1..workers {
                s.spawn(move || {
                    wl(worker);
                    adsim_trace::flush_thread();
                });
            }
            worker_loop(0);
        });
        panics.rethrow();
    }

    /// Runs two closures concurrently and returns both results — the
    /// Fig. 1 fork: detection and localization start in parallel on
    /// the same frame (steps 1a/1b).
    ///
    /// On a serial runtime `fa` then `fb` run inline in order.
    pub fn join<A: Send, B: Send>(
        &self,
        fa: impl FnOnce() -> A + Send,
        fb: impl FnOnce() -> B + Send,
    ) -> (A, B) {
        if self.threads <= 1 {
            let a = fa();
            let b = fb();
            return (a, b);
        }
        let _region = adsim_trace::span(adsim_trace::REGION_SPAN);
        std::thread::scope(|s| {
            let ha = s.spawn(move || {
                let a = {
                    let _busy = adsim_trace::span_at(adsim_trace::WORKER_SPAN, 1);
                    fa()
                };
                adsim_trace::flush_thread();
                a
            });
            let b = {
                let _busy = adsim_trace::span_at(adsim_trace::WORKER_SPAN, 0);
                fb()
            };
            // Re-raise the spawned task's original payload on the
            // caller instead of a generic join panic, so typed
            // payloads survive the pool boundary.
            let a = match ha.join() {
                Ok(a) => a,
                Err(p) => resume_unwind(p),
            };
            (a, b)
        })
    }
}

impl Default for Runtime {
    fn default() -> Self {
        Self::max_parallel()
    }
}

/// The machine's available hardware parallelism (1 when unknown).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn run_covers_every_index_exactly_once() {
        for threads in [1, 2, 3, 8] {
            let rt = Runtime::new(threads);
            for n in [0usize, 1, 7, 64, 1000] {
                let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                rt.run(n, |i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "threads={threads} n={n}"
                );
            }
        }
    }

    #[test]
    fn par_chunks_mut_partitions_disjointly() {
        for threads in [1, 2, 5] {
            let rt = Runtime::new(threads);
            for (len, chunk) in [(0usize, 3usize), (1, 3), (10, 3), (12, 3), (100, 7)] {
                let mut data = vec![0u32; len];
                rt.par_chunks_mut(&mut data, chunk, |ci, c| {
                    for (i, v) in c.iter_mut().enumerate() {
                        *v += (ci * chunk + i) as u32 + 1;
                    }
                });
                for (i, v) in data.iter().enumerate() {
                    assert_eq!(*v, i as u32 + 1, "threads={threads} len={len}");
                }
            }
        }
    }

    #[test]
    fn run_with_state_reuses_worker_state() {
        let rt = Runtime::new(4);
        let inits = AtomicUsize::new(0);
        let sum = AtomicU64::new(0);
        rt.run_with_state(
            1000,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u64
            },
            |acc, task| {
                *acc += task as u64;
                sum.fetch_add(task as u64, Ordering::Relaxed);
            },
        );
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
        assert!(inits.load(Ordering::Relaxed) <= 4, "one state per worker");
    }

    #[test]
    fn join_returns_both_results() {
        for threads in [1, 4] {
            let rt = Runtime::new(threads);
            let (a, b) = rt.join(|| 2 + 2, || "ok".to_string());
            assert_eq!(a, 4);
            assert_eq!(b, "ok");
        }
    }

    #[test]
    fn join_runs_closures_concurrently_when_parallel() {
        use std::sync::mpsc;
        let rt = Runtime::new(2);
        let (tx, rx) = mpsc::channel();
        let (tx2, rx2) = (tx.clone(), rx);
        // Each closure unblocks the other; completes only if truly
        // concurrent.
        let (a, b) = rt.join(
            move || {
                tx.send(1).unwrap();
                1
            },
            move || {
                tx2.send(2).unwrap();
                rx2.recv().unwrap() + rx2.recv().unwrap()
            },
        );
        assert_eq!(a, 1);
        assert_eq!(b, 3);
    }

    /// A typed payload standing in for `adsim_faults::InjectedCrash`
    /// (this crate cannot depend on the faults crate).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct TypedCrash {
        frame: u64,
    }

    /// The worker-panic contract: a panic inside a pool task reaches
    /// the caller as the *original* payload — typed payloads survive
    /// downcast at the cell boundary instead of arriving as
    /// `thread::scope`'s opaque join panic.
    #[test]
    fn run_surfaces_worker_panic_payload_typed() {
        for threads in [1usize, 4] {
            let rt = Runtime::new(threads);
            let caught = catch_unwind(AssertUnwindSafe(|| {
                rt.run(64, |i| {
                    if i == 17 {
                        std::panic::panic_any(TypedCrash { frame: 17 });
                    }
                });
            }));
            let payload = caught.expect_err("the task panic must propagate");
            let crash =
                payload.downcast_ref::<TypedCrash>().expect("payload must stay downcastable");
            assert_eq!(*crash, TypedCrash { frame: 17 }, "threads={threads}");
        }
    }

    /// With several panicking tasks, exactly one payload (the first
    /// captured) is re-raised and the pool still shuts down cleanly —
    /// no worker is left wedged, no double panic.
    #[test]
    fn run_rethrows_exactly_one_payload_and_skips_after_poison() {
        let rt = Runtime::new(4);
        let executed = AtomicUsize::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            rt.run(1000, |i| {
                executed.fetch_add(1, Ordering::Relaxed);
                if i % 3 == 0 {
                    panic!("task {i} died");
                }
            });
        }));
        let payload = caught.expect_err("panics must propagate");
        let msg = payload.downcast_ref::<String>().expect("format payload is a String");
        assert!(msg.contains("died"), "{msg}");
        assert!(
            executed.load(Ordering::Relaxed) < 1000,
            "unclaimed tasks must be skipped once poisoned"
        );
    }

    #[test]
    fn par_chunks_mut_surfaces_worker_panic_payload_typed() {
        for threads in [1usize, 4] {
            let rt = Runtime::new(threads);
            let mut data = vec![0u8; 256];
            let caught = catch_unwind(AssertUnwindSafe(|| {
                rt.par_chunks_mut(&mut data, 16, |ci, _| {
                    if ci == 7 {
                        std::panic::panic_any(TypedCrash { frame: 7 });
                    }
                });
            }));
            let payload = caught.expect_err("the chunk panic must propagate");
            assert!(payload.downcast_ref::<TypedCrash>().is_some(), "threads={threads}");
        }
    }

    #[test]
    fn join_surfaces_spawned_panic_payload_typed() {
        for threads in [1usize, 4] {
            let rt = Runtime::new(threads);
            let caught = catch_unwind(AssertUnwindSafe(|| {
                rt.join(
                    || -> u32 { std::panic::panic_any(TypedCrash { frame: 3 }) },
                    std::thread::yield_now,
                );
            }));
            let payload = caught.expect_err("the joined panic must propagate");
            assert!(payload.downcast_ref::<TypedCrash>().is_some(), "threads={threads}");
        }
    }

    #[test]
    fn for_work_degrades_small_workloads_to_serial() {
        let rt = Runtime::new(8);
        assert_eq!(rt.for_work(100).threads(), 1);
        assert_eq!(rt.for_work(PAR_WORK_THRESHOLD).threads(), 8);
    }

    #[test]
    fn thread_count_is_clamped_positive() {
        assert_eq!(Runtime::new(0).threads(), 1);
        assert!(Runtime::max_parallel().threads() >= 1);
        assert_eq!(Runtime::serial().threads(), 1);
    }

    #[test]
    fn parallel_sum_matches_serial() {
        let data: Vec<f64> = (0..10_000).map(|i| i as f64 * 0.5).collect();
        let serial: f64 = data.iter().sum();
        let partials = Mutex::new(0.0f64);
        Runtime::new(4).par_chunks_mut(&mut data.clone(), 1024, |_, chunk| {
            let s: f64 = chunk.iter().sum();
            *partials.lock().unwrap() += s;
        });
        let par = *partials.lock().unwrap();
        assert!((par - serial).abs() < 1e-6);
    }
}
