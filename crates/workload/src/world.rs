use adsim_dnn::detection::{BBox, ObjectClass};
use adsim_stats::Rng64;
use adsim_vision::{GrayImage, OrthoCamera, Point2, Pose2};

/// A static localization landmark: a uniquely textured ground patch
/// (lane markings, manhole covers, curb paint — anything with stable
/// appearance a prior map would store).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beacon {
    /// World position of the patch center (m).
    pub position: Point2,
    /// Texture seed; every beacon looks different.
    pub seed: u64,
}

/// Physical beacon extent in meters (square).
pub const BEACON_SIZE_M: f64 = 7.0;

/// A scripted moving object of one of the paper's four classes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MovingObject {
    /// Stable identity (ground truth for tracking metrics).
    pub id: u64,
    /// Object class.
    pub class: ObjectClass,
    /// World position at time 0 (m).
    pub start: Point2,
    /// Constant world velocity (m/s).
    pub velocity: Point2,
    /// Extent across the direction of travel (m).
    pub width_m: f64,
    /// Extent along the direction of travel (m).
    pub length_m: f64,
    /// Texture seed.
    pub seed: u64,
}

impl MovingObject {
    /// World position at `time_s` seconds.
    pub fn position_at(&self, time_s: f64) -> Point2 {
        self.start + self.velocity * time_s
    }

    /// Base rendering intensity encoding the class; each class lives in
    /// a distinct band so the classical detector can classify and the
    /// ground-truth generator stays consistent with rendering.
    pub fn base_intensity(&self) -> u8 {
        class_intensity(self.class)
    }
}

/// Center of the rendering intensity band for a class (canonical
/// definition lives on [`ObjectClass::render_intensity`]).
pub fn class_intensity(class: ObjectClass) -> u8 {
    class.render_intensity()
}

/// Recovers the class from a mean patch intensity (delegates to
/// [`ObjectClass::from_intensity`]).
pub fn class_from_intensity(mean: f64) -> Option<ObjectClass> {
    ObjectClass::from_intensity(mean)
}

/// Ground-truth annotation for one visible object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruthObject {
    /// The scripted object's identity.
    pub id: u64,
    /// Its class.
    pub class: ObjectClass,
    /// Its bounding box in normalized image coordinates.
    pub bbox: BBox,
}

/// World-generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorldParams {
    /// Half-extent of the square world (m).
    pub extent_m: f64,
    /// Beacon grid spacing (m).
    pub beacon_spacing_m: f64,
    /// Number of moving objects.
    pub n_objects: usize,
    /// Object speed (m/s).
    pub object_speed_mps: f64,
}

impl Default for WorldParams {
    fn default() -> Self {
        Self { extent_m: 250.0, beacon_spacing_m: 14.0, n_objects: 12, object_speed_mps: 4.0 }
    }
}

/// Rendering conditions: photometric perturbations that model weather
/// and illumination changes (the paper's map-update step exists
/// because "the map is built under different weather conditions",
/// §3.1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conditions {
    /// Uniform brightness offset added to every pixel.
    pub brightness: i16,
    /// Per-pixel noise amplitude (uniform in `±noise`).
    pub noise: u8,
    /// Noise seed; change per frame for temporal noise.
    pub seed: u64,
}

impl Conditions {
    /// Clear daylight: no perturbation.
    pub fn clear() -> Self {
        Self { brightness: 0, noise: 0, seed: 0 }
    }

    /// Mild sensor noise and a small exposure shift.
    pub fn overcast(seed: u64) -> Self {
        Self { brightness: -15, noise: 8, seed }
    }

    /// Heavy noise and strong under-exposure (night, heavy rain):
    /// enough to corrupt most binary-descriptor comparisons.
    pub fn severe(seed: u64) -> Self {
        Self { brightness: -70, noise: 90, seed }
    }

    fn apply(&self, img: &mut GrayImage) {
        if self.brightness == 0 && self.noise == 0 {
            return;
        }
        let w = img.width();
        for y in 0..img.height() {
            for x in 0..w {
                let mut v = img.get(x, y) as i16 + self.brightness;
                if self.noise > 0 {
                    let h = hash2(x as u64, y as u64, self.seed ^ 0xC0DD);
                    v += (h % (2 * self.noise as u64 + 1)) as i16 - self.noise as i16;
                }
                img.put(x as isize, y as isize, v.clamp(0, 255) as u8);
            }
        }
    }
}

impl Default for Conditions {
    fn default() -> Self {
        Self::clear()
    }
}

/// A synthetic driving world: landmark beacons plus scripted moving
/// objects, renderable from any vehicle pose at any resolution.
#[derive(Debug, Clone)]
pub struct World {
    beacons: Vec<Beacon>,
    objects: Vec<MovingObject>,
}

impl World {
    /// Generates a world deterministically from a seed.
    pub fn generate(seed: u64, params: &WorldParams) -> World {
        let mut rng = Rng64::new(seed);
        let mut beacons = Vec::new();
        let n = (2.0 * params.extent_m / params.beacon_spacing_m) as i64;
        let mut bseed = 0u64;
        for gx in -n / 2..=n / 2 {
            for gy in -n / 2..=n / 2 {
                let jx = rng.range_f64(-2.0, 2.0);
                let jy = rng.range_f64(-2.0, 2.0);
                beacons.push(Beacon {
                    position: Point2::new(
                        gx as f64 * params.beacon_spacing_m + jx,
                        gy as f64 * params.beacon_spacing_m + jy,
                    ),
                    seed: bseed,
                });
                bseed += 1;
            }
        }
        let mut objects = Vec::new();
        for id in 0..params.n_objects as u64 {
            let class = ObjectClass::ALL[rng.range_usize(0, ObjectClass::COUNT)];
            let (w, l) = match class {
                ObjectClass::Vehicle => (2.2, 4.5),
                ObjectClass::Bicycle => (1.0, 2.0),
                ObjectClass::TrafficSign => (1.2, 1.2),
                ObjectClass::Pedestrian => (0.9, 0.9),
            };
            let speed = if class == ObjectClass::TrafficSign {
                0.0
            } else {
                params.object_speed_mps * rng.range_f64(0.5, 1.5)
            };
            let along_x = rng.chance(0.5);
            let dir = if rng.chance(0.5) { 1.0 } else { -1.0 };
            objects.push(MovingObject {
                id,
                class,
                // Objects cluster along the road corridor (the ego
                // trajectories run near y = 0), so scenarios actually
                // encounter traffic.
                start: Point2::new(
                    rng.range_f64(-params.extent_m * 0.4, params.extent_m * 0.4),
                    rng.range_f64(
                        -30.0f64.min(params.extent_m * 0.3),
                        30.0f64.min(params.extent_m * 0.3),
                    ),
                ),
                velocity: if along_x {
                    Point2::new(speed * dir, 0.0)
                } else {
                    Point2::new(0.0, speed * dir)
                },
                width_m: w,
                length_m: l,
                seed: 0xB00 + id,
            });
        }
        World { beacons, objects }
    }

    /// The landmark beacons.
    pub fn beacons(&self) -> &[Beacon] {
        &self.beacons
    }

    /// The scripted objects.
    pub fn objects(&self) -> &[MovingObject] {
        &self.objects
    }

    /// Renders the camera view from `pose` at time `time_s` under
    /// clear conditions.
    pub fn render(&self, camera: &OrthoCamera, pose: &Pose2, time_s: f64) -> GrayImage {
        self.render_with(camera, pose, time_s, &Conditions::clear())
    }

    /// Renders under explicit photometric [`Conditions`].
    pub fn render_with(
        &self,
        camera: &OrthoCamera,
        pose: &Pose2,
        time_s: f64,
        conditions: &Conditions,
    ) -> GrayImage {
        let mut img = GrayImage::from_fn(camera.width(), camera.height(), |x, y| {
            // Static road texture: dim, deterministic, non-repeating
            // enough to look like asphalt but below FAST thresholds.
            let h = hash2(x as u64, y as u64, 0);
            25 + (h % 9) as u8
        });
        let radius = camera.view_radius();
        for b in &self.beacons {
            if b.position.distance(&pose.translation()) > radius + BEACON_SIZE_M {
                continue;
            }
            self.draw_world_square(
                &mut img,
                camera,
                pose,
                b.position,
                BEACON_SIZE_M,
                BEACON_SIZE_M,
                |wx, wy| {
                    // 1x1 m texture cells, hashed per beacon.
                    let cx = (wx - b.position.x + BEACON_SIZE_M / 2.0).floor() as u64;
                    let cy = (wy - b.position.y + BEACON_SIZE_M / 2.0).floor() as u64;
                    80 + (hash2(cx, cy, b.seed) % 176) as u8
                },
            );
        }
        for o in &self.objects {
            let p = o.position_at(time_s);
            if p.distance(&pose.translation()) > radius + o.length_m {
                continue;
            }
            let base = o.base_intensity();
            self.draw_world_square(&mut img, camera, pose, p, o.length_m, o.width_m, |wx, wy| {
                // Mild texture inside the class band (±10).
                let cx = ((wx - p.x) * 2.0).floor() as i64 as u64;
                let cy = ((wy - p.y) * 2.0).floor() as i64 as u64;
                let jitter = (hash2(cx, cy, o.seed) % 21) as i16 - 10;
                (base as i16 + jitter).clamp(0, 255) as u8
            });
        }
        conditions.apply(&mut img);
        img
    }

    /// Ground-truth boxes for objects visible from `pose` at `time_s`.
    pub fn truth_objects(
        &self,
        camera: &OrthoCamera,
        pose: &Pose2,
        time_s: f64,
    ) -> Vec<TruthObject> {
        let mut out = Vec::new();
        for o in &self.objects {
            let p = o.position_at(time_s);
            let (hx, hy) = (o.length_m / 2.0, o.width_m / 2.0);
            let corners = [
                Point2::new(p.x - hx, p.y - hy),
                Point2::new(p.x + hx, p.y - hy),
                Point2::new(p.x - hx, p.y + hy),
                Point2::new(p.x + hx, p.y + hy),
            ];
            let (mut u0, mut v0) = (f64::INFINITY, f64::INFINITY);
            let (mut u1, mut v1) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
            for c in corners {
                let (u, v) = camera.world_to_image(pose, c);
                u0 = u0.min(u);
                v0 = v0.min(v);
                u1 = u1.max(u);
                v1 = v1.max(v);
            }
            // Keep objects whose center is in frame.
            let (cu, cv) = camera.world_to_image(pose, p);
            if !camera.in_frame(cu, cv) {
                continue;
            }
            let w = camera.width() as f32;
            let h = camera.height() as f32;
            out.push(TruthObject {
                id: o.id,
                class: o.class,
                bbox: BBox::from_corners(
                    u0 as f32 / w,
                    v0 as f32 / h,
                    u1 as f32 / w,
                    v1 as f32 / h,
                ),
            });
        }
        out
    }

    /// Draws an axis-aligned (in world space) rectangle by scanning its
    /// projected image bounding box and sampling `texture(wx, wy)`.
    #[allow(clippy::too_many_arguments)]
    fn draw_world_square(
        &self,
        img: &mut GrayImage,
        camera: &OrthoCamera,
        pose: &Pose2,
        center: Point2,
        len_x: f64,
        len_y: f64,
        texture: impl Fn(f64, f64) -> u8,
    ) {
        let half_diag = (len_x * len_x + len_y * len_y).sqrt() / 2.0;
        let (cu, cv) = camera.world_to_image(pose, center);
        let r = (half_diag / camera.meters_per_pixel()).ceil() as isize + 1;
        let (cu, cv) = (cu.round() as isize, cv.round() as isize);
        for v in cv - r..=cv + r {
            for u in cu - r..=cu + r {
                if u < 0 || v < 0 || u >= img.width() as isize || v >= img.height() as isize {
                    continue;
                }
                let w = camera.image_to_world(pose, u as f64, v as f64);
                if (w.x - center.x).abs() <= len_x / 2.0 && (w.y - center.y).abs() <= len_y / 2.0
                {
                    img.put(u, v, texture(w.x, w.y));
                }
            }
        }
    }
}

/// Deterministic 2-D hash used for all textures.
fn hash2(x: u64, y: u64, seed: u64) -> u64 {
    let mut h = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(x.wrapping_mul(131))
        .wrapping_add(y.wrapping_mul(31013));
    h ^= h >> 29;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 32;
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn camera() -> OrthoCamera {
        OrthoCamera::new(320, 240, 0.25)
    }

    #[test]
    fn generation_is_deterministic() {
        let p = WorldParams::default();
        let a = World::generate(7, &p);
        let b = World::generate(7, &p);
        assert_eq!(a.beacons(), b.beacons());
        assert_eq!(a.objects(), b.objects());
        let c = World::generate(8, &p);
        assert_ne!(a.beacons(), c.beacons());
    }

    #[test]
    fn render_is_deterministic_and_shows_beacons() {
        let world = World::generate(1, &WorldParams::default());
        let cam = camera();
        let pose = Pose2::identity();
        let a = world.render(&cam, &pose, 0.0);
        let b = world.render(&cam, &pose, 0.0);
        assert_eq!(a, b);
        // Beacon texture (>= 80) must appear somewhere.
        assert!(a.as_slice().iter().any(|&p| p >= 80));
    }

    #[test]
    fn truth_objects_match_rendered_intensity() {
        let world = World::generate(3, &WorldParams { n_objects: 20, ..Default::default() });
        let cam = camera();
        // Find a pose looking at the first object.
        let o = &world.objects()[0];
        let pose = Pose2::new(o.start.x - 5.0, o.start.y, 0.0);
        let truths = world.truth_objects(&cam, &pose, 0.0);
        let t = truths.iter().find(|t| t.id == o.id).expect("object in view");
        assert_eq!(t.class, o.class);
        // Sample the rendered image at the truth bbox center.
        let img = world.render(&cam, &pose, 0.0);
        let px = img.get(
            (t.bbox.cx * cam.width() as f32) as usize,
            (t.bbox.cy * cam.height() as f32) as usize,
        );
        assert_eq!(
            class_from_intensity(px as f64),
            Some(o.class),
            "pixel {px} should encode {:?}",
            o.class
        );
    }

    #[test]
    fn objects_move_over_time() {
        let world = World::generate(5, &WorldParams::default());
        let moving = world.objects().iter().find(|o| o.velocity.norm() > 0.0).unwrap();
        let p0 = moving.position_at(0.0);
        let p1 = moving.position_at(2.0);
        assert!(p0.distance(&p1) > 1.0);
    }

    #[test]
    fn class_intensity_round_trips() {
        for c in ObjectClass::ALL {
            assert_eq!(class_from_intensity(class_intensity(c) as f64), Some(c));
            assert_eq!(class_from_intensity(class_intensity(c) as f64 + 9.0), Some(c));
        }
        assert_eq!(class_from_intensity(30.0), None);
    }

    #[test]
    fn render_rotation_invariant_world_content() {
        // The same world point must render the same texture value
        // regardless of vehicle heading (sampling is in world space).
        let world = World::generate(4, &WorldParams { n_objects: 0, ..Default::default() });
        let cam = camera();
        let b = world.beacons()[world.beacons().len() / 2];
        let pose_a = Pose2::new(b.position.x - 10.0, b.position.y, 0.0);
        let pose_b = Pose2::new(b.position.x, b.position.y - 10.0, std::f64::consts::FRAC_PI_2);
        let img_a = world.render(&cam, &pose_a, 0.0);
        let img_b = world.render(&cam, &pose_b, 0.0);
        // Sample texture-cell centers in world space through both views.
        let mut same = 0;
        let mut total = 0;
        for dx in -2i32..=2 {
            for dy in -2i32..=2 {
                let w = Point2::new(
                    b.position.x + dx as f64 + 0.5,
                    b.position.y + dy as f64 + 0.5,
                );
                let (ua, va) = cam.world_to_image(&pose_a, w);
                let (ub, vb) = cam.world_to_image(&pose_b, w);
                let pa = img_a.get_clamped(ua.round() as isize, va.round() as isize);
                let pb = img_b.get_clamped(ub.round() as isize, vb.round() as isize);
                total += 1;
                if pa == pb {
                    same += 1;
                }
            }
        }
        assert!(
            same * 10 >= total * 8,
            "world-space texture should mostly agree: {same}/{total}"
        );
    }
}

#[cfg(test)]
mod condition_tests {
    use super::*;

    fn setup() -> (World, OrthoCamera, Pose2) {
        let world = World::generate(4, &WorldParams::default());
        (world, OrthoCamera::new(160, 120, 0.5), Pose2::identity())
    }

    #[test]
    fn clear_conditions_match_plain_render() {
        let (world, cam, pose) = setup();
        assert_eq!(
            world.render(&cam, &pose, 0.0),
            world.render_with(&cam, &pose, 0.0, &Conditions::clear())
        );
    }

    #[test]
    fn brightness_shifts_the_mean() {
        let (world, cam, pose) = setup();
        let clear = world.render(&cam, &pose, 0.0);
        let dark = world.render_with(
            &cam,
            &pose,
            0.0,
            &Conditions { brightness: -30, noise: 0, seed: 0 },
        );
        let mean = |img: &GrayImage| {
            img.as_slice().iter().map(|&p| p as f64).sum::<f64>() / img.pixels() as f64
        };
        assert!(mean(&dark) < mean(&clear) - 20.0);
    }

    #[test]
    fn noise_is_bounded_and_seeded() {
        let (world, cam, pose) = setup();
        let clear = world.render(&cam, &pose, 0.0);
        let cond = Conditions { brightness: 0, noise: 10, seed: 7 };
        let noisy = world.render_with(&cam, &pose, 0.0, &cond);
        for (a, b) in clear.as_slice().iter().zip(noisy.as_slice()) {
            let diff = (*a as i16 - *b as i16).abs();
            assert!(diff <= 10, "noise exceeded amplitude: {diff}");
        }
        // Same seed -> identical; different seed -> different.
        assert_eq!(noisy, world.render_with(&cam, &pose, 0.0, &cond));
        let other = world.render_with(
            &cam,
            &pose,
            0.0,
            &Conditions { seed: 8, ..cond },
        );
        assert_ne!(noisy, other);
    }

    #[test]
    fn presets_are_ordered_by_severity() {
        let clear = Conditions::clear();
        let overcast = Conditions::overcast(1);
        let severe = Conditions::severe(1);
        assert!(clear.noise < overcast.noise);
        assert!(overcast.noise < severe.noise);
        assert!(severe.brightness < overcast.brightness);
    }
}
