use crate::stream::FrameStream;
use crate::world::{World, WorldParams};
use crate::Resolution;
use adsim_vision::{OrthoCamera, Pose2};

/// The driving situations the paper's introduction motivates: dense
/// urban traffic, high-speed highway cruising, and low-speed
/// manoeuvring in open areas (where the motion planner switches to
/// free-space state lattices, §3.1.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// City driving: moderate speed, regular turns, many objects.
    UrbanDrive,
    /// Highway: high speed, straight, few objects.
    HighwayCruise,
    /// Parking lot: low speed, tight curves, pedestrians.
    ParkingLot,
}

impl std::fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ScenarioKind::UrbanDrive => "urban-drive",
            ScenarioKind::HighwayCruise => "highway-cruise",
            ScenarioKind::ParkingLot => "parking-lot",
        };
        f.write_str(s)
    }
}

/// A reproducible driving scenario: a world, a scripted ego
/// trajectory, and a frame rate.
///
/// The paper's performance constraint demands processing at 10 frames
/// per second or better (§2.4.1), so scenarios default to 10 FPS.
///
/// # Examples
///
/// ```
/// use adsim_workload::{Scenario, ScenarioKind};
///
/// let s = Scenario::new(ScenarioKind::HighwayCruise, 1);
/// let early = s.pose_at(0);
/// let later = s.pose_at(50);
/// assert!(early.distance(&later) > 10.0);
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    kind: ScenarioKind,
    world: World,
    fps: f64,
}

impl Scenario {
    /// Creates a scenario with a deterministically generated world.
    pub fn new(kind: ScenarioKind, seed: u64) -> Self {
        let params = match kind {
            ScenarioKind::UrbanDrive => WorldParams { n_objects: 16, ..Default::default() },
            ScenarioKind::HighwayCruise => WorldParams {
                extent_m: 600.0,
                n_objects: 6,
                object_speed_mps: 25.0,
                ..Default::default()
            },
            ScenarioKind::ParkingLot => WorldParams {
                extent_m: 120.0,
                n_objects: 10,
                object_speed_mps: 1.2,
                ..Default::default()
            },
        };
        Self { kind, world: World::generate(seed, &params), fps: 10.0 }
    }

    /// The scenario kind.
    pub fn kind(&self) -> ScenarioKind {
        self.kind
    }

    /// The generated world.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Frames per second of the camera (paper constraint: ≥ 10).
    pub fn fps(&self) -> f64 {
        self.fps
    }

    /// Ego speed in m/s.
    pub fn speed_mps(&self) -> f64 {
        match self.kind {
            ScenarioKind::UrbanDrive => 11.0,   // ~40 km/h
            ScenarioKind::HighwayCruise => 28.0, // ~100 km/h
            ScenarioKind::ParkingLot => 2.0,
        }
    }

    /// Ground-truth ego pose at a frame index.
    ///
    /// Urban drives weave gently, highway runs straight, parking lots
    /// trace tight arcs — enough heading variation to exercise the
    /// motion model and steered descriptors.
    pub fn pose_at(&self, frame: u64) -> Pose2 {
        let t = frame as f64 / self.fps;
        let s = self.speed_mps() * t;
        match self.kind {
            ScenarioKind::UrbanDrive => {
                // Gentle S-curves: heading oscillates ±0.15 rad.
                let theta = 0.15 * (s / 40.0).sin();
                Pose2::new(s, 8.0 * (1.0 - (s / 40.0).cos()) * 0.15, theta)
            }
            ScenarioKind::HighwayCruise => Pose2::new(s, 0.0, 0.0),
            ScenarioKind::ParkingLot => {
                // Circle of radius 25 m.
                let r = 25.0;
                let phi = s / r;
                Pose2::new(r * phi.sin(), r * (1.0 - phi.cos()), phi)
            }
        }
    }

    /// A camera for this scenario at a given resolution. The ground
    /// footprint is fixed (80 m × 60 m around the vehicle), so higher
    /// resolutions mean finer ground sampling — the accuracy benefit
    /// the paper's Fig. 13 trades against compute.
    pub fn camera(&self, resolution: Resolution) -> OrthoCamera {
        let footprint_w_m = 80.0;
        OrthoCamera::new(
            resolution.width(),
            resolution.height(),
            footprint_w_m / resolution.width() as f64,
        )
    }

    /// An endless frame stream at the given resolution.
    pub fn stream(&self, resolution: Resolution) -> FrameStream<'_> {
        FrameStream::new(self, resolution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_have_distinct_speeds() {
        let u = Scenario::new(ScenarioKind::UrbanDrive, 1);
        let h = Scenario::new(ScenarioKind::HighwayCruise, 1);
        let p = Scenario::new(ScenarioKind::ParkingLot, 1);
        assert!(h.speed_mps() > u.speed_mps());
        assert!(u.speed_mps() > p.speed_mps());
    }

    #[test]
    fn highway_is_straight_urban_is_not() {
        let h = Scenario::new(ScenarioKind::HighwayCruise, 1);
        assert_eq!(h.pose_at(100).theta, 0.0);
        let u = Scenario::new(ScenarioKind::UrbanDrive, 1);
        let max_theta = (0..100).map(|f| u.pose_at(f).theta.abs()).fold(0.0, f64::max);
        assert!(max_theta > 0.01);
    }

    #[test]
    fn parking_lot_loops_back() {
        let p = Scenario::new(ScenarioKind::ParkingLot, 1);
        // Full circle: 2*pi*25 m at 2 m/s at 10 fps = ~785 frames.
        let start = p.pose_at(0);
        let full = p.pose_at(785);
        assert!(start.distance(&full) < 2.0, "circle should close: {full:?}");
    }

    #[test]
    fn camera_footprint_fixed_across_resolutions() {
        let s = Scenario::new(ScenarioKind::UrbanDrive, 1);
        let lo = s.camera(Resolution::Hhd);
        let hi = s.camera(Resolution::Qhd);
        let w_lo = lo.width() as f64 * lo.meters_per_pixel();
        let w_hi = hi.width() as f64 * hi.meters_per_pixel();
        assert!((w_lo - w_hi).abs() < 1e-9);
        assert!(hi.meters_per_pixel() < lo.meters_per_pixel());
    }

    #[test]
    fn poses_advance_continuously() {
        let s = Scenario::new(ScenarioKind::UrbanDrive, 1);
        for f in 0..50 {
            let step = s.pose_at(f).distance(&s.pose_at(f + 1));
            assert!(step > 0.5 && step < 3.0, "step {step} at frame {f}");
        }
    }
}
