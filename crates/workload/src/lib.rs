//! Synthetic driving workloads: worlds, scenarios and camera frame
//! streams.
//!
//! The paper characterizes its system on KITTI camera sequences
//! (§3.2); those recordings are not redistributable here, so this crate
//! generates equivalent synthetic workloads that exercise the identical
//! code paths: textured landmark beacons for the localization engine,
//! moving objects of the paper's four classes for the detection and
//! tracking engines, scripted vehicle trajectories, and the camera
//! resolutions of the Fig. 13 scalability sweep.
//!
//! # Examples
//!
//! ```
//! use adsim_workload::{Resolution, Scenario, ScenarioKind};
//!
//! let scenario = Scenario::new(ScenarioKind::UrbanDrive, 42);
//! let mut stream = scenario.stream(Resolution::Hhd);
//! let frame = stream.next().unwrap();
//! assert_eq!(frame.index, 0);
//! assert!(!frame.truth_objects.is_empty());
//! ```

mod resolution;
mod scenario;
mod stream;
mod trajectory;
mod world;

pub use resolution::Resolution;
pub use scenario::{Scenario, ScenarioKind};
pub use stream::{Frame, FrameStream};
pub use trajectory::{PoseTrack, TrackReplay, TrajectoryParseError};
pub use world::{
    class_from_intensity, class_intensity, Beacon, Conditions, MovingObject, TruthObject, World,
    WorldParams,
};
