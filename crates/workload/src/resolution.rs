/// Camera resolutions used by the paper.
///
/// Fig. 13 sweeps the five consumer resolutions from half-HD to Quad
/// HD to study scalability; [`Resolution::Kitti`] matches the KITTI
/// sequences used for the baseline characterization (Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resolution {
    /// Half HD, 640×360.
    Hhd,
    /// HD (720p), 1280×720.
    Hd,
    /// HD+, 1600×900.
    HdPlus,
    /// Full HD (1080p), 1920×1080.
    Fhd,
    /// Quad HD (1440p), 2560×1440.
    Qhd,
    /// KITTI camera resolution, 1242×375.
    Kitti,
}

impl Resolution {
    /// The Fig. 13 sweep, ascending pixel count.
    pub const SWEEP: [Resolution; 5] = [
        Resolution::Hhd,
        Resolution::Hd,
        Resolution::HdPlus,
        Resolution::Fhd,
        Resolution::Qhd,
    ];

    /// Width in pixels.
    pub fn width(self) -> usize {
        match self {
            Resolution::Hhd => 640,
            Resolution::Hd => 1280,
            Resolution::HdPlus => 1600,
            Resolution::Fhd => 1920,
            Resolution::Qhd => 2560,
            Resolution::Kitti => 1242,
        }
    }

    /// Height in pixels.
    pub fn height(self) -> usize {
        match self {
            Resolution::Hhd => 360,
            Resolution::Hd => 720,
            Resolution::HdPlus => 900,
            Resolution::Fhd => 1080,
            Resolution::Qhd => 1440,
            Resolution::Kitti => 375,
        }
    }

    /// Total pixels per frame.
    pub fn pixels(self) -> usize {
        self.width() * self.height()
    }

    /// Pixel-count ratio relative to another resolution — the
    /// first-order compute scaling factor for the DNN engines.
    pub fn scale_from(self, base: Resolution) -> f64 {
        self.pixels() as f64 / base.pixels() as f64
    }
}

impl std::fmt::Display for Resolution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Resolution::Hhd => "HHD",
            Resolution::Hd => "HD (720p)",
            Resolution::HdPlus => "HD+",
            Resolution::Fhd => "FHD (1080p)",
            Resolution::Qhd => "QHD (1440p)",
            Resolution::Kitti => "KITTI",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_ascending() {
        for pair in Resolution::SWEEP.windows(2) {
            assert!(pair[0].pixels() < pair[1].pixels());
        }
    }

    #[test]
    fn dimensions_match_standards() {
        assert_eq!((Resolution::Fhd.width(), Resolution::Fhd.height()), (1920, 1080));
        assert_eq!(Resolution::Kitti.pixels(), 1242 * 375);
    }

    #[test]
    fn scale_from_self_is_one() {
        assert_eq!(Resolution::Hd.scale_from(Resolution::Hd), 1.0);
        assert!(Resolution::Qhd.scale_from(Resolution::Hhd) > 15.9);
    }

    #[test]
    fn display_nonempty() {
        for r in Resolution::SWEEP {
            assert!(!r.to_string().is_empty());
        }
    }
}
