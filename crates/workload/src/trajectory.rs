//! Externally supplied ego trajectories.
//!
//! The paper characterizes on recorded KITTI drives; this module lets
//! users replay their own recorded trajectories (e.g. converted KITTI
//! odometry ground truth) through the synthetic worlds instead of the
//! built-in scripted routes. The format is a plain CSV of
//! `time_s,x_m,y_m,theta_rad` rows, with `#` comments.

use adsim_vision::{geometry::normalize_angle, Pose2};

/// Errors parsing a trajectory file.
#[derive(Debug, Clone, PartialEq)]
pub enum TrajectoryParseError {
    /// A row did not have exactly four comma-separated fields.
    BadFieldCount {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        found: usize,
    },
    /// A field failed to parse as a number.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The offending field text.
        field: String,
    },
    /// A field parsed as a number but was NaN or infinite. Accepting
    /// these would poison every downstream interpolation and search.
    NonFiniteNumber {
        /// 1-based line number.
        line: usize,
        /// The offending field text.
        field: String,
    },
    /// Timestamps must be strictly increasing.
    NonMonotonicTime {
        /// 1-based line number.
        line: usize,
    },
    /// The file contained no data rows.
    Empty,
}

impl std::fmt::Display for TrajectoryParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrajectoryParseError::BadFieldCount { line, found } => {
                write!(f, "line {line}: expected 4 fields (t,x,y,theta), found {found}")
            }
            TrajectoryParseError::BadNumber { line, field } => {
                write!(f, "line {line}: could not parse number from {field:?}")
            }
            TrajectoryParseError::NonFiniteNumber { line, field } => {
                write!(f, "line {line}: non-finite number {field:?}")
            }
            TrajectoryParseError::NonMonotonicTime { line } => {
                write!(f, "line {line}: timestamps must be strictly increasing")
            }
            TrajectoryParseError::Empty => write!(f, "trajectory contains no data rows"),
        }
    }
}

impl std::error::Error for TrajectoryParseError {}

/// A time-stamped pose track with linear interpolation.
///
/// # Examples
///
/// ```
/// use adsim_workload::PoseTrack;
///
/// let track = PoseTrack::from_csv_str(
///     "# t, x, y, theta\n0.0, 0.0, 0.0, 0.0\n1.0, 10.0, 0.0, 0.0\n",
/// )?;
/// let mid = track.pose_at_time(0.5);
/// assert!((mid.x - 5.0).abs() < 1e-9);
/// # Ok::<(), adsim_workload::TrajectoryParseError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PoseTrack {
    times: Vec<f64>,
    poses: Vec<Pose2>,
}

impl PoseTrack {
    /// Parses the `time,x,y,theta` CSV format. Blank lines and lines
    /// starting with `#` are ignored.
    ///
    /// # Errors
    ///
    /// Returns a [`TrajectoryParseError`] describing the first
    /// offending line.
    pub fn from_csv_str(text: &str) -> Result<PoseTrack, TrajectoryParseError> {
        let mut times = Vec::new();
        let mut poses = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
            if fields.len() != 4 {
                return Err(TrajectoryParseError::BadFieldCount { line, found: fields.len() });
            }
            let mut nums = [0.0f64; 4];
            for (n, f) in nums.iter_mut().zip(&fields) {
                *n = f.parse().map_err(|_| TrajectoryParseError::BadNumber {
                    line,
                    field: (*f).to_string(),
                })?;
                // "nan"/"inf" parse successfully but would panic the
                // time binary search and poison interpolation later;
                // reject them at the boundary instead.
                if !n.is_finite() {
                    return Err(TrajectoryParseError::NonFiniteNumber {
                        line,
                        field: (*f).to_string(),
                    });
                }
            }
            if let Some(&last) = times.last() {
                if nums[0] <= last {
                    return Err(TrajectoryParseError::NonMonotonicTime { line });
                }
            }
            times.push(nums[0]);
            poses.push(Pose2::new(nums[1], nums[2], nums[3]));
        }
        if times.is_empty() {
            return Err(TrajectoryParseError::Empty);
        }
        Ok(PoseTrack { times, poses })
    }

    /// Number of recorded poses.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the track is empty (never true for parsed tracks).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Start and end timestamps.
    pub fn time_span(&self) -> (f64, f64) {
        (self.times[0], *self.times.last().expect("nonempty"))
    }

    /// Total path length (m) along the recorded poses.
    pub fn path_length_m(&self) -> f64 {
        self.poses.windows(2).map(|w| w[0].distance(&w[1])).sum()
    }

    /// Pose at an arbitrary time, linearly interpolating position and
    /// heading (shortest-arc). Times outside the span clamp to the
    /// endpoints.
    pub fn pose_at_time(&self, t: f64) -> Pose2 {
        if t <= self.times[0] {
            return self.poses[0];
        }
        let last = self.times.len() - 1;
        if t >= self.times[last] {
            return self.poses[last];
        }
        let i = match self.times.binary_search_by(|v| v.total_cmp(&t)) {
            Ok(i) => return self.poses[i],
            Err(i) => i - 1,
        };
        let (t0, t1) = (self.times[i], self.times[i + 1]);
        let w = (t - t0) / (t1 - t0);
        let (a, b) = (self.poses[i], self.poses[i + 1]);
        let dtheta = normalize_angle(b.theta - a.theta);
        Pose2::new(
            a.x + (b.x - a.x) * w,
            a.y + (b.y - a.y) * w,
            a.theta + dtheta * w,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# KITTI-style converted ground truth
0.0, 0.0, 0.0, 0.0
0.5, 5.0, 0.0, 0.1

1.0, 10.0, 1.0, 0.2
";

    #[test]
    fn parses_comments_and_blank_lines() {
        let track = PoseTrack::from_csv_str(SAMPLE).unwrap();
        assert_eq!(track.len(), 3);
        assert_eq!(track.time_span(), (0.0, 1.0));
    }

    #[test]
    fn interpolates_between_rows() {
        let track = PoseTrack::from_csv_str(SAMPLE).unwrap();
        let p = track.pose_at_time(0.25);
        assert!((p.x - 2.5).abs() < 1e-9);
        assert!((p.theta - 0.05).abs() < 1e-9);
        // Exact hits return the row.
        assert_eq!(track.pose_at_time(0.5), Pose2::new(5.0, 0.0, 0.1));
    }

    #[test]
    fn clamps_outside_the_span() {
        let track = PoseTrack::from_csv_str(SAMPLE).unwrap();
        assert_eq!(track.pose_at_time(-10.0), track.pose_at_time(0.0));
        assert_eq!(track.pose_at_time(99.0), Pose2::new(10.0, 1.0, 0.2));
    }

    #[test]
    fn heading_interpolates_across_the_wrap() {
        let text = "0.0, 0.0, 0.0, 3.1\n1.0, 1.0, 0.0, -3.1\n";
        let track = PoseTrack::from_csv_str(text).unwrap();
        let mid = track.pose_at_time(0.5);
        // Shortest arc passes through ±π, not through 0.
        assert!(mid.theta.abs() > 3.0, "theta {}", mid.theta);
    }

    #[test]
    fn path_length_sums_segments() {
        let track = PoseTrack::from_csv_str(SAMPLE).unwrap();
        let expect = 5.0 + (25.0f64 + 1.0).sqrt();
        assert!((track.path_length_m() - expect).abs() < 1e-9);
    }

    #[test]
    fn rejects_malformed_input() {
        assert_eq!(
            PoseTrack::from_csv_str("1.0, 2.0, 3.0").unwrap_err(),
            TrajectoryParseError::BadFieldCount { line: 1, found: 3 }
        );
        assert!(matches!(
            PoseTrack::from_csv_str("0, 0, 0, x").unwrap_err(),
            TrajectoryParseError::BadNumber { line: 1, .. }
        ));
        assert_eq!(
            PoseTrack::from_csv_str("1.0,0,0,0\n1.0,1,1,0\n").unwrap_err(),
            TrajectoryParseError::NonMonotonicTime { line: 2 }
        );
        assert_eq!(PoseTrack::from_csv_str("# only comments\n").unwrap_err(), TrajectoryParseError::Empty);
    }

    #[test]
    fn rejects_non_finite_numbers() {
        // `"nan".parse::<f64>()` succeeds; before this check a NaN
        // timestamp panicked pose_at_time's binary search at use time
        // instead of failing at the parse boundary.
        for bad in ["nan, 0, 0, 0", "inf, 0, 0, 0", "0, 0, NaN, 0"] {
            assert!(
                matches!(
                    PoseTrack::from_csv_str(bad).unwrap_err(),
                    TrajectoryParseError::NonFiniteNumber { line: 1, .. }
                ),
                "{bad:?} must be rejected"
            );
        }
    }
}

/// Replays a recorded trajectory through a world, producing the same
/// [`Frame`](crate::Frame)s a scripted scenario would — the path for
/// running the pipeline on externally captured drives.
#[derive(Debug)]
pub struct TrackReplay<'a> {
    world: &'a crate::World,
    camera: adsim_vision::OrthoCamera,
    track: &'a PoseTrack,
    fps: f64,
    next_index: u64,
}

impl<'a> TrackReplay<'a> {
    /// Creates a replay over `track` sampled at `fps`.
    ///
    /// # Panics
    ///
    /// Panics if `fps` is not positive.
    pub fn new(
        world: &'a crate::World,
        camera: adsim_vision::OrthoCamera,
        track: &'a PoseTrack,
        fps: f64,
    ) -> Self {
        assert!(fps > 0.0, "frame rate must be positive");
        Self { world, camera, track, fps, next_index: 0 }
    }
}

impl Iterator for TrackReplay<'_> {
    type Item = crate::Frame;

    fn next(&mut self) -> Option<crate::Frame> {
        let (t0, t1) = self.track.time_span();
        let time_s = t0 + self.next_index as f64 / self.fps;
        if time_s > t1 {
            return None;
        }
        let index = self.next_index;
        self.next_index += 1;
        let truth_pose = self.track.pose_at_time(time_s);
        Some(crate::Frame {
            index,
            time_s,
            truth_pose,
            image: self.world.render(&self.camera, &truth_pose, time_s),
            truth_objects: self.world.truth_objects(&self.camera, &truth_pose, time_s),
        })
    }
}

#[cfg(test)]
mod replay_tests {
    use super::*;
    use crate::{World, WorldParams};
    use adsim_vision::OrthoCamera;

    #[test]
    fn replay_ends_at_the_track_end() {
        let world = World::generate(1, &WorldParams::default());
        let camera = OrthoCamera::new(160, 120, 0.5);
        let track =
            PoseTrack::from_csv_str("0.0,0,0,0\n1.0,10,0,0\n2.0,20,0,0\n").unwrap();
        let frames: Vec<_> = TrackReplay::new(&world, camera, &track, 10.0).collect();
        assert_eq!(frames.len(), 21, "0..=2.0 s at 10 FPS inclusive");
        assert!((frames[10].truth_pose.x - 10.0).abs() < 1e-9);
        assert_eq!(frames[5].image.width(), 160);
    }

    #[test]
    fn replay_respects_the_camera_and_world() {
        let world = World::generate(2, &WorldParams::default());
        let camera = OrthoCamera::new(80, 60, 1.0);
        let track = PoseTrack::from_csv_str("0.0,0,0,0\n0.5,5,0,0\n").unwrap();
        let mut replay = TrackReplay::new(&world, camera, &track, 10.0);
        let f = replay.next().unwrap();
        // Identical rendering to calling the world directly.
        assert_eq!(f.image, world.render(&camera, &f.truth_pose, f.time_s));
    }
}
