use crate::scenario::Scenario;
use crate::world::TruthObject;
use crate::Resolution;
use adsim_vision::{GrayImage, OrthoCamera, Pose2};

/// One camera frame with ground truth.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Frame index (0-based).
    pub index: u64,
    /// Capture time in seconds.
    pub time_s: f64,
    /// Ground-truth ego pose.
    pub truth_pose: Pose2,
    /// The rendered camera image.
    pub image: GrayImage,
    /// Ground-truth visible objects.
    pub truth_objects: Vec<TruthObject>,
}

/// An endless iterator of rendered frames for a scenario.
///
/// # Examples
///
/// ```
/// use adsim_workload::{Resolution, Scenario, ScenarioKind};
///
/// let scenario = Scenario::new(ScenarioKind::ParkingLot, 9);
/// let frames: Vec<_> = scenario.stream(Resolution::Hhd).take(3).collect();
/// assert_eq!(frames.len(), 3);
/// assert!(frames[2].time_s > frames[1].time_s);
/// ```
#[derive(Debug)]
pub struct FrameStream<'a> {
    scenario: &'a Scenario,
    camera: OrthoCamera,
    next_index: u64,
}

impl<'a> FrameStream<'a> {
    /// Creates a stream at frame 0.
    pub fn new(scenario: &'a Scenario, resolution: Resolution) -> Self {
        Self { scenario, camera: scenario.camera(resolution), next_index: 0 }
    }

    /// The camera used for rendering.
    pub fn camera(&self) -> &OrthoCamera {
        &self.camera
    }

    /// Skips ahead without rendering.
    pub fn seek(&mut self, index: u64) {
        self.next_index = index;
    }
}

impl Iterator for FrameStream<'_> {
    type Item = Frame;

    fn next(&mut self) -> Option<Frame> {
        let index = self.next_index;
        self.next_index += 1;
        let time_s = index as f64 / self.scenario.fps();
        let truth_pose = self.scenario.pose_at(index);
        let world = self.scenario.world();
        Some(Frame {
            index,
            time_s,
            truth_pose,
            image: world.render(&self.camera, &truth_pose, time_s),
            truth_objects: world.truth_objects(&self.camera, &truth_pose, time_s),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScenarioKind;

    #[test]
    fn frames_are_sequential_and_timed() {
        let s = Scenario::new(ScenarioKind::UrbanDrive, 3);
        let frames: Vec<_> = s.stream(Resolution::Hhd).take(5).collect();
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.index, i as u64);
            assert!((f.time_s - i as f64 / 10.0).abs() < 1e-12);
        }
    }

    #[test]
    fn seek_skips_frames() {
        let s = Scenario::new(ScenarioKind::UrbanDrive, 3);
        let mut stream = s.stream(Resolution::Hhd);
        stream.seek(100);
        let f = stream.next().unwrap();
        assert_eq!(f.index, 100);
        assert!(f.truth_pose.x > 50.0);
    }

    #[test]
    fn image_matches_requested_resolution() {
        let s = Scenario::new(ScenarioKind::ParkingLot, 3);
        let f = s.stream(Resolution::Hd).next().unwrap();
        assert_eq!(f.image.width(), 1280);
        assert_eq!(f.image.height(), 720);
    }

    #[test]
    fn truth_objects_have_normalized_boxes() {
        let s = Scenario::new(ScenarioKind::UrbanDrive, 3);
        for f in s.stream(Resolution::Hhd).take(3) {
            for t in &f.truth_objects {
                assert!(t.bbox.cx >= 0.0 && t.bbox.cx <= 1.0);
                assert!(t.bbox.cy >= 0.0 && t.bbox.cy <= 1.0);
                assert!(t.bbox.w > 0.0 && t.bbox.h > 0.0);
            }
        }
    }
}
