//! Graceful-degradation supervisor for the driving pipeline.
//!
//! The paper's constraint (§2.4.1) is a tail statement: the pipeline
//! must hold 100 ms at the 99.99th percentile, and the 0.01% of frames
//! that threaten it are the faulty ones. This module wraps a pipeline
//! with a per-stage watchdog, bounded retry with backoff, and explicit
//! degraded modes, so component failure degrades service instead of
//! ending it:
//!
//! * **tracker-only perception** when detection misses its budget or
//!   its worker stalls past the retry limit — the tracker pool keeps
//!   predicting existing objects with no fresh detections;
//! * **odometry dead-reckoning** when SLAM loses lock — the last
//!   observed pose is extrapolated by the recent frame-to-frame motion
//!   and fed to fusion in place of a localization fix;
//! * **planner speed reduction / safe stop** when confidence collapses
//!   (sustained lock loss or sensor blackout) — commanded speed is
//!   capped, then the plan is replaced by an emergency stop until the
//!   pipeline has been healthy for a configured number of frames;
//! * **anytime quality reduction** when the predictive deadline
//!   governor (`adsim-anytime`) forecasts that the current quality
//!   level will miss the frame budget — detector resolution, model
//!   variant and tracker-pool capacity are stepped down a calibrated
//!   ladder *before* the reactive watchdog would have to abandon the
//!   stage, and stepped back up when the forecast clears.
//!
//! Every transition is recorded in a typed [`DegradationEvent`] log.
//! Decisions gate **only** on injected (virtual) fault state and on
//! deterministic pipeline outputs — never on measured wall-clock time
//! — so a seeded campaign produces a bit-identical event log on any
//! runtime thread count, while wall clock is still folded into the
//! *reported* latency for deadline accounting.

use crate::modeled::{FrameLatency, ModeledPipeline, PipelineStats};
use crate::native::{NativeFrameResult, NativePipeline, PipelineSnapshot, ProcessControl};
use adsim_anytime::{
    AnytimeConfig, Governor, GovernorEvent, QualityKnobs, STAGE_DET, STAGE_FUS, STAGE_LOC,
    STAGE_MOT, STAGE_TRA,
};
use adsim_dnn::detection::Detection;
use adsim_faults::{
    blackout_frame, corrupt_pixels, FaultInjector, FaultStage, FrameFaults, InjectedCrash,
};
use adsim_guard::{digest_image, GuardConfig, GuardEvent, GuardStats, Monitor, PipelineGuard};
use adsim_perception::BatchRequest;
use adsim_planning::MotionPlan;
use adsim_stats::LatencyRecorder;
use adsim_telemetry::{DumpTrigger, FlightDump, FlightRecorder, FrameRecord, VehicleScope};
use adsim_vision::{GrayImage, Pose2};

/// Localization cost charged while dead-reckoning in the modeled
/// pipeline (a constant-time pose extrapolation, ms).
const DEAD_RECKON_MS: f64 = 0.05;

/// A degraded operating mode. Several can be active at once (e.g. a
/// blackout forces tracker-only *and*, once sustained, a safe stop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedMode {
    /// Detection unavailable; perception runs on tracker predictions.
    TrackerOnly,
    /// Localization unavailable; pose is extrapolated odometry.
    DeadReckoning,
    /// Commanded speed capped while another mode is active.
    SpeedReduced,
    /// Confidence collapsed; the plan is an emergency stop.
    SafeStop,
    /// The anytime governor is running perception below full quality
    /// to protect the frame deadline.
    QualityReduced,
}

impl std::fmt::Display for DegradedMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DegradedMode::TrackerOnly => "tracker-only",
            DegradedMode::DeadReckoning => "dead-reckoning",
            DegradedMode::SpeedReduced => "speed-reduced",
            DegradedMode::SafeStop => "safe-stop",
            DegradedMode::QualityReduced => "quality-reduced",
        };
        f.write_str(s)
    }
}

/// Why a degraded mode was entered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DegradationCause {
    /// The detection watchdog fired: the stage's virtual latency
    /// exceeded the per-stage budget.
    DetectionOverBudget {
        /// Virtual stage latency that tripped the watchdog (ms).
        virtual_ms: f64,
    },
    /// Detection's worker stalled and the retry budget ran out.
    DetectionStalled {
        /// Attempts the stalled worker needed (beyond the budget).
        attempts: u32,
    },
    /// The localizer produced no pose.
    LockLost {
        /// Whether the loss was injected (vs. a natural miss).
        injected: bool,
    },
    /// Entered alongside another degraded mode (speed reduction).
    AccompanyingDegradation,
    /// Sustained loss of perception confidence.
    ConfidenceCollapse {
        /// Consecutive frames without a pose.
        lost_frames: u32,
        /// Consecutive blacked-out frames.
        blackout_frames: u32,
    },
    /// A safety monitor rejected a stage output or a delivered sensor
    /// payload (see `adsim-guard`).
    MonitorTripped {
        /// The monitor that tripped.
        monitor: Monitor,
    },
    /// The anytime governor forecast a deadline miss at the current
    /// quality level and degraded pre-emptively.
    PredictedMiss {
        /// Forecast end-to-end latency that triggered the step-down
        /// (ms, at the quality level in force when it was made).
        predicted_ms: f64,
    },
    /// The recovery layer's restart budget ran out: the vehicle keeps
    /// crashing faster than checkpoints can carry it forward, so the
    /// only safe terminal state is a parked vehicle.
    RestartsExhausted {
        /// Restarts attempted before giving up.
        restarts: u64,
    },
}

impl std::fmt::Display for DegradationCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradationCause::DetectionOverBudget { virtual_ms } => {
                write!(f, "detection over budget ({virtual_ms:.1} ms virtual)")
            }
            DegradationCause::DetectionStalled { attempts } => {
                write!(f, "detection worker stalled ({attempts} attempts)")
            }
            DegradationCause::LockLost { injected: true } => write!(f, "injected lock loss"),
            DegradationCause::LockLost { injected: false } => write!(f, "localization miss"),
            DegradationCause::AccompanyingDegradation => write!(f, "accompanying degradation"),
            DegradationCause::ConfidenceCollapse { lost_frames, blackout_frames } => write!(
                f,
                "confidence collapse ({lost_frames} lost / {blackout_frames} blacked-out frames)"
            ),
            DegradationCause::MonitorTripped { monitor } => {
                write!(f, "safety monitor tripped ({monitor})")
            }
            DegradationCause::PredictedMiss { predicted_ms } => {
                write!(f, "predicted deadline miss ({predicted_ms:.1} ms forecast)")
            }
            DegradationCause::RestartsExhausted { restarts } => {
                write!(f, "restart budget exhausted ({restarts} restarts)")
            }
        }
    }
}

/// One entry of the supervisor's transition log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationEvent {
    /// Frame index the transition happened on.
    pub frame: u64,
    /// The transition.
    pub kind: DegradationEventKind,
}

/// Supervisor state-machine transitions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DegradationEventKind {
    /// A degraded mode became active.
    Entered {
        /// The mode.
        mode: DegradedMode,
        /// Why.
        cause: DegradationCause,
    },
    /// A degraded mode cleared.
    Exited {
        /// The mode.
        mode: DegradedMode,
        /// Frames the mode was active.
        frames_degraded: u64,
    },
    /// A stalled stage was retried.
    Retry {
        /// The stage retried.
        stage: FaultStage,
        /// Attempt number (1-based).
        attempt: u32,
        /// Backoff charged before this attempt (ms).
        backoff_ms: f64,
    },
    /// The recovery layer restored the last checkpoint and replayed
    /// the gap after an injected stage crash — the restart escalation
    /// rung above retry and below safe stop.
    Restart {
        /// Stage whose crash triggered the restart.
        stage: FaultStage,
        /// Frame index the restored checkpoint resumes from.
        checkpoint_frame: u64,
        /// Frames deterministically replayed to reach the crash frame.
        replayed: u64,
    },
}

impl std::fmt::Display for DegradationEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "frame {:>5}: ", self.frame)?;
        match self.kind {
            DegradationEventKind::Entered { mode, cause } => {
                write!(f, "entered {mode} ({cause})")
            }
            DegradationEventKind::Exited { mode, frames_degraded } => {
                write!(f, "exited {mode} after {frames_degraded} frame(s)")
            }
            DegradationEventKind::Retry { stage, attempt, backoff_ms } => {
                write!(f, "retry {attempt} on {stage} (backoff {backoff_ms:.1} ms)")
            }
            DegradationEventKind::Restart { stage, checkpoint_frame, replayed } => {
                write!(
                    f,
                    "restart after {stage} crash (checkpoint {checkpoint_frame}, \
                     replayed {replayed} frame(s))"
                )
            }
        }
    }
}

/// Supervisor tuning. The defaults fit the paper's 100 ms / 10 FPS
/// operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorConfig {
    /// Per-stage watchdog budget on *virtual* (injected) latency (ms);
    /// a stage exceeding it is abandoned for the frame.
    pub stage_budget_ms: f64,
    /// Retry budget for a stalled stage worker.
    pub max_retries: u32,
    /// Base retry backoff (ms), doubling per attempt.
    pub retry_backoff_ms: f64,
    /// Consecutive pose-less frames before a safe stop.
    pub lock_loss_safe_stop: u32,
    /// Consecutive blacked-out frames before a safe stop.
    pub blackout_safe_stop: u32,
    /// Consecutive healthy frames required to exit a safe stop.
    pub recover_frames: u32,
    /// Speed multiplier while speed-reduced.
    pub degraded_speed_factor: f64,
    /// End-to-end deadline for reported-latency accounting (ms).
    pub deadline_ms: f64,
    /// Safety-monitor and data-plane configuration (native supervisor
    /// only; the modeled mirror has no stage payloads to check).
    pub guard: GuardConfig,
    /// Predictive deadline governor. Disabled by default — with the
    /// governor off the supervisor is byte-identical to the pre-anytime
    /// policy (no knob is ever touched, no event is ever emitted).
    pub anytime: AnytimeConfig,
    /// Vehicle id stamped onto telemetry series and flight-recorder
    /// dumps. The fleet engine overwrites it with the cell's spec
    /// index; standalone supervisors report as vehicle 0.
    pub vehicle: u32,
    /// Flight-recorder window: how many of the most recent frames the
    /// black-box ring retains for post-mortem dumps.
    pub flight_frames: usize,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            stage_budget_ms: 50.0,
            max_retries: 2,
            retry_backoff_ms: 2.0,
            lock_loss_safe_stop: 6,
            blackout_safe_stop: 4,
            recover_frames: 3,
            degraded_speed_factor: 0.5,
            deadline_ms: 100.0,
            guard: GuardConfig::default(),
            anytime: AnytimeConfig::off(),
            vehicle: 0,
            flight_frames: 32,
        }
    }
}

/// Recovery metrics over a supervised run — the fault-campaign
/// counterpart of [`crate::DeadlineStats`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RecoveryStats {
    /// Frames processed.
    pub frames: u64,
    /// Frames with at least one degraded mode active.
    pub frames_degraded: u64,
    /// Completed degradation episodes (entered and fully recovered).
    pub episodes: u64,
    /// Total time-to-recover over completed episodes (frames).
    pub recover_frames_total: u64,
    /// Longest completed episode (frames).
    pub max_recover_frames: u64,
    /// Safe stops commanded.
    pub safe_stops: u64,
    /// Frames spent in safe stop.
    pub safe_stop_frames: u64,
    /// Stage retries performed.
    pub retries: u64,
    /// Frames whose reported latency missed the deadline.
    pub deadline_misses: u64,
    /// Frames whose *virtual* end-to-end cost (nominal stage costs at
    /// the active quality level plus injected latency, before the
    /// watchdog clamp) exceeded the deadline — the deterministic miss
    /// count the anytime governor is judged on.
    pub virtual_deadline_misses: u64,
    /// Quality-level switches the anytime governor performed.
    pub quality_switches: u64,
    /// Frames spent below full quality.
    pub quality_reduced_frames: u64,
    /// Injected stage crashes the recovery layer contained (counted
    /// when the crash is recorded post-restore, so the count survives
    /// later checkpoint restores).
    pub crashes: u64,
    /// Checkpoint restarts performed after crashes.
    pub restarts: u64,
    /// Frames deterministically replayed across all restarts. Replayed
    /// frames settle again, so `frames` also counts the re-execution —
    /// the honest cost of recovery.
    pub replayed_frames: u64,
    /// Whether a degradation episode was still open at the end.
    pub degraded_at_end: bool,
}

impl RecoveryStats {
    /// Mean time-to-recover over completed episodes (frames).
    pub fn mean_time_to_recover(&self) -> f64 {
        if self.episodes == 0 {
            0.0
        } else {
            self.recover_frames_total as f64 / self.episodes as f64
        }
    }

    /// Fraction of frames spent degraded.
    pub fn degraded_rate(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.frames_degraded as f64 / self.frames as f64
        }
    }

    /// Fraction of frames whose reported latency missed the deadline.
    pub fn miss_rate(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.frames as f64
        }
    }

    /// Fraction of frames whose virtual end-to-end cost missed the
    /// deadline (deterministic; identical across runtimes and worker
    /// counts for a given seed).
    pub fn virtual_miss_rate(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.virtual_deadline_misses as f64 / self.frames as f64
        }
    }
}

/// Which degraded modes are active after a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ActiveModes {
    /// Detection unavailable.
    pub tracker_only: bool,
    /// Pose is dead-reckoned.
    pub dead_reckoning: bool,
    /// Speed capped.
    pub speed_reduced: bool,
    /// Emergency stop commanded.
    pub safe_stop: bool,
    /// Perception running below full quality (anytime governor).
    pub quality_reduced: bool,
}

impl ActiveModes {
    /// True when any mode is active.
    pub fn any(&self) -> bool {
        self.tracker_only
            || self.dead_reckoning
            || self.speed_reduced
            || self.safe_stop
            || self.quality_reduced
    }
}

/// Stage dispositions for one frame, derived from the fault schedule
/// before the pipeline runs.
#[derive(Debug, Clone, Copy)]
struct StagePlan {
    skip_detection: bool,
    skip_localization: bool,
    /// Virtual latency added per stage (spikes + stall retries +
    /// latency drift), after the watchdog clamp.
    extra: FrameLatency,
    /// Why detection was skipped, when it was.
    detection_cause: Option<DegradationCause>,
    /// Quality knobs the governor commands for this frame (`None`
    /// when the governor is disabled — no knob is touched).
    quality: Option<QualityKnobs>,
    /// Virtual end-to-end cost of the frame: nominal stage costs at
    /// the active quality level plus pre-clamp injected latency.
    virtual_e2e_ms: f64,
}

/// What the supervisor does to the plan after the frame.
#[derive(Debug, Clone, Copy)]
struct Verdict {
    safe_stop: bool,
    speed_factor: Option<f64>,
}

/// Which guard monitors tripped this frame, folded into the settle
/// decision. The modeled mirror has no stage payloads, so it settles
/// with the default (all clear).
#[derive(Debug, Clone, Copy, Default)]
struct MonitorFlags {
    detection: bool,
    tracker: bool,
    localization: bool,
    planner: bool,
    data: bool,
}

impl MonitorFlags {
    /// Perception-side trips: distrust the inputs, cap the speed.
    fn soft(&self) -> bool {
        self.detection || self.tracker || self.localization || self.data
    }

    /// Any trip at all (blocks the healthy streak).
    fn any(&self) -> bool {
        self.soft() || self.planner
    }

    /// The first tripped perception-side monitor, boundary order, for
    /// the transition log.
    fn first_soft(&self) -> Option<Monitor> {
        if self.data {
            Some(Monitor::DataPlane)
        } else if self.detection {
            Some(Monitor::Detection)
        } else if self.tracker {
            Some(Monitor::Tracker)
        } else if self.localization {
            Some(Monitor::Localization)
        } else {
            None
        }
    }
}

/// The shared watchdog + degraded-mode state machine. Both the native
/// [`Supervisor`] and the [`ModeledSupervisor`] mirror drive this one
/// policy, so their transition semantics cannot drift apart.
#[derive(Debug, Clone)]
struct SupervisorCore {
    cfg: SupervisorConfig,
    governor: Governor,
    tracker_only_since: Option<u64>,
    dead_reck_since: Option<u64>,
    speed_red_since: Option<u64>,
    safe_stop_since: Option<u64>,
    quality_since: Option<u64>,
    consecutive_lost: u32,
    consecutive_blackout: u32,
    healthy_streak: u32,
    episode_start: Option<u64>,
    /// Terminal latch set when the crash-restart budget is exhausted:
    /// the vehicle parks (SafeStop) and never recovers out of it.
    terminal_safe_stop: bool,
    events: Vec<DegradationEvent>,
    stats: RecoveryStats,
    // Odometry for dead-reckoning: last observed pose, last observed
    // frame-to-frame motion, and the extrapolated estimate.
    last_pose: Option<Pose2>,
    delta: Option<(f64, f64, f64)>,
    reckon: Option<Pose2>,
    // Black-box ring of the most recent frames, always on (bounded
    // memory, virtual-clock content only), and the dumps it produced.
    recorder: FlightRecorder,
    dumps: Vec<FlightDump>,
}

/// Static trace-instant name for a mode transition, so degraded-mode
/// changes show up on the Chrome-trace timeline next to the stage
/// spans they interrupt.
fn transition_instant(mode: DegradedMode, entered: bool) -> &'static str {
    match (mode, entered) {
        (DegradedMode::TrackerOnly, true) => "degrade.enter.tracker-only",
        (DegradedMode::TrackerOnly, false) => "degrade.exit.tracker-only",
        (DegradedMode::DeadReckoning, true) => "degrade.enter.dead-reckoning",
        (DegradedMode::DeadReckoning, false) => "degrade.exit.dead-reckoning",
        (DegradedMode::SpeedReduced, true) => "degrade.enter.speed-reduced",
        (DegradedMode::SpeedReduced, false) => "degrade.exit.speed-reduced",
        (DegradedMode::SafeStop, true) => "degrade.enter.safe-stop",
        (DegradedMode::SafeStop, false) => "degrade.exit.safe-stop",
        (DegradedMode::QualityReduced, true) => "degrade.enter.quality-reduced",
        (DegradedMode::QualityReduced, false) => "degrade.exit.quality-reduced",
    }
}

/// Stable telemetry label for a degraded mode.
fn mode_label(mode: DegradedMode) -> &'static str {
    match mode {
        DegradedMode::TrackerOnly => "tracker-only",
        DegradedMode::DeadReckoning => "dead-reckoning",
        DegradedMode::SpeedReduced => "speed-reduced",
        DegradedMode::SafeStop => "safe-stop",
        DegradedMode::QualityReduced => "quality-reduced",
    }
}

/// Stable telemetry label for a pipeline stage (predictor index order).
const STAGE_LABELS: [&str; 5] = ["det", "tra", "loc", "fus", "mot"];

/// Packs a frame's injected faults into [`FrameRecord::fault_bits`].
fn fault_bits(faults: &FrameFaults) -> u16 {
    use adsim_telemetry as t;
    let mut bits = 0u16;
    if faults.blackout {
        bits |= t::FAULT_BLACKOUT;
    }
    if faults.stuck {
        bits |= t::FAULT_STUCK;
    }
    if faults.pixel_corruption.is_some() {
        bits |= t::FAULT_CORRUPT;
    }
    if !faults.spikes.is_empty() {
        bits |= t::FAULT_SPIKE;
    }
    if faults.lock_loss {
        bits |= t::FAULT_LOCK_LOSS;
    }
    if faults.tracker_shift.is_some() {
        bits |= t::FAULT_TRACKER_SHIFT;
    }
    if faults.stall.is_some() {
        bits |= t::FAULT_STALL;
    }
    if faults.time_skew_s.is_some() {
        bits |= t::FAULT_TIME_SKEW;
    }
    if !faults.drift.is_empty() {
        bits |= t::FAULT_DRIFT;
    }
    if faults.crash.is_some() {
        bits |= t::FAULT_CRASH;
    }
    bits
}

/// Maps a fault stage onto the anytime predictor's stage index.
fn stage_index(stage: FaultStage) -> usize {
    match stage {
        FaultStage::Detection => STAGE_DET,
        FaultStage::Tracking => STAGE_TRA,
        FaultStage::Localization => STAGE_LOC,
        FaultStage::Fusion => STAGE_FUS,
        FaultStage::MotionPlanning => STAGE_MOT,
    }
}

/// Emits an enter/exit event when a mode's desired state changes.
fn toggle_mode(
    slot: &mut Option<u64>,
    events: &mut Vec<DegradationEvent>,
    stats: &mut RecoveryStats,
    mode: DegradedMode,
    want: bool,
    cause: DegradationCause,
    frame: u64,
) {
    match (*slot, want) {
        (None, true) => {
            *slot = Some(frame);
            events.push(DegradationEvent { frame, kind: DegradationEventKind::Entered { mode, cause } });
            adsim_trace::instant(transition_instant(mode, true));
            adsim_telemetry::counter_add("sup_mode_enter_total", mode_label(mode), 1);
            if mode == DegradedMode::SafeStop {
                stats.safe_stops += 1;
                adsim_telemetry::counter_add("sup_safe_stop_total", "", 1);
            }
        }
        (Some(since), false) => {
            *slot = None;
            events.push(DegradationEvent {
                frame,
                kind: DegradationEventKind::Exited { mode, frames_degraded: frame - since },
            });
            adsim_trace::instant(transition_instant(mode, false));
            adsim_telemetry::counter_add("sup_mode_exit_total", mode_label(mode), 1);
        }
        _ => {}
    }
}

impl SupervisorCore {
    fn new(cfg: SupervisorConfig) -> Self {
        let governor = Governor::new(cfg.anytime.clone());
        let recorder = FlightRecorder::new(cfg.flight_frames);
        Self {
            cfg,
            governor,
            recorder,
            dumps: Vec::new(),
            tracker_only_since: None,
            dead_reck_since: None,
            speed_red_since: None,
            safe_stop_since: None,
            quality_since: None,
            consecutive_lost: 0,
            consecutive_blackout: 0,
            healthy_streak: 0,
            episode_start: None,
            terminal_safe_stop: false,
            events: Vec::new(),
            stats: RecoveryStats::default(),
            last_pose: None,
            delta: None,
            reckon: None,
        }
    }

    /// Plans stage dispositions from the frame's fault schedule: runs
    /// the anytime governor's quality decision, retries stalled
    /// workers (bounded, exponential backoff), charges latency drift
    /// against the active quality level's nominal stage costs, feeds
    /// the pre-clamp virtual latencies to the governor's predictor,
    /// then applies the per-stage watchdog.
    fn plan(&mut self, faults: &FrameFaults) -> StagePlan {
        let frame = faults.frame;
        // The governor decides *first*, on last frame's forecast, so
        // a pre-emptive step-down shrinks this frame's drift charge —
        // that is the whole mechanism by which it averts the miss.
        self.governor.decide(frame, self.cfg.stage_budget_ms, self.cfg.deadline_ms);
        let mut extra = FrameLatency {
            detection: 0.0,
            tracking: 0.0,
            localization: 0.0,
            fusion: 0.0,
            motion_planning: 0.0,
        };
        for &(stage, ms) in &faults.spikes {
            match stage {
                FaultStage::Detection => extra.detection += ms,
                FaultStage::Tracking => extra.tracking += ms,
                FaultStage::Localization => extra.localization += ms,
                FaultStage::Fusion => extra.fusion += ms,
                FaultStage::MotionPlanning => extra.motion_planning += ms,
            }
        }

        let mut skip_detection = false;
        let mut detection_cause = None;
        if let Some(stall) = faults.stall {
            // Hard cap independent of config: beyond 32 doublings the
            // backoff alone exceeds any sane stage budget, and the cap
            // keeps the `u32 → i32` exponent cast below wrap range no
            // matter what `max_retries` a config asks for.
            const RETRY_HARD_CAP: u32 = 32;
            let attempts_run = stall.attempts.min(self.cfg.max_retries).min(RETRY_HARD_CAP);
            let mut stall_cost = 0.0;
            for attempt in 1..=attempts_run {
                // Each attempt's backoff saturates at the stage budget
                // — the watchdog would abandon the stage there anyway.
                let backoff = (self.cfg.retry_backoff_ms * 2f64.powi(attempt as i32 - 1))
                    .min(self.cfg.stage_budget_ms);
                stall_cost += stall.stall_ms + backoff;
                self.events.push(DegradationEvent {
                    frame,
                    kind: DegradationEventKind::Retry { stage: stall.stage, attempt, backoff_ms: backoff },
                });
                adsim_trace::instant("degrade.retry");
                adsim_telemetry::counter_add(
                    "sup_retry_total",
                    STAGE_LABELS[stage_index(stall.stage)],
                    1,
                );
                self.stats.retries += 1;
            }
            match stall.stage {
                FaultStage::Detection => extra.detection += stall_cost,
                FaultStage::Tracking => extra.tracking += stall_cost,
                FaultStage::Localization => extra.localization += stall_cost,
                FaultStage::Fusion => extra.fusion += stall_cost,
                FaultStage::MotionPlanning => extra.motion_planning += stall_cost,
            }
            if stall.attempts > self.cfg.max_retries && stall.stage == FaultStage::Detection {
                skip_detection = true;
                detection_cause =
                    Some(DegradationCause::DetectionStalled { attempts: stall.attempts });
            }
        }
        // Latency drift is a *multiplicative* load on a stage, so its
        // virtual cost scales with what the stage nominally costs at
        // the quality level in force — a degraded detector pays a
        // proportionally smaller drift tax.
        for &(stage, load) in &faults.drift {
            let charge = (load - 1.0).max(0.0) * self.governor.nominal_stage_ms(stage_index(stage));
            match stage {
                FaultStage::Detection => extra.detection += charge,
                FaultStage::Tracking => extra.tracking += charge,
                FaultStage::Localization => extra.localization += charge,
                FaultStage::Fusion => extra.fusion += charge,
                FaultStage::MotionPlanning => extra.motion_planning += charge,
            }
        }
        // The predictor sees the same pre-clamp virtual latencies the
        // watchdog compares against its budget — the governor never
        // gets information the reactive path lacks, it only uses it
        // one forecast horizon earlier.
        let samples = [
            extra.detection,
            extra.tracking,
            extra.localization,
            extra.fusion,
            extra.motion_planning,
        ];
        let virtual_e2e_ms = self.governor.nominal_e2e_ms() + samples.iter().sum::<f64>();
        self.governor.observe(samples);
        // Watchdog: a stage whose virtual latency blows the budget is
        // abandoned at the budget mark rather than dragging the frame
        // past the deadline.
        if !skip_detection && extra.detection > self.cfg.stage_budget_ms {
            detection_cause =
                Some(DegradationCause::DetectionOverBudget { virtual_ms: extra.detection });
            extra.detection = self.cfg.stage_budget_ms;
            skip_detection = true;
        }

        StagePlan {
            skip_detection,
            skip_localization: faults.lock_loss,
            extra,
            detection_cause,
            quality: self.governor.knobs(),
            virtual_e2e_ms,
        }
    }

    /// The dead-reckoned pose to offer fusion this frame, when the
    /// supervisor is (or is about to be) covering for localization.
    fn fallback_pose(&self, lock_lost: bool) -> Option<Pose2> {
        if !(lock_lost || self.dead_reck_since.is_some()) {
            return None;
        }
        match (self.reckon, self.delta) {
            (Some(p), Some((dx, dy, dt))) => Some(Pose2::new(p.x + dx, p.y + dy, p.theta + dt)),
            _ => None,
        }
    }

    /// Folds the frame's observed pose into the odometry estimate.
    fn observe_pose(&mut self, pose: Option<Pose2>) {
        match pose {
            Some(p) => {
                if let Some(last) = self.last_pose {
                    self.delta = Some((p.x - last.x, p.y - last.y, p.theta - last.theta));
                }
                self.last_pose = Some(p);
                self.reckon = Some(p);
            }
            None => {
                if let (Some(p), Some((dx, dy, dt))) = (self.reckon, self.delta) {
                    self.reckon = Some(Pose2::new(p.x + dx, p.y + dy, p.theta + dt));
                }
            }
        }
    }

    /// Settles the frame: updates streaks and odometry, runs every
    /// mode transition, and returns what to do to the plan.
    fn settle(
        &mut self,
        faults: &FrameFaults,
        pose: Option<Pose2>,
        plan: &StagePlan,
        reported_e2e_ms: f64,
        monitors: MonitorFlags,
        payload_digest: u64,
    ) -> Verdict {
        let frame = faults.frame;
        let had_pose = pose.is_some();
        let detection_ran = !plan.skip_detection;
        // Transitions pushed during this settle decide the flight dump
        // triggers below.
        let events_before = self.events.len();
        self.stats.frames += 1;

        // Dead-reckoning coverage is decided *before* odometry folds
        // in this frame: it reflects what fusion actually consumed.
        let covered = !had_pose && self.fallback_pose(faults.lock_loss).is_some();
        self.observe_pose(pose);

        if had_pose {
            self.consecutive_lost = 0;
        } else {
            self.consecutive_lost += 1;
        }
        if faults.blackout {
            self.consecutive_blackout += 1;
        } else {
            self.consecutive_blackout = 0;
        }
        let healthy = had_pose && !faults.blackout && detection_ran && !monitors.any();
        if healthy {
            self.healthy_streak += 1;
        } else {
            self.healthy_streak = 0;
        }

        let want_tracker_only = !detection_ran;
        let want_dead_reck = covered;
        let mut want_safe = self.safe_stop_since.is_some();
        if want_safe && self.healthy_streak >= self.cfg.recover_frames {
            want_safe = false;
        }
        let collapse = self.consecutive_lost >= self.cfg.lock_loss_safe_stop
            || self.consecutive_blackout >= self.cfg.blackout_safe_stop;
        // A planner-envelope trip means the plan itself is unsafe —
        // the only safe output this frame is an emergency stop.
        if collapse || monitors.planner {
            want_safe = true;
        }
        // An exhausted crash-restart budget parks the vehicle for good:
        // no healthy streak can undo it.
        if self.terminal_safe_stop {
            want_safe = true;
        }
        let want_speed_red =
            (want_tracker_only || want_dead_reck || monitors.soft()) && !want_safe;

        toggle_mode(
            &mut self.tracker_only_since,
            &mut self.events,
            &mut self.stats,
            DegradedMode::TrackerOnly,
            want_tracker_only,
            plan.detection_cause.unwrap_or(DegradationCause::AccompanyingDegradation),
            frame,
        );
        toggle_mode(
            &mut self.dead_reck_since,
            &mut self.events,
            &mut self.stats,
            DegradedMode::DeadReckoning,
            want_dead_reck,
            DegradationCause::LockLost { injected: faults.lock_loss },
            frame,
        );
        // When a monitor trip is the *only* reason for the speed cap,
        // log it as the cause; a cap riding along with tracker-only /
        // dead-reckoning keeps the accompanying-degradation cause.
        let speed_red_cause = match monitors.first_soft() {
            Some(monitor) if !(want_tracker_only || want_dead_reck) => {
                DegradationCause::MonitorTripped { monitor }
            }
            _ => DegradationCause::AccompanyingDegradation,
        };
        toggle_mode(
            &mut self.speed_red_since,
            &mut self.events,
            &mut self.stats,
            DegradedMode::SpeedReduced,
            want_speed_red,
            speed_red_cause,
            frame,
        );
        let safe_cause = if self.terminal_safe_stop {
            DegradationCause::RestartsExhausted { restarts: self.stats.restarts }
        } else if monitors.planner && !collapse {
            DegradationCause::MonitorTripped { monitor: Monitor::Planner }
        } else {
            DegradationCause::ConfidenceCollapse {
                lost_frames: self.consecutive_lost,
                blackout_frames: self.consecutive_blackout,
            }
        };
        toggle_mode(
            &mut self.safe_stop_since,
            &mut self.events,
            &mut self.stats,
            DegradedMode::SafeStop,
            want_safe,
            safe_cause,
            frame,
        );
        // Quality reduction is proactive, not a failure: it neither
        // blocks the healthy streak nor forces a speed cap — but it is
        // a degraded mode, logged and counted like the others.
        let want_quality = self.governor.enabled() && self.governor.level() > 0;
        toggle_mode(
            &mut self.quality_since,
            &mut self.events,
            &mut self.stats,
            DegradedMode::QualityReduced,
            want_quality,
            DegradationCause::PredictedMiss { predicted_ms: self.governor.last_forecast_e2e() },
            frame,
        );

        let any_active = self.active_modes().any();
        if any_active {
            self.stats.frames_degraded += 1;
            if self.episode_start.is_none() {
                self.episode_start = Some(frame);
            }
        } else if let Some(start) = self.episode_start.take() {
            let len = frame - start;
            self.stats.episodes += 1;
            self.stats.recover_frames_total += len;
            self.stats.max_recover_frames = self.stats.max_recover_frames.max(len);
        }
        if self.safe_stop_since.is_some() {
            self.stats.safe_stop_frames += 1;
        }
        if self.quality_since.is_some() {
            self.stats.quality_reduced_frames += 1;
        }
        if reported_e2e_ms > self.cfg.deadline_ms {
            self.stats.deadline_misses += 1;
        }
        if plan.virtual_e2e_ms > self.cfg.deadline_ms {
            self.stats.virtual_deadline_misses += 1;
            // Perfetto counter track: deterministic miss count next to
            // the stage spans that caused it.
            adsim_trace::counter(
                "supervisor.virtual-miss",
                self.stats.virtual_deadline_misses as f64,
            );
        }

        self.record_frame(faults, plan, monitors, payload_digest, events_before);

        Verdict {
            safe_stop: self.safe_stop_since.is_some(),
            speed_factor: self
                .speed_red_since
                .map(|_| self.cfg.degraded_speed_factor),
        }
    }

    /// Telemetry + black-box tail of settle: emits this frame's metric
    /// series (virtual quantities only — the registry must stay a pure
    /// function of the spec), pushes the flight record, and dumps the
    /// ring when this frame's transitions warrant it.
    fn record_frame(
        &mut self,
        faults: &FrameFaults,
        plan: &StagePlan,
        monitors: MonitorFlags,
        payload_digest: u64,
        events_before: usize,
    ) {
        use adsim_telemetry as t;
        let frame = faults.frame;
        let extras = [
            plan.extra.detection,
            plan.extra.tracking,
            plan.extra.localization,
            plan.extra.fusion,
            plan.extra.motion_planning,
        ];
        let mut stage_virtual_ms = [0.0f64; 5];
        for (i, slot) in stage_virtual_ms.iter_mut().enumerate() {
            *slot = self.governor.nominal_stage_ms(i) + extras[i];
        }

        t::counter_add("sup_frames_total", "", 1);
        if plan.virtual_e2e_ms > self.cfg.deadline_ms {
            t::counter_add("sup_virtual_deadline_miss_total", "", 1);
        }
        for (i, &label) in STAGE_LABELS.iter().enumerate() {
            t::observe_ms("stage_virtual_ms", label, stage_virtual_ms[i]);
        }
        t::observe_ms("e2e_virtual_ms", "", plan.virtual_e2e_ms);
        if self.governor.enabled() {
            t::gauge_set("sup_quality_level", "", frame, self.governor.level() as f64);
        }

        let modes = self.active_modes();
        let mode_bits = ((modes.tracker_only as u8) * t::MODE_TRACKER_ONLY)
            | ((modes.dead_reckoning as u8) * t::MODE_DEAD_RECKONING)
            | ((modes.speed_reduced as u8) * t::MODE_SPEED_REDUCED)
            | ((modes.safe_stop as u8) * t::MODE_SAFE_STOP)
            | ((modes.quality_reduced as u8) * t::MODE_QUALITY_REDUCED);
        let monitor_bits = ((monitors.data as u8) * t::MONITOR_DATA)
            | ((monitors.detection as u8) * t::MONITOR_DETECTION)
            | ((monitors.tracker as u8) * t::MONITOR_TRACKER)
            | ((monitors.localization as u8) * t::MONITOR_LOCALIZATION)
            | ((monitors.planner as u8) * t::MONITOR_PLANNER);
        let quality_rung =
            if self.governor.enabled() { self.governor.current().name } else { "full" };
        self.recorder.push(FrameRecord {
            frame,
            stage_virtual_ms,
            virtual_e2e_ms: plan.virtual_e2e_ms,
            quality_rung,
            mode_bits,
            monitor_bits,
            fault_bits: fault_bits(faults),
            payload_digest,
            forecast_e2e_ms: self.governor.last_forecast_e2e(),
            crashed: false,
            panic_msg: String::new(),
        });

        // Dump triggers, in severity order: entering SafeStop always
        // dumps; otherwise any monitor-tripped escalation does.
        let mut trigger = None;
        for e in &self.events[events_before..] {
            if let DegradationEventKind::Entered { mode, cause } = e.kind {
                if mode == DegradedMode::SafeStop {
                    trigger = Some(DumpTrigger::SafeStop);
                    break;
                }
                if matches!(cause, DegradationCause::MonitorTripped { .. }) {
                    trigger = Some(DumpTrigger::MonitorTripped);
                }
            }
        }
        if let Some(trigger) = trigger {
            self.dump(trigger, frame);
        }
    }

    /// Captures a flight dump of the black-box ring as of `frame`.
    fn dump(&mut self, trigger: DumpTrigger, frame: u64) -> FlightDump {
        let dump = self.recorder.dump(self.cfg.vehicle, trigger, frame);
        adsim_telemetry::counter_add("flight_dump_total", trigger.name(), 1);
        self.dumps.push(dump.clone());
        dump
    }

    fn active_modes(&self) -> ActiveModes {
        ActiveModes {
            tracker_only: self.tracker_only_since.is_some(),
            dead_reckoning: self.dead_reck_since.is_some(),
            speed_reduced: self.speed_red_since.is_some(),
            safe_stop: self.safe_stop_since.is_some(),
            quality_reduced: self.quality_since.is_some(),
        }
    }

    /// The active quality level's cost multiplier for a stage (1.0
    /// with the governor disabled).
    fn quality_factor(&self, stage: usize) -> f64 {
        if self.governor.enabled() {
            self.governor.current().factor(stage)
        } else {
            1.0
        }
    }

    fn stats(&self) -> RecoveryStats {
        RecoveryStats {
            degraded_at_end: self.active_modes().any(),
            quality_switches: self.governor.switches(),
            ..self.stats
        }
    }

    /// Closes the run: every open degraded mode gets its exit event at
    /// the end-of-run frame — except a safe stop, which is a valid
    /// terminal state (the vehicle is parked). Idempotent.
    fn finish(&mut self) {
        let frame = self.stats.frames;
        toggle_mode(
            &mut self.tracker_only_since,
            &mut self.events,
            &mut self.stats,
            DegradedMode::TrackerOnly,
            false,
            DegradationCause::AccompanyingDegradation,
            frame,
        );
        toggle_mode(
            &mut self.dead_reck_since,
            &mut self.events,
            &mut self.stats,
            DegradedMode::DeadReckoning,
            false,
            DegradationCause::AccompanyingDegradation,
            frame,
        );
        toggle_mode(
            &mut self.speed_red_since,
            &mut self.events,
            &mut self.stats,
            DegradedMode::SpeedReduced,
            false,
            DegradationCause::AccompanyingDegradation,
            frame,
        );
        toggle_mode(
            &mut self.quality_since,
            &mut self.events,
            &mut self.stats,
            DegradedMode::QualityReduced,
            false,
            DegradationCause::AccompanyingDegradation,
            frame,
        );
        if self.safe_stop_since.is_none() {
            if let Some(start) = self.episode_start.take() {
                let len = frame - start;
                self.stats.episodes += 1;
                self.stats.recover_frames_total += len;
                self.stats.max_recover_frames = self.stats.max_recover_frames.max(len);
            }
        }
    }
}

/// A frame paused at the cross-vehicle batching hand-off point.
///
/// Produced by [`Supervisor::stage_frame`]: fault injection, data
/// -plane verification and frame planning have run; the pipeline
/// stages have not. The supervisor's mutable state has already
/// advanced (the injector's schedule, guard counters, stuck-frame
/// replay buffer), so every staged frame **must** be completed with
/// [`Supervisor::finish_frame`] before the next frame is staged.
#[derive(Debug)]
pub struct StagedFrame {
    faults: FrameFaults,
    plan: StagePlan,
    ctrl: ProcessControl,
    delivered_time_s: f64,
    /// The delivered (possibly fault-perturbed, possibly recovered)
    /// sensor payload the pipeline will consume.
    img: GrayImage,
    payload_digest: u64,
    data_bad: bool,
    request: Option<BatchRequest>,
}

impl StagedFrame {
    /// The detector's prepared DNN input, if this frame's detection
    /// stage is batchable (not skipped, DNN detector). `None` means
    /// [`Supervisor::finish_frame`] will run detection inline.
    pub fn request(&self) -> Option<&BatchRequest> {
        self.request.as_ref()
    }
}

/// Output of one supervised frame.
#[derive(Debug)]
pub struct SupervisedFrameResult {
    /// The pipeline's frame result (plan already adjusted for the
    /// active degraded modes).
    pub result: NativeFrameResult,
    /// What was injected this frame.
    pub faults: FrameFaults,
    /// Reported latency: measured wall clock plus virtual fault
    /// latency (spikes, stall retries, watchdog waits).
    pub reported: FrameLatency,
    /// Modes active after this frame settled.
    pub modes: ActiveModes,
}

/// The graceful-degradation supervisor over [`NativePipeline`].
///
/// With a [`FaultInjector::disabled`] injector the supervisor is a
/// transparent wrapper: frames flow through the identical code path
/// and outputs are bit-identical to the bare pipeline (the
/// zero-overhead-when-off parity test pins this).
#[derive(Debug)]
pub struct Supervisor {
    pipeline: NativePipeline,
    injector: FaultInjector,
    core: SupervisorCore,
    guard: PipelineGuard,
    /// The sensor payload delivered last frame, kept only while
    /// stuck-at faults are enabled (a wedged sensor re-delivers it).
    last_delivered: Option<GrayImage>,
    /// Whether scheduled crash faults actually panic. The recovery
    /// layer disarms this while replaying the post-checkpoint gap
    /// (crashes are transient: a restarted process does not re-crash
    /// on the same frame) and re-arms it once the replay catches up.
    /// Deliberately *not* part of [`SupervisorCheckpoint`]: arming is
    /// execution policy, not pipeline state.
    crash_armed: bool,
}

impl Supervisor {
    /// Wraps a pipeline with a fault schedule and supervision policy.
    pub fn new(pipeline: NativePipeline, injector: FaultInjector, cfg: SupervisorConfig) -> Self {
        let guard = PipelineGuard::new(cfg.guard);
        Self {
            pipeline,
            injector,
            core: SupervisorCore::new(cfg),
            guard,
            last_delivered: None,
            crash_armed: true,
        }
    }

    /// Seeds the localizer (GPS bootstrap), as on the bare pipeline.
    pub fn seed_pose(&mut self, pose: Pose2) {
        self.pipeline.seed_pose(pose);
    }

    /// The wrapped pipeline.
    pub fn pipeline(&self) -> &NativePipeline {
        &self.pipeline
    }

    /// The fault injector (schedule ground truth).
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// The degradation-event log, in frame order.
    pub fn events(&self) -> &[DegradationEvent] {
        &self.core.events
    }

    /// Recovery metrics so far.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.core.stats()
    }

    /// The anytime governor's quality-switch log, in frame order
    /// (empty when the governor is disabled).
    pub fn governor_events(&self) -> &[GovernorEvent] {
        self.core.governor.events()
    }

    /// The anytime governor (quality level, forecast, switch count).
    pub fn governor(&self) -> &Governor {
        &self.core.governor
    }

    /// Closes the run: emits exit events for every still-open degraded
    /// mode (a safe stop is left open as a valid terminal state) and
    /// settles episode accounting. Call once after the last frame;
    /// idempotent.
    pub fn finish(&mut self) {
        self.core.finish();
    }

    /// Flight-recorder dumps captured so far (SafeStop, monitor-trip
    /// and manual triggers), in capture order.
    pub fn flight_dumps(&self) -> &[FlightDump] {
        &self.core.dumps
    }

    /// Takes ownership of the captured dumps (the fleet engine moves
    /// them into the cell outcome).
    pub fn take_flight_dumps(&mut self) -> Vec<FlightDump> {
        std::mem::take(&mut self.core.dumps)
    }

    /// Captures an on-demand dump of the black-box window right now.
    pub fn dump_flight(&mut self) -> FlightDump {
        let frame = self.core.stats.frames.saturating_sub(1);
        self.core.dump(DumpTrigger::Manual, frame)
    }

    /// The safety guard's trip log, in frame order.
    pub fn guard_events(&self) -> &[GuardEvent] {
        self.guard.events()
    }

    /// The safety guard's counters (digest checks, trips per monitor).
    pub fn guard_stats(&self) -> &GuardStats {
        self.guard.stats()
    }

    /// Processes one camera frame under supervision: injects the
    /// frame's faults, verifies the delivered payload against its
    /// capture digest, steers the pipeline around failed stages, runs
    /// the stage-boundary monitors on the outputs, settles the
    /// degraded-mode state machine, and adjusts the motion plan for
    /// the active modes.
    pub fn process(&mut self, image: &GrayImage, time_s: f64) -> SupervisedFrameResult {
        // Single source of truth with the batched path: the inline
        // path is exactly stage + finish, minus the batch-request
        // packaging (no resize/tensor work is wasted — `detect` does
        // its own).
        let staged = self.stage_frame_inner(image, time_s, false);
        self.finish_frame(staged, None)
    }

    /// First half of [`Supervisor::process`], up to the cross-vehicle
    /// batching hand-off point: injects the frame's faults, verifies
    /// the delivered payload against its capture digest, plans the
    /// frame, and packages the detector's prepared DNN input (if any)
    /// into the returned [`StagedFrame`]. A fleet batch runner
    /// collects requests from many vehicles' staged frames, executes
    /// one batched forward pass per model, and hands each vehicle's
    /// detections back through [`Supervisor::finish_frame`].
    pub fn stage_frame(&mut self, image: &GrayImage, time_s: f64) -> StagedFrame {
        self.stage_frame_inner(image, time_s, true)
    }

    fn stage_frame_inner(
        &mut self,
        image: &GrayImage,
        time_s: f64,
        want_request: bool,
    ) -> StagedFrame {
        // Every metric recorded during this frame — by the guard, the
        // governor, the pipeline or the supervisor itself — carries
        // this vehicle's id without any of them knowing about fleets.
        let _vehicle = VehicleScope::enter(self.core.cfg.vehicle);
        let faults = self.injector.next_frame();
        // A scheduled crash takes down the whole frame before any
        // pipeline state mutates: the injector has advanced (so the
        // schedule is burned, exactly like a real crash losing the
        // frame) but the pipeline, guard and mode machine have not.
        // The panic payload is typed so containment layers can tell
        // injected crashes from genuine bugs.
        if self.crash_armed {
            if let Some(stage) = faults.crash {
                std::panic::panic_any(InjectedCrash { frame: faults.frame, stage });
            }
        }
        let mut plan = self.core.plan(&faults);
        let frame = faults.frame;
        // The sensor clock the pipeline sees, skew included.
        let delivered_time_s = time_s + faults.time_skew_s.unwrap_or(0.0);

        // Sensor faults perturb the frame before the pipeline sees it.
        // `last` is the previously delivered payload — a stuck sensor
        // re-delivers it verbatim. The staged frame owns its payload
        // so it can outlive the caller's borrow until `finish_frame`.
        let last = self.last_delivered.take();
        let mut img: GrayImage = if faults.blackout {
            blackout_frame(image)
        } else if faults.stuck {
            // Wedged on the very first frame: nothing older to repeat.
            last.clone().unwrap_or_else(|| image.clone())
        } else if let Some(pc) = faults.pixel_corruption {
            corrupt_pixels(image, pc.fraction, pc.salt)
        } else {
            image.clone()
        };

        // Checksummed data plane: the digest travels with the capture;
        // the delivered payload is re-hashed at the pipeline boundary.
        // The optional dual-execution vote asks the sensor once more —
        // persistent faults (blackout, stuck) reproduce on the second
        // delivery, transient transport corruption does not.
        let mut data_bad = false;
        let mut payload_digest = 0u64;
        if self.core.cfg.guard.enabled && self.core.cfg.guard.data_plane {
            let expected = digest_image(image);
            payload_digest = expected.0;
            let (dv, replacement) = self.guard.check_delivery(frame, expected, &img, || {
                if faults.blackout {
                    blackout_frame(image)
                } else if faults.stuck {
                    last.clone().unwrap_or_else(|| image.clone())
                } else {
                    image.clone()
                }
            });
            if let Some(r) = replacement {
                img = r;
            }
            data_bad = dv.is_bad();
        }

        // A payload the guard distrusts must not feed the detector:
        // force tracker-only perception for the frame.
        if data_bad && !plan.skip_detection {
            plan.skip_detection = true;
            plan.detection_cause =
                Some(DegradationCause::MonitorTripped { monitor: Monitor::DataPlane });
        }

        // Remember what was delivered (for next frame's stuck replay),
        // but only when stuck faults can occur — the clone is a whole
        // frame.
        if self.injector.config().stuck_rate > 0.0 {
            self.last_delivered = Some(img.clone());
        }

        let ctrl = ProcessControl {
            skip_detection: plan.skip_detection,
            skip_localization: plan.skip_localization,
            pose_fallback: self.core.fallback_pose(plan.skip_localization),
            track_shift: faults.tracker_shift,
            quality: plan.quality,
        };
        let request =
            if want_request { self.pipeline.det_batch_request(&img, &ctrl) } else { None };
        StagedFrame {
            faults,
            plan,
            ctrl,
            delivered_time_s,
            img,
            payload_digest,
            data_bad,
            request,
        }
    }

    /// Second half of [`Supervisor::process`]: runs the pipeline on
    /// the staged payload (skipping detection when `det_override`
    /// carries the batched result), applies the stage-boundary
    /// monitors, settles the degraded-mode state machine and adjusts
    /// the motion plan. `det_override = None` runs any un-batched
    /// detection inline — bit-identical to [`Supervisor::process`].
    pub fn finish_frame(
        &mut self,
        staged: StagedFrame,
        det_override: Option<Vec<Detection>>,
    ) -> SupervisedFrameResult {
        let _vehicle = VehicleScope::enter(self.core.cfg.vehicle);
        let StagedFrame {
            faults,
            plan,
            ctrl,
            delivered_time_s,
            img,
            payload_digest,
            data_bad,
            request: _,
        } = staged;
        let frame = faults.frame;
        let mut out = self.pipeline.process_with_det(&img, delivered_time_s, &ctrl, det_override);

        let reported = FrameLatency {
            detection: out.latency.detection + plan.extra.detection,
            tracking: out.latency.tracking + plan.extra.tracking,
            localization: out.latency.localization + plan.extra.localization,
            fusion: out.latency.fusion + plan.extra.fusion,
            motion_planning: out.latency.motion_planning + plan.extra.motion_planning,
        };

        // Stage-boundary invariant monitors on this frame's outputs.
        let dets =
            if plan.skip_detection { None } else { Some(out.detections.as_slice()) };
        let gv = self.guard.check_frame(
            frame,
            delivered_time_s,
            dets,
            &out.tracks,
            out.pose,
            &out.fused,
            &out.plan,
        );
        let monitors = MonitorFlags {
            detection: gv.tripped(Monitor::Detection),
            tracker: gv.tripped(Monitor::Tracker),
            localization: gv.tripped(Monitor::Localization),
            planner: gv.tripped(Monitor::Planner),
            data: data_bad,
        };

        let verdict = self.core.settle(
            &faults,
            out.pose,
            &plan,
            reported.end_to_end(),
            monitors,
            payload_digest,
        );
        if verdict.safe_stop {
            out.plan = MotionPlan::EmergencyStop;
        } else if let Some(factor) = verdict.speed_factor {
            if let MotionPlan::Trajectory(t) = &mut out.plan {
                t.speed_mps *= factor;
            }
        }

        SupervisedFrameResult {
            result: out,
            faults,
            reported,
            modes: self.core.active_modes(),
        }
    }

    /// Arms or disarms scheduled crash faults. The recovery layer
    /// disarms crashes while deterministically replaying the frames
    /// between the restored checkpoint and the crash (transient-crash
    /// semantics: a restarted process does not re-crash on the frames
    /// it is re-executing) and re-arms them afterwards.
    pub fn set_crash_armed(&mut self, armed: bool) {
        self.crash_armed = armed;
    }

    /// Whether scheduled crash faults currently panic.
    pub fn crash_armed(&self) -> bool {
        self.crash_armed
    }

    /// Snapshots every piece of mutable per-frame state into a
    /// checkpoint: the pipeline (trackers, localizer pose + map
    /// overlay, fusion history, planner), the fault injector's
    /// schedule position, the degradation state machine (governor
    /// forecaster included), the safety guard and the stuck-sensor
    /// replay payload. Restoring it resumes the run bit-identically
    /// from the checkpointed frame. `crash_armed` is deliberately
    /// excluded — arming is the recovery layer's execution policy.
    pub fn checkpoint(&self) -> SupervisorCheckpoint {
        SupervisorCheckpoint {
            pipeline: self.pipeline.snapshot(),
            injector: self.injector.clone(),
            core: self.core.clone(),
            guard: self.guard.clone(),
            last_delivered: self.last_delivered.clone(),
        }
    }

    /// Rewinds the supervisor to a checkpoint taken earlier on this
    /// same supervisor. The inverse of [`Supervisor::checkpoint`].
    pub fn restore(&mut self, ck: &SupervisorCheckpoint) {
        self.pipeline.restore(&ck.pipeline);
        self.injector = ck.injector.clone();
        self.core = ck.core.clone();
        self.guard = ck.guard.clone();
        self.last_delivered = ck.last_delivered.clone();
    }

    /// Records a contained stage crash at `frame`, after the restore:
    /// bumps the crash counter, pushes a synthetic crash record into
    /// the black box (the crashed frame itself never settled, so no
    /// organic record exists for it) and dumps the flight ring with
    /// the panic payload attached. Call *after* [`Supervisor::restore`]
    /// so the audit trail survives any later restore.
    pub fn record_cell_crash(&mut self, frame: u64, stage: FaultStage, panic_msg: &str) {
        let _vehicle = VehicleScope::enter(self.core.cfg.vehicle);
        use adsim_telemetry as t;
        self.core.stats.crashes += 1;
        t::counter_add("sup_crash_total", stage.label(), 1);
        self.core.recorder.push(FrameRecord {
            frame,
            fault_bits: t::FAULT_CRASH,
            crashed: true,
            panic_msg: t::truncate_panic_msg(panic_msg),
            ..FrameRecord::default()
        });
        self.core.dump(DumpTrigger::CellCrash, frame);
    }

    /// Records a completed crash restart: checkpoint restored at
    /// `checkpoint_frame`, `replayed` frames re-executed to catch up
    /// to the crash at `frame`. Pushes a [`DegradationEventKind::Restart`]
    /// audit event and bumps the restart counters.
    pub fn record_restart(
        &mut self,
        frame: u64,
        stage: FaultStage,
        checkpoint_frame: u64,
        replayed: u64,
    ) {
        let _vehicle = VehicleScope::enter(self.core.cfg.vehicle);
        use adsim_telemetry as t;
        self.core.stats.restarts += 1;
        self.core.stats.replayed_frames += replayed;
        t::counter_add("sup_restart_total", stage.label(), 1);
        self.core.events.push(DegradationEvent {
            frame,
            kind: DegradationEventKind::Restart { stage, checkpoint_frame, replayed },
        });
    }

    /// Latches the terminal safe stop after the restart budget is
    /// exhausted: every frame from here on settles into SafeStop with
    /// [`DegradationCause::RestartsExhausted`], and no healthy streak
    /// recovers out of it.
    pub fn record_crash_exhausted(&mut self) {
        self.core.terminal_safe_stop = true;
    }
}

/// Everything [`Supervisor::restore`] needs to resume a run
/// bit-identically from a checkpointed frame boundary: the pipeline
/// snapshot, the fault injector (schedule position and RNG streams),
/// the degradation state machine (stats, events, governor, black-box
/// ring, flight dumps), the safety guard (previous-frame monitors,
/// trip log) and the stuck-sensor replay payload.
///
/// Produced by [`Supervisor::checkpoint`]. The checkpoint is a deep
/// value: holding one does not alias the live supervisor (the SLAM
/// map shares its immutable prior via `Arc`; the mutable overlay is
/// deep-copied).
#[derive(Clone)]
pub struct SupervisorCheckpoint {
    pipeline: PipelineSnapshot,
    injector: FaultInjector,
    core: SupervisorCore,
    guard: PipelineGuard,
    last_delivered: Option<GrayImage>,
}

impl std::fmt::Debug for SupervisorCheckpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SupervisorCheckpoint")
            .field("frames", &self.core.stats.frames)
            .field("approx_bytes", &self.approx_bytes())
            .finish_non_exhaustive()
    }
}

impl SupervisorCheckpoint {
    /// Frames the checkpointed supervisor had settled — the frame
    /// index execution resumes from after a restore.
    pub fn frames_done(&self) -> u64 {
        self.core.stats.frames
    }

    /// Rough in-memory footprint of the checkpoint: the pipeline
    /// snapshot estimate plus the event log, black-box ring, captured
    /// dumps and the optional retained sensor payload. Deterministic
    /// (no allocator introspection) so benches can report it.
    pub fn approx_bytes(&self) -> usize {
        let events = self.core.events.len() * std::mem::size_of::<DegradationEvent>();
        let ring = self.core.recorder.len() * std::mem::size_of::<FrameRecord>();
        let dumps: usize = self
            .core
            .dumps
            .iter()
            .map(|d| d.records.len() * std::mem::size_of::<FrameRecord>())
            .sum();
        let payload = self
            .last_delivered
            .as_ref()
            .map(|img| img.width() * img.height())
            .unwrap_or(0);
        self.pipeline.approx_bytes() + events + ring + dumps + payload
    }
}

/// The supervisor mirrored over [`ModeledPipeline`]: stage latencies
/// come from the calibrated distributions, faults perturb them, and
/// the same [`SupervisorCore`] policy reacts — cheap large-frame
/// campaigns with the identical transition semantics.
///
/// Crash faults are *not* executed here: the modeled pipeline has no
/// per-frame state worth checkpointing, so a scheduled crash is a
/// no-op beyond its fault-bit in the flight record. Crash containment
/// and restart-replay recovery are native-pipeline features.
#[derive(Debug)]
pub struct ModeledSupervisor {
    pipeline: ModeledPipeline,
    injector: FaultInjector,
    core: SupervisorCore,
}

impl ModeledSupervisor {
    /// Wraps a modeled pipeline with a fault schedule and policy.
    pub fn new(pipeline: ModeledPipeline, injector: FaultInjector, cfg: SupervisorConfig) -> Self {
        Self { pipeline, injector, core: SupervisorCore::new(cfg) }
    }

    /// The degradation-event log, in frame order.
    pub fn events(&self) -> &[DegradationEvent] {
        &self.core.events
    }

    /// Recovery metrics so far.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.core.stats()
    }

    /// The anytime governor's quality-switch log, in frame order
    /// (empty when the governor is disabled).
    pub fn governor_events(&self) -> &[GovernorEvent] {
        self.core.governor.events()
    }

    /// The anytime governor (quality level, forecast, switch count).
    pub fn governor(&self) -> &Governor {
        &self.core.governor
    }

    /// Closes the run: emits exit events for every still-open degraded
    /// mode (a safe stop is left open as a valid terminal state) and
    /// settles episode accounting. Call once after the last frame;
    /// idempotent.
    pub fn finish(&mut self) {
        self.core.finish();
    }

    /// Simulates one supervised frame, returning the reported latency.
    ///
    /// Degraded stages cost what their degraded implementations cost:
    /// a skipped detection is free (tracker predictions only), and a
    /// dead-reckoned pose costs a constant extrapolation instead of a
    /// localization sample. The modeled pipeline has no natural
    /// localization misses, so lock loss is purely injected.
    pub fn simulate_frame(&mut self, pixel_ratio: f64) -> FrameLatency {
        let _vehicle = VehicleScope::enter(self.core.cfg.vehicle);
        let faults = self.injector.next_frame();
        let plan = self.core.plan(&faults);
        let base = self.pipeline.simulate_frame(pixel_ratio);
        // Quality-reduced stages cost their scaled nominal share; the
        // factors are exactly 1.0 with the governor off, keeping the
        // governor-off latency stream bit-identical.
        let det_factor = self.core.quality_factor(STAGE_DET);
        let tra_factor = self.core.quality_factor(STAGE_TRA);
        let reported = FrameLatency {
            detection: if plan.skip_detection { 0.0 } else { base.detection * det_factor }
                + plan.extra.detection,
            tracking: base.tracking * tra_factor + plan.extra.tracking,
            localization: if plan.skip_localization { DEAD_RECKON_MS } else { base.localization }
                + plan.extra.localization,
            fusion: base.fusion + plan.extra.fusion,
            motion_planning: base.motion_planning + plan.extra.motion_planning,
        };
        let pose = if plan.skip_localization { None } else { Some(Pose2::default()) };
        self.core.settle(
            &faults,
            pose,
            &plan,
            reported.end_to_end(),
            MonitorFlags::default(),
            0,
        );
        reported
    }

    /// Simulates `frames` supervised frames, recording reported
    /// latencies, and returns the distributions with the recovery
    /// metrics.
    pub fn simulate(&mut self, frames: usize, pixel_ratio: f64) -> (PipelineStats, RecoveryStats) {
        let mut stats = PipelineStats {
            detection: LatencyRecorder::with_capacity(frames),
            tracking: LatencyRecorder::with_capacity(frames),
            localization: LatencyRecorder::with_capacity(frames),
            fusion: LatencyRecorder::with_capacity(frames),
            motion_planning: LatencyRecorder::with_capacity(frames),
            end_to_end: LatencyRecorder::with_capacity(frames),
        };
        for _ in 0..frames {
            let f = self.simulate_frame(pixel_ratio);
            stats.detection.record(f.detection);
            stats.tracking.record(f.tracking);
            stats.localization.record(f.localization);
            stats.fusion.record(f.fusion);
            stats.motion_planning.record(f.motion_planning);
            stats.end_to_end.record(f.end_to_end());
        }
        (stats, self.recovery_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlatformConfig;
    use adsim_faults::FaultConfig;
    use adsim_platform::Platform;

    fn modeled(seed: u64, cfg: FaultConfig) -> ModeledSupervisor {
        ModeledSupervisor::new(
            ModeledPipeline::new(PlatformConfig::uniform(Platform::Gpu), 1),
            FaultInjector::new(seed, cfg),
            SupervisorConfig::default(),
        )
    }

    #[test]
    fn clean_run_never_degrades() {
        let mut sup = modeled(0, FaultConfig::off());
        let (_, rec) = sup.simulate(2_000, 1.0);
        assert_eq!(rec.frames, 2_000);
        assert_eq!(rec.frames_degraded, 0);
        assert!(sup.events().is_empty());
        assert!(!rec.degraded_at_end);
    }

    #[test]
    fn lock_loss_enters_and_exits_dead_reckoning() {
        let cfg = FaultConfig { lock_loss_rate: 0.05, ..FaultConfig::off() };
        let mut sup = modeled(11, cfg);
        let (_, rec) = sup.simulate(2_000, 1.0);
        assert!(rec.frames_degraded > 0);
        assert!(rec.episodes > 0, "degradation must recover");
        assert!(rec.mean_time_to_recover() > 0.0);
        let entered = sup.events().iter().any(|e| {
            matches!(
                e.kind,
                DegradationEventKind::Entered { mode: DegradedMode::DeadReckoning, .. }
            )
        });
        let exited = sup.events().iter().any(|e| {
            matches!(e.kind, DegradationEventKind::Exited { mode: DegradedMode::DeadReckoning, .. })
        });
        assert!(entered && exited);
    }

    #[test]
    fn sustained_blackout_forces_safe_stop_then_recovers() {
        let cfg = FaultConfig {
            blackout_rate: 0.02,
            blackout_frames: (6, 8),
            ..FaultConfig::off()
        };
        let mut sup = modeled(3, cfg);
        let (_, rec) = sup.simulate(3_000, 1.0);
        assert!(rec.safe_stops > 0, "6-frame blackouts must trip the 4-frame threshold");
        assert!(rec.safe_stop_frames >= rec.safe_stops);
        let exited_safe = sup.events().iter().any(|e| {
            matches!(e.kind, DegradationEventKind::Exited { mode: DegradedMode::SafeStop, .. })
        });
        assert!(exited_safe, "safe stop must clear after recovery");
    }

    #[test]
    fn stall_beyond_retry_budget_goes_tracker_only() {
        let cfg = FaultConfig {
            stall_rate: 0.05,
            stall_attempts: (4, 5), // beyond the default budget of 2
            ..FaultConfig::off()
        };
        let mut sup = modeled(5, cfg);
        let (_, rec) = sup.simulate(1_000, 1.0);
        assert!(rec.retries > 0);
        let tracker_only = sup.events().iter().any(|e| {
            matches!(
                e.kind,
                DegradationEventKind::Entered {
                    mode: DegradedMode::TrackerOnly,
                    cause: DegradationCause::DetectionStalled { .. },
                }
            )
        });
        assert!(tracker_only);
    }

    #[test]
    fn spike_over_budget_trips_watchdog() {
        let cfg = FaultConfig {
            latency_spike_rate: 0.05,
            latency_spike_ms: (80.0, 120.0), // over the 50 ms stage budget
            ..FaultConfig::off()
        };
        let mut sup = modeled(9, cfg);
        sup.simulate(1_000, 1.0);
        let over_budget = sup.events().iter().any(|e| {
            matches!(
                e.kind,
                DegradationEventKind::Entered {
                    mode: DegradedMode::TrackerOnly,
                    cause: DegradationCause::DetectionOverBudget { .. },
                }
            )
        });
        assert!(over_budget);
    }

    #[test]
    fn retry_backoff_is_clamped_on_absurd_budgets() {
        // A config asking for effectively unbounded retries must not
        // wrap the backoff exponent or charge unbounded virtual time:
        // retries cap at 32 per frame and each backoff saturates at
        // the stage budget.
        let faults = FaultConfig {
            stall_rate: 1.0,
            stall_attempts: (10_000, 20_000),
            ..FaultConfig::off()
        };
        let sup_cfg = SupervisorConfig { max_retries: u32::MAX, ..SupervisorConfig::default() };
        let mut sup = ModeledSupervisor::new(
            ModeledPipeline::new(PlatformConfig::uniform(Platform::Gpu), 1),
            FaultInjector::new(17, faults),
            sup_cfg.clone(),
        );
        let lat = sup.simulate_frame(1.0);
        assert!(lat.end_to_end().is_finite());
        let rec = sup.recovery_stats();
        assert!(rec.retries <= 32, "retries {} beyond the hard cap", rec.retries);
        assert!(rec.retries > 0);
        for e in sup.events() {
            if let DegradationEventKind::Retry { backoff_ms, .. } = e.kind {
                assert!(backoff_ms.is_finite());
                assert!(backoff_ms <= sup_cfg.stage_budget_ms, "backoff {backoff_ms}");
            }
        }
    }

    fn native_supervisor(seed: u64, faults: FaultConfig) -> Supervisor {
        use adsim_workload::{Resolution, Scenario, ScenarioKind};
        let scenario = Scenario::new(ScenarioKind::UrbanDrive, 11);
        let camera = scenario.camera(Resolution::Hhd);
        let poses = (0..10).map(|i| scenario.pose_at(i * 10)).collect::<Vec<_>>();
        let map = crate::native::build_prior_map(scenario.world(), &camera, poses, 200, 25);
        let pipe = NativePipeline::new(camera, map, crate::native::NativePipelineConfig::default());
        let mut sup = Supervisor::new(pipe, FaultInjector::new(seed, faults), SupervisorConfig::default());
        sup.seed_pose(scenario.pose_at(0));
        sup
    }

    #[test]
    fn armed_crash_fault_panics_with_typed_payload() {
        use adsim_workload::{Resolution, Scenario, ScenarioKind};
        let scenario = Scenario::new(ScenarioKind::UrbanDrive, 11);
        let crashy = FaultConfig { crash_rate: 1.0, ..FaultConfig::off() };
        let mut sup = native_supervisor(7, crashy.clone());
        let frame = scenario.stream(Resolution::Hhd).next().unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sup.process(&frame.image, frame.time_s)
        }))
        .expect_err("crash_rate=1 must panic on the first frame");
        let crash = err.downcast_ref::<InjectedCrash>().expect("typed payload");
        assert_eq!(crash.frame, 0);
        // The schedule is burned: the injector advanced before the
        // panic, exactly like a real crash losing the frame.
        assert_eq!(sup.injector().events().len(), 1);

        // Disarmed, the same schedule completes the frame normally.
        let mut sup = native_supervisor(7, crashy);
        sup.set_crash_armed(false);
        let out = sup.process(&frame.image, frame.time_s);
        assert!(out.faults.crash.is_some(), "fault still scheduled, just not executed");
        assert_eq!(sup.recovery_stats().frames, 1);
    }

    #[test]
    fn checkpoint_restore_replays_bit_identically() {
        use adsim_workload::{Resolution, Scenario, ScenarioKind};
        let scenario = Scenario::new(ScenarioKind::UrbanDrive, 11);
        let faults = FaultConfig::stress();
        let mut sup = native_supervisor(21, faults);
        let frames: Vec<_> = scenario.stream(Resolution::Hhd).take(6).collect();
        let mut first = Vec::new();
        let mut ck = None;
        for (i, frame) in frames.iter().enumerate() {
            if i == 3 {
                ck = Some(sup.checkpoint());
            }
            let out = sup.process(&frame.image, frame.time_s);
            first.push((out.result.pose, format!("{:?}", out.result.plan)));
        }
        let end_events = format!("{:?}", sup.events());
        let end_stats = format!("{:?}", sup.recovery_stats());

        let ck = ck.expect("checkpoint taken at frame 3");
        assert_eq!(ck.frames_done(), 3);
        assert!(ck.approx_bytes() > 0);
        sup.restore(&ck);
        assert_eq!(sup.recovery_stats().frames, 3, "restore rewinds the frame count");
        let mut second = Vec::new();
        for frame in &frames[3..] {
            let out = sup.process(&frame.image, frame.time_s);
            second.push((out.result.pose, format!("{:?}", out.result.plan)));
        }
        assert_eq!(second, first[3..], "replay from the checkpoint is bit-identical");
        assert_eq!(format!("{:?}", sup.events()), end_events);
        assert_eq!(format!("{:?}", sup.recovery_stats()), end_stats);
    }

    #[test]
    fn exhausted_restarts_latch_a_terminal_safe_stop() {
        let mut sup = modeled(0, FaultConfig::off());
        sup.core.terminal_safe_stop = true;
        let (_, rec) = sup.simulate(50, 1.0);
        assert_eq!(rec.safe_stop_frames, 50, "no healthy streak recovers a terminal stop");
        let entered = sup.events().iter().any(|e| {
            matches!(
                e.kind,
                DegradationEventKind::Entered {
                    mode: DegradedMode::SafeStop,
                    cause: DegradationCause::RestartsExhausted { .. },
                }
            )
        });
        assert!(entered, "safe stop must cite the exhausted restart budget");
    }

    #[test]
    fn event_log_is_reproducible() {
        let run = |seed| {
            let mut sup = modeled(seed, FaultConfig::stress());
            sup.simulate(1_500, 1.0);
            sup.events().to_vec()
        };
        assert_eq!(run(21), run(21));
        assert_ne!(run(21), run(22));
    }

    #[test]
    fn events_render_for_the_log() {
        let mut sup = modeled(7, FaultConfig::stress());
        sup.simulate(500, 1.0);
        assert!(!sup.events().is_empty());
        for e in sup.events() {
            assert!(e.to_string().starts_with("frame "));
        }
    }
}
