use crate::config::PlatformConfig;
use adsim_platform::{resolution_scale, Component, LatencyModel};
use adsim_stats::{LatencyRecorder, Rng64};

/// Latencies of one simulated frame (ms).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameLatency {
    /// Object detection.
    pub detection: f64,
    /// Object tracking.
    pub tracking: f64,
    /// Localization.
    pub localization: f64,
    /// Sensor fusion.
    pub fusion: f64,
    /// Motion planning.
    pub motion_planning: f64,
}

impl FrameLatency {
    /// End-to-end latency: detection and localization start in
    /// parallel (Fig. 1 steps 1a/1b), tracking consumes detection
    /// output (1c), then fusion and motion planning run on the merged
    /// results. The critical path is therefore
    /// `max(LOC, DET + TRA) + FUSION + MOTPLAN`.
    pub fn end_to_end(&self) -> f64 {
        (self.detection + self.tracking).max(self.localization)
            + self.fusion
            + self.motion_planning
    }

    /// The perception critical path without the planning epilogue.
    pub fn perception(&self) -> f64 {
        (self.detection + self.tracking).max(self.localization)
    }
}

/// Distributions recorded over a simulation run.
#[derive(Debug, Clone, Default)]
pub struct PipelineStats {
    /// Detection latency samples.
    pub detection: LatencyRecorder,
    /// Tracking latency samples.
    pub tracking: LatencyRecorder,
    /// Localization latency samples.
    pub localization: LatencyRecorder,
    /// Fusion latency samples.
    pub fusion: LatencyRecorder,
    /// Motion-planning latency samples.
    pub motion_planning: LatencyRecorder,
    /// End-to-end latency samples.
    pub end_to_end: LatencyRecorder,
}

impl PipelineStats {
    /// Recorder for one component.
    pub fn component(&self, c: Component) -> &LatencyRecorder {
        match c {
            Component::Detection => &self.detection,
            Component::Tracking => &self.tracking,
            Component::Localization => &self.localization,
            Component::Fusion => &self.fusion,
            Component::MotionPlanning => &self.motion_planning,
        }
    }
}

/// The modeled end-to-end pipeline: per-frame latencies are drawn from
/// the calibrated platform distributions, composed along the Fig. 1
/// dataflow. Used by every figure-regeneration bench.
#[derive(Debug)]
pub struct ModeledPipeline {
    model: LatencyModel,
    config: PlatformConfig,
    rng: Rng64,
}

impl ModeledPipeline {
    /// Creates a pipeline for one platform assignment. Equal seeds
    /// reproduce identical runs.
    pub fn new(config: PlatformConfig, seed: u64) -> Self {
        Self { model: LatencyModel::paper_calibrated(), config, rng: Rng64::new(seed) }
    }

    /// The platform assignment.
    pub fn config(&self) -> PlatformConfig {
        self.config
    }

    /// The underlying latency model.
    pub fn model(&self) -> &LatencyModel {
        &self.model
    }

    /// Simulates one frame at a pixel ratio relative to the reference
    /// (KITTI) resolution.
    pub fn simulate_frame(&mut self, pixel_ratio: f64) -> FrameLatency {
        let mut sample = |c: Component| {
            let p = self.config.platform_for(c);
            let scale = resolution_scale(c, pixel_ratio);
            self.model.sample_ms(c, p, &mut self.rng, scale)
        };
        FrameLatency {
            detection: sample(Component::Detection),
            tracking: sample(Component::Tracking),
            localization: sample(Component::Localization),
            fusion: sample(Component::Fusion),
            motion_planning: sample(Component::MotionPlanning),
        }
    }

    /// Simulates `frames` frames, recording all distributions.
    pub fn simulate(&mut self, frames: usize, pixel_ratio: f64) -> PipelineStats {
        let mut stats = PipelineStats {
            detection: LatencyRecorder::with_capacity(frames),
            tracking: LatencyRecorder::with_capacity(frames),
            localization: LatencyRecorder::with_capacity(frames),
            fusion: LatencyRecorder::with_capacity(frames),
            motion_planning: LatencyRecorder::with_capacity(frames),
            end_to_end: LatencyRecorder::with_capacity(frames),
        };
        for _ in 0..frames {
            let f = self.simulate_frame(pixel_ratio);
            stats.detection.record(f.detection);
            stats.tracking.record(f.tracking);
            stats.localization.record(f.localization);
            stats.fusion.record(f.fusion);
            stats.motion_planning.record(f.motion_planning);
            stats.end_to_end.record(f.end_to_end());
        }
        stats
    }

    /// Analytic end-to-end p99.99 (no sampling): the tail of the
    /// critical path, approximated by composing per-component tails —
    /// exact when one path dominates, as in every paper configuration.
    pub fn analytic_tail_ms(&self, pixel_ratio: f64) -> f64 {
        let t = |c: Component| {
            self.model.p99_99_ms(
                c,
                self.config.platform_for(c),
                resolution_scale(c, pixel_ratio),
            )
        };
        (t(Component::Detection) + t(Component::Tracking)).max(t(Component::Localization))
            + t(Component::Fusion)
            + t(Component::MotionPlanning)
    }

    /// Analytic end-to-end mean.
    pub fn analytic_mean_ms(&self, pixel_ratio: f64) -> f64 {
        let t = |c: Component| {
            self.model.mean_ms(
                c,
                self.config.platform_for(c),
                resolution_scale(c, pixel_ratio),
            )
        };
        (t(Component::Detection) + t(Component::Tracking)).max(t(Component::Localization))
            + t(Component::Fusion)
            + t(Component::MotionPlanning)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsim_platform::Platform;

    #[test]
    fn cpu_baseline_is_seconds_scale() {
        let mut pipe = ModeledPipeline::new(PlatformConfig::all_cpu(), 1);
        let stats = pipe.simulate(2_000, 1.0);
        let s = stats.end_to_end.summary();
        // Paper: ~7.9 s mean, 9.1 s tail on multicore CPUs.
        assert!(s.mean > 7_000.0 && s.mean < 9_000.0, "mean {}", s.mean);
        assert!(!s.meets_deadline(100.0));
    }

    #[test]
    fn best_accelerated_config_meets_constraints() {
        // DET on GPU, TRA on ASIC: the paper's 16.1 ms tail design.
        let cfg = PlatformConfig {
            detection: Platform::Gpu,
            tracking: Platform::Asic,
            localization: Platform::Asic,
        };
        let mut pipe = ModeledPipeline::new(cfg, 2);
        let stats = pipe.simulate(20_000, 1.0);
        let s = stats.end_to_end.summary();
        assert!(s.meets_deadline(100.0), "tail {}", s.p99_99);
        assert!(s.p99_99 < 25.0, "tail {}", s.p99_99);
    }

    #[test]
    fn end_to_end_composition_is_critical_path() {
        let f = FrameLatency {
            detection: 10.0,
            tracking: 5.0,
            localization: 20.0,
            fusion: 0.1,
            motion_planning: 0.5,
        };
        assert!((f.end_to_end() - 20.6).abs() < 1e-12, "LOC dominates");
        let f2 = FrameLatency { localization: 8.0, ..f };
        assert!((f2.end_to_end() - 15.6).abs() < 1e-12, "DET+TRA dominates");
    }

    #[test]
    fn seeded_runs_reproduce() {
        let cfg = PlatformConfig::uniform(Platform::Gpu);
        let a = ModeledPipeline::new(cfg, 5).simulate(100, 1.0);
        let b = ModeledPipeline::new(cfg, 5).simulate(100, 1.0);
        assert_eq!(a.end_to_end.summary(), b.end_to_end.summary());
    }

    #[test]
    fn analytic_tail_tracks_sampled_tail() {
        let cfg = PlatformConfig::uniform(Platform::Gpu);
        let mut pipe = ModeledPipeline::new(cfg, 3);
        let sampled = pipe.simulate(50_000, 1.0).end_to_end.summary().p99_99;
        let analytic = pipe.analytic_tail_ms(1.0);
        assert!(
            (sampled - analytic).abs() / analytic < 0.2,
            "sampled {sampled} vs analytic {analytic}"
        );
    }

    #[test]
    fn resolution_scaling_raises_latency() {
        let cfg = PlatformConfig::uniform(Platform::Gpu);
        let pipe = ModeledPipeline::new(cfg, 4);
        assert!(pipe.analytic_mean_ms(4.0) > 3.0 * pipe.analytic_mean_ms(1.0));
    }
}
