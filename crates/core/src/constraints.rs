use adsim_stats::LatencySummary;
use adsim_vehicle::power::SystemPower;
use adsim_vehicle::range::ev_range_reduction;

/// The design constraints of §2.4, as checkable thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignConstraints {
    /// Performance: processing must finish within this tail latency
    /// (§2.4.1: 100 ms).
    pub max_tail_latency_ms: f64,
    /// Performance: the system must keep up with at least this frame
    /// rate (§2.4.1: 10 frames per second).
    pub min_frame_rate_fps: f64,
    /// Predictability: tail/mean ratio above which the platform is
    /// considered unpredictable (§2.4.2).
    pub max_tail_to_mean: f64,
    /// Power: maximum acceptable driving-range reduction (§5.3 argues
    /// specialized hardware is needed to stay under 5 %).
    pub max_range_reduction: f64,
}

impl Default for DesignConstraints {
    fn default() -> Self {
        Self {
            max_tail_latency_ms: 100.0,
            min_frame_rate_fps: 10.0,
            max_tail_to_mean: 3.0,
            max_range_reduction: 0.05,
        }
    }
}

/// One evaluated constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintCheck {
    /// Constraint name.
    pub name: &'static str,
    /// Whether the design satisfies it.
    pub passed: bool,
    /// Human-readable measurement vs threshold.
    pub detail: String,
}

/// The full §2.4 audit for one system design.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintReport {
    /// Individual checks.
    pub checks: Vec<ConstraintCheck>,
}

impl ConstraintReport {
    /// Evaluates a design from its end-to-end latency distribution and
    /// system power model.
    pub fn evaluate(
        constraints: &DesignConstraints,
        latency: &LatencySummary,
        system: &SystemPower,
    ) -> Self {
        let mut checks = Vec::new();

        checks.push(ConstraintCheck {
            name: "performance: tail latency",
            passed: latency.p99_99 <= constraints.max_tail_latency_ms,
            detail: format!(
                "p99.99 {:.1} ms vs {:.0} ms limit",
                latency.p99_99, constraints.max_tail_latency_ms
            ),
        });

        // Frame-rate: a pipeline that takes `mean` ms per frame
        // sustains 1000/mean FPS.
        let fps = if latency.mean > 0.0 { 1_000.0 / latency.mean } else { f64::INFINITY };
        checks.push(ConstraintCheck {
            name: "performance: frame rate",
            passed: fps >= constraints.min_frame_rate_fps,
            detail: format!("{fps:.1} FPS vs {:.0} FPS minimum", constraints.min_frame_rate_fps),
        });

        let ratio = latency.tail_to_mean_ratio();
        checks.push(ConstraintCheck {
            name: "predictability: tail/mean",
            passed: ratio <= constraints.max_tail_to_mean,
            detail: format!("ratio {ratio:.2} vs {:.1} limit", constraints.max_tail_to_mean),
        });

        let reduction = ev_range_reduction(system.total_w());
        checks.push(ConstraintCheck {
            name: "power: driving-range reduction",
            passed: reduction <= constraints.max_range_reduction,
            detail: format!(
                "{:.1}% vs {:.0}% limit ({:.0} W total)",
                reduction * 100.0,
                constraints.max_range_reduction * 100.0,
                system.total_w()
            ),
        });

        // Thermal: the model already places the system in the cabin
        // and charges the cooling overhead; the check records that the
        // cooling capacity covers the dissipated heat.
        checks.push(ConstraintCheck {
            name: "thermal: in-cabin with added cooling",
            passed: system.cooling_w() > 0.0 || system.electrical_w() == 0.0,
            detail: format!(
                "{:.0} W heat removed by {:.0} W cooling (COP 1.3)",
                system.electrical_w(),
                system.cooling_w()
            ),
        });

        Self { checks }
    }

    /// Whether every constraint passed.
    pub fn all_passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// The failed checks.
    pub fn failures(&self) -> Vec<&ConstraintCheck> {
        self.checks.iter().filter(|c| !c.passed).collect()
    }
}

impl std::fmt::Display for ConstraintReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for c in &self.checks {
            writeln!(f, "[{}] {:<36} {}", if c.passed { "PASS" } else { "FAIL" }, c.name, c.detail)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsim_stats::LatencyRecorder;

    fn summary(mean: f64, tail: f64) -> LatencySummary {
        LatencySummary { count: 1000, mean, p50: mean, p95: mean, p99: mean, p99_9: tail, p99_99: tail, max: tail }
    }

    #[test]
    fn fast_efficient_design_passes_everything() {
        let report = ConstraintReport::evaluate(
            &DesignConstraints::default(),
            &summary(12.0, 17.0),
            // All-ASIC: 17.3 W per camera.
            &SystemPower::new(8, 17.3, 41_000_000_000_000),
        );
        assert!(report.all_passed(), "{report}");
    }

    #[test]
    fn cpu_baseline_fails_performance() {
        let report = ConstraintReport::evaluate(
            &DesignConstraints::default(),
            &summary(7_900.0, 9_100.0),
            &SystemPower::new(8, 51.2 + 106.9 + 53.8, 41_000_000_000_000),
        );
        assert!(!report.all_passed());
        let names: Vec<_> = report.failures().iter().map(|c| c.name).collect();
        assert!(names.contains(&"performance: tail latency"));
        assert!(names.contains(&"performance: frame rate"));
    }

    #[test]
    fn gpu_design_fails_power_only() {
        let report = ConstraintReport::evaluate(
            &DesignConstraints::default(),
            &summary(17.0, 21.0),
            &SystemPower::new(8, 162.0, 41_000_000_000_000),
        );
        assert!(!report.all_passed());
        let failures = report.failures();
        assert_eq!(failures.len(), 1, "{report}");
        assert_eq!(failures[0].name, "power: driving-range reduction");
    }

    #[test]
    fn unpredictable_latency_fails_predictability() {
        let report = ConstraintReport::evaluate(
            &DesignConstraints::default(),
            &summary(20.0, 95.0),
            &SystemPower::new(8, 17.3, 0),
        );
        let names: Vec<_> = report.failures().iter().map(|c| c.name).collect();
        assert!(names.contains(&"predictability: tail/mean"), "{report}");
    }

    #[test]
    fn report_from_real_recorder() {
        let rec: LatencyRecorder = (0..1000).map(|i| 10.0 + (i % 7) as f64).collect();
        let report = ConstraintReport::evaluate(
            &DesignConstraints::default(),
            &rec.summary(),
            &SystemPower::new(1, 17.3, 0),
        );
        assert!(report.all_passed());
        assert!(report.to_string().contains("PASS"));
    }
}
