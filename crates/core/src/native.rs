use crate::modeled::FrameLatency;
use adsim_anytime::{ModelVariant, QualityKnobs};
use adsim_dnn::detection::Detection;
use adsim_perception::{
    BatchRequest, BlobDetector, Detector, DetectorVariant, GoturnTracker, TemplateTracker,
    TrackedObject, Tracker, TrackerPool, TrackerPoolConfig, YoloDetector,
};
use adsim_planning::{Environment, FusedFrame, FusionEngine, MotionPlan, MotionPlanner};
use adsim_runtime::Runtime;
use adsim_slam::{
    LocCost, LocalizeOutcome, LocalizeResult, Localizer, LocalizerConfig, PriorMap, SharedMap,
};
use adsim_vision::{GrayImage, OrbExtractor, OrthoCamera, Pose2};
use adsim_workload::World;
use std::time::Instant;

/// Which detector implementation the native pipeline runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DetectorKind {
    /// Classical blob detector — functionally accurate on the
    /// synthetic worlds.
    Blob,
    /// Reduced-scale YOLO DNN — exercises the paper's compute
    /// structure (untrained weights; see DESIGN.md).
    Yolo {
        /// Output grid side.
        grid: usize,
        /// Confidence threshold.
        threshold: f32,
    },
}

/// Which single-object tracker the pool is populated with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackerKind {
    /// Template matcher — functionally accurate on the synthetic
    /// worlds, cheap per track.
    Template,
    /// GOTURN-style regression DNN per track — exercises the paper's
    /// Fig. 4 compute structure and makes TRA a DNN workload whose
    /// cost scales with the number of tracked objects.
    Goturn,
}

/// Native pipeline construction parameters.
#[derive(Debug, Clone)]
pub struct NativePipelineConfig {
    /// Detector implementation.
    pub detector: DetectorKind,
    /// Tracker implementation populating the pool.
    pub tracker: TrackerKind,
    /// ORB feature budget for localization.
    pub orb_features: usize,
    /// FAST threshold for localization.
    pub fast_threshold: u8,
    /// Localizer tuning.
    pub localizer: LocalizerConfig,
    /// Tracker-pool tuning.
    pub tracker_pool: TrackerPoolConfig,
    /// Driving environment for the motion planner.
    pub environment: Environment,
    /// Cruise speed (m/s).
    pub cruise_mps: f64,
    /// Worker pool for the pipeline fork (steps 1a/1b) and the DNN
    /// kernels; `Runtime::serial()` reproduces single-core execution
    /// for the parallelism ablation.
    pub runtime: Runtime,
}

impl Default for NativePipelineConfig {
    fn default() -> Self {
        Self {
            detector: DetectorKind::Blob,
            tracker: TrackerKind::Template,
            orb_features: 300,
            fast_threshold: 25,
            localizer: LocalizerConfig::default(),
            tracker_pool: TrackerPoolConfig::default(),
            environment: Environment::Structured(
                adsim_planning::Centerline::straight(10_000.0),
            ),
            cruise_mps: 11.0,
            runtime: Runtime::max_parallel(),
        }
    }
}

/// Per-frame overrides a supervisor uses to steer a degraded frame
/// through the pipeline. [`ProcessControl::default()`] is the
/// transparent hook: [`NativePipeline::process`] routes through it and
/// behaves bit-identically to the unhooked pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ProcessControl {
    /// Skip the detection engine this frame (tracker-only perception:
    /// the pool advances existing tracks with no new detections).
    pub skip_detection: bool,
    /// Skip the localization engine this frame (models lock loss; the
    /// SLAM module produces no pose and its motion model goes stale).
    pub skip_localization: bool,
    /// Pose to fuse against when localization yields nothing — the
    /// supervisor's dead-reckoned estimate. Never overrides a
    /// successful localization.
    pub pose_fallback: Option<Pose2>,
    /// Normalized offset added to every reported track box (injected
    /// tracker divergence).
    pub track_shift: Option<(f32, f32)>,
    /// Quality operating point commanded by the anytime governor:
    /// detector input scale + model variant and tracker-pool capacity.
    /// `None` leaves every knob untouched — the bit-identity hook for
    /// governor-off runs.
    pub quality: Option<QualityKnobs>,
}

/// Output of processing one frame natively.
#[derive(Debug)]
pub struct NativeFrameResult {
    /// Measured wall-clock latencies (ms).
    pub latency: FrameLatency,
    /// Raw detector output (empty when the stage was skipped) — the
    /// DET → TRA hand-off payload, exposed for stage-boundary
    /// monitoring.
    pub detections: Vec<Detection>,
    /// Localizer pose estimate (`None` when lost).
    pub pose: Option<Pose2>,
    /// Tracked-object table after this frame.
    pub tracks: Vec<TrackedObject>,
    /// Fused world-state.
    pub fused: FusedFrame,
    /// The motion plan.
    pub plan: MotionPlan,
}

/// The real end-to-end system of Fig. 1, running this workspace's
/// actual algorithm implementations and measuring wall-clock latency
/// per stage. Detection and localization run concurrently (steps
/// 1a/1b), exactly as in the paper's architecture.
pub struct NativePipeline {
    camera: OrthoCamera,
    localizer: Localizer,
    detector: Box<dyn Detector + Send>,
    pool: TrackerPool,
    fusion: FusionEngine,
    motion: MotionPlanner,
    runtime: Runtime,
    /// Frames processed so far — stamps the track-count gauge so fleet
    /// merges can pick the later sample deterministically.
    frames: u64,
}

impl std::fmt::Debug for NativePipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativePipeline").finish()
    }
}

impl NativePipeline {
    /// Builds the pipeline over a prior map.
    ///
    /// Accepts an owned [`PriorMap`], an `Arc<PriorMap>` (the fleet
    /// path: every vehicle cell reads one shared prior allocation), or
    /// a pre-built [`SharedMap`]. Map updates stay private to this
    /// pipeline's localizer either way.
    pub fn new(
        camera: OrthoCamera,
        map: impl Into<SharedMap>,
        cfg: NativePipelineConfig,
    ) -> Self {
        // The DET/LOC fork occupies two workers; ORB's per-level fan
        // -out inside the localization arm gets what remains.
        let orb_rt = Runtime::new(cfg.runtime.threads().saturating_sub(1).max(1));
        let orb = OrbExtractor::new(cfg.orb_features, cfg.fast_threshold)
            .with_levels(2)
            .with_runtime(orb_rt);
        let detector: Box<dyn Detector + Send> = match cfg.detector {
            DetectorKind::Blob => Box::new(BlobDetector::new()),
            DetectorKind::Yolo { grid, threshold } => {
                // The fork already occupies two workers; give the DNN
                // kernels whatever parallelism remains beyond the
                // concurrent localization thread.
                let dnn_rt = Runtime::new(cfg.runtime.threads().saturating_sub(1).max(1));
                Box::new(YoloDetector::new(grid, threshold).with_runtime(dnn_rt))
            }
        };
        let pool = match cfg.tracker {
            TrackerKind::Template => TrackerPool::new(cfg.tracker_pool, |frame, bbox| {
                Box::new(TemplateTracker::new(frame, bbox)) as Box<dyn Tracker>
            }),
            TrackerKind::Goturn => TrackerPool::new(cfg.tracker_pool, |frame, bbox| {
                Box::new(GoturnTracker::new(frame, bbox)) as Box<dyn Tracker>
            }),
        }
        // Tracking runs after the DET/LOC fork has joined, so its
        // per-track fan-out may use the full pool.
        .with_runtime(cfg.runtime);
        Self {
            camera,
            localizer: Localizer::new(map, camera, orb, cfg.localizer).with_runtime(orb_rt),
            detector,
            pool,
            fusion: FusionEngine::new(),
            motion: MotionPlanner::new(cfg.environment, cfg.cruise_mps)
                .with_runtime(cfg.runtime),
            runtime: cfg.runtime,
            frames: 0,
        }
    }

    /// Seeds the localizer (GPS bootstrap).
    pub fn seed_pose(&mut self, pose: Pose2) {
        self.localizer.seed_pose(pose);
    }

    /// The localizer (for stats inspection).
    pub fn localizer(&self) -> &Localizer {
        &self.localizer
    }

    /// A deep snapshot of everything mutable across frames: the
    /// localizer (pose/motion model, private map overlay, stats), the
    /// tracker pool, fusion histories, the motion planner and the frame
    /// counter. The detector is deliberately *not* captured: its only
    /// mutable state is the anytime quality operating point, and
    /// [`NativePipeline::apply_quality`] re-commands those knobs from
    /// the frame's control before any stage runs, so restored frames
    /// re-establish it deterministically.
    pub fn snapshot(&self) -> PipelineSnapshot {
        PipelineSnapshot {
            localizer: self.localizer.clone(),
            pool: self.pool.snapshot(),
            fusion: self.fusion.clone(),
            motion: self.motion.clone(),
            frames: self.frames,
        }
    }

    /// Restores a [`NativePipeline::snapshot`]; the pipeline resumes
    /// bit-identically from the captured frame. Snapshots are reusable
    /// (restoring clones out of them).
    pub fn restore(&mut self, snap: &PipelineSnapshot) {
        self.localizer = snap.localizer.clone();
        self.pool.restore(&snap.pool);
        self.fusion = snap.fusion.clone();
        self.motion = snap.motion.clone();
        self.frames = snap.frames;
    }

    /// Processes one camera frame through the full Fig. 1 dataflow.
    pub fn process(&mut self, image: &GrayImage, time_s: f64) -> NativeFrameResult {
        self.process_with(image, time_s, &ProcessControl::default())
    }

    /// Applies an anytime quality operating point before any stage
    /// runs, so the whole frame executes at one operating point. Both
    /// knob setters are O(1) no-ops when already at the commanded
    /// value (the model-variant switch clones from a shared cache —
    /// never a weight copy), so re-applying the same knobs is free.
    pub fn apply_quality(&mut self, quality: Option<QualityKnobs>) {
        if let Some(k) = quality {
            let variant = match k.det_variant {
                ModelVariant::Full => DetectorVariant::Full,
                ModelVariant::Reduced => DetectorVariant::Reduced,
            };
            self.detector.set_quality(k.det_scale, variant);
            if self.pool.capacity() != k.tracker_capacity {
                self.pool.set_capacity(k.tracker_capacity);
            }
        }
    }

    /// Prepares this frame's detection stage for cross-vehicle batched
    /// execution: applies the control's quality knobs (so the request
    /// reflects the frame's actual operating point) and asks the
    /// detector to package its DNN input. Returns `None` when the
    /// frame skips detection or the detector has no batchable stage —
    /// the caller then lets [`NativePipeline::process_with`] run
    /// detection inline as usual.
    pub fn det_batch_request(
        &mut self,
        image: &GrayImage,
        ctrl: &ProcessControl,
    ) -> Option<BatchRequest> {
        self.apply_quality(ctrl.quality);
        if ctrl.skip_detection {
            return None;
        }
        self.detector.batch_request(image)
    }

    /// [`NativePipeline::process`] with supervisor overrides. The
    /// default control is transparent; a skipped stage costs zero
    /// measured latency and produces its empty output (no detections /
    /// no pose).
    pub fn process_with(
        &mut self,
        image: &GrayImage,
        time_s: f64,
        ctrl: &ProcessControl,
    ) -> NativeFrameResult {
        self.process_with_det(image, time_s, ctrl, None)
    }

    /// [`NativePipeline::process_with`] where the detection stage may
    /// already have run externally (the cross-vehicle batched path).
    ///
    /// `det_override = Some(d)` means a batch runner executed this
    /// frame's forward pass from an earlier
    /// [`NativePipeline::det_batch_request`]; the detector is not
    /// invoked, `d` feeds tracking/monitoring exactly as an inline
    /// result would, and the stage's measured wall latency is zero
    /// (the batched forward is accounted at the fleet level). All
    /// virtual-clock outputs — detections, tracks, plan, telemetry
    /// counts — are bit-identical to the inline path by construction.
    pub fn process_with_det(
        &mut self,
        image: &GrayImage,
        time_s: f64,
        ctrl: &ProcessControl,
        det_override: Option<Vec<Detection>>,
    ) -> NativeFrameResult {
        let _frame_sp = adsim_trace::span("pipeline.frame");
        self.apply_quality(ctrl.quality);
        // Steps 1a/1b: detection and localization in parallel (serial
        // in order on a single-worker runtime). When a stage is
        // skipped or pre-computed there is no fork to run concurrently.
        let localizer = &mut self.localizer;
        let detector = &mut self.detector;
        let run_loc = |localizer: &mut Localizer| {
            let _sp = adsim_trace::span("stage.loc");
            let t = Instant::now();
            let r = localizer.localize(image);
            (r, t.elapsed().as_secs_f64() * 1e3)
        };
        let run_det = |detector: &mut Box<dyn Detector + Send>| {
            let _sp = adsim_trace::span("stage.det");
            let t = Instant::now();
            let d = detector.detect(image);
            (d, t.elapsed().as_secs_f64() * 1e3)
        };
        let det_done = det_override.is_some();
        let ((loc_result, loc_ms), (detections, det_ms)) =
            if ctrl.skip_detection || ctrl.skip_localization || det_done {
                let loc = if ctrl.skip_localization {
                    let lost = LocalizeResult {
                        pose: None,
                        outcome: LocalizeOutcome::Lost,
                        cost: LocCost::default(),
                    };
                    (lost, 0.0)
                } else {
                    run_loc(localizer)
                };
                let det = if ctrl.skip_detection {
                    (Vec::new(), 0.0)
                } else if let Some(d) = det_override {
                    (d, 0.0)
                } else {
                    run_det(detector)
                };
                (loc, det)
            } else {
                self.runtime.join(move || run_loc(localizer), move || run_det(detector))
            };

        // Step 1c: tracking.
        let tra_sp = adsim_trace::span("stage.tra");
        let t = Instant::now();
        let mut tracks = self.pool.step(image, &detections);
        if let Some((dx, dy)) = ctrl.track_shift {
            for tr in &mut tracks {
                tr.bbox.cx = (tr.bbox.cx + dx).clamp(0.0, 1.0);
                tr.bbox.cy = (tr.bbox.cy + dy).clamp(0.0, 1.0);
            }
        }
        let tra_ms = t.elapsed().as_secs_f64() * 1e3;
        drop(tra_sp);

        // Step 2: fusion onto the world frame.
        let pose = loc_result
            .pose
            .or(ctrl.pose_fallback)
            .or(self.localizer.pose())
            .unwrap_or_default();
        let fus_sp = adsim_trace::span("stage.fusion");
        let t = Instant::now();
        let rows: Vec<_> = tracks.iter().map(|tr| (tr.track_id, tr.class, tr.bbox)).collect();
        let fused = self.fusion.fuse_with(&self.runtime, &self.camera, pose, time_s, &rows);
        let fus_ms = t.elapsed().as_secs_f64() * 1e3;
        drop(fus_sp);

        // Step 3: motion planning.
        let mot_sp = adsim_trace::span("stage.motplan");
        let t = Instant::now();
        let plan = self.motion.plan(&fused);
        let mot_ms = t.elapsed().as_secs_f64() * 1e3;
        drop(mot_sp);

        // Telemetry is recorded on the calling thread only — the DET /
        // LOC join closures run on pool workers whose shards belong to
        // whatever vehicle scope those threads happen to hold. Counts
        // and the track gauge are virtual-clock-free quantities, so
        // fleet aggregates stay deterministic.
        self.frames += 1;
        adsim_telemetry::counter_add("pipeline_frame_total", "", 1);
        if !ctrl.skip_detection {
            adsim_telemetry::counter_add("pipeline_detection_total", "det", detections.len() as u64);
        }
        adsim_telemetry::gauge_set("pipeline_track_count", "tra", self.frames, tracks.len() as f64);

        NativeFrameResult {
            latency: FrameLatency {
                detection: det_ms,
                tracking: tra_ms,
                localization: loc_ms,
                fusion: fus_ms,
                motion_planning: mot_ms,
            },
            detections,
            pose: loc_result.pose,
            tracks,
            fused,
            plan,
        }
    }
}

/// A deep copy of a [`NativePipeline`]'s cross-frame mutable state,
/// captured by [`NativePipeline::snapshot`]. The recovery layer wraps
/// it (with the supervisor's own state) into a pipeline checkpoint.
#[derive(Clone)]
pub struct PipelineSnapshot {
    localizer: Localizer,
    pool: adsim_perception::TrackerPoolSnapshot,
    fusion: FusionEngine,
    motion: MotionPlanner,
    frames: u64,
}

impl PipelineSnapshot {
    /// Rough size of the snapshot's dynamic state in bytes: map-overlay
    /// landmarks plus live trackers. Deterministic (counts only — no
    /// allocator introspection), so benches can report it exactly.
    pub fn approx_bytes(&self) -> usize {
        const LANDMARK_BYTES: usize = 48; // world point + 256-bit descriptor
        const TRACKER_BYTES: usize = 1_200; // crop/template + box + row
        std::mem::size_of::<Self>()
            + self.localizer.map().overlay().len() * LANDMARK_BYTES
            + self.pool.len() * TRACKER_BYTES
    }
}

impl std::fmt::Debug for PipelineSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineSnapshot")
            .field("frames", &self.frames)
            .field("tracks", &self.pool.len())
            .finish()
    }
}

/// Builds a prior map of a synthetic world by sweeping mapping poses
/// and back-projecting extracted ORB features — the offline mapping
/// pass a real deployment performs before the prior map is loaded onto
/// the vehicle (§2.4.3).
pub fn build_prior_map(
    world: &World,
    camera: &OrthoCamera,
    mapping_poses: impl IntoIterator<Item = Pose2>,
    orb_features: usize,
    fast_threshold: u8,
) -> PriorMap {
    let orb = OrbExtractor::new(orb_features, fast_threshold).with_levels(2);
    let mut map = PriorMap::empty();
    for pose in mapping_poses {
        // Map the static world only (objects move; landmarks persist).
        let frame = world.render(camera, &pose, -1_000.0);
        for f in orb.extract(&frame) {
            let w = camera.image_to_world(&pose, f.keypoint.x as f64, f.keypoint.y as f64);
            let dup = map
                .near(w, 0.5)
                .iter()
                .any(|lm| lm.descriptor.hamming(&f.descriptor) < 32);
            if !dup {
                map.insert_new(w, f.descriptor);
            }
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsim_workload::{Resolution, Scenario, ScenarioKind};

    fn pipeline_for(scenario: &Scenario, res: Resolution) -> NativePipeline {
        let camera = scenario.camera(res);
        // Mapping sweep along the first 40 s of trajectory, plus
        // lateral offsets for coverage.
        let poses = (0..40)
            .flat_map(|i| {
                let p = scenario.pose_at(i * 10);
                [p, Pose2::new(p.x, p.y + 25.0, p.theta), Pose2::new(p.x, p.y - 25.0, p.theta)]
            })
            .collect::<Vec<_>>();
        let map = build_prior_map(scenario.world(), &camera, poses, 300, 25);
        let mut pipe = NativePipeline::new(camera, map, NativePipelineConfig::default());
        pipe.seed_pose(scenario.pose_at(0));
        pipe
    }

    #[test]
    fn processes_an_urban_drive_end_to_end() {
        let scenario = Scenario::new(ScenarioKind::UrbanDrive, 11);
        let mut pipe = pipeline_for(&scenario, Resolution::Hhd);
        let mut localized = 0;
        let mut planned = 0;
        for frame in scenario.stream(Resolution::Hhd).take(10) {
            let out = pipe.process(&frame.image, frame.time_s);
            if let Some(pose) = out.pose {
                let err = pose.distance(&frame.truth_pose);
                assert!(err < 3.0, "frame {}: pose error {err:.2} m", frame.index);
                localized += 1;
            }
            if !matches!(out.plan, MotionPlan::EmergencyStop) {
                planned += 1;
            }
            assert!(out.latency.end_to_end() > 0.0);
        }
        assert!(localized >= 7, "localized {localized}/10 frames");
        // Dense urban clutter legitimately forces occasional
        // emergency stops; most frames must still produce a plan.
        assert!(planned >= 4, "planned {planned}/10 frames");
    }

    #[test]
    fn tracker_table_follows_detections() {
        let scenario = Scenario::new(ScenarioKind::UrbanDrive, 13);
        let mut pipe = pipeline_for(&scenario, Resolution::Hhd);
        let mut saw_tracks = false;
        for frame in scenario.stream(Resolution::Hhd).take(8) {
            let out = pipe.process(&frame.image, frame.time_s);
            if !out.tracks.is_empty() {
                saw_tracks = true;
                // Fused objects correspond 1:1 to tracks.
                assert_eq!(out.fused.objects.len(), out.tracks.len());
            }
        }
        assert!(saw_tracks, "urban scenario should yield tracked objects");
    }

    #[test]
    fn yolo_detector_variant_runs() {
        let scenario = Scenario::new(ScenarioKind::ParkingLot, 5);
        let camera = scenario.camera(Resolution::Hhd);
        let map = build_prior_map(
            scenario.world(),
            &camera,
            (0..5).map(|i| scenario.pose_at(i * 20)),
            200,
            25,
        );
        let cfg = NativePipelineConfig {
            detector: DetectorKind::Yolo { grid: 6, threshold: 0.6 },
            ..Default::default()
        };
        let mut pipe = NativePipeline::new(camera, map, cfg);
        pipe.seed_pose(scenario.pose_at(0));
        let frame = scenario.stream(Resolution::Hhd).next().unwrap();
        let out = pipe.process(&frame.image, frame.time_s);
        assert!(out.latency.detection > 0.0);
    }
}
