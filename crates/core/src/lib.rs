//! The end-to-end autonomous driving system (paper Fig. 1) and its
//! design-constraint checker (§2.4).
//!
//! Two pipeline flavours share the same dataflow — camera frames fan
//! out to object detection and localization in parallel, detections
//! feed the tracker pool, tracks and the vehicle pose fuse onto one
//! world coordinate space, and the motion planner emits operational
//! decisions:
//!
//! * [`NativePipeline`] runs the *real* engines from this workspace
//!   (ORB-SLAM-style localizer, blob/YOLO detector, tracker pool,
//!   fusion, lattice planners, pure-pursuit control) on synthetic
//!   camera frames, measuring actual wall-clock latency;
//! * [`ModeledPipeline`] drives the calibrated platform latency model
//!   (`adsim-platform`) to regenerate the paper's evaluation figures
//!   at any (platform-assignment × resolution) point.
//!
//! # Examples
//!
//! ```
//! use adsim_core::{ModeledPipeline, PlatformConfig};
//! use adsim_platform::Platform;
//!
//! let mut pipe = ModeledPipeline::new(PlatformConfig::uniform(Platform::Gpu), 7);
//! let stats = pipe.simulate(1_000, 1.0);
//! let s = stats.end_to_end.summary();
//! assert!(s.p99_99 < 100.0, "all-GPU meets the 100 ms constraint");
//! ```

mod config;
mod constraints;
mod deadline;
mod modeled;
mod native;
mod simulation;
mod supervisor;
pub mod survey;

pub use config::PlatformConfig;
pub use constraints::{ConstraintCheck, ConstraintReport, DesignConstraints};
pub use deadline::{replay_stream, DeadlineStats};
pub use modeled::{FrameLatency, ModeledPipeline, PipelineStats};
pub use native::{
    build_prior_map, DetectorKind, NativeFrameResult, NativePipeline, NativePipelineConfig,
    PipelineSnapshot, ProcessControl, TrackerKind,
};
pub use simulation::{ClosedLoopSim, SimReport, SimStep};
pub use supervisor::{
    ActiveModes, DegradationCause, DegradationEvent, DegradationEventKind, DegradedMode,
    ModeledSupervisor, RecoveryStats, StagedFrame, SupervisedFrameResult, Supervisor,
    SupervisorCheckpoint, SupervisorConfig,
};
// Guard types surface in the supervisor API (config, causes, logs);
// re-export them so `adsim_core` alone is enough to drive it.
pub use adsim_guard::{GuardConfig, GuardEvent, GuardStats, Monitor, PipelineGuard, Violation};
// Anytime-governor types surface the same way (SupervisorConfig holds
// an AnytimeConfig; ProcessControl carries QualityKnobs).
pub use adsim_anytime::{
    default_ladder, AnytimeConfig, Governor, GovernorEvent, ModelVariant, NominalCosts,
    QualityKnobs, QualityLevel,
};
// Flight-recorder types surface through the supervisor API too
// (SupervisorConfig sizes the ring; dumps come back from it).
pub use adsim_telemetry::{DumpTrigger, FlightDump, FlightRecorder, FrameRecord};
