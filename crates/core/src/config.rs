use adsim_platform::{Component, LatencyModel, Platform};

/// A platform assignment for the three computational bottlenecks —
/// one point in the paper's Fig. 11/12 design-space sweep. Fusion and
/// motion planning always run on the host CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlatformConfig {
    /// Platform running object detection.
    pub detection: Platform,
    /// Platform running object tracking.
    pub tracking: Platform,
    /// Platform running localization.
    pub localization: Platform,
}

impl PlatformConfig {
    /// All three bottlenecks on the same platform.
    pub fn uniform(p: Platform) -> Self {
        Self { detection: p, tracking: p, localization: p }
    }

    /// The conventional multicore-CPU baseline.
    pub fn all_cpu() -> Self {
        Self::uniform(Platform::Cpu)
    }

    /// The platform assigned to a component.
    pub fn platform_for(&self, c: Component) -> Platform {
        match c {
            Component::Detection => self.detection,
            Component::Tracking => self.tracking,
            Component::Localization => self.localization,
            Component::Fusion | Component::MotionPlanning => Platform::Cpu,
        }
    }

    /// Every combination of platforms for the three bottlenecks
    /// (4³ = 64 points — the full acceleration landscape of §5).
    pub fn all_combinations() -> Vec<PlatformConfig> {
        let mut out = Vec::with_capacity(64);
        for &d in &Platform::ALL {
            for &t in &Platform::ALL {
                for &l in &Platform::ALL {
                    out.push(PlatformConfig { detection: d, tracking: t, localization: l });
                }
            }
        }
        out
    }

    /// The representative configurations plotted in the paper's
    /// Fig. 11/12: the CPU baseline, progressively accelerated mixes,
    /// and the uniform accelerator designs.
    pub fn paper_sweep() -> Vec<PlatformConfig> {
        use Platform::*;
        vec![
            Self::uniform(Cpu),
            Self { detection: Gpu, tracking: Gpu, localization: Cpu },
            Self::uniform(Gpu),
            Self { detection: Gpu, tracking: Gpu, localization: Fpga },
            Self { detection: Gpu, tracking: Gpu, localization: Asic },
            Self { detection: Gpu, tracking: Asic, localization: Fpga },
            Self { detection: Gpu, tracking: Asic, localization: Asic },
            Self { detection: Gpu, tracking: Fpga, localization: Fpga },
            Self::uniform(Fpga),
            Self { detection: Asic, tracking: Asic, localization: Fpga },
            Self::uniform(Asic),
        ]
    }

    /// Total compute power of one camera replica under this
    /// assignment: the sum of the three bottleneck engines' measured
    /// draws (Fig. 10c).
    pub fn compute_power_w(&self, model: &LatencyModel) -> f64 {
        Component::BOTTLENECKS
            .iter()
            .map(|&c| model.power_w(c, self.platform_for(c)))
            .sum()
    }

    /// Short label like `D:GPU T:ASIC L:FPGA` for tables.
    pub fn label(&self) -> String {
        format!("D:{} T:{} L:{}", self.detection, self.tracking, self.localization)
    }
}

impl std::fmt::Display for PlatformConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_assigns_everywhere() {
        let c = PlatformConfig::uniform(Platform::Asic);
        for comp in Component::BOTTLENECKS {
            assert_eq!(c.platform_for(comp), Platform::Asic);
        }
        assert_eq!(c.platform_for(Component::Fusion), Platform::Cpu);
    }

    #[test]
    fn all_combinations_is_exhaustive_and_unique() {
        let all = PlatformConfig::all_combinations();
        assert_eq!(all.len(), 64);
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), 64);
    }

    #[test]
    fn paper_sweep_starts_with_cpu_baseline() {
        let sweep = PlatformConfig::paper_sweep();
        assert_eq!(sweep[0], PlatformConfig::all_cpu());
        assert!(sweep.contains(&PlatformConfig::uniform(Platform::Asic)));
    }

    #[test]
    fn compute_power_sums_fig10c() {
        let model = LatencyModel::paper_calibrated();
        let gpu = PlatformConfig::uniform(Platform::Gpu).compute_power_w(&model);
        assert!((gpu - 162.0).abs() < 1e-9, "54 + 55 + 53 = 162, got {gpu}");
        let asic = PlatformConfig::uniform(Platform::Asic).compute_power_w(&model);
        assert!((asic - 17.3).abs() < 1e-9);
    }

    #[test]
    fn label_is_readable() {
        let c = PlatformConfig { detection: Platform::Gpu, tracking: Platform::Asic, localization: Platform::Fpga };
        assert_eq!(c.label(), "D:GPU T:ASIC L:FPGA");
    }
}
