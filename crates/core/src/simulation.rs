use crate::native::{build_prior_map, NativePipeline, NativePipelineConfig};
use adsim_planning::MotionPlan;
use adsim_vehicle::{BicycleState, VehicleController};
use adsim_vision::{Point2, Pose2};
use adsim_workload::{Resolution, Scenario, World};

/// One step of a closed-loop run.
#[derive(Debug, Clone, Copy)]
pub struct SimStep {
    /// Simulation time (s).
    pub time_s: f64,
    /// Ground-truth vehicle pose (the bicycle model's state).
    pub true_pose: Pose2,
    /// Localizer estimate, if tracking.
    pub estimated_pose: Option<Pose2>,
    /// Localization error (m), `NaN` when lost.
    pub localization_error_m: f64,
    /// Lateral offset from the lane center (m).
    pub cross_track_m: f64,
    /// Vehicle speed (m/s).
    pub speed_mps: f64,
    /// Whether the planner commanded an emergency stop.
    pub emergency_stop: bool,
    /// Measured end-to-end pipeline latency (ms).
    pub pipeline_ms: f64,
}

/// Aggregate metrics of a closed-loop run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimReport {
    /// Steps executed.
    pub steps: usize,
    /// Distance travelled (m).
    pub distance_m: f64,
    /// Mean localization error over tracked frames (m).
    pub mean_localization_error_m: f64,
    /// Frames on which localization was lost.
    pub lost_frames: usize,
    /// Largest lateral deviation from the lane center (m).
    pub max_cross_track_m: f64,
    /// Closest approach to any scripted object (m).
    pub min_object_clearance_m: f64,
    /// Emergency stops commanded.
    pub emergency_stops: usize,
}

/// A fully closed loop: the camera renders from the *controlled*
/// vehicle pose (not a scripted trajectory), the native pipeline
/// perceives and plans, and the controller drives the bicycle model —
/// perception errors feed back into control, closing the paper's
/// Fig. 1 loop end-to-end.
pub struct ClosedLoopSim {
    world: World,
    camera: adsim_vision::OrthoCamera,
    pipeline: NativePipeline,
    controller: VehicleController,
    state: BicycleState,
    time_s: f64,
    dt_s: f64,
}

impl std::fmt::Debug for ClosedLoopSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClosedLoopSim")
            .field("time_s", &self.time_s)
            .field("pose", &self.state.pose)
            .finish()
    }
}

impl ClosedLoopSim {
    /// Builds a closed-loop simulation for a scenario: maps the road
    /// corridor, constructs the native pipeline and places the vehicle
    /// at the scenario origin at cruise speed.
    pub fn new(scenario: &Scenario, resolution: Resolution) -> Self {
        let camera = scenario.camera(resolution);
        // Map the corridor the controlled vehicle can reach: along the
        // route with lateral offsets.
        let mut poses = Vec::new();
        let mut gx = -20.0f64;
        while gx < 420.0 {
            for gy in [-25.0, 0.0, 25.0] {
                poses.push(Pose2::new(gx, gy, 0.0));
            }
            gx += 24.0;
        }
        let map = build_prior_map(scenario.world(), &camera, poses, 300, 25);
        let cfg = NativePipelineConfig { cruise_mps: scenario.speed_mps(), ..Default::default() };
        let mut pipeline = NativePipeline::new(camera, map, cfg);
        let start = scenario.pose_at(0);
        pipeline.seed_pose(start);
        Self {
            world: scenario.world().clone(),
            camera,
            pipeline,
            controller: VehicleController::new(),
            state: BicycleState { pose: start, speed_mps: scenario.speed_mps() },
            time_s: 0.0,
            dt_s: 1.0 / scenario.fps(),
        }
    }

    /// The ground-truth vehicle state.
    pub fn state(&self) -> BicycleState {
        self.state
    }

    /// Runs one perceive → plan → act step.
    pub fn step(&mut self) -> SimStep {
        // Perceive: render the world from where the vehicle *actually*
        // is.
        let perceived_pose = self.state.pose;
        let image = self.world.render(&self.camera, &perceived_pose, self.time_s);
        let out = self.pipeline.process(&image, self.time_s);

        // Act on the plan.
        let (waypoint, target_speed) = match &out.plan {
            MotionPlan::Trajectory(t) => (
                t.poses
                    .first()
                    .map(|p| p.translation())
                    .unwrap_or(Point2::new(self.state.pose.x + 10.0, 0.0)),
                t.speed_mps,
            ),
            MotionPlan::Path(p) => (
                p.poses
                    .get(1)
                    .or_else(|| p.poses.first())
                    .map(|p| p.translation())
                    .unwrap_or(Point2::new(self.state.pose.x + 10.0, 0.0)),
                3.0,
            ),
            MotionPlan::EmergencyStop => {
                (Point2::new(self.state.pose.x + 10.0, self.state.pose.y), 0.0)
            }
        };
        self.state = self.controller.drive_step(&self.state, waypoint, target_speed, self.dt_s);
        self.time_s += self.dt_s;

        // Error is against the pose the frame was rendered from, not
        // the post-step pose.
        let err = out
            .pose
            .map(|p| p.distance(&perceived_pose))
            .unwrap_or(f64::NAN);
        SimStep {
            time_s: self.time_s,
            true_pose: self.state.pose,
            estimated_pose: out.pose,
            localization_error_m: err,
            cross_track_m: self.state.pose.y,
            speed_mps: self.state.speed_mps,
            emergency_stop: matches!(out.plan, MotionPlan::EmergencyStop),
            pipeline_ms: out.latency.end_to_end(),
        }
    }

    /// Runs `steps` steps and aggregates the report.
    pub fn run(&mut self, steps: usize) -> SimReport {
        let start = self.state.pose.translation();
        let mut report = SimReport { min_object_clearance_m: f64::INFINITY, ..Default::default() };
        let mut err_sum = 0.0;
        let mut err_n = 0usize;
        for _ in 0..steps {
            let s = self.step();
            report.steps += 1;
            if s.localization_error_m.is_finite() {
                err_sum += s.localization_error_m;
                err_n += 1;
            } else {
                report.lost_frames += 1;
            }
            report.max_cross_track_m = report.max_cross_track_m.max(s.cross_track_m.abs());
            if s.emergency_stop {
                report.emergency_stops += 1;
            }
            for o in self.world.objects() {
                let d = o.position_at(self.time_s).distance(&self.state.pose.translation());
                report.min_object_clearance_m = report.min_object_clearance_m.min(d);
            }
        }
        report.distance_m = self.state.pose.translation().distance(&start);
        report.mean_localization_error_m =
            if err_n > 0 { err_sum / err_n as f64 } else { f64::NAN };
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsim_workload::ScenarioKind;

    #[test]
    fn closed_loop_highway_makes_progress_and_stays_localized() {
        let scenario = Scenario::new(ScenarioKind::HighwayCruise, 77);
        let mut sim = ClosedLoopSim::new(&scenario, Resolution::Hhd);
        let report = sim.run(15);
        assert_eq!(report.steps, 15);
        assert!(
            report.distance_m > 20.0,
            "vehicle should advance at highway speed, got {:.1} m",
            report.distance_m
        );
        assert!(report.lost_frames <= 2, "lost {} frames", report.lost_frames);
        assert!(
            report.mean_localization_error_m < 1.0,
            "mean loc error {:.2} m",
            report.mean_localization_error_m
        );
    }

    #[test]
    fn closed_loop_keeps_lane_on_clear_road() {
        let scenario = Scenario::new(ScenarioKind::HighwayCruise, 78);
        let mut sim = ClosedLoopSim::new(&scenario, Resolution::Hhd);
        let report = sim.run(12);
        assert!(
            report.max_cross_track_m < 4.0,
            "cross-track {:.2} m exceeds a lane width",
            report.max_cross_track_m
        );
    }
}
