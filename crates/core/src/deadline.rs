use crate::modeled::ModeledPipeline;

/// Outcome of replaying a real-time camera stream through a pipeline
/// (paper §2.4.1: processing must finish within 100 ms *and* keep up
/// with at least 10 frames per second).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DeadlineStats {
    /// Frames offered by the camera.
    pub offered: usize,
    /// Frames actually processed.
    pub processed: usize,
    /// Frames dropped because the pipeline was still busy when they
    /// arrived (the camera keeps only the latest frame).
    pub dropped: usize,
    /// Processed frames whose latency exceeded the deadline.
    pub deadline_misses: usize,
    /// Achieved processing rate (frames per second).
    pub effective_fps: f64,
    /// Mean age of a result at completion: processing latency plus the
    /// time the frame waited since capture (ms) — the true reaction
    /// delay to a road event.
    pub mean_reaction_ms: f64,
}

impl DeadlineStats {
    /// Fraction of offered frames that were dropped.
    pub fn drop_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.dropped as f64 / self.offered as f64
        }
    }

    /// Fraction of processed frames missing the deadline.
    pub fn miss_rate(&self) -> f64 {
        if self.processed == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.processed as f64
        }
    }

    /// The §2.4.1 performance constraint: every processed frame within
    /// the deadline and ≥ `min_fps` sustained. A replay that processed
    /// nothing has zero misses vacuously — it fails the constraint.
    pub fn meets_constraints(&self, min_fps: f64) -> bool {
        self.processed > 0 && self.deadline_misses == 0 && self.effective_fps >= min_fps
    }
}

/// Replays a camera producing one frame every `period_ms` through the
/// modeled pipeline for `frames` frames.
///
/// The camera holds only the newest frame: when processing finishes,
/// the pipeline grabs the latest capture (dropping any it never saw) —
/// the standard real-time vision arrangement. Latency samples come
/// from the pipeline's calibrated distributions.
///
/// # Examples
///
/// ```
/// use adsim_core::{replay_stream, ModeledPipeline, PlatformConfig};
/// use adsim_platform::Platform;
///
/// let mut pipe = ModeledPipeline::new(PlatformConfig::uniform(Platform::Gpu), 3);
/// let stats = replay_stream(&mut pipe, 2_000, 100.0, 100.0, 1.0);
/// assert!(stats.effective_fps > 9.0);
/// ```
/// Whole camera periods elapsed at `now_ms`.
///
/// On a multi-hour horizon the quotient can exceed what fits in the
/// mantissa — and with a degenerate clock it can go negative or
/// non-finite. The `f64 → usize` `as` cast saturates rather than
/// wrapping, and non-finite / negative inputs pin to frame 0, so the
/// replay clock can never jump backwards through a cast.
fn frames_elapsed(now_ms: f64, period_ms: f64) -> usize {
    let n = (now_ms / period_ms).floor();
    if n.is_finite() && n > 0.0 {
        n as usize // saturates at usize::MAX for huge horizons
    } else {
        0
    }
}

pub fn replay_stream(
    pipeline: &mut ModeledPipeline,
    frames: usize,
    period_ms: f64,
    deadline_ms: f64,
    pixel_ratio: f64,
) -> DeadlineStats {
    assert!(period_ms > 0.0, "camera period must be positive");
    let mut stats = DeadlineStats::default();
    let mut now_ms = 0.0f64;
    let mut next_capture = 0usize; // index of the next frame the camera emits
    let mut reaction_sum = 0.0;
    while next_capture < frames {
        // The pipeline becomes free at `now_ms`; it takes the newest
        // captured frame at or before `now_ms` (or waits for the next).
        let newest = frames_elapsed(now_ms, period_ms);
        let take = newest.min(frames - 1).max(next_capture);
        let (capture_idx, capture_time) = if newest >= next_capture {
            (take, take as f64 * period_ms)
        } else {
            // Idle until the next frame arrives.
            (next_capture, next_capture as f64 * period_ms)
        };
        if capture_idx >= frames {
            break;
        }
        // Everything between next_capture and capture_idx was dropped.
        stats.dropped += capture_idx - next_capture;
        stats.offered += capture_idx - next_capture + 1;
        next_capture = capture_idx + 1;

        let start = now_ms.max(capture_time);
        let latency = pipeline.simulate_frame(pixel_ratio).end_to_end();
        now_ms = start + latency;
        stats.processed += 1;
        if latency > deadline_ms {
            stats.deadline_misses += 1;
        }
        reaction_sum += now_ms - capture_time;
    }
    if stats.processed > 0 {
        stats.mean_reaction_ms = reaction_sum / stats.processed as f64;
        if now_ms > 0.0 {
            // Guarded: a pathological zero-latency pipeline would
            // otherwise divide by zero and report infinite FPS.
            stats.effective_fps = stats.processed as f64 / (now_ms / 1_000.0);
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlatformConfig;
    use adsim_platform::Platform;

    #[test]
    fn fast_pipeline_processes_every_frame() {
        let mut pipe = ModeledPipeline::new(
            PlatformConfig {
                detection: Platform::Gpu,
                tracking: Platform::Asic,
                localization: Platform::Asic,
            },
            1,
        );
        let stats = replay_stream(&mut pipe, 3_000, 100.0, 100.0, 1.0);
        assert_eq!(stats.dropped, 0, "16 ms pipeline never misses a 100 ms camera");
        assert!(stats.meets_constraints(10.0), "{stats:?}");
        // Reaction time = latency only (no queueing).
        assert!(stats.mean_reaction_ms < 20.0);
    }

    #[test]
    fn cpu_pipeline_drops_nearly_everything() {
        let mut pipe = ModeledPipeline::new(PlatformConfig::all_cpu(), 2);
        let stats = replay_stream(&mut pipe, 2_000, 100.0, 100.0, 1.0);
        // ~8 s per frame vs 100 ms camera: ~79 of every 80 frames drop.
        assert!(stats.drop_rate() > 0.95, "drop rate {}", stats.drop_rate());
        assert!(stats.effective_fps < 0.2, "fps {}", stats.effective_fps);
        assert!(!stats.meets_constraints(10.0));
    }

    #[test]
    fn borderline_pipeline_misses_some_deadlines_only() {
        // All-ASIC: ~98 ms latency vs 100 ms period — keeps up, but
        // occasionally queues.
        let mut pipe = ModeledPipeline::new(PlatformConfig::uniform(Platform::Asic), 3);
        let stats = replay_stream(&mut pipe, 3_000, 100.0, 100.0, 1.0);
        assert!(stats.effective_fps > 9.0, "fps {}", stats.effective_fps);
        assert!(stats.drop_rate() < 0.2, "drop rate {}", stats.drop_rate());
    }

    #[test]
    fn zero_processed_frames_fail_the_constraint() {
        // A stalled replay reports no misses vacuously; it must not
        // pass as a working design.
        let stats = DeadlineStats::default();
        assert_eq!(stats.deadline_misses, 0);
        assert!(!stats.meets_constraints(10.0));
        assert!(!stats.meets_constraints(0.0));
    }

    #[test]
    fn frames_elapsed_clamps_degenerate_clocks() {
        // Ordinary operation.
        assert_eq!(frames_elapsed(0.0, 100.0), 0);
        assert_eq!(frames_elapsed(99.9, 100.0), 0);
        assert_eq!(frames_elapsed(100.0, 100.0), 1);
        assert_eq!(frames_elapsed(1_000.0, 100.0), 10);
        // A clock that went backwards or broke pins to frame 0 instead
        // of wrapping through the cast.
        assert_eq!(frames_elapsed(-5_000.0, 100.0), 0);
        assert_eq!(frames_elapsed(f64::NAN, 100.0), 0);
        assert_eq!(frames_elapsed(f64::NEG_INFINITY, 100.0), 0);
        // An *infinite* quotient is a broken clock, not a long horizon
        // — it pins to 0 with the other degenerate inputs.
        assert_eq!(frames_elapsed(f64::INFINITY, 100.0), 0);
        // A finite horizon beyond usize saturates instead of wrapping.
        assert_eq!(frames_elapsed(1e300, 1e-3), usize::MAX);
        // Multi-day horizons stay exact (quotient within the mantissa).
        let day_ms = 24.0 * 3_600.0 * 1_000.0;
        assert_eq!(frames_elapsed(30.0 * day_ms, 100.0), 30 * 864_000);
    }

    #[test]
    fn rates_are_consistent() {
        let mut pipe = ModeledPipeline::new(PlatformConfig::uniform(Platform::Gpu), 4);
        let stats = replay_stream(&mut pipe, 1_000, 100.0, 100.0, 1.0);
        assert_eq!(stats.offered, stats.processed + stats.dropped);
        assert!(stats.mean_reaction_ms >= 0.0);
    }
}
