//! The paper's Table 1: autonomous driving vehicles under
//! experimentation at leading industry companies (as of the paper's
//! writing, early 2018).

/// SAE automation levels (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AutomationLevel {
    /// Level 0 — no automation.
    L0,
    /// Level 1 — driver assistance.
    L1,
    /// Level 2 — partial automation.
    L2,
    /// Level 3 — conditional automation.
    L3,
    /// Level 4 — high automation.
    L4,
    /// Level 5 — full automation.
    L5,
}

impl AutomationLevel {
    /// Whether the level is a "highly autonomous vehicle" per the
    /// paper (levels 3–5, where the system takes full driving
    /// responsibility under certain conditions).
    pub fn is_hav(self) -> bool {
        self >= AutomationLevel::L3
    }
}

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndustrySurveyRow {
    /// Manufacturer.
    pub manufacturer: &'static str,
    /// Achieved automation level.
    pub level: AutomationLevel,
    /// Computing platform.
    pub platform: &'static str,
    /// Sensor suite.
    pub sensors: &'static str,
}

/// The survey rows, verbatim from Table 1.
pub fn table1() -> [IndustrySurveyRow; 4] {
    [
        IndustrySurveyRow {
            manufacturer: "Mobileye",
            level: AutomationLevel::L2,
            platform: "SoCs",
            sensors: "camera",
        },
        IndustrySurveyRow {
            manufacturer: "Tesla",
            level: AutomationLevel::L2,
            platform: "SoCs + GPUs",
            sensors: "camera, radar",
        },
        IndustrySurveyRow {
            manufacturer: "Nvidia/Audi",
            level: AutomationLevel::L3,
            platform: "SoCs + GPUs",
            sensors: "lidar, camera, radar",
        },
        IndustrySurveyRow {
            manufacturer: "Waymo",
            level: AutomationLevel::L3,
            platform: "SoCs + GPUs",
            sensors: "lidar, camera, radar",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_hav_boundary() {
        assert!(AutomationLevel::L2 < AutomationLevel::L3);
        assert!(!AutomationLevel::L2.is_hav());
        assert!(AutomationLevel::L3.is_hav());
        assert!(AutomationLevel::L5.is_hav());
    }

    #[test]
    fn nobody_exceeds_level_3() {
        // The paper's observation: even leading companies only reach
        // level 2 or 3, motivating the research.
        for row in table1() {
            assert!(row.level <= AutomationLevel::L3, "{}", row.manufacturer);
        }
    }

    #[test]
    fn level3_players_all_use_lidar() {
        for row in table1() {
            if row.level == AutomationLevel::L3 {
                assert!(row.sensors.contains("lidar"), "{}", row.manufacturer);
            }
        }
    }

    #[test]
    fn vision_based_players_exist() {
        assert!(table1().iter().any(|r| !r.sensors.contains("lidar")));
    }
}
