//! One vehicle cell: a scenario × fault-mix × seed run with
//! shared-nothing pipeline state.

use crate::assets::FleetAssets;
use crate::sink::StageHistograms;
use adsim_core::{
    GuardConfig, NativePipelineConfig, StagedFrame, SupervisedFrameResult, Supervisor,
    SupervisorCheckpoint, SupervisorConfig,
};
use adsim_dnn::detection::Detection;
use adsim_faults::{FaultConfig, InjectedCrash};
use adsim_recovery::{describe_panic, CrashAction, CrashRecord, RecoveryCoordinator, RecoveryPolicy};
use adsim_guard::{Digest, GuardStats, Hasher};
use adsim_perception::metrics::{MotAccumulator, TruthBox};
use adsim_planning::MotionPlan;
use adsim_stats::Quantile;
use adsim_telemetry::{FlightDump, MetricsRegistry};
use adsim_workload::Frame;

/// IoU threshold for the per-cell CLEAR-MOT association.
const MOT_IOU: f32 = 0.3;

/// What one vehicle cell runs: a fault mix and supervision policy over
/// a derived seed for a fixed number of frames. The campaign scenario
/// and resolution come from the engine's [`FleetAssets`].
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Human-readable label carried into reports (e.g. `"data/default"`).
    pub label: String,
    /// Fault schedule for this cell's injector.
    pub faults: FaultConfig,
    /// Supervision policy (watchdog budgets, guard, anytime governor).
    pub supervisor: SupervisorConfig,
    /// Injector seed (derives every per-frame decision).
    pub seed: u64,
    /// Frames to stream through the cell.
    pub frames: usize,
    /// Crash recovery policy. `None` (the default) quarantines the
    /// cell on the first injected crash; `Some` restores the newest
    /// checkpoint and deterministically replays the gap instead.
    pub recovery: Option<RecoveryPolicy>,
}

impl CellSpec {
    /// A cell with the default supervision policy.
    pub fn new(label: impl Into<String>, faults: FaultConfig, seed: u64, frames: usize) -> Self {
        Self {
            label: label.into(),
            faults,
            supervisor: SupervisorConfig::default(),
            seed,
            frames,
            recovery: None,
        }
    }

    /// Enables checkpoint/restore crash recovery.
    #[must_use]
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = Some(recovery);
        self
    }

    /// Replaces the guard policy.
    #[must_use]
    pub fn with_guard(mut self, guard: GuardConfig) -> Self {
        self.supervisor.guard = guard;
        self
    }

    /// Replaces the whole supervision policy (guard included).
    #[must_use]
    pub fn with_supervisor(mut self, supervisor: SupervisorConfig) -> Self {
        self.supervisor = supervisor;
        self
    }
}

/// Everything one cell produced. Every field except the wall-clock
/// latency block ([`CellOutcome::p99_ms`], [`CellOutcome::miss_rate`])
/// is a pure function of the spec, so the determinism tests pin
/// [`CellOutcome::signature`] and the logs byte for byte across worker
/// counts and steal orders.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The spec's label.
    pub label: String,
    /// The spec's seed.
    pub seed: u64,
    /// Frames actually processed.
    pub frames: u64,
    /// Ground-truth injected data-plane faults (blackout/stuck/corrupt).
    pub injected_data_faults: u64,
    /// Data-plane faults the checksummed hand-off caught.
    pub detected_data_faults: u64,
    /// Transient corruptions repaired by dual-execution voting.
    pub dual_recovered: u64,
    /// Stage-boundary monitor trips.
    pub monitor_trips: u64,
    /// Escalations dropped on the floor (contract: always 0).
    pub uncaught: u64,
    /// Completed degradation episodes.
    pub episodes: u64,
    /// Mean time-to-recover (frames).
    pub mean_ttr_frames: f64,
    /// Longest completed episode (frames).
    pub max_ttr_frames: u64,
    /// Fraction of frames spent degraded.
    pub degraded_rate: f64,
    /// Safe stops commanded.
    pub safe_stops: u64,
    /// Stage retries performed.
    pub retries: u64,
    /// CLEAR-MOT tracking accuracy against the scenario's scripted
    /// ground truth (1.0 is perfect; can go negative under heavy
    /// false-positive load).
    pub mota: f64,
    /// Fraction of frames whose virtual end-to-end cost missed the
    /// deadline (deterministic miss accounting).
    pub virtual_miss_rate: f64,
    /// Quality-level switches the anytime governor performed.
    pub quality_switches: u64,
    /// Frames spent below full quality.
    pub quality_reduced_frames: u64,
    /// Injected stage crashes contained (restart-recovered or
    /// quarantined).
    pub crashes: u64,
    /// Checkpoint restarts performed.
    pub restarts: u64,
    /// Frames deterministically replayed across all restarts.
    pub replayed_frames: u64,
    /// Checkpoints taken (not part of the signature: checkpointing-on
    /// must stay byte-identical to checkpointing-off on crash-free
    /// runs, and the schedule is pure bookkeeping either way).
    pub checkpoints: u64,
    /// Peak approximate checkpoint footprint (bytes; deterministic
    /// estimate, excluded from the signature like `checkpoints`).
    pub checkpoint_bytes: u64,
    /// Whether the cell was quarantined: a crash with no recovery
    /// policy (or an uncontained panic the engine caught) froze it at
    /// its last completed frame.
    pub quarantined: bool,
    /// Contained-crash audit ledger, rendered (one line per crash).
    pub crash_log: Vec<String>,
    /// Anytime-governor quality-switch log, rendered.
    pub gov_log: Vec<String>,
    /// Degradation-event log, rendered.
    pub sup_log: Vec<String>,
    /// Guard-event log, rendered.
    pub guard_log: Vec<String>,
    /// Black-box flight-recorder dumps this cell captured (SafeStop and
    /// monitor-trip escalations), in capture order.
    pub dumps: Vec<FlightDump>,
    /// The cell's drained telemetry registry (virtual-clock metrics
    /// only — deterministic, merged fleet-wide in spec order).
    pub telemetry: MetricsRegistry,
    /// FNV digest folded over every frame's deterministic outputs
    /// (detections, pose, tracks, plan, modes) — the byte-identity pin.
    pub output_digest: Digest,
    /// Wall-clock deadline miss rate (excluded from the signature).
    pub miss_rate: f64,
    /// Wall-clock end-to-end p99 ms (excluded from the signature).
    pub p99_ms: f64,
}

impl CellOutcome {
    /// Detected fraction of injected data-plane faults (1.0 when
    /// nothing was injected — there was nothing to miss).
    pub fn coverage(&self) -> f64 {
        if self.injected_data_faults == 0 {
            1.0
        } else {
            self.detected_data_faults as f64 / self.injected_data_faults as f64
        }
    }

    /// The last-resort outcome for a cell whose worker caught a panic
    /// that escaped every containment layer (a genuine bug, not an
    /// injected crash). The campaign completes with the cell marked
    /// quarantined and the contract-breach counter (`uncaught`) set so
    /// no test or bench can mistake the run for healthy.
    pub(crate) fn poisoned(spec: &CellSpec, msg: &str) -> Self {
        Self {
            label: spec.label.clone(),
            seed: spec.seed,
            frames: 0,
            injected_data_faults: 0,
            detected_data_faults: 0,
            dual_recovered: 0,
            monitor_trips: 0,
            uncaught: 1,
            episodes: 0,
            mean_ttr_frames: 0.0,
            max_ttr_frames: 0,
            degraded_rate: 0.0,
            safe_stops: 0,
            retries: 0,
            mota: 0.0,
            virtual_miss_rate: 0.0,
            quality_switches: 0,
            quality_reduced_frames: 0,
            crashes: 0,
            restarts: 0,
            replayed_frames: 0,
            checkpoints: 0,
            checkpoint_bytes: 0,
            quarantined: true,
            crash_log: vec![format!("cell poisoned by uncontained panic: {msg}")],
            gov_log: Vec::new(),
            sup_log: Vec::new(),
            guard_log: Vec::new(),
            dumps: Vec::new(),
            telemetry: MetricsRegistry::new(),
            output_digest: Hasher::new().finish(),
            miss_rate: 0.0,
            p99_ms: 0.0,
        }
    }

    /// Every deterministic field, rendered. Wall-clock-derived values
    /// (`p99_ms`, `miss_rate`) are the only exclusions; two runs of the
    /// same spec must compare equal on any worker count.
    pub fn signature(&self) -> String {
        format!(
            "{} {:#x} frames={} injected={} detected={} recovered={} trips={} uncaught={} \
             episodes={} ttr={:.4}/{} degraded={:.6} safestops={} retries={} mota={:.6} \
             vmiss={:.6} qswitch={} qframes={} crashes={} restarts={} replayed={} \
             quarantined={} crashlog={} govlog={} suplog={} guardlog={} dumps={} \
             digest={}",
            self.label,
            self.seed,
            self.frames,
            self.injected_data_faults,
            self.detected_data_faults,
            self.dual_recovered,
            self.monitor_trips,
            self.uncaught,
            self.episodes,
            self.mean_ttr_frames,
            self.max_ttr_frames,
            self.degraded_rate,
            self.safe_stops,
            self.retries,
            self.mota,
            self.virtual_miss_rate,
            self.quality_switches,
            self.quality_reduced_frames,
            self.crashes,
            self.restarts,
            self.replayed_frames,
            self.quarantined,
            self.crash_log.len(),
            self.gov_log.len(),
            self.sup_log.len(),
            self.guard_log.len(),
            self.dumps.len(),
            self.output_digest,
        )
    }
}

/// Folds one supervised frame's deterministic outputs into the cell
/// digest. Wall-clock latencies never enter — the digest must be
/// byte-identical across worker counts.
fn fold_frame(h: &mut Hasher, out: &SupervisedFrameResult) {
    for d in &out.result.detections {
        h.f32s(&[d.bbox.cx, d.bbox.cy, d.bbox.w, d.bbox.h, d.score]);
        h.word(d.class.index() as u64);
    }
    h.word(out.result.detections.len() as u64);
    match out.result.pose {
        Some(p) => {
            h.word(1);
            h.word(p.x.to_bits());
            h.word(p.y.to_bits());
            h.word(p.theta.to_bits());
        }
        None => h.word(0),
    }
    for t in &out.result.tracks {
        h.word(t.track_id);
        h.word(t.class.index() as u64);
        h.f32s(&[t.bbox.cx, t.bbox.cy, t.bbox.w, t.bbox.h]);
        h.word(t.frames_missing as u64);
        h.word(t.age);
    }
    h.word(out.result.tracks.len() as u64);
    match &out.result.plan {
        MotionPlan::Trajectory(t) => {
            h.word(1);
            h.word(t.speed_mps.to_bits());
        }
        MotionPlan::Path(_) => h.word(2),
        MotionPlan::EmergencyStop => h.word(3),
    }
    if let Some(wp) = out.result.plan.next_waypoint() {
        h.word(wp.x.to_bits());
        h.word(wp.y.to_bits());
        h.word(wp.theta.to_bits());
    }
    h.word(
        out.modes.tracker_only as u64
            | (out.modes.dead_reckoning as u64) << 1
            | (out.modes.speed_reduced as u64) << 2
            | (out.modes.safe_stop as u64) << 3
            | (out.modes.quality_reduced as u64) << 4,
    );
}

/// One cell's in-flight streaming state: the supervisor plus every
/// per-frame accumulator (`run_cell`'s loop variables, reified).
///
/// The split into [`CellRun::stage`] / [`CellRun::complete`] exists
/// for the lockstep batched engine: it pauses every cell at the
/// detection hand-off point of the *same* frame index, runs one
/// cross-vehicle batched forward pass, and resumes each cell with its
/// detections. [`CellRun::step`] is the unbatched equivalent (stage +
/// inline detection + complete in one call) used by [`run_cell`].
pub(crate) struct CellRun {
    spec: CellSpec,
    sup: Supervisor,
    hists: StageHistograms,
    e2e: adsim_stats::LatencyRecorder,
    digest: Hasher,
    mot: MotAccumulator,
    injected: u64,
    uncaught: u64,
    // Crash-containment ledger. Deliberately *outside* CellCheckpoint:
    // the audit trail of what recovery did must survive any restore.
    quarantined: bool,
    checkpoints: u64,
    checkpoint_bytes: u64,
    crash_log: Vec<String>,
}

/// Everything a restore rewinds: the supervisor checkpoint plus every
/// fold accumulator `observe` mutates per frame. The containment
/// ledger (`quarantined`, checkpoint counters, crash log) lives in
/// [`CellRun`] outside this snapshot so it survives the restore.
#[derive(Clone)]
pub(crate) struct CellCheckpoint {
    sup: SupervisorCheckpoint,
    hists: StageHistograms,
    e2e: adsim_stats::LatencyRecorder,
    digest: Hasher,
    mot: MotAccumulator,
    injected: u64,
    uncaught: u64,
}

impl CellCheckpoint {
    /// Frames settled when this checkpoint was taken.
    pub(crate) fn frames_done(&self) -> u64 {
        self.sup.frames_done()
    }

    /// Rough deterministic footprint: the supervisor checkpoint's
    /// estimate plus the fold accumulators' fixed-size state.
    pub(crate) fn approx_bytes(&self) -> usize {
        self.sup.approx_bytes()
            + std::mem::size_of::<StageHistograms>()
            + self.e2e.len() * std::mem::size_of::<f64>()
    }
}

impl CellRun {
    /// Builds the cell's supervisor and zeroed accumulators. The
    /// caller has already stamped `spec.supervisor.vehicle`.
    pub(crate) fn new(
        assets: &FleetAssets,
        spec: CellSpec,
        pipeline: &NativePipelineConfig,
    ) -> Self {
        let sup =
            assets.supervisor(spec.seed, spec.faults.clone(), spec.supervisor.clone(), pipeline);
        let e2e = adsim_stats::LatencyRecorder::with_capacity(spec.frames);
        Self {
            spec,
            sup,
            hists: StageHistograms::new(),
            e2e,
            digest: Hasher::new(),
            mot: MotAccumulator::new(MOT_IOU),
            injected: 0,
            uncaught: 0,
            quarantined: false,
            checkpoints: 0,
            checkpoint_bytes: 0,
            crash_log: Vec::new(),
        }
    }

    /// The cell's recovery policy, if any.
    pub(crate) fn recovery(&self) -> Option<RecoveryPolicy> {
        self.spec.recovery
    }

    /// Whether an injected crash has quarantined this cell.
    pub(crate) fn is_quarantined(&self) -> bool {
        self.quarantined
    }

    /// Snapshots the supervisor and every fold accumulator.
    pub(crate) fn checkpoint(&self) -> CellCheckpoint {
        CellCheckpoint {
            sup: self.sup.checkpoint(),
            hists: self.hists.clone(),
            e2e: self.e2e.clone(),
            digest: self.digest,
            mot: self.mot.clone(),
            injected: self.injected,
            uncaught: self.uncaught,
        }
    }

    /// Rewinds to a checkpoint taken earlier on this same cell. The
    /// containment ledger is untouched — crashes stay recorded.
    pub(crate) fn restore(&mut self, ck: &CellCheckpoint) {
        self.sup.restore(&ck.sup);
        self.hists = ck.hists.clone();
        self.e2e = ck.e2e.clone();
        self.digest = ck.digest;
        self.mot = ck.mot.clone();
        self.injected = ck.injected;
        self.uncaught = ck.uncaught;
    }

    /// Arms or disarms the supervisor's scheduled crash faults (the
    /// replay window runs disarmed — transient-crash semantics).
    pub(crate) fn set_crash_armed(&mut self, armed: bool) {
        self.sup.set_crash_armed(armed);
    }

    /// Audits one contained crash: supervisor-side record (synthetic
    /// flight-recorder entry, crash counter, `CellCrash` dump) plus
    /// the cell's rendered ledger line.
    pub(crate) fn record_crash(&mut self, record: &CrashRecord, msg: &str) {
        self.sup.record_cell_crash(record.frame, record.stage, msg);
        self.crash_log.push(record.to_string());
    }

    /// Quarantines the cell after a crash with no recovery path: the
    /// crash is audited, the cell stops at its last completed frame.
    pub(crate) fn quarantine(&mut self, crash: InjectedCrash, msg: &str) {
        self.sup.record_cell_crash(crash.frame, crash.stage, msg);
        self.crash_log.push(format!(
            "frame {}: {} crashed ({msg}); quarantined — no restart path",
            crash.frame, crash.stage,
        ));
        self.quarantined = true;
    }

    /// Frames this cell's spec asks for.
    pub(crate) fn frames(&self) -> usize {
        self.spec.frames
    }

    /// Processes one frame inline (no batching hand-off).
    pub(crate) fn step(&mut self, frame: &Frame) {
        let before = *self.sup.guard_stats();
        let out = self.sup.process(&frame.image, frame.time_s);
        self.observe(frame, out, before);
    }

    /// Pauses this frame at the detection hand-off point. Guard
    /// counters are snapshotted *before* staging (data-plane checks
    /// run during the stage), so [`CellRun::complete`] sees the same
    /// before/after window [`CellRun::step`] would.
    pub(crate) fn stage(&mut self, frame: &Frame) -> (StagedFrame, GuardStats) {
        let before = *self.sup.guard_stats();
        (self.sup.stage_frame(&frame.image, frame.time_s), before)
    }

    /// Resumes a staged frame, feeding it the batched detection result
    /// (`None` runs any un-batched detection inline).
    pub(crate) fn complete(
        &mut self,
        frame: &Frame,
        staged: StagedFrame,
        before: GuardStats,
        det: Option<Vec<Detection>>,
    ) {
        let out = self.sup.finish_frame(staged, det);
        self.observe(frame, out, before);
    }

    /// Folds one finished frame into every accumulator — identical
    /// bookkeeping for the inline and batched paths.
    fn observe(&mut self, frame: &Frame, out: SupervisedFrameResult, before: GuardStats) {
        self.hists.record(&out.reported);
        self.e2e.record(out.reported.end_to_end());
        fold_frame(&mut self.digest, &out);
        let truth: Vec<TruthBox> = frame
            .truth_objects
            .iter()
            .map(|t| TruthBox { id: t.id, bbox: t.bbox })
            .collect();
        self.mot.observe(&truth, &out.result.tracks);
        let after = *self.sup.guard_stats();

        // Ground truth: did the injector touch the sensor payload?
        let data_fault =
            out.faults.blackout || out.faults.stuck || out.faults.pixel_corruption.is_some();
        self.injected += data_fault as u64;

        // Escalation contract: a confirmed-bad payload or a tripped
        // monitor must leave a degraded mode active this frame. A
        // dual-execution *recovery* is the one benign detection — the
        // vote repaired the payload, nothing to escalate.
        let detected = (after.digest_mismatches + after.stuck_detected)
            > (before.digest_mismatches + before.stuck_detected);
        let recovered = after.dual_recovered > before.dual_recovered;
        let tripped = after.monitor_trips() > before.monitor_trips();
        if ((detected && !recovered) || tripped) && !out.modes.any() {
            self.uncaught += 1;
        }
    }

    /// Closes the run, attaching the cell's drained telemetry (the
    /// caller controls draining: per worker thread in the unbatched
    /// engines, split from one lockstep thread in the batched one).
    pub(crate) fn into_outcome(
        mut self,
        telemetry: MetricsRegistry,
    ) -> (CellOutcome, StageHistograms) {
        let stats = self.sup.recovery_stats();
        let gs = *self.sup.guard_stats();
        let outcome = CellOutcome {
            label: self.spec.label.clone(),
            seed: self.spec.seed,
            frames: stats.frames,
            injected_data_faults: self.injected,
            detected_data_faults: gs.digest_mismatches + gs.stuck_detected,
            dual_recovered: gs.dual_recovered,
            monitor_trips: gs.monitor_trips(),
            uncaught: self.uncaught,
            episodes: stats.episodes,
            mean_ttr_frames: stats.mean_time_to_recover(),
            max_ttr_frames: stats.max_recover_frames,
            degraded_rate: stats.degraded_rate(),
            safe_stops: stats.safe_stops,
            retries: stats.retries,
            mota: self.mot.mota(),
            virtual_miss_rate: stats.virtual_miss_rate(),
            quality_switches: stats.quality_switches,
            quality_reduced_frames: stats.quality_reduced_frames,
            crashes: stats.crashes,
            restarts: stats.restarts,
            replayed_frames: stats.replayed_frames,
            checkpoints: self.checkpoints,
            checkpoint_bytes: self.checkpoint_bytes,
            quarantined: self.quarantined,
            crash_log: std::mem::take(&mut self.crash_log),
            gov_log: self.sup.governor_events().iter().map(|e| e.to_string()).collect(),
            sup_log: self.sup.events().iter().map(|e| e.to_string()).collect(),
            guard_log: self.sup.guard_events().iter().map(|e| e.to_string()).collect(),
            dumps: self.sup.take_flight_dumps(),
            telemetry,
            output_digest: self.digest.finish(),
            miss_rate: stats.miss_rate(),
            p99_ms: self.e2e.quantile(Quantile::P99),
        };
        (outcome, self.hists)
    }
}

/// Runs one cell to completion: shared-nothing supervisor state over
/// the campaign's shared map and weights. Returns the deterministic
/// outcome plus this cell's wall-clock stage histograms (streamed into
/// the fleet sink by the engine, never buffered per cell).
///
/// Injected stage crashes are contained here, at the cell boundary:
/// with a [`RecoveryPolicy`] on the spec the cell restores its newest
/// checkpoint and deterministically replays the gap; without one the
/// cell is quarantined at its last completed frame. Panics that are
/// *not* injected crashes are re-raised — containment must never mask
/// a genuine bug.
pub fn run_cell(
    assets: &FleetAssets,
    spec: &CellSpec,
    pipeline: &NativePipelineConfig,
) -> (CellOutcome, StageHistograms) {
    // Push any telemetry a previous occupant of this worker thread left
    // in the local shard out to the global sink, so the drain below
    // returns exactly this cell's series.
    adsim_telemetry::flush_thread();
    let mut run = CellRun::new(assets, spec.clone(), pipeline);
    drive_cell(assets, &mut run);
    let mut telemetry = adsim_telemetry::drain_thread();
    telemetry.sort();
    run.into_outcome(telemetry)
}

/// Steps one frame through the cell, catching an injected-crash panic.
/// Returns the typed crash (with its rendered message) when the frame
/// died; re-raises any panic that is not an injected fault.
fn step_contained(run: &mut CellRun, frame: &Frame) -> Result<(), (InjectedCrash, String)> {
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run.step(frame)));
    match res {
        Ok(()) => Ok(()),
        Err(payload) => {
            let (msg, injected) = describe_panic(payload.as_ref());
            match injected {
                Some(crash) => Err((crash, msg)),
                // A genuine bug: containment must not swallow it.
                None => std::panic::resume_unwind(payload),
            }
        }
    }
}

/// The cell's frame loop with crash containment.
///
/// Crash→restore→replay protocol (order is load-bearing):
/// 1. catch the typed panic; ask the coordinator for budget;
/// 2. restore the newest checkpoint (frames rewind to `C`);
/// 3. audit the crash *after* the restore so the synthetic flight
///    record, crash counter and `CellCrash` dump survive it;
/// 4. disarm crashes and replay frames `C..=F` (the crashed frame `F`
///    re-runs and completes — transient-crash semantics);
/// 5. re-arm, record the restart, and take a *fresh* checkpoint at
///    `F + 1` so the audit trail also survives any future restore;
/// 6. continue at `F + 1`.
///
/// An exhausted budget restores once more, latches the terminal
/// SafeStop, permanently disarms, and finishes every remaining frame
/// parked — the cell still reports `spec.frames` frames.
fn drive_cell(assets: &FleetAssets, run: &mut CellRun) {
    let frames = run.frames() as u64;
    let mut stream = assets.scenario().stream(assets.resolution());
    let Some(policy) = run.recovery() else {
        // No recovery: first injected crash quarantines the cell.
        for _ in 0..frames {
            let frame = stream.next().expect("frame streams are endless");
            if let Err((crash, msg)) = step_contained(run, &frame) {
                run.quarantine(crash, &msg);
                return;
            }
        }
        return;
    };

    let mut coord: RecoveryCoordinator<CellCheckpoint> = RecoveryCoordinator::new(policy);
    // Unconditional frame-0 checkpoint: recovery always has somewhere
    // to restore to, whatever the interval.
    let ck = run.checkpoint();
    let bytes = ck.approx_bytes();
    let at = ck.frames_done();
    coord.store(at, ck, bytes);
    let mut idx: u64 = 0;
    while idx < frames {
        // Interval checkpoints (skipping a frame the post-restart
        // refresh below already covered).
        if coord.due(idx) && coord.last().map(|(f, _)| f) != Some(idx) {
            let ck = run.checkpoint();
            let bytes = ck.approx_bytes();
            let at = ck.frames_done();
            debug_assert_eq!(at, idx, "checkpoints land on frame boundaries");
            coord.store(at, ck, bytes);
        }
        let frame = stream.next().expect("frame streams are endless");
        match step_contained(run, &frame) {
            Ok(()) => idx += 1,
            Err((crash, msg)) => {
                let action = coord.on_crash().expect("frame-0 checkpoint always stored");
                let (ck_frame, ck) = coord.last().expect("frame-0 checkpoint always stored");
                // MTTR in frames: everything between the checkpoint
                // and the crashed frame, crashed frame included.
                let replayed = idx - ck_frame + 1;
                let exhausted = matches!(action, CrashAction::Exhausted { .. });
                let record = CrashRecord {
                    frame: crash.frame,
                    stage: crash.stage,
                    message: msg.clone(),
                    resumed_from: ck_frame,
                    replayed,
                    exhausted,
                };
                run.restore(ck);
                run.record_crash(&record, &msg);
                coord.record(record);
                run.set_crash_armed(false);
                stream.seek(ck_frame);
                if exhausted {
                    // Budget gone: park the vehicle for every frame
                    // left, crashes permanently disarmed.
                    run.sup.record_crash_exhausted();
                    for _ in ck_frame..frames {
                        let frame = stream.next().expect("frame streams are endless");
                        run.step(&frame);
                    }
                    idx = frames;
                } else {
                    for _ in ck_frame..=idx {
                        let frame = stream.next().expect("frame streams are endless");
                        run.step(&frame);
                    }
                    run.set_crash_armed(true);
                    run.sup.record_restart(crash.frame, crash.stage, ck_frame, replayed);
                    idx += 1;
                    // Fresh checkpoint: the crash/restart audit above
                    // must survive any future restore.
                    let ck = run.checkpoint();
                    let bytes = ck.approx_bytes();
                    let at = ck.frames_done();
                    coord.store(at, ck, bytes);
                }
            }
        }
    }
    run.checkpoints = coord.checkpoints();
    run.checkpoint_bytes = coord.checkpoint_bytes();
}
