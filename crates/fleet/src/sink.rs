//! The streaming fleet-level result sink.

use adsim_core::FrameLatency;
use adsim_trace::LogHistogram;

use crate::cell::CellOutcome;

/// Per-stage latency histograms for one cell or a whole fleet.
///
/// Fixed memory per instance (`LogHistogram` is bucket-counted), so a
/// campaign of thousands of cells aggregates tails in constant space:
/// each finished cell's histograms merge into the fleet's and are
/// dropped — no per-cell sample buffers survive the cell.
#[derive(Debug, Clone, Default)]
pub struct StageHistograms {
    /// Object detection (DET).
    pub detection: LogHistogram,
    /// Object tracking (TRA).
    pub tracking: LogHistogram,
    /// Localization (LOC).
    pub localization: LogHistogram,
    /// Sensor fusion.
    pub fusion: LogHistogram,
    /// Motion planning.
    pub motion_planning: LogHistogram,
    /// End-to-end critical path.
    pub end_to_end: LogHistogram,
}

impl StageHistograms {
    /// Empty histograms.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one frame's reported stage latencies.
    pub fn record(&mut self, lat: &FrameLatency) {
        self.detection.record(lat.detection);
        self.tracking.record(lat.tracking);
        self.localization.record(lat.localization);
        self.fusion.record(lat.fusion);
        self.motion_planning.record(lat.motion_planning);
        self.end_to_end.record(lat.end_to_end());
    }

    /// Bucket-wise merge of another cell's histograms into this one.
    pub fn merge(&mut self, other: &StageHistograms) {
        self.detection.merge(&other.detection);
        self.tracking.merge(&other.tracking);
        self.localization.merge(&other.localization);
        self.fusion.merge(&other.fusion);
        self.motion_planning.merge(&other.motion_planning);
        self.end_to_end.merge(&other.end_to_end);
    }

    /// `(name, histogram)` pairs in pipeline order, for reports.
    pub fn stages(&self) -> [(&'static str, &LogHistogram); 6] {
        [
            ("detection", &self.detection),
            ("tracking", &self.tracking),
            ("localization", &self.localization),
            ("fusion", &self.fusion),
            ("motion_planning", &self.motion_planning),
            ("end_to_end", &self.end_to_end),
        ]
    }
}

/// Fleet-level aggregation, updated as each cell finishes rather than
/// after the campaign ends. Holds merged per-stage histograms (fleet
/// p50/p95/p99/p99.99 across every vehicle's every frame) plus campaign
/// counters.
#[derive(Debug, Clone, Default)]
pub struct FleetSink {
    /// Merged per-stage latency histograms across all finished cells.
    pub stages: StageHistograms,
    /// Cells finished so far.
    pub cells: u64,
    /// Frames processed across all finished cells.
    pub frames: u64,
    /// Injected data-plane faults across the fleet.
    pub injected_data_faults: u64,
    /// Detected data-plane faults across the fleet.
    pub detected_data_faults: u64,
    /// Escalations dropped (contract: stays 0).
    pub uncaught: u64,
    /// Safe stops commanded across the fleet.
    pub safe_stops: u64,
    /// Completed degradation episodes across the fleet.
    pub episodes: u64,
    /// Anytime-governor quality switches across the fleet.
    pub quality_switches: u64,
    /// Injected stage crashes contained across the fleet.
    pub crashes: u64,
    /// Checkpoint restarts performed across the fleet.
    pub restarts: u64,
    /// Frames deterministically replayed across the fleet.
    pub replayed_frames: u64,
    /// Cells quarantined (crashed with no restart path).
    pub quarantined: u64,
}

impl FleetSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one finished cell: counters from the outcome, latency
    /// tails from the cell's histograms (which the caller then drops).
    pub fn absorb(&mut self, outcome: &CellOutcome, hists: &StageHistograms) {
        self.stages.merge(hists);
        self.cells += 1;
        self.frames += outcome.frames;
        self.injected_data_faults += outcome.injected_data_faults;
        self.detected_data_faults += outcome.detected_data_faults;
        self.uncaught += outcome.uncaught;
        self.safe_stops += outcome.safe_stops;
        self.episodes += outcome.episodes;
        self.quality_switches += outcome.quality_switches;
        self.crashes += outcome.crashes;
        self.restarts += outcome.restarts;
        self.replayed_frames += outcome.replayed_frames;
        self.quarantined += outcome.quarantined as u64;
    }

    /// Fleet vehicles×frames/s throughput over a measured wall-clock
    /// window.
    pub fn throughput_fps(&self, wall_s: f64) -> f64 {
        if wall_s > 0.0 {
            self.frames as f64 / wall_s
        } else {
            0.0
        }
    }
}
