//! Cross-vehicle batched DNN inference.
//!
//! N vehicle cells running the same detector variant produce N
//! identical-shape `[1, c, side, side]` inputs per frame. Running them
//! one at a time leaves the GEMM with a single image's worth of
//! columns; stacking them into one `[n, c, side, side]` batch amortizes
//! the weight-side cache traffic across vehicles — the paper's
//! accelerator-utilization argument (§5) applied at fleet level.
//!
//! Determinism: requests are grouped by *every* parameter that could
//! change the output (model variant, grid, decode thresholds) in
//! `BTreeMap` order, the batched forward pass is bit-identical to the
//! per-image pass by kernel construction (pinned in
//! `crates/tensor/tests/simd_dispatch.rs` and the dnn batch-parity
//! tests), and decode + NMS run per image slice exactly as the inline
//! detector would. A batched campaign therefore reproduces the
//! unbatched campaign's outputs byte for byte.

use adsim_dnn::detection::{decode_grid, nms, Detection};
use adsim_dnn::models::{yolo_tiny_shared, yolo_v2_tiny_shared};
use adsim_perception::{BatchRequest, DetectorVariant};
use adsim_runtime::Runtime;
use adsim_tensor::Tensor;
use std::collections::BTreeMap;

/// Batching effectiveness counters (wall-clock-free).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Batched forward passes executed.
    pub batches: u64,
    /// Detector requests served through them.
    pub requests: u64,
    /// Largest single batch (vehicles per forward pass).
    pub largest_batch: usize,
}

/// The fleet-level batched-inference service.
///
/// Collects same-variant detector inputs that the supervisors staged
/// at the hand-off point, runs one batched forward per model on the
/// process-wide shared-cache network, and scatters each vehicle's
/// decoded detections back. See the module docs for the determinism
/// argument.
#[derive(Debug)]
pub struct BatchedInference {
    rt: Runtime,
    stats: BatchStats,
}

impl BatchedInference {
    /// A service running its forward passes on `rt`. Outputs are
    /// bit-identical on any thread count.
    pub fn new(rt: Runtime) -> Self {
        Self { rt, stats: BatchStats::default() }
    }

    /// Batching counters so far.
    pub fn stats(&self) -> BatchStats {
        self.stats
    }

    /// Serves one frame's worth of staged requests: returns the
    /// decoded, NMS-filtered detections index-aligned with `requests`.
    ///
    /// Requests are grouped by (variant, grid, threshold, iou); each
    /// group becomes one `[n, c, side, side]` forward pass on the
    /// shared cached network — the same `Arc`-backed weights every
    /// cell's own detector reads, so results match the inline path
    /// bit for bit.
    pub fn infer(&mut self, requests: &[&BatchRequest]) -> Vec<Vec<Detection>> {
        let mut groups: BTreeMap<(u8, usize, u32, u32), Vec<usize>> = BTreeMap::new();
        for (i, r) in requests.iter().enumerate() {
            let variant = match r.variant {
                DetectorVariant::Reduced => 0u8,
                DetectorVariant::Full => 1u8,
            };
            groups
                .entry((variant, r.grid, r.threshold.to_bits(), r.iou.to_bits()))
                .or_default()
                .push(i);
        }
        let mut out: Vec<Vec<Detection>> = vec![Vec::new(); requests.len()];
        for ((variant, grid, _, _), idxs) in &groups {
            let net = match variant {
                0 => yolo_tiny_shared(*grid),
                _ => yolo_v2_tiny_shared(*grid),
            };
            let n = idxs.len();
            let dims = requests[idxs[0]].input.shape().dims().to_vec();
            let mut data = Vec::with_capacity(n * requests[idxs[0]].input.len());
            for &i in idxs {
                data.extend_from_slice(requests[i].input.as_slice());
            }
            let batched = Tensor::from_vec(vec![n, dims[1], dims[2], dims[3]], data)
                .expect("stacked batch dims are consistent by grouping");
            let output = net
                .forward_batched(&self.rt, &batched)
                .expect("shared-cache model accepts its own input shape");
            let odims = output.shape().dims().to_vec();
            let stride: usize = odims[1..].iter().product();
            for (j, &i) in idxs.iter().enumerate() {
                let slice = &output.as_slice()[j * stride..(j + 1) * stride];
                let img_out =
                    Tensor::from_vec(vec![1, odims[1], odims[2], odims[3]], slice.to_vec())
                        .expect("per-image slice matches the output shape");
                let raw = decode_grid(&img_out, requests[i].threshold);
                out[i] = nms(raw, requests[i].iou);
            }
            self.stats.batches += 1;
            self.stats.requests += n as u64;
            self.stats.largest_batch = self.stats.largest_batch.max(n);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsim_perception::{Detector, YoloDetector};
    use adsim_vision::GrayImage;

    #[test]
    fn batched_service_matches_inline_detectors_bitwise() {
        let images: Vec<GrayImage> = (0..3)
            .map(|v| GrayImage::from_fn(80, 60, move |x, y| ((x * 3 + y * 7 + v * 11) % 255) as u8))
            .collect();
        // Inline reference: each vehicle's own detector.
        let inline: Vec<Vec<Detection>> = images
            .iter()
            .map(|img| YoloDetector::new(4, 0.0).detect(img))
            .collect();
        // Batched: stage all three, serve in one call.
        let mut dets: Vec<YoloDetector> =
            (0..3).map(|_| YoloDetector::new(4, 0.0)).collect();
        let reqs: Vec<BatchRequest> = dets
            .iter_mut()
            .zip(&images)
            .map(|(d, img)| d.batch_request(img).expect("yolo is batchable"))
            .collect();
        for workers in [1, 2, 8] {
            let mut svc = BatchedInference::new(Runtime::new(workers));
            let got = svc.infer(&reqs.iter().collect::<Vec<_>>());
            assert_eq!(got, inline, "workers={workers}");
            let stats = svc.stats();
            assert_eq!(stats.batches, 1, "same variant/grid must share one forward pass");
            assert_eq!(stats.requests, 3);
            assert_eq!(stats.largest_batch, 3);
        }
    }

    #[test]
    fn mixed_variants_split_into_separate_batches() {
        let img = GrayImage::from_fn(64, 64, |x, y| ((x + 2 * y) % 255) as u8);
        let mut a = YoloDetector::new(4, 0.0);
        let mut b = YoloDetector::new(4, 0.0);
        b.set_quality(1.0, DetectorVariant::Full);
        let want_a = YoloDetector::new(4, 0.0).detect(&img);
        let mut b_ref = YoloDetector::new(4, 0.0);
        b_ref.set_quality(1.0, DetectorVariant::Full);
        let want_b = b_ref.detect(&img);
        let ra = a.batch_request(&img).unwrap();
        let rb = b.batch_request(&img).unwrap();
        let mut svc = BatchedInference::new(Runtime::serial());
        let got = svc.infer(&[&ra, &rb]);
        assert_eq!(got[0], want_a);
        assert_eq!(got[1], want_b);
        assert_eq!(svc.stats().batches, 2, "different variants cannot share a batch");
    }
}
