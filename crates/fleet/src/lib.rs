//! `adsim-fleet` — the fleet campaign engine.
//!
//! The paper evaluates one vehicle's pipeline end to end, but its
//! tail-latency constraints only matter at fleet scale: the service
//! has to hold the 99.99th-percentile bound under "heavy traffic from
//! millions of users", not on one lucky car. This crate turns the
//! workspace's single-vehicle supervised pipeline into a campaign
//! engine that runs N independent vehicle cells (scenario × fault-mix
//! × seed) concurrently:
//!
//! * [`FleetEngine`] schedules cells over `adsim-runtime`'s
//!   work-stealing pool — a long cell (a hostile fault mix, a
//!   relocalization storm) never blocks the rest of the grid;
//! * each cell owns **shared-nothing** mutable state (pipeline,
//!   supervisor, injector, map overlay) while `Arc`-sharing the two
//!   big read-only assets: DNN model weights (via `adsim-dnn`'s
//!   process-wide model cache and `Arc`-backed tensor storage) and the
//!   prior SLAM map (via `adsim_slam::SharedMap`);
//! * finished cells **stream** their per-stage latency histograms into
//!   a fleet-level [`FleetSink`] built on `adsim_trace::LogHistogram`
//!   merges — fleet p50/p95/p99/p99.99 per stage in constant memory,
//!   with no per-cell sample buffers;
//! * determinism is load-bearing: a cell's outputs are a pure function
//!   of its [`CellSpec`], byte-identical to a serial reference and
//!   invariant across 1/2/8 workers and steal order (`tests/fleet.rs`
//!   pins this).
//!
//! # Examples
//!
//! ```
//! use adsim_fleet::{CellSpec, FleetAssets, FleetConfig, FleetEngine};
//! use adsim_faults::FaultConfig;
//! use adsim_workload::Resolution;
//!
//! let engine = FleetEngine::new(
//!     FleetAssets::urban(Resolution::Hhd),
//!     FleetConfig::with_workers(2),
//! );
//! let specs = vec![
//!     CellSpec::new("clean", FaultConfig::off(), 0x5EED, 4),
//!     CellSpec::new("stress", FaultConfig::stress(), 0x5EED, 4),
//! ];
//! let result = engine.run(&specs);
//! assert_eq!(result.outcomes.len(), 2);
//! // Fleet-level tail over every vehicle's every frame:
//! let p99 = result.sink.stages.end_to_end.quantile(0.99);
//! assert!(p99 >= 0.0);
//! ```

mod assets;
mod batch;
mod cell;
mod engine;
mod sink;

pub use assets::FleetAssets;
pub use batch::{BatchStats, BatchedInference};
pub use cell::{run_cell, CellOutcome, CellSpec};
pub use engine::{CampaignResult, FleetConfig, FleetEngine};
pub use sink::{FleetSink, StageHistograms};
// Telemetry types surface in the campaign API (per-cell registries and
// flight dumps ride in CellOutcome; the fleet merge in CampaignResult).
pub use adsim_telemetry::{prometheus_text, FlightDump, MetricsRegistry, TelemetrySession};
// Recovery types surface in the cell API (CellSpec carries the policy;
// the crash ledger rides in CellOutcome) — re-exported so campaigns
// and benches need only `adsim_fleet`.
pub use adsim_recovery::{CrashRecord, RecoveryPolicy};
