//! World assets shared read-only by every vehicle cell of a campaign.

use adsim_core::{
    build_prior_map, NativePipeline, NativePipelineConfig, Supervisor, SupervisorConfig,
};
use adsim_faults::{FaultConfig, FaultInjector};
use adsim_slam::PriorMap;
use adsim_vision::{OrthoCamera, Pose2};
use adsim_workload::{Resolution, Scenario, ScenarioKind};
use std::sync::Arc;

/// The read-only world a whole fleet campaign drives in: one scenario,
/// one camera model, and one prior map held behind an [`Arc`].
///
/// The paper sizes on-board prior maps in terabytes; at fleet scale the
/// map and the DNN weights are the two assets that must exist once per
/// process, not once per vehicle. `FleetAssets` owns the map's single
/// allocation — every cell's pipeline receives `Arc` clones, and each
/// vehicle's map updates land in its own private overlay
/// (`adsim_slam::SharedMap`). Model weights are shared independently
/// through the process-wide model cache (`adsim_dnn::models::*_shared`).
#[derive(Debug, Clone)]
pub struct FleetAssets {
    scenario: Scenario,
    camera: OrthoCamera,
    map: Arc<PriorMap>,
    resolution: Resolution,
}

impl FleetAssets {
    /// Wraps pre-built assets. The camera is derived from the scenario
    /// at the given resolution.
    pub fn new(scenario: Scenario, resolution: Resolution, map: Arc<PriorMap>) -> Self {
        let camera = scenario.camera(resolution);
        Self { scenario, camera, map, resolution }
    }

    /// The standard urban campaign world used by the soak and fault
    /// benches: `UrbanDrive` seed 11 with a prior map surveyed along
    /// the drive corridor (three lateral passes every ten frames).
    pub fn urban(resolution: Resolution) -> Self {
        let scenario = Scenario::new(ScenarioKind::UrbanDrive, 11);
        let camera = scenario.camera(resolution);
        let poses: Vec<Pose2> = (0..40)
            .flat_map(|i| {
                let p = scenario.pose_at(i * 10);
                [p, Pose2::new(p.x, p.y + 25.0, p.theta), Pose2::new(p.x, p.y - 25.0, p.theta)]
            })
            .collect();
        let map = Arc::new(build_prior_map(scenario.world(), &camera, poses, 300, 25));
        Self { scenario, camera, map, resolution }
    }

    /// The campaign scenario.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The camera model every cell renders through.
    pub fn camera(&self) -> OrthoCamera {
        self.camera
    }

    /// The shared prior-map allocation.
    pub fn map(&self) -> &Arc<PriorMap> {
        &self.map
    }

    /// The frame resolution cells stream at.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// Builds one vehicle cell's supervised pipeline: shared-nothing
    /// mutable state over the shared map and model weights.
    pub fn supervisor(
        &self,
        seed: u64,
        faults: FaultConfig,
        cfg: SupervisorConfig,
        pipeline: &NativePipelineConfig,
    ) -> Supervisor {
        let mut pipe = NativePipeline::new(self.camera, &self.map, pipeline.clone());
        pipe.seed_pose(self.scenario.pose_at(0));
        Supervisor::new(pipe, FaultInjector::new(seed, faults), cfg)
    }
}
